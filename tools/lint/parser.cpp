#include "parser.h"

#include <algorithm>
#include <cstddef>

namespace e10::lint {
namespace {

const std::set<std::string>& annotation_macros() {
  static const std::set<std::string> macros = {
      "E10_CAPABILITY",      "E10_SCOPED_CAPABILITY",
      "E10_GUARDED_BY",      "E10_PT_GUARDED_BY",
      "E10_REQUIRES",        "E10_ACQUIRE",
      "E10_RELEASE",         "E10_EXCLUDES",
      "E10_ACQUIRED_BEFORE", "E10_ACQUIRED_AFTER",
      "E10_TRACKED_BY",
      "E10_NO_THREAD_SAFETY_ANALYSIS",
      "E10_THREAD_ANNOTATION",
  };
  return macros;
}

bool is_specifier(const std::string& t) {
  static const std::set<std::string> specs = {
      "static",   "inline",   "constexpr", "consteval", "constinit",
      "virtual",  "explicit", "friend",    "extern",    "mutable",
      "typename", "const",    "volatile",  "register",  "thread_local",
  };
  return specs.count(t) != 0;
}

bool is_stmt_keyword(const std::string& t) {
  static const std::set<std::string> kws = {
      "if",     "for",     "while",   "switch", "return",  "sizeof",
      "alignof", "alignas", "catch",  "throw",  "case",    "goto",
      "static_assert", "decltype", "noexcept", "new", "co_await",
      "co_return", "co_yield", "assert",
  };
  return kws.count(t) != 0;
}

bool is_unordered_name(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

class Parser {
 public:
  Parser(std::string path, const LexResult& lexed, const ParseOptions& options)
      : toks_(lexed.tokens), options_(options) {
    model_.path = std::move(path);
    collect_allows(lexed.comments);
  }

  FileModel run() {
    parse_block(/*class_scope=*/false);
    return std::move(model_);
  }

 private:
  // ---- token cursor ------------------------------------------------------

  bool eof() const { return pos_ >= toks_.size(); }
  const Token& cur() const { return toks_[pos_]; }
  const std::string& text() const { return cur().text; }
  bool at(const char* p) const { return !eof() && cur().text == p; }
  bool at_ident() const { return !eof() && cur().kind == Tok::kIdent; }
  void next() { ++pos_; }
  const Token* peek(std::size_t k = 1) const {
    return pos_ + k < toks_.size() ? &toks_[pos_ + k] : nullptr;
  }

  /// Consumes a balanced pair starting at the current `open` token.
  void skip_balanced(const char* open, const char* close) {
    int depth = 0;
    while (!eof()) {
      if (text() == open) ++depth;
      else if (text() == close && --depth == 0) {
        next();
        return;
      }
      next();
    }
  }

  /// Consumes template arguments starting at `<`. Angle counting with
  /// parens nested inside; bails at `;` / `{` at depth 0 paren-nesting
  /// (comparison operator misparse recovery).
  void skip_angles() {
    int angle = 0;
    int paren = 0;
    while (!eof()) {
      const std::string& t = text();
      if (paren == 0) {
        if (t == "<") ++angle;
        else if (t == ">" && --angle == 0) {
          next();
          return;
        } else if (angle > 0 && (t == ";" || t == "{")) {
          return;  // was a comparison, not template args
        }
      }
      if (t == "(" || t == "[") ++paren;
      else if (t == ")" || t == "]") --paren;
      next();
    }
  }

  void skip_to_semicolon() {
    while (!eof()) {
      if (at("{")) skip_balanced("{", "}");
      else if (at("(")) skip_balanced("(", ")");
      else if (at(";")) {
        next();
        return;
      } else {
        next();
      }
    }
  }

  /// Consumes `[[ ... ]]`; returns true if it contained `nodiscard`.
  bool skip_attribute() {
    bool nodiscard = false;
    next();  // "[["
    while (!eof() && !at("]]")) {
      if (text() == "nodiscard") nodiscard = true;
      next();
    }
    if (!eof()) next();
    return nodiscard;
  }

  /// Consumes an E10_* annotation macro (plus its argument list if any);
  /// returns the parsed annotation.
  Annotation consume_annotation() {
    Annotation a;
    a.macro = text();
    next();
    if (at("(")) {
      int depth = 0;
      std::string arg;
      while (!eof()) {
        if (text() == "(") {
          if (depth++ > 0) arg += "(";
        } else if (text() == ")") {
          if (--depth == 0) {
            next();
            break;
          }
          arg += ")";
        } else {
          if (!arg.empty() && cur().kind == Tok::kIdent &&
              toks_[pos_ - 1].kind == Tok::kIdent) {
            arg += " ";
          }
          arg += text();
        }
        next();
      }
      a.arg = arg;
    }
    return a;
  }

  // ---- scope bookkeeping -------------------------------------------------

  std::string scope_qualified(const std::string& name) const {
    std::string q;
    for (const auto& s : scope_) {
      if (s.empty()) continue;
      q += s + "::";
    }
    return q + name;
  }

  std::string innermost_class() const {
    for (auto it = class_depth_.rbegin(); it != class_depth_.rend(); ++it) {
      return *it;
    }
    return "";
  }

  // ---- top level ---------------------------------------------------------

  void parse_block(bool class_scope) {
    while (!eof()) {
      if (at("}")) {
        next();
        return;
      }
      if (at(";") || at(",")) {
        next();
        continue;
      }
      if (at("{")) {  // stray block (extern "C" { ... } etc.)
        next();
        parse_block(class_scope);
        continue;
      }
      if (at_ident()) {
        const std::string& t = text();
        if (t == "namespace") {
          parse_namespace();
          continue;
        }
        if (t == "class" || t == "struct" || t == "union") {
          parse_class_like(class_scope);
          continue;
        }
        if (t == "enum") {
          skip_to_semicolon();
          continue;
        }
        if (t == "template") {
          next();
          if (at("<")) skip_angles();
          continue;  // the declaration that follows parses normally
        }
        if (t == "using" || t == "typedef") {
          parse_using();
          continue;
        }
        if (t == "friend" || t == "static_assert") {
          skip_to_semicolon();
          continue;
        }
        if ((t == "public" || t == "private" || t == "protected") &&
            peek(0) != nullptr && peek(1) != nullptr && peek(1)->text == ":") {
          next();
          next();
          continue;
        }
      }
      parse_declaration(class_scope);
    }
  }

  void parse_namespace() {
    next();  // "namespace"
    std::string name;
    while (at_ident()) {
      if (!name.empty()) name += "::";
      name += text();
      next();
      if (at("::")) next();
      else break;
    }
    if (at("=")) {  // namespace alias
      skip_to_semicolon();
      return;
    }
    if (at("{")) {
      next();
      scope_.push_back(name);
      parse_block(/*class_scope=*/false);
      scope_.pop_back();
      return;
    }
    skip_to_semicolon();
  }

  void parse_class_like(bool enclosing_class_scope) {
    next();  // class/struct/union
    ClassInfo info;
    info.line = eof() ? 0 : cur().line;
    // Attributes and annotation macros before the name.
    while (!eof()) {
      if (at("[[")) {
        if (skip_attribute()) info.is_nodiscard = true;
        continue;
      }
      if (at("alignas")) {
        next();
        if (at("(")) skip_balanced("(", ")");
        continue;
      }
      if (at_ident() && annotation_macros().count(text()) != 0) {
        Annotation a = consume_annotation();
        if (a.macro == "E10_CAPABILITY") info.is_capability = true;
        if (a.macro == "E10_SCOPED_CAPABILITY") info.is_scoped_capability = true;
        continue;
      }
      break;
    }
    if (!at_ident()) {  // anonymous struct/union — skip its body
      if (at("{")) skip_balanced("{", "}");
      skip_to_semicolon();
      return;
    }
    info.name = text();
    info.qualified = scope_qualified(info.name);
    next();
    if (at("<")) skip_angles();  // explicit specialization arguments
    if (at_ident() && text() == "final") next();
    if (at(";")) {  // forward declaration
      next();
      return;
    }
    if (at(":")) {  // base clause: consume until the body opens
      while (!eof() && !at("{")) {
        if (at("<")) skip_angles();
        else if (at("(")) skip_balanced("(", ")");
        else next();
      }
    }
    if (at("{")) {
      next();
      model_.classes.push_back(info);
      scope_.push_back(info.name);
      class_depth_.push_back(info.name);
      parse_block(/*class_scope=*/true);
      class_depth_.pop_back();
      scope_.pop_back();
      skip_to_semicolon();  // trailing variable names, if any
      return;
    }
    // Elaborated type specifier inside a declaration ("struct stat st;").
    (void)enclosing_class_scope;
    skip_to_semicolon();
  }

  void parse_using() {
    next();  // using/typedef
    // `using X = ...;` alias — record unordered aliases.
    std::string alias;
    if (at_ident()) alias = text();
    bool saw_unordered = false;
    while (!eof() && !at(";")) {
      if (at("<")) {
        skip_angles();
        continue;
      }
      if (at_ident() && is_unordered_name(text())) saw_unordered = true;
      next();
    }
    if (!eof()) next();
    if (saw_unordered && !alias.empty()) {
      model_.unordered_aliases.insert(alias);
    }
  }

  // ---- declarations ------------------------------------------------------

  struct DeclTok {
    std::string text;
    Tok kind;
    int line;
  };

  void parse_declaration(bool class_scope) {
    std::vector<DeclTok> buf;
    std::vector<Annotation> annotations;
    bool has_nodiscard = false;
    bool saw_assign = false;

    while (!eof()) {
      if (at("[[")) {
        if (skip_attribute()) has_nodiscard = true;
        continue;
      }
      if (at_ident() && annotation_macros().count(text()) != 0) {
        annotations.push_back(consume_annotation());
        continue;
      }
      if (at("<") && !buf.empty() && buf.back().kind == Tok::kIdent) {
        skip_angles();  // template arguments of a type in the decl
        continue;
      }
      if (at("{")) {
        // Brace initializer (no function signature seen): consume, then
        // fall through to the variable path at `;`.
        skip_balanced("{", "}");
        continue;
      }
      if (at(";")) {
        next();
        finalize_variable(buf, annotations, class_scope);
        return;
      }
      if (at("}")) return;  // malformed; let the caller close the scope
      if (at("=")) {
        saw_assign = true;
        buf.push_back({text(), cur().kind, cur().line});
        next();
        continue;
      }
      if (at("(")) {
        if (saw_assign || buf.empty() || buf.back().kind != Tok::kIdent ||
            is_stmt_keyword(buf.back().text)) {
          skip_balanced("(", ")");
          continue;
        }
        // Candidate function declarator.
        if (try_parse_function(buf, has_nodiscard, class_scope)) return;
        continue;  // not a function after all; parens were consumed
      }
      if (at_ident() && text() == "operator") {
        // Merge `operator<sym>` / `operator()` / `operator Type` into one
        // pseudo-identifier so the declarator logic sees a single name.
        const int line = cur().line;
        next();
        std::string name = "operator";
        if (at("(") && peek() != nullptr && peek()->text == ")") {
          name += "()";
          next();
          next();
        } else {
          while (!eof() && !at("(") && !at(";")) {
            name += text();
            next();
          }
        }
        buf.push_back({name, Tok::kIdent, line});
        continue;
      }
      buf.push_back({text(), cur().kind, cur().line});
      next();
    }
  }

  /// Called with the cursor at `(` and a plausible declarator in `buf`.
  /// Returns true when a function declaration/definition was recognized
  /// and consumed through its terminator; false when the construct was
  /// not a function (the parens are consumed either way).
  bool try_parse_function(const std::vector<DeclTok>& buf, bool has_nodiscard,
                          bool class_scope) {
    skip_balanced("(", ")");

    Function fn;
    fn.has_nodiscard = has_nodiscard;

    // Trailing qualifiers.
    while (!eof()) {
      const std::string& t = text();
      if (t == "const" || t == "volatile" || t == "&" || t == "&&" ||
          t == "override" || t == "final" || t == "try" || t == "mutable") {
        next();
        continue;
      }
      if (t == "noexcept") {
        next();
        if (at("(")) {
          // noexcept(false) is the one spelling that disables it.
          std::size_t start = pos_;
          skip_balanced("(", ")");
          bool is_false = (pos_ == start + 3 && toks_[start + 1].text == "false");
          fn.is_noexcept = !is_false;
        } else {
          fn.is_noexcept = true;
        }
        continue;
      }
      if (t == "[[") {
        if (skip_attribute()) fn.has_nodiscard = true;
        continue;
      }
      if (cur().kind == Tok::kIdent && annotation_macros().count(t) != 0) {
        consume_annotation();
        continue;
      }
      if (t == "->") {  // trailing return type
        next();
        while (!eof() && !at("{") && !at(";") && !at("=")) {
          if (at("<")) skip_angles();
          else next();
        }
        continue;
      }
      break;
    }

    const bool is_ctor_init = at(":");
    if (!at("{") && !at(";") && !at("=") && !is_ctor_init) {
      return false;  // `int x(3), y;` or a macro call — not a function
    }

    // Name and qualification, walking back from the end of the declarator.
    std::size_t i = buf.size();
    if (i == 0) return false;
    --i;
    if (buf[i].kind != Tok::kIdent) return false;
    fn.name = buf[i].text;
    fn.line = buf[i].line;
    if (i > 0 && buf[i - 1].text == "~") {
      fn.name = "~" + fn.name;
      fn.is_destructor = true;
      --i;
    }
    std::vector<std::string> qualifier;
    while (i >= 2 && buf[i - 1].text == "::" &&
           buf[i - 2].kind == Tok::kIdent) {
      qualifier.push_back(buf[i - 2].text);
      i -= 2;
    }
    std::reverse(qualifier.begin(), qualifier.end());
    fn.class_name =
        qualifier.empty() ? innermost_class() : qualifier.back();

    std::string explicit_scope;
    for (const auto& q : qualifier) explicit_scope += q + "::";
    fn.qualified = scope_qualified(explicit_scope + fn.name);

    // Constructors: declarator name equals the class name.
    const bool is_ctor = !fn.is_destructor && fn.name == fn.class_name;

    // Return-type head: first qualified-id in the remaining prefix.
    if (!is_ctor && !fn.is_destructor) {
      for (std::size_t k = 0; k < i; ++k) {
        if (buf[k].kind != Tok::kIdent || is_specifier(buf[k].text)) continue;
        std::string head = buf[k].text;
        while (k + 2 < i && buf[k + 1].text == "::" &&
               buf[k + 2].kind == Tok::kIdent) {
          head = buf[k + 2].text;
          k += 2;
        }
        fn.return_head = head;
        break;
      }
    }

    // Terminator.
    if (is_ctor_init) {
      consume_ctor_init();
    }
    if (at("{")) {
      fn.is_definition = true;
      next();
      parse_body(fn);
    } else if (at("=")) {
      next();
      if (at_ident() && text() == "default") {
        fn.is_defaulted = true;
        fn.is_definition = true;
      }
      skip_to_semicolon();
    } else if (at(";")) {
      next();
    }
    (void)class_scope;
    model_.functions.push_back(std::move(fn));
    return true;
  }

  void consume_ctor_init() {
    next();  // ":"
    while (!eof()) {
      // member name (possibly qualified / templated base)
      while (!eof() && !at("(") && !at("{") && !at(";")) {
        if (at("<")) skip_angles();
        else next();
      }
      if (at("(")) skip_balanced("(", ")");
      else if (at("{")) {
        // Either an init `{...}` or the body. An initializer brace is
        // always directly preceded by a name; the body follows `)` / `}`.
        // We are here right after names were consumed, so this is an
        // initializer.
        skip_balanced("{", "}");
      }
      if (at(",")) {
        next();
        continue;
      }
      return;  // body `{` (or anything else) — caller handles it
    }
  }

  // ---- function bodies ---------------------------------------------------

  void parse_body(Function& fn) {
    int depth = 1;
    std::set<std::string> local_aliases;
    std::size_t body_start = pos_;
    while (!eof()) {
      const std::string& t = text();
      if (t == "{") {
        ++depth;
        next();
        continue;
      }
      if (t == "}") {
        if (--depth == 0) {
          next();
          break;
        }
        next();
        continue;
      }
      if (cur().kind == Tok::kIdent) {
        // Blocking-type instantiation (RAII constructor).
        if (options_.instantiation_types.count(t) != 0) {
          fn.type_uses.push_back({t, "", false, cur().line});
        }
        // Local using-alias of an unordered container.
        if (t == "using") {
          const Token* name = peek(1);
          std::size_t save = pos_;
          next();
          if (at_ident()) {
            std::string alias = text();
            bool unordered = false;
            while (!eof() && !at(";")) {
              if (at("<")) {
                skip_angles();
                continue;
              }
              if (at_ident() && is_unordered_name(text())) unordered = true;
              next();
            }
            if (unordered) {
              local_aliases.insert(alias);
              fn.unordered_locals.insert(alias);
            }
            continue;
          }
          pos_ = save + 1;
          (void)name;
          continue;
        }
        // Unordered local declaration:
        //   std::unordered_map<K, V> name ...
        if (is_unordered_name(t)) {
          next();
          if (at("<")) skip_angles();
          if (at_ident()) fn.unordered_locals.insert(text());
          continue;
        }
        // Declaration via a known unordered alias: `LaneMap lanes;`
        if ((local_aliases.count(t) != 0 ||
             model_.unordered_aliases.count(t) != 0) &&
            peek() != nullptr && peek()->kind == Tok::kIdent) {
          fn.unordered_locals.insert(peek()->text);
          next();
          next();
          continue;
        }
        // Range-based for: record the identifiers of the range expression.
        if (t == "for" && peek() != nullptr && peek()->text == "(") {
          record_range_for(fn);
          next();  // consume `for`; header tokens scan normally for calls
          continue;
        }
        // Call site: identifier followed by `(`.
        if (peek() != nullptr && peek()->text == "(" &&
            !is_stmt_keyword(t) && t != "operator") {
          Call call;
          call.callee = t;
          call.line = cur().line;
          if (pos_ > body_start) {
            const std::string& prev = toks_[pos_ - 1].text;
            call.is_member = (prev == "." || prev == "->");
            if (prev == "::" && pos_ >= body_start + 2 &&
                toks_[pos_ - 2].kind == Tok::kIdent) {
              call.qualifier = toks_[pos_ - 2].text;
            }
          }
          fn.calls.push_back(std::move(call));
        }
      }
      next();
    }
  }

  /// Lookahead from a `for` token: if the parenthesized header contains a
  /// top-level `:` (range-for), records the identifiers after it.
  void record_range_for(Function& fn) {
    std::size_t k = pos_ + 1;  // the "("
    int depth = 0;
    bool after_colon = false;
    RangeFor rf;
    rf.line = cur().line;
    for (; k < toks_.size(); ++k) {
      const Token& t = toks_[k];
      if (t.text == "(") {
        ++depth;
        continue;
      }
      if (t.text == ")") {
        if (--depth == 0) break;
        continue;
      }
      if (t.text == "<") {
        // Angle args in the declaration part; skip shallowly by ignoring.
        continue;
      }
      if (depth == 1 && t.text == ";") return;  // classic for
      if (depth == 1 && t.text == ":") {
        after_colon = true;
        continue;
      }
      if (after_colon && t.kind == Tok::kIdent) {
        rf.range_idents.push_back(t.text);
      }
    }
    if (after_colon && !rf.range_idents.empty()) {
      fn.range_fors.push_back(std::move(rf));
    }
  }

  // ---- variables / members ----------------------------------------------

  void finalize_variable(const std::vector<DeclTok>& buf,
                         const std::vector<Annotation>& annotations,
                         bool class_scope) {
    if (!class_scope || buf.empty()) return;
    // Name: identifier before `=` (initializer) else the last identifier.
    std::size_t end = buf.size();
    for (std::size_t k = 0; k < buf.size(); ++k) {
      if (buf[k].text == "=") {
        end = k;
        break;
      }
    }
    std::size_t name_idx = buf.size();
    for (std::size_t k = end; k-- > 0;) {
      if (buf[k].kind == Tok::kIdent && !is_specifier(buf[k].text)) {
        name_idx = k;
        break;
      }
    }
    if (name_idx >= buf.size() || name_idx == 0) return;  // need a type too
    Member m;
    m.class_name = innermost_class();
    if (m.class_name.empty()) return;
    m.name = buf[name_idx].text;
    m.line = buf[name_idx].line;
    m.annotations = annotations;
    for (std::size_t k = 0; k < name_idx; ++k) {
      if (!m.type_text.empty()) m.type_text += " ";
      m.type_text += buf[k].text;
      if (buf[k].kind == Tok::kIdent) {
        if (buf[k].text == "SimMutex" || buf[k].text == "mutex") {
          m.is_mutex = true;
        }
        if (is_unordered_name(buf[k].text) ||
            model_.unordered_aliases.count(buf[k].text) != 0) {
          m.is_unordered = true;
        }
      }
    }
    model_.members.push_back(std::move(m));
  }

  // ---- suppressions ------------------------------------------------------

  void collect_allows(const std::vector<Comment>& comments) {
    for (const Comment& c : comments) {
      parse_allow(c, "e10-lint-allow-file(", &model_.file_allows);
      std::set<std::string> rules;
      parse_allow(c, "e10-lint-allow(", &rules);
      if (rules.empty()) continue;
      for (int l = c.line; l <= c.end_line; ++l) {
        model_.allows[l].insert(rules.begin(), rules.end());
      }
    }
  }

  static void parse_allow(const Comment& c, const std::string& directive,
                          std::set<std::string>* out) {
    std::size_t at = c.text.find(directive);
    while (at != std::string::npos) {
      std::size_t open = at + directive.size();
      std::size_t close = c.text.find(')', open);
      if (close == std::string::npos) return;
      std::string inside = c.text.substr(open, close - open);
      std::string rule;
      auto flush = [&] {
        if (!rule.empty()) out->insert(rule);
        rule.clear();
      };
      for (char ch : inside) {
        if (ch == ',' || ch == ' ' || ch == '\t') flush();
        else rule += ch;
      }
      flush();
      at = c.text.find(directive, close);
    }
  }

  const std::vector<Token>& toks_;
  const ParseOptions& options_;
  FileModel model_;
  std::size_t pos_ = 0;
  std::vector<std::string> scope_;        // namespace + class names
  std::vector<std::string> class_depth_;  // class names only
};

}  // namespace

FileModel parse_file(const std::string& path, const LexResult& lexed,
                     const ParseOptions& options) {
  return Parser(path, lexed, options).run();
}

}  // namespace e10::lint
