#include "lexer.h"

#include <cctype>

namespace e10::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor line: only when '#' is the first non-space token of the
    // line. Consumed to end of line, honoring backslash continuations.
    if (c == '#') {
      bool bol = true;
      for (std::size_t k = i; k-- > 0;) {
        if (src[k] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[k]))) {
          bol = false;
          break;
        }
      }
      if (bol) {
        while (i < n) {
          if (src[i] == '\n') {
            if (i > 0 && src[i - 1] == '\\') {
              ++line;
              ++i;
              continue;
            }
            break;  // newline itself handled by the main loop
          }
          ++i;
        }
        continue;
      }
      out.tokens.push_back({Tok::kPunct, "#", line});
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({src.substr(start, i - start), line, line});
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int first = line;
      std::size_t start = i + 2;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back({src.substr(start, i - start), first, line});
      if (i < n) i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim" (with optional prefixes).
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim += src[d++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, d);
      const int first = line;
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = end == n ? n : end + close.size();
      out.tokens.push_back({Tok::kLiteral, "", first});
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({Tok::kLiteral, "", line});
      continue;
    }
    // Identifier (string-literal prefixes like u8"" already consumed the
    // quote path above only when starting with the quote; a prefix lexes as
    // an identifier immediately followed by a literal, which is fine).
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back({Tok::kIdent, src.substr(start, i - start), line});
      continue;
    }
    // Number (digit separators, hex, suffixes; 1.5e-3 handled by eating
    // sign after e/E/p/P).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          const char prev = src[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back({Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation; keep the few multi-char tokens the parser cares about.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.tokens.push_back({Tok::kPunct, "->", line});
      i += 2;
      continue;
    }
    if (c == '[' && peek(1) == '[') {
      out.tokens.push_back({Tok::kPunct, "[[", line});
      i += 2;
      continue;
    }
    if (c == ']' && peek(1) == ']') {
      out.tokens.push_back({Tok::kPunct, "]]", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace e10::lint
