// Per-file structural model extracted by the parser (parser.h) and
// consumed by the rules (rules.h). The model is deliberately shallow:
// functions with their call sites, class members with their annotations,
// and the suppression directives — everything a rule needs to reason
// about simulator invariants, nothing a full frontend would add.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace e10::lint {

/// One call site inside a function body. `callee` is the last name
/// component ("lock"); `qualifier` the explicit qualification if written
/// at the site ("SimMutex" for SimMutex::lock, "" for obj.lock()).
struct Call {
  std::string callee;
  std::string qualifier;
  bool is_member = false;  // written as x.f() / x->f()
  int line = 0;
};

/// A range-based for statement: the identifiers appearing in the range
/// expression (`for (auto& kv : lanes_)` records "lanes_").
struct RangeFor {
  std::vector<std::string> range_idents;
  int line = 0;
};

struct Function {
  std::string name;        // last component: "drain", "~WritePipeline"
  std::string qualified;   // scope-qualified: "e10::adio::WritePipeline::drain"
  std::string class_name;  // enclosing (or explicit) class, "" if free
  int line = 0;
  bool is_definition = false;  // has a body in this file
  bool is_destructor = false;
  bool is_noexcept = false;    // noexcept / noexcept(non-false)
  bool is_defaulted = false;   // = default
  bool has_nodiscard = false;  // [[nodiscard]] on the declaration
  /// Head identifier of the return type ("Status" for Result-free checks,
  /// "Result" for Result<T>); "" for ctors/dtors/conversion operators.
  std::string return_head;
  std::vector<Call> calls;          // empty unless is_definition
  std::vector<RangeFor> range_fors; // empty unless is_definition
  /// Blocking-type instantiations (e.g. a SimLock local) found in the body.
  std::vector<Call> type_uses;
  /// Names of locals / aliases in the body declared with an unordered
  /// container type.
  std::set<std::string> unordered_locals;
};

struct Annotation {
  std::string macro;  // "E10_GUARDED_BY", "E10_ACQUIRED_AFTER", ...
  std::string arg;    // raw argument text, "" for argument-free macros
};

struct Member {
  std::string class_name;
  std::string name;
  std::string type_text;  // flattened declaration type tokens
  int line = 0;
  bool is_mutex = false;      // SimMutex / std::mutex / declared capability
  bool is_unordered = false;  // std::unordered_{map,set,multimap,multiset}
  std::vector<Annotation> annotations;
};

struct ClassInfo {
  std::string name;       // unqualified
  std::string qualified;  // namespace-qualified
  int line = 0;
  bool is_nodiscard = false;   // class [[nodiscard]] X
  bool is_capability = false;  // E10_CAPABILITY(...) on the class
  bool is_scoped_capability = false;  // E10_SCOPED_CAPABILITY (RAII guard)
};

struct FileModel {
  std::string path;
  std::vector<Function> functions;
  std::vector<Member> members;
  std::vector<ClassInfo> classes;
  /// `using X = std::unordered_map<...>` aliases declared in this file.
  std::set<std::string> unordered_aliases;
  /// line -> rules allowed on that line (from e10-lint-allow(...) on the
  /// line itself or the line above). "*" allows every rule.
  std::map<int, std::set<std::string>> allows;
  /// Rules allowed for the whole file (e10-lint-allow-file).
  std::set<std::string> file_allows;
};

/// True when `rules` (an allow entry) covers `rule`.
inline bool allows_rule(const std::set<std::string>& rules,
                        const std::string& rule) {
  return rules.count(rule) != 0 || rules.count("*") != 0;
}

/// True when a finding for `rule` at `line` in `file` is suppressed by an
/// e10-lint-allow directive on the same line, the line above, or file-wide.
inline bool is_suppressed(const FileModel& file, const std::string& rule,
                          int line) {
  if (allows_rule(file.file_allows, rule)) return true;
  for (int l : {line, line - 1}) {
    auto it = file.allows.find(l);
    if (it != file.allows.end() && allows_rule(it->second, rule)) return true;
  }
  return false;
}

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;

  bool operator<(const Finding& other) const {
    if (path != other.path) return path < other.path;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
};

}  // namespace e10::lint
