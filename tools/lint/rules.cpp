#include "rules.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>

namespace e10::lint {

const std::vector<std::string> kAllRules = {
    "unwind-blocking", "wall-clock",  "unordered-iteration",
    "nodiscard",       "mutex-guard", "lock-order",
};

namespace {

std::string basename(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string first_ident(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out += c;
    } else if (!out.empty()) {
      break;
    }
  }
  return out;
}

// ---- unwind-blocking ------------------------------------------------------

struct FnRef {
  const Function* fn;
  const FileModel* file;
};

/// Why a function blocks: the first blocking call found in its body, and
/// (for transitive blocks) the callee we recursed into.
struct BlockReason {
  std::string what;  // printable site, e.g. "wait (sync.cpp:42)"
  const Function* next = nullptr;  // transitive callee, null for primitives
};

class UnwindBlockingRule {
 public:
  UnwindBlockingRule(const std::vector<LintedFile>& files,
                     const RuleConfig& config)
      : files_(files), config_(config) {
    for (const LintedFile& lf : files) {
      for (const Function& fn : lf.model.functions) {
        if (fn.is_definition && !fn.is_defaulted) {
          by_name_[fn.name].push_back({&fn, &lf.model});
        }
      }
    }
  }

  void run(std::vector<Finding>* out) {
    for (const LintedFile& lf : files_) {
      for (const Function& fn : lf.model.functions) {
        if (!fn.is_definition || fn.is_defaulted) continue;
        if (!fn.is_destructor && !fn.is_noexcept) continue;
        if (!blocking(&fn, &lf.model)) continue;
        if (is_suppressed(lf.model, "unwind-blocking", fn.line)) continue;
        const char* kind = fn.is_destructor ? "destructor" : "noexcept function";
        out->push_back(
            {"unwind-blocking", lf.model.path, fn.line,
             std::string(kind) + " '" + fn.qualified +
                 "' reaches a blocking simulator call: " + path_of(&fn) +
                 " — blocking during unwind rethrows ProcessCancelled "
                 "inside a noexcept context and terminates"});
      }
    }
  }

 private:
  bool blocking(const Function* fn, const FileModel* file) {
    auto memo = state_.find(fn);
    if (memo != state_.end()) return memo->second;
    state_[fn] = false;  // on-stack: break recursion cycles as clean

    // Direct blocking primitives.
    for (const Call& c : fn->calls) {
      if (config_.blocking_methods.count(c.callee) != 0) {
        reasons_[fn] = {c.callee + " (" + basename(file->path) + ":" +
                            std::to_string(c.line) + ")",
                        nullptr};
        return state_[fn] = true;
      }
    }
    for (const Call& c : fn->type_uses) {
      reasons_[fn] = {c.callee + " constructor (" + basename(file->path) +
                          ":" + std::to_string(c.line) + ")",
                      nullptr};
      return state_[fn] = true;
    }
    // Transitive: resolve each call against project definitions by name
    // (narrowed by explicit qualifier / receiver class when one matches).
    for (const Call& c : fn->calls) {
      auto it = by_name_.find(c.callee);
      if (it == by_name_.end()) continue;
      std::vector<FnRef> candidates;
      if (!c.qualifier.empty()) {
        for (const FnRef& ref : it->second) {
          if (ref.fn->class_name == c.qualifier) candidates.push_back(ref);
        }
      }
      if (candidates.empty()) candidates = it->second;
      for (const FnRef& ref : candidates) {
        if (ref.fn == fn) continue;
        if (blocking(ref.fn, ref.file)) {
          reasons_[fn] = {ref.fn->qualified + " (" + basename(file->path) +
                              ":" + std::to_string(c.line) + ")",
                          ref.fn};
          return state_[fn] = true;
        }
      }
    }
    return false;
  }

  std::string path_of(const Function* fn) {
    std::string out = fn->name;
    const Function* cur = fn;
    int guard = 0;
    while (cur != nullptr && guard++ < 16) {
      auto it = reasons_.find(cur);
      if (it == reasons_.end()) break;
      out += " -> " + it->second.what;
      cur = it->second.next;
    }
    return out;
  }

  const std::vector<LintedFile>& files_;
  const RuleConfig& config_;
  std::map<std::string, std::vector<FnRef>> by_name_;
  std::map<const Function*, bool> state_;
  std::map<const Function*, BlockReason> reasons_;
};

// ---- wall-clock -----------------------------------------------------------

void run_wall_clock(const std::vector<LintedFile>& files,
                    const RuleConfig& config, std::vector<Finding>* out) {
  for (const LintedFile& lf : files) {
    const std::vector<Token>& toks = lf.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      const std::string& t = toks[i].text;
      bool hit = false;
      if (config.banned_idents.count(t) != 0) {
        hit = true;
      } else if (config.banned_calls.count(t) != 0 && i + 1 < toks.size() &&
                 toks[i + 1].text == "(") {
        // Banned only in call position; member calls on project objects
        // (`obj.time(...)`) are someone else's method, not libc.
        const bool member =
            i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
        // `int time(int axis) const;` declares a method that shares the
        // libc name: an identifier before the name is its return type,
        // not part of a call expression — unless it is a statement
        // keyword (`return time(0)`).
        static const std::set<std::string> kCallKeywords = {
            "return", "co_return", "co_yield", "case", "throw", "goto"};
        const bool declared = i > 0 && toks[i - 1].kind == Tok::kIdent &&
                              kCallKeywords.count(toks[i - 1].text) == 0;
        hit = !member && !declared;
      }
      if (!hit) continue;
      if (is_suppressed(lf.model, "wall-clock", toks[i].line)) continue;
      out->push_back(
          {"wall-clock", lf.model.path, toks[i].line,
           "'" + t +
               "' is nondeterministic — simulator code must use virtual "
               "time (Engine::now) and seeded Rng so replay and journal "
               "recovery stay bit-identical"});
    }
  }
}

// ---- unordered-iteration --------------------------------------------------

void run_unordered_iteration(const std::vector<LintedFile>& files,
                             std::vector<Finding>* out) {
  // Unordered members by (unqualified) class name, across every file —
  // members live in headers, the iterating method bodies in .cpp files.
  std::map<std::string, std::set<std::string>> unordered_members;
  for (const LintedFile& lf : files) {
    for (const Member& m : lf.model.members) {
      if (m.is_unordered) unordered_members[m.class_name].insert(m.name);
    }
  }
  for (const LintedFile& lf : files) {
    for (const Function& fn : lf.model.functions) {
      if (!fn.is_definition) continue;
      std::set<std::string> targets = fn.unordered_locals;
      auto it = unordered_members.find(fn.class_name);
      if (it != unordered_members.end()) {
        targets.insert(it->second.begin(), it->second.end());
      }
      if (targets.empty()) continue;
      for (const RangeFor& rf : fn.range_fors) {
        std::string hit;
        for (const std::string& ident : rf.range_idents) {
          if (targets.count(ident) != 0) {
            hit = ident;
            break;
          }
        }
        if (hit.empty()) continue;
        if (is_suppressed(lf.model, "unordered-iteration", rf.line)) continue;
        out->push_back(
            {"unordered-iteration", lf.model.path, rf.line,
             "range-for over unordered container '" + hit + "' in '" +
                 fn.qualified +
                 "' — iteration order is unspecified and leaks into "
                 "reports/traces; iterate a sorted copy of the keys (or "
                 "e10-lint-allow if the loop is order-independent)"});
      }
    }
  }
}

// ---- nodiscard ------------------------------------------------------------

void run_nodiscard(const std::vector<LintedFile>& files,
                   const RuleConfig& config, std::vector<Finding>* out) {
  // Types already marked at class level satisfy the rule for every
  // function returning them (the compiler enforces the discard).
  std::set<std::string> class_nodiscard;
  for (const LintedFile& lf : files) {
    for (const ClassInfo& c : lf.model.classes) {
      if (c.is_nodiscard) class_nodiscard.insert(c.name);
    }
  }
  // The attribute is only required on one declaration; group all
  // declarations/definitions of a function before judging.
  struct Site {
    const FileModel* file;
    const Function* fn;
  };
  std::map<std::string, std::vector<Site>> groups;
  std::map<std::string, bool> satisfied;
  for (const LintedFile& lf : files) {
    for (const Function& fn : lf.model.functions) {
      if (fn.is_destructor || fn.return_head.empty()) continue;
      if (config.nodiscard_types.count(fn.return_head) == 0) continue;
      if (class_nodiscard.count(fn.return_head) != 0) continue;
      groups[fn.qualified].push_back({&lf.model, &fn});
      satisfied[fn.qualified] = satisfied[fn.qualified] || fn.has_nodiscard;
    }
  }
  for (const auto& [qualified, sites] : groups) {
    if (satisfied[qualified]) continue;
    // Report at the header declaration when there is one (the attribute
    // belongs on the first declaration).
    const Site* best = &sites.front();
    for (const Site& s : sites) {
      const bool header = s.file->path.size() >= 2 &&
                          s.file->path.rfind(".h") == s.file->path.size() - 2;
      if (header) {
        best = &s;
        break;
      }
    }
    if (is_suppressed(*best->file, "nodiscard", best->fn->line)) continue;
    out->push_back({"nodiscard", best->file->path, best->fn->line,
                    "'" + qualified + "' returns " + best->fn->return_head +
                        " but no declaration is [[nodiscard]] — an ignored " +
                        best->fn->return_head +
                        " silently drops an I/O error"});
  }
}

// ---- mutex-guard ----------------------------------------------------------

void run_mutex_guard(const std::vector<LintedFile>& files,
                     std::vector<Finding>* out) {
  struct ClassMembers {
    std::vector<std::pair<const Member*, const FileModel*>> members;
  };
  std::map<std::string, ClassMembers> classes;
  // Capability classes ARE locks (SimMutex) or RAII guards borrowing one
  // (SimLock); their members are the lock's own state, not guarded data.
  std::set<std::string> capability_classes;
  for (const LintedFile& lf : files) {
    for (const ClassInfo& c : lf.model.classes) {
      if (c.is_capability || c.is_scoped_capability) {
        capability_classes.insert(c.name);
      }
    }
    for (const Member& m : lf.model.members) {
      classes[m.class_name].members.push_back({&m, &lf.model});
    }
  }
  for (const auto& [cls, cm] : classes) {
    if (capability_classes.count(cls) != 0) continue;
    const Member* first_mutex = nullptr;
    const FileModel* mutex_file = nullptr;
    bool any_guarded = false;
    std::set<std::string> member_names;
    for (const auto& [m, file] : cm.members) {
      member_names.insert(m->name);
      // A mutex held by reference is borrowed, not owned: the owner is
      // responsible for declaring what it guards.
      const bool owned =
          m->type_text.find('&') == std::string::npos &&
          m->type_text.find('*') == std::string::npos;
      if (m->is_mutex && owned && first_mutex == nullptr) {
        first_mutex = m;
        mutex_file = file;
      }
      for (const Annotation& a : m->annotations) {
        if (a.macro == "E10_GUARDED_BY" || a.macro == "E10_PT_GUARDED_BY") {
          any_guarded = true;
        }
      }
    }
    // A mutex member with nothing declared guarded by anything: the lock
    // protects state the analysis cannot see.
    if (first_mutex != nullptr && !any_guarded &&
        !is_suppressed(*mutex_file, "mutex-guard", first_mutex->line)) {
      out->push_back({"mutex-guard", mutex_file->path, first_mutex->line,
                      "class '" + cls + "' declares mutex '" +
                          first_mutex->name +
                          "' but no member is E10_GUARDED_BY it — guarded "
                          "state must be annotated for the static analysis"});
    }
    // Annotation arguments must name a member of the class.
    for (const auto& [m, file] : cm.members) {
      for (const Annotation& a : m->annotations) {
        if (a.macro != "E10_GUARDED_BY" && a.macro != "E10_PT_GUARDED_BY" &&
            a.macro != "E10_ACQUIRED_BEFORE" &&
            a.macro != "E10_ACQUIRED_AFTER" && a.macro != "E10_TRACKED_BY") {
          continue;
        }
        const std::string target = first_ident(a.arg);
        if (target.empty() || member_names.count(target) != 0) continue;
        if (is_suppressed(*file, "mutex-guard", m->line)) continue;
        out->push_back({"mutex-guard", file->path, m->line,
                        a.macro + "(" + a.arg + ") on '" + cls +
                            "::" + m->name + "' names no member of '" + cls +
                            "'"});
      }
    }
  }
}

// ---- lock-order -----------------------------------------------------------

void run_lock_order(const std::vector<LintedFile>& files,
                    std::vector<Finding>* out) {
  // Declared acquisition-order edges from E10_ACQUIRED_BEFORE/AFTER
  // annotations: before -> after, nodes qualified as Class::member.
  std::map<std::string, std::vector<std::string>> adj;
  std::map<std::string, std::pair<const FileModel*, int>> site;
  for (const LintedFile& lf : files) {
    for (const Member& m : lf.model.members) {
      const std::string self = m.class_name + "::" + m.name;
      for (const Annotation& a : m.annotations) {
        const std::string other =
            m.class_name + "::" + first_ident(a.arg);
        if (a.macro == "E10_ACQUIRED_BEFORE") {
          adj[self].push_back(other);
        } else if (a.macro == "E10_ACQUIRED_AFTER") {
          adj[other].push_back(self);
        } else {
          continue;
        }
        site.emplace(self, std::make_pair(&lf.model, m.line));
        site.emplace(other, std::make_pair(&lf.model, m.line));
      }
    }
  }
  // Cycle detection (iterative-friendly sizes; recursion is fine here).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        std::string cycle;
        for (auto it = std::find(stack.begin(), stack.end(), v);
             it != stack.end(); ++it) {
          cycle += *it + " < ";
        }
        cycle += v;
        auto s = site.find(u);
        const FileModel* file = s != site.end() ? s->second.first : nullptr;
        out->push_back({"lock-order", file != nullptr ? file->path : "<order>",
                        s != site.end() ? s->second.second : 0,
                        "declared lock acquisition order is cyclic: " + cycle});
        stack.pop_back();
        color[u] = 2;
        return true;
      }
      if (color[v] == 0 && dfs(v)) {
        stack.pop_back();
        color[u] = 2;
        return true;
      }
    }
    stack.pop_back();
    color[u] = 2;
    return false;
  };
  for (const auto& [node, _] : adj) {
    if (color[node] == 0 && dfs(node)) break;  // one cycle report is enough
  }
}

}  // namespace

std::vector<Finding> run_rules(const std::vector<LintedFile>& files,
                               const RuleConfig& config,
                               const std::set<std::string>& enabled) {
  std::vector<Finding> out;
  auto on = [&](const char* rule) { return enabled.count(rule) != 0; };
  if (on("unwind-blocking")) UnwindBlockingRule(files, config).run(&out);
  if (on("wall-clock")) run_wall_clock(files, config, &out);
  if (on("unordered-iteration")) run_unordered_iteration(files, &out);
  if (on("nodiscard")) run_nodiscard(files, config, &out);
  if (on("mutex-guard")) run_mutex_guard(files, &out);
  if (on("lock-order")) run_lock_order(files, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.rule == b.rule && a.path == b.path &&
                                 a.line == b.line && a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace e10::lint
