// e10_lint — project-specific static analysis for simulator invariants.
//
//   e10_lint --compdb=build/compile_commands.json      # lint src/ via the db
//   e10_lint --tree=src                                # lint a directory
//   e10_lint file.cpp other.h                          # lint explicit files
//   e10_lint --rules=unwind-blocking,wall-clock ...    # subset of rules
//   e10_lint --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage / I/O error. Findings print as
//   path:line: [rule] message
// Suppress a finding with `// e10-lint-allow(rule): reason` on the same
// line or the line above; see docs/static_analysis.md for the catalog.
#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: e10_lint [--compdb=PATH] [--tree=DIR] "
               "[--scope=SUBSTR] [--rules=r1,r2] [--list-rules] [file...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  e10::lint::DriverOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list-rules") {
      for (const std::string& r : e10::lint::kAllRules) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (const char* compdb = value("--compdb=")) {
      options.compdb = compdb;
    } else if (const char* tree = value("--tree=")) {
      options.tree = tree;
    } else if (const char* scope = value("--scope=")) {
      options.scope = scope;
    } else if (const char* rules = value("--rules=")) {
      std::string rule;
      for (const char* p = rules;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!rule.empty()) options.rules.insert(rule);
          rule.clear();
          if (*p == '\0') break;
        } else {
          rule += *p;
        }
      }
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty() && options.compdb.empty() &&
      options.tree.empty()) {
    return usage();
  }

  const e10::lint::LintResult result = e10::lint::run_lint(options);
  for (const std::string& err : result.errors) {
    std::fprintf(stderr, "e10_lint: error: %s\n", err.c_str());
  }
  for (const e10::lint::Finding& f : result.findings) {
    std::printf("%s\n", e10::lint::format_finding(f).c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "e10_lint: %zu file(s), %zu finding(s)\n",
                 result.files_linted.size(), result.findings.size());
  }
  if (!result.errors.empty()) return 2;
  return result.findings.empty() ? 0 : 1;
}
