// Token stream for e10_lint (tools/lint).
//
// A deliberately small C++ lexer: it understands comments (kept, so
// suppression directives survive), string/char/raw-string literals,
// preprocessor lines (skipped, with continuations), identifiers, numbers,
// and punctuation. That is all the structural parser (parser.h) needs —
// the rules reason about declarations and call sites, never about
// expression semantics, so no preprocessing or template instantiation is
// required. See docs/static_analysis.md for the subset contract.
#pragma once

#include <string>
#include <vector>

namespace e10::lint {

enum class Tok {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (incl. suffixes)
  kLiteral,  // string / char literals (text dropped)
  kPunct,    // one punctuator; "::", "->", "[[", "]]" kept multi-char
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;
};

/// A comment with its source line; block comments report their first line
/// and every line they span (suppressions may sit above a finding).
struct Comment {
  std::string text;
  int line = 0;      // first line
  int end_line = 0;  // last line (== line for // comments)
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `source`. Never fails: unterminated constructs lex to the end
/// of file, matching how compilers recover.
LexResult lex(const std::string& source);

}  // namespace e10::lint
