// Structural parser for e10_lint: token stream -> FileModel.
//
// Not a C++ frontend. It recognizes the declaration shapes the rules need
// — namespaces, classes, function definitions with their call sites,
// member variables with E10_* annotations, range-for statements, using
// aliases — over the project's house style. Constructs it cannot classify
// are skipped, never fatal: an unrecognized declaration simply contributes
// nothing to the model (the golden-fixture suite in tests/lint pins the
// shapes that must parse).
#pragma once

#include <set>
#include <string>

#include "lexer.h"
#include "model.h"

namespace e10::lint {

struct ParseOptions {
  /// Type names whose mere use inside a function body counts as a call to
  /// their constructor (RAII types that block on construction, e.g.
  /// SimLock). Recorded into Function::type_uses.
  std::set<std::string> instantiation_types;
};

/// Parses one file's lexed tokens into a FileModel.
FileModel parse_file(const std::string& path, const LexResult& lexed,
                     const ParseOptions& options);

}  // namespace e10::lint
