// Rule implementations for e10_lint. Each rule consumes the whole-program
// model (every parsed file) and emits findings; suppressions
// (e10-lint-allow) are applied here so every rule honors them uniformly.
// The catalog, rationale and examples live in docs/static_analysis.md.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "model.h"

namespace e10::lint {

/// One parsed translation unit / header: the structural model plus the raw
/// tokens (the determinism rule scans tokens directly — an identifier like
/// steady_clock is banned in any position, not just call sites).
struct LintedFile {
  FileModel model;
  std::vector<Token> tokens;
};

struct RuleConfig {
  /// unwind-blocking: method/function names that ARE blocking simulator
  /// primitives (SimMutex::lock, SimEvent::wait, Mailbox::recv, ...).
  std::set<std::string> blocking_methods = {
      "lock",   "wait",       "acquire", "arrive_and_wait", "join",
      "recv",   "block",      "delay",   "advance_to",      "yield",
  };
  /// unwind-blocking: RAII types whose construction blocks (SimLock takes
  /// the mutex in its constructor).
  std::set<std::string> blocking_types = {"SimLock"};

  /// wall-clock: identifiers banned anywhere in sim-visible code.
  std::set<std::string> banned_idents = {
      "steady_clock",  "system_clock",   "high_resolution_clock",
      "random_device", "gettimeofday",   "clock_gettime",
      "timespec_get",  "srand",          "utc_clock",
      "tai_clock",     "file_clock",
  };
  /// wall-clock: banned only as a call (`rand()` — `rand` alone may be a
  /// field or parameter name).
  std::set<std::string> banned_calls = {"rand", "time", "localtime",
                                        "gmtime", "mktime"};

  /// nodiscard: return-type heads that must not be silently discarded.
  /// Satisfied by a class-level `class [[nodiscard]] T` (discovered from
  /// the parsed tree) or a `[[nodiscard]]` on some declaration of the
  /// function.
  std::set<std::string> nodiscard_types = {"Status", "Result", "WriteHandle",
                                           "Grequest"};
};

extern const std::vector<std::string> kAllRules;

/// Runs `enabled` rules over `files`; returns suppression-filtered
/// findings in deterministic (path, line, rule) order.
std::vector<Finding> run_rules(const std::vector<LintedFile>& files,
                               const RuleConfig& config,
                               const std::set<std::string>& enabled);

}  // namespace e10::lint
