// Driver for e10_lint: file gathering (compile_commands.json or a source
// tree walk), parsing, rule execution. Library-shaped so the golden-
// fixture tests (tests/lint) run the same code path as the CLI.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "model.h"
#include "rules.h"

namespace e10::lint {

struct DriverOptions {
  /// Explicit files to lint (fixture mode). When empty, `compdb` or
  /// `tree` supplies the file list.
  std::vector<std::string> files;
  /// Path to a compile_commands.json; its "file" entries are linted,
  /// filtered by `scope`, and sibling headers under the scope are added
  /// (the database only lists translation units).
  std::string compdb;
  /// Directory to walk for *.h / *.cpp (alternative to compdb).
  std::string tree;
  /// Substring filter applied to compdb entries ("/src/" by default so
  /// tests and benches are not held to simulator invariants).
  std::string scope = "/src/";
  /// Enabled rules; empty means all.
  std::set<std::string> rules;
  RuleConfig config;
};

struct LintResult {
  std::vector<Finding> findings;
  std::vector<std::string> files_linted;
  std::vector<std::string> errors;  // unreadable files etc.
};

/// Gathers, parses, and lints. Never throws; I/O problems land in
/// `errors`.
LintResult run_lint(const DriverOptions& options);

/// Formats one finding the way the CLI prints it.
std::string format_finding(const Finding& finding);

}  // namespace e10::lint
