file(REMOVE_RECURSE
  "CMakeFiles/legacy_mpiwrap.dir/legacy_mpiwrap.cpp.o"
  "CMakeFiles/legacy_mpiwrap.dir/legacy_mpiwrap.cpp.o.d"
  "legacy_mpiwrap"
  "legacy_mpiwrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_mpiwrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
