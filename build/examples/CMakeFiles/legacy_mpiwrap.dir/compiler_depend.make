# Empty compiler generated dependencies file for legacy_mpiwrap.
# This may be replaced when dependencies are built.
