# Empty dependencies file for hint_tuning.
# This may be replaced when dependencies are built.
