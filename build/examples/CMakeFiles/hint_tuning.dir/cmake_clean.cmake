file(REMOVE_RECURSE
  "CMakeFiles/hint_tuning.dir/hint_tuning.cpp.o"
  "CMakeFiles/hint_tuning.dir/hint_tuning.cpp.o.d"
  "hint_tuning"
  "hint_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hint_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
