file(REMOVE_RECURSE
  "CMakeFiles/e10_workloads.dir/experiment.cpp.o"
  "CMakeFiles/e10_workloads.dir/experiment.cpp.o.d"
  "CMakeFiles/e10_workloads.dir/model.cpp.o"
  "CMakeFiles/e10_workloads.dir/model.cpp.o.d"
  "CMakeFiles/e10_workloads.dir/testbed.cpp.o"
  "CMakeFiles/e10_workloads.dir/testbed.cpp.o.d"
  "CMakeFiles/e10_workloads.dir/workflow.cpp.o"
  "CMakeFiles/e10_workloads.dir/workflow.cpp.o.d"
  "CMakeFiles/e10_workloads.dir/workload.cpp.o"
  "CMakeFiles/e10_workloads.dir/workload.cpp.o.d"
  "libe10_workloads.a"
  "libe10_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
