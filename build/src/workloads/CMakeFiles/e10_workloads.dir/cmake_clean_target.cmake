file(REMOVE_RECURSE
  "libe10_workloads.a"
)
