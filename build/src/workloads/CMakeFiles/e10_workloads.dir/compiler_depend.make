# Empty compiler generated dependencies file for e10_workloads.
# This may be replaced when dependencies are built.
