# Empty compiler generated dependencies file for e10_pfs.
# This may be replaced when dependencies are built.
