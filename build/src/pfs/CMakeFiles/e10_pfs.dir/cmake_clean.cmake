file(REMOVE_RECURSE
  "CMakeFiles/e10_pfs.dir/pfs.cpp.o"
  "CMakeFiles/e10_pfs.dir/pfs.cpp.o.d"
  "CMakeFiles/e10_pfs.dir/stripe.cpp.o"
  "CMakeFiles/e10_pfs.dir/stripe.cpp.o.d"
  "libe10_pfs.a"
  "libe10_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
