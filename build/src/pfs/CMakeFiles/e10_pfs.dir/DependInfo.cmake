
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/pfs.cpp" "src/pfs/CMakeFiles/e10_pfs.dir/pfs.cpp.o" "gcc" "src/pfs/CMakeFiles/e10_pfs.dir/pfs.cpp.o.d"
  "/root/repo/src/pfs/stripe.cpp" "src/pfs/CMakeFiles/e10_pfs.dir/stripe.cpp.o" "gcc" "src/pfs/CMakeFiles/e10_pfs.dir/stripe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e10_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/e10_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/e10_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
