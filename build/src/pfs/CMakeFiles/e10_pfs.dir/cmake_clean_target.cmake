file(REMOVE_RECURSE
  "libe10_pfs.a"
)
