file(REMOVE_RECURSE
  "libe10_prof.a"
)
