file(REMOVE_RECURSE
  "CMakeFiles/e10_prof.dir/profiler.cpp.o"
  "CMakeFiles/e10_prof.dir/profiler.cpp.o.d"
  "libe10_prof.a"
  "libe10_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
