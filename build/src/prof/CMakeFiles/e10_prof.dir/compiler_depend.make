# Empty compiler generated dependencies file for e10_prof.
# This may be replaced when dependencies are built.
