file(REMOVE_RECURSE
  "CMakeFiles/e10_cache.dir/cache_file.cpp.o"
  "CMakeFiles/e10_cache.dir/cache_file.cpp.o.d"
  "CMakeFiles/e10_cache.dir/lock_table.cpp.o"
  "CMakeFiles/e10_cache.dir/lock_table.cpp.o.d"
  "CMakeFiles/e10_cache.dir/sync_thread.cpp.o"
  "CMakeFiles/e10_cache.dir/sync_thread.cpp.o.d"
  "libe10_cache.a"
  "libe10_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
