# Empty dependencies file for e10_cache.
# This may be replaced when dependencies are built.
