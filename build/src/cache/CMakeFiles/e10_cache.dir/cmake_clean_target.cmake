file(REMOVE_RECURSE
  "libe10_cache.a"
)
