# Empty compiler generated dependencies file for e10_net.
# This may be replaced when dependencies are built.
