file(REMOVE_RECURSE
  "libe10_net.a"
)
