file(REMOVE_RECURSE
  "CMakeFiles/e10_net.dir/fabric.cpp.o"
  "CMakeFiles/e10_net.dir/fabric.cpp.o.d"
  "libe10_net.a"
  "libe10_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
