file(REMOVE_RECURSE
  "CMakeFiles/e10_common.dir/config.cpp.o"
  "CMakeFiles/e10_common.dir/config.cpp.o.d"
  "CMakeFiles/e10_common.dir/dataview.cpp.o"
  "CMakeFiles/e10_common.dir/dataview.cpp.o.d"
  "CMakeFiles/e10_common.dir/extent.cpp.o"
  "CMakeFiles/e10_common.dir/extent.cpp.o.d"
  "CMakeFiles/e10_common.dir/log.cpp.o"
  "CMakeFiles/e10_common.dir/log.cpp.o.d"
  "CMakeFiles/e10_common.dir/units.cpp.o"
  "CMakeFiles/e10_common.dir/units.cpp.o.d"
  "libe10_common.a"
  "libe10_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
