file(REMOVE_RECURSE
  "libe10_common.a"
)
