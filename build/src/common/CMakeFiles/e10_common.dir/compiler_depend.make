# Empty compiler generated dependencies file for e10_common.
# This may be replaced when dependencies are built.
