file(REMOVE_RECURSE
  "libe10_sim.a"
)
