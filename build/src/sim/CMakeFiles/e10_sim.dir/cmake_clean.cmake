file(REMOVE_RECURSE
  "CMakeFiles/e10_sim.dir/engine.cpp.o"
  "CMakeFiles/e10_sim.dir/engine.cpp.o.d"
  "CMakeFiles/e10_sim.dir/sync.cpp.o"
  "CMakeFiles/e10_sim.dir/sync.cpp.o.d"
  "libe10_sim.a"
  "libe10_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
