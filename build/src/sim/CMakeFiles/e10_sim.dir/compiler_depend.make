# Empty compiler generated dependencies file for e10_sim.
# This may be replaced when dependencies are built.
