# Empty compiler generated dependencies file for e10_storage.
# This may be replaced when dependencies are built.
