file(REMOVE_RECURSE
  "CMakeFiles/e10_storage.dir/device.cpp.o"
  "CMakeFiles/e10_storage.dir/device.cpp.o.d"
  "libe10_storage.a"
  "libe10_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
