file(REMOVE_RECURSE
  "libe10_storage.a"
)
