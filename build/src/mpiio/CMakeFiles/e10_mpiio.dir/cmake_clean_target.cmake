file(REMOVE_RECURSE
  "libe10_mpiio.a"
)
