# Empty dependencies file for e10_mpiio.
# This may be replaced when dependencies are built.
