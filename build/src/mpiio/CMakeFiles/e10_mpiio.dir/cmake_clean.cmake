file(REMOVE_RECURSE
  "CMakeFiles/e10_mpiio.dir/file.cpp.o"
  "CMakeFiles/e10_mpiio.dir/file.cpp.o.d"
  "libe10_mpiio.a"
  "libe10_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
