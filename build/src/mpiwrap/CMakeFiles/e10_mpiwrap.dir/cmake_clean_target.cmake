file(REMOVE_RECURSE
  "libe10_mpiwrap.a"
)
