file(REMOVE_RECURSE
  "CMakeFiles/e10_mpiwrap.dir/mpiwrap.cpp.o"
  "CMakeFiles/e10_mpiwrap.dir/mpiwrap.cpp.o.d"
  "libe10_mpiwrap.a"
  "libe10_mpiwrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_mpiwrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
