# Empty compiler generated dependencies file for e10_mpiwrap.
# This may be replaced when dependencies are built.
