file(REMOVE_RECURSE
  "libe10_mpi.a"
)
