# Empty compiler generated dependencies file for e10_mpi.
# This may be replaced when dependencies are built.
