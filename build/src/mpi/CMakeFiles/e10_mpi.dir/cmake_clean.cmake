file(REMOVE_RECURSE
  "CMakeFiles/e10_mpi.dir/comm.cpp.o"
  "CMakeFiles/e10_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/e10_mpi.dir/datatype.cpp.o"
  "CMakeFiles/e10_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/e10_mpi.dir/request.cpp.o"
  "CMakeFiles/e10_mpi.dir/request.cpp.o.d"
  "CMakeFiles/e10_mpi.dir/world.cpp.o"
  "CMakeFiles/e10_mpi.dir/world.cpp.o.d"
  "libe10_mpi.a"
  "libe10_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
