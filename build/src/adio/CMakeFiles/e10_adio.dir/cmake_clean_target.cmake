file(REMOVE_RECURSE
  "libe10_adio.a"
)
