file(REMOVE_RECURSE
  "CMakeFiles/e10_adio.dir/aggregation.cpp.o"
  "CMakeFiles/e10_adio.dir/aggregation.cpp.o.d"
  "CMakeFiles/e10_adio.dir/contig.cpp.o"
  "CMakeFiles/e10_adio.dir/contig.cpp.o.d"
  "CMakeFiles/e10_adio.dir/hints.cpp.o"
  "CMakeFiles/e10_adio.dir/hints.cpp.o.d"
  "CMakeFiles/e10_adio.dir/open_close.cpp.o"
  "CMakeFiles/e10_adio.dir/open_close.cpp.o.d"
  "CMakeFiles/e10_adio.dir/read_coll.cpp.o"
  "CMakeFiles/e10_adio.dir/read_coll.cpp.o.d"
  "CMakeFiles/e10_adio.dir/sieve.cpp.o"
  "CMakeFiles/e10_adio.dir/sieve.cpp.o.d"
  "CMakeFiles/e10_adio.dir/write_coll.cpp.o"
  "CMakeFiles/e10_adio.dir/write_coll.cpp.o.d"
  "libe10_adio.a"
  "libe10_adio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_adio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
