
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adio/aggregation.cpp" "src/adio/CMakeFiles/e10_adio.dir/aggregation.cpp.o" "gcc" "src/adio/CMakeFiles/e10_adio.dir/aggregation.cpp.o.d"
  "/root/repo/src/adio/contig.cpp" "src/adio/CMakeFiles/e10_adio.dir/contig.cpp.o" "gcc" "src/adio/CMakeFiles/e10_adio.dir/contig.cpp.o.d"
  "/root/repo/src/adio/hints.cpp" "src/adio/CMakeFiles/e10_adio.dir/hints.cpp.o" "gcc" "src/adio/CMakeFiles/e10_adio.dir/hints.cpp.o.d"
  "/root/repo/src/adio/open_close.cpp" "src/adio/CMakeFiles/e10_adio.dir/open_close.cpp.o" "gcc" "src/adio/CMakeFiles/e10_adio.dir/open_close.cpp.o.d"
  "/root/repo/src/adio/read_coll.cpp" "src/adio/CMakeFiles/e10_adio.dir/read_coll.cpp.o" "gcc" "src/adio/CMakeFiles/e10_adio.dir/read_coll.cpp.o.d"
  "/root/repo/src/adio/sieve.cpp" "src/adio/CMakeFiles/e10_adio.dir/sieve.cpp.o" "gcc" "src/adio/CMakeFiles/e10_adio.dir/sieve.cpp.o.d"
  "/root/repo/src/adio/write_coll.cpp" "src/adio/CMakeFiles/e10_adio.dir/write_coll.cpp.o" "gcc" "src/adio/CMakeFiles/e10_adio.dir/write_coll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e10_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/e10_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/e10_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/e10_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/e10_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/e10_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/e10_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/e10_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
