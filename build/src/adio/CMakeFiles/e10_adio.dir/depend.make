# Empty dependencies file for e10_adio.
# This may be replaced when dependencies are built.
