file(REMOVE_RECURSE
  "CMakeFiles/e10_lfs.dir/local_fs.cpp.o"
  "CMakeFiles/e10_lfs.dir/local_fs.cpp.o.d"
  "libe10_lfs.a"
  "libe10_lfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_lfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
