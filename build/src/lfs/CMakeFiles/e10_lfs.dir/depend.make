# Empty dependencies file for e10_lfs.
# This may be replaced when dependencies are built.
