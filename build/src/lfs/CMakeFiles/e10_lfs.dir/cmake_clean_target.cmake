file(REMOVE_RECURSE
  "libe10_lfs.a"
)
