
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/model_test.cpp" "tests/workloads/CMakeFiles/workloads_test.dir/model_test.cpp.o" "gcc" "tests/workloads/CMakeFiles/workloads_test.dir/model_test.cpp.o.d"
  "/root/repo/tests/workloads/workflow_test.cpp" "tests/workloads/CMakeFiles/workloads_test.dir/workflow_test.cpp.o" "gcc" "tests/workloads/CMakeFiles/workloads_test.dir/workflow_test.cpp.o.d"
  "/root/repo/tests/workloads/workload_test.cpp" "tests/workloads/CMakeFiles/workloads_test.dir/workload_test.cpp.o" "gcc" "tests/workloads/CMakeFiles/workloads_test.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/e10_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/e10_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/adio/CMakeFiles/e10_adio.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/e10_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/e10_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/e10_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/e10_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/e10_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/e10_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/e10_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/e10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
