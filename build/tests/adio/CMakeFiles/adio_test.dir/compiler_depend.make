# Empty compiler generated dependencies file for adio_test.
# This may be replaced when dependencies are built.
