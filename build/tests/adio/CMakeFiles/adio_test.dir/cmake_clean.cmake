file(REMOVE_RECURSE
  "CMakeFiles/adio_test.dir/aggregation_test.cpp.o"
  "CMakeFiles/adio_test.dir/aggregation_test.cpp.o.d"
  "CMakeFiles/adio_test.dir/cache_integration_test.cpp.o"
  "CMakeFiles/adio_test.dir/cache_integration_test.cpp.o.d"
  "CMakeFiles/adio_test.dir/coll_io_test.cpp.o"
  "CMakeFiles/adio_test.dir/coll_io_test.cpp.o.d"
  "CMakeFiles/adio_test.dir/extensions_test.cpp.o"
  "CMakeFiles/adio_test.dir/extensions_test.cpp.o.d"
  "CMakeFiles/adio_test.dir/hints_test.cpp.o"
  "CMakeFiles/adio_test.dir/hints_test.cpp.o.d"
  "CMakeFiles/adio_test.dir/property_test.cpp.o"
  "CMakeFiles/adio_test.dir/property_test.cpp.o.d"
  "adio_test"
  "adio_test.pdb"
  "adio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
