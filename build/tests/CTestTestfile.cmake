# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("storage")
subdirs("pfs")
subdirs("lfs")
subdirs("mpi")
subdirs("cache")
subdirs("adio")
subdirs("workloads")
subdirs("mpiwrap")
subdirs("prof")
subdirs("mpiio")
