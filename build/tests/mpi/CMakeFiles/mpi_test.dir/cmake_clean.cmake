file(REMOVE_RECURSE
  "CMakeFiles/mpi_test.dir/collectives_test.cpp.o"
  "CMakeFiles/mpi_test.dir/collectives_test.cpp.o.d"
  "CMakeFiles/mpi_test.dir/p2p_test.cpp.o"
  "CMakeFiles/mpi_test.dir/p2p_test.cpp.o.d"
  "CMakeFiles/mpi_test.dir/request_test.cpp.o"
  "CMakeFiles/mpi_test.dir/request_test.cpp.o.d"
  "CMakeFiles/mpi_test.dir/world_test.cpp.o"
  "CMakeFiles/mpi_test.dir/world_test.cpp.o.d"
  "mpi_test"
  "mpi_test.pdb"
  "mpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
