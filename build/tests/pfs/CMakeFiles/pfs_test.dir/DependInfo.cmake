
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pfs/pfs_test.cpp" "tests/pfs/CMakeFiles/pfs_test.dir/pfs_test.cpp.o" "gcc" "tests/pfs/CMakeFiles/pfs_test.dir/pfs_test.cpp.o.d"
  "/root/repo/tests/pfs/stripe_test.cpp" "tests/pfs/CMakeFiles/pfs_test.dir/stripe_test.cpp.o" "gcc" "tests/pfs/CMakeFiles/pfs_test.dir/stripe_test.cpp.o.d"
  "/root/repo/tests/pfs/writeback_test.cpp" "tests/pfs/CMakeFiles/pfs_test.dir/writeback_test.cpp.o" "gcc" "tests/pfs/CMakeFiles/pfs_test.dir/writeback_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfs/CMakeFiles/e10_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/e10_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/e10_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/e10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/e10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
