# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpiwrap
# Build directory: /root/repo/build/tests/mpiwrap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mpiwrap/mpiwrap_test[1]_include.cmake")
