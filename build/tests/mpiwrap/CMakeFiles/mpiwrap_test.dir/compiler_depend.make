# Empty compiler generated dependencies file for mpiwrap_test.
# This may be replaced when dependencies are built.
