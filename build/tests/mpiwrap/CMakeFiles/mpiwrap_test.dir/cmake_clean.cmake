file(REMOVE_RECURSE
  "CMakeFiles/mpiwrap_test.dir/mpiwrap_test.cpp.o"
  "CMakeFiles/mpiwrap_test.dir/mpiwrap_test.cpp.o.d"
  "mpiwrap_test"
  "mpiwrap_test.pdb"
  "mpiwrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiwrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
