file(REMOVE_RECURSE
  "CMakeFiles/e10_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/e10_bench_common.dir/bench_common.cpp.o.d"
  "libe10_bench_common.a"
  "libe10_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
