# Empty compiler generated dependencies file for e10_bench_common.
# This may be replaced when dependencies are built.
