file(REMOVE_RECURSE
  "libe10_bench_common.a"
)
