file(REMOVE_RECURSE
  "CMakeFiles/bench_flashio.dir/bench_flashio.cpp.o"
  "CMakeFiles/bench_flashio.dir/bench_flashio.cpp.o.d"
  "bench_flashio"
  "bench_flashio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flashio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
