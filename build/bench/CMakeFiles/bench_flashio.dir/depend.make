# Empty dependencies file for bench_flashio.
# This may be replaced when dependencies are built.
