file(REMOVE_RECURSE
  "CMakeFiles/bench_collperf.dir/bench_collperf.cpp.o"
  "CMakeFiles/bench_collperf.dir/bench_collperf.cpp.o.d"
  "bench_collperf"
  "bench_collperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
