# Empty compiler generated dependencies file for bench_collperf.
# This may be replaced when dependencies are built.
