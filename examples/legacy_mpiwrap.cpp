// Legacy application + MPIWRAP (paper §III-C).
//
// A "legacy" code writes a sequence of checkpoint files with the classic
// open / write_all / close workflow — it knows nothing about caches or
// deferred closes. MPIWRAP, configured from an INI file, injects the E10
// hints at open and defers the real close to the next open of the same file
// family, turning the standard workflow into the paper's modified one
// without touching the application.
#include <cstdio>

#include "mpiwrap/mpiwrap.h"
#include "workloads/testbed.h"

using namespace e10;
using namespace e10::units;

namespace {

constexpr const char* kWrapConfig = R"(
# MPIWRAP configuration: hints per file pattern (paper Table II)
[file:/pfs/legacy_ckpt*]
romio_cb_write = enable
cb_buffer_size = 1048576
e10_cache = enable
e10_cache_path = /scratch
e10_cache_flush_flag = flush_immediate
e10_cache_discard_flag = enable
deferred_close = true
)";

// The legacy application: plain MPI-IO, no hints, close after every file.
void legacy_app(mpiwrap::Mpiwrap& wrap, mpi::Comm comm, int checkpoints,
                Time compute, std::vector<Time>* close_times) {
  for (int k = 0; k < checkpoints; ++k) {
    const std::string path = "/pfs/legacy_ckpt_" + std::to_string(k);
    auto file = wrap.open(comm, path, adio::amode::create | adio::amode::rdwr);
    if (!file.is_ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   file.status().to_string().c_str());
      return;
    }
    const Offset block = 512 * KiB;
    for (int b = 0; b < 2; ++b) {
      const Offset off = (b * comm.size() + comm.rank()) * block;
      (void)file.value().write_at_all(
          off, DataView::synthetic(static_cast<std::uint64_t>(k), off, block));
    }
    const Time t0 = comm.engine().now();
    (void)wrap.close(std::move(file).value());  // returns ~immediately
    if (comm.rank() == 0) {
      close_times->push_back(comm.engine().now() - t0);
    }
    comm.engine().delay(compute);  // compute phase: sync overlaps here
  }
  (void)wrap.finalize();  // MPI_Finalize: really closes the last file
}

}  // namespace

int main() {
  workloads::Platform platform(workloads::small_testbed());
  std::vector<Time> close_times;

  platform.launch([&](mpi::Comm comm) {
    auto wrap = mpiwrap::Mpiwrap::create(platform.ctx, kWrapConfig);
    if (!wrap.is_ok()) {
      std::fprintf(stderr, "config error: %s\n",
                   wrap.status().to_string().c_str());
      return;
    }
    legacy_app(wrap.value(), comm, /*checkpoints=*/3, seconds(5),
               &close_times);
    if (comm.rank() == 0) {
      const auto& stats = wrap.value().stats();
      std::printf("MPIWRAP stats: %llu opens, %llu hints injected, "
                  "%llu deferred closes, %llu real closes at next open, "
                  "%llu at finalize\n",
                  static_cast<unsigned long long>(stats.opens),
                  static_cast<unsigned long long>(stats.hint_injections),
                  static_cast<unsigned long long>(stats.deferred_closes),
                  static_cast<unsigned long long>(stats.delayed_real_closes),
                  static_cast<unsigned long long>(stats.finalize_closes));
    }
  });
  platform.run();

  for (std::size_t k = 0; k < close_times.size(); ++k) {
    std::printf("checkpoint %zu: MPI_File_close returned in %s "
                "(real close deferred)\n",
                k, format_time(close_times[k]).c_str());
  }
  // All three files are complete in the global file system.
  for (int k = 0; k < 3; ++k) {
    const auto info =
        platform.pfs.stat_path("/pfs/legacy_ckpt_" + std::to_string(k));
    std::printf("legacy_ckpt_%d: %s in the PFS\n", k,
                info.is_ok() ? format_bytes(info.value().size).c_str()
                             : "MISSING");
  }
  return 0;
}
