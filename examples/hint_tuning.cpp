// Hint tuning: how the collective I/O hints (Table I) and the E10 cache
// hints (Table II) interact — a miniature of the paper's evaluation sweep
// that runs in seconds. Prints the perceived bandwidth for each aggregator
// count with and without the cache, showing the paper's headline effect:
// the cache multiplies bandwidth when aggregators are plentiful, and can
// *hurt* when they are too few to hide the synchronisation.
#include <cstdio>

#include "workloads/experiment.h"
#include "workloads/workload.h"

using namespace e10;
using namespace e10::units;
using namespace e10::workloads;

int main() {
  TestbedParams testbed = deep_er_testbed();
  testbed.compute_nodes = 16;  // keep the example fast: 128 ranks
  testbed.ranks_per_node = 8;

  std::printf("IOR, 128 ranks / 16 nodes, 4 files, compute delay 7.5 s\n");
  std::printf("%-12s %20s %20s %12s\n", "aggregators", "cache disabled",
              "cache enabled", "speedup");

  for (const int aggregators : {2, 4, 8, 16}) {
    double bw[2] = {0, 0};
    for (const bool cached : {false, true}) {
      ExperimentSpec spec;
      spec.testbed = testbed;
      spec.aggregators = aggregators;
      spec.cb_buffer_size = 4 * MiB;
      spec.cache_case =
          cached ? CacheCase::enabled : CacheCase::disabled;
      spec.workflow.base_path = "/pfs/tune";
      spec.workflow.num_files = 4;
      spec.workflow.compute_delay = units::seconds_f(7.5);
      spec.workflow.include_last_phase = true;
      const auto result =
          run_experiment(spec, [](const TestbedParams&) {
            IorWorkload::Params params;
            params.block_bytes = 8 * MiB;
            params.segments = 2;
            return std::make_unique<IorWorkload>(params);
          });
      bw[cached ? 1 : 0] = result.bandwidth_gib;
    }
    std::printf("%-12d %17.2f GiB/s %14.2f GiB/s %11.2fx\n", aggregators,
                bw[0], bw[1], bw[0] > 0 ? bw[1] / bw[0] : 0.0);
  }
  std::printf("\nFewer aggregators -> fewer SSDs absorbing the burst and a\n"
              "longer background flush; when the flush no longer fits in the\n"
              "compute phase, the close blocks (Eq. 1) and the advantage\n"
              "shrinks or reverses -- the paper's central observation.\n");
  return 0;
}
