// Checkpoint/restart scenario: the paper's motivating workload (§III-C).
//
// An application alternates compute and checkpoint phases. With the cache
// disabled, every checkpoint stalls the application for the full PFS write.
// With the E10 cache and the modified workflow (deferred close), checkpoints
// return at local-SSD speed and the flush overlaps the next compute phase.
// The example runs both configurations on the full DEEP-ER-scale testbed
// and prints the timeline.
#include <cstdio>

#include "workloads/experiment.h"
#include "workloads/workload.h"

using namespace e10;
using namespace e10::units;

namespace {

void run_configuration(bool cached) {
  workloads::ExperimentSpec spec;
  spec.testbed = workloads::deep_er_testbed();
  // 128 ranks over 32 nodes: enough node-local SSDs (32 x 340 MiB/s ~
  // 10.6 GiB/s) to dwarf the PFS (4 x 560 MiB/s ~ 2.2 GiB/s), the paper's
  // aggregate-bandwidth scaling argument.
  spec.testbed.compute_nodes = 32;
  spec.testbed.ranks_per_node = 4;
  spec.aggregators = 32;
  spec.cb_buffer_size = 4 * MiB;
  spec.cache_case = cached ? workloads::CacheCase::enabled
                           : workloads::CacheCase::disabled;
  spec.workflow.base_path = "/pfs/checkpoint";
  spec.workflow.num_files = 4;          // 4 checkpoints
  spec.workflow.compute_delay = seconds(20);
  spec.workflow.include_last_phase = true;

  workloads::Platform platform(spec.testbed);
  // Flash-like checkpoint content, ~10 blocks per rank.
  // ~7.4 GiB per checkpoint: big enough that sustained media bandwidth,
  // not the servers' write-back RAM, decides the outcome.
  workloads::FlashIoWorkload::Params params;
  params.blocks_per_proc = 80;
  const workloads::FlashIoWorkload workload(params);

  workloads::WorkflowParams workflow = spec.workflow;
  workflow.hints = workloads::experiment_hints(spec);
  workflow.deferred_close = cached;
  const auto result = run_workflow(platform, workload, workflow);

  std::printf("\n%s:\n", cached ? "E10 cache enabled (modified workflow)"
                                : "cache disabled (standard workflow)");
  for (std::size_t k = 0; k < result.phases.size(); ++k) {
    const auto& phase = result.phases[k];
    std::printf("  checkpoint %zu: write %s%s\n", k,
                format_time(phase.write_time).c_str(),
                phase.residual_close > 0
                    ? (", close waited " + format_time(phase.residual_close))
                          .c_str()
                    : "");
  }
  std::printf("  perceived bandwidth: %.2f GiB/s over %s\n",
              result.bandwidth_gib, format_bytes(result.total_bytes).c_str());
}

}  // namespace

int main() {
  std::printf("checkpoint/restart on the simulated DEEP-ER cluster "
              "(128 ranks, 32 nodes)\n");
  run_configuration(/*cached=*/false);
  run_configuration(/*cached=*/true);
  return 0;
}
