// Quickstart: stand up the simulated DEEP-ER-like cluster, write a shared
// file collectively with the E10 cache enabled, and read it back.
//
//   $ ./examples/quickstart
//
// Walks through the core API: Platform, MPI ranks, MPI-IO hints (Tables I
// and II of the paper), collective write, close-with-flush, verification.
#include <cstdio>

#include "mpiio/file.h"
#include "workloads/testbed.h"

using namespace e10;
using namespace e10::units;

int main() {
  // A small cluster: 4 compute nodes x 2 ranks, 2 PFS data servers, one
  // 30 GiB-scaled-down SSD scratch partition per node.
  workloads::Platform platform(workloads::small_testbed());

  // MPI-IO hints: force collective buffering and enable the E10 cache with
  // immediate background flushing (paper Table II).
  mpi::Info hints;
  hints.set("romio_cb_write", "enable");
  hints.set("cb_buffer_size", "1048576");
  hints.set("e10_cache", "enable");
  hints.set("e10_cache_path", "/scratch");
  hints.set("e10_cache_flush_flag", "flush_immediate");
  hints.set("e10_cache_discard_flag", "enable");

  constexpr Offset kBlock = 256 * KiB;

  platform.launch([&](mpi::Comm comm) {
    auto file = mpiio::File::open(platform.ctx, comm, "/pfs/quickstart",
                                  adio::amode::create | adio::amode::rdwr,
                                  hints);
    if (!file.is_ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   file.status().to_string().c_str());
      return;
    }

    // Interleaved pattern: rank r owns blocks r, r+P, r+2P, ...
    const Time t0 = comm.engine().now();
    for (int b = 0; b < 4; ++b) {
      const Offset offset = (b * comm.size() + comm.rank()) * kBlock;
      const DataView data = DataView::synthetic(
          static_cast<std::uint64_t>(comm.rank()), offset, kBlock);
      if (const Status s = file.value().write_at_all(offset, data);
          !s.is_ok()) {
        std::fprintf(stderr, "write failed: %s\n", s.to_string().c_str());
        return;
      }
    }
    const Time write_done = comm.engine().now();

    // The close waits for the background cache synchronisation (§III-B).
    if (const Status s = file.value().close(); !s.is_ok()) {
      std::fprintf(stderr, "close failed: %s\n", s.to_string().c_str());
      return;
    }
    const Time close_done = comm.engine().now();

    if (comm.rank() == 0) {
      const Offset total = 4 * kBlock * comm.size();
      std::printf("collective write: %s in %s (%s)\n",
                  format_bytes(total).c_str(),
                  format_time(write_done - t0).c_str(),
                  format_bandwidth(total, write_done - t0).c_str());
      std::printf("close (cache flush wait): %s\n",
                  format_time(close_done - write_done).c_str());
    }

    // Read a peer's block back from the global file and spot-check it.
    auto reader = mpiio::File::open(platform.ctx, comm, "/pfs/quickstart",
                                    adio::amode::rdonly, {});
    const int peer = (comm.rank() + 1) % comm.size();
    const auto block = reader.value().read_at_all(peer * kBlock, kBlock);
    const bool ok =
        block.is_ok() &&
        block.value().byte_at(0) ==
            DataView::pattern_byte(static_cast<std::uint64_t>(peer),
                                   peer * kBlock);
    if (!ok) std::fprintf(stderr, "rank %d: verification FAILED\n", comm.rank());
    (void)reader.value().close();
    if (comm.rank() == 0) {
      std::printf("read-back verification: %s\n", ok ? "OK" : "FAILED");
    }
  });

  platform.run();
  std::printf("simulated virtual time: %s\n",
              format_time(platform.engine.now()).c_str());
  return 0;
}
