#include "lfs/local_fs.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::lfs {
namespace {

using namespace e10::units;

struct Fixture {
  explicit Fixture(LfsParams params = LfsParams{})
      : fs(engine, /*node=*/0, params, /*seed=*/99) {}

  void run(std::function<void()> body) {
    engine.spawn("client", std::move(body));
    engine.run();
  }

  sim::Engine engine;
  LocalFs fs;
};

TEST(LocalFs, CreateWriteRead) {
  Fixture f;
  f.run([&] {
    const auto h = f.fs.open("/scratch/cache", /*create=*/true);
    ASSERT_TRUE(h.is_ok());
    std::vector<std::byte> data{std::byte{7}, std::byte{8}, std::byte{9}};
    ASSERT_TRUE(f.fs.write(h.value(), 10, DataView::real(data)));
    const auto r = f.fs.read(h.value(), 10, 3);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().byte_at(0), std::byte{7});
    EXPECT_EQ(r.value().byte_at(2), std::byte{9});
    EXPECT_EQ(f.fs.file_size(h.value()).value(), 13);
    ASSERT_TRUE(f.fs.close(h.value()));
  });
}

TEST(LocalFs, OpenMissingWithoutCreateFails) {
  Fixture f;
  f.run([&] {
    EXPECT_EQ(f.fs.open("/scratch/x", false).code(), Errc::no_such_file);
  });
}

TEST(LocalFs, TruncateResetsSizeAndCharge) {
  Fixture f;
  f.run([&] {
    const auto h1 = f.fs.open("/scratch/t", true);
    ASSERT_TRUE(f.fs.write(h1.value(), 0, DataView::synthetic(1, 0, MiB)));
    EXPECT_EQ(f.fs.used_bytes(), MiB);
    const auto h2 = f.fs.open("/scratch/t", true, /*truncate=*/true);
    EXPECT_EQ(f.fs.used_bytes(), 0);
    EXPECT_EQ(f.fs.file_size(h2.value()).value(), 0);
  });
}

TEST(LocalFs, FallocateReservesCapacity) {
  LfsParams params;
  params.capacity = 10 * MiB;
  Fixture f(params);
  f.run([&] {
    const auto h = f.fs.open("/scratch/alloc", true);
    ASSERT_TRUE(f.fs.fallocate(h.value(), 8 * MiB));
    EXPECT_EQ(f.fs.used_bytes(), 8 * MiB);
    // Second file cannot reserve beyond remaining capacity.
    const auto h2 = f.fs.open("/scratch/alloc2", true);
    EXPECT_EQ(f.fs.fallocate(h2.value(), 4 * MiB).code(), Errc::no_space);
  });
  EXPECT_EQ(f.fs.stats().fallocates, 2u);
}

TEST(LocalFs, FallocateWithSupportIsMetadataFast) {
  LfsParams fast;
  fast.supports_fallocate = true;
  LfsParams slow;
  slow.supports_fallocate = false;
  auto timed = [](LfsParams params) {
    Fixture f(params);
    Time elapsed = 0;
    f.run([&] {
      const auto h = f.fs.open("/scratch/a", true);
      const Time t0 = f.engine.now();
      EXPECT_TRUE(f.fs.fallocate(h.value(), 256 * MiB));
      elapsed = f.engine.now() - t0;
    });
    return elapsed;
  };
  // Without fallocate support the fallback physically writes zeros
  // (paper §III-A footnote 2) — orders of magnitude slower.
  EXPECT_GT(timed(slow), 100 * timed(fast));
}

TEST(LocalFs, WriteBeyondCapacityFails) {
  LfsParams params;
  params.capacity = 1 * MiB;
  Fixture f(params);
  f.run([&] {
    const auto h = f.fs.open("/scratch/full", true);
    ASSERT_TRUE(f.fs.write(h.value(), 0, DataView::synthetic(1, 0, MiB)));
    EXPECT_EQ(
        f.fs.write(h.value(), MiB, DataView::synthetic(1, 0, 1)).code(),
        Errc::no_space);
  });
}

TEST(LocalFs, WriteInsideFallocatedRegionNotDoubleCharged) {
  LfsParams params;
  params.capacity = 10 * MiB;
  Fixture f(params);
  f.run([&] {
    const auto h = f.fs.open("/scratch/pre", true);
    ASSERT_TRUE(f.fs.fallocate(h.value(), 8 * MiB));
    ASSERT_TRUE(f.fs.write(h.value(), 0, DataView::synthetic(1, 0, 8 * MiB)));
    EXPECT_EQ(f.fs.used_bytes(), 8 * MiB);
  });
}

TEST(LocalFs, UnlinkFreesCapacity) {
  LfsParams params;
  params.capacity = 2 * MiB;
  Fixture f(params);
  f.run([&] {
    const auto h = f.fs.open("/scratch/u", true);
    ASSERT_TRUE(f.fs.write(h.value(), 0, DataView::synthetic(1, 0, 2 * MiB)));
    ASSERT_TRUE(f.fs.close(h.value()));
    ASSERT_TRUE(f.fs.unlink("/scratch/u"));
    EXPECT_EQ(f.fs.used_bytes(), 0);
    EXPECT_FALSE(f.fs.exists("/scratch/u"));
    // Capacity is reusable.
    const auto h2 = f.fs.open("/scratch/v", true);
    EXPECT_TRUE(f.fs.write(h2.value(), 0, DataView::synthetic(1, 0, 2 * MiB)));
  });
}

TEST(LocalFs, SsdWriteFasterThanPfsTargetLatency) {
  // Local SSD write of 4 MiB should complete in low single-digit
  // milliseconds range given ~340 MiB/s — sanity-check the preset.
  Fixture f;
  Time elapsed = 0;
  f.run([&] {
    const auto h = f.fs.open("/scratch/ssd", true);
    const Time t0 = f.engine.now();
    ASSERT_TRUE(f.fs.write(h.value(), 0, DataView::synthetic(1, 0, 4 * MiB)));
    elapsed = f.engine.now() - t0;
  });
  EXPECT_GT(elapsed, milliseconds(5));
  EXPECT_LT(elapsed, milliseconds(30));
}

TEST(LocalFs, ReadClampsAtEof) {
  Fixture f;
  f.run([&] {
    const auto h = f.fs.open("/scratch/r", true);
    ASSERT_TRUE(f.fs.write(h.value(), 0, DataView::synthetic(3, 0, 100)));
    EXPECT_EQ(f.fs.read(h.value(), 60, 100).value().size(), 40);
    EXPECT_EQ(f.fs.read(h.value(), 200, 10).value().size(), 0);
  });
}

TEST(LocalFsSet, IndependentPerNodeNamespaces) {
  sim::Engine engine;
  LocalFsSet set(engine, /*nodes=*/3, LfsParams{}, /*seed=*/5);
  engine.spawn("client", [&] {
    const auto h = set.at(0).open("/scratch/f", true);
    ASSERT_TRUE(
        set.at(0).write(h.value(), 0, DataView::synthetic(1, 0, 64)));
    EXPECT_TRUE(set.at(0).exists("/scratch/f"));
    EXPECT_FALSE(set.at(1).exists("/scratch/f"));
    EXPECT_FALSE(set.at(2).exists("/scratch/f"));
  });
  engine.run();
  EXPECT_EQ(set.size(), 3u);
}

TEST(LocalFs, BadHandleRejected) {
  Fixture f;
  f.run([&] {
    EXPECT_EQ(f.fs.write(42, 0, DataView::synthetic(1, 0, 1)).code(),
              Errc::invalid_argument);
    EXPECT_EQ(f.fs.read(42, 0, 1).code(), Errc::invalid_argument);
    EXPECT_EQ(f.fs.close(42).code(), Errc::invalid_argument);
    EXPECT_EQ(f.fs.fallocate(42, 1).code(), Errc::invalid_argument);
  });
}

}  // namespace
}  // namespace e10::lfs
