#include "workloads/model.h"

#include <gtest/gtest.h>

namespace e10::workloads {
namespace {

using namespace e10::units;

TEST(Model, NotHiddenSync) {
  EXPECT_EQ(not_hidden_sync(seconds(10), seconds(30)), 0);
  EXPECT_EQ(not_hidden_sync(seconds(30), seconds(10)), seconds(20));
  EXPECT_EQ(not_hidden_sync(seconds(5), seconds(5)), 0);
}

TEST(Model, Eq1FullyHiddenSyncGivesCacheBandwidth) {
  PhaseModel phase;
  phase.bytes = 32 * GiB;
  phase.write = seconds(2);   // cache write at ~16 GiB/s
  phase.sync = seconds(20);   // would take 20 s...
  phase.compute = seconds(30);  // ...but compute hides it all
  EXPECT_DOUBLE_EQ(eq1_bandwidth(phase), 16.0);
}

TEST(Model, Eq1ExposedSyncDegradesBandwidth) {
  PhaseModel phase;
  phase.bytes = 32 * GiB;
  phase.write = seconds(2);
  phase.sync = seconds(40);
  phase.compute = seconds(30);  // 10 s of sync leak into the I/O time
  EXPECT_DOUBLE_EQ(eq1_bandwidth(phase), 32.0 / 12.0);
}

TEST(Model, Eq2AveragesPhases) {
  PhaseModel hidden;
  hidden.bytes = GiB;
  hidden.write = seconds(1);
  hidden.sync = seconds(5);
  hidden.compute = seconds(30);
  PhaseModel exposed = hidden;
  exposed.compute = 0;  // last phase: nothing hides the sync
  const double bw = eq2_bandwidth({hidden, exposed});
  // 2 GiB over 1 + (1 + 5) seconds.
  EXPECT_DOUBLE_EQ(bw, 2.0 / 7.0);
}

TEST(Model, Eq2EmptyIsZero) {
  EXPECT_DOUBLE_EQ(eq2_bandwidth({}), 0.0);
}

TEST(Model, SyncTimeEstimateScalesWithBytes) {
  const TestbedParams testbed = deep_er_testbed();
  const Time small = estimate_sync_time(512 * MiB, 64, testbed);
  const Time large = estimate_sync_time(GiB, 64, testbed);
  EXPECT_GT(large, small);
  EXPECT_LT(large, 3 * small);
}

TEST(Model, FewAggregatorsSyncFasterPerAggregatorShare) {
  // With few aggregators each gets a bigger PFS share, but must move more
  // bytes: 32 GiB total, 8 vs 64 aggregators.
  const TestbedParams testbed = deep_er_testbed();
  const Time eight = estimate_sync_time(4 * GiB, 8, testbed);
  const Time sixty_four = estimate_sync_time(512 * MiB, 64, testbed);
  // The PFS aggregate is the shared bottleneck: both take at least
  // 32 GiB / 2.2 GiB/s ~ 15 s; with 8 aggregators the SSD read leg
  // (4 GiB / 480 MiB/s ~ 8.5 s) is hidden behind the PFS leg.
  EXPECT_GT(eight, seconds(10));
  EXPECT_GT(sixty_four, seconds(10));
}

TEST(Model, PaperScenarioThirtySecondsHidesMostConfigs) {
  // The paper: 30 s compute delay is "in most cases enough" to hide the
  // sync of a 32 GiB file. Check it holds for 64 aggregators but not 8.
  const TestbedParams testbed = deep_er_testbed();
  const Offset file_bytes = 32 * GiB;
  const Time sync64 = estimate_sync_time(file_bytes / 64, 64, testbed);
  const Time sync8 = estimate_sync_time(file_bytes / 8, 8, testbed);
  EXPECT_LT(not_hidden_sync(sync64, seconds(30)), seconds(5));
  EXPECT_GT(not_hidden_sync(sync8, seconds(30)), 0);
}

}  // namespace
}  // namespace e10::workloads
