#include "workloads/workload.h"

#include <gtest/gtest.h>

#include "adio/adio_file.h"
#include "common/units.h"
#include "mpiio/file.h"
#include "workloads/testbed.h"

namespace e10::workloads {
namespace {

using namespace e10::units;

// Shrunken workload shapes so the unit tests stay fast.
CollPerfWorkload::Params tiny_collperf() {
  CollPerfWorkload::Params params;
  params.grid = {2, 2, 2};
  params.block = {2, 4, 4096};  // 256 KiB per rank
  params.elem_bytes = 8;
  return params;
}

FlashIoWorkload::Params tiny_flash() {
  FlashIoWorkload::Params params;
  params.blocks_per_proc = 4;
  params.variables = 6;
  params.chunk_bytes = 8 * KiB;
  params.header_bytes = 64 * KiB;
  return params;
}

IorWorkload::Params tiny_ior() {
  IorWorkload::Params params;
  params.block_bytes = 128 * KiB;
  params.segments = 3;
  return params;
}

mpi::Info coll_hints() {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");
  return info;
}

template <typename WorkloadT>
Offset run_one_file(Platform& p, const WorkloadT& workload,
                    const std::string& path) {
  Offset total = 0;
  p.launch([&](mpi::Comm comm) {
    auto file = mpiio::File::open(p.ctx, comm, path,
                                  adio::amode::create | adio::amode::rdwr,
                                  coll_hints());
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(workload.write_file(file.value(), comm, 0));
    ASSERT_TRUE(file.value().close());
    if (comm.rank() == 0) {
      total = comm.allreduce(workload.bytes_per_rank(comm),
                             [](Offset a, Offset b) { return a + b; });
    } else {
      (void)comm.allreduce(workload.bytes_per_rank(comm),
                           [](Offset a, Offset b) { return a + b; });
    }
  });
  p.run();
  return total;
}

TEST(CollPerf, FileSizeMatchesArray) {
  Platform p(small_testbed());
  const CollPerfWorkload workload(tiny_collperf());
  const Offset total = run_one_file(p, workload, "/pfs/cp");
  EXPECT_EQ(total, 8 * 256 * KiB);
  EXPECT_EQ(p.pfs.stat_path("/pfs/cp").value().size, total);
}

TEST(CollPerf, ProducesInterleavedStridedPattern) {
  // With a 2x2x2 grid, ranks differing only in the z coordinate interleave
  // within rows: the file must not be rank-contiguous.
  Platform p(small_testbed());
  const CollPerfWorkload workload(tiny_collperf());
  (void)run_one_file(p, workload, "/pfs/cp2");
  // The shuffle exchange must have happened (interleaved -> collective).
  EXPECT_GT(p.profiler.max_over_ranks(prof::Phase::exchange), 0);
  EXPECT_GT(p.profiler.max_over_ranks(prof::Phase::shuffle_all2all), 0);
}

TEST(CollPerf, EveryByteAccountedFor) {
  Platform p(small_testbed());
  const CollPerfWorkload workload(tiny_collperf());
  (void)run_one_file(p, workload, "/pfs/cp3");
  // No holes: every byte of the global array was written by exactly one
  // rank (subarrays partition the array).
  const ByteStore* store = p.pfs.peek("/pfs/cp3");
  ASSERT_NE(store, nullptr);
  const Offset size = p.pfs.stat_path("/pfs/cp3").value().size;
  // A hole would read zero; synthetic pattern bytes are almost never zero
  // for long runs. Sample densely.
  int zeros = 0;
  for (Offset pos = 0; pos < size; pos += 997) {
    if (store->byte_at(pos) == std::byte{0}) ++zeros;
  }
  EXPECT_LT(zeros, 12);  // ~1/256 of ~2100 samples expected by chance
}

TEST(CollPerf, GridMustMatchCommSize) {
  Platform p(small_testbed());
  CollPerfWorkload::Params params = tiny_collperf();
  params.grid = {3, 3, 3};  // 27 != 8
  const CollPerfWorkload workload(params);
  int failures = 0;
  p.launch([&](mpi::Comm comm) {
    auto file = mpiio::File::open(p.ctx, comm, "/pfs/bad",
                                  adio::amode::create | adio::amode::rdwr,
                                  coll_hints());
    ASSERT_TRUE(file.is_ok());
    const Status s = workload.write_file(file.value(), comm, 0);
    if (!s.is_ok()) ++failures;
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_EQ(failures, p.ranks());
}

TEST(CollPerf, PaperParamsAre64MiBPerRank) {
  const auto params = collperf_paper_params(512);
  const CollPerfWorkload workload(params);
  // 4 x 16 x 131072 doubles = 64 MiB.
  sim::Engine engine;
  net::Fabric fabric(1, net::FabricParams{});
  mpi::World world(engine, fabric, mpi::Topology(1, 1));
  engine.spawn("probe", [&] {
    EXPECT_EQ(workload.bytes_per_rank(world.comm(0)), 64 * MiB);
  });
  engine.run();
  EXPECT_THROW(collperf_paper_params(100), std::logic_error);
}

TEST(FlashIo, FileSizeIncludesHeaderAndDatasets) {
  Platform p(small_testbed());
  const FlashIoWorkload workload(tiny_flash());
  const Offset total = run_one_file(p, workload, "/pfs/flash");
  // header + 6 datasets of (8 procs x 4 blocks x 8 KiB).
  const Offset expected = 64 * KiB + 6 * (8 * 4 * 8 * KiB);
  EXPECT_EQ(p.pfs.stat_path("/pfs/flash").value().size, expected);
  EXPECT_EQ(total, expected);
}

TEST(FlashIo, HeaderOnlyCountedOnRankZero) {
  Platform p(small_testbed());
  const FlashIoWorkload workload(tiny_flash());
  p.launch([&](mpi::Comm comm) {
    const Offset mine = workload.bytes_per_rank(comm);
    const Offset base = 6 * 4 * 8 * KiB;
    if (comm.rank() == 0) {
      EXPECT_EQ(mine, base + 64 * KiB);
    } else {
      EXPECT_EQ(mine, base);
    }
  });
  p.run();
}

TEST(FlashIo, DatasetContentIsPerRankPattern) {
  Platform p(small_testbed());
  const FlashIoWorkload workload(tiny_flash());
  (void)run_one_file(p, workload, "/pfs/flash2");
  const ByteStore* store = p.pfs.peek("/pfs/flash2");
  ASSERT_NE(store, nullptr);
  // Dataset 0 begins after the header; rank 1's chunks start at
  // header + 1 * blocks * chunk.
  const Offset header = 64 * KiB;
  const Offset rank1 = header + 1 * 4 * 8 * KiB;
  // Rank 1's payload stream position for dataset 0 starts at 0.
  EXPECT_NE(store->byte_at(rank1), std::byte{0});
}

TEST(Ior, SegmentedLayout) {
  Platform p(small_testbed());
  const IorWorkload workload(tiny_ior());
  const Offset total = run_one_file(p, workload, "/pfs/ior");
  EXPECT_EQ(total, 8 * 3 * 128 * KiB);
  EXPECT_EQ(p.pfs.stat_path("/pfs/ior").value().size, total);
}

TEST(Ior, BlocksLandAtSegmentOffsets) {
  Platform p(small_testbed());
  IorWorkload::Params params = tiny_ior();
  const IorWorkload workload(params);
  (void)run_one_file(p, workload, "/pfs/ior2");
  const ByteStore* store = p.pfs.peek("/pfs/ior2");
  // Segment 1, rank 2's block starts at (1*8 + 2) * 128 KiB and carries the
  // rank-2 seed continuing at stream position 1*128 KiB.
  const Offset off = (1 * 8 + 2) * 128 * KiB;
  const std::uint64_t seed = Rng::derive(Rng::derive(0xE10, "ior"), "0:2");
  EXPECT_EQ(store->byte_at(off), DataView::pattern_byte(seed, 128 * KiB));
}

}  // namespace
}  // namespace e10::workloads
