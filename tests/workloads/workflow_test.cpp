#include "workloads/workflow.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "workloads/experiment.h"

namespace e10::workloads {
namespace {

using namespace e10::units;

IorWorkload::Params tiny_ior() {
  IorWorkload::Params params;
  params.block_bytes = 256 * KiB;
  params.segments = 2;
  return params;
}

mpi::Info hints(const std::string& cache, const std::string& flush) {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");
  info.set("e10_cache", cache);
  if (cache != "disable") {
    info.set("e10_cache_path", "/scratch");
    info.set("e10_cache_flush_flag", flush);
    info.set("e10_cache_discard_flag", "enable");
  }
  return info;
}

TEST(Workflow, WritesAllFilesAndComputesBandwidth) {
  Platform p(small_testbed());
  const IorWorkload workload(tiny_ior());
  WorkflowParams params;
  params.base_path = "/pfs/wf";
  params.num_files = 3;
  params.compute_delay = seconds(1);
  params.deferred_close = false;
  params.hints = hints("disable", "");
  const WorkflowResult result = run_workflow(p, workload, params);
  ASSERT_EQ(result.phases.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(p.pfs.exists("/pfs/wf_" + std::to_string(k))) << k;
    EXPECT_GT(result.phases[static_cast<std::size_t>(k)].write_time, 0);
  }
  EXPECT_EQ(result.total_bytes, 3 * 8 * 2 * 256 * KiB);
  EXPECT_GT(result.bandwidth_gib, 0.0);
  // Compute delays are not part of the I/O time.
  EXPECT_LT(result.io_time, seconds(3));
}

TEST(Workflow, DeferredCloseHidesSyncBehindCompute) {
  const IorWorkload workload(tiny_ior());
  auto run_with_delay = [&](Time delay) {
    Platform p(small_testbed());
    WorkflowParams params;
    params.base_path = "/pfs/wfd";
    params.num_files = 3;
    params.compute_delay = delay;
    params.deferred_close = true;
    params.include_last_phase = false;
    params.hints = hints("enable", "flush_immediate");
    return run_workflow(p, workload, params);
  };
  const WorkflowResult hidden = run_with_delay(seconds(10));
  const WorkflowResult exposed = run_with_delay(0);
  // With a long compute phase the intermediate residuals vanish.
  for (std::size_t k = 0; k + 1 < hidden.phases.size(); ++k) {
    EXPECT_LT(hidden.phases[k].residual_close, milliseconds(5)) << k;
  }
  // With no compute at all, the residual close pays the sync.
  Time total_residual = 0;
  for (std::size_t k = 0; k + 1 < exposed.phases.size(); ++k) {
    total_residual += exposed.phases[k].residual_close;
  }
  EXPECT_GT(total_residual, milliseconds(5));
  EXPECT_GT(hidden.bandwidth_gib, exposed.bandwidth_gib);
}

TEST(Workflow, IncludeLastPhaseLowersBandwidth) {
  const IorWorkload workload(tiny_ior());
  auto run_with = [&](bool include_last) {
    Platform p(small_testbed());
    WorkflowParams params;
    params.base_path = "/pfs/wfl";
    params.num_files = 2;
    params.compute_delay = seconds(10);
    params.deferred_close = true;
    params.include_last_phase = include_last;
    params.hints = hints("enable", "flush_immediate");
    return run_workflow(p, workload, params);
  };
  const WorkflowResult with = run_with(true);
  const WorkflowResult without = run_with(false);
  // The last file's sync can never be hidden (no compute follows): counting
  // it reduces the average bandwidth — the coll_perf vs IOR accounting
  // difference in the paper.
  EXPECT_LT(with.bandwidth_gib, without.bandwidth_gib);
}

TEST(Workflow, CacheEnabledFilesAreComplete) {
  Platform p(small_testbed());
  const IorWorkload workload(tiny_ior());
  WorkflowParams params;
  params.base_path = "/pfs/wfc";
  params.num_files = 2;
  params.compute_delay = milliseconds(100);
  params.deferred_close = true;
  params.hints = hints("enable", "flush_immediate");
  (void)run_workflow(p, workload, params);
  for (int k = 0; k < 2; ++k) {
    const auto info =
        p.pfs.stat_path("/pfs/wfc_" + std::to_string(k));
    ASSERT_TRUE(info.is_ok()) << k;
    EXPECT_EQ(info.value().size, 8 * 2 * 256 * KiB) << k;
  }
  // All cache files were discarded.
  for (std::size_t node = 0; node < p.params().compute_nodes; ++node) {
    EXPECT_EQ(p.lfs.at(node).used_bytes(), 0);
  }
}

TEST(Experiment, HintsMatchSpec) {
  ExperimentSpec spec;
  spec.aggregators = 16;
  spec.cb_buffer_size = 16 * MiB;
  spec.cache_case = CacheCase::enabled;
  const mpi::Info info = experiment_hints(spec);
  EXPECT_EQ(info.get_or("cb_nodes", ""), "16");
  EXPECT_EQ(info.get_or("cb_buffer_size", ""), "16777216");
  EXPECT_EQ(info.get_or("e10_cache", ""), "enable");
  EXPECT_EQ(info.get_or("e10_cache_flush_flag", ""), "flush_immediate");
  EXPECT_EQ(combo_label(spec), "16_16m");

  spec.cache_case = CacheCase::theoretical;
  EXPECT_EQ(experiment_hints(spec).get_or("e10_cache_flush_flag", ""), "none");
  spec.cache_case = CacheCase::disabled;
  EXPECT_EQ(experiment_hints(spec).get_or("e10_cache", ""), "disable");
}

TEST(Experiment, PaperSweepHasTwelveCombos) {
  const auto sweep = paper_sweep();
  EXPECT_EQ(sweep.size(), 12u);
  EXPECT_EQ(sweep.front(), std::make_pair(8, 4 * MiB));
  EXPECT_EQ(sweep.back(), std::make_pair(64, 64 * MiB));
}

TEST(Experiment, RunsEndToEndAtTestScale) {
  ExperimentSpec spec;
  spec.testbed = small_testbed();
  spec.aggregators = 4;
  spec.cb_buffer_size = 256 * KiB;
  spec.cache_case = CacheCase::enabled;
  spec.workflow.base_path = "/pfs/exp";
  spec.workflow.num_files = 2;
  spec.workflow.compute_delay = seconds(2);
  const auto result = run_experiment(spec, [](const TestbedParams&) {
    return std::make_unique<IorWorkload>(IorWorkload::Params{256 * KiB, 2});
  });
  EXPECT_EQ(result.combo, "4_0m");  // 256 KiB rounds down to 0 MiB label
  EXPECT_GT(result.bandwidth_gib, 0.0);
  EXPECT_GT(result.breakdown.at(prof::Phase::write_contig), 0);
  EXPECT_GT(result.breakdown.at(prof::Phase::shuffle_all2all), 0);
}

}  // namespace
}  // namespace e10::workloads
