// Virtual-time regression lock: a miniature paper sweep whose exact
// virtual-time results are pinned as golden constants.
//
// The DES engine's determinism contract says scheduler/data-structure
// optimizations must never change simulated results — only host time. The
// bench-level identity diffs (results/BENCH_engine.json) enforce that
// against the previous commit at 512 ranks; this test enforces it forever
// at unit scale: any change to the scheduler, the collective write path,
// the cache or the PFS model that shifts virtual time or output bytes by
// even one unit fails a golden row below.
//
// To regenerate after an *intentional* model change, run with
//   E10_PRINT_GOLDEN=1 ./workloads_test --gtest_filter='SweepRegression.*'
// and paste the printed table over kGolden.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/units.h"
#include "workloads/experiment.h"
#include "workloads/workload.h"

namespace e10::workloads {
namespace {

using namespace e10::units;

struct GoldenRow {
  int aggregators;
  Offset cb_buffer;
  CacheCase cache_case;
  Time io_time;           // exact virtual nanoseconds
  const char* checksum;   // sampled output-content fingerprint
  std::uint64_t events;   // scheduler pops — the engine-level invariant
};

// 3 aggregator counts x 2 buffer sizes x 3 cache cases at small_testbed
// scale (8 ranks, 2 servers, jitter off). Values produced by the flat
// ReadyQueue/ExtentMap/ByteStore implementation and verified byte-identical
// to the seed std::map scheduler's full-sweep reports.
constexpr GoldenRow kGolden[] = {
    {2, 64 * KiB, CacheCase::disabled, 2844197, "6ad42c345f9d8fea", 301},
    {2, 256 * KiB, CacheCase::disabled, 2748403, "6ad42c345f9d8fea", 236},
    {4, 64 * KiB, CacheCase::disabled, 2863049, "6ad42c345f9d8fea", 277},
    {4, 256 * KiB, CacheCase::disabled, 2638995, "6ad42c345f9d8fea", 248},
    {8, 64 * KiB, CacheCase::disabled, 2863049, "6ad42c345f9d8fea", 277},
    {8, 256 * KiB, CacheCase::disabled, 2638995, "6ad42c345f9d8fea", 248},
    {2, 64 * KiB, CacheCase::enabled, 18869445, "6ad42c345f9d8fea", 404},
    {2, 256 * KiB, CacheCase::enabled, 3961843, "6ad42c345f9d8fea", 324},
    {4, 64 * KiB, CacheCase::enabled, 30371591, "6ad42c345f9d8fea", 380},
    {4, 256 * KiB, CacheCase::enabled, 12612815, "6ad42c345f9d8fea", 347},
    {8, 64 * KiB, CacheCase::enabled, 30371591, "6ad42c345f9d8fea", 380},
    {8, 256 * KiB, CacheCase::enabled, 12612815, "6ad42c345f9d8fea", 347},
    // The theoretical case never flushes, so the PFS fingerprint is the
    // cache-resident subset — stable, but different from the flushed cases.
    {2, 64 * KiB, CacheCase::theoretical, 3834093, "a31e272015f12c43", 388},
    {2, 256 * KiB, CacheCase::theoretical, 3961843, "a31e272015f12c43", 316},
    {4, 64 * KiB, CacheCase::theoretical, 3098801, "a31e272015f12c43", 364},
    {4, 256 * KiB, CacheCase::theoretical, 3098803, "a31e272015f12c43", 336},
    {8, 64 * KiB, CacheCase::theoretical, 3098801, "a31e272015f12c43", 364},
    {8, 256 * KiB, CacheCase::theoretical, 3098803, "a31e272015f12c43", 336},
};

ExperimentResult run_row(const GoldenRow& row) {
  ExperimentSpec spec;
  spec.testbed = small_testbed();
  spec.aggregators = row.aggregators;
  spec.cb_buffer_size = row.cb_buffer;
  spec.cache_case = row.cache_case;
  spec.workflow.base_path = "/pfs/sweep_reg";
  spec.workflow.num_files = 2;
  spec.workflow.compute_delay = milliseconds(10);
  spec.workflow.include_last_phase = false;
  return run_experiment(spec, [](const TestbedParams&) {
    CollPerfWorkload::Params params;
    params.grid = {2, 2, 2};
    params.block = {2, 4, 1024};  // 64 KiB per rank
    params.elem_bytes = 8;
    return std::make_unique<CollPerfWorkload>(params);
  });
}

TEST(SweepRegression, VirtualTimesAndContentAreBitIdentical) {
  const bool print = std::getenv("E10_PRINT_GOLDEN") != nullptr;
  for (const GoldenRow& row : kGolden) {
    const ExperimentResult result = run_row(row);
    if (print) {
      std::fprintf(
          stderr, "    {%d, %lld * KiB, CacheCase::%s, %lld, \"%s\", %llu},\n",
          row.aggregators, static_cast<long long>(row.cb_buffer / KiB),
          row.cache_case == CacheCase::disabled
              ? "disabled"
              : (row.cache_case == CacheCase::enabled ? "enabled"
                                                      : "theoretical"),
          static_cast<long long>(result.workflow.io_time),
          result.content_checksum.c_str(),
          static_cast<unsigned long long>(result.engine_stats.events));
      continue;
    }
    const std::string label = result.combo + "/" + to_string(row.cache_case);
    EXPECT_EQ(result.workflow.io_time, row.io_time) << label;
    EXPECT_EQ(result.content_checksum, row.checksum) << label;
    EXPECT_EQ(result.engine_stats.events, row.events) << label;
  }
}

TEST(SweepRegression, RepeatedRunsAreIdentical) {
  // Same spec twice in one process: every deterministic output — virtual
  // io time, content fingerprint, scheduler counters — must agree exactly.
  const GoldenRow& row = kGolden[7];  // cache enabled, mid-size buffer
  const ExperimentResult a = run_row(row);
  const ExperimentResult b = run_row(row);
  EXPECT_EQ(a.workflow.io_time, b.workflow.io_time);
  EXPECT_EQ(a.workflow.total_bytes, b.workflow.total_bytes);
  EXPECT_EQ(a.content_checksum, b.content_checksum);
  EXPECT_EQ(a.engine_stats.events, b.engine_stats.events);
  EXPECT_EQ(a.engine_stats.switches, b.engine_stats.switches);
  EXPECT_EQ(a.engine_stats.spawned, b.engine_stats.spawned);
  EXPECT_EQ(a.engine_stats.max_ready_depth, b.engine_stats.max_ready_depth);
}

}  // namespace
}  // namespace e10::workloads
