#include "net/fabric.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::net {
namespace {

using namespace e10::units;

TEST(Fabric, SmallMessageDominatedByLatency) {
  Fabric fabric(2, FabricParams{});
  const Time arrival = fabric.transfer(0, 1, 8, 0);
  // overhead (1us) + latency (2us) + tiny serialization
  EXPECT_GE(arrival, microseconds(3));
  EXPECT_LT(arrival, microseconds(5));
}

TEST(Fabric, LargeMessageDominatedByBandwidth) {
  FabricParams params;
  Fabric fabric(2, params);
  const Offset size = 3400 * MiB;  // exactly 1 s at nominal NIC speed
  const Time arrival = fabric.transfer(0, 1, size, 0);
  // Serialized once at tx and once at rx: ~2 s total.
  EXPECT_GT(arrival, seconds(1));
  EXPECT_LT(arrival, seconds(3));
}

TEST(Fabric, TxDonePrecedesArrival) {
  Fabric fabric(2, FabricParams{});
  const auto times = fabric.transfer_times(0, 1, 1 * MiB, 0);
  EXPECT_LT(times.tx_done, times.arrival);
}

TEST(Fabric, SenderNicSerializesBackToBackSends) {
  Fabric fabric(3, FabricParams{});
  const Time first = fabric.transfer(0, 1, 4 * MiB, 0);
  const Time second = fabric.transfer(0, 2, 4 * MiB, 0);
  EXPECT_GT(second, first);  // same tx NIC, distinct rx NICs
}

TEST(Fabric, ReceiverNicSerializesIncast) {
  Fabric fabric(3, FabricParams{});
  const Time first = fabric.transfer(1, 0, 4 * MiB, 0);
  const Time second = fabric.transfer(2, 0, 4 * MiB, 0);
  EXPECT_GT(second, first);  // distinct tx NICs, same rx NIC
}

TEST(Fabric, IntraNodeUsesMemoryPath) {
  Fabric fabric(2, FabricParams{});
  const Time local = fabric.transfer(0, 0, 4 * MiB, 0);
  const Time remote = fabric.transfer(0, 1, 4 * MiB, 0);
  EXPECT_LT(local, remote);
  EXPECT_EQ(fabric.intra_node_bytes(), 4 * MiB);
  EXPECT_EQ(fabric.inter_node_bytes(), 4 * MiB);
}

TEST(Fabric, ZeroByteMessageStillPaysOverhead) {
  Fabric fabric(2, FabricParams{});
  const Time arrival = fabric.transfer(0, 1, 0, 0);
  EXPECT_GE(arrival, microseconds(3));
}

TEST(Fabric, InvalidArgumentsThrow) {
  Fabric fabric(2, FabricParams{});
  EXPECT_THROW(fabric.transfer(0, 5, 1, 0), std::logic_error);
  EXPECT_THROW(fabric.transfer(5, 0, 1, 0), std::logic_error);
  EXPECT_THROW(fabric.transfer(0, 1, -1, 0), std::logic_error);
  EXPECT_THROW(Fabric(0, FabricParams{}), std::logic_error);
}

TEST(Fabric, DisjointPairsDoNotContend) {
  Fabric fabric(4, FabricParams{});
  const Time a = fabric.transfer(0, 1, 4 * MiB, 0);
  const Time b = fabric.transfer(2, 3, 4 * MiB, 0);
  EXPECT_EQ(a, b);  // independent NIC pairs, identical cost
}

}  // namespace
}  // namespace e10::net
