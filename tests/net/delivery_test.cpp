#include <gtest/gtest.h>

#include "common/units.h"
#include "net/fabric.h"

namespace e10::net {
namespace {

using namespace e10::units;

TEST(DeliveryEstimate, MatchesUncontendedTransfer) {
  Fabric reserved(2, FabricParams{});
  Fabric estimated(2, FabricParams{});
  const Time t_reserved = reserved.transfer(0, 1, 64 * KiB, 0);
  const Time t_estimate = estimated.delivery_estimate(0, 1, 64 * KiB, 0);
  // On an idle fabric the estimate is close to the reserved path (the
  // reserved path serializes at both NICs; the estimate charges the wire
  // once).
  EXPECT_LE(t_estimate, t_reserved);
  EXPECT_GE(2 * t_estimate, t_reserved);
}

TEST(DeliveryEstimate, DoesNotReserveCapacity) {
  Fabric fabric(2, FabricParams{});
  // A large future-time estimate must not affect later transfers.
  (void)fabric.delivery_estimate(0, 1, 64 * MiB, seconds(100));
  const Time arrival = fabric.transfer(0, 1, 4 * KiB, 0);
  EXPECT_LT(arrival, milliseconds(1));  // unaffected by the estimate
}

TEST(DeliveryEstimate, FutureBaseTimeJustShifts) {
  Fabric fabric(2, FabricParams{});
  const Time at_zero = fabric.delivery_estimate(0, 1, 1 * KiB, 0);
  const Time at_five = fabric.delivery_estimate(0, 1, 1 * KiB, seconds(5));
  EXPECT_EQ(at_five - seconds(5), at_zero);
}

TEST(DeliveryEstimate, IntraNodeCheaper) {
  Fabric fabric(2, FabricParams{});
  EXPECT_LT(fabric.delivery_estimate(0, 0, 1 * MiB, 0),
            fabric.delivery_estimate(0, 1, 1 * MiB, 0));
}

TEST(DeliveryEstimate, InvalidArgumentsThrow) {
  Fabric fabric(2, FabricParams{});
  EXPECT_THROW((void)fabric.delivery_estimate(0, 9, 1, 0), std::logic_error);
  EXPECT_THROW((void)fabric.delivery_estimate(0, 1, -1, 0), std::logic_error);
}

}  // namespace
}  // namespace e10::net
