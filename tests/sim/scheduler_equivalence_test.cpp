// Scheduler equivalence suite: the allocation-free ReadyQueue heap must be
// observationally identical to the seed engine's ordered-map scheduler.
//
// The seed kept runnable processes in a std::map keyed on (time, seq) and
// always resumed *map.begin(); the heap replaces the container but must
// preserve the exact pop order, or virtual-time results silently diverge.
// These tests drive the queue (and the engine built on it) against an
// ordered-map reference under randomized schedules, and pin down the
// cancel/stop_at paths that bypass the normal pop loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/ready_queue.h"

namespace e10::sim {
namespace {

using namespace e10::units;

using Key = std::pair<Time, std::uint64_t>;

TEST(SchedulerEquivalence, RandomizedPushPopMatchesOrderedMapReference) {
  // Interleave pushes and pops at random; every pop must return exactly
  // what the seed's map.begin() would have — same time, same seq, same
  // payload. Heavy time collisions force the seq tie-break constantly.
  for (const std::uint32_t seed : {1u, 7u, 42u, 2016u}) {
    std::mt19937 rng(seed);
    ReadyQueue<int> queue;
    std::map<Key, int> reference;
    std::uint64_t next_seq = 0;
    int next_item = 0;
    for (int step = 0; step < 20000; ++step) {
      const bool push = reference.empty() || rng() % 100 < 55;
      if (push) {
        const Time time = static_cast<Time>(rng() % 50);
        queue.push(time, next_seq, next_item);
        reference.emplace(Key{time, next_seq}, next_item);
        ++next_seq;
        ++next_item;
      } else {
        const auto expected = reference.begin();
        const auto got = queue.pop();
        ASSERT_EQ(got.time, expected->first.first) << "seed " << seed;
        ASSERT_EQ(got.seq, expected->first.second) << "seed " << seed;
        ASSERT_EQ(got.item, expected->second) << "seed " << seed;
        reference.erase(expected);
      }
      ASSERT_EQ(queue.size(), reference.size());
    }
    while (!reference.empty()) {
      const auto expected = reference.begin();
      const auto got = queue.pop();
      ASSERT_EQ(got.time, expected->first.first);
      ASSERT_EQ(got.seq, expected->first.second);
      ASSERT_EQ(got.item, expected->second);
      reference.erase(expected);
    }
    EXPECT_TRUE(queue.empty());
  }
}

TEST(SchedulerEquivalence, PopOrderIndependentOfPushOrder) {
  // The heap's internal layout depends on insertion order; the pop order
  // must not. Push the same key set in shuffled orders and expect the one
  // sorted (time, seq) sequence every time.
  std::vector<Key> keys;
  for (Time t = 0; t < 16; ++t) {
    for (std::uint64_t s = 0; s < 16; ++s) {
      keys.emplace_back(t, t * 100 + s);  // unique seqs, many equal times
    }
  }
  std::vector<Key> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  std::mt19937 rng(3);
  for (int round = 0; round < 10; ++round) {
    std::shuffle(keys.begin(), keys.end(), rng);
    ReadyQueue<int> queue;
    for (const auto& [time, seq] : keys) queue.push(time, seq, 0);
    for (const Key& expected : sorted) {
      const auto got = queue.pop();
      ASSERT_EQ(Key(got.time, got.seq), expected) << "round " << round;
    }
    EXPECT_TRUE(queue.empty());
  }
}

/// One deterministic pseudo-random scenario: `procs` processes, each doing
/// a per-process seeded walk of delays, yields and child spawns. Returns
/// the observed execution trace as (process tag, virtual time) pairs.
std::vector<std::pair<int, Time>> run_scenario(Engine& eng, int procs,
                                               std::uint32_t seed,
                                               std::vector<EngineStats>* out) {
  std::vector<std::pair<int, Time>> trace;
  for (int p = 0; p < procs; ++p) {
    eng.spawn("p" + std::to_string(p), [&eng, &trace, p, seed] {
      std::mt19937 rng(seed * 1000003u + static_cast<std::uint32_t>(p));
      for (int step = 0; step < 40; ++step) {
        trace.emplace_back(p, eng.now());
        switch (rng() % 4) {
          case 0:
            eng.delay(microseconds(rng() % 7));
            break;
          case 1:
            eng.yield();
            break;
          case 2:
            eng.delay(0);  // stays runnable at the same time, behind peers
            break;
          case 3: {
            const int child = p * 1000 + step;
            eng.spawn("c" + std::to_string(child), [&eng, &trace, child] {
              trace.emplace_back(child, eng.now());
              eng.delay(microseconds(1));
              trace.emplace_back(child, eng.now());
            });
            break;
          }
        }
      }
      trace.emplace_back(p, eng.now());
    });
  }
  eng.run();
  if (out != nullptr) out->push_back(eng.stats());
  return trace;
}

TEST(SchedulerEquivalence, RandomizedScheduleIsBitIdenticalAcrossRuns) {
  // Same scenario, two engines: the full execution trace — who ran, at
  // which virtual time, in which order — and every scheduler counter must
  // match exactly. This is the determinism contract the bench identity
  // diffs (results/BENCH_engine.json) rely on, at unit-test scale.
  for (const std::uint32_t seed : {5u, 99u, 2016u}) {
    std::vector<EngineStats> stats;
    Engine a;
    const auto trace_a = run_scenario(a, 12, seed, &stats);
    Engine b;
    const auto trace_b = run_scenario(b, 12, seed, &stats);
    ASSERT_EQ(trace_a, trace_b) << "seed " << seed;
    EXPECT_EQ(stats[0].events, stats[1].events);
    EXPECT_EQ(stats[0].switches, stats[1].switches);
    EXPECT_EQ(stats[0].spawned, stats[1].spawned);
    EXPECT_EQ(stats[0].max_ready_depth, stats[1].max_ready_depth);
    EXPECT_EQ(stats[0].stack_reuses, stats[1].stack_reuses);
  }
}

TEST(SchedulerEquivalence, StopAtCancelCutsTheSameTraceEveryTime) {
  // stop_at() drains the ready queue through cancel_all rather than the
  // normal pop loop. The observable contract: the trace up to the deadline
  // is exactly the prefix of the uninterrupted trace, and two stopped runs
  // agree bit-for-bit.
  const std::uint32_t seed = 77;
  Engine full;
  const auto complete = run_scenario(full, 8, seed, nullptr);

  const Time deadline = microseconds(30);
  std::vector<EngineStats> stats;
  Engine a;
  a.stop_at(deadline);
  const auto stopped_a = run_scenario(a, 8, seed, &stats);
  EXPECT_TRUE(a.stopped());
  Engine b;
  b.stop_at(deadline);
  const auto stopped_b = run_scenario(b, 8, seed, &stats);
  ASSERT_EQ(stopped_a, stopped_b);
  EXPECT_EQ(stats[0].events, stats[1].events);
  EXPECT_EQ(stats[0].switches, stats[1].switches);

  ASSERT_LT(stopped_a.size(), complete.size());
  for (std::size_t i = 0; i < stopped_a.size(); ++i) {
    ASSERT_EQ(stopped_a[i], complete[i]) << "divergence at event " << i;
    ASSERT_LT(stopped_a[i].second, deadline);
  }
}

}  // namespace
}  // namespace e10::sim
