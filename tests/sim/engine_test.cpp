#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace e10::sim {
namespace {

using namespace e10::units;

TEST(Engine, SingleProcessDelays) {
  Engine eng;
  Time observed = -1;
  eng.spawn("p", [&] {
    EXPECT_EQ(eng.now(), 0);
    eng.delay(milliseconds(5));
    EXPECT_EQ(eng.now(), milliseconds(5));
    eng.delay(microseconds(3));
    observed = eng.now();
  });
  eng.run();
  EXPECT_EQ(observed, milliseconds(5) + microseconds(3));
}

TEST(Engine, LowestTimeRunsFirst) {
  Engine eng;
  std::vector<int> order;
  eng.spawn("late", [&] {
    eng.delay(milliseconds(10));
    order.push_back(2);
  });
  eng.spawn("early", [&] {
    eng.delay(milliseconds(1));
    order.push_back(1);
  });
  eng.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Engine, FifoTieBreakAtEqualTimes) {
  Engine eng;
  std::vector<std::string> order;
  for (const char* name : {"a", "b", "c"}) {
    eng.spawn(name, [&order, name] { order.push_back(name); });
  }
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");
}

TEST(Engine, SpawnFromWithinProcessStartsAtSpawnerTime) {
  Engine eng;
  Time child_start = -1;
  eng.spawn("parent", [&] {
    eng.delay(seconds(1));
    eng.spawn("child", [&] { child_start = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(child_start, seconds(1));
}

TEST(Engine, JoinAdvancesToFinishTime) {
  Engine eng;
  Time joined_at = -1;
  auto worker = eng.spawn("worker", [&] { eng.delay(seconds(2)); });
  eng.spawn("joiner", [&] {
    worker.join();
    joined_at = eng.now();
  });
  eng.run();
  EXPECT_EQ(joined_at, seconds(2));
  EXPECT_TRUE(worker.finished());
}

TEST(Engine, JoinAlreadyFinished) {
  Engine eng;
  Time joined_at = -1;
  auto worker = eng.spawn("worker", [&] { eng.delay(seconds(1)); });
  eng.spawn("joiner", [&] {
    eng.delay(seconds(5));
    worker.join();  // finished long ago: clock stays at 5 s
    joined_at = eng.now();
  });
  eng.run();
  EXPECT_EQ(joined_at, seconds(5));
}

TEST(Engine, AdvanceToPastIsNoop) {
  Engine eng;
  eng.spawn("p", [&] {
    eng.delay(seconds(1));
    eng.advance_to(milliseconds(1));  // in the past
    EXPECT_EQ(eng.now(), seconds(1));
    eng.advance_to(seconds(3));
    EXPECT_EQ(eng.now(), seconds(3));
  });
  eng.run();
}

TEST(Engine, MakeReadyWithFutureTimeSchedulesWakeup) {
  Engine eng;
  Time woke_at = -1;
  ProcessId sleeper_id = kNoProcess;
  eng.spawn("sleeper", [&] {
    sleeper_id = eng.current();
    eng.block("test");
    woke_at = eng.now();
  });
  eng.spawn("waker", [&] {
    eng.delay(milliseconds(1));
    eng.make_ready(sleeper_id, seconds(4));  // wake in the future
  });
  eng.run();
  EXPECT_EQ(woke_at, seconds(4));
}

TEST(Engine, DeadlockDetected) {
  Engine eng;
  eng.spawn("stuck", [&] { eng.block("forever"); });
  EXPECT_THROW(eng.run(), DeadlockError);
}

TEST(Engine, DeadlockReportNamesProcess) {
  Engine eng;
  eng.spawn("the-culprit", [&] { eng.block("a-reason"); });
  try {
    eng.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the-culprit"), std::string::npos);
    EXPECT_NE(what.find("a-reason"), std::string::npos);
  }
}

TEST(Engine, ProcessExceptionPropagates) {
  Engine eng;
  eng.spawn("thrower", [] { throw std::runtime_error("boom"); });
  eng.spawn("bystander", [&] { eng.delay(seconds(100)); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, DestructorCleansUpWithoutRun) {
  // Spawned but never run: destructor must cancel and join cleanly.
  Engine eng;
  eng.spawn("never-run", [&] { eng.delay(seconds(1)); });
}

TEST(Engine, DestructorCleansUpBlockedProcesses) {
  auto eng = std::make_unique<Engine>();
  eng->spawn("blocked-forever", [&e = *eng] { e.block("leak-check"); });
  try {
    eng->run();
  } catch (const DeadlockError&) {
    // expected
  }
  eng.reset();  // must not hang or crash
}

TEST(Engine, ManyProcessesDeterministicOrder) {
  // Two identical runs produce identical completion sequences.
  auto run_once = [] {
    Engine eng;
    std::vector<int> done;
    for (int i = 0; i < 64; ++i) {
      eng.spawn("p" + std::to_string(i), [&eng, &done, i] {
        eng.delay(microseconds((i * 7) % 13));
        eng.delay(microseconds((i * 3) % 5));
        done.push_back(i);
      });
    }
    eng.run();
    return done;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, NegativeDelayThrows) {
  Engine eng;
  eng.spawn("p", [&] { eng.delay(-1); });
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, SwitchCountGrows) {
  // Two interleaving processes force real fiber switches; a lone process
  // delaying takes the no-switch fast path.
  Engine eng;
  for (int p = 0; p < 2; ++p) {
    eng.spawn("p" + std::to_string(p), [&] {
      for (int i = 0; i < 10; ++i) eng.delay(1);
    });
  }
  eng.run();
  EXPECT_GE(eng.switch_count(), 20u);
}

TEST(Engine, LoneProcessDelaysWithoutSwitching) {
  Engine eng;
  eng.spawn("solo", [&] {
    for (int i = 0; i < 100; ++i) eng.delay(units::microseconds(1));
    EXPECT_EQ(eng.now(), units::microseconds(100));
  });
  eng.run();
  EXPECT_LE(eng.switch_count(), 2u);  // just the initial resume
}

TEST(Engine, StopAtHaltsRunAtDeadline) {
  Engine eng;
  std::vector<Time> observed;
  for (int p = 0; p < 3; ++p) {
    eng.spawn("p" + std::to_string(p), [&] {
      for (int i = 0; i < 10; ++i) {
        eng.delay(milliseconds(1));
        observed.push_back(eng.now());
      }
    });
  }
  eng.stop_at(milliseconds(4));
  eng.run();
  EXPECT_TRUE(eng.stopped());
  EXPECT_EQ(eng.now(), milliseconds(4));
  // No simulated work at or after the stop time happened.
  ASSERT_FALSE(observed.empty());
  for (const Time t : observed) EXPECT_LT(t, milliseconds(4));
  EXPECT_EQ(eng.live_processes(), 0u);  // everyone was cancelled
}

TEST(Engine, StopAtLoneProcessFastPath) {
  // A lone process delaying takes the no-switch fast path; the stop must
  // still interrupt it at the deadline.
  Engine eng;
  Time last = -1;
  eng.spawn("solo", [&] {
    for (int i = 0; i < 100; ++i) {
      eng.delay(microseconds(10));
      last = eng.now();
    }
  });
  eng.stop_at(microseconds(55));
  eng.run();
  EXPECT_TRUE(eng.stopped());
  EXPECT_EQ(eng.now(), microseconds(55));
  EXPECT_EQ(last, microseconds(50));
}

TEST(Engine, StopIsOneShotAndRecoveryRunProceeds) {
  Engine eng;
  int crashed_progress = 0;
  eng.spawn("victim", [&] {
    for (int i = 0; i < 10; ++i) {
      eng.delay(milliseconds(1));
      ++crashed_progress;
    }
  });
  eng.stop_at(milliseconds(3));
  eng.run();
  EXPECT_TRUE(eng.stopped());
  EXPECT_EQ(crashed_progress, 2);  // work strictly before t=3ms only

  // Recovery pass: a fresh process spawned from outside starts at the
  // crash time and runs to completion — the stop does not re-fire.
  Time recovery_start = -1;
  Time recovery_end = -1;
  eng.spawn("recovery", [&] {
    recovery_start = eng.now();
    eng.delay(milliseconds(2));
    recovery_end = eng.now();
  });
  eng.run();
  EXPECT_FALSE(eng.stopped());
  EXPECT_EQ(recovery_start, milliseconds(3));
  EXPECT_EQ(recovery_end, milliseconds(5));
}

TEST(Engine, StopAfterNaturalCompletionIsNotStopped) {
  Engine eng;
  eng.spawn("p", [&] { eng.delay(milliseconds(1)); });
  eng.stop_at(milliseconds(100));
  eng.run();
  EXPECT_FALSE(eng.stopped());
  // The unconsumed arm must not break a later run either.
  eng.spawn("q", [&] { eng.delay(milliseconds(1)); });
  eng.run();
  EXPECT_FALSE(eng.stopped());
}

}  // namespace
}  // namespace e10::sim
