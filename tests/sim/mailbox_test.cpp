#include "sim/mailbox.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"

namespace e10::sim {
namespace {

using namespace e10::units;

TEST(Mailbox, SendThenRecv) {
  Engine eng;
  Mailbox<int> box(eng);
  int got = 0;
  eng.spawn("sender", [&] { box.send(42); });
  eng.spawn("receiver", [&] { got = box.recv(); });
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(Mailbox, RecvBlocksUntilSend) {
  Engine eng;
  Mailbox<int> box(eng);
  Time recv_time = -1;
  eng.spawn("receiver", [&] {
    (void)box.recv();
    recv_time = eng.now();
  });
  eng.spawn("sender", [&] {
    eng.delay(seconds(2));
    box.send(1);
  });
  eng.run();
  EXPECT_EQ(recv_time, seconds(2));
}

TEST(Mailbox, FutureAvailabilityModelsTransferDelay) {
  Engine eng;
  Mailbox<std::string> box(eng);
  Time recv_time = -1;
  eng.spawn("sender", [&] {
    // Message "arrives" 5 ms in the sender's future (network latency);
    // the sender does not block.
    box.send("data", eng.now() + milliseconds(5));
    EXPECT_EQ(eng.now(), 0);
  });
  eng.spawn("receiver", [&] {
    (void)box.recv();
    recv_time = eng.now();
  });
  eng.run();
  EXPECT_EQ(recv_time, milliseconds(5));
}

TEST(Mailbox, FifoOrder) {
  Engine eng;
  Mailbox<int> box(eng);
  std::vector<int> got;
  eng.spawn("sender", [&] {
    for (int i = 0; i < 5; ++i) box.send(i);
  });
  eng.spawn("receiver", [&] {
    for (int i = 0; i < 5; ++i) got.push_back(box.recv());
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, TryRecvEmpty) {
  Engine eng;
  Mailbox<int> box(eng);
  eng.spawn("p", [&] {
    EXPECT_FALSE(box.try_recv().has_value());
    box.send(9);
    const auto v = box.try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
  });
  eng.run();
}

TEST(Mailbox, MultipleReceiversEachGetOne) {
  Engine eng;
  Mailbox<int> box(eng);
  int sum = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("r" + std::to_string(i), [&] { sum += box.recv(); });
  }
  eng.spawn("sender", [&] {
    eng.delay(milliseconds(1));
    box.send(1);
    box.send(2);
    box.send(4);
  });
  eng.run();
  EXPECT_EQ(sum, 7);
}

TEST(Mailbox, MoveOnlyPayload) {
  Engine eng;
  Mailbox<std::unique_ptr<int>> box(eng);
  int got = 0;
  eng.spawn("sender", [&] { box.send(std::make_unique<int>(5)); });
  eng.spawn("receiver", [&] { got = *box.recv(); });
  eng.run();
  EXPECT_EQ(got, 5);
}

}  // namespace
}  // namespace e10::sim
