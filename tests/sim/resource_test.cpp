#include "sim/resource.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::sim {
namespace {

using namespace e10::units;

TEST(ResourceTimeline, IdleResourceServesImmediately) {
  ResourceTimeline r;
  EXPECT_EQ(r.reserve(seconds(1), milliseconds(10)),
            seconds(1) + milliseconds(10));
}

TEST(ResourceTimeline, BackToBackRequestsQueue) {
  ResourceTimeline r;
  const Time first = r.reserve(0, milliseconds(10));
  EXPECT_EQ(first, milliseconds(10));
  // Second request at t=0 waits for the first to finish.
  const Time second = r.reserve(0, milliseconds(10));
  EXPECT_EQ(second, milliseconds(20));
}

TEST(ResourceTimeline, GapLeavesResourceIdle) {
  ResourceTimeline r;
  (void)r.reserve(0, milliseconds(1));
  const Time later = r.reserve(seconds(10), milliseconds(1));
  EXPECT_EQ(later, seconds(10) + milliseconds(1));
}

TEST(ResourceTimeline, Accounting) {
  ResourceTimeline r;
  (void)r.reserve(0, milliseconds(3));
  (void)r.reserve(0, milliseconds(4));
  EXPECT_EQ(r.reservations(), 2u);
  EXPECT_EQ(r.busy_time(), milliseconds(7));
  EXPECT_EQ(r.next_free(), milliseconds(7));
}

TEST(ResourceTimeline, NegativeServiceThrows) {
  ResourceTimeline r;
  EXPECT_THROW(r.reserve(0, -1), std::logic_error);
}

TEST(MultiLaneTimeline, ParallelLanesAbsorbBurst) {
  MultiLaneTimeline r(2);
  // Two requests at t=0 land on different lanes.
  EXPECT_EQ(r.reserve(0, milliseconds(10)), milliseconds(10));
  EXPECT_EQ(r.reserve(0, milliseconds(10)), milliseconds(10));
  // Third queues behind the earliest-free lane.
  EXPECT_EQ(r.reserve(0, milliseconds(10)), milliseconds(20));
}

TEST(MultiLaneTimeline, ZeroLanesThrows) {
  EXPECT_THROW(MultiLaneTimeline r(0), std::logic_error);
}

}  // namespace
}  // namespace e10::sim
