#include "sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace e10::sim {
namespace {

using namespace e10::units;

TEST(SimMutex, MutualExclusionSerializesCriticalSections) {
  Engine eng;
  SimMutex mu(eng);
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 4; ++i) {
    eng.spawn("p" + std::to_string(i), [&] {
      SimLock lock(mu);
      ++inside;
      max_inside = std::max(max_inside, inside);
      eng.delay(milliseconds(1));
      --inside;
    });
  }
  eng.run();
  EXPECT_EQ(max_inside, 1);
}

TEST(SimMutex, FifoHandoff) {
  Engine eng;
  SimMutex mu(eng);
  std::vector<int> order;
  eng.spawn("holder", [&] {
    mu.lock();
    eng.delay(milliseconds(10));
    mu.unlock();
  });
  for (int i = 0; i < 3; ++i) {
    eng.spawn("w" + std::to_string(i), [&, i] {
      eng.delay(microseconds(i + 1));  // deterministic arrival order
      SimLock lock(mu);
      order.push_back(i);
    });
  }
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimMutex, UnlockWhileUnlockedThrows) {
  Engine eng;
  SimMutex mu(eng);
  eng.spawn("p", [&] { mu.unlock(); });
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(SimCondVar, ProducerConsumer) {
  Engine eng;
  SimMutex mu(eng);
  SimCondVar cv(eng);
  bool flag = false;
  Time consumer_woke = -1;
  eng.spawn("consumer", [&] {
    SimLock lock(mu);
    while (!flag) cv.wait(mu);
    consumer_woke = eng.now();
  });
  eng.spawn("producer", [&] {
    eng.delay(seconds(1));
    SimLock lock(mu);
    flag = true;
    cv.notify_one();
  });
  eng.run();
  EXPECT_EQ(consumer_woke, seconds(1));
}

TEST(SimCondVar, NotifyAllWakesEveryone) {
  Engine eng;
  SimMutex mu(eng);
  SimCondVar cv(eng);
  bool go = false;
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    eng.spawn("w" + std::to_string(i), [&] {
      SimLock lock(mu);
      while (!go) cv.wait(mu);
      ++woke;
    });
  }
  eng.spawn("waker", [&] {
    eng.delay(milliseconds(1));
    SimLock lock(mu);
    go = true;
    cv.notify_all();
  });
  eng.run();
  EXPECT_EQ(woke, 5);
}

TEST(SimCondVar, NotifyWithNoWaitersIsNoop) {
  Engine eng;
  SimMutex mu(eng);
  SimCondVar cv(eng);
  eng.spawn("p", [&] {
    cv.notify_one();
    cv.notify_all();
  });
  eng.run();
}

TEST(SimSemaphore, LimitsConcurrency) {
  Engine eng;
  SimSemaphore sem(eng, 2);
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 6; ++i) {
    eng.spawn("p" + std::to_string(i), [&] {
      sem.acquire();
      ++inside;
      max_inside = std::max(max_inside, inside);
      eng.delay(milliseconds(1));
      --inside;
      sem.release();
    });
  }
  eng.run();
  EXPECT_EQ(max_inside, 2);
}

TEST(SimSemaphore, ReleaseManyWakesMany) {
  Engine eng;
  SimSemaphore sem(eng, 0);
  int acquired = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("a" + std::to_string(i), [&] {
      sem.acquire();
      ++acquired;
    });
  }
  eng.spawn("releaser", [&] {
    eng.delay(milliseconds(1));
    sem.release(3);
  });
  eng.run();
  EXPECT_EQ(acquired, 3);
}

TEST(SimEvent, WaitBeforeSet) {
  Engine eng;
  SimEvent ev(eng);
  Time woke = -1;
  eng.spawn("waiter", [&] {
    ev.wait();
    woke = eng.now();
  });
  eng.spawn("setter", [&] {
    eng.delay(seconds(3));
    ev.set();
  });
  eng.run();
  EXPECT_EQ(woke, seconds(3));
}

TEST(SimEvent, WaitAfterSetAdvancesToCompletionTime) {
  Engine eng;
  SimEvent ev(eng);
  Time woke = -1;
  eng.spawn("setter", [&] { ev.set_at(seconds(10)); });  // async completion
  eng.spawn("late-waiter", [&] {
    eng.delay(seconds(1));
    ev.wait();
    woke = eng.now();
  });
  eng.run();
  EXPECT_EQ(woke, seconds(10));
}

TEST(SimEvent, WaitAfterPastCompletionDoesNotRewind) {
  Engine eng;
  SimEvent ev(eng);
  Time woke = -1;
  eng.spawn("setter", [&] { ev.set(); });  // completes at t=0
  eng.spawn("waiter", [&] {
    eng.delay(seconds(5));
    ev.wait();
    woke = eng.now();
  });
  eng.run();
  EXPECT_EQ(woke, seconds(5));
}

TEST(SimEvent, DoubleSetThrows) {
  Engine eng;
  SimEvent ev(eng);
  eng.spawn("p", [&] {
    ev.set();
    ev.set();
  });
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(SimBarrier, AllLeaveAtMaxArrival) {
  Engine eng;
  SimBarrier barrier(eng, 3);
  std::vector<Time> leave_times;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("p" + std::to_string(i), [&, i] {
      eng.delay(seconds(i + 1));  // arrive at 1, 2, 3 s
      barrier.arrive_and_wait();
      leave_times.push_back(eng.now());
    });
  }
  eng.run();
  ASSERT_EQ(leave_times.size(), 3u);
  for (const Time t : leave_times) EXPECT_EQ(t, seconds(3));
}

TEST(SimBarrier, CyclicReuse) {
  Engine eng;
  SimBarrier barrier(eng, 2);
  std::vector<Time> checkpoints;
  for (int i = 0; i < 2; ++i) {
    eng.spawn("p" + std::to_string(i), [&, i] {
      for (int round = 0; round < 3; ++round) {
        eng.delay(milliseconds(i == 0 ? 1 : 5));
        barrier.arrive_and_wait();
        if (i == 0) checkpoints.push_back(eng.now());
      }
    });
  }
  eng.run();
  ASSERT_EQ(checkpoints.size(), 3u);
  EXPECT_EQ(checkpoints[0], milliseconds(5));
  EXPECT_EQ(checkpoints[1], milliseconds(10));
  EXPECT_EQ(checkpoints[2], milliseconds(15));
}

}  // namespace
}  // namespace e10::sim
