// Two-phase collective read: coverage beyond the round-trip smoke tests —
// holes, EOF clamping, interleaved views, romio_cb_read toggles.
#include <gtest/gtest.h>

#include "common/units.h"
#include "mpiio/file.h"
#include "workloads/testbed.h"

namespace e10::mpiio {
namespace {

using namespace e10::units;
using adio::amode::create;
using adio::amode::rdwr;
using workloads::Platform;
using workloads::small_testbed;

mpi::Info coll_read_info() {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("romio_cb_read", "enable");
  info.set("cb_buffer_size", "131072");
  return info;
}

void write_rank_blocks(Platform& p, mpi::Comm comm, const std::string& path,
                       Offset block) {
  auto file = File::open(p.ctx, comm, path, create | rdwr, coll_read_info());
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE(file.value().write_at_all(
      comm.rank() * block,
      DataView::synthetic(50, comm.rank() * block, block)));
  ASSERT_TRUE(file.value().close());
}

TEST(CollRead, EveryRankReadsWholeFile) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 64 * KiB;
  p.launch([&](mpi::Comm comm) {
    write_rank_blocks(p, comm, "/pfs/whole", kBlock);
    auto file =
        File::open(p.ctx, comm, "/pfs/whole", rdwr, coll_read_info());
    ASSERT_TRUE(file.is_ok());
    const Offset total = static_cast<Offset>(comm.size()) * kBlock;
    const auto got = file.value().read_at_all(0, total);
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(got.value().size(), total);
    for (Offset i = 0; i < total; i += 4099) {
      ASSERT_EQ(got.value().byte_at(i), DataView::pattern_byte(50, i));
    }
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(CollRead, InterleavedStridedReads) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    constexpr Offset kChunk = 8 * KiB;
    write_rank_blocks(p, comm, "/pfs/strided", kChunk * 8);
    auto file =
        File::open(p.ctx, comm, "/pfs/strided", rdwr, coll_read_info());
    ASSERT_TRUE(file.is_ok());
    // Each rank reads a strided view over the whole file: chunk r, r+P, ...
    const auto type = mpi::FlatType::vector(
        8, kChunk, kChunk * comm.size());
    ASSERT_TRUE(file.value().set_view(comm.rank() * kChunk, type));
    const auto got = file.value().read_all(8 * kChunk);
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(got.value().size(), 8 * kChunk);
    // The j-th chunk of the stream is file offset (j*P + r) * kChunk.
    for (int j = 0; j < 8; ++j) {
      const Offset file_off =
          (static_cast<Offset>(j) * comm.size() + comm.rank()) * kChunk;
      ASSERT_EQ(got.value().byte_at(j * kChunk),
                DataView::pattern_byte(50, file_off))
          << "rank " << comm.rank() << " chunk " << j;
    }
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(CollRead, ReadPastEofZeroFills) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 16 * KiB;
  p.launch([&](mpi::Comm comm) {
    write_rank_blocks(p, comm, "/pfs/eofr", kBlock);
    auto file = File::open(p.ctx, comm, "/pfs/eofr", rdwr, coll_read_info());
    ASSERT_TRUE(file.is_ok());
    const Offset total = static_cast<Offset>(comm.size()) * kBlock;
    // Request one block beyond EOF: delivered zero-padded.
    const auto got = file.value().read_at_all(total - kBlock, 2 * kBlock);
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(got.value().size(), 2 * kBlock);
    EXPECT_EQ(got.value().byte_at(0),
              DataView::pattern_byte(50, total - kBlock));
    EXPECT_EQ(got.value().byte_at(kBlock + 5), std::byte{0});
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(CollRead, HolesReadAsZero) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/holes", create | rdwr,
                           coll_read_info());
    ASSERT_TRUE(file.is_ok());
    // Only even ranks write; odd blocks are holes.
    const Offset block = 16 * KiB;
    if (comm.rank() % 2 == 0) {
      ASSERT_TRUE(file.value().write_at_all(
          comm.rank() * block,
          DataView::synthetic(51, comm.rank() * block, block)));
    } else {
      ASSERT_TRUE(file.value().write_at_all(0, DataView()));
    }
    ASSERT_TRUE(file.value().sync());
    const Offset total = static_cast<Offset>(comm.size()) * block;
    const auto got = file.value().read_at_all(0, total - block);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value().byte_at(0), DataView::pattern_byte(51, 0));
    EXPECT_EQ(got.value().byte_at(block + 7), std::byte{0});  // hole
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(CollRead, DisabledCbReadUsesIndependentPath) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 16 * KiB;
  p.launch([&](mpi::Comm comm) {
    write_rank_blocks(p, comm, "/pfs/nocoll", kBlock);
    mpi::Info info;
    info.set("romio_cb_read", "disable");
    auto file = File::open(p.ctx, comm, "/pfs/nocoll", rdwr, info);
    ASSERT_TRUE(file.is_ok());
    const auto got = file.value().read_at_all(comm.rank() * kBlock, kBlock);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value().byte_at(3),
              DataView::pattern_byte(50, comm.rank() * kBlock + 3));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(CollRead, ReadersShareAggregatorWindowReads) {
  // With collective reads, P ranks reading the whole file cost far fewer
  // PFS requests than P independent full-file reads.
  auto pfs_reads_with = [](const char* cb_read) {
    Platform p(small_testbed());
    constexpr Offset kBlock = 32 * KiB;
    p.launch([&, cb_read](mpi::Comm comm) {
      write_rank_blocks(p, comm, "/pfs/shared", kBlock);
      mpi::Info info;
      info.set("romio_cb_read", cb_read);
      info.set("cb_buffer_size", "262144");
      auto file = File::open(p.ctx, comm, "/pfs/shared", rdwr, info);
      ASSERT_TRUE(file.is_ok());
      const Offset total = static_cast<Offset>(comm.size()) * kBlock;
      const auto got = file.value().read_at_all(0, total);
      ASSERT_TRUE(got.is_ok());
      ASSERT_TRUE(file.value().close());
    });
    p.run();
    return p.pfs.stats().reads;
  };
  EXPECT_LT(pfs_reads_with("enable"), pfs_reads_with("disable"));
}

}  // namespace
}  // namespace e10::mpiio
