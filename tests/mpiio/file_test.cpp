// MPI_File_* API surface: lifecycle rules, views, pointers, info echo.
#include "mpiio/file.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "workloads/testbed.h"

namespace e10::mpiio {
namespace {

using namespace e10::units;
using adio::amode::create;
using adio::amode::rdonly;
using adio::amode::rdwr;
using workloads::Platform;
using workloads::small_testbed;

TEST(MpiioFile, InvalidAfterClose) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/f", create | rdwr, {});
    ASSERT_TRUE(file.is_ok());
    File handle = std::move(file).value();
    ASSERT_TRUE(handle.close());
    EXPECT_FALSE(handle.valid());
    EXPECT_FALSE(handle.close().is_ok());
    EXPECT_FALSE(handle.sync().is_ok());
    EXPECT_FALSE(handle.write_at(0, DataView::synthetic(1, 0, 8)).is_ok());
    EXPECT_FALSE(handle.read_at(0, 8).is_ok());
    EXPECT_THROW((void)handle.tell(), std::logic_error);
  });
  p.run();
}

TEST(MpiioFile, NegativeArgumentsRejected) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/neg", create | rdwr, {});
    ASSERT_TRUE(file.is_ok());
    EXPECT_FALSE(
        file.value().write_at(-1, DataView::synthetic(1, 0, 8)).is_ok());
    EXPECT_FALSE(file.value().read_at(-1, 8).is_ok());
    EXPECT_FALSE(file.value().read_at(0, -8).is_ok());
    EXPECT_FALSE(file.value().set_view(-8).is_ok());
    EXPECT_THROW(file.value().seek(-1), std::logic_error);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(MpiioFile, GetInfoEchoesResolvedHints) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info;
    info.set("cb_buffer_size", "1048576");
    info.set("e10_cache", "enable");
    info.set("e10_cache_path", "/scratch");
    auto file = File::open(p.ctx, comm, "/pfs/info", create | rdwr, info);
    ASSERT_TRUE(file.is_ok());
    const mpi::Info echo = file.value().get_info();
    EXPECT_EQ(echo.get_or("cb_buffer_size", ""), "1048576");
    EXPECT_EQ(echo.get_or("e10_cache", ""), "enable");
    EXPECT_EQ(echo.get_or("cb_nodes", ""), "4");  // resolved: 1 per node
    EXPECT_EQ(echo.get_or("ind_wr_buffer_size", ""), "524288");
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(MpiioFile, GetSizeTracksWrites) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/sz", create | rdwr, {});
    ASSERT_TRUE(file.is_ok());
    EXPECT_EQ(file.value().get_size().value(), 0);
    ASSERT_TRUE(file.value().write_at_all(
        comm.rank() * 4 * KiB, DataView::synthetic(1, 0, 4 * KiB)));
    comm.barrier();
    EXPECT_EQ(file.value().get_size().value(),
              static_cast<Offset>(comm.size()) * 4 * KiB);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(MpiioFile, DeleteFile) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    {
      auto file = File::open(p.ctx, comm, "/pfs/del", create | rdwr, {});
      ASSERT_TRUE(file.is_ok());
      ASSERT_TRUE(file.value().close());
    }
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_TRUE(File::delete_file(p.ctx, "/pfs/del"));
      EXPECT_FALSE(File::delete_file(p.ctx, "/pfs/del").is_ok());
    }
  });
  p.run();
  EXPECT_FALSE(p.pfs.exists("/pfs/del"));
}

TEST(MpiioFile, SetViewResetsPointer) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/vp", create | rdwr, {});
    ASSERT_TRUE(file.is_ok());
    file.value().seek(1000);
    ASSERT_TRUE(file.value().set_view(4 * KiB));
    EXPECT_EQ(file.value().tell(), 0);
    // Writes through the displaced view land at disp + offset.
    ASSERT_TRUE(file.value().write_at_all(
        comm.rank() * 64, DataView::synthetic(2, comm.rank() * 64, 64)));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  // Rank 0's bytes live at 4 KiB (the displacement).
  EXPECT_EQ(p.pfs.peek("/pfs/vp")->byte_at(4 * KiB),
            DataView::pattern_byte(2, 0));
}

TEST(MpiioFile, ReadOnlyReopenSeesData) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    {
      auto file = File::open(p.ctx, comm, "/pfs/ro2", create | rdwr, {});
      ASSERT_TRUE(file.is_ok());
      ASSERT_TRUE(file.value().write_at_all(
          comm.rank() * 1024, DataView::synthetic(4, comm.rank() * 1024, 1024)));
      ASSERT_TRUE(file.value().close());
    }
    auto reader = File::open(p.ctx, comm, "/pfs/ro2", rdonly, {});
    ASSERT_TRUE(reader.is_ok());
    const auto got = reader.value().read_at(comm.rank() * 1024, 1024);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value().byte_at(5),
              DataView::pattern_byte(4, comm.rank() * 1024 + 5));
    // Writing through a read-only handle fails.
    EXPECT_FALSE(
        reader.value().write_at(0, DataView::synthetic(1, 0, 8)).is_ok());
    ASSERT_TRUE(reader.value().close());
  });
  p.run();
}

TEST(MpiioFile, ZeroByteCollectiveWriteIsHarmless) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/zero", create | rdwr, {});
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(file.value().write_at_all(0, DataView()));
    ASSERT_TRUE(file.value().write_all(DataView()));
    EXPECT_EQ(file.value().get_size().value(), 0);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

}  // namespace
}  // namespace e10::mpiio
