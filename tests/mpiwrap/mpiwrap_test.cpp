#include "mpiwrap/mpiwrap.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "workloads/testbed.h"

namespace e10::mpiwrap {
namespace {

using namespace e10::units;
using workloads::Platform;
using workloads::small_testbed;

constexpr const char* kConfig = R"(
[file:/pfs/ckpt*]
e10_cache = enable
e10_cache_path = /scratch
e10_cache_flush_flag = flush_immediate
e10_cache_discard_flag = enable
romio_cb_write = enable
cb_buffer_size = 262144
deferred_close = true

[file:/pfs/plot*]
e10_cache = disable
romio_cb_write = enable
)";

TEST(Mpiwrap, RejectsBadConfig) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    if (comm.rank() != 0) return;
    EXPECT_FALSE(Mpiwrap::create(p.ctx, "[broken").is_ok());
  });
  p.run();
}

TEST(Mpiwrap, InjectsHintsFromMatchingSection) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto wrap = Mpiwrap::create(p.ctx, kConfig);
    ASSERT_TRUE(wrap.is_ok());
    auto file = wrap.value().open(comm, "/pfs/ckpt_0001",
                                  adio::amode::create | adio::amode::rdwr);
    ASSERT_TRUE(file.is_ok());
    // The cache hint reached the ADIO layer: a cache file exists.
    EXPECT_NE(file.value().raw()->cache, nullptr);
    EXPECT_EQ(file.value().get_info().get_or("e10_cache", ""), "enable");
    ASSERT_TRUE(wrap.value().close(std::move(file).value()));
    ASSERT_TRUE(wrap.value().finalize());
  });
  p.run();
}

TEST(Mpiwrap, UserHintsOverrideConfig) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto wrap = Mpiwrap::create(p.ctx, kConfig);
    ASSERT_TRUE(wrap.is_ok());
    mpi::Info user;
    user.set("e10_cache", "disable");
    auto file = wrap.value().open(
        comm, "/pfs/ckpt_0002", adio::amode::create | adio::amode::rdwr, user);
    ASSERT_TRUE(file.is_ok());
    EXPECT_EQ(file.value().raw()->cache, nullptr);
    ASSERT_TRUE(wrap.value().close(std::move(file).value()));
    ASSERT_TRUE(wrap.value().finalize());
  });
  p.run();
}

TEST(Mpiwrap, NonMatchingPathGetsNoHints) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto wrap = Mpiwrap::create(p.ctx, kConfig);
    ASSERT_TRUE(wrap.is_ok());
    auto file = wrap.value().open(comm, "/pfs/other",
                                  adio::amode::create | adio::amode::rdwr);
    ASSERT_TRUE(file.is_ok());
    EXPECT_EQ(file.value().raw()->cache, nullptr);
    ASSERT_TRUE(wrap.value().close(std::move(file).value()));
    EXPECT_EQ(wrap.value().stats().immediate_closes, 1u);
    EXPECT_EQ(wrap.value().outstanding(), 0u);
  });
  p.run();
}

TEST(Mpiwrap, DeferredCloseKeepsFileOpenUntilNextOpen) {
  Platform p(small_testbed());
  std::uint64_t pending_after_close = 0;
  std::uint64_t pending_after_reopen = 0;
  p.launch([&](mpi::Comm comm) {
    auto wrap = Mpiwrap::create(p.ctx, kConfig);
    ASSERT_TRUE(wrap.is_ok());
    auto first = wrap.value().open(comm, "/pfs/ckpt_0001",
                                   adio::amode::create | adio::amode::rdwr);
    ASSERT_TRUE(first.is_ok());
    ASSERT_TRUE(first.value().write_at_all(
        comm.rank() * 64 * KiB,
        DataView::synthetic(1, comm.rank() * 64 * KiB, 64 * KiB)));
    ASSERT_TRUE(wrap.value().close(std::move(first).value()));
    if (comm.rank() == 0) pending_after_close = wrap.value().outstanding();

    // Opening the next checkpoint really closes the previous one.
    auto second = wrap.value().open(comm, "/pfs/ckpt_0002",
                                    adio::amode::create | adio::amode::rdwr);
    ASSERT_TRUE(second.is_ok());
    if (comm.rank() == 0) {
      pending_after_reopen = wrap.value().stats().delayed_real_closes;
    }
    ASSERT_TRUE(wrap.value().close(std::move(second).value()));
    ASSERT_TRUE(wrap.value().finalize());
    EXPECT_EQ(wrap.value().outstanding(), 0u);
  });
  p.run();
  EXPECT_EQ(pending_after_close, 1u);
  EXPECT_EQ(pending_after_reopen, 1u);
  // The deferred close completed: data of file 1 is fully visible.
  EXPECT_EQ(p.pfs.stat_path("/pfs/ckpt_0001").value().size, 8 * 64 * KiB);
}

TEST(Mpiwrap, FinalizeClosesOutstandingFiles) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto wrap = Mpiwrap::create(p.ctx, kConfig);
    ASSERT_TRUE(wrap.is_ok());
    auto file = wrap.value().open(comm, "/pfs/ckpt_final",
                                  adio::amode::create | adio::amode::rdwr);
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(file.value().write_at_all(
        comm.rank() * 4 * KiB,
        DataView::synthetic(9, comm.rank() * 4 * KiB, 4 * KiB)));
    ASSERT_TRUE(wrap.value().close(std::move(file).value()));
    EXPECT_EQ(wrap.value().outstanding(), 1u);
    ASSERT_TRUE(wrap.value().finalize());
    EXPECT_EQ(wrap.value().outstanding(), 0u);
    EXPECT_EQ(wrap.value().stats().finalize_closes, 1u);
  });
  p.run();
  EXPECT_EQ(p.pfs.stat_path("/pfs/ckpt_final").value().size, 8 * 4 * KiB);
}

TEST(Mpiwrap, DifferentPatternsDeferIndependently) {
  Platform p(small_testbed());
  const std::string config = R"(
[file:/pfs/a*]
deferred_close = true
[file:/pfs/b*]
deferred_close = true
)";
  p.launch([&](mpi::Comm comm) {
    auto wrap = Mpiwrap::create(p.ctx, config);
    ASSERT_TRUE(wrap.is_ok());
    auto a = wrap.value().open(comm, "/pfs/a1",
                               adio::amode::create | adio::amode::rdwr);
    auto b = wrap.value().open(comm, "/pfs/b1",
                               adio::amode::create | adio::amode::rdwr);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    ASSERT_TRUE(wrap.value().close(std::move(a).value()));
    ASSERT_TRUE(wrap.value().close(std::move(b).value()));
    EXPECT_EQ(wrap.value().outstanding(), 2u);
    // Opening a2 closes a1 but not b1.
    auto a2 = wrap.value().open(comm, "/pfs/a2",
                                adio::amode::create | adio::amode::rdwr);
    ASSERT_TRUE(a2.is_ok());
    EXPECT_EQ(wrap.value().outstanding(), 1u);
    ASSERT_TRUE(wrap.value().close(std::move(a2).value()));
    ASSERT_TRUE(wrap.value().finalize());
  });
  p.run();
}

TEST(Mpiwrap, SectionForUsesGlobMatching) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    if (comm.rank() != 0) return;
    auto wrap = Mpiwrap::create(p.ctx, kConfig);
    ASSERT_TRUE(wrap.is_ok());
    EXPECT_NE(wrap.value().section_for("/pfs/ckpt_0042"), nullptr);
    EXPECT_NE(wrap.value().section_for("beegfs:/pfs/plot_12"), nullptr);
    EXPECT_EQ(wrap.value().section_for("/other/file"), nullptr);
  });
  p.run();
}

}  // namespace
}  // namespace e10::mpiwrap
