#include "prof/profiler.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::prof {
namespace {

using namespace e10::units;

TEST(Profiler, RecordsAndAggregates) {
  sim::Engine engine;
  Profiler profiler(engine, 4);
  profiler.record(0, Phase::write_contig, seconds(2));
  profiler.record(1, Phase::write_contig, seconds(5));
  profiler.record(1, Phase::write_contig, seconds(1));  // accumulates
  profiler.record(2, Phase::exchange, seconds(3));
  EXPECT_EQ(profiler.rank_total(1, Phase::write_contig), seconds(6));
  EXPECT_EQ(profiler.max_over_ranks(Phase::write_contig), seconds(6));
  EXPECT_EQ(profiler.avg_over_ranks(Phase::write_contig), seconds(2));
  EXPECT_EQ(profiler.max_over_ranks(Phase::exchange), seconds(3));
  EXPECT_EQ(profiler.max_over_ranks(Phase::flush_wait), 0);
}

TEST(Profiler, MaxOverSubset) {
  sim::Engine engine;
  Profiler profiler(engine, 4);
  profiler.record(0, Phase::exchange, seconds(9));
  profiler.record(3, Phase::exchange, seconds(4));
  EXPECT_EQ(profiler.max_over({1, 3}, Phase::exchange), seconds(4));
  EXPECT_EQ(profiler.max_over({0, 3}, Phase::exchange), seconds(9));
  EXPECT_EQ(profiler.max_over({}, Phase::exchange), 0);
}

TEST(Profiler, ScopeMeasuresVirtualTime) {
  sim::Engine engine;
  Profiler profiler(engine, 1);
  engine.spawn("p", [&] {
    const auto scope = profiler.scope(0, Phase::shuffle_all2all);
    engine.delay(milliseconds(250));
  });
  engine.run();
  EXPECT_EQ(profiler.rank_total(0, Phase::shuffle_all2all),
            milliseconds(250));
}

TEST(Profiler, NestedScopesBothRecord) {
  sim::Engine engine;
  Profiler profiler(engine, 1);
  engine.spawn("p", [&] {
    const auto outer = profiler.scope(0, Phase::exchange);
    engine.delay(milliseconds(10));
    {
      const auto inner = profiler.scope(0, Phase::write_contig);
      engine.delay(milliseconds(5));
    }
    engine.delay(milliseconds(10));
  });
  engine.run();
  EXPECT_EQ(profiler.rank_total(0, Phase::write_contig), milliseconds(5));
  EXPECT_EQ(profiler.rank_total(0, Phase::exchange), milliseconds(25));
}

TEST(Profiler, ResetClearsEverything) {
  sim::Engine engine;
  Profiler profiler(engine, 2);
  profiler.record(0, Phase::close, seconds(1));
  profiler.reset();
  EXPECT_EQ(profiler.max_over_ranks(Phase::close), 0);
}

TEST(Profiler, InvalidArgumentsThrow) {
  sim::Engine engine;
  EXPECT_THROW(Profiler(engine, 0), std::logic_error);
  Profiler profiler(engine, 2);
  EXPECT_THROW(profiler.record(2, Phase::close, 1), std::logic_error);
  EXPECT_THROW(profiler.record(-1, Phase::close, 1), std::logic_error);
  EXPECT_THROW(profiler.record(0, Phase::close, -1), std::logic_error);
}

TEST(Profiler, PhaseNamesAreStable) {
  // The bench output parses/prints these; keep them fixed.
  EXPECT_STREQ(phase_name(Phase::shuffle_all2all), "shuffle_all2all");
  EXPECT_STREQ(phase_name(Phase::not_hidden_sync), "not_hidden_sync");
  EXPECT_STREQ(phase_name(Phase::write_contig), "write_contig");
  EXPECT_STREQ(phase_name(Phase::post_write), "post_write");
}

TEST(Profiler, SummaryMentionsEveryPhase) {
  sim::Engine engine;
  Profiler profiler(engine, 1);
  const std::string summary = profiler.summary();
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    EXPECT_NE(summary.find(phase_name(static_cast<Phase>(p))),
              std::string::npos);
  }
}

}  // namespace
}  // namespace e10::prof
