#include "prof/profiler.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::prof {
namespace {

using namespace e10::units;

TEST(Profiler, RecordsAndAggregates) {
  sim::Engine engine;
  Profiler profiler(engine, 4);
  profiler.record(0, Phase::write_contig, seconds(2));
  profiler.record(1, Phase::write_contig, seconds(5));
  profiler.record(1, Phase::write_contig, seconds(1));  // accumulates
  profiler.record(2, Phase::exchange, seconds(3));
  EXPECT_EQ(profiler.rank_total(1, Phase::write_contig), seconds(6));
  EXPECT_EQ(profiler.max_over_ranks(Phase::write_contig), seconds(6));
  EXPECT_EQ(profiler.avg_over_ranks(Phase::write_contig), seconds(2));
  EXPECT_EQ(profiler.max_over_ranks(Phase::exchange), seconds(3));
  EXPECT_EQ(profiler.max_over_ranks(Phase::flush_wait), 0);
}

TEST(Profiler, MaxOverSubset) {
  sim::Engine engine;
  Profiler profiler(engine, 4);
  profiler.record(0, Phase::exchange, seconds(9));
  profiler.record(3, Phase::exchange, seconds(4));
  EXPECT_EQ(profiler.max_over({1, 3}, Phase::exchange), seconds(4));
  EXPECT_EQ(profiler.max_over({0, 3}, Phase::exchange), seconds(9));
  EXPECT_EQ(profiler.max_over({}, Phase::exchange), 0);
}

TEST(Profiler, ScopeMeasuresVirtualTime) {
  sim::Engine engine;
  Profiler profiler(engine, 1);
  engine.spawn("p", [&] {
    const auto scope = profiler.scope(0, Phase::shuffle_all2all);
    engine.delay(milliseconds(250));
  });
  engine.run();
  EXPECT_EQ(profiler.rank_total(0, Phase::shuffle_all2all),
            milliseconds(250));
}

TEST(Profiler, NestedScopesBothRecord) {
  sim::Engine engine;
  Profiler profiler(engine, 1);
  engine.spawn("p", [&] {
    const auto outer = profiler.scope(0, Phase::exchange);
    engine.delay(milliseconds(10));
    {
      const auto inner = profiler.scope(0, Phase::write_contig);
      engine.delay(milliseconds(5));
    }
    engine.delay(milliseconds(10));
  });
  engine.run();
  EXPECT_EQ(profiler.rank_total(0, Phase::write_contig), milliseconds(5));
  EXPECT_EQ(profiler.rank_total(0, Phase::exchange), milliseconds(25));
}

TEST(Profiler, MinAndPercentilesOverRanks) {
  sim::Engine engine;
  Profiler profiler(engine, 4);
  // Rank totals: 1s, 2s, 3s, 4s.
  for (int r = 0; r < 4; ++r) {
    profiler.record(r, Phase::exchange, seconds(r + 1));
  }
  EXPECT_EQ(profiler.min_over_ranks(Phase::exchange), seconds(1));
  // Nearest-rank: index = ceil(q * n) - 1 over the sorted totals.
  EXPECT_EQ(profiler.percentile_over_ranks(Phase::exchange, 0.5), seconds(2));
  EXPECT_EQ(profiler.percentile_over_ranks(Phase::exchange, 0.95), seconds(4));
  EXPECT_EQ(profiler.percentile_over_ranks(Phase::exchange, 0.99), seconds(4));
  EXPECT_EQ(profiler.percentile_over_ranks(Phase::exchange, 0.0), seconds(1));
  EXPECT_EQ(profiler.percentile_over_ranks(Phase::exchange, 1.0), seconds(4));
  // Untouched phase: all aggregates are zero.
  EXPECT_EQ(profiler.min_over_ranks(Phase::calc), 0);
  EXPECT_EQ(profiler.percentile_over_ranks(Phase::calc, 0.5), 0);
  EXPECT_THROW(profiler.percentile_over_ranks(Phase::exchange, -0.1),
               std::logic_error);
  EXPECT_THROW(profiler.percentile_over_ranks(Phase::exchange, 1.1),
               std::logic_error);
}

TEST(Profiler, ToCsvHasHeaderAndAllPhases) {
  sim::Engine engine;
  Profiler profiler(engine, 2);
  profiler.record(0, Phase::write_contig, seconds(1));
  profiler.record(1, Phase::write_contig, seconds(3));
  const std::string csv = profiler.to_csv();
  EXPECT_EQ(csv.find("phase,min_s,p50_s,p95_s,p99_s,avg_s,max_s"), 0u);
  // One data line per phase, every line with 7 comma-separated columns.
  std::size_t lines = 0;
  std::size_t pos = 0;
  while ((pos = csv.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 1 + kPhaseCount);
  const std::size_t row = csv.find("write_contig,");
  ASSERT_NE(row, std::string::npos);
  const std::string line = csv.substr(row, csv.find('\n', row) - row);
  EXPECT_NE(line.find("1.000000000"), std::string::npos);  // min_s
  EXPECT_NE(line.find("2.000000000"), std::string::npos);  // avg_s
  EXPECT_NE(line.find("3.000000000"), std::string::npos);  // max_s
}

TEST(Profiler, ResetClearsEverything) {
  sim::Engine engine;
  Profiler profiler(engine, 2);
  profiler.record(0, Phase::close, seconds(1));
  profiler.reset();
  EXPECT_EQ(profiler.max_over_ranks(Phase::close), 0);
}

TEST(Profiler, InvalidArgumentsThrow) {
  sim::Engine engine;
  EXPECT_THROW(Profiler(engine, 0), std::logic_error);
  Profiler profiler(engine, 2);
  EXPECT_THROW(profiler.record(2, Phase::close, 1), std::logic_error);
  EXPECT_THROW(profiler.record(-1, Phase::close, 1), std::logic_error);
  EXPECT_THROW(profiler.record(0, Phase::close, -1), std::logic_error);
}

TEST(Profiler, PhaseNamesAreStable) {
  // The bench output parses/prints these; keep them fixed.
  EXPECT_STREQ(phase_name(Phase::shuffle_all2all), "shuffle_all2all");
  EXPECT_STREQ(phase_name(Phase::not_hidden_sync), "not_hidden_sync");
  EXPECT_STREQ(phase_name(Phase::write_contig), "write_contig");
  EXPECT_STREQ(phase_name(Phase::post_write), "post_write");
}

TEST(Profiler, SummaryMentionsEveryPhase) {
  sim::Engine engine;
  Profiler profiler(engine, 1);
  const std::string summary = profiler.summary();
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    EXPECT_NE(summary.find(phase_name(static_cast<Phase>(p))),
              std::string::npos);
  }
}

}  // namespace
}  // namespace e10::prof
