#include "cache/cache_file.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::cache {
namespace {

using namespace e10::units;

// One compute node (0), one data server (1), one metadata server (2).
struct Fixture {
  Fixture()
      : fabric(3, net::FabricParams{}),
        pfs(engine, fabric, {1}, 2, quiet_pfs(), 11),
        local_fs(engine, 0, quiet_lfs(), 12),
        locks(engine) {}

  static pfs::PfsParams quiet_pfs() {
    pfs::PfsParams p;
    p.data_servers = 1;
    p.target.jitter_sigma = 0.0;
    return p;
  }
  static lfs::LfsParams quiet_lfs() {
    lfs::LfsParams p;
    p.device.jitter_sigma = 0.0;
    p.capacity = 64 * MiB;
    return p;
  }

  pfs::FileHandle open_global() {
    pfs::OpenOptions opts;
    opts.create = true;
    return pfs.open("/pfs/global", 0, opts).value();
  }

  CacheFileParams params(FlushPolicy flush, bool coherent = false) {
    CacheFileParams p;
    p.global_path = "/pfs/global";
    p.cache_path = "/scratch/global.cache.0";
    p.flush = flush;
    p.coherent = coherent;
    p.staging_bytes = 512 * KiB;
    p.alloc_chunk = 4 * MiB;
    return p;
  }

  void run(std::function<void()> body) {
    engine.spawn("app", std::move(body));
    engine.run();
  }

  sim::Engine engine;
  net::Fabric fabric;
  pfs::Pfs pfs;
  lfs::LocalFs local_fs;
  LockTable locks;
};

DataView pattern(Offset size) { return DataView::synthetic(77, 0, size); }

TEST(CacheFile, ImmediateFlushSyncsToGlobalFile) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::immediate), &f.locks);
    ASSERT_TRUE(cache.is_ok());
    ASSERT_TRUE(cache.value()->write({0, 1 * MiB}, pattern(1 * MiB)));
    ASSERT_TRUE(cache.value()->flush());
    ASSERT_TRUE(cache.value()->close());
  });
  // Data must be byte-identical in the global file.
  const ByteStore* global = f.pfs.peek("/pfs/global");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->extent_end(), 1 * MiB);
  EXPECT_EQ(global->byte_at(12345), DataView::pattern_byte(77, 12345));
}

TEST(CacheFile, CacheWriteMuchFasterThanSyncCompletion) {
  // The write returns at SSD speed; the PFS transfer happens in background.
  Fixture f;
  Time write_elapsed = 0;
  Time flush_elapsed = 0;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::immediate), &f.locks);
    Time t0 = f.engine.now();
    ASSERT_TRUE(cache.value()->write({0, 16 * MiB}, pattern(16 * MiB)));
    write_elapsed = f.engine.now() - t0;
    t0 = f.engine.now();
    ASSERT_TRUE(cache.value()->flush());
    flush_elapsed = f.engine.now() - t0;
    ASSERT_TRUE(cache.value()->close());
  });
  EXPECT_GT(flush_elapsed, write_elapsed / 4);  // PFS path is the slow part
  EXPECT_GT(write_elapsed, 0);
}

TEST(CacheFile, OncloseDefersDispatchUntilFlush) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::onclose), &f.locks);
    ASSERT_TRUE(cache.value()->write({0, 1 * MiB}, pattern(1 * MiB)));
    // Give the sync thread plenty of virtual time: nothing may move yet.
    f.engine.delay(seconds(60));
    EXPECT_EQ(cache.value()->sync_stats().bytes_synced, 0);
    ASSERT_TRUE(cache.value()->close());  // close flushes
    EXPECT_EQ(cache.value()->sync_stats().bytes_synced, 1 * MiB);
  });
}

TEST(CacheFile, ImmediateDispatchProgressesInBackground) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::immediate), &f.locks);
    ASSERT_TRUE(cache.value()->write({0, 1 * MiB}, pattern(1 * MiB)));
    f.engine.delay(seconds(60));  // "compute phase"
    // The background thread has synced everything while we computed.
    EXPECT_EQ(cache.value()->sync_stats().bytes_synced, 1 * MiB);
    // So the flush wait is (nearly) free.
    const Time t0 = f.engine.now();
    ASSERT_TRUE(cache.value()->flush());
    EXPECT_LT(f.engine.now() - t0, milliseconds(1));
    ASSERT_TRUE(cache.value()->close());
  });
}

TEST(CacheFile, NonePolicyNeverSyncs) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::none), &f.locks);
    ASSERT_TRUE(cache.value()->write({0, 2 * MiB}, pattern(2 * MiB)));
    f.engine.delay(seconds(60));
    ASSERT_TRUE(cache.value()->flush());
    ASSERT_TRUE(cache.value()->close());
    EXPECT_EQ(cache.value()->sync_stats().bytes_synced, 0);
  });
  EXPECT_EQ(f.pfs.peek("/pfs/global")->extent_end(), 0);  // nothing landed
}

TEST(CacheFile, DiscardRemovesCacheFileOnClose) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto params = f.params(FlushPolicy::immediate);
    params.discard = true;
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle, params,
                                 &f.locks);
    ASSERT_TRUE(cache.value()->write({0, 64 * KiB}, pattern(64 * KiB)));
    EXPECT_TRUE(f.local_fs.exists("/scratch/global.cache.0"));
    ASSERT_TRUE(cache.value()->close());
    EXPECT_FALSE(f.local_fs.exists("/scratch/global.cache.0"));
    EXPECT_EQ(f.local_fs.used_bytes(), 0);
  });
}

TEST(CacheFile, RetainKeepsCacheFile) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto params = f.params(FlushPolicy::immediate);
    params.discard = false;
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle, params,
                                 &f.locks);
    ASSERT_TRUE(cache.value()->write({0, 64 * KiB}, pattern(64 * KiB)));
    ASSERT_TRUE(cache.value()->close());
    EXPECT_TRUE(f.local_fs.exists("/scratch/global.cache.0"));
  });
}

TEST(CacheFile, StagingChunksFollowIndWrBufferSize) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto params = f.params(FlushPolicy::immediate);
    params.staging_bytes = 256 * KiB;
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle, params,
                                 &f.locks);
    ASSERT_TRUE(cache.value()->write({0, 1 * MiB}, pattern(1 * MiB)));
    ASSERT_TRUE(cache.value()->flush());
    EXPECT_EQ(cache.value()->sync_stats().staging_chunks, 4u);  // 1MiB/256KiB
    ASSERT_TRUE(cache.value()->close());
  });
}

TEST(CacheFile, CoherentModeLocksUntilSynced) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                        f.params(FlushPolicy::immediate, true), &f.locks);
    ASSERT_TRUE(cache.value()->write({0, 4 * MiB}, pattern(4 * MiB)));
    // Immediately after the write the extent is still in transit: locked.
    EXPECT_TRUE(f.locks.is_locked("/pfs/global", {1 * MiB, 1}));
    ASSERT_TRUE(cache.value()->flush());
    // After the flush completed, the lock is gone.
    EXPECT_FALSE(f.locks.is_locked("/pfs/global", {1 * MiB, 1}));
    ASSERT_TRUE(cache.value()->close());
  });
}

TEST(CacheFile, CoherentWithNoneFlushRejected) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::none, true), &f.locks);
    EXPECT_FALSE(cache.is_ok());
    EXPECT_EQ(cache.code(), Errc::invalid_argument);
  });
}

TEST(CacheFile, NoSpaceSurfacesToCaller) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto params = f.params(FlushPolicy::immediate);
    params.alloc_chunk = 1 * MiB;
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle, params,
                                 &f.locks);
    // Capacity is 64 MiB: the 65th MiB write must fail with no_space.
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(cache.value()->write({i * MiB, MiB}, pattern(MiB)));
    }
    const Status overflow = cache.value()->write({64 * MiB, MiB}, pattern(MiB));
    EXPECT_EQ(overflow.code(), Errc::no_space);
    ASSERT_TRUE(cache.value()->close());
  });
}

TEST(CacheFile, SizeMismatchRejected) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::immediate), &f.locks);
    EXPECT_EQ(cache.value()->write({0, 100}, pattern(50)).code(),
              Errc::invalid_argument);
    ASSERT_TRUE(cache.value()->close());
  });
}

TEST(CacheFile, CloseIsIdempotent) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::immediate), &f.locks);
    ASSERT_TRUE(cache.value()->close());
    ASSERT_TRUE(cache.value()->close());
    EXPECT_EQ(cache.value()->write({0, 10}, pattern(10)).code(),
              Errc::invalid_argument);
  });
}

TEST(CacheFile, ManyExtentsSyncInOrderAndCompletely) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    auto cache = CacheFile::open(f.engine, f.local_fs, f.pfs, handle,
                                 f.params(FlushPolicy::immediate), &f.locks);
    // Write extents out of file order: the log-structured cache appends.
    for (const Offset off : {8, 0, 24, 16}) {
      ASSERT_TRUE(cache.value()->write({off * KiB, 8 * KiB},
                                       DataView::synthetic(5, off * KiB, 8 * KiB)));
    }
    ASSERT_TRUE(cache.value()->flush());
    ASSERT_TRUE(cache.value()->close());
  });
  const ByteStore* global = f.pfs.peek("/pfs/global");
  for (Offset pos = 0; pos < 32 * KiB; pos += 1111) {
    EXPECT_EQ(global->byte_at(pos), DataView::pattern_byte(5, pos));
  }
}

}  // namespace
}  // namespace e10::cache
