// Flush-scheduler planning (coalescing, stripe alignment, synced resume)
// and drain behaviour (streaming overlap, serial baseline, retry handoff).
#include "cache/flush_scheduler.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "net/fabric.h"

namespace e10::cache {
namespace {

using namespace e10::units;

SyncRequest request(Offset global_offset, Offset length, Offset cache_offset,
                    Offset synced = 0) {
  SyncRequest r;
  r.global = Extent{global_offset, length};
  r.cache_offset = cache_offset;
  r.synced = synced;
  return r;
}

// ---- plan_dispatches: the pure planning step ------------------------------

TEST(FlushPlan, AdjacentMembersCoalesceIntoOneDispatch) {
  const std::vector<SyncRequest> members = {
      request(0, 128 * KiB, 0),
      request(128 * KiB, 128 * KiB, 128 * KiB),
  };
  const auto plan = plan_dispatches(members, 512 * KiB, /*stripe_unit=*/0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].global, (Extent{0, 256 * KiB}));
  ASSERT_EQ(plan[0].pieces.size(), 2u);
  EXPECT_EQ(plan[0].pieces[0].member, 0u);
  EXPECT_EQ(plan[0].pieces[1].member, 1u);
  EXPECT_EQ(plan[0].pieces[1].cache_offset, 128 * KiB);
}

TEST(FlushPlan, QueueOrderDoesNotMatterOnlyFileOrderDoes) {
  // Members arrive out of file order; the plan sorts by global offset.
  const std::vector<SyncRequest> members = {
      request(128 * KiB, 128 * KiB, 0),
      request(0, 128 * KiB, 128 * KiB),
  };
  const auto plan = plan_dispatches(members, 512 * KiB, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].global, (Extent{0, 256 * KiB}));
  EXPECT_EQ(plan[0].pieces[0].member, 1u);  // the one at file offset 0
}

TEST(FlushPlan, GapsSplitDispatches) {
  const std::vector<SyncRequest> members = {
      request(0, 64 * KiB, 0),
      request(128 * KiB, 64 * KiB, 64 * KiB),
  };
  const auto plan = plan_dispatches(members, 512 * KiB, 0);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].global, (Extent{0, 64 * KiB}));
  EXPECT_EQ(plan[1].global, (Extent{128 * KiB, 64 * KiB}));
}

TEST(FlushPlan, StagingCapacityBoundsADispatch) {
  const std::vector<SyncRequest> members = {request(0, 1280 * KiB, 0)};
  const auto plan = plan_dispatches(members, 512 * KiB, 0);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].global, (Extent{0, 512 * KiB}));
  EXPECT_EQ(plan[1].global, (Extent{512 * KiB, 512 * KiB}));
  EXPECT_EQ(plan[2].global, (Extent{1024 * KiB, 256 * KiB}));
}

TEST(FlushPlan, DispatchesNeverCrossAStripeBoundary) {
  // 4 MiB staging would happily span stripes; a 1 MiB stripe unit must
  // split the run at every boundary, starting from an unaligned offset.
  const std::vector<SyncRequest> members = {
      request(768 * KiB, 1536 * KiB, 0)};
  const auto plan = plan_dispatches(members, 4 * MiB, 1 * MiB);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].global, (Extent{768 * KiB, 256 * KiB}));
  EXPECT_EQ(plan[1].global, (Extent{1024 * KiB, 1024 * KiB}));
  EXPECT_EQ(plan[2].global, (Extent{2048 * KiB, 256 * KiB}));
  for (const Dispatch& d : plan) {
    const Offset first_stripe = d.global.offset / MiB;
    const Offset last_stripe = (d.global.end() - 1) / MiB;
    EXPECT_EQ(first_stripe, last_stripe);
  }
}

TEST(FlushPlan, ExtentsMeetingAtAStripeBoundaryStaySplit) {
  // Two requests adjacent exactly at the 1 MiB stripe boundary: they
  // coalesce into one run but dispatch as one write per data server.
  const std::vector<SyncRequest> members = {
      request(512 * KiB, 512 * KiB, 0),
      request(1 * MiB, 512 * KiB, 512 * KiB),
  };
  const auto plan = plan_dispatches(members, 4 * MiB, 1 * MiB);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].global, (Extent{512 * KiB, 512 * KiB}));
  EXPECT_EQ(plan[1].global, (Extent{1 * MiB, 512 * KiB}));
  ASSERT_EQ(plan[1].pieces.size(), 1u);
  EXPECT_EQ(plan[1].pieces[0].member, 1u);
}

TEST(FlushPlan, SyncedPrefixIsNotReplanned) {
  // 256 KiB of the first request is already durable: the plan resumes at
  // the remaining extent and the matching cache position.
  const std::vector<SyncRequest> members = {
      request(0, 512 * KiB, 1 * MiB, /*synced=*/256 * KiB)};
  const auto plan = plan_dispatches(members, 512 * KiB, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].global, (Extent{256 * KiB, 256 * KiB}));
  ASSERT_EQ(plan[0].pieces.size(), 1u);
  EXPECT_EQ(plan[0].pieces[0].cache_offset, 1 * MiB + 256 * KiB);
}

TEST(FlushPlan, FullySyncedMembersProduceNoWork) {
  const std::vector<SyncRequest> members = {
      request(0, 128 * KiB, 0, /*synced=*/128 * KiB)};
  EXPECT_TRUE(plan_dispatches(members, 512 * KiB, 0).empty());
}

// ---- FlushScheduler::drain: simulated end-to-end --------------------------

// One compute node (0), one data server (1), one metadata server (2).
struct Fixture {
  Fixture()
      : fabric(3, net::FabricParams{}),
        pfs(engine, fabric, {1}, 2, quiet_pfs(), 11),
        local_fs(engine, 0, quiet_lfs(), 12),
        injector(engine) {}

  static pfs::PfsParams quiet_pfs() {
    pfs::PfsParams p;
    p.data_servers = 1;
    p.target.jitter_sigma = 0.0;
    return p;
  }
  static lfs::LfsParams quiet_lfs() {
    lfs::LfsParams p;
    p.device.jitter_sigma = 0.0;
    p.capacity = 64 * MiB;
    return p;
  }

  Time run(std::function<void()> body) {
    engine.spawn("app", std::move(body));
    engine.run();
    return engine.now();
  }

  sim::Engine engine;
  net::Fabric fabric;
  pfs::Pfs pfs;
  lfs::LocalFs local_fs;
  fault::FaultInjector injector;
};

// Stages `total` cached bytes and drains them through a scheduler with the
// given stream count; returns the drain's virtual duration.
Time drain_duration(int streams, Offset total, std::uint64_t* hidden = nullptr,
                    std::uint64_t* dispatches = nullptr) {
  Fixture f;
  Time elapsed = 0;
  f.run([&] {
    pfs::OpenOptions opts;
    opts.create = true;
    const auto global = f.pfs.open("/pfs/global", 0, opts).value();
    const auto cache =
        f.local_fs.open("/scratch/c0", /*create=*/true).value();
    ASSERT_TRUE(f.local_fs.write(cache, 0, DataView::synthetic(7, 0, total)));

    FlushSchedulerParams params;
    params.streams = streams;
    params.staging_bytes = 512 * KiB;
    FlushScheduler sched(f.engine, f.local_fs, cache, f.pfs, global,
                         "/pfs/global", params);
    std::vector<SyncRequest> batch = {request(0, total, 0)};
    RetryPolicy retry;
    retry.jitter = 0.0;
    Rng rng(99);
    const Time start = f.engine.now();
    const BatchOutcome outcome = sched.drain(batch, retry, rng);
    elapsed = f.engine.now() - start;
    ASSERT_TRUE(outcome.status.is_ok());
    EXPECT_EQ(outcome.bytes_written, total);
    EXPECT_EQ(batch[0].synced, total);
    if (hidden != nullptr) {
      *hidden = static_cast<std::uint64_t>(sched.overlap().hidden_time());
    }
    if (dispatches != nullptr) *dispatches = outcome.dispatches;
    EXPECT_EQ(f.pfs.peek("/pfs/global")->extent_end(), total);
  });
  return elapsed;
}

TEST(FlushScheduler_, StreamsOverlapTheDrain) {
  std::uint64_t hidden1 = 0;
  std::uint64_t hidden4 = 0;
  std::uint64_t dispatches = 0;
  const Time serial = drain_duration(1, 4 * MiB, &hidden1);
  const Time streamed = drain_duration(4, 4 * MiB, &hidden4, &dispatches);
  EXPECT_EQ(dispatches, 8u);  // 4 MiB / 512 KiB
  // Four in-flight streams must beat the serial read->write->read loop,
  // and the win must show up as hidden write service time.
  EXPECT_LT(streamed, serial);
  EXPECT_EQ(hidden1, 0u);
  EXPECT_GT(hidden4, 0u);
}

TEST(FlushScheduler_, DrainReportsMediaTimeAndJoinAllWaitsItOut) {
  Fixture f;
  f.run([&] {
    pfs::OpenOptions opts;
    opts.create = true;
    const auto global = f.pfs.open("/pfs/global", 0, opts).value();
    const auto cache =
        f.local_fs.open("/scratch/c0", /*create=*/true).value();
    ASSERT_TRUE(
        f.local_fs.write(cache, 0, DataView::synthetic(7, 0, 2 * MiB)));
    FlushSchedulerParams params;
    params.streams = 8;
    FlushScheduler sched(f.engine, f.local_fs, cache, f.pfs, global,
                         "/pfs/global", params);
    std::vector<SyncRequest> batch = {request(0, 2 * MiB, 0)};
    RetryPolicy retry;
    retry.jitter = 0.0;
    Rng rng(99);
    const BatchOutcome outcome = sched.drain(batch, retry, rng);
    ASSERT_TRUE(outcome.status.is_ok());
    // Resume offsets advance at issue time (the writes' content is already
    // determined), but the durability promise is the reported media time:
    // with more streams than dispatches nothing was joined in the drain,
    // so that time is still ahead of the clock until join_all waits it out.
    EXPECT_EQ(batch.front().synced, 2 * MiB);
    EXPECT_GT(outcome.done_time, f.engine.now());
    sched.join_all();
    EXPECT_GE(f.engine.now(), outcome.done_time);
  });
}

TEST(FlushScheduler_, ExhaustedAttemptsHandBackWithSyncedAdvanced) {
  Fixture f;
  f.pfs.set_fault_injector(&f.injector);
  f.run([&] {
    pfs::OpenOptions opts;
    opts.create = true;
    const auto global = f.pfs.open("/pfs/global", 0, opts).value();
    const auto cache =
        f.local_fs.open("/scratch/c0", /*create=*/true).value();
    ASSERT_TRUE(
        f.local_fs.write(cache, 0, DataView::synthetic(7, 0, 1 * MiB)));
    FlushSchedulerParams params;
    params.streams = 1;
    FlushScheduler sched(f.engine, f.local_fs, cache, f.pfs, global,
                         "/pfs/global", params);
    // Dispatch 2 of 2 fails persistently (a mid-extent timeout); the shared
    // attempt budget runs out and drain() reports the failure with the
    // first 512 KiB durable.
    f.injector.force_failures(fault::FaultOp::pfs_write, 3, Errc::timed_out,
                              /*after=*/1);
    std::vector<SyncRequest> batch = {request(512 * KiB, 1 * MiB, 0)};
    RetryPolicy retry;
    retry.max_attempts = 2;
    retry.backoff_base = milliseconds(1);
    retry.backoff_cap = milliseconds(1);
    retry.jitter = 0.0;
    Rng rng(99);
    const BatchOutcome outcome = sched.drain(batch, retry, rng);
    EXPECT_FALSE(outcome.status.is_ok());
    EXPECT_EQ(outcome.status.code(), Errc::timed_out);
    EXPECT_EQ(outcome.retries, 2);
    EXPECT_EQ(outcome.bytes_written, 512 * KiB);
    EXPECT_EQ(batch[0].synced, 512 * KiB);
    EXPECT_EQ(batch[0].remaining(), (Extent{1024 * KiB, 512 * KiB}));
  });
}

}  // namespace
}  // namespace e10::cache
