#include "cache/lock_table.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::cache {
namespace {

using namespace e10::units;

TEST(LockTable, NonOverlappingLocksDoNotBlock) {
  sim::Engine engine;
  LockTable table(engine);
  Time done = -1;
  engine.spawn("a", [&] {
    table.lock("/f", {0, 100});
    engine.delay(seconds(10));
    table.unlock("/f", {0, 100});
  });
  engine.spawn("b", [&] {
    table.lock("/f", {100, 100});  // adjacent, not overlapping
    done = engine.now();
    table.unlock("/f", {100, 100});
  });
  engine.run();
  EXPECT_EQ(done, 0);
}

TEST(LockTable, OverlappingLockWaits) {
  sim::Engine engine;
  LockTable table(engine);
  Time done = -1;
  engine.spawn("holder", [&] {
    table.lock("/f", {0, 100});
    engine.delay(seconds(5));
    table.unlock("/f", {0, 100});
  });
  engine.spawn("waiter", [&] {
    engine.delay(milliseconds(1));
    table.lock("/f", {50, 100});
    done = engine.now();
    table.unlock("/f", {50, 100});
  });
  engine.run();
  EXPECT_EQ(done, seconds(5));
}

TEST(LockTable, DifferentFilesIndependent) {
  sim::Engine engine;
  LockTable table(engine);
  Time done = -1;
  engine.spawn("holder", [&] {
    table.lock("/f", {0, 100});
    engine.delay(seconds(5));
    table.unlock("/f", {0, 100});
  });
  engine.spawn("other", [&] {
    table.lock("/g", {0, 100});
    done = engine.now();
    table.unlock("/g", {0, 100});
  });
  engine.run();
  EXPECT_EQ(done, 0);
}

TEST(LockTable, WaitUnlockedBlocksReaders) {
  sim::Engine engine;
  LockTable table(engine);
  Time read_at = -1;
  engine.spawn("writer", [&] {
    table.lock("/f", {0, 4 * KiB});
    engine.delay(seconds(2));
    table.unlock("/f", {0, 4 * KiB});
  });
  engine.spawn("reader", [&] {
    engine.delay(milliseconds(1));
    table.wait_unlocked("/f", {1 * KiB, 1 * KiB});
    read_at = engine.now();
  });
  engine.run();
  EXPECT_EQ(read_at, seconds(2));
}

TEST(LockTable, WaitUnlockedOnUnknownFileReturnsImmediately) {
  sim::Engine engine;
  LockTable table(engine);
  engine.spawn("reader", [&] {
    table.wait_unlocked("/nope", {0, 100});
    EXPECT_EQ(engine.now(), 0);
  });
  engine.run();
}

TEST(LockTable, IsLockedQueries) {
  sim::Engine engine;
  LockTable table(engine);
  engine.spawn("p", [&] {
    EXPECT_FALSE(table.is_locked("/f", {0, 10}));
    table.lock("/f", {0, 10});
    EXPECT_TRUE(table.is_locked("/f", {5, 10}));
    EXPECT_FALSE(table.is_locked("/f", {10, 10}));
    EXPECT_EQ(table.held_count("/f"), 1u);
    table.unlock("/f", {0, 10});
    EXPECT_EQ(table.held_count("/f"), 0u);
  });
  engine.run();
}

TEST(LockTable, UnlockUnknownExtentThrows) {
  sim::Engine engine;
  LockTable table(engine);
  engine.spawn("p", [&] {
    table.lock("/f", {0, 10});
    table.unlock("/f", {0, 11});  // not the held extent
  });
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(LockTable, EmptyExtentIsNoop) {
  sim::Engine engine;
  LockTable table(engine);
  engine.spawn("p", [&] {
    table.lock("/f", {100, 0});
    table.unlock("/f", {100, 0});
    table.wait_unlocked("/f", {0, 0});
  });
  engine.run();  // must not throw or deadlock
}

TEST(LockTable, ManyWaitersAllProceedAfterUnlock) {
  sim::Engine engine;
  LockTable table(engine);
  int proceeded = 0;
  engine.spawn("holder", [&] {
    table.lock("/f", {0, 1000});
    engine.delay(seconds(1));
    table.unlock("/f", {0, 1000});
  });
  for (int i = 0; i < 5; ++i) {
    engine.spawn("w" + std::to_string(i), [&, i] {
      engine.delay(milliseconds(1));
      // Disjoint extents: all can hold simultaneously once the big one
      // is released.
      table.lock("/f", {i * 100, 100});
      ++proceeded;
      table.unlock("/f", {i * 100, 100});
    });
  }
  engine.run();
  EXPECT_EQ(proceeded, 5);
}

}  // namespace
}  // namespace e10::cache
