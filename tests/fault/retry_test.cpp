// Sync-thread retry/backoff, requeue/abandon and local-device quarantine.
#include <gtest/gtest.h>

#include <functional>

#include "cache/cache_file.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace e10::cache {
namespace {

using namespace e10::units;

// One compute node (0), one data server (1), one metadata server (2).
struct Fixture {
  Fixture()
      : fabric(3, net::FabricParams{}),
        pfs(engine, fabric, {1}, 2, quiet_pfs(), 11),
        local_fs(engine, 0, quiet_lfs(), 12),
        locks(engine),
        injector(engine) {}

  static pfs::PfsParams quiet_pfs() {
    pfs::PfsParams p;
    p.data_servers = 1;
    p.target.jitter_sigma = 0.0;
    return p;
  }
  static lfs::LfsParams quiet_lfs() {
    lfs::LfsParams p;
    p.device.jitter_sigma = 0.0;
    p.capacity = 64 * MiB;
    return p;
  }

  pfs::FileHandle open_global() {
    pfs::OpenOptions opts;
    opts.create = true;
    return pfs.open("/pfs/global", 0, opts).value();
  }

  CacheFileParams params(FlushPolicy flush = FlushPolicy::immediate) {
    CacheFileParams p;
    p.global_path = "/pfs/global";
    p.cache_path = "/scratch/global.cache.0";
    p.flush = flush;
    p.staging_bytes = 512 * KiB;
    p.alloc_chunk = 4 * MiB;
    return p;
  }

  Time run(std::function<void()> body) {
    engine.spawn("app", std::move(body));
    engine.run();
    return engine.now();
  }

  sim::Engine engine;
  net::Fabric fabric;
  pfs::Pfs pfs;
  lfs::LocalFs local_fs;
  LockTable locks;
  fault::FaultInjector injector;
};

DataView pattern(Offset size) { return DataView::synthetic(77, 0, size); }

// Runs one 512 KiB cached write (a single staging chunk) with `failures`
// forced transient pfs_write errors and a jitter-free 10ms/40ms backoff.
Time run_with_forced_failures(int failures, std::uint64_t* retries) {
  Fixture f;
  if (failures > 0) {
    f.pfs.set_fault_injector(&f.injector);
    f.injector.force_failures(fault::FaultOp::pfs_write, failures,
                              Errc::timed_out);
  }
  Time end = 0;
  f.run([&] {
    const auto handle = f.open_global();
    CacheFileParams p = f.params();
    p.retry.max_attempts = 5;
    p.retry.backoff_base = milliseconds(10);
    p.retry.backoff_cap = milliseconds(40);
    p.retry.jitter = 0.0;
    auto cache =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle, p, &f.locks);
    ASSERT_TRUE(cache.is_ok());
    ASSERT_TRUE(cache.value()->write({0, 512 * KiB}, pattern(512 * KiB)));
    ASSERT_TRUE(cache.value()->flush());
    if (retries != nullptr) *retries = cache.value()->sync_stats().retries;
    ASSERT_TRUE(cache.value()->close());
    end = f.engine.now();
  });
  // The data must be durable despite the transient failures.
  const ByteStore* global = f.pfs.peek("/pfs/global");
  EXPECT_NE(global, nullptr);
  if (global != nullptr) {
    EXPECT_EQ(global->extent_end(), 512 * KiB);
  }
  return end;
}

TEST(SyncRetry, TransientFailuresAreRetriedWithBackoff) {
  const Time clean = run_with_forced_failures(0, nullptr);
  std::uint64_t retries = 0;
  const Time faulty = run_with_forced_failures(2, &retries);
  EXPECT_EQ(retries, 2u);
  // Two jitter-free backoffs: 10ms then 20ms, plus two re-staged chunk
  // reads. Bounded window keeps the schedule honest without pinning exact
  // device service times.
  const Time delta = faulty - clean;
  EXPECT_GE(delta, milliseconds(30));
  EXPECT_LE(delta, milliseconds(45));
}

TEST(SyncRetry, BackoffScheduleIsDeterministic) {
  // Jitter draws come from a seeded per-thread stream: two identical runs
  // must finish at the identical virtual time.
  const Time a = run_with_forced_failures(3, nullptr);
  const Time b = run_with_forced_failures(3, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, run_with_forced_failures(0, nullptr));
}

TEST(SyncRetry, ExhaustedRequestIsRequeuedThenAbandoned) {
  Fixture f;
  f.pfs.set_fault_injector(&f.injector);
  // More failures than the whole retry budget can absorb:
  // (max_attempts + 1) failures per dispatch x (max_requeues + 1) dispatches.
  f.injector.force_failures(fault::FaultOp::pfs_write, 100, Errc::timed_out);
  f.run([&] {
    const auto handle = f.open_global();
    CacheFileParams p = f.params();
    p.retry.max_attempts = 1;
    p.retry.max_requeues = 1;
    p.retry.backoff_base = milliseconds(1);
    p.retry.backoff_cap = milliseconds(2);
    p.retry.jitter = 0.0;
    auto cache =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle, p, &f.locks);
    ASSERT_TRUE(cache.is_ok());
    ASSERT_TRUE(cache.value()->write({0, 512 * KiB}, pattern(512 * KiB)));

    // The flush must NOT hang: the abandoned request still completes its
    // grequest, and the data loss surfaces as an error exactly once.
    const Status flushed = cache.value()->flush();
    ASSERT_FALSE(flushed.is_ok());
    EXPECT_EQ(flushed.code(), Errc::io_error);
    EXPECT_EQ(cache.value()->sync_stats().requeues, 1u);
    EXPECT_EQ(cache.value()->sync_stats().abandoned, 1u);
    EXPECT_TRUE(cache.value()->flush());  // already reported

    EXPECT_TRUE(cache.value()->close());
  });
  // Nothing could be synced.
  const ByteStore* global = f.pfs.peek("/pfs/global");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->extent_end(), 0);
}

TEST(SyncRetry, CloseAfterFlushErrorStillTearsDown) {
  Fixture f;
  f.pfs.set_fault_injector(&f.injector);
  f.injector.force_failures(fault::FaultOp::pfs_write, 100, Errc::timed_out);
  f.run([&] {
    const auto handle = f.open_global();
    CacheFileParams p = f.params();
    p.retry.max_attempts = 1;
    p.retry.max_requeues = 0;
    p.retry.backoff_base = milliseconds(1);
    p.retry.backoff_cap = milliseconds(1);
    auto cache =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle, p, &f.locks);
    ASSERT_TRUE(cache.is_ok());
    ASSERT_TRUE(cache.value()->write({0, 256 * KiB}, pattern(256 * KiB)));

    // close() reports the flush failure but must still stop the sync
    // thread, close the handle and (discard) unlink the cache file —
    // the old behaviour leaked the sync thread and deadlocked the engine.
    const Status closed = cache.value()->close();
    EXPECT_FALSE(closed.is_ok());
    EXPECT_TRUE(cache.value()->closed());
    EXPECT_TRUE(cache.value()->close());  // idempotent
    EXPECT_FALSE(f.local_fs.exists("/scratch/global.cache.0"));
  });
}

TEST(SyncRetry, MidRunDeviceFailureQuarantinesCache) {
  Fixture f;
  obs::MetricsRegistry metrics;
  f.local_fs.set_fault_injector(&f.injector);
  f.run([&] {
    const auto handle = f.open_global();
    CacheFileParams p = f.params();
    p.metrics = &metrics;
    p.quarantine_after = 3;
    auto opened =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle, p, &f.locks);
    ASSERT_TRUE(opened.is_ok());
    CacheFile& cache = *opened.value();

    // Two healthy writes; their extents sync normally.
    ASSERT_TRUE(cache.write({0, 256 * KiB}, pattern(256 * KiB)));
    ASSERT_TRUE(cache.write({256 * KiB, 256 * KiB},
                            DataView::synthetic(77, 256 * KiB, 256 * KiB)));

    // The local device starts failing hard mid-run.
    f.injector.force_failures(fault::FaultOp::lfs_write, 50, Errc::io_error);
    for (int i = 0; i < 3; ++i) {
      EXPECT_FALSE(cache.degraded());
      const Status s = cache.write({1 * MiB, 64 * KiB}, pattern(64 * KiB));
      ASSERT_FALSE(s.is_ok());
      EXPECT_EQ(s.code(), Errc::io_error);
    }
    // Quarantined: writes now fail fast without touching the device, the
    // caller falls back to direct global writes (adio write_contig path).
    EXPECT_TRUE(cache.degraded());
    const Status fast = cache.write({1 * MiB, 64 * KiB}, pattern(64 * KiB));
    ASSERT_FALSE(fast.is_ok());
    EXPECT_EQ(fast.code(), Errc::unavailable);
    EXPECT_EQ(f.injector.forced_remaining(fault::FaultOp::lfs_write), 47);
    EXPECT_FALSE(cache.try_read({0, 64 * KiB}).has_value());

    // Outstanding grequests from the healthy writes still complete and the
    // teardown is clean.
    EXPECT_TRUE(cache.flush());
    EXPECT_TRUE(cache.close());
  });
  EXPECT_EQ(metrics.counter_value(obs::names::kCacheDegraded), 1);
  // The two healthy extents made it to the global file.
  const ByteStore* global = f.pfs.peek("/pfs/global");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->extent_end(), 512 * KiB);
  EXPECT_EQ(global->byte_at(300 * KiB), DataView::pattern_byte(77, 300 * KiB));
}

}  // namespace
}  // namespace e10::cache
