// Satellite: FaultOp coverage audit. Every FaultOp enum value must be wired
// to a hook somewhere in the real stack: a forced failure on the op, driven
// through the public Pfs/LocalFs API, has to surface to the caller and count
// in the injector's stats. An op the stack silently ignores makes every fuzz
// scenario that schedules it quietly weaker, so the suite enumerates the
// whole enum — adding a FaultOp without a driver here fails the build of
// this test, not a fuzz run three PRs later.
#include <gtest/gtest.h>

#include <functional>

#include "common/units.h"
#include "fault/fault_injector.h"
#include "lfs/local_fs.h"
#include "net/fabric.h"
#include "pfs/pfs.h"
#include "sim/engine.h"

namespace e10::fault {
namespace {

using namespace e10::units;

template <typename T>
Status to_status(const Result<T>& r) {
  return r.is_ok() ? Status::ok() : r.status();
}

// One compute node (0), one data server (1), one metadata server (2).
struct Fixture {
  Fixture()
      : fabric(3, net::FabricParams{}),
        pfs(engine, fabric, {1}, 2, quiet_pfs(), 11),
        local_fs(engine, 0, quiet_lfs(), 12),
        injector(engine) {}

  static pfs::PfsParams quiet_pfs() {
    pfs::PfsParams p;
    p.data_servers = 1;
    p.target.jitter_sigma = 0.0;
    return p;
  }
  static lfs::LfsParams quiet_lfs() {
    lfs::LfsParams p;
    p.device.jitter_sigma = 0.0;
    p.capacity = 64 * MiB;
    return p;
  }

  void run(std::function<void()> body) {
    engine.spawn("app", std::move(body));
    engine.run();
  }

  sim::Engine engine;
  net::Fabric fabric;
  pfs::Pfs pfs;
  lfs::LocalFs local_fs;
  FaultInjector injector;
};

struct Stack {
  Fixture& f;
  pfs::FileHandle pfs_handle = 0;
  lfs::FileHandle lfs_handle = 0;

  // Creates both files and seeds them with data so reads have something to
  // return — LocalFs::read only consults the injector for a non-empty range.
  explicit Stack(Fixture& fixture) : f(fixture) {
    pfs::OpenOptions opts;
    opts.create = true;
    pfs_handle = f.pfs.open("/pfs/coverage", 0, opts).value();
    EXPECT_TRUE(f.pfs.write(pfs_handle, 0, DataView::synthetic(1, 0, 64 * KiB))
                    .is_ok());
    lfs_handle = f.local_fs.open("/scratch/coverage", true).value();
    EXPECT_TRUE(
        f.local_fs.write(lfs_handle, 0, DataView::synthetic(2, 0, 64 * KiB))
            .is_ok());
  }

  // Drives `op` end-to-end through the public API of the layer that owns it.
  Status drive(FaultOp op) {
    switch (op) {
      case FaultOp::pfs_read:
        return to_status(f.pfs.read(pfs_handle, 0, 4 * KiB));
      case FaultOp::pfs_write:
        return f.pfs.write(pfs_handle, 0, DataView::synthetic(3, 0, 4 * KiB));
      case FaultOp::pfs_metadata:
        return to_status(f.pfs.stat(pfs_handle));
      case FaultOp::lfs_open:
        return to_status(f.local_fs.open("/scratch/coverage", true));
      case FaultOp::lfs_read:
        return to_status(f.local_fs.read(lfs_handle, 0, 4 * KiB));
      case FaultOp::lfs_write:
        return f.local_fs.write(lfs_handle, 0,
                                DataView::synthetic(4, 0, 4 * KiB));
    }
    ADD_FAILURE() << "FaultOp " << static_cast<int>(op)
                  << " has no end-to-end driver; wire it into the stack and "
                     "teach this test how to exercise it";
    return Status::ok();
  }
};

class FaultOpCoverage : public ::testing::TestWithParam<int> {};

TEST_P(FaultOpCoverage, ForcedFailureSurfacesThroughTheStack) {
  const auto op = static_cast<FaultOp>(GetParam());
  Fixture f;
  f.run([&] {
    Stack stack(f);
    // Attach only after setup so the prep traffic cannot eat the failure.
    f.pfs.set_fault_injector(&f.injector);
    f.local_fs.set_fault_injector(&f.injector);
    f.injector.force_failures(op, 1, Errc::io_error);

    const Status failed = stack.drive(op);
    ASSERT_FALSE(failed.is_ok())
        << fault_op_name(op) << " swallowed the forced failure";
    EXPECT_EQ(failed.code(), Errc::io_error) << failed.to_string();
    EXPECT_EQ(f.injector.forced_remaining(op), 0);
    EXPECT_EQ(f.injector.stats().injected, 1);

    // With the forces spent, the same operation completes end-to-end.
    const Status healthy = stack.drive(op);
    EXPECT_TRUE(healthy.is_ok()) << healthy.to_string();
    EXPECT_EQ(f.injector.stats().injected, 1);
  });
}

INSTANTIATE_TEST_SUITE_P(AllOps, FaultOpCoverage,
                         ::testing::Range(0, kFaultOpCount),
                         [](const ::testing::TestParamInfo<int>& param) {
                           return fault_op_name(
                               static_cast<FaultOp>(param.param));
                         });

// The gap this satellite closes: fallocate() reserves extents on the same
// device a data write hits, but used to bypass the injector entirely — a
// fuzz scenario's lfs_write fault plan could never fail an allocation.
TEST(FaultOpCoverage, FallocateSharesTheWriteFaultClass) {
  Fixture f;
  f.run([&] {
    const auto handle = f.local_fs.open("/scratch/prealloc", true).value();
    f.local_fs.set_fault_injector(&f.injector);
    f.injector.force_failures(FaultOp::lfs_write, 1, Errc::io_error);

    const Status failed = f.local_fs.fallocate(handle, 1 * MiB);
    ASSERT_FALSE(failed.is_ok());
    EXPECT_EQ(failed.code(), Errc::io_error);
    // Rejected before the reservation was charged or counted.
    EXPECT_EQ(f.local_fs.stats().fallocates, 0u);

    ASSERT_TRUE(f.local_fs.fallocate(handle, 1 * MiB).is_ok());
    EXPECT_EQ(f.local_fs.stats().fallocates, 1u);
    ASSERT_TRUE(f.local_fs.close(handle).is_ok());
  });
}

}  // namespace
}  // namespace e10::fault
