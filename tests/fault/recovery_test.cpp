// Journal record codec, extent replay rules, and the crash -> recover ->
// replay end-to-end path (the paper's §III durability argument: the cache
// lives on non-volatile memory, so a crash loses no data).
#include <gtest/gtest.h>

#include <functional>

#include "cache/cache_file.h"
#include "cache/journal.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace e10::cache {
namespace {

using namespace e10::units;

TEST(Journal, WriteRecordRoundTrip) {
  std::vector<DataView> parts;
  parts.push_back(encode_write_record({1, 0, 4096, 0}));
  parts.push_back(encode_write_record({2, 1 * MiB, 512 * KiB, 4096}));
  const auto records = scan_write_records(DataView::concat(parts));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].global_offset, 0);
  EXPECT_EQ(records[0].length, 4096);
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ(records[1].global_offset, 1 * MiB);
  EXPECT_EQ(records[1].length, 512 * KiB);
  EXPECT_EQ(records[1].cache_offset, 4096);
}

TEST(Journal, ScanStopsAtTruncatedTailAndBadMagic) {
  std::vector<DataView> parts;
  parts.push_back(encode_write_record({1, 0, 4096, 0}));
  parts.push_back(encode_write_record({2, 4096, 4096, 4096}));
  // A crash interrupted the third append mid-record.
  parts.push_back(encode_write_record({3, 8192, 4096, 8192}).slice(0, 17));
  EXPECT_EQ(scan_write_records(DataView::concat(parts)).size(), 2u);

  // Garbage where a record should start: everything after is ignored.
  std::vector<DataView> corrupt;
  corrupt.push_back(encode_write_record({1, 0, 4096, 0}));
  corrupt.push_back(DataView::synthetic(5, 0, kWriteRecordBytes));
  corrupt.push_back(encode_write_record({2, 4096, 4096, 4096}));
  EXPECT_EQ(scan_write_records(DataView::concat(corrupt)).size(), 1u);

  EXPECT_TRUE(scan_write_records(DataView()).empty());
}

TEST(Journal, CommitRecordRoundTrip) {
  std::vector<DataView> parts;
  parts.push_back(encode_commit_record(7));
  parts.push_back(encode_commit_record(3));
  parts.push_back(encode_commit_record(9).slice(0, 8));  // truncated
  const auto seqs = scan_commit_records(DataView::concat(parts));
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{7, 3}));
}

TEST(Journal, ApplyExtentShadowsAndSplits) {
  ExtentMap map;
  apply_extent(map, {0, 1000}, 0, 1);
  apply_extent(map, {400, 200}, 1000, 2);  // punches a hole in the middle
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.at(0).length, 400);
  EXPECT_EQ(map.at(0).seq, 1u);
  EXPECT_EQ(map.at(0).cache_offset, 0);
  EXPECT_EQ(map.at(400).length, 200);
  EXPECT_EQ(map.at(400).seq, 2u);
  EXPECT_EQ(map.at(400).cache_offset, 1000);
  EXPECT_EQ(map.at(600).length, 400);
  EXPECT_EQ(map.at(600).seq, 1u);  // split fragments keep the old seq
  EXPECT_EQ(map.at(600).cache_offset, 600);

  // A covering write shadows everything beneath it.
  apply_extent(map, {0, 1000}, 2000, 3);
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(0).seq, 3u);
}

// One compute node (0), one data server (1), one metadata server (2).
struct Fixture {
  Fixture()
      : fabric(3, net::FabricParams{}),
        pfs(engine, fabric, {1}, 2, quiet_pfs(), 11),
        local_fs(engine, 0, quiet_lfs(), 12),
        locks(engine),
        injector(engine) {}

  static pfs::PfsParams quiet_pfs() {
    pfs::PfsParams p;
    p.data_servers = 1;
    p.target.jitter_sigma = 0.0;
    return p;
  }
  static lfs::LfsParams quiet_lfs() {
    lfs::LfsParams p;
    p.device.jitter_sigma = 0.0;
    p.capacity = 64 * MiB;
    return p;
  }

  pfs::FileHandle open_global() {
    pfs::OpenOptions opts;
    opts.create = true;
    return pfs.open("/pfs/global", 0, opts).value();
  }

  CacheFileParams params(FlushPolicy flush) {
    CacheFileParams p;
    p.global_path = "/pfs/global";
    p.cache_path = "/scratch/global.cache.0";
    p.flush = flush;
    p.staging_bytes = 512 * KiB;
    p.alloc_chunk = 4 * MiB;
    return p;
  }

  void run(std::function<void()> body) {
    engine.spawn("app", std::move(body));
    engine.run();
  }

  sim::Engine engine;
  net::Fabric fabric;
  pfs::Pfs pfs;
  lfs::LocalFs local_fs;
  LockTable locks;
  fault::FaultInjector injector;
};

// The three overlapping writes used by the crash tests. Final layout:
//   [0, 256K) -> pattern 77, [256K, 512K) -> 79, [512K, 1536K) -> 78.
void do_writes(CacheFile& cache) {
  ASSERT_TRUE(cache.write({0, 1 * MiB}, DataView::synthetic(77, 0, 1 * MiB)));
  ASSERT_TRUE(cache.write({512 * KiB, 1 * MiB},
                          DataView::synthetic(78, 512 * KiB, 1 * MiB)));
  ASSERT_TRUE(cache.write({256 * KiB, 256 * KiB},
                          DataView::synthetic(79, 256 * KiB, 256 * KiB)));
}

std::byte expected_byte(Offset o) {
  if (o < 256 * KiB) return DataView::pattern_byte(77, o);
  if (o < 512 * KiB) return DataView::pattern_byte(79, o);
  return DataView::pattern_byte(78, o);
}

void expect_expected_content(const ByteStore* global) {
  ASSERT_NE(global, nullptr);
  ASSERT_EQ(global->extent_end(), 1536 * KiB);
  for (Offset o = 0; o < 1536 * KiB; o += 4 * KiB) {
    ASSERT_EQ(global->byte_at(o), expected_byte(o)) << "offset " << o;
  }
  // Boundaries around the shadowed seams.
  for (const Offset o : {256 * KiB - 1, 256 * KiB, 512 * KiB - 1, 512 * KiB,
                         1536 * KiB - 1}) {
    ASSERT_EQ(global->byte_at(o), expected_byte(o)) << "offset " << o;
  }
}

TEST(Recovery, CrashDuringFlushThenReplayMatchesCleanRun) {
  // Reference: same writes, no faults, clean close.
  Fixture clean;
  clean.run([&] {
    const auto handle = clean.open_global();
    auto cache = CacheFile::open(clean.engine, clean.local_fs, clean.pfs,
                                 handle, clean.params(FlushPolicy::onclose),
                                 &clean.locks);
    ASSERT_TRUE(cache.is_ok());
    do_writes(*cache.value());
    ASSERT_TRUE(cache.value()->close());
  });

  // Crash run: the rank dies at flush time, before any extent was synced.
  Fixture f;
  obs::MetricsRegistry metrics;
  f.injector.arm(fault::FaultPlan::parse("crash=0@flush").value());
  f.run([&] {
    const auto handle = f.open_global();
    CacheFileParams p = f.params(FlushPolicy::onclose);
    p.fault = &f.injector;
    p.journal = true;
    auto opened =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle, p, &f.locks);
    ASSERT_TRUE(opened.is_ok());
    CacheFile& cache = *opened.value();
    ASSERT_TRUE(cache.journaling());
    do_writes(cache);

    const Status flushed = cache.flush();
    ASSERT_FALSE(flushed.is_ok());
    EXPECT_TRUE(cache.crashed());
    EXPECT_TRUE(cache.closed());
    // The cache file and its sidecars survive on the non-volatile device.
    EXPECT_TRUE(f.local_fs.exists("/scratch/global.cache.0"));
    EXPECT_TRUE(f.local_fs.exists(
        CacheFile::journal_path("/scratch/global.cache.0")));

    // Nothing reached the global file before the crash.
    EXPECT_EQ(f.pfs.peek("/pfs/global")->extent_end(), 0);

    // Restart: replay the journal.
    const auto report = CacheFile::recover(f.local_fs, f.pfs, handle,
                                           "/scratch/global.cache.0",
                                           &metrics);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report.value().journal_records, 3u);
    EXPECT_EQ(report.value().committed, 0u);
    EXPECT_EQ(report.value().replayed_extents, 3u);
    EXPECT_EQ(report.value().replayed_bytes, 1536 * KiB);
  });
  EXPECT_EQ(f.injector.stats().crashes, 1);
  EXPECT_EQ(metrics.counter_value(obs::names::kCacheRecoveredExtents), 3);
  EXPECT_EQ(metrics.counter_value(obs::names::kCacheRecoveredBytes),
            1536 * KiB);

  // Byte-identical global content vs the no-crash run.
  expect_expected_content(f.pfs.peek("/pfs/global"));
  expect_expected_content(clean.pfs.peek("/pfs/global"));
}

TEST(Recovery, ReplaySkipsCommittedSeqs) {
  // Hand-build a crashed cache: two journaled writes, the first committed.
  Fixture f;
  f.run([&] {
    const auto global = f.open_global();
    const std::string cache_path = "/scratch/global.cache.0";
    const auto cache = f.local_fs.open(cache_path, true, true).value();
    ASSERT_TRUE(f.local_fs
                    .write(cache, 0, DataView::synthetic(77, 0, 256 * KiB))
                    .is_ok());
    ASSERT_TRUE(f.local_fs
                    .write(cache, 256 * KiB,
                           DataView::synthetic(78, 1 * MiB, 256 * KiB))
                    .is_ok());
    ASSERT_TRUE(f.local_fs.close(cache).is_ok());

    const auto journal =
        f.local_fs.open(CacheFile::journal_path(cache_path), true).value();
    std::vector<DataView> records;
    records.push_back(encode_write_record({1, 0, 256 * KiB, 0}));
    records.push_back(encode_write_record({2, 1 * MiB, 256 * KiB, 256 * KiB}));
    ASSERT_TRUE(
        f.local_fs.write(journal, 0, DataView::concat(records)).is_ok());
    ASSERT_TRUE(f.local_fs.close(journal).is_ok());

    const auto commits =
        f.local_fs.open(CacheFile::commits_path(cache_path), true).value();
    ASSERT_TRUE(f.local_fs.write(commits, 0, encode_commit_record(1)).is_ok());
    ASSERT_TRUE(f.local_fs.close(commits).is_ok());

    const auto report =
        CacheFile::recover(f.local_fs, f.pfs, global, cache_path);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report.value().journal_records, 2u);
    EXPECT_EQ(report.value().committed, 1u);
    EXPECT_EQ(report.value().replayed_extents, 1u);
    EXPECT_EQ(report.value().replayed_bytes, 256 * KiB);
  });
  // Only seq 2 (at global offset 1 MiB) was replayed.
  const ByteStore* global = f.pfs.peek("/pfs/global");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->extent_end(), 1 * MiB + 256 * KiB);
  EXPECT_EQ(global->byte_at(1 * MiB + 5),
            DataView::pattern_byte(78, 1 * MiB + 5));
}

TEST(Recovery, TornTrailingJournalRecordIsIgnoredNotFatal) {
  // A crash mid-append leaves a partial record at the journal tail. Recovery
  // must replay everything before the tear and succeed — a torn tail is
  // expected crash damage, not a reason to abandon the intact records.
  Fixture f;
  f.run([&] {
    const auto global = f.open_global();
    const std::string cache_path = "/scratch/global.cache.0";
    const auto cache = f.local_fs.open(cache_path, true, true).value();
    ASSERT_TRUE(f.local_fs
                    .write(cache, 0, DataView::synthetic(77, 0, 256 * KiB))
                    .is_ok());
    ASSERT_TRUE(f.local_fs
                    .write(cache, 256 * KiB,
                           DataView::synthetic(78, 1 * MiB, 256 * KiB))
                    .is_ok());
    ASSERT_TRUE(f.local_fs.close(cache).is_ok());

    const auto journal =
        f.local_fs.open(CacheFile::journal_path(cache_path), true).value();
    std::vector<DataView> records;
    records.push_back(encode_write_record({1, 0, 256 * KiB, 0}));
    records.push_back(encode_write_record({2, 1 * MiB, 256 * KiB, 256 * KiB}));
    // The third append was interrupted 17 bytes in.
    records.push_back(
        encode_write_record({3, 2 * MiB, 256 * KiB, 512 * KiB}).slice(0, 17));
    ASSERT_TRUE(
        f.local_fs.write(journal, 0, DataView::concat(records)).is_ok());
    ASSERT_TRUE(f.local_fs.close(journal).is_ok());

    // The commits sidecar has one intact record and a torn tail too.
    const auto commits =
        f.local_fs.open(CacheFile::commits_path(cache_path), true).value();
    std::vector<DataView> commit_records;
    commit_records.push_back(encode_commit_record(1));
    commit_records.push_back(encode_commit_record(2).slice(0, 9));
    ASSERT_TRUE(
        f.local_fs.write(commits, 0, DataView::concat(commit_records))
            .is_ok());
    ASSERT_TRUE(f.local_fs.close(commits).is_ok());

    const auto report =
        CacheFile::recover(f.local_fs, f.pfs, global, cache_path);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    // Both intact write records scanned; the torn third is ignored. The
    // torn commit record is ignored too, so seq 2 counts as uncommitted
    // and is replayed (idempotence makes the extra replay harmless).
    EXPECT_EQ(report.value().journal_records, 2u);
    EXPECT_EQ(report.value().committed, 1u);
    EXPECT_EQ(report.value().replayed_extents, 1u);
    EXPECT_EQ(report.value().replayed_bytes, 256 * KiB);
  });
  const ByteStore* global = f.pfs.peek("/pfs/global");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->byte_at(1 * MiB + 5),
            DataView::pattern_byte(78, 1 * MiB + 5));
}

TEST(Recovery, MissingJournalYieldsEmptyReport) {
  Fixture f;
  f.run([&] {
    const auto global = f.open_global();
    const auto report =
        CacheFile::recover(f.local_fs, f.pfs, global, "/scratch/nothing");
    ASSERT_TRUE(report.is_ok());
    EXPECT_EQ(report.value().journal_records, 0u);
    EXPECT_EQ(report.value().replayed_extents, 0u);
  });
}

TEST(Recovery, CleanCloseLeavesNoSidecarsBehind) {
  Fixture f;
  f.run([&] {
    const auto handle = f.open_global();
    CacheFileParams p = f.params(FlushPolicy::immediate);
    p.journal = true;
    auto cache =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle, p, &f.locks);
    ASSERT_TRUE(cache.is_ok());
    ASSERT_TRUE(cache.value()->journaling());
    ASSERT_TRUE(
        cache.value()->write({0, 256 * KiB}, DataView::synthetic(1, 0, 256 * KiB)));
    ASSERT_TRUE(cache.value()->close());
    EXPECT_FALSE(f.local_fs.exists("/scratch/global.cache.0"));
    EXPECT_FALSE(f.local_fs.exists(
        CacheFile::journal_path("/scratch/global.cache.0")));
    EXPECT_FALSE(f.local_fs.exists(
        CacheFile::commits_path("/scratch/global.cache.0")));
    // Nothing to recover after a clean close.
    const auto report = CacheFile::recover(f.local_fs, f.pfs, handle,
                                           "/scratch/global.cache.0");
    ASSERT_TRUE(report.is_ok());
    EXPECT_EQ(report.value().journal_records, 0u);
  });
}

}  // namespace
}  // namespace e10::cache
