#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::fault {
namespace {

using namespace e10::units;

TEST(FaultPlan, ParsesTransientsOutagesAndCrashes) {
  const auto plan = FaultPlan::parse(
      "pfs_write=0.02/timed_out; pfs_read=5%; lfs_write=0.5/io_error; "
      "outage=1@1s-2s; degrade=0@500ms-1sx3.5; crash=7@4s; crash=3@flush; "
      "latency=2ms; seed=99");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  const FaultPlan& p = plan.value();
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(
      p.transient[static_cast<int>(FaultOp::pfs_write)].probability, 0.02);
  EXPECT_EQ(p.transient[static_cast<int>(FaultOp::pfs_write)].errc,
            Errc::timed_out);
  // Bare probability defaults to unavailable; N% is scaled.
  EXPECT_DOUBLE_EQ(
      p.transient[static_cast<int>(FaultOp::pfs_read)].probability, 0.05);
  EXPECT_EQ(p.transient[static_cast<int>(FaultOp::pfs_read)].errc,
            Errc::unavailable);
  EXPECT_EQ(p.transient[static_cast<int>(FaultOp::lfs_write)].errc,
            Errc::io_error);

  ASSERT_EQ(p.outages.size(), 2u);
  EXPECT_EQ(p.outages[0].server, 1);
  EXPECT_EQ(p.outages[0].start, seconds(1));
  EXPECT_EQ(p.outages[0].end, seconds(2));
  EXPECT_TRUE(p.outages[0].hard());
  EXPECT_EQ(p.outages[1].server, 0);
  EXPECT_EQ(p.outages[1].start, milliseconds(500));
  EXPECT_FALSE(p.outages[1].hard());
  EXPECT_DOUBLE_EQ(p.outages[1].slowdown, 3.5);

  ASSERT_EQ(p.crashes.size(), 2u);
  EXPECT_TRUE(p.has_crashes());
  EXPECT_EQ(p.crashes[0].rank, 7);
  EXPECT_EQ(p.crashes[0].at, seconds(4));
  EXPECT_FALSE(p.crashes[0].during_flush);
  EXPECT_EQ(p.crashes[1].rank, 3);
  EXPECT_TRUE(p.crashes[1].during_flush);

  EXPECT_EQ(p.error_latency, milliseconds(2));
  EXPECT_EQ(p.seed, 99u);
}

TEST(FaultPlan, TimeSuffixes) {
  EXPECT_EQ(FaultPlan::parse("latency=500ns").value().error_latency, 500);
  EXPECT_EQ(FaultPlan::parse("latency=10us").value().error_latency,
            microseconds(10));
  EXPECT_EQ(FaultPlan::parse("latency=1.5ms").value().error_latency,
            microseconds(1500));
  EXPECT_EQ(FaultPlan::parse("latency=2s").value().error_latency, seconds(2));
  // A bare number is nanoseconds.
  EXPECT_EQ(FaultPlan::parse("latency=42").value().error_latency, 42);
}

TEST(FaultPlan, RejectsMalformedClauses) {
  EXPECT_FALSE(FaultPlan::parse("bogus_op=0.5").is_ok());
  EXPECT_FALSE(FaultPlan::parse("pfs_write=1.5").is_ok());       // p > 1
  EXPECT_FALSE(FaultPlan::parse("pfs_write=0.1/nonsense").is_ok());
  EXPECT_FALSE(FaultPlan::parse("outage=1@2s").is_ok());         // no END
  EXPECT_FALSE(FaultPlan::parse("outage=1@2s-1s").is_ok());      // end<=start
  EXPECT_FALSE(FaultPlan::parse("degrade=0@1s-2s").is_ok());     // no factor
  EXPECT_FALSE(FaultPlan::parse("degrade=0@1s-2sx0.5").is_ok()); // <= 1
  EXPECT_FALSE(FaultPlan::parse("crash=0").is_ok());
  EXPECT_FALSE(FaultPlan::parse("crash=0@sometime").is_ok());
  EXPECT_FALSE(FaultPlan::parse("justaword").is_ok());
}

TEST(FaultPlan, EmptySpecAndSummary) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().empty());
  EXPECT_FALSE(plan.value().has_crashes());
  EXPECT_EQ(plan.value().summary(), "no faults");

  // A seed-only plan is still empty: nothing can fire.
  EXPECT_TRUE(FaultPlan::parse("seed=5").value().empty());

  const auto armed = FaultPlan::parse("pfs_write=1%; seed=3").value();
  EXPECT_NE(armed.summary().find("pfs_write"), std::string::npos);
  EXPECT_NE(armed.summary().find("seed=3"), std::string::npos);
}

TEST(FaultPlan, OutageWindowCovers) {
  const OutageWindow w{0, seconds(1), seconds(2), 0.0};
  EXPECT_FALSE(w.covers(seconds(1) - 1));
  EXPECT_TRUE(w.covers(seconds(1)));          // start inclusive
  EXPECT_TRUE(w.covers(seconds(2) - 1));
  EXPECT_FALSE(w.covers(seconds(2)));         // end exclusive
}

}  // namespace
}  // namespace e10::fault
