#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "lfs/local_fs.h"
#include "net/fabric.h"
#include "pfs/pfs.h"
#include "sim/engine.h"

namespace e10::fault {
namespace {

using namespace e10::units;

std::vector<bool> draw_sequence(const std::string& spec, int n) {
  sim::Engine engine;
  FaultInjector injector(engine);
  injector.arm(FaultPlan::parse(spec).value());
  std::vector<bool> injected;
  injected.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    injected.push_back(!injector.check(FaultOp::pfs_write).is_ok());
  }
  return injected;
}

TEST(FaultInjector, DeterministicForAFixedSeed) {
  const auto a = draw_sequence("pfs_write=0.3/timed_out; seed=42", 500);
  const auto b = draw_sequence("pfs_write=0.3/timed_out; seed=42", 500);
  EXPECT_EQ(a, b);
  // The stream actually injects at roughly the configured rate.
  const auto hits = std::count(a.begin(), a.end(), true);
  EXPECT_GT(hits, 100);
  EXPECT_LT(hits, 220);
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules) {
  const auto a = draw_sequence("pfs_write=0.3; seed=42", 500);
  const auto b = draw_sequence("pfs_write=0.3; seed=43", 500);
  EXPECT_NE(a, b);
}

TEST(FaultInjector, PerOpStreamsAreIndependent) {
  // Drawing on one op must not perturb another op's schedule.
  sim::Engine engine;
  FaultInjector reference(engine);
  reference.arm(FaultPlan::parse("pfs_write=0.3; lfs_read=0.3; seed=1").value());
  std::vector<bool> expected;
  for (int i = 0; i < 200; ++i) {
    expected.push_back(!reference.check(FaultOp::pfs_write).is_ok());
  }

  FaultInjector interleaved(engine);
  interleaved.arm(
      FaultPlan::parse("pfs_write=0.3; lfs_read=0.3; seed=1").value());
  std::vector<bool> actual;
  for (int i = 0; i < 200; ++i) {
    (void)interleaved.check(FaultOp::lfs_read);  // extra traffic on lfs_read
    actual.push_back(!interleaved.check(FaultOp::pfs_write).is_ok());
  }
  EXPECT_EQ(expected, actual);
}

TEST(FaultInjector, UnarmedInjectorNeverFails) {
  sim::Engine engine;
  FaultInjector injector(engine);
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.check(FaultOp::pfs_write).is_ok());
  }
  // Arming an empty plan keeps it disarmed.
  injector.arm(FaultPlan{});
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjector, ForcedFailuresFireFirstWithGivenErrc) {
  sim::Engine engine;
  FaultInjector injector(engine);
  injector.force_failures(FaultOp::lfs_open, 2, Errc::timed_out);
  EXPECT_EQ(injector.forced_remaining(FaultOp::lfs_open), 2);
  const Status first = injector.check(FaultOp::lfs_open);
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(first.code(), Errc::timed_out);
  EXPECT_FALSE(injector.check(FaultOp::lfs_open).is_ok());
  EXPECT_EQ(injector.forced_remaining(FaultOp::lfs_open), 0);
  EXPECT_TRUE(injector.check(FaultOp::lfs_open).is_ok());
  EXPECT_EQ(injector.stats().injected, 2);
}

TEST(FaultInjector, OutageWindowTiming) {
  sim::Engine engine;
  FaultInjector injector(engine);
  injector.arm(FaultPlan::parse("outage=1@1s-2s").value());
  EXPECT_FALSE(injector.server_down(1, seconds(1) - 1));
  EXPECT_TRUE(injector.server_down(1, seconds(1)));
  EXPECT_TRUE(injector.server_down(1, seconds(2) - 1));
  EXPECT_FALSE(injector.server_down(1, seconds(2)));
  EXPECT_FALSE(injector.server_down(0, seconds(1)));  // other server is fine
  EXPECT_EQ(injector.stats().outage_rejections, 2);
}

TEST(FaultInjector, OverlappingDegradeWindowsMultiply) {
  sim::Engine engine;
  FaultInjector injector(engine);
  injector.arm(
      FaultPlan::parse("degrade=0@1s-3sx2.0; degrade=0@2s-4sx3.0").value());
  EXPECT_DOUBLE_EQ(injector.slowdown(0, seconds(1) - 1), 1.0);
  EXPECT_DOUBLE_EQ(injector.slowdown(0, milliseconds(1500)), 2.0);
  EXPECT_DOUBLE_EQ(injector.slowdown(0, milliseconds(2500)), 6.0);
  EXPECT_DOUBLE_EQ(injector.slowdown(0, milliseconds(3500)), 3.0);
  EXPECT_DOUBLE_EQ(injector.slowdown(1, milliseconds(2500)), 1.0);
  // A hard outage is not a slowdown.
  FaultInjector other(engine);
  other.arm(FaultPlan::parse("outage=0@1s-3s").value());
  EXPECT_DOUBLE_EQ(other.slowdown(0, seconds(2)), 1.0);
}

TEST(FaultInjector, CrashDueIsOneShotPerSpec) {
  sim::Engine engine;
  FaultInjector injector(engine);
  injector.arm(FaultPlan::parse("crash=2@1s; crash=5@flush").value());
  EXPECT_FALSE(injector.crash_due(2, milliseconds(500), false));
  EXPECT_FALSE(injector.crash_due(3, seconds(2), false));  // wrong rank
  EXPECT_TRUE(injector.crash_due(2, milliseconds(1500), false));
  EXPECT_FALSE(injector.crash_due(2, seconds(2), false));  // already fired
  EXPECT_FALSE(injector.crash_due(5, seconds(2), false));  // waits for flush
  EXPECT_TRUE(injector.crash_due(5, seconds(2), true));
  EXPECT_FALSE(injector.crash_due(5, seconds(3), true));
  EXPECT_EQ(injector.stats().crashes, 2);
}

TEST(FaultInjector, InjectionChargesErrorLatencyInProcessContext) {
  sim::Engine engine;
  FaultInjector injector(engine);
  injector.arm(FaultPlan::parse("pfs_read=1.0/io_error; latency=5ms").value());
  Time elapsed = -1;
  engine.spawn("app", [&] {
    const Time start = engine.now();
    EXPECT_FALSE(injector.check(FaultOp::pfs_read).is_ok());
    elapsed = engine.now() - start;
  });
  engine.run();
  EXPECT_EQ(elapsed, milliseconds(5));
}

// ---- Integration: injector wired through Pfs and storage::Device ----------

// One compute node (0), one data server (1), one metadata server (2).
struct Fixture {
  Fixture()
      : fabric(3, net::FabricParams{}),
        pfs(engine, fabric, {1}, 2, quiet_pfs(), 11),
        injector(engine) {}

  static pfs::PfsParams quiet_pfs() {
    pfs::PfsParams p;
    p.data_servers = 1;
    p.target.jitter_sigma = 0.0;
    return p;
  }

  Time run(std::function<void()> body) {
    engine.spawn("app", std::move(body));
    engine.run();
    return engine.now();
  }

  sim::Engine engine;
  net::Fabric fabric;
  pfs::Pfs pfs;
  FaultInjector injector;
};

TEST(FaultIntegration, PfsWritesRejectedDuringOutageWindow) {
  Fixture f;
  f.injector.arm(FaultPlan::parse("outage=0@1s-2s").value());
  f.pfs.set_fault_injector(&f.injector);
  f.run([&] {
    pfs::OpenOptions opts;
    opts.create = true;
    const auto handle = f.pfs.open("/pfs/out", 0, opts).value();
    const DataView data = DataView::synthetic(1, 0, 64 * KiB);
    EXPECT_TRUE(f.pfs.write(handle, 0, data).is_ok());

    f.engine.delay(milliseconds(1500) - f.engine.now());
    const Status down = f.pfs.write(handle, 64 * KiB, data);
    ASSERT_FALSE(down.is_ok());
    EXPECT_EQ(down.code(), Errc::unavailable);

    f.engine.delay(seconds(3) - f.engine.now());
    EXPECT_TRUE(f.pfs.write(handle, 64 * KiB, data).is_ok());
    EXPECT_TRUE(f.pfs.close(handle).is_ok());
  });
  EXPECT_GE(f.injector.stats().outage_rejections, 1);
}

TEST(FaultIntegration, DegradeWindowSlowsTheDataServerDevice) {
  const auto timed_write = [](bool degrade) {
    Fixture f;
    if (degrade) {
      f.injector.arm(FaultPlan::parse("degrade=0@0s-100sx4.0").value());
      f.pfs.set_fault_injector(&f.injector);
    }
    Time duration = 0;
    f.run([&] {
      pfs::OpenOptions opts;
      opts.create = true;
      const auto handle = f.pfs.open("/pfs/slow", 0, opts).value();
      const Time start = f.engine.now();
      // Durable: the ack waits for the media, so the degraded media time is
      // visible to the client (a plain write hides behind server write-back).
      EXPECT_TRUE(
          f.pfs.write_durable(handle, 0, DataView::synthetic(1, 0, 4 * MiB))
              .is_ok());
      duration = f.engine.now() - start;
      EXPECT_TRUE(f.pfs.close(handle).is_ok());
    });
    return duration;
  };
  const Time clean = timed_write(false);
  const Time degraded = timed_write(true);
  // Media time is multiplied by 4; fabric and syscall overheads are not,
  // so the total sits somewhere between 1x and 4x.
  EXPECT_GT(degraded, clean + clean / 2);
}

}  // namespace
}  // namespace e10::fault
