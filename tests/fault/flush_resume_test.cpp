// Regression: a sync request requeued after a mid-extent PFS timeout must
// never re-send its already-durable bytes — including when the flush
// scheduler later coalesces it with other queued requests.
#include <gtest/gtest.h>

#include <functional>

#include "cache/cache_file.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace e10::cache {
namespace {

using namespace e10::units;

// One compute node (0), one data server (1), one metadata server (2).
struct Fixture {
  Fixture()
      : fabric(3, net::FabricParams{}),
        pfs(engine, fabric, {1}, 2, quiet_pfs(), 11),
        local_fs(engine, 0, quiet_lfs(), 12),
        locks(engine),
        injector(engine) {}

  static pfs::PfsParams quiet_pfs() {
    pfs::PfsParams p;
    p.data_servers = 1;
    p.target.jitter_sigma = 0.0;
    return p;
  }
  static lfs::LfsParams quiet_lfs() {
    lfs::LfsParams p;
    p.device.jitter_sigma = 0.0;
    p.capacity = 64 * MiB;
    return p;
  }

  Time run(std::function<void()> body) {
    engine.spawn("app", std::move(body));
    engine.run();
    return engine.now();
  }

  sim::Engine engine;
  net::Fabric fabric;
  pfs::Pfs pfs;
  lfs::LocalFs local_fs;
  LockTable locks;
  fault::FaultInjector injector;
};

DataView pattern(Offset size) { return DataView::synthetic(77, 0, size); }

TEST(FlushResume, RequeuedRequestCoalescedLaterNeverResendsDurableBytes) {
  Fixture f;
  f.pfs.set_fault_injector(&f.injector);
  // A 2 MiB extent drains as four 512 KiB dispatches. The first two reach
  // the media; the third times out persistently enough (2 failures against
  // a 1-attempt budget) to push the request back onto the queue with
  // synced = 1 MiB.
  f.injector.force_failures(fault::FaultOp::pfs_write, 2, Errc::timed_out,
                            /*after=*/2);
  f.run([&] {
    pfs::OpenOptions opts;
    opts.create = true;
    const auto handle = f.pfs.open("/pfs/global", 0, opts).value();
    CacheFileParams p;
    p.global_path = "/pfs/global";
    p.cache_path = "/scratch/global.cache.0";
    // Defer dispatch to flush so the 2 MiB extent and its adjacent
    // neighbour are queued together: the requeued remainder must coalesce
    // with the neighbour on the second pass.
    p.flush = FlushPolicy::onclose;
    p.staging_bytes = 512 * KiB;
    p.alloc_chunk = 4 * MiB;
    p.retry.max_attempts = 1;
    p.retry.max_requeues = 4;
    p.retry.backoff_base = milliseconds(1);
    p.retry.backoff_cap = milliseconds(2);
    p.retry.jitter = 0.0;
    auto cache =
        CacheFile::open(f.engine, f.local_fs, f.pfs, handle, p, &f.locks);
    ASSERT_TRUE(cache.is_ok());
    ASSERT_TRUE(cache.value()->write({0, 2 * MiB}, pattern(2 * MiB)));
    ASSERT_TRUE(
        cache.value()->write({2 * MiB, 512 * KiB}, pattern(512 * KiB)));

    ASSERT_TRUE(cache.value()->flush());
    const SyncStats& stats = cache.value()->sync_stats();
    EXPECT_GE(stats.requeues, 1u);
    EXPECT_EQ(stats.abandoned, 0u);
    // Resume accounting: the two batches issued 1 MiB + 1.5 MiB — every
    // byte exactly once, nothing re-sent after the requeue.
    EXPECT_EQ(stats.bytes_synced, 2 * MiB + 512 * KiB);
    ASSERT_TRUE(cache.value()->close());
  });
  // Failed writes apply no content and charge no bytes, so the PFS-side
  // write counter equals the file size iff no durable byte went twice.
  EXPECT_EQ(f.pfs.stats().bytes_written, 2 * MiB + 512 * KiB);
  const ByteStore* global = f.pfs.peek("/pfs/global");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->extent_end(), 2 * MiB + 512 * KiB);
}

}  // namespace
}  // namespace e10::cache
