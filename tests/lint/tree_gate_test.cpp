// The zero-findings tree gate: the same check CI runs, as a ctest. The
// whole src/ tree must lint clean under every rule — a new finding means
// either a real invariant violation (fix it) or a reviewed exception
// (add a reasoned e10-lint-allow). Runs through both drivers so the
// compile_commands.json path CI uses is itself covered.
#include <string>

#include <gtest/gtest.h>

#include "lint.h"

namespace e10::lint {
namespace {

TEST(TreeGate, SrcTreeLintsCleanViaTreeWalk) {
  DriverOptions options;
  options.tree = std::string(E10_REPO_ROOT) + "/src";
  LintResult result = run_lint(options);
  EXPECT_TRUE(result.errors.empty()) << result.errors.front();
  // The tree has >100 sources; a collapsed count means the walker broke,
  // not that the code got cleaner.
  EXPECT_GE(result.files_linted.size(), 100u);
  for (const Finding& f : result.findings) {
    ADD_FAILURE() << format_finding(f);
  }
}

TEST(TreeGate, SrcTreeLintsCleanViaCompileCommands) {
  DriverOptions options;
  options.compdb = std::string(E10_COMPDB_DIR) + "/compile_commands.json";
  LintResult result = run_lint(options);
  EXPECT_TRUE(result.errors.empty()) << result.errors.front();
  EXPECT_GE(result.files_linted.size(), 50u);
  for (const Finding& f : result.findings) {
    ADD_FAILURE() << format_finding(f);
  }
}

}  // namespace
}  // namespace e10::lint
