// Golden fixture for the wall-clock rule: nondeterminism sources (wall
// clocks, libc time/rand in call position) are banned outright; member
// calls that merely share a libc name are not, and a reasoned
// e10-lint-allow silences a site. Parsed by e10_lint, never compiled.
namespace fixture {

long stamp() {
  auto t = std::chrono::steady_clock::now();  // FINDING: steady_clock
  return t.time_since_epoch().count();
}

int roll() {
  return rand() % 6;  // FINDING: rand() in call position
}

struct Sensor {
  int time(int axis) const;
  int rand = 0;  // plain field named like libc: not a call, no finding
};

int sample(const Sensor& s) {
  return s.time(0) + s.rand;  // member call / field access: no finding
}

int seeded() {
  return rand();  // e10-lint-allow(wall-clock): fixture suppression
}

}  // namespace fixture
