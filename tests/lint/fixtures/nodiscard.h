// Golden fixture for the nodiscard rule: a function returning a tracked
// type (Status, Result, ...) must carry [[nodiscard]] on some declaration
// unless the type itself is class-level [[nodiscard]]. Parsed by
// e10_lint, never compiled.
#pragma once

namespace fixture {

struct Status {};

struct [[nodiscard]] Result {};

Status open_file(int fd);                 // FINDING: droppable Status
[[nodiscard]] Status close_file(int fd);  // attributed: no finding
Result parse(int token);                  // class-level nodiscard: no finding
void log_line(int level);                 // untracked type: no finding

// e10-lint-allow(nodiscard): fixture suppression
Status fire_and_forget(int fd);  // suppressed

}  // namespace fixture
