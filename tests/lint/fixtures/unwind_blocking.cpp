// Golden fixture for the unwind-blocking rule: destructors and noexcept
// functions reaching a blocking simulator primitive — directly,
// transitively through project functions, and through a blocking RAII
// type — must be flagged; a reviewed e10-lint-allow silences one site.
// This file is parsed by e10_lint, never compiled.
namespace fixture {

struct SimEvent {
  void wait();
};

struct SimMutex {};

class Channel {
 public:
  void drain() { done_.wait(); }      // blocks: SimEvent::wait
  void close() noexcept { drain(); }  // FINDING: noexcept, transitive block

 private:
  SimEvent done_;
};

class Owner {
 public:
  ~Owner() { chan_.drain(); }  // FINDING: dtor, transitive block

 private:
  Channel chan_;
};

class Locker {
 public:
  ~Locker() { SimLock guard(mu_); }  // FINDING: SimLock ctor blocks

 private:
  SimMutex mu_;
};

class Gated {
 public:
  // e10-lint-allow(unwind-blocking): drain is gated on uncaught_exceptions
  ~Gated() { chan_.drain(); }  // suppressed

 private:
  Channel chan_;
};

// Non-noexcept, non-destructor: blocking is fine here.
inline void pump(Channel& chan) { chan.drain(); }

}  // namespace fixture
