// Golden fixture for the mutex-guard rule: a class owning a mutex must
// declare at least one E10_GUARDED_BY member, annotation arguments must
// name real members, and borrowed (reference) mutexes are the owner's
// problem. Parsed by e10_lint, never compiled.
#pragma once

namespace fixture {

struct SimMutex {};

class Unguarded {
 private:
  SimMutex mu_;  // FINDING: nothing declared guarded by it
  int count_ = 0;
};

class Disciplined {
 private:
  SimMutex mu_;
  int count_ E10_GUARDED_BY(mu_) = 0;  // no finding
};

class Borrowing {
 private:
  SimMutex& mu_;  // borrowed reference: no finding
  int count_ = 0;
};

class BadTarget {
 private:
  SimMutex mu_;
  int count_ E10_GUARDED_BY(lock_) = 0;  // FINDING: names no member
};

class Waived {
 private:
  // e10-lint-allow(mutex-guard): fixture suppression
  SimMutex mu_;  // suppressed
  int count_ = 0;
};

}  // namespace fixture
