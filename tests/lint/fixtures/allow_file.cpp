// Golden fixture for file-wide suppression: e10-lint-allow-file waives a
// rule for the whole translation unit. Parsed by e10_lint, never
// compiled.
// e10-lint-allow-file(wall-clock): fixture — harness code may read clocks
namespace fixture {

long wall_start() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

int jitter() { return rand() % 100; }

}  // namespace fixture
