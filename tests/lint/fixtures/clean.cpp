// Golden fixture for the all-rules-quiet case: disciplined code touching
// every rule's territory — capability classes, guarded state, declared
// lock order, [[nodiscard]] returns, ordered iteration, a noexcept
// function with no blocking reach. Parsed by e10_lint, never compiled.
namespace fixture {

struct Status {};

class E10_CAPABILITY("mutex") FancyMutex {
 public:
  void lock();
  void unlock();

 private:
  int depth_ = 0;  // a capability's own state needs no guard annotation
};

class Counters {
 public:
  [[nodiscard]] Status flush();
  [[nodiscard]] int snapshot() const noexcept { return value_; }
  void dump(std::vector<int>* out) const {
    for (const auto& [k, v] : by_key_) out->push_back(v);  // ordered map
  }

 private:
  FancyMutex mu_ E10_ACQUIRED_BEFORE(log_mu_);
  FancyMutex log_mu_ E10_ACQUIRED_AFTER(mu_);
  int value_ E10_GUARDED_BY(mu_) = 0;
  int lines_ E10_GUARDED_BY(log_mu_) = 0;
  std::map<int, int> by_key_;
};

inline int add(int a, int b) noexcept { return a + b; }

}  // namespace fixture
