// Golden fixture for the unordered-iteration rule: range-for over an
// unordered member (declared in the class) or an unordered local leaks
// unspecified order into output; ordered containers and allow-listed
// order-independent loops do not. Parsed by e10_lint, never compiled.
namespace fixture {

class Registry {
 public:
  void dump(std::vector<std::string>* out) const;
  void tally(std::vector<int>* out) const;

 private:
  std::unordered_map<std::string, int> counters_;
  std::map<std::string, int> ordered_;
};

void Registry::dump(std::vector<std::string>* out) const {
  for (const auto& [name, value] : counters_) {  // FINDING: unordered member
    out->push_back(name);
  }
  for (const auto& [name, value] : ordered_) {  // ordered map: no finding
    out->push_back(name);
  }
}

void Registry::tally(std::vector<int>* out) const {
  std::unordered_map<int, int> local;
  for (const auto& [k, v] : local) {  // FINDING: unordered local
    out->push_back(v);
  }
  int sum = 0;
  // e10-lint-allow(unordered-iteration): commutative sum, order-free
  for (const auto& [k, v] : local) {  // suppressed
    sum += k + v;
  }
  out->push_back(sum);
}

}  // namespace fixture
