// Golden fixture for the lock-order rule: the acquisition order declared
// with E10_ACQUIRED_BEFORE / E10_ACQUIRED_AFTER must be acyclic. Parsed
// by e10_lint, never compiled.
#pragma once

namespace fixture {

struct SimMutex {};

class Deadlocky {
 private:
  SimMutex a_ E10_ACQUIRED_BEFORE(b_);
  SimMutex b_ E10_ACQUIRED_BEFORE(a_);  // FINDING: a_ < b_ < a_
  int x_ E10_GUARDED_BY(a_) = 0;
  int y_ E10_GUARDED_BY(b_) = 0;
};

class Ordered {
 private:
  SimMutex outer_ E10_ACQUIRED_BEFORE(inner_);
  SimMutex inner_ E10_ACQUIRED_AFTER(outer_);  // consistent: no finding
  int x_ E10_GUARDED_BY(outer_) = 0;
  int y_ E10_GUARDED_BY(inner_) = 0;
};

}  // namespace fixture
