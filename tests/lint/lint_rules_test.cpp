// Golden-fixture suite for e10_lint: every rule must fire on its known-bad
// snippet (tests/lint/fixtures/), stay quiet on the disciplined snippet,
// and honor e10-lint-allow / e10-lint-allow-file suppressions. The
// fixtures double as the contract for the linter's parsed C++ subset — if
// a parser change stops a rule from seeing its bad pattern, the fixture
// catches it before the tree gate silently goes blind.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace e10::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(E10_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::set<std::string>& rules) {
  DriverOptions options;
  options.files = {fixture_path(name)};
  options.rules = rules;
  LintResult result = run_lint(options);
  EXPECT_TRUE(result.errors.empty())
      << "fixture " << name << ": " << result.errors.front();
  EXPECT_EQ(result.files_linted.size(), 1u);
  return result.findings;
}

std::string joined(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += format_finding(f) + "\n";
  return out;
}

bool any_mentions(const std::vector<Finding>& findings,
                  const std::string& needle) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.message.find(needle) != std::string::npos;
  });
}

TEST(UnwindBlockingFixture, FlagsDtorNoexceptAndRaiiButNotSuppressed) {
  const std::vector<Finding> findings =
      lint_fixture("unwind_blocking.cpp", {"unwind-blocking"});
  ASSERT_EQ(findings.size(), 3u) << joined(findings);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "unwind-blocking");
  // The noexcept function, both offending destructors — and the witness
  // path names the primitive actually reached.
  EXPECT_TRUE(any_mentions(findings, "close")) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "~Owner")) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "~Locker")) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "wait")) << joined(findings);
  // The gated destructor carries a reasoned allow; the plain blocking
  // helper is neither noexcept nor a destructor.
  EXPECT_FALSE(any_mentions(findings, "~Gated")) << joined(findings);
  EXPECT_FALSE(any_mentions(findings, "pump")) << joined(findings);
}

TEST(WallClockFixture, FlagsClockAndRandButNotMembersOrSuppressed) {
  const std::vector<Finding> findings =
      lint_fixture("wall_clock.cpp", {"wall-clock"});
  ASSERT_EQ(findings.size(), 2u) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "steady_clock")) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "rand")) << joined(findings);
}

TEST(UnorderedIterationFixture, FlagsMemberAndLocalButNotOrderedOrAllowed) {
  const std::vector<Finding> findings =
      lint_fixture("unordered_iteration.cpp", {"unordered-iteration"});
  ASSERT_EQ(findings.size(), 2u) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "counters_")) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "local")) << joined(findings);
  EXPECT_FALSE(any_mentions(findings, "ordered_")) << joined(findings);
}

TEST(NodiscardFixture, FlagsDroppableStatusOnly) {
  const std::vector<Finding> findings =
      lint_fixture("nodiscard.h", {"nodiscard"});
  ASSERT_EQ(findings.size(), 1u) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "open_file")) << joined(findings);
}

TEST(MutexGuardFixture, FlagsUnguardedMutexAndBadAnnotationTarget) {
  const std::vector<Finding> findings =
      lint_fixture("mutex_guard.h", {"mutex-guard"});
  ASSERT_EQ(findings.size(), 2u) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "Unguarded")) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "lock_")) << joined(findings);
  EXPECT_FALSE(any_mentions(findings, "Borrowing")) << joined(findings);
  EXPECT_FALSE(any_mentions(findings, "Waived")) << joined(findings);
}

TEST(LockOrderFixture, FlagsDeclaredCycle) {
  const std::vector<Finding> findings =
      lint_fixture("lock_order.h", {"lock-order"});
  ASSERT_EQ(findings.size(), 1u) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "cyclic")) << joined(findings);
  EXPECT_TRUE(any_mentions(findings, "a_")) << joined(findings);
}

TEST(CleanFixture, EveryRuleStaysQuiet) {
  const std::vector<Finding> findings = lint_fixture("clean.cpp", {});
  EXPECT_TRUE(findings.empty()) << joined(findings);
}

TEST(AllowFileFixture, FileWideSuppressionCoversWholeUnit) {
  const std::vector<Finding> findings = lint_fixture("allow_file.cpp", {});
  EXPECT_TRUE(findings.empty()) << joined(findings);
}

TEST(Findings, FormatIsPathLineRuleMessage) {
  Finding f;
  f.rule = "wall-clock";
  f.path = "src/x.cpp";
  f.line = 7;
  f.message = "msg";
  EXPECT_EQ(format_finding(f), "src/x.cpp:7: [wall-clock] msg");
}

TEST(Findings, SortIsDeterministic) {
  Finding a{"b-rule", "a.cpp", 3, "m"};
  Finding b{"a-rule", "a.cpp", 3, "m"};
  Finding c{"a-rule", "a.cpp", 1, "m"};
  std::vector<Finding> v = {a, b, c};
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v[0].line, 1);
  EXPECT_EQ(v[1].rule, "a-rule");
  EXPECT_EQ(v[2].rule, "b-rule");
}

}  // namespace
}  // namespace e10::lint
