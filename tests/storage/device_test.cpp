#include "storage/device.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::storage {
namespace {

using namespace e10::units;

DeviceParams no_jitter(DeviceParams p) {
  p.jitter_sigma = 0.0;
  return p;
}

TEST(Device, ServiceTimeScalesWithSize) {
  Device dev("d", no_jitter(local_ssd_params()), 1);
  const Time t1 = dev.expected_service(IoKind::write, 1 * MiB, true);
  const Time t16 = dev.expected_service(IoKind::write, 16 * MiB, true);
  EXPECT_GT(t16, 10 * t1);
}

TEST(Device, SeekPenaltyOnlyForNonSequential) {
  DeviceParams p = no_jitter(pfs_target_params());
  Device dev("d", p, 1);
  const Time seq = dev.expected_service(IoKind::write, 4 * KiB, true);
  const Time rnd = dev.expected_service(IoKind::write, 4 * KiB, false);
  EXPECT_EQ(rnd - seq, p.seek_penalty);
}

TEST(Device, SsdHasNoSeekPenalty) {
  Device dev("ssd", no_jitter(local_ssd_params()), 1);
  EXPECT_EQ(dev.expected_service(IoKind::write, 4 * KiB, true),
            dev.expected_service(IoKind::write, 4 * KiB, false));
}

TEST(Device, SubmitDetectsSequentialPattern) {
  DeviceParams p = no_jitter(pfs_target_params());
  Device dev("d", p, 1);
  const Time first = dev.submit(0, IoKind::write, 0, 1 * MiB);  // seek (cold)
  const Time second = dev.submit(first, IoKind::write, 1 * MiB, 1 * MiB);
  const Time third = dev.submit(second, IoKind::write, 64 * MiB, 1 * MiB);
  // second is sequential (no seek); third jumps (seek).
  const Time d2 = second - first;
  const Time d3 = third - second;
  EXPECT_EQ(d3 - d2, p.seek_penalty);
}

TEST(Device, QueueingDelaysBackToBackRequests) {
  Device dev("d", no_jitter(local_ssd_params()), 1);
  const Time one = dev.submit(0, IoKind::write, 0, 4 * MiB);
  const Time two = dev.submit(0, IoKind::write, 4 * MiB, 4 * MiB);
  EXPECT_NEAR(static_cast<double>(two), 2.0 * static_cast<double>(one),
              static_cast<double>(one) * 0.05);
}

TEST(Device, ReadsFasterThanWritesOnSsd) {
  Device dev("ssd", no_jitter(local_ssd_params()), 1);
  EXPECT_LT(dev.expected_service(IoKind::read, 16 * MiB, true),
            dev.expected_service(IoKind::write, 16 * MiB, true));
}

TEST(Device, SpeedFactorSlowsEverything) {
  DeviceParams p = no_jitter(pfs_target_params());
  p.speed_factor = 0.5;
  Device slow("slow", p, 1);
  Device fast("fast", no_jitter(pfs_target_params()), 1);
  EXPECT_NEAR(
      static_cast<double>(slow.expected_service(IoKind::write, 8 * MiB, true)),
      2.0 * static_cast<double>(
                fast.expected_service(IoKind::write, 8 * MiB, true)),
      1e6);
}

TEST(Device, JitterIsSeededAndReproducible) {
  DeviceParams p = pfs_target_params();  // jitter on
  Device a("a", p, 42);
  Device b("b", p, 42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.submit(0, IoKind::write, i * MiB, MiB),
              b.submit(0, IoKind::write, i * MiB, MiB));
  }
  Device c("c", p, 43);  // different seed diverges
  bool diverged = false;
  Device a2("a2", p, 42);
  for (int i = 0; i < 10; ++i) {
    if (a2.submit(0, IoKind::write, i * MiB, MiB) !=
        c.submit(0, IoKind::write, i * MiB, MiB)) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(Device, AccountingTracksBytes) {
  Device dev("d", no_jitter(local_ssd_params()), 1);
  (void)dev.submit(0, IoKind::write, 0, 100);
  (void)dev.submit(0, IoKind::read, 0, 40);
  EXPECT_EQ(dev.bytes_written(), 100);
  EXPECT_EQ(dev.bytes_read(), 40);
  EXPECT_EQ(dev.requests(), 2u);
}

TEST(Device, InvalidParamsThrow) {
  DeviceParams p;
  p.write_bytes_per_second = 0;
  EXPECT_THROW(Device("bad", p, 1), std::logic_error);
  DeviceParams q;
  q.speed_factor = 0.0;
  EXPECT_THROW(Device("bad", q, 1), std::logic_error);
  Device ok("ok", DeviceParams{}, 1);
  EXPECT_THROW(ok.submit(0, IoKind::write, 0, -5), std::logic_error);
}

}  // namespace
}  // namespace e10::storage
