#include "common/extent.h"

#include <gtest/gtest.h>

namespace e10 {
namespace {

TEST(Extent, Basics) {
  const Extent e{100, 50};
  EXPECT_EQ(e.end(), 150);
  EXPECT_FALSE(e.empty());
  EXPECT_TRUE(e.contains(100));
  EXPECT_TRUE(e.contains(149));
  EXPECT_FALSE(e.contains(150));
  EXPECT_TRUE((Extent{0, 0}).empty());
}

TEST(Extent, Overlaps) {
  EXPECT_TRUE((Extent{0, 10}).overlaps(Extent{5, 10}));
  EXPECT_FALSE((Extent{0, 10}).overlaps(Extent{10, 10}));  // adjacent
  EXPECT_TRUE((Extent{5, 1}).overlaps(Extent{0, 10}));     // contained
  EXPECT_FALSE((Extent{0, 5}).overlaps(Extent{100, 5}));
}

TEST(Extent, Intersect) {
  EXPECT_EQ(intersect(Extent{0, 10}, Extent{5, 10}), (Extent{5, 5}));
  EXPECT_TRUE(intersect(Extent{0, 5}, Extent{5, 5}).empty());
  EXPECT_EQ(intersect(Extent{0, 100}, Extent{20, 30}), (Extent{20, 30}));
}

TEST(ExtentList, NormalizeMergesOverlapsAndAdjacency) {
  ExtentList list;
  list.add({10, 10});
  list.add({0, 10});   // adjacent to the first
  list.add({15, 10});  // overlapping
  list.add({100, 5});
  list.add({40, 0});   // empty: dropped
  list.normalize();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], (Extent{0, 25}));
  EXPECT_EQ(list[1], (Extent{100, 5}));
  EXPECT_EQ(list.total_bytes(), 30);
}

TEST(ExtentList, CoalesceDropsZeroLengthExtentsBetweenAdjacentOnes) {
  // A zero-length extent sitting exactly on the seam of two adjacent
  // extents must neither survive nor block the merge.
  ExtentList list;
  list.add({0, 10});
  list.add({10, 0});  // empty, at the seam
  list.add({10, 10});
  list.add({30, 0});  // empty, isolated
  list.coalesce();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], (Extent{0, 20}));
}

TEST(ExtentList, CoalesceMergesAcrossAStripeBoundary) {
  // Extents meeting exactly at a 4 MiB stripe boundary are adjacent and
  // coalesce into one run — alignment splitting is the flush planner's
  // job (plan_dispatches), not the extent list's.
  constexpr Offset kStripe = 4 * 1024 * 1024;
  ExtentList list;
  list.add({kStripe - 512, 512});
  list.add({kStripe, 512});
  list.coalesce();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], (Extent{kStripe - 512, 1024}));
  EXPECT_EQ(list.total_bytes(), 1024);
}

TEST(ExtentList, CoalesceOfOnlyEmptyExtentsIsEmpty) {
  ExtentList list;
  list.add({5, 0});
  list.add({5, 0});
  list.coalesce();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.bounding().empty());
}

TEST(ExtentList, Bounding) {
  ExtentList list;
  EXPECT_TRUE(list.bounding().empty());
  list.add({50, 10});
  list.add({10, 5});
  EXPECT_EQ(list.bounding(), (Extent{10, 50}));
}

TEST(ExtentList, ClippedTo) {
  ExtentList list({{0, 10}, {20, 10}, {40, 10}});
  // Window [5, 35): first extent clipped, second kept, third dropped.
  const ExtentList clipped = list.clipped_to(Extent{5, 30});
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped[0], (Extent{5, 5}));
  EXPECT_EQ(clipped[1], (Extent{20, 10}));
}

TEST(ExtentList, ClippedToDropsDisjoint) {
  ExtentList list({{0, 10}, {100, 10}});
  const ExtentList clipped = list.clipped_to(Extent{20, 30});
  EXPECT_TRUE(clipped.empty());
}

TEST(ExtentList, Subtract) {
  ExtentList base({{0, 100}});
  base.normalize();
  ExtentList holes({{10, 10}, {50, 20}});
  holes.normalize();
  const ExtentList rest = base.subtract(holes);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], (Extent{0, 10}));
  EXPECT_EQ(rest[1], (Extent{20, 30}));
  EXPECT_EQ(rest[2], (Extent{70, 30}));
}

TEST(ExtentList, SubtractEverything) {
  ExtentList base({{10, 20}});
  base.normalize();
  ExtentList cover({{0, 100}});
  cover.normalize();
  EXPECT_TRUE(base.subtract(cover).empty());
}

TEST(ExtentList, Covers) {
  ExtentList big({{0, 100}, {200, 100}});
  big.normalize();
  ExtentList small({{10, 20}, {250, 10}});
  small.normalize();
  EXPECT_TRUE(big.covers(small));
  ExtentList crossing({{90, 20}});
  crossing.normalize();
  EXPECT_FALSE(big.covers(crossing));
  EXPECT_TRUE(big.covers(ExtentList{}));
}

}  // namespace
}  // namespace e10
