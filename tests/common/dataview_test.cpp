#include "common/dataview.h"

#include <gtest/gtest.h>

namespace e10 {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(DataView, RealBasics) {
  const DataView v = DataView::real(bytes_of({1, 2, 3, 4}));
  EXPECT_TRUE(v.is_real());
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v.byte_at(0), std::byte{1});
  EXPECT_EQ(v.byte_at(3), std::byte{4});
  EXPECT_THROW(v.byte_at(4), std::out_of_range);
}

TEST(DataView, RealSliceSharesBuffer) {
  const DataView v = DataView::real(bytes_of({10, 11, 12, 13, 14}));
  const DataView s = v.slice(1, 3);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.byte_at(0), std::byte{11});
  EXPECT_EQ(s.byte_at(2), std::byte{13});
  EXPECT_EQ(s.data(), v.data() + 1);
  EXPECT_THROW(v.slice(3, 3), std::out_of_range);
}

TEST(DataView, SyntheticDeterministicPattern) {
  const DataView v = DataView::synthetic(42, 1000, 16);
  EXPECT_FALSE(v.is_real());
  EXPECT_EQ(v.data(), nullptr);
  // Pattern depends only on (seed, absolute position).
  EXPECT_EQ(v.byte_at(3), DataView::pattern_byte(42, 1003));
  const DataView again = DataView::synthetic(42, 1000, 16);
  for (Offset i = 0; i < 16; ++i) EXPECT_EQ(v.byte_at(i), again.byte_at(i));
}

TEST(DataView, SyntheticSlicePreservesOrigin) {
  const DataView v = DataView::synthetic(7, 500, 100);
  const DataView s = v.slice(10, 20);
  EXPECT_EQ(s.origin(), 510);
  for (Offset i = 0; i < 20; ++i) {
    EXPECT_EQ(s.byte_at(i), v.byte_at(10 + i));
  }
}

TEST(DataView, MaterializeMatchesByteAt) {
  const DataView v = DataView::synthetic(9, 0, 64);
  const std::vector<std::byte> m = v.materialize();
  ASSERT_EQ(m.size(), 64u);
  for (Offset i = 0; i < 64; ++i) {
    EXPECT_EQ(m[static_cast<std::size_t>(i)], v.byte_at(i));
  }
}

TEST(DataView, PatternDiffersBySeed) {
  int diff = 0;
  for (Offset i = 0; i < 256; ++i) {
    if (DataView::pattern_byte(1, i) != DataView::pattern_byte(2, i)) ++diff;
  }
  EXPECT_GT(diff, 200);  // seeds decorrelate almost every byte
}

TEST(ByteStore, WriteAndReadBack) {
  ByteStore store;
  store.write(100, DataView::real(bytes_of({1, 2, 3})));
  EXPECT_EQ(store.byte_at(100), std::byte{1});
  EXPECT_EQ(store.byte_at(102), std::byte{3});
  EXPECT_EQ(store.byte_at(103), std::byte{0});  // unwritten
  EXPECT_EQ(store.extent_end(), 103);
}

TEST(ByteStore, OverwriteSplitsSegments) {
  ByteStore store;
  store.write(0, DataView::real(bytes_of({1, 1, 1, 1, 1, 1, 1, 1})));
  store.write(2, DataView::real(bytes_of({9, 9, 9})));
  EXPECT_EQ(store.byte_at(1), std::byte{1});
  EXPECT_EQ(store.byte_at(2), std::byte{9});
  EXPECT_EQ(store.byte_at(4), std::byte{9});
  EXPECT_EQ(store.byte_at(5), std::byte{1});
  EXPECT_EQ(store.segment_count(), 3u);
}

TEST(ByteStore, ReadAcrossGapZeroFills) {
  ByteStore store;
  store.write(0, DataView::real(bytes_of({5, 5})));
  store.write(4, DataView::real(bytes_of({7, 7})));
  const DataView r = store.read(0, 6);
  EXPECT_EQ(r.size(), 6);
  EXPECT_EQ(r.byte_at(0), std::byte{5});
  EXPECT_EQ(r.byte_at(2), std::byte{0});
  EXPECT_EQ(r.byte_at(3), std::byte{0});
  EXPECT_EQ(r.byte_at(4), std::byte{7});
}

TEST(ByteStore, SyntheticFastPathPreservesRepresentation) {
  ByteStore store;
  store.write(1000, DataView::synthetic(3, 0, 4096));
  const DataView r = store.read(1100, 100);
  EXPECT_FALSE(r.is_real());  // stays synthetic: no materialization
  EXPECT_EQ(r.byte_at(0), DataView::pattern_byte(3, 100));
}

TEST(ByteStore, MixedRealSyntheticRead) {
  ByteStore store;
  store.write(0, DataView::synthetic(3, 0, 100));
  store.write(50, DataView::real(bytes_of({42})));
  const DataView r = store.read(49, 3);
  EXPECT_EQ(r.byte_at(0), DataView::pattern_byte(3, 49));
  EXPECT_EQ(r.byte_at(1), std::byte{42});
  EXPECT_EQ(r.byte_at(2), DataView::pattern_byte(3, 51));
}

TEST(ByteStore, OverwriteIdenticalRange) {
  ByteStore store;
  store.write(10, DataView::real(bytes_of({1, 2})));
  store.write(10, DataView::real(bytes_of({3, 4})));
  EXPECT_EQ(store.byte_at(10), std::byte{3});
  EXPECT_EQ(store.byte_at(11), std::byte{4});
  EXPECT_EQ(store.segment_count(), 1u);
}

}  // namespace
}  // namespace e10
