#include "common/units.h"

#include <gtest/gtest.h>

namespace e10 {
namespace {

using namespace e10::units;

TEST(Units, TimeConversions) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(seconds_f(0.5), 500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
}

TEST(Units, ByteConversions) {
  EXPECT_EQ(kibibytes(1), 1024);
  EXPECT_EQ(mebibytes(1), 1024 * 1024);
  EXPECT_EQ(gibibytes(2), 2LL * 1024 * 1024 * 1024);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(4 * KiB), "4.00 KiB");
  EXPECT_EQ(format_bytes(3 * MiB / 2), "1.50 MiB");
  EXPECT_EQ(format_bytes(32 * GiB), "32.00 GiB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(nanoseconds(12)), "12.00 ns");
  EXPECT_EQ(format_time(microseconds(3)), "3.00 us");
  EXPECT_EQ(format_time(milliseconds(250)), "250.00 ms");
  EXPECT_EQ(format_time(seconds(30)), "30.00 s");
}

TEST(Units, Bandwidth) {
  // 2 GiB written in 1 second -> 2 GiB/s.
  EXPECT_DOUBLE_EQ(bandwidth_gib(2 * GiB, seconds(1)), 2.0);
  EXPECT_DOUBLE_EQ(bandwidth_gib(GiB, seconds(2)), 0.5);
  EXPECT_DOUBLE_EQ(bandwidth_gib(GiB, 0), 0.0);
  EXPECT_EQ(format_bandwidth(2 * GiB, seconds(1)), "2.00 GiB/s");
}

}  // namespace
}  // namespace e10
