#include "common/config.h"

#include <gtest/gtest.h>

namespace e10 {
namespace {

TEST(Config, ParsesGlobalAndSections) {
  const auto result = Config::parse(R"(
# MPIWRAP configuration
log = info

[file:/pfs/ckpt*]
e10_cache = enable
cb_buffer_size = 16m

[file:/pfs/plot*]
e10_cache = disable
)");
  ASSERT_TRUE(result.is_ok());
  const Config& cfg = result.value();
  EXPECT_EQ(cfg.global().get_or("log", ""), "info");
  ASSERT_EQ(cfg.sections().size(), 2u);
  const ConfigSection* ckpt = cfg.find("file:/pfs/ckpt*");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_EQ(ckpt->get_or("e10_cache", ""), "enable");
}

TEST(Config, SyntaxErrors) {
  EXPECT_FALSE(Config::parse("[unterminated").is_ok());
  EXPECT_FALSE(Config::parse("novalue").is_ok());
  EXPECT_FALSE(Config::parse("= value").is_ok());
  EXPECT_TRUE(Config::parse("").is_ok());
  EXPECT_TRUE(Config::parse("# only a comment\n; and another").is_ok());
}

TEST(Config, GetBool) {
  const auto cfg = Config::parse("a = enable\nb = off\nc = maybe").value();
  EXPECT_TRUE(cfg.global().get_bool("a", false).value());
  EXPECT_FALSE(cfg.global().get_bool("b", true).value());
  EXPECT_FALSE(cfg.global().get_bool("c", true).is_ok());
  EXPECT_TRUE(cfg.global().get_bool("missing", true).value());
}

TEST(Config, ParseSize) {
  using namespace e10::units;
  EXPECT_EQ(Config::parse_size("512").value(), 512);
  EXPECT_EQ(Config::parse_size("4k").value(), 4 * KiB);
  EXPECT_EQ(Config::parse_size("16M").value(), 16 * MiB);
  EXPECT_EQ(Config::parse_size("2g").value(), 2 * GiB);
  EXPECT_EQ(Config::parse_size(" 8m ").value(), 8 * MiB);
  EXPECT_FALSE(Config::parse_size("").is_ok());
  EXPECT_FALSE(Config::parse_size("4q").is_ok());
  EXPECT_FALSE(Config::parse_size("m").is_ok());
  EXPECT_FALSE(Config::parse_size("4.5m").is_ok());
}

TEST(Config, GetSize) {
  using namespace e10::units;
  const auto cfg = Config::parse("cb_buffer_size = 16m").value();
  EXPECT_EQ(cfg.global().get_size("cb_buffer_size", 0).value(), 16 * MiB);
  EXPECT_EQ(cfg.global().get_size("missing", 4 * MiB).value(), 4 * MiB);
}

TEST(Config, GlobMatch) {
  EXPECT_TRUE(Config::glob_match("file:/pfs/ckpt*", "file:/pfs/ckpt_0001"));
  EXPECT_TRUE(Config::glob_match("*", "anything"));
  EXPECT_TRUE(Config::glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(Config::glob_match("a*b*c", "aXXbYY"));
  EXPECT_TRUE(Config::glob_match("exact", "exact"));
  EXPECT_FALSE(Config::glob_match("exact", "exact1"));
  EXPECT_TRUE(Config::glob_match("*.h5", "checkpoint_0042.h5"));
}

TEST(Config, MatchFindsFirstGlobSection) {
  const auto cfg = Config::parse(R"(
[file:/pfs/ckpt*]
x = 1
[file:*]
x = 2
)").value();
  const ConfigSection* s = cfg.match("file:/pfs/ckpt_7");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->get_or("x", ""), "1");
  const ConfigSection* other = cfg.match("file:/pfs/other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->get_or("x", ""), "2");
}

}  // namespace
}  // namespace e10
