// Tests for the post-paper extensions: cache reads (the paper's §VI future
// work) and the cb_config_list hint subset.
#include <gtest/gtest.h>

#include "common/units.h"
#include "mpiio/file.h"
#include "adio/aggregation.h"
#include "workloads/testbed.h"

namespace e10::adio {
namespace {

using namespace e10::units;
using mpiio::File;
using workloads::Platform;
using workloads::small_testbed;

mpi::Info read_cache_info() {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");
  info.set("e10_cache", "enable");
  info.set("e10_cache_path", "/scratch");
  info.set("e10_cache_flush_flag", "flush_onclose");  // keep data in cache
  info.set("e10_cache_read", "enable");
  return info;
}

TEST(CacheRead, HintParsesAndEchoes) {
  mpi::Info info;
  info.set("e10_cache_read", "enable");
  const Hints h = Hints::parse(info).value();
  EXPECT_TRUE(h.e10_cache_read);
  EXPECT_EQ(h.to_info().get_or("e10_cache_read", ""), "enable");
  info.set("e10_cache_read", "sometimes");
  EXPECT_FALSE(Hints::parse(info).is_ok());
  EXPECT_FALSE(Hints().e10_cache_read);  // off by default, as in the paper
}

TEST(CacheRead, ServesFullyCachedExtentWithoutPfs) {
  Platform p(small_testbed());
  std::uint64_t pfs_reads = 0;
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/cread",
                           amode::create | amode::rdwr, read_cache_info());
    ASSERT_TRUE(file.is_ok());
    // Aggregators cache their domain; with flush_onclose nothing reaches
    // the PFS yet, so reading own cached data MUST come from the cache.
    const Offset block = 64 * KiB;
    const Offset off = comm.rank() * block;
    ASSERT_TRUE(write_strided_coll(
        *file.value().raw(),
        {mpi::IoPiece{Extent{off, block}, DataView::synthetic(5, off, block)}}));
    comm.barrier();
    if (file.value().raw()->is_aggregator()) {
      // This aggregator's domain got cached on this rank; re-read part of it.
      const auto& cache = file.value().raw()->cache;
      ASSERT_NE(cache, nullptr);
      auto got = read_contig(*file.value().raw(), off, 1 * KiB);
      ASSERT_TRUE(got.is_ok());
      for (Offset i = 0; i < 1 * KiB; i += 97) {
        EXPECT_EQ(got.value().byte_at(i), DataView::pattern_byte(5, off + i));
      }
    }
    if (comm.rank() == 0) pfs_reads = p.pfs.stats().reads;
    comm.barrier();
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_EQ(pfs_reads, 0u);  // never touched the global file
}

TEST(CacheRead, PartiallyCachedExtentFallsBackToPfs) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = read_cache_info();
    info.set("e10_cache_flush_flag", "flush_immediate");
    auto file = File::open(p.ctx, comm, "/pfs/cfall",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    const Offset block = 64 * KiB;
    const Offset off = comm.rank() * block;
    ASSERT_TRUE(write_strided_coll(
        *file.value().raw(),
        {mpi::IoPiece{Extent{off, block}, DataView::synthetic(6, off, block)}}));
    ASSERT_TRUE(file.value().sync());
    // Read past the cached region: must fall back to the PFS and succeed.
    const auto got =
        file.value().read_at(0, static_cast<Offset>(comm.size()) * block);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value().size(), static_cast<Offset>(comm.size()) * block);
    EXPECT_EQ(got.value().byte_at(10), DataView::pattern_byte(6, 10));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_GT(p.pfs.stats().reads, 0u);
}

TEST(CacheRead, ShadowedWriteReturnsFreshData) {
  // Writing the same extent twice: the cache must serve the newer bytes.
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/cshadow",
                           amode::create | amode::rdwr, read_cache_info());
    ASSERT_TRUE(file.is_ok());
    const Offset block = 32 * KiB;
    const Offset off = comm.rank() * block;
    for (const std::uint64_t seed : {11ull, 22ull}) {
      ASSERT_TRUE(write_strided_coll(
          *file.value().raw(),
          {mpi::IoPiece{Extent{off, block},
                        DataView::synthetic(seed, off, block)}}));
    }
    if (file.value().raw()->is_aggregator()) {
      auto got = read_contig(*file.value().raw(), off, block);
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(got.value().byte_at(7), DataView::pattern_byte(22, off + 7));
    }
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(CacheRead, DisabledByDefaultGoesToPfs) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = read_cache_info();
    info.erase("e10_cache_read");
    info.set("e10_cache_flush_flag", "flush_immediate");
    auto file = File::open(p.ctx, comm, "/pfs/cdef",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(file.value().write_at_all(
        comm.rank() * 16 * KiB,
        DataView::synthetic(8, comm.rank() * 16 * KiB, 16 * KiB)));
    ASSERT_TRUE(file.value().sync());
    (void)file.value().read_at(comm.rank() * 16 * KiB, 16 * KiB);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_GT(p.pfs.stats().reads, 0u);  // reads hit the global file
}

TEST(CbConfigList, ParsesSubset) {
  mpi::Info info;
  info.set("cb_config_list", "*:2");
  EXPECT_EQ(Hints::parse(info).value().cb_config_per_node, 2);
  info.set("cb_config_list", "*:*");
  EXPECT_GT(Hints::parse(info).value().cb_config_per_node, 1 << 20);
  info.set("cb_config_list", "host1:2");
  EXPECT_FALSE(Hints::parse(info).is_ok());  // unsupported form
  info.set("cb_config_list", "*:0");
  EXPECT_FALSE(Hints::parse(info).is_ok());
  EXPECT_EQ(Hints().cb_config_per_node, 1);  // ROMIO default "*:1"
}

TEST(CbConfigList, CapsAggregatorsPerNode) {
  // small testbed: 4 nodes x 2 ranks. cb_nodes=8 with the default "*:1"
  // yields only 4 aggregators; "*:2" allows all 8.
  auto count_aggs = [](const char* config_list) {
    Platform p(small_testbed());
    std::size_t count = 0;
    p.launch([&](mpi::Comm comm) {
      mpi::Info info;
      info.set("cb_nodes", "8");
      if (config_list != nullptr) info.set("cb_config_list", config_list);
      auto file = File::open(p.ctx, comm, "/pfs/cbl",
                             amode::create | amode::rdwr, info);
      ASSERT_TRUE(file.is_ok());
      if (comm.rank() == 0) count = file.value().aggregators().size();
      ASSERT_TRUE(file.value().close());
    });
    p.run();
    return count;
  };
  EXPECT_EQ(count_aggs(nullptr), 4u);   // default *:1
  EXPECT_EQ(count_aggs("*:2"), 8u);
  EXPECT_EQ(count_aggs("*:*"), 8u);
}

TEST(CbConfigList, SelectAggregatorsHonorsCap) {
  sim::Engine engine;
  net::Fabric fabric(4, net::FabricParams{});
  mpi::World world(engine, fabric, mpi::Topology(4, 2));
  engine.spawn("probe", [&] {
    EXPECT_EQ(select_aggregators(world.comm(0), 8, 1).size(), 4u);
    EXPECT_EQ(select_aggregators(world.comm(0), 8, 2).size(), 8u);
    EXPECT_EQ(select_aggregators(world.comm(0), 3, 1),
              (std::vector<int>{0, 2, 4}));
    EXPECT_THROW((void)select_aggregators(world.comm(0), 4, 0),
                 std::logic_error);
  });
  engine.run();
}

TEST(Fallback, CacheOpenFailureRevertsToStandardOpen) {
  // Paper §III-A: "If for any reason the open of the cache file fails, the
  // implementation reverts to standard open." Inject failures on every
  // node's local FS and verify the write path still works, uncached.
  Platform p(small_testbed());
  for (std::size_t node = 0; node < p.params().compute_nodes; ++node) {
    p.lfs.at(node).inject_open_failures(100);
  }
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = read_cache_info();
    info.set("e10_cache_flush_flag", "flush_immediate");
    auto file = File::open(p.ctx, comm, "/pfs/nofallback",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());  // open succeeds despite the cache failing
    EXPECT_EQ(file.value().raw()->cache, nullptr);  // reverted
    const Offset block = 32 * KiB;
    const Offset off = comm.rank() * block;
    ASSERT_TRUE(file.value().write_at_all(
        off, DataView::synthetic(3, off, block)));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  const ByteStore* store = p.pfs.peek("/pfs/nofallback");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->byte_at(100), DataView::pattern_byte(3, 100));
  EXPECT_EQ(store->extent_end(), 8 * 32 * KiB);
}

TEST(Fallback, PartialCacheFailureStaysCorrect) {
  // Only some nodes lose their cache: mixed cached/uncached aggregators
  // must still produce a byte-exact file.
  Platform p(small_testbed());
  p.lfs.at(0).inject_open_failures(100);
  p.lfs.at(2).inject_open_failures(100);
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = read_cache_info();
    info.set("e10_cache_flush_flag", "flush_immediate");
    info.set("e10_cache_read", "disable");
    auto file = File::open(p.ctx, comm, "/pfs/mixed",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    const Offset block = 32 * KiB;
    const Offset off = comm.rank() * block;
    ASSERT_TRUE(file.value().write_at_all(
        off, DataView::synthetic(4, off, block)));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  const ByteStore* store = p.pfs.peek("/pfs/mixed");
  const Offset end = 8 * 32 * KiB;
  ASSERT_EQ(store->extent_end(), end);
  for (Offset pos = 0; pos < end; pos += 1021) {
    ASSERT_EQ(store->byte_at(pos), DataView::pattern_byte(4, pos)) << pos;
  }
}

}  // namespace
}  // namespace e10::adio
