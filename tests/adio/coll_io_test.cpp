// End-to-end tests of the collective I/O path on the small testbed:
// byte-exact file content, collective semantics, and hint behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "mpiio/file.h"
#include "workloads/testbed.h"

namespace e10::adio {
namespace {

using namespace e10::units;
using mpiio::File;
using workloads::Platform;
using workloads::small_testbed;

mpi::Info cache_disabled() {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");  // 256 KiB: forces several rounds
  return info;
}

/// Verifies the PFS file content byte-samples against a reference store.
void expect_matches(const pfs::Pfs& pfs, const std::string& path,
                    const ByteStore& reference) {
  const ByteStore* actual = pfs.peek(path);
  ASSERT_NE(actual, nullptr) << path;
  ASSERT_EQ(actual->extent_end(), reference.extent_end());
  const Offset end = reference.extent_end();
  const Offset step = std::max<Offset>(1, end / 997);  // ~1000 samples
  for (Offset pos = 0; pos < end; pos += step) {
    ASSERT_EQ(actual->byte_at(pos), reference.byte_at(pos)) << "pos " << pos;
  }
  ASSERT_EQ(actual->byte_at(end - 1), reference.byte_at(end - 1));
}

TEST(CollWrite, InterleavedBlocksLandExactly) {
  Platform p(small_testbed());
  ByteStore reference;
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocksPerRank = 8;
  // Rank r writes blocks r, r+P, r+2P, ... (round-robin interleave).
  for (int r = 0; r < p.ranks(); ++r) {
    for (int b = 0; b < kBlocksPerRank; ++b) {
      const Offset off = (b * p.ranks() + r) * kBlock;
      reference.write(off, DataView::synthetic(100 + static_cast<std::uint64_t>(r), off, kBlock));
    }
  }
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/interleaved",
                           amode::create | amode::rdwr, cache_disabled());
    ASSERT_TRUE(file.is_ok());
    std::vector<mpi::IoPiece> pieces;
    for (int b = 0; b < kBlocksPerRank; ++b) {
      const Offset off = (b * comm.size() + comm.rank()) * kBlock;
      pieces.push_back(mpi::IoPiece{
          Extent{off, kBlock},
          DataView::synthetic(100 + static_cast<std::uint64_t>(comm.rank()),
                              off, kBlock)});
    }
    ASSERT_TRUE(write_strided_coll(*file.value().raw(), pieces));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  expect_matches(p.pfs, "/pfs/interleaved", reference);
}

TEST(CollWrite, SubarrayViewWriteAll2D) {
  // 2-D array distributed in row bands: rank r owns rows [r*Rows, ...).
  Platform p(small_testbed());
  const Offset cols = 512, rows_per_rank = 16, elem = 8;
  const Offset total_rows = rows_per_rank * p.ranks();
  ByteStore reference;
  for (int r = 0; r < p.ranks(); ++r) {
    const Offset start = r * rows_per_rank * cols * elem;
    reference.write(start,
                    DataView::synthetic(static_cast<std::uint64_t>(r), 0,
                                        rows_per_rank * cols * elem));
  }
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/subarray",
                           amode::create | amode::wronly, cache_disabled());
    ASSERT_TRUE(file.is_ok());
    const auto type = mpi::FlatType::subarray(
        {total_rows, cols}, {rows_per_rank, cols},
        {comm.rank() * rows_per_rank, 0}, elem);
    ASSERT_TRUE(file.value().set_view(0, type));
    const DataView mine = DataView::synthetic(
        static_cast<std::uint64_t>(comm.rank()), 0, rows_per_rank * cols * elem);
    ASSERT_TRUE(file.value().write_all(mine));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  expect_matches(p.pfs, "/pfs/subarray", reference);
}

TEST(CollWrite, StridedColumnViewInterleavesCorrectly) {
  // Column-wise decomposition: genuinely interleaved at fine granularity.
  Platform p(small_testbed());
  const Offset cols = 64, rows = 128, elem = 8;
  const int ranks = Platform(small_testbed()).ranks();
  const Offset cols_per_rank = cols / ranks;
  ByteStore reference;
  for (int r = 0; r < ranks; ++r) {
    for (Offset row = 0; row < rows; ++row) {
      for (Offset c = 0; c < cols_per_rank; ++c) {
        const Offset file_off =
            (row * cols + r * cols_per_rank + c) * elem;
        const Offset stream = (row * cols_per_rank + c) * elem;
        reference.write(file_off,
                        DataView::synthetic(static_cast<std::uint64_t>(r),
                                            stream, elem));
      }
    }
  }
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/columns",
                           amode::create | amode::rdwr, cache_disabled());
    ASSERT_TRUE(file.is_ok());
    const auto type = mpi::FlatType::subarray(
        {rows, cols}, {rows, cols_per_rank},
        {0, comm.rank() * cols_per_rank}, elem);
    ASSERT_TRUE(file.value().set_view(0, type));
    ASSERT_TRUE(file.value().write_all(DataView::synthetic(
        static_cast<std::uint64_t>(comm.rank()), 0,
        rows * cols_per_rank * elem)));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  expect_matches(p.pfs, "/pfs/columns", reference);
}

TEST(CollWrite, CbNodesControlsAggregatorCount) {
  Platform p(small_testbed());
  std::vector<int> resolved(static_cast<std::size_t>(p.ranks()), -1);
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = cache_disabled();
    info.set("cb_nodes", "2");
    auto file = File::open(p.ctx, comm, "/pfs/aggs",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    resolved[static_cast<std::size_t>(comm.rank())] =
        static_cast<int>(file.value().aggregators().size());
    EXPECT_EQ(file.value().get_info().get_or("cb_nodes", ""), "2");
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  for (const int n : resolved) EXPECT_EQ(n, 2);
}

TEST(CollWrite, CollectiveReadBackMatches) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 32 * KiB;
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/rw",
                           amode::create | amode::rdwr, cache_disabled());
    ASSERT_TRUE(file.is_ok());
    // Interleaved write, then collectively read someone else's block back.
    const Offset mine = comm.rank() * kBlock;
    ASSERT_TRUE(file.value().write_at_all(
        mine, DataView::synthetic(static_cast<std::uint64_t>(comm.rank()), 0,
                                  kBlock)));
    ASSERT_TRUE(file.value().sync());
    const int peer = (comm.rank() + 1) % comm.size();
    const auto got = file.value().read_at_all(peer * kBlock, kBlock);
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(got.value().size(), kBlock);
    for (Offset i = 0; i < kBlock; i += 509) {
      ASSERT_EQ(got.value().byte_at(i),
                DataView::pattern_byte(static_cast<std::uint64_t>(peer), i));
    }
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(CollWrite, DisabledCbWritesIndependently) {
  Platform p(small_testbed());
  ByteStore reference;
  constexpr Offset kBlock = 16 * KiB;
  for (int r = 0; r < p.ranks(); ++r) {
    reference.write(r * kBlock,
                    DataView::synthetic(static_cast<std::uint64_t>(r), 0,
                                        kBlock));
  }
  p.launch([&](mpi::Comm comm) {
    mpi::Info info;
    info.set("romio_cb_write", "disable");
    auto file = File::open(p.ctx, comm, "/pfs/indep",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(file.value().write_at_all(
        comm.rank() * kBlock,
        DataView::synthetic(static_cast<std::uint64_t>(comm.rank()), 0,
                            kBlock)));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  expect_matches(p.pfs, "/pfs/indep", reference);
  // No shuffle happened: zero collective-buffer exchange means the profiler
  // saw no exchange time.
  EXPECT_EQ(p.profiler.max_over_ranks(prof::Phase::exchange), 0);
}

TEST(CollWrite, AutomaticModeSkipsExchangeForNonInterleaved) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info;  // romio_cb_write defaults to automatic
    auto file = File::open(p.ctx, comm, "/pfs/auto",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    // Perfectly partitioned contiguous blocks: not interleaved.
    ASSERT_TRUE(file.value().write_at_all(
        comm.rank() * 64 * KiB,
        DataView::synthetic(1, comm.rank() * 64 * KiB, 64 * KiB)));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_EQ(p.profiler.max_over_ranks(prof::Phase::exchange), 0);
  EXPECT_GT(p.profiler.max_over_ranks(prof::Phase::write_contig), 0);
}

TEST(CollWrite, EnableForcesCollectiveEvenWhenContiguous) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/forced",
                           amode::create | amode::rdwr, cache_disabled());
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(file.value().write_at_all(
        comm.rank() * 64 * KiB,
        DataView::synthetic(1, comm.rank() * 64 * KiB, 64 * KiB)));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_GT(p.profiler.max_over_ranks(prof::Phase::exchange), 0);
  EXPECT_GT(p.profiler.max_over_ranks(prof::Phase::shuffle_all2all), 0);
}

TEST(OpenClose, MissingFileFailsOnAllRanks) {
  Platform p(small_testbed());
  std::vector<int> failures(static_cast<std::size_t>(p.ranks()), 0);
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/missing", amode::rdonly, {});
    if (!file.is_ok()) {
      failures[static_cast<std::size_t>(comm.rank())] = 1;
    }
  });
  p.run();
  for (const int f : failures) EXPECT_EQ(f, 1);
}

TEST(OpenClose, ExclusiveCreateIsCollectivelyConsistent) {
  Platform p(small_testbed());
  int first_pass = 0, second_pass = 0;
  p.launch([&](mpi::Comm comm) {
    auto a = File::open(p.ctx, comm, "/pfs/excl",
                        amode::create | amode::excl | amode::rdwr, {});
    if (a.is_ok()) {
      if (comm.rank() == 0) ++first_pass;
      ASSERT_TRUE(a.value().close());
    }
    auto b = File::open(p.ctx, comm, "/pfs/excl",
                        amode::create | amode::excl | amode::rdwr, {});
    if (!b.is_ok() && comm.rank() == 0) ++second_pass;
  });
  p.run();
  EXPECT_EQ(first_pass, 1);   // first open succeeded everywhere
  EXPECT_EQ(second_pass, 1);  // second failed everywhere (checked on rank 0)
}

TEST(OpenClose, DeleteOnClose) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file =
        File::open(p.ctx, comm, "/pfs/tmp",
                   amode::create | amode::rdwr | amode::delete_on_close, {});
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_FALSE(p.pfs.exists("/pfs/tmp"));
}

TEST(OpenClose, InvalidAmodeRejected) {
  Platform p(small_testbed());
  int errors = 0;
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/x",
                           amode::rdonly | amode::create, {});
    if (!file.is_ok() && comm.rank() == 0) ++errors;
    auto both = File::open(p.ctx, comm, "/pfs/x",
                           amode::rdonly | amode::wronly, {});
    if (!both.is_ok() && comm.rank() == 0) ++errors;
  });
  p.run();
  EXPECT_EQ(errors, 2);
}

TEST(OpenClose, StripingHintsApplyOnCreate) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info;
    info.set("striping_unit", "2097152");
    info.set("striping_factor", "1");
    auto file = File::open(p.ctx, comm, "/pfs/striped",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  const auto info = p.pfs.stat_path("/pfs/striped").value();
  EXPECT_EQ(info.stripe_unit, 2 * MiB);
  EXPECT_EQ(info.stripe_count, 1u);
}

TEST(OpenClose, BadHintsFailOpenEverywhere) {
  Platform p(small_testbed());
  int failures = 0;
  p.launch([&](mpi::Comm comm) {
    mpi::Info info;
    info.set("cb_buffer_size", "not-a-number");
    auto file =
        File::open(p.ctx, comm, "/pfs/bad", amode::create | amode::rdwr, info);
    if (!file.is_ok()) ++failures;
  });
  p.run();
  EXPECT_EQ(failures, p.ranks());
}

TEST(Independent, WriteAtAndReadAt) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/ind",
                           amode::create | amode::rdwr, {});
    ASSERT_TRUE(file.is_ok());
    const Offset mine = comm.rank() * 8 * KiB;
    ASSERT_TRUE(file.value().write_at(
        mine, DataView::synthetic(static_cast<std::uint64_t>(comm.rank()), 0,
                                  8 * KiB)));
    const auto back = file.value().read_at(mine, 8 * KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().byte_at(100),
              DataView::pattern_byte(
                  static_cast<std::uint64_t>(comm.rank()), 100));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(Independent, FilePointerAdvances) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    // split is collective: every rank participates, only rank 0 proceeds.
    mpi::Comm self = comm.split(comm.rank() == 0 ? 0 : -1, 0);
    if (!self.valid()) return;
    auto file = File::open(p.ctx, self, "/pfs/fp",
                           amode::create | amode::rdwr, {});
    ASSERT_TRUE(file.is_ok());
    EXPECT_EQ(file.value().tell(), 0);
    ASSERT_TRUE(file.value().write(DataView::synthetic(1, 0, 1000)));
    EXPECT_EQ(file.value().tell(), 1000);
    ASSERT_TRUE(file.value().write(DataView::synthetic(1, 1000, 500)));
    EXPECT_EQ(file.value().tell(), 1500);
    file.value().seek(200);
    const auto got = file.value().read(100);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value().byte_at(0), DataView::pattern_byte(1, 200));
    EXPECT_EQ(file.value().tell(), 300);
    EXPECT_EQ(file.value().get_size().value(), 1500);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(Independent, DataSievingCoalescesSmallStridedWrites) {
  Platform p(small_testbed());
  const std::uint64_t writes_before = p.pfs.stats().writes;
  p.launch([&](mpi::Comm comm) {
    mpi::Comm self = comm.split(comm.rank() == 0 ? 0 : -1, 0);
    if (!self.valid()) return;
    auto file = File::open(p.ctx, self, "/pfs/sieve",
                           amode::create | amode::rdwr, {});
    ASSERT_TRUE(file.is_ok());
    // 64 strided 512 B pieces with 512 B holes inside one 64 KiB span:
    // data sieving should issue ~1 covering write, not 64.
    std::vector<mpi::IoPiece> pieces;
    for (int i = 0; i < 64; ++i) {
      pieces.push_back(mpi::IoPiece{Extent{i * 1024, 512},
                                    DataView::synthetic(3, i * 1024, 512)});
    }
    ASSERT_TRUE(write_strided(*file.value().raw(), pieces));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  const std::uint64_t writes = p.pfs.stats().writes - writes_before;
  EXPECT_LE(writes, 4u);  // far fewer than 64 small requests
  // Content: pieces present, holes zero.
  const ByteStore* store = p.pfs.peek("/pfs/sieve");
  EXPECT_EQ(store->byte_at(0), DataView::pattern_byte(3, 0));
  EXPECT_EQ(store->byte_at(600), std::byte{0});
  EXPECT_EQ(store->byte_at(1024), DataView::pattern_byte(3, 1024));
}

TEST(Atomicity, SetterIsCollective) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/atomic",
                           amode::create | amode::rdwr, {});
    ASSERT_TRUE(file.is_ok());
    EXPECT_FALSE(file.value().atomicity());
    ASSERT_TRUE(file.value().set_atomicity(true));
    EXPECT_TRUE(file.value().atomicity());
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

}  // namespace
}  // namespace e10::adio
