#include "adio/aggregation.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "mpi/world.h"

namespace e10::adio {
namespace {

using namespace e10::units;

std::vector<int> aggregators_for(std::size_t nodes, std::size_t ppn,
                                 int cb_nodes) {
  sim::Engine engine;
  net::Fabric fabric(nodes, net::FabricParams{});
  mpi::World world(engine, fabric, mpi::Topology(nodes, ppn));
  std::vector<int> result;
  engine.spawn("probe", [&] {
    result = select_aggregators(world.comm(0), cb_nodes);
  });
  engine.run();
  return result;
}

TEST(Aggregation, DefaultOnePerNode) {
  // 4 nodes x 2 ranks: node leaders are ranks 0, 2, 4, 6.
  EXPECT_EQ(aggregators_for(4, 2, 0), (std::vector<int>{0, 2, 4, 6}));
}

TEST(Aggregation, FewerThanNodesSpreadsAcrossFirstNodes) {
  EXPECT_EQ(aggregators_for(4, 2, 2), (std::vector<int>{0, 2}));
}

TEST(Aggregation, MoreThanNodesWrapsToSecondRankPerNode) {
  // First all four node leaders (0,2,4,6), then second ranks of the first
  // two nodes (1,3); returned sorted.
  EXPECT_EQ(aggregators_for(4, 2, 6), (std::vector<int>{0, 1, 2, 3, 4, 6}));
}

TEST(Aggregation, CappedAtCommSize) {
  EXPECT_EQ(aggregators_for(2, 2, 99).size(), 4u);
}

TEST(Aggregation, PaperScaleSelection) {
  // 64 nodes x 8 ranks, 64 aggregators: exactly the node leaders.
  const auto aggs = aggregators_for(64, 8, 64);
  ASSERT_EQ(aggs.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(aggs[static_cast<std::size_t>(i)], i * 8);
  // 8 aggregators: leaders of the first 8 nodes.
  const auto eight = aggregators_for(64, 8, 8);
  ASSERT_EQ(eight.size(), 8u);
  EXPECT_EQ(eight.back(), 56);
}

TEST(FileDomains, EvenSplitCoversRegionExactly) {
  const auto domains =
      partition_file_domains(Extent{100, 1000}, 3, std::nullopt);
  ASSERT_EQ(domains.size(), 3u);
  EXPECT_EQ(domains[0], (Extent{100, 334}));
  EXPECT_EQ(domains[1], (Extent{434, 333}));
  EXPECT_EQ(domains[2], (Extent{767, 333}));
  EXPECT_EQ(domains[2].end(), 1100);
}

TEST(FileDomains, AlignedSplitLandsOnStripeBoundaries) {
  // Region [1 MiB, 17 MiB), 4 aggregators, 4 MiB stripes.
  const auto domains =
      partition_file_domains(Extent{1 * MiB, 16 * MiB}, 4, 4 * MiB);
  ASSERT_EQ(domains.size(), 4u);
  // Interior boundaries are multiples of 4 MiB.
  for (std::size_t i = 0; i + 1 < domains.size(); ++i) {
    EXPECT_EQ(domains[i].end() % (4 * MiB), 0) << i;
    EXPECT_EQ(domains[i].end(), domains[i + 1].offset);
  }
  EXPECT_EQ(domains.front().offset, 1 * MiB);
  EXPECT_EQ(domains.back().end(), 17 * MiB);
}

TEST(FileDomains, AlignedSmallRegionLeavesTrailingDomainsEmpty) {
  // One stripe of work, 4 aggregators: only the first gets anything.
  const auto domains = partition_file_domains(Extent{0, 1 * MiB}, 4, 4 * MiB);
  EXPECT_EQ(domains[0], (Extent{0, 1 * MiB}));
  for (std::size_t i = 1; i < 4; ++i) EXPECT_TRUE(domains[i].empty());
}

TEST(FileDomains, EmptyRegionAllEmpty) {
  const auto domains = partition_file_domains(Extent{50, 0}, 4, std::nullopt);
  for (const auto& d : domains) EXPECT_TRUE(d.empty());
}

TEST(FileDomains, DomainsAreContiguous) {
  for (const std::size_t count : {1u, 2u, 7u, 64u}) {
    const auto domains =
        partition_file_domains(Extent{12345, 999983}, count, std::nullopt);
    Offset cursor = 12345;
    for (const auto& d : domains) {
      EXPECT_EQ(d.offset, cursor);
      cursor = d.end();
    }
    EXPECT_EQ(cursor, 12345 + 999983);
  }
}

TEST(FileDomains, ZeroAggregatorsThrows) {
  EXPECT_THROW(partition_file_domains(Extent{0, 100}, 0, std::nullopt),
               std::logic_error);
}

}  // namespace
}  // namespace e10::adio
