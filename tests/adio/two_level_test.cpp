// Two-level collective-write end-to-end tests (docs/two_level.md): the
// node-aware two-stage exchange must land byte-identical files against the
// flat path, e10_two_level_flag=disable must reproduce the flat schedule
// bit-for-bit (identical virtual completion time), "automatic" must key on
// the ranks-per-node threshold, and the exchange must stay clean under the
// concurrency checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adio/hints.h"
#include "analysis/checker.h"
#include "common/units.h"
#include "mpiio/file.h"
#include "obs/metrics.h"
#include "workloads/testbed.h"

namespace e10::adio {
namespace {

using namespace e10::units;
using mpiio::File;
using workloads::Platform;
using workloads::small_testbed;
using workloads::TestbedParams;

mpi::Info coll_info(const char* two_level, bool cached = false) {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");  // 256 KiB: forces several rounds
  info.set("cb_nodes", "4");
  info.set("e10_two_level_flag", two_level);
  if (cached) {
    info.set("e10_cache", "enable");
    info.set("e10_cache_path", "/scratch");
    info.set("e10_cache_flush_flag", "flush_immediate");
    info.set("e10_cache_discard_flag", "enable");
  }
  return info;
}

/// 2 nodes x 8 ranks: at the e10_two_level_flag=automatic threshold.
TestbedParams dense_testbed() {
  TestbedParams params = small_testbed();
  params.compute_nodes = 2;
  params.ranks_per_node = 8;
  return params;
}

void expect_matches(const pfs::Pfs& pfs, const std::string& path,
                    const ByteStore& reference) {
  const ByteStore* actual = pfs.peek(path);
  ASSERT_NE(actual, nullptr) << path;
  ASSERT_EQ(actual->extent_end(), reference.extent_end());
  const Offset end = reference.extent_end();
  const Offset step = std::max<Offset>(1, end / 997);
  for (Offset pos = 0; pos < end; pos += step) {
    ASSERT_EQ(actual->byte_at(pos), reference.byte_at(pos)) << "pos " << pos;
  }
  ASSERT_EQ(actual->byte_at(end - 1), reference.byte_at(end - 1));
}

/// Runs one round-robin interleaved collective write and returns the
/// virtual completion time (max over ranks at close).
Time run_interleaved(Platform& p, const std::string& path,
                     const mpi::Info& info, Offset block, int blocks) {
  Time completed = 0;
  p.launch([&, info, path, block, blocks](mpi::Comm comm) {
    auto file =
        File::open(p.ctx, comm, path, amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    std::vector<mpi::IoPiece> pieces;
    for (int b = 0; b < blocks; ++b) {
      const Offset off = (b * comm.size() + comm.rank()) * block;
      pieces.push_back(mpi::IoPiece{Extent{off, block},
                                    DataView::synthetic(42, off, block)});
    }
    ASSERT_TRUE(write_strided_coll(*file.value().raw(), pieces));
    ASSERT_TRUE(file.value().close());
    completed = std::max(completed, p.ctx.engine.now());
  });
  p.run();
  return completed;
}

ByteStore interleaved_reference(int ranks, Offset block, int blocks) {
  ByteStore reference;
  for (int r = 0; r < ranks; ++r) {
    for (int b = 0; b < blocks; ++b) {
      const Offset off = (b * ranks + r) * block;
      reference.write(off, DataView::synthetic(42, off, block));
    }
  }
  return reference;
}

TEST(TwoLevel, ContentMatchesFlat) {
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 16;  // several rounds at 256 KiB cb
  Platform on(small_testbed());
  Platform off(small_testbed());
  const ByteStore reference =
      interleaved_reference(on.ranks(), kBlock, kBlocks);
  run_interleaved(on, "/pfs/two_on", coll_info("enable"), kBlock, kBlocks);
  run_interleaved(off, "/pfs/two_off", coll_info("disable"), kBlock, kBlocks);
  expect_matches(on.pfs, "/pfs/two_on", reference);
  expect_matches(off.pfs, "/pfs/two_off", reference);
  // The two-level exchange actually engaged on the enabled run.
  namespace names = obs::names;
  EXPECT_GT(on.metrics.counter_value(names::kTwoLevelRounds), 0);
  EXPECT_EQ(off.metrics.counter_value(names::kTwoLevelRounds), 0);
}

TEST(TwoLevel, CachedContentMatchesFlat) {
  // Through the cache tier (write to local cache + async flush) the
  // two-level path must still land identical bytes in the global file.
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 8;
  Platform on(small_testbed());
  Platform off(small_testbed());
  const ByteStore reference =
      interleaved_reference(on.ranks(), kBlock, kBlocks);
  run_interleaved(on, "/pfs/ctwo_on", coll_info("enable", true), kBlock,
                  kBlocks);
  run_interleaved(off, "/pfs/ctwo_off", coll_info("disable", true), kBlock,
                  kBlocks);
  expect_matches(on.pfs, "/pfs/ctwo_on", reference);
  expect_matches(off.pfs, "/pfs/ctwo_off", reference);
}

TEST(TwoLevel, DisabledIsBitForBitFlat) {
  // With the flag off (explicitly or by default) the schedule must be the
  // flat one exactly: identical virtual completion times, not merely close.
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 16;
  mpi::Info plain;
  plain.set("romio_cb_write", "enable");
  plain.set("cb_buffer_size", "262144");
  plain.set("cb_nodes", "4");
  Platform off(small_testbed());
  Platform unset(small_testbed());
  const Time t_off =
      run_interleaved(off, "/pfs/flat_a", coll_info("disable"), kBlock,
                      kBlocks);
  const Time t_unset =
      run_interleaved(unset, "/pfs/flat_b", plain, kBlock, kBlocks);
  EXPECT_EQ(t_off, t_unset);
}

TEST(TwoLevel, AutomaticKeysOnRanksPerNode) {
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 16;
  namespace names = obs::names;
  // small_testbed: 2 ranks per node, below the threshold — automatic must
  // keep the flat exchange (schedule identical to disable).
  Platform sparse_auto(small_testbed());
  Platform sparse_off(small_testbed());
  const Time t_auto = run_interleaved(sparse_auto, "/pfs/auto_lo",
                                      coll_info("automatic"), kBlock, kBlocks);
  const Time t_off = run_interleaved(sparse_off, "/pfs/off_lo",
                                     coll_info("disable"), kBlock, kBlocks);
  EXPECT_EQ(t_auto, t_off);
  EXPECT_EQ(sparse_auto.metrics.counter_value(names::kTwoLevelRounds), 0);

  // dense_testbed: 8 ranks per node = kTwoLevelAutoRanksPerNode — automatic
  // must engage the two-level exchange.
  static_assert(Hints::kTwoLevelAutoRanksPerNode == 8,
                "dense_testbed tracks the automatic threshold");
  Platform dense(dense_testbed());
  const ByteStore reference =
      interleaved_reference(dense.ranks(), kBlock, kBlocks);
  run_interleaved(dense, "/pfs/auto_hi", coll_info("automatic"), kBlock,
                  kBlocks);
  expect_matches(dense.pfs, "/pfs/auto_hi", reference);
  EXPECT_GT(dense.metrics.counter_value(names::kTwoLevelRounds), 0);
  EXPECT_GT(dense.metrics.counter_value(names::kTwoLevelIntraBytes), 0);
  EXPECT_GT(dense.metrics.counter_value(names::kTwoLevelInterBytes), 0);
}

TEST(TwoLevel, CheckerFindsNoRacesInTwoLevelWrites) {
  Platform p(dense_testbed());
  analysis::ConcurrencyChecker checker(p.engine);
  run_interleaved(p, "/pfs/two_chk", coll_info("enable", true), 64 * KiB, 8);
  const analysis::AnalysisSummary summary = checker.summary();
  EXPECT_EQ(summary.races.size(), 0u);
  EXPECT_EQ(summary.cycles.size(), 0u);
  EXPECT_GT(summary.shared_accesses, 0u);
}

}  // namespace
}  // namespace e10::adio
