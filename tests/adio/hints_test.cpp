#include "adio/hints.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::adio {
namespace {

using namespace e10::units;

TEST(Hints, DefaultsMatchRomio) {
  const Hints h;
  EXPECT_EQ(h.romio_cb_write, Toggle::automatic);
  EXPECT_EQ(h.romio_cb_read, Toggle::automatic);
  EXPECT_EQ(h.cb_buffer_size, 16 * MiB);
  EXPECT_EQ(h.cb_nodes, 0);  // one aggregator per node
  EXPECT_EQ(h.e10_cache, CacheMode::disable);
  EXPECT_EQ(h.e10_cache_flush_flag, FlushFlag::flush_immediate);
  EXPECT_EQ(h.ind_wr_buffer_size, 512 * KiB);  // paper §IV fixes this value
}

TEST(Hints, ParsesTableOne) {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("romio_cb_read", "disable");
  info.set("cb_buffer_size", "4194304");
  info.set("cb_nodes", "16");
  const Hints h = Hints::parse(info).value();
  EXPECT_EQ(h.romio_cb_write, Toggle::enable);
  EXPECT_EQ(h.romio_cb_read, Toggle::disable);
  EXPECT_EQ(h.cb_buffer_size, 4 * MiB);
  EXPECT_EQ(h.cb_nodes, 16);
}

TEST(Hints, ParsesTableTwo) {
  mpi::Info info;
  info.set("e10_cache", "coherent");
  info.set("e10_cache_path", "/scratch/e10");
  info.set("e10_cache_flush_flag", "flush_onclose");
  info.set("e10_cache_discard_flag", "disable");
  info.set("ind_wr_buffer_size", "1048576");
  const Hints h = Hints::parse(info).value();
  EXPECT_EQ(h.e10_cache, CacheMode::coherent);
  EXPECT_EQ(h.e10_cache_path, "/scratch/e10");
  EXPECT_EQ(h.e10_cache_flush_flag, FlushFlag::flush_onclose);
  EXPECT_FALSE(h.e10_cache_discard);
  EXPECT_EQ(h.ind_wr_buffer_size, 1 * MiB);
}

TEST(Hints, ParsesStripingHints) {
  mpi::Info info;
  info.set("striping_unit", "4194304");
  info.set("striping_factor", "4");
  const Hints h = Hints::parse(info).value();
  EXPECT_EQ(*h.striping_unit, 4 * MiB);
  EXPECT_EQ(*h.striping_factor, 4);
}

TEST(Hints, UnknownKeysIgnored) {
  mpi::Info info;
  info.set("some_future_hint", "whatever");
  EXPECT_TRUE(Hints::parse(info).is_ok());
}

TEST(Hints, MalformedValuesRejected) {
  const auto bad = [](const char* key, const char* value) {
    mpi::Info info;
    info.set(key, value);
    return Hints::parse(info).is_ok();
  };
  EXPECT_FALSE(bad("romio_cb_write", "maybe"));
  EXPECT_FALSE(bad("cb_buffer_size", "-4"));
  EXPECT_FALSE(bad("cb_buffer_size", "4MB"));
  EXPECT_FALSE(bad("cb_nodes", "0"));
  EXPECT_FALSE(bad("e10_cache", "on"));
  EXPECT_FALSE(bad("e10_cache_path", ""));
  EXPECT_FALSE(bad("e10_cache_flush_flag", "later"));
  EXPECT_FALSE(bad("e10_cache_discard_flag", "yes"));
  EXPECT_FALSE(bad("ind_wr_buffer_size", "big"));
}

TEST(Hints, RoundTripThroughInfo) {
  mpi::Info info;
  info.set("e10_cache", "enable");
  info.set("cb_buffer_size", "8388608");
  info.set("e10_cache_flush_flag", "flush_onclose");
  const Hints h = Hints::parse(info).value();
  const Hints again = Hints::parse(h.to_info()).value();
  EXPECT_EQ(again.e10_cache, CacheMode::enable);
  EXPECT_EQ(again.cb_buffer_size, 8 * MiB);
  EXPECT_EQ(again.e10_cache_flush_flag, FlushFlag::flush_onclose);
}

TEST(Hints, TwoLevelFlagParsesAndEchoes) {
  // Default: disable — flat collective write, bit-for-bit.
  EXPECT_EQ(Hints().e10_two_level, Toggle::disable);
  mpi::Info info;
  info.set("e10_two_level_flag", "automatic");
  const Hints h = Hints::parse(info).value();
  EXPECT_EQ(h.e10_two_level, Toggle::automatic);
  // Echo round-trips through MPI_File_get_info.
  const Hints again = Hints::parse(h.to_info()).value();
  EXPECT_EQ(again.e10_two_level, Toggle::automatic);

  mpi::Info on;
  on.set("e10_two_level_flag", "enable");
  EXPECT_EQ(Hints::parse(on).value().e10_two_level, Toggle::enable);
  mpi::Info bad;
  bad.set("e10_two_level_flag", "sometimes");
  EXPECT_FALSE(Hints::parse(bad).is_ok());
}

TEST(Hints, TbwFlushNoneParses) {
  mpi::Info info;
  info.set("e10_cache_flush_flag", "none");
  EXPECT_EQ(Hints::parse(info).value().e10_cache_flush_flag, FlushFlag::none);
}

}  // namespace
}  // namespace e10::adio
