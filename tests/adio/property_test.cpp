// Property-based tests: for randomized access patterns and every
// (aggregators x collective-buffer x cache-mode) configuration, a
// collective write through the full stack must produce a byte-exact file.
//
// The reference model applies each rank's pieces to a plain ByteStore; the
// system under test routes them through view flattening, the extended
// two-phase exchange, the cache layer, the sync thread, and the PFS.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "common/units.h"
#include "mpiio/file.h"
#include "workloads/testbed.h"

namespace e10::adio {
namespace {

using namespace e10::units;
using mpiio::File;
using workloads::Platform;
using workloads::small_testbed;

// (pattern seed, aggregators, cb_buffer_size, cache hint value)
using PropertyParam = std::tuple<std::uint64_t, int, Offset, const char*>;

class RandomPatternWrite : public ::testing::TestWithParam<PropertyParam> {};

/// Generates a random, per-rank-disjoint set of pieces: the file is cut
/// into random-size blocks which are dealt to ranks round-robin with a
/// shuffled order, yielding interleaved, irregular, hole-free coverage;
/// a few blocks are dropped to create holes.
std::vector<std::vector<mpi::IoPiece>> random_pattern(std::uint64_t seed,
                                                      int ranks,
                                                      Offset file_bytes) {
  Rng rng(seed);
  std::vector<Extent> blocks;
  Offset cursor = 0;
  while (cursor < file_bytes) {
    const Offset len = std::min<Offset>(
        file_bytes - cursor, rng.uniform_int(1, 96) * KiB + rng.uniform_int(0, 4095));
    blocks.push_back(Extent{cursor, len});
    cursor += len;
  }
  std::shuffle(blocks.begin(), blocks.end(), rng.engine());
  std::vector<std::vector<mpi::IoPiece>> per_rank(
      static_cast<std::size_t>(ranks));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (rng.bernoulli(0.05)) continue;  // leave a hole
    mpi::IoPiece piece;
    piece.file = blocks[i];
    piece.data = DataView::synthetic(seed ^ 0xF00D, blocks[i].offset,
                                     blocks[i].length);
    per_rank[i % static_cast<std::size_t>(ranks)].push_back(std::move(piece));
  }
  return per_rank;
}

TEST_P(RandomPatternWrite, FileMatchesReferenceModel) {
  const auto [seed, aggregators, cb, cache] = GetParam();
  constexpr Offset kFileBytes = 3 * MiB + 12345;  // deliberately unaligned

  Platform p(small_testbed());
  const auto pattern = random_pattern(seed, p.ranks(), kFileBytes);

  ByteStore reference;
  for (const auto& pieces : pattern) {
    for (const mpi::IoPiece& piece : pieces) {
      reference.write(piece.file.offset, piece.data);
    }
  }

  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_nodes", std::to_string(aggregators));
  info.set("cb_buffer_size", std::to_string(cb));
  info.set("e10_cache", cache);
  if (std::string(cache) != "disable") {
    info.set("e10_cache_path", "/scratch");
    info.set("e10_cache_flush_flag",
             seed % 2 == 0 ? "flush_immediate" : "flush_onclose");
    info.set("e10_cache_discard_flag", "enable");
  }

  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/prop",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(write_strided_coll(
        *file.value().raw(),
        pattern[static_cast<std::size_t>(comm.rank())]));
    ASSERT_TRUE(file.value().close());
  });
  p.run();

  const ByteStore* actual = p.pfs.peek("/pfs/prop");
  ASSERT_NE(actual, nullptr);
  ASSERT_EQ(actual->extent_end(), reference.extent_end());
  const Offset end = reference.extent_end();
  for (Offset pos = 0; pos < end; pos += 769) {
    ASSERT_EQ(actual->byte_at(pos), reference.byte_at(pos)) << "pos " << pos;
  }
  // Cache space fully reclaimed (discard flag).
  for (std::size_t node = 0; node < p.params().compute_nodes; ++node) {
    EXPECT_EQ(p.lfs.at(node).used_bytes(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPatternWrite,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(1, 3, 4),          // aggregators
                       ::testing::Values(128 * KiB, 1 * MiB),  // cb size
                       ::testing::Values("disable", "enable")),
    [](const ::testing::TestParamInfo<PropertyParam>& p) {
      return "seed" + std::to_string(std::get<0>(p.param)) + "_aggs" +
             std::to_string(std::get<1>(p.param)) + "_cb" +
             std::to_string(std::get<2>(p.param) / KiB) + "k_" +
             std::get<3>(p.param);
    });

// Determinism property: identical configurations produce identical virtual
// timelines, bit for bit.
class DeterministicRuns : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterministicRuns, SameSeedSameTimeline) {
  auto run_once = [&]() -> std::pair<Time, Offset> {
    Platform p(small_testbed());
    mpi::Info info;
    info.set("romio_cb_write", "enable");
    info.set("cb_buffer_size", "262144");
    info.set("e10_cache", GetParam());
    if (std::string(GetParam()) != "disable") {
      info.set("e10_cache_path", "/scratch");
      info.set("e10_cache_flush_flag", "flush_immediate");
    }
    p.launch([&](mpi::Comm comm) {
      auto file = File::open(p.ctx, comm, "/pfs/det",
                             amode::create | amode::rdwr, info);
      ASSERT_TRUE(file.is_ok());
      for (int b = 0; b < 3; ++b) {
        const Offset off = (b * comm.size() + comm.rank()) * 64 * KiB;
        ASSERT_TRUE(file.value().write_at_all(
            off, DataView::synthetic(9, off, 64 * KiB)));
      }
      ASSERT_TRUE(file.value().close());
    });
    p.run();
    return {p.engine.now(), p.pfs.stats().bytes_written};
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);    // identical final virtual time
  EXPECT_EQ(first.second, second.second);  // identical I/O volume
}

INSTANTIATE_TEST_SUITE_P(CacheModes, DeterministicRuns,
                         ::testing::Values("disable", "enable", "coherent"));

// Read-after-write property across view shapes: what a rank writes through
// any view, every rank can read back through the same view.
class ViewRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ViewRoundTrip, WriteAllThenReadAllMatches) {
  const int shape = GetParam();
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info;
    info.set("romio_cb_write", "enable");
    info.set("romio_cb_read", "enable");
    info.set("cb_buffer_size", "131072");
    auto file = File::open(p.ctx, comm, "/pfs/view",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    const Offset chunk = 8 * KiB;
    mpi::FlatType type = [&] {
      switch (shape) {
        case 0:  // block-contiguous partition
          return mpi::FlatType::contiguous(chunk);
        case 1:  // strided vector: round-robin chunks
          return mpi::FlatType::vector(16, chunk, chunk * comm.size());
        default:  // 2-D column band
          return mpi::FlatType::subarray({16, 8 * comm.size()},
                                         {16, 8}, {0, comm.rank() * 8}, 1024);
      }
    }();
    const Offset disp =
        shape == 0 ? comm.rank() * chunk * 16
        : shape == 1 ? comm.rank() * chunk
                     : 0;
    ASSERT_TRUE(file.value().set_view(disp, type));
    const Offset bytes = shape == 0 ? chunk * 16 : type.size();
    const DataView mine = DataView::synthetic(
        static_cast<std::uint64_t>(comm.rank() + 100), 0, bytes);
    ASSERT_TRUE(file.value().write_all(mine));
    ASSERT_TRUE(file.value().sync());

    file.value().seek(0);
    const auto back = file.value().read_all(bytes);
    ASSERT_TRUE(back.is_ok());
    ASSERT_EQ(back.value().size(), bytes);
    for (Offset i = 0; i < bytes; i += 411) {
      ASSERT_EQ(back.value().byte_at(i), mine.byte_at(i)) << "i=" << i;
    }
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

INSTANTIATE_TEST_SUITE_P(Shapes, ViewRoundTrip, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& p) {
                           switch (p.param) {
                             case 0: return "contiguous";
                             case 1: return "vector";
                             default: return "subarray2d";
                           }
                         });

}  // namespace
}  // namespace e10::adio
