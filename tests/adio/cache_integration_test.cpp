// The E10 cache layer exercised through the full MPI-IO stack: content
// correctness, consistency semantics (§III-B), flush policies, fallback
// behaviour, and the overlap of background sync with compute (§III-C/D).
#include <gtest/gtest.h>

#include "common/units.h"
#include "mpiio/file.h"
#include "workloads/testbed.h"

namespace e10::adio {
namespace {

using namespace e10::units;
using mpiio::File;
using workloads::Platform;
using workloads::small_testbed;

mpi::Info cache_disabled_info() {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");
  return info;
}

mpi::Info cached_info(const std::string& flush = "flush_immediate") {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");
  info.set("e10_cache", "enable");
  info.set("e10_cache_path", "/scratch");
  info.set("e10_cache_flush_flag", flush);
  info.set("e10_cache_discard_flag", "enable");
  info.set("ind_wr_buffer_size", "524288");
  return info;
}

void interleaved_write(Platform& p, File& file, Offset block) {
  const mpi::Comm comm = file.comm();
  std::vector<mpi::IoPiece> pieces;
  for (int b = 0; b < 4; ++b) {
    const Offset off = (b * comm.size() + comm.rank()) * block;
    pieces.push_back(mpi::IoPiece{
        Extent{off, block},
        DataView::synthetic(42, off, block)});  // pattern == file offset
  }
  ASSERT_TRUE(write_strided_coll(*file.raw(), pieces));
  (void)p;
}

void expect_full_pattern(const pfs::Pfs& pfs, const std::string& path,
                         Offset size) {
  const ByteStore* store = pfs.peek(path);
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(store->extent_end(), size);
  for (Offset pos = 0; pos < size; pos += 4099) {
    ASSERT_EQ(store->byte_at(pos), DataView::pattern_byte(42, pos))
        << "pos " << pos;
  }
}

TEST(CacheIntegration, DataVisibleAfterCloseImmediate) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 32 * KiB;
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/cached",
                           amode::create | amode::rdwr, cached_info());
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), kBlock);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  expect_full_pattern(p.pfs, "/pfs/cached", kBlock * 4 * 8);
}

TEST(CacheIntegration, DataVisibleAfterCloseOnclose) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 32 * KiB;
  p.launch([&](mpi::Comm comm) {
    auto file =
        File::open(p.ctx, comm, "/pfs/cached_oc", amode::create | amode::rdwr,
                   cached_info("flush_onclose"));
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), kBlock);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  expect_full_pattern(p.pfs, "/pfs/cached_oc", kBlock * 4 * 8);
}

TEST(CacheIntegration, DataVisibleAfterExplicitSync) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 32 * KiB;
  std::vector<int> verified(static_cast<std::size_t>(8), 0);
  p.launch([&](mpi::Comm comm) {
    auto file =
        File::open(p.ctx, comm, "/pfs/synced", amode::create | amode::rdwr,
                   cached_info("flush_onclose"));
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), kBlock);
    ASSERT_TRUE(file.value().sync());  // MPI_File_sync
    // After sync returns, data is globally visible: read a peer's block
    // directly from the global file.
    const int peer = (comm.rank() + 3) % comm.size();
    const Offset peer_off = peer * kBlock;
    const auto got = file.value().read_at(peer_off, kBlock);
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(got.value().size(), kBlock);
    for (Offset i = 0; i < kBlock; i += 1009) {
      ASSERT_EQ(got.value().byte_at(i),
                DataView::pattern_byte(42, peer_off + i));
    }
    verified[static_cast<std::size_t>(comm.rank())] = 1;
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  for (const int v : verified) EXPECT_EQ(v, 1);
}

TEST(CacheIntegration, OncloseLeavesGlobalFileStaleBeforeClose) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 32 * KiB;
  Offset global_bytes_during = -1;
  p.launch([&](mpi::Comm comm) {
    auto file =
        File::open(p.ctx, comm, "/pfs/stale", amode::create | amode::rdwr,
                   cached_info("flush_onclose"));
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), kBlock);
    comm.barrier();
    p.engine.delay(seconds(5));  // plenty of time: still nothing may sync
    if (comm.rank() == 0) {
      const ByteStore* store = p.pfs.peek("/pfs/stale");
      global_bytes_during = store == nullptr ? 0 : store->extent_end();
    }
    comm.barrier();
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_EQ(global_bytes_during, 0);  // nothing reached the PFS before close
  expect_full_pattern(p.pfs, "/pfs/stale", kBlock * 4 * 8);
}

TEST(CacheIntegration, CacheFilesDiscardedAfterClose) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/d",
                           amode::create | amode::rdwr, cached_info());
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), 16 * KiB);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  for (std::size_t node = 0; node < p.params().compute_nodes; ++node) {
    EXPECT_EQ(p.lfs.at(node).used_bytes(), 0) << "node " << node;
  }
}

TEST(CacheIntegration, RetainedCacheFilesSurviveClose) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = cached_info();
    info.set("e10_cache_discard_flag", "disable");
    auto file = File::open(p.ctx, comm, "/pfs/keep",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), 16 * KiB);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  // Aggregator nodes still hold their cache files.
  Offset total = 0;
  for (std::size_t node = 0; node < p.params().compute_nodes; ++node) {
    total += p.lfs.at(node).used_bytes();
  }
  EXPECT_GT(total, 0);
}

TEST(CacheIntegration, OnlyAggregatorsWriteToCache) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = cached_info();
    info.set("cb_nodes", "2");
    info.set("e10_cache_discard_flag", "disable");
    auto file = File::open(p.ctx, comm, "/pfs/agg_only",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), 16 * KiB);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  // Aggregators are the leaders of nodes 0 and 1: only those nodes' local
  // file systems saw writes.
  EXPECT_GT(p.lfs.at(0).stats().bytes_written, 0);
  EXPECT_GT(p.lfs.at(1).stats().bytes_written, 0);
  EXPECT_EQ(p.lfs.at(2).stats().bytes_written, 0);
  EXPECT_EQ(p.lfs.at(3).stats().bytes_written, 0);
}

TEST(CacheIntegration, TheoreticalModeNeverTouchesGlobalFile) {
  Platform p(small_testbed());
  const Offset before = p.pfs.stats().bytes_written;
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/tbw",
                           amode::create | amode::rdwr, cached_info("none"));
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), 32 * KiB);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  EXPECT_EQ(p.pfs.stats().bytes_written, before);
}

TEST(CacheIntegration, FallsBackWhenCacheDeviceFull) {
  workloads::TestbedParams params = small_testbed();
  params.lfs.capacity = 64 * KiB;  // tiny scratch: cache fills instantly
  Platform p(params);
  constexpr Offset kBlock = 32 * KiB;
  p.launch([&](mpi::Comm comm) {
    auto file = File::open(p.ctx, comm, "/pfs/fallback",
                           amode::create | amode::rdwr, cached_info());
    ASSERT_TRUE(file.is_ok());
    interleaved_write(p, file.value(), kBlock);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  // Despite the cache being unusable, no data was lost.
  expect_full_pattern(p.pfs, "/pfs/fallback", kBlock * 4 * 8);
}

TEST(CacheIntegration, ComputeDelayHidesSyncCost) {
  // The paper's Eq. 1: with enough compute after the write, the deferred
  // close is (nearly) free; without it, close pays the remaining sync time.
  auto close_time_with_delay = [](Time compute_delay) {
    Platform p(small_testbed());
    Time close_elapsed = 0;
    p.launch([&, compute_delay](mpi::Comm comm) {
      auto file = File::open(p.ctx, comm, "/pfs/hide",
                             amode::create | amode::rdwr, cached_info());
      ASSERT_TRUE(file.is_ok());
      std::vector<mpi::IoPiece> pieces;
      const Offset block = 1 * MiB;
      const Offset off = comm.rank() * block;
      pieces.push_back(
          mpi::IoPiece{Extent{off, block}, DataView::synthetic(42, off, block)});
      ASSERT_TRUE(write_strided_coll(*file.value().raw(), pieces));
      p.engine.delay(compute_delay);  // compute phase C(k+1)
      const Time t0 = p.engine.now();
      ASSERT_TRUE(file.value().close());
      if (comm.rank() == 0) close_elapsed = p.engine.now() - t0;
    });
    p.run();
    return close_elapsed;
  };
  const Time eager_close = close_time_with_delay(0);
  const Time hidden_close = close_time_with_delay(seconds(30));
  EXPECT_GT(eager_close, 5 * hidden_close);
  EXPECT_LT(hidden_close, milliseconds(50));
}

TEST(CacheIntegration, CoherentReadBlocksUntilSynced) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 256 * KiB;
  std::vector<int> ok(static_cast<std::size_t>(8), 0);
  p.launch([&](mpi::Comm comm) {
    mpi::Info info = cached_info("flush_onclose");
    info.set("e10_cache", "coherent");
    auto file = File::open(p.ctx, comm, "/pfs/coh",
                           amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    const Offset off = comm.rank() * kBlock;
    ASSERT_TRUE(write_strided_coll(
        *file.value().raw(),
        {mpi::IoPiece{Extent{off, kBlock},
                      DataView::synthetic(42, off, kBlock)}}));
    comm.barrier();
    // With flush_onclose nothing has synced yet; coherent extents are
    // locked. Reading a peer's extent must wait for the sync at close...
    // so do the read *after* sync() instead — but verify the lock exists.
    if (comm.rank() == 0) {
      EXPECT_TRUE(p.locks.is_locked("/pfs/coh", Extent{0, kBlock}));
    }
    comm.barrier();
    ASSERT_TRUE(file.value().sync());
    if (comm.rank() == 0) {
      EXPECT_FALSE(p.locks.is_locked("/pfs/coh", Extent{0, kBlock}));
    }
    const int peer = (comm.rank() + 1) % comm.size();
    const auto got = file.value().read_at(peer * kBlock, kBlock);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value().byte_at(0),
              DataView::pattern_byte(42, peer * kBlock));
    ok[static_cast<std::size_t>(comm.rank())] = 1;
    ASSERT_TRUE(file.value().close());
  });
  p.run();
  for (const int v : ok) EXPECT_EQ(v, 1);
}

TEST(CacheIntegration, CacheWriteFasterThanDirectWrite) {
  // The headline effect at test scale: collective write latency (excluding
  // sync) is much lower with the cache than against the PFS.
  auto write_time = [](bool cached) {
    workloads::TestbedParams params = small_testbed();
    // Synchronous servers (no write-back): sustained-rate comparison, as if
    // the server RAM window were already full.
    params.pfs.server_writeback_bytes = 0;
    Platform p(params);
    Time elapsed = 0;
    p.launch([&, cached](mpi::Comm comm) {
      mpi::Info info = cached ? cached_info("none") : cache_disabled_info();
      auto file = File::open(p.ctx, comm, "/pfs/speed",
                             amode::create | amode::rdwr, info);
      ASSERT_TRUE(file.is_ok());
      const Offset block = 2 * MiB;
      std::vector<mpi::IoPiece> pieces;
      for (int b = 0; b < 2; ++b) {
        const Offset off = (b * comm.size() + comm.rank()) * block;
        pieces.push_back(mpi::IoPiece{Extent{off, block},
                                      DataView::synthetic(42, off, block)});
      }
      const Time t0 = p.engine.now();
      ASSERT_TRUE(write_strided_coll(*file.value().raw(), pieces));
      comm.barrier();
      if (comm.rank() == 0) elapsed = p.engine.now() - t0;
      ASSERT_TRUE(file.value().close());
    });
    p.run();
    return elapsed;
  };
  EXPECT_LT(write_time(true), write_time(false));
}

TEST(CacheIntegration, ReadOnlyOpenSkipsCache) {
  Platform p(small_testbed());
  p.launch([&](mpi::Comm comm) {
    {
      auto file = File::open(p.ctx, comm, "/pfs/ro",
                             amode::create | amode::rdwr, cache_disabled_info());
      ASSERT_TRUE(file.is_ok());
      ASSERT_TRUE(file.value().write_at_all(
          comm.rank() * 4 * KiB,
          DataView::synthetic(42, comm.rank() * 4 * KiB, 4 * KiB)));
      ASSERT_TRUE(file.value().close());
    }
    auto file = File::open(p.ctx, comm, "/pfs/ro", amode::rdonly,
                           cached_info());
    ASSERT_TRUE(file.is_ok());
    EXPECT_EQ(file.value().raw()->cache, nullptr);
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

}  // namespace
}  // namespace e10::adio
