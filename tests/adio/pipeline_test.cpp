// WritePipeline end-to-end tests: pipelined vs synchronous collective
// writes must produce byte-identical files, the pipelined run must never be
// slower in virtual time, and the pipeline's shared state must stay clean
// under the concurrency checker. Plus OverlapAccumulator unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "common/units.h"
#include "mpiio/file.h"
#include "sim/async.h"
#include "workloads/testbed.h"

namespace e10::adio {
namespace {

using namespace e10::units;
using mpiio::File;
using workloads::Platform;
using workloads::small_testbed;

mpi::Info coll_info(bool pipelined, bool cached = false) {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");  // 256 KiB: forces several rounds
  info.set("e10_pipeline_flag", pipelined ? "enable" : "disable");
  if (cached) {
    info.set("e10_cache", "enable");
    info.set("e10_cache_path", "/scratch");
    info.set("e10_cache_flush_flag", "flush_immediate");
    info.set("e10_cache_discard_flag", "enable");
  }
  return info;
}

void expect_matches(const pfs::Pfs& pfs, const std::string& path,
                    const ByteStore& reference) {
  const ByteStore* actual = pfs.peek(path);
  ASSERT_NE(actual, nullptr) << path;
  ASSERT_EQ(actual->extent_end(), reference.extent_end());
  const Offset end = reference.extent_end();
  const Offset step = std::max<Offset>(1, end / 997);
  for (Offset pos = 0; pos < end; pos += step) {
    ASSERT_EQ(actual->byte_at(pos), reference.byte_at(pos)) << "pos " << pos;
  }
  ASSERT_EQ(actual->byte_at(end - 1), reference.byte_at(end - 1));
}

/// Runs one round-robin interleaved collective write and returns the
/// virtual completion time (max over ranks at close).
Time run_interleaved(Platform& p, const std::string& path,
                     const mpi::Info& info, Offset block, int blocks) {
  Time completed = 0;
  p.launch([&, info, path, block, blocks](mpi::Comm comm) {
    auto file =
        File::open(p.ctx, comm, path, amode::create | amode::rdwr, info);
    ASSERT_TRUE(file.is_ok());
    std::vector<mpi::IoPiece> pieces;
    for (int b = 0; b < blocks; ++b) {
      const Offset off = (b * comm.size() + comm.rank()) * block;
      pieces.push_back(mpi::IoPiece{Extent{off, block},
                                    DataView::synthetic(42, off, block)});
    }
    ASSERT_TRUE(write_strided_coll(*file.value().raw(), pieces));
    ASSERT_TRUE(file.value().close());
    completed = std::max(completed, p.ctx.engine.now());
  });
  p.run();
  return completed;
}

ByteStore interleaved_reference(int ranks, Offset block, int blocks) {
  ByteStore reference;
  for (int r = 0; r < ranks; ++r) {
    for (int b = 0; b < blocks; ++b) {
      const Offset off = (b * ranks + r) * block;
      reference.write(off, DataView::synthetic(42, off, block));
    }
  }
  return reference;
}

TEST(WritePipeline_, PipelinedContentMatchesSynchronous) {
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 16;  // several rounds at 256 KiB cb
  Platform on(small_testbed());
  Platform off(small_testbed());
  const ByteStore reference =
      interleaved_reference(on.ranks(), kBlock, kBlocks);
  run_interleaved(on, "/pfs/pipe_on", coll_info(true), kBlock, kBlocks);
  run_interleaved(off, "/pfs/pipe_off", coll_info(false), kBlock, kBlocks);
  expect_matches(on.pfs, "/pfs/pipe_on", reference);
  expect_matches(off.pfs, "/pfs/pipe_off", reference);
}

// Regression for the fuzzer-caught crash-point terminate (docs/fuzzing.md):
// a stop_at() cancels every fiber mid-collective, so ~WritePipeline runs
// during ProcessCancelled unwinding with rounds still in flight. The
// destructor must not drain (block) then — blocking rethrows the
// cancellation inside a noexcept context and aborts the whole binary.
// e10_lint's unwind-blocking rule pins the guarded destructor statically;
// this pins the runtime behavior. Crash times sweep the run so at least
// one lands inside the pipelined exchange regardless of phase timing.
TEST(WritePipeline_, CrashMidWriteUnwindsWithoutTerminating) {
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 16;
  Time end = 0;
  {
    Platform clean(small_testbed());
    end = run_interleaved(clean, "/pfs/unwind", coll_info(true), kBlock,
                          kBlocks);
  }
  ASSERT_GT(end, 0);
  for (int eighth = 1; eighth < 8; ++eighth) {
    Platform p(small_testbed());
    p.engine.stop_at(end * eighth / 8);
    run_interleaved(p, "/pfs/unwind", coll_info(true), kBlock, kBlocks);
    EXPECT_TRUE(p.engine.stopped()) << "crash point " << eighth << "/8";
  }
}

TEST(WritePipeline_, PipelinedIsNeverSlowerThanSynchronous) {
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 16;
  Platform on(small_testbed());
  Platform off(small_testbed());
  const Time t_on =
      run_interleaved(on, "/pfs/t_on", coll_info(true), kBlock, kBlocks);
  const Time t_off =
      run_interleaved(off, "/pfs/t_off", coll_info(false), kBlock, kBlocks);
  EXPECT_LE(t_on, t_off);
}

TEST(WritePipeline_, SingleRoundDegeneratesToSynchronous) {
  // One block per rank fits a single round: with nothing to overlap, the
  // pipelined schedule must equal the synchronous one exactly.
  constexpr Offset kBlock = 8 * KiB;
  Platform on(small_testbed());
  Platform off(small_testbed());
  const Time t_on =
      run_interleaved(on, "/pfs/one_on", coll_info(true), kBlock, 1);
  const Time t_off =
      run_interleaved(off, "/pfs/one_off", coll_info(false), kBlock, 1);
  EXPECT_EQ(t_on, t_off);
  expect_matches(on.pfs, "/pfs/one_on",
                 interleaved_reference(on.ranks(), kBlock, 1));
}

TEST(WritePipeline_, CachedPipelinedContentMatchesSynchronous) {
  // Through the cache tier (write to local cache + async flush to the
  // global file) the pipelined path must still land identical bytes.
  constexpr Offset kBlock = 64 * KiB;
  constexpr int kBlocks = 8;
  Platform on(small_testbed());
  Platform off(small_testbed());
  const ByteStore reference =
      interleaved_reference(on.ranks(), kBlock, kBlocks);
  const Time t_on = run_interleaved(on, "/pfs/cpipe_on",
                                    coll_info(true, true), kBlock, kBlocks);
  const Time t_off = run_interleaved(off, "/pfs/cpipe_off",
                                     coll_info(false, true), kBlock, kBlocks);
  expect_matches(on.pfs, "/pfs/cpipe_on", reference);
  expect_matches(off.pfs, "/pfs/cpipe_off", reference);
  // Tolerance: the cached path ends on background-flush completions whose
  // virtual-time arithmetic rounds per advance point, so the two schedules
  // can differ by a few ns without either being slower in any real sense.
  EXPECT_LE(t_on, t_off + units::microseconds(1));
}

TEST(WritePipeline_, PipelineOverlapIsObserved) {
  Platform p(small_testbed());
  constexpr Offset kBlock = 64 * KiB;
  run_interleaved(p, "/pfs/pipe_obs", coll_info(true), kBlock, 16);
  namespace names = obs::names;
  const std::int64_t writes = p.metrics.counter_value(names::kPipelineWrites);
  const std::int64_t write_ns =
      p.metrics.counter_value(names::kPipelineWriteNs);
  const std::int64_t hidden_ns =
      p.metrics.counter_value(names::kPipelineHiddenNs);
  const std::int64_t stall_ns =
      p.metrics.counter_value(names::kPipelineStallNs);
  EXPECT_GT(writes, 0);
  EXPECT_GT(write_ns, 0);
  EXPECT_EQ(hidden_ns + stall_ns, write_ns);
  EXPECT_GT(hidden_ns, 0);  // multi-round: something must overlap
}

TEST(WritePipeline_, CheckerFindsNoRacesInPipelinedWrites) {
  Platform p(small_testbed());
  analysis::ConcurrencyChecker checker(p.engine);
  run_interleaved(p, "/pfs/pipe_chk", coll_info(true, true), 64 * KiB, 8);
  const analysis::AnalysisSummary summary = checker.summary();
  EXPECT_EQ(summary.races.size(), 0u);
  EXPECT_EQ(summary.cycles.size(), 0u);
  EXPECT_GT(summary.shared_accesses, 0u);
}

TEST(OverlapAccumulator_, FullyHiddenJoin) {
  sim::OverlapAccumulator acc;
  // Write issued at 100, done at 200, joined at 250: fully hidden.
  const sim::JoinOutcome outcome = acc.on_join(100, 200, 250);
  EXPECT_EQ(outcome.hidden, 100);
  EXPECT_EQ(outcome.stall, 0);
  EXPECT_EQ(acc.joins(), 1u);
  EXPECT_EQ(acc.stalls(), 0u);
  EXPECT_DOUBLE_EQ(acc.overlap_ratio(), 1.0);
}

TEST(OverlapAccumulator_, PartialStall) {
  sim::OverlapAccumulator acc;
  // Joined at 150, write completes at 200: 50 hidden, 50 stalled.
  const sim::JoinOutcome outcome = acc.on_join(100, 200, 150);
  EXPECT_EQ(outcome.hidden, 50);
  EXPECT_EQ(outcome.stall, 50);
  EXPECT_EQ(acc.stalls(), 1u);
  EXPECT_DOUBLE_EQ(acc.overlap_ratio(), 0.5);
  EXPECT_EQ(acc.service_time(), 100);
  EXPECT_EQ(acc.hidden_time(), 50);
  EXPECT_EQ(acc.stall_time(), 50);
}

TEST(OverlapAccumulator_, ImmediateJoinHidesNothing) {
  sim::OverlapAccumulator acc;
  const sim::JoinOutcome outcome = acc.on_join(100, 200, 100);
  EXPECT_EQ(outcome.hidden, 0);
  EXPECT_EQ(outcome.stall, 100);
  EXPECT_DOUBLE_EQ(acc.overlap_ratio(), 0.0);
}

TEST(OverlapAccumulator_, EmptyAccumulatorHasZeroRatio) {
  const sim::OverlapAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.overlap_ratio(), 0.0);
  EXPECT_EQ(acc.joins(), 0u);
}

}  // namespace
}  // namespace e10::adio
