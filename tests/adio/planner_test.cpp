// RoundPlanner unit tests: domain/round maths shared by the collective
// write and read paths, including the degenerate shapes (empty region,
// zero-length extents, single aggregator, hole-heavy patterns) and
// equivalence with the planning loop it replaced.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "adio/aggregation.h"
#include "adio/pipeline.h"
#include "common/units.h"

namespace e10::adio {
namespace {

using namespace e10::units;

using Window = std::tuple<Offset, std::size_t, Offset, Offset>;

std::vector<Window> collect(RoundPlanner& planner,
                            const std::vector<Extent>& extents) {
  std::vector<Window> out;
  for (const Extent& e : extents) {
    planner.split(e, [&](Offset round, std::size_t agg, const Extent& sub) {
      out.emplace_back(round, agg, sub.offset, sub.length);
    });
  }
  return out;
}

TEST(RoundPlanner, EmptyRegionHasNoRoundsAndNoDomains) {
  RoundPlanner planner(Extent{0, 0}, 4, 1 * MiB, std::nullopt);
  EXPECT_EQ(planner.rounds(), 0);
  EXPECT_TRUE(planner.domains().empty());
}

TEST(RoundPlanner, ZeroLengthExtentEmitsNothing) {
  RoundPlanner planner(Extent{0, 4 * MiB}, 2, 1 * MiB, std::nullopt);
  const auto windows = collect(planner, {Extent{64, 0}, Extent{2 * MiB, 0}});
  EXPECT_TRUE(windows.empty());
}

TEST(RoundPlanner, SingleAggregatorOwnsEveryRound) {
  // One domain covering the region: rounds = ceil(len / cb).
  RoundPlanner planner(Extent{0, 10 * MiB}, 1, 4 * MiB, std::nullopt);
  ASSERT_EQ(planner.domains().size(), 1u);
  EXPECT_EQ(planner.rounds(), 3);
  const auto windows = collect(planner, {Extent{0, 10 * MiB}});
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], Window(0, 0, 0, 4 * MiB));
  EXPECT_EQ(windows[1], Window(1, 0, 4 * MiB, 4 * MiB));
  EXPECT_EQ(windows[2], Window(2, 0, 8 * MiB, 2 * MiB));
}

TEST(RoundPlanner, SingleRoundWhenBufferCoversTheDomain) {
  // cb >= domain size: the pipeline degenerates to one round.
  RoundPlanner planner(Extent{0, 8 * MiB}, 4, 16 * MiB, std::nullopt);
  EXPECT_EQ(planner.rounds(), 1);
}

TEST(RoundPlanner, WindowsPartitionTheInputExactly) {
  RoundPlanner planner(Extent{3, 1000000}, 3, 65536, std::nullopt);
  const auto windows = collect(planner, {Extent{3, 1000000}});
  Offset cursor = 3;
  Offset total = 0;
  for (const auto& [round, agg, off, len] : windows) {
    EXPECT_EQ(off, cursor);  // contiguous, in file order
    EXPECT_GT(len, 0);
    ASSERT_LT(agg, planner.domains().size());
    const Extent& dom = planner.domains()[agg];
    EXPECT_GE(off, dom.offset);
    EXPECT_LE(off + len, dom.end());
    EXPECT_EQ(round, (off - dom.offset) / 65536);
    cursor += len;
    total += len;
  }
  EXPECT_EQ(total, 1000000);
}

TEST(RoundPlanner, HoleHeavyPatternKeepsRoundAndDomainMaths) {
  // Sparse extents with large holes; cursor must skip domains cleanly.
  RoundPlanner planner(Extent{0, 64 * MiB}, 4, 4 * MiB, std::nullopt);
  ASSERT_EQ(planner.domains().size(), 4u);
  std::vector<Extent> sparse;
  for (Offset off = 0; off < 64 * MiB; off += 8 * MiB) {
    sparse.push_back(Extent{off, 4 * KiB});  // 4 KiB every 8 MiB
  }
  const auto windows = collect(planner, sparse);
  ASSERT_EQ(windows.size(), sparse.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& [round, agg, off, len] = windows[i];
    EXPECT_EQ(off, sparse[i].offset);
    EXPECT_EQ(len, sparse[i].length);
    const Extent& dom = planner.domains()[agg];
    EXPECT_TRUE(dom.contains(off));
  }
}

TEST(RoundPlanner, RewindAllowsASecondSortedPass) {
  RoundPlanner planner(Extent{0, 8 * MiB}, 2, 1 * MiB, std::nullopt);
  const auto first = collect(planner, {Extent{5 * MiB, 1 * MiB}});
  planner.rewind();
  const auto second = collect(planner, {Extent{1 * MiB, 1 * MiB}});
  EXPECT_FALSE(first.empty());
  EXPECT_FALSE(second.empty());
  EXPECT_EQ(std::get<2>(second.front()), 1 * MiB);
}

TEST(RoundPlanner, MatchesTheLegacyPlanningLoop) {
  // The planner replaced an inline loop in write_coll/read_coll; replicate
  // that loop here and require identical (round, aggregator, window) splits.
  const Extent region{4097, 33 * MiB + 131};
  const std::size_t aggregators = 5;
  const Offset cb = 3 * MiB;
  const std::optional<Offset> align = 4 * MiB;  // beegfs stripe alignment

  std::vector<Extent> extents;
  for (Offset off = region.offset; off < region.end(); off += 2 * MiB + 7) {
    extents.push_back(
        Extent{off, std::min<Offset>(1 * MiB + 13, region.end() - off)});
  }

  RoundPlanner planner(region, aggregators, cb, align);
  const auto windows = collect(planner, extents);

  const std::vector<Extent> domains =
      partition_file_domains(region, aggregators, align);
  EXPECT_EQ(domains, planner.domains());
  std::vector<Window> legacy;
  std::size_t a = 0;
  for (const Extent& e : extents) {
    Offset cursor = e.offset;
    while (cursor < e.end()) {
      while (a + 1 < domains.size() &&
             (domains[a].empty() || cursor >= domains[a].end())) {
        ++a;
      }
      const Extent& dom = domains[a];
      const Offset round = (cursor - dom.offset) / cb;
      const Offset window_end =
          std::min(dom.offset + (round + 1) * cb, dom.end());
      const Offset take = std::min(e.end(), window_end) - cursor;
      legacy.emplace_back(round, a, cursor, take);
      cursor += take;
    }
  }
  EXPECT_EQ(windows, legacy);

  Offset max_round = -1;
  for (const auto& w : windows) max_round = std::max(max_round, std::get<0>(w));
  EXPECT_LT(max_round, planner.rounds());
}

}  // namespace
}  // namespace e10::adio
