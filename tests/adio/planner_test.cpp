// RoundPlanner unit tests: domain/round maths shared by the collective
// write and read paths, including the degenerate shapes (empty region,
// zero-length extents, single aggregator, hole-heavy patterns) and
// equivalence with the planning loop it replaced.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "adio/aggregation.h"
#include "adio/pipeline.h"
#include "common/units.h"

namespace e10::adio {
namespace {

using namespace e10::units;

using Window = std::tuple<Offset, std::size_t, Offset, Offset>;

std::vector<Window> collect(RoundPlanner& planner,
                            const std::vector<Extent>& extents) {
  std::vector<Window> out;
  for (const Extent& e : extents) {
    planner.split(e, [&](Offset round, std::size_t agg, const Extent& sub) {
      out.emplace_back(round, agg, sub.offset, sub.length);
    });
  }
  return out;
}

TEST(RoundPlanner, EmptyRegionHasNoRoundsAndNoDomains) {
  RoundPlanner planner(Extent{0, 0}, 4, 1 * MiB, std::nullopt);
  EXPECT_EQ(planner.rounds(), 0);
  EXPECT_TRUE(planner.domains().empty());
}

TEST(RoundPlanner, ZeroLengthExtentEmitsNothing) {
  RoundPlanner planner(Extent{0, 4 * MiB}, 2, 1 * MiB, std::nullopt);
  const auto windows = collect(planner, {Extent{64, 0}, Extent{2 * MiB, 0}});
  EXPECT_TRUE(windows.empty());
}

TEST(RoundPlanner, SingleAggregatorOwnsEveryRound) {
  // One domain covering the region: rounds = ceil(len / cb).
  RoundPlanner planner(Extent{0, 10 * MiB}, 1, 4 * MiB, std::nullopt);
  ASSERT_EQ(planner.domains().size(), 1u);
  EXPECT_EQ(planner.rounds(), 3);
  const auto windows = collect(planner, {Extent{0, 10 * MiB}});
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], Window(0, 0, 0, 4 * MiB));
  EXPECT_EQ(windows[1], Window(1, 0, 4 * MiB, 4 * MiB));
  EXPECT_EQ(windows[2], Window(2, 0, 8 * MiB, 2 * MiB));
}

TEST(RoundPlanner, SingleRoundWhenBufferCoversTheDomain) {
  // cb >= domain size: the pipeline degenerates to one round.
  RoundPlanner planner(Extent{0, 8 * MiB}, 4, 16 * MiB, std::nullopt);
  EXPECT_EQ(planner.rounds(), 1);
}

TEST(RoundPlanner, WindowsPartitionTheInputExactly) {
  RoundPlanner planner(Extent{3, 1000000}, 3, 65536, std::nullopt);
  const auto windows = collect(planner, {Extent{3, 1000000}});
  Offset cursor = 3;
  Offset total = 0;
  for (const auto& [round, agg, off, len] : windows) {
    EXPECT_EQ(off, cursor);  // contiguous, in file order
    EXPECT_GT(len, 0);
    ASSERT_LT(agg, planner.domains().size());
    const Extent& dom = planner.domains()[agg];
    EXPECT_GE(off, dom.offset);
    EXPECT_LE(off + len, dom.end());
    EXPECT_EQ(round, (off - dom.offset) / 65536);
    cursor += len;
    total += len;
  }
  EXPECT_EQ(total, 1000000);
}

TEST(RoundPlanner, HoleHeavyPatternKeepsRoundAndDomainMaths) {
  // Sparse extents with large holes; cursor must skip domains cleanly.
  RoundPlanner planner(Extent{0, 64 * MiB}, 4, 4 * MiB, std::nullopt);
  ASSERT_EQ(planner.domains().size(), 4u);
  std::vector<Extent> sparse;
  for (Offset off = 0; off < 64 * MiB; off += 8 * MiB) {
    sparse.push_back(Extent{off, 4 * KiB});  // 4 KiB every 8 MiB
  }
  const auto windows = collect(planner, sparse);
  ASSERT_EQ(windows.size(), sparse.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& [round, agg, off, len] = windows[i];
    EXPECT_EQ(off, sparse[i].offset);
    EXPECT_EQ(len, sparse[i].length);
    const Extent& dom = planner.domains()[agg];
    EXPECT_TRUE(dom.contains(off));
  }
}

TEST(RoundPlanner, RewindAllowsASecondSortedPass) {
  RoundPlanner planner(Extent{0, 8 * MiB}, 2, 1 * MiB, std::nullopt);
  const auto first = collect(planner, {Extent{5 * MiB, 1 * MiB}});
  planner.rewind();
  const auto second = collect(planner, {Extent{1 * MiB, 1 * MiB}});
  EXPECT_FALSE(first.empty());
  EXPECT_FALSE(second.empty());
  EXPECT_EQ(std::get<2>(second.front()), 1 * MiB);
}

TEST(RoundPlanner, MatchesTheLegacyPlanningLoop) {
  // The planner replaced an inline loop in write_coll/read_coll; replicate
  // that loop here and require identical (round, aggregator, window) splits.
  const Extent region{4097, 33 * MiB + 131};
  const std::size_t aggregators = 5;
  const Offset cb = 3 * MiB;
  const std::optional<Offset> align = 4 * MiB;  // beegfs stripe alignment

  std::vector<Extent> extents;
  for (Offset off = region.offset; off < region.end(); off += 2 * MiB + 7) {
    extents.push_back(
        Extent{off, std::min<Offset>(1 * MiB + 13, region.end() - off)});
  }

  RoundPlanner planner(region, aggregators, cb, align);
  const auto windows = collect(planner, extents);

  const std::vector<Extent> domains =
      partition_file_domains(region, aggregators, align);
  EXPECT_EQ(domains, planner.domains());
  std::vector<Window> legacy;
  std::size_t a = 0;
  for (const Extent& e : extents) {
    Offset cursor = e.offset;
    while (cursor < e.end()) {
      while (a + 1 < domains.size() &&
             (domains[a].empty() || cursor >= domains[a].end())) {
        ++a;
      }
      const Extent& dom = domains[a];
      const Offset round = (cursor - dom.offset) / cb;
      const Offset window_end =
          std::min(dom.offset + (round + 1) * cb, dom.end());
      const Offset take = std::min(e.end(), window_end) - cursor;
      legacy.emplace_back(round, a, cursor, take);
      cursor += take;
    }
  }
  EXPECT_EQ(windows, legacy);

  Offset max_round = -1;
  for (const auto& w : windows) max_round = std::max(max_round, std::get<0>(w));
  EXPECT_LT(max_round, planner.rounds());
}

TEST(RoundPlanner, NodeAwarePlanIsFlatWhenDisabled) {
  // e10_two_level_flag=disable must reproduce the flat plan bit-for-bit.
  const Extent region{4097, 33 * MiB + 131};
  const std::vector<std::size_t> nodes{0, 0, 1, 1, 2};  // rpn > 1
  RoundPlanner flat(region, nodes.size(), 3 * MiB, std::nullopt);
  RoundPlanner off(region, nodes, 3 * MiB, std::nullopt, /*two_level=*/false);
  EXPECT_EQ(off.domains(), flat.domains());
  EXPECT_EQ(off.rounds(), flat.rounds());
}

TEST(RoundPlanner, NodeAwarePlanIsFlatWithOneRankPerNode) {
  // Every aggregator on its own node: nothing to gather intra-node, so the
  // two-level constructor must fall back to the flat split.
  const Extent region{0, 17 * MiB + 513};
  const std::vector<std::size_t> nodes{0, 1, 2, 3};
  RoundPlanner flat(region, nodes.size(), 4 * MiB, std::nullopt);
  RoundPlanner two(region, nodes, 4 * MiB, std::nullopt, /*two_level=*/true);
  EXPECT_EQ(two.domains(), flat.domains());
  EXPECT_EQ(two.rounds(), flat.rounds());
}

TEST(RoundPlanner, NodeAwarePlanDelegatesToStripeAlignmentWhenSet) {
  // align_unit set: the BeeGFS stripe-aligned flat split wins over the
  // node grouping (no stripe false-sharing trumps locality).
  const Extent region{4097, 33 * MiB + 131};
  const std::vector<std::size_t> nodes{0, 0, 0, 1, 1};
  RoundPlanner flat(region, nodes.size(), 3 * MiB, 4 * MiB);
  RoundPlanner two(region, nodes, 3 * MiB, 4 * MiB, /*two_level=*/true);
  EXPECT_EQ(two.domains(), flat.domains());
  EXPECT_EQ(two.rounds(), flat.rounds());
}

TEST(RoundPlanner, NodeAwareDomainsCoverRegionExactlyUnevenNodes) {
  // Uneven node groups and a tiny collective buffer: the node-aware domains
  // must still tile the region — contiguous, ascending, every byte once —
  // and stay cb-block-quantized except at the file tail.
  const Extent region{12345, 5 * MiB + 6789};
  const std::vector<std::size_t> nodes{0, 0, 0, 1, 1, 2};
  const Offset cb = 256 * KiB;
  const auto domains = partition_node_aware_domains(region, nodes, cb,
                                                    std::nullopt);
  ASSERT_EQ(domains.size(), nodes.size());
  Offset cursor = region.offset;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    EXPECT_EQ(domains[i].offset, cursor);
    if (i + 1 < domains.size()) {
      // Interior boundaries land on whole collective-buffer blocks.
      EXPECT_EQ(domains[i].length % cb, 0) << "domain " << i;
    }
    cursor = domains[i].end();
  }
  EXPECT_EQ(cursor, region.end());

  // The planner's round windows over those domains must partition the
  // region exactly, in file order.
  RoundPlanner planner(region, nodes, cb, std::nullopt, /*two_level=*/true);
  EXPECT_EQ(planner.domains(), domains);
  const auto windows = collect(planner, {region});
  Offset pos = region.offset;
  for (const auto& [round, agg, off, len] : windows) {
    EXPECT_EQ(off, pos);
    EXPECT_GT(len, 0);
    ASSERT_LT(agg, domains.size());
    EXPECT_GE(off, domains[agg].offset);
    EXPECT_LE(off + len, domains[agg].end());
    EXPECT_EQ(round, (off - domains[agg].offset) / cb);
    EXPECT_LE(len, cb);  // no window exceeds a collective buffer
    pos += len;
  }
  EXPECT_EQ(pos, region.end());
}

TEST(RoundPlanner, NodeAwareSharesAreProportionalToGroupSize) {
  // 3 aggregators on node 0, 1 on node 1: node 0's group serves a
  // contiguous span roughly three times node 1's, in whole cb blocks.
  const Extent region{0, 16 * MiB};
  const std::vector<std::size_t> nodes{0, 0, 0, 1};
  const Offset cb = 1 * MiB;
  const auto domains = partition_node_aware_domains(region, nodes, cb,
                                                    std::nullopt);
  ASSERT_EQ(domains.size(), 4u);
  const Offset node0 = domains[0].length + domains[1].length +
                       domains[2].length;
  const Offset node1 = domains[3].length;
  EXPECT_EQ(node0, 12 * MiB);
  EXPECT_EQ(node1, 4 * MiB);
  // Same-node aggregators form one contiguous span.
  EXPECT_EQ(domains[0].end(), domains[1].offset);
  EXPECT_EQ(domains[1].end(), domains[2].offset);
}

TEST(RoundPlanner, NodeAwareTinyRegionLeavesSomeDomainsEmpty) {
  // Region smaller than one cb block per aggregator: some domains collapse
  // to empty, but coverage and ordering of the rest still hold.
  const Extent region{512, 100 * KiB};
  const std::vector<std::size_t> nodes{0, 0, 1, 1};
  const auto domains = partition_node_aware_domains(region, nodes, 64 * KiB,
                                                    std::nullopt);
  ASSERT_EQ(domains.size(), 4u);
  Offset total = 0;
  Offset cursor = region.offset;
  for (const Extent& dom : domains) {
    if (!dom.empty()) {
      EXPECT_EQ(dom.offset, cursor);
      cursor = dom.end();
    }
    total += dom.length;
  }
  EXPECT_EQ(total, region.length);
  EXPECT_EQ(cursor, region.end());
}

}  // namespace
}  // namespace e10::adio
