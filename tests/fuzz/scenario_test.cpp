#include "fuzz/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/units.h"

namespace e10::fuzz {
namespace {

using namespace e10::units;

ScenarioLimits tiny_limits() {
  ScenarioLimits limits;
  limits.max_nodes = 2;
  limits.max_ranks_per_node = 2;
  limits.max_file_bytes = 512 * KiB;
  limits.max_calls = 2;
  return limits;
}

TEST(ScenarioTest, GenerateIsDeterministic) {
  const Scenario a = Scenario::generate(5, tiny_limits(), /*want_crash=*/false);
  const Scenario b = Scenario::generate(5, tiny_limits(), /*want_crash=*/false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_spec(), b.to_spec());
  EXPECT_EQ(a.concrete_pieces(), b.concrete_pieces());
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  const Scenario a = Scenario::generate(1, tiny_limits(), false);
  const Scenario b = Scenario::generate(2, tiny_limits(), false);
  EXPECT_NE(a.to_spec(), b.to_spec());
}

TEST(ScenarioTest, GenerateHonorsLimits) {
  ScenarioLimits one;
  one.max_nodes = 1;
  one.max_ranks_per_node = 1;
  one.max_calls = 1;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Scenario s = Scenario::generate(seed, one, /*want_crash=*/false);
    EXPECT_EQ(s.nodes, 1u);
    EXPECT_EQ(s.ranks_per_node, 1u);
    EXPECT_EQ(s.calls, 1);
    EXPECT_LE(s.file_bytes, one.max_file_bytes);
  }
}

TEST(ScenarioTest, WantCrashForcesRecoverableSetup) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Scenario s = Scenario::generate(seed, tiny_limits(), true);
    EXPECT_TRUE(s.wants_crash());
    EXPECT_TRUE(s.journal_hint);
    EXPECT_NE(s.cache, "disable");
    EXPECT_GT(s.crash_frac, 0.0);
    EXPECT_LE(s.crash_frac, 1.0);
  }
}

TEST(ScenarioTest, ConcretePiecesAreDisjointSortedAndInGrid) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Scenario s = Scenario::generate(seed, tiny_limits(), false);
    const auto pieces = s.concrete_pieces();
    ASSERT_FALSE(pieces.empty());
    // Sorted by (call, rank, offset).
    EXPECT_TRUE(std::is_sorted(
        pieces.begin(), pieces.end(),
        [](const PieceSpec& a, const PieceSpec& b) {
          return std::tie(a.call, a.rank, a.offset) <
                 std::tie(b.call, b.rank, b.offset);
        }));
    // Pairwise disjoint in file space, across ranks AND calls.
    std::vector<std::pair<Offset, Offset>> spans;
    for (const PieceSpec& p : pieces) {
      EXPECT_GE(p.call, 0);
      EXPECT_LT(p.call, s.calls);
      EXPECT_GE(p.rank, 0);
      EXPECT_LT(p.rank, s.ranks());
      EXPECT_GT(p.length, 0);
      EXPECT_LE(p.offset + p.length, s.file_bytes);
      spans.emplace_back(p.offset, p.offset + p.length);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].second, spans[i].first)
          << "overlap at span " << i << " (seed " << seed << ")";
    }
  }
}

TEST(ScenarioTest, ExplicitPiecesWinOverDerivation) {
  Scenario s;
  s.pieces = {{0, 0, 100, 50}};
  EXPECT_EQ(s.concrete_pieces(), s.pieces);
}

TEST(ScenarioTest, SpecRoundTripsExactly) {
  Scenario s = Scenario::generate(17, tiny_limits(), /*want_crash=*/true);
  s.pieces = s.concrete_pieces();  // explicit pieces serialize too
  s.crash_at = 123456789;
  s.bug = BugKind::drop_extent;
  const auto parsed = Scenario::parse(s.to_spec());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), s);
}

TEST(ScenarioTest, RoundTripWithoutOptionals) {
  const Scenario s = Scenario::generate(3, tiny_limits(), false);
  const auto parsed = Scenario::parse(s.to_spec());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), s);
}

TEST(ScenarioTest, ParseRejectsMalformedSpecs) {
  // Missing required keys.
  EXPECT_FALSE(Scenario::parse("").is_ok());
  EXPECT_FALSE(Scenario::parse("cb_buffer=65536\n").is_ok());
  EXPECT_FALSE(Scenario::parse("seed=1\n").is_ok());
  const std::string base = "seed=1\ncb_buffer=65536\n";
  // Bad values.
  EXPECT_FALSE(Scenario::parse(base + "nodes=0\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "cache=sometimes\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "pipeline=yes\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "crash_frac=1.5\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "bug=meltdown\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "no_equals_here\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "mystery=1\n").is_ok());
  // A fault plan that does not parse is rejected eagerly.
  EXPECT_FALSE(Scenario::parse(base + "faults=bogus~~\n").is_ok());
  // Pieces must be well-formed and inside the calls x ranks grid.
  EXPECT_FALSE(Scenario::parse(base + "piece=0,0,0\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "piece=0,0,0,0\n").is_ok());
  EXPECT_FALSE(Scenario::parse(base + "calls=1\npiece=1,0,0,10\n").is_ok());
  EXPECT_FALSE(
      Scenario::parse(base + "nodes=1\nranks_per_node=1\npiece=0,5,0,10\n")
          .is_ok());
}

TEST(ScenarioTest, ParseAcceptsCommentsAndBlankLines) {
  const auto parsed =
      Scenario::parse("# comment\n\nseed=9\ncb_buffer=65536\n# tail\n");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().seed, 9u);
}

}  // namespace
}  // namespace e10::fuzz
