#include "fuzz/shrink.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::fuzz {
namespace {

using namespace e10::units;

Scenario buggy_scenario() {
  Scenario s;
  s.seed = 21;
  s.nodes = 2;
  s.ranks_per_node = 2;
  s.file_bytes = 512 * KiB;
  s.calls = 2;
  s.cache = "enable";
  s.cb_buffer = 128 * KiB;
  s.bug = BugKind::drop_extent;
  return s;
}

RunOptions cheap_options() {
  RunOptions options;
  options.cross_check_hints = false;
  return options;
}

TEST(ShrinkTest, ShrinksKnownBugToOnePiece) {
  const Scenario failing = buggy_scenario();
  const std::size_t original_pieces = failing.concrete_pieces().size();
  ASSERT_GT(original_pieces, 1u);

  const ShrinkResult shrunk = shrink(failing, cheap_options());
  EXPECT_FALSE(shrunk.result.ok()) << "shrinking lost the failure";
  EXPECT_EQ(shrunk.minimal.pieces.size(), 1u);
  EXPECT_LT(shrunk.minimal.pieces.size(), original_pieces);
  EXPECT_GT(shrunk.evaluations, 0);
  EXPECT_FALSE(shrunk.exhausted);
}

TEST(ShrinkTest, MinimalReproIsSelfContainedAndReplays) {
  const ShrinkResult shrunk = shrink(buggy_scenario(), cheap_options());
  // The spec round-trips and the parsed scenario still fails the oracle.
  const auto parsed = Scenario::parse(shrunk.minimal.to_spec());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), shrunk.minimal);
  EXPECT_FALSE(run_scenario(parsed.value(), cheap_options()).ok());
}

TEST(ShrinkTest, DropsIrrelevantFaults) {
  Scenario failing = buggy_scenario();
  // The fault plan is not needed to reproduce the injected lost write; the
  // shrinker must strip it from the minimal repro.
  failing.fault_spec = "pfs_write=1%/timed_out;seed=5";
  const ShrinkResult shrunk = shrink(failing, cheap_options());
  EXPECT_FALSE(shrunk.result.ok());
  EXPECT_TRUE(shrunk.minimal.fault_spec.empty())
      << shrunk.minimal.fault_spec;
}

TEST(ShrinkTest, CrashMasksSilentLossByDesign) {
  // After a job kill, missing (never-written) data is legitimate — the
  // byte-completeness oracle only applies to runs that finished cleanly, so
  // a crash-point scenario cannot witness a silently dropped extent. Such a
  // scenario does not fail, and shrink() hands it back unchanged. Silent
  // loss is caught by the non-crash scenarios in every fuzz sweep.
  Scenario masked = buggy_scenario();
  masked.journal_hint = true;
  masked.crash_frac = 0.9;
  const ShrinkResult shrunk = shrink(masked, cheap_options());
  EXPECT_TRUE(shrunk.result.ok()) << shrunk.result.violations_text();
  EXPECT_EQ(shrunk.minimal, masked);
}

TEST(ShrinkTest, CompactsAwayIdleRanks) {
  const ShrinkResult shrunk = shrink(buggy_scenario(), cheap_options());
  // One surviving piece needs exactly one rank.
  EXPECT_EQ(shrunk.minimal.ranks(), 1);
}

TEST(ShrinkTest, PassingScenarioReturnsUnchanged) {
  Scenario passing = buggy_scenario();
  passing.bug = BugKind::none;
  const ShrinkResult shrunk = shrink(passing, cheap_options());
  EXPECT_TRUE(shrunk.result.ok()) << shrunk.result.violations_text();
  EXPECT_EQ(shrunk.minimal, passing);
}

TEST(ShrinkTest, BudgetIsRespected) {
  ShrinkOptions options;
  options.max_evals = 5;
  const ShrinkResult shrunk =
      shrink(buggy_scenario(), cheap_options(), options);
  EXPECT_LE(shrunk.evaluations, options.max_evals + 1);
  // Whatever was reached within budget must still fail.
  EXPECT_FALSE(shrunk.result.ok());
}

}  // namespace
}  // namespace e10::fuzz
