#include "fuzz/runner.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::fuzz {
namespace {

using namespace e10::units;

/// A small hand-built scenario: 2 nodes x 1 rank, one call, cached.
Scenario small_scenario() {
  Scenario s;
  s.seed = 11;
  s.nodes = 2;
  s.ranks_per_node = 1;
  s.file_bytes = 256 * KiB;
  s.calls = 1;
  s.cache = "enable";
  s.cb_buffer = 256 * KiB;
  return s;
}

TEST(RunnerTest, CleanScenarioPassesAllOracles) {
  const RunResult result = run_scenario(small_scenario());
  EXPECT_TRUE(result.ok()) << result.violations_text();
  EXPECT_TRUE(result.report.all_ok);
  EXPECT_FALSE(result.report.stopped);
  EXPECT_GT(result.report.extent_end, 0);
  EXPECT_EQ(result.report.races, 0u);
  EXPECT_EQ(result.report.cycles, 0u);
}

TEST(RunnerTest, UncachedScenarioPassesToo) {
  Scenario s = small_scenario();
  s.cache = "disable";
  const RunResult result = run_scenario(s);
  EXPECT_TRUE(result.ok()) << result.violations_text();
}

TEST(RunnerTest, KnownBugIsCaughtByByteOracle) {
  Scenario s = small_scenario();
  s.bug = BugKind::drop_extent;
  RunOptions options;
  options.cross_check_hints = false;
  const RunResult result = run_scenario(s, options);
  ASSERT_FALSE(result.ok());
  bool byte_violation = false;
  for (const OracleViolation& v : result.violations) {
    byte_violation |= v.oracle == "byte_equality";
  }
  EXPECT_TRUE(byte_violation) << result.violations_text();
  // The run itself looks healthy — the loss is silent; only the reference
  // model comparison notices. That is the point of the oracle.
  EXPECT_TRUE(result.report.all_ok);
}

TEST(RunnerTest, CrashPointStopsRunAndRecoveryVerifies) {
  Scenario s = small_scenario();
  s.journal_hint = true;
  s.flush = "flush_onclose";  // maximize dirty cached data at the kill
  s.crash_frac = 0.5;
  const RunResult result = run_scenario(s);
  EXPECT_TRUE(result.report.stopped);
  EXPECT_GT(result.report.crash_at, 0);
  EXPECT_TRUE(result.ok()) << result.violations_text();
}

TEST(RunnerTest, ExplicitCrashTimeWinsOverFraction) {
  Scenario s = small_scenario();
  s.journal_hint = true;
  s.crash_at = milliseconds(2);
  s.crash_frac = 0.99;  // must be ignored
  const RunResult result = run_scenario(s);
  EXPECT_TRUE(result.report.stopped);
  EXPECT_EQ(result.report.crash_at, milliseconds(2));
  EXPECT_TRUE(result.ok()) << result.violations_text();
}

TEST(RunnerTest, FaultedScenarioUpholdsNoGarbageInvariant) {
  Scenario s = small_scenario();
  // Aggressive transient faults: some collectives will surface errors, but
  // nothing in the file may ever mismatch the reference content.
  s.fault_spec = "pfs_write=20%/io_error;lfs_write=20%/io_error;seed=3";
  const RunResult result = run_scenario(s);
  EXPECT_TRUE(result.ok()) << result.violations_text();
}

TEST(RunnerTest, BadFaultSpecSurfacesAsEngineViolation) {
  Scenario s = small_scenario();
  s.fault_spec = "not-a-plan~~";
  const RunResult result = run_scenario(s);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.violations.front().oracle, "engine");
}

TEST(RunnerTest, ProbeEndTimeIsPositiveAndIgnoresCrash) {
  Scenario s = small_scenario();
  s.crash_frac = 0.5;
  const Time end = probe_end_time(s);
  EXPECT_GT(end, 0);
}

TEST(RunnerTest, GeneratedScenariosPassAcrossSeeds) {
  ScenarioLimits limits;
  limits.max_nodes = 2;
  limits.max_ranks_per_node = 2;
  limits.max_file_bytes = 512 * KiB;
  limits.max_calls = 2;
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    const Scenario s =
        Scenario::generate(seed, limits, /*want_crash=*/seed % 2 == 0);
    const RunResult result = run_scenario(s);
    EXPECT_TRUE(result.ok())
        << "seed " << seed << ":\n" << result.violations_text();
  }
}

}  // namespace
}  // namespace e10::fuzz
