// Satellite: seed determinism. The fuzzer's replay/shrink workflow depends
// on runs being pure functions of the scenario — the same seed must produce
// byte-identical run reports and identical shrink results every time.
#include <gtest/gtest.h>

#include "common/units.h"
#include "fuzz/runner.h"
#include "fuzz/shrink.h"

namespace e10::fuzz {
namespace {

using namespace e10::units;

ScenarioLimits tiny_limits() {
  ScenarioLimits limits;
  limits.max_nodes = 2;
  limits.max_ranks_per_node = 2;
  limits.max_file_bytes = 512 * KiB;
  limits.max_calls = 2;
  return limits;
}

TEST(DeterminismTest, SameSeedSameRunReport) {
  for (std::uint64_t seed : {42u, 43u, 44u}) {
    const Scenario s = Scenario::generate(seed, tiny_limits(), false);
    const RunResult a = run_scenario(s);
    const RunResult b = run_scenario(s);
    EXPECT_EQ(a.report.to_text(), b.report.to_text()) << "seed " << seed;
    EXPECT_EQ(a.violations_text(), b.violations_text()) << "seed " << seed;
  }
}

TEST(DeterminismTest, CrashAndRecoveryAreDeterministic) {
  const Scenario s = Scenario::generate(77, tiny_limits(), /*want_crash=*/true);
  const RunResult a = run_scenario(s);
  const RunResult b = run_scenario(s);
  EXPECT_TRUE(a.report.stopped);
  EXPECT_EQ(a.report.to_text(), b.report.to_text());
  EXPECT_EQ(a.violations_text(), b.violations_text());
}

TEST(DeterminismTest, FaultedRunsAreDeterministic) {
  Scenario s = Scenario::generate(55, tiny_limits(), false);
  s.fault_spec = "pfs_write=5%/timed_out;lfs_write=5%/io_error;seed=9";
  const RunResult a = run_scenario(s);
  const RunResult b = run_scenario(s);
  EXPECT_EQ(a.report.to_text(), b.report.to_text());
}

TEST(DeterminismTest, ShrinkTwiceGivesIdenticalMinimalRepro) {
  Scenario failing = Scenario::generate(91, tiny_limits(), false);
  failing.bug = BugKind::drop_extent;
  RunOptions options;
  options.cross_check_hints = false;
  const ShrinkResult a = shrink(failing, options);
  const ShrinkResult b = shrink(failing, options);
  ASSERT_FALSE(a.result.ok());
  EXPECT_EQ(a.minimal, b.minimal);
  EXPECT_EQ(a.minimal.to_spec(), b.minimal.to_spec());
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.result.report.to_text(), b.result.report.to_text());
}

}  // namespace
}  // namespace e10::fuzz
