#include "pfs/stripe.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::pfs {
namespace {

using namespace e10::units;

TEST(StripeLayout, TargetRoundRobin) {
  const StripeLayout layout(4 * MiB, 4);
  EXPECT_EQ(layout.target_of(0), 0u);
  EXPECT_EQ(layout.target_of(4 * MiB), 1u);
  EXPECT_EQ(layout.target_of(8 * MiB), 2u);
  EXPECT_EQ(layout.target_of(16 * MiB), 0u);  // wraps
  EXPECT_EQ(layout.target_of(4 * MiB - 1), 0u);
}

TEST(StripeLayout, FirstTargetRotation) {
  const StripeLayout layout(1 * MiB, 4, /*first_target=*/2);
  EXPECT_EQ(layout.target_of(0), 2u);
  EXPECT_EQ(layout.target_of(1 * MiB), 3u);
  EXPECT_EQ(layout.target_of(2 * MiB), 0u);
}

TEST(StripeLayout, Alignment) {
  const StripeLayout layout(4 * MiB, 4);
  EXPECT_EQ(layout.align_down(5 * MiB), 4 * MiB);
  EXPECT_EQ(layout.align_up(5 * MiB), 8 * MiB);
  EXPECT_EQ(layout.align_up(8 * MiB), 8 * MiB);
  EXPECT_EQ(layout.stripe_index_of(9 * MiB), 2);
}

TEST(StripeLayout, ChunksSplitAtStripeBoundaries) {
  const StripeLayout layout(4 * MiB, 4);
  // 10 MiB starting at 3 MiB: pieces of 1, 4, 4, 1 MiB.
  const auto chunks = layout.chunks(Extent{3 * MiB, 10 * MiB});
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].extent, (Extent{3 * MiB, 1 * MiB}));
  EXPECT_EQ(chunks[0].target, 0u);
  EXPECT_EQ(chunks[1].extent, (Extent{4 * MiB, 4 * MiB}));
  EXPECT_EQ(chunks[1].target, 1u);
  EXPECT_EQ(chunks[2].extent, (Extent{8 * MiB, 4 * MiB}));
  EXPECT_EQ(chunks[2].target, 2u);
  EXPECT_EQ(chunks[3].extent, (Extent{12 * MiB, 1 * MiB}));
  EXPECT_EQ(chunks[3].target, 3u);
}

TEST(StripeLayout, ChunkTargetOffsetsAreContiguousPerTarget) {
  const StripeLayout layout(1 * MiB, 2);
  // Stripes 0,2,4 land on target 0 at object offsets 0,1,2 MiB.
  const auto chunks = layout.chunks(Extent{0, 6 * MiB});
  ASSERT_EQ(chunks.size(), 6u);
  EXPECT_EQ(chunks[0].target_offset, 0);
  EXPECT_EQ(chunks[2].target_offset, 1 * MiB);  // stripe 2, target 0
  EXPECT_EQ(chunks[4].target_offset, 2 * MiB);  // stripe 4, target 0
  EXPECT_EQ(chunks[1].target_offset, 0);        // stripe 1, target 1
}

TEST(StripeLayout, ChunkOfPartialStripeHasInnerOffset) {
  const StripeLayout layout(1 * MiB, 2);
  const auto chunks = layout.chunks(Extent{512 * KiB, 256 * KiB});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].target_offset, 512 * KiB);
}

TEST(StripeLayout, EmptyExtentNoChunks) {
  const StripeLayout layout(1 * MiB, 2);
  EXPECT_TRUE(layout.chunks(Extent{100, 0}).empty());
}

TEST(StripeLayout, InvalidParamsThrow) {
  EXPECT_THROW(StripeLayout(0, 4), std::logic_error);
  EXPECT_THROW(StripeLayout(1 * MiB, 0), std::logic_error);
}

}  // namespace
}  // namespace e10::pfs
