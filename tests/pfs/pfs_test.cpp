#include "pfs/pfs.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::pfs {
namespace {

using namespace e10::units;

// 2 compute nodes (0..1) + 4 data servers (2..5) + metadata (6).
struct Fixture {
  explicit Fixture(PfsParams params = PfsParams{})
      : fabric(7, net::FabricParams{}),
        pfs(engine, fabric, {2, 3, 4, 5}, 6, params, /*seed=*/1234) {}

  void run(std::function<void()> body) {
    engine.spawn("client", std::move(body));
    engine.run();
  }

  sim::Engine engine;
  net::Fabric fabric;
  Pfs pfs;
};

PfsParams quiet_params() {
  PfsParams p;
  p.target.jitter_sigma = 0.0;  // deterministic service for exact asserts
  return p;
}

TEST(Pfs, CreateWriteReadBack) {
  Fixture f(quiet_params());
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto handle = f.pfs.open("/pfs/data", 0, opts);
    ASSERT_TRUE(handle.is_ok());
    std::vector<std::byte> payload(1024);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::byte>(i & 0xFF);
    }
    ASSERT_TRUE(f.pfs.write(handle.value(), 100, DataView::real(payload)));
    const auto read = f.pfs.read(handle.value(), 100, 1024);
    ASSERT_TRUE(read.is_ok());
    ASSERT_EQ(read.value().size(), 1024);
    for (Offset i = 0; i < 1024; ++i) {
      EXPECT_EQ(read.value().byte_at(i), payload[static_cast<std::size_t>(i)]);
    }
    ASSERT_TRUE(f.pfs.close(handle.value()));
  });
}

TEST(Pfs, OpenMissingFileFails) {
  Fixture f;
  f.run([&] {
    const auto handle = f.pfs.open("/pfs/nope", 0, OpenOptions{});
    EXPECT_FALSE(handle.is_ok());
    EXPECT_EQ(handle.code(), Errc::no_such_file);
  });
}

TEST(Pfs, ExclusiveCreateFailsOnExisting) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    ASSERT_TRUE(f.pfs.open("/pfs/x", 0, opts).is_ok());
    opts.exclusive = true;
    const auto again = f.pfs.open("/pfs/x", 0, opts);
    EXPECT_EQ(again.code(), Errc::file_exists);
  });
}

TEST(Pfs, TruncateClearsContent) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h1 = f.pfs.open("/pfs/t", 0, opts);
    ASSERT_TRUE(f.pfs.write(h1.value(), 0, DataView::synthetic(1, 0, 4096)));
    opts.truncate = true;
    const auto h2 = f.pfs.open("/pfs/t", 1, opts);
    const auto info = f.pfs.stat(h2.value());
    EXPECT_EQ(info.value().size, 0);
  });
}

TEST(Pfs, StripingHintsHonoredAtCreate) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    opts.striping.stripe_unit = 1 * MiB;
    opts.striping.stripe_count = 2;
    const auto h = f.pfs.open("/pfs/striped", 0, opts);
    const auto info = f.pfs.stat(h.value());
    EXPECT_EQ(info.value().stripe_unit, 1 * MiB);
    EXPECT_EQ(info.value().stripe_count, 2u);
  });
}

TEST(Pfs, StripeCountClampedToServers) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    opts.striping.stripe_count = 99;
    const auto h = f.pfs.open("/pfs/wide", 0, opts);
    EXPECT_EQ(f.pfs.stat(h.value()).value().stripe_count, 4u);
  });
}

TEST(Pfs, ReadOnlyHandleRejectsWrite) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    ASSERT_TRUE(f.pfs.open("/pfs/ro", 0, opts).is_ok());
    OpenOptions ro;
    ro.mode = OpenMode::read_only;
    const auto h = f.pfs.open("/pfs/ro", 0, ro);
    const Status s = f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, 16));
    EXPECT_EQ(s.code(), Errc::permission_denied);
  });
}

TEST(Pfs, ReadPastEofClamps) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/eof", 0, opts);
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(2, 0, 100)));
    const auto r = f.pfs.read(h.value(), 50, 1000);
    EXPECT_EQ(r.value().size(), 50);
    const auto beyond = f.pfs.read(h.value(), 500, 10);
    EXPECT_EQ(beyond.value().size(), 0);
  });
}

TEST(Pfs, UnlinkRemovesName) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    ASSERT_TRUE(f.pfs.open("/pfs/gone", 0, opts).is_ok());
    EXPECT_TRUE(f.pfs.exists("/pfs/gone"));
    ASSERT_TRUE(f.pfs.unlink("/pfs/gone"));
    EXPECT_FALSE(f.pfs.exists("/pfs/gone"));
    EXPECT_EQ(f.pfs.unlink("/pfs/gone").code(), Errc::no_such_file);
  });
}

TEST(Pfs, WriteTimeScalesWithSize) {
  Fixture f(quiet_params());
  Time small_time = 0, large_time = 0;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/perf", 0, opts);
    Time t0 = f.engine.now();
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, 1 * MiB)));
    small_time = f.engine.now() - t0;
    t0 = f.engine.now();
    ASSERT_TRUE(
        f.pfs.write(h.value(), 64 * MiB, DataView::synthetic(1, 0, 64 * MiB)));
    large_time = f.engine.now() - t0;
  });
  EXPECT_GT(large_time, 4 * small_time);
}

TEST(Pfs, StripedWriteUsesAllServers) {
  Fixture f(quiet_params());
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/wide", 0, opts);
    // 16 MiB spans 4 stripes of 4 MiB across 4 servers.
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, 16 * MiB)));
  });
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(f.pfs.server_device(s).bytes_written(), 0) << "server " << s;
  }
}

TEST(Pfs, ParallelismAcrossServersBeatsSingleServer) {
  // Writing 64 MiB striped over 4 servers should be much faster than
  // writing 64 MiB to a 1-server file.
  auto timed_write = [](std::size_t stripe_count) {
    PfsParams params = quiet_params();
    Fixture f(params);
    Time elapsed = 0;
    f.run([&] {
      OpenOptions opts;
      opts.create = true;
      opts.striping.stripe_count = stripe_count;
      const auto h = f.pfs.open("/pfs/p", 0, opts);
      const Time t0 = f.engine.now();
      // Durable write: completion reflects the media, not the write-back
      // buffer, so striping parallelism is observable.
      EXPECT_TRUE(f.pfs.write_durable(h.value(), 0,
                                      DataView::synthetic(1, 0, 64 * MiB)));
      elapsed = f.engine.now() - t0;
    });
    return elapsed;
  };
  const Time wide = timed_write(4);
  const Time narrow = timed_write(1);
  EXPECT_LT(wide, narrow);
  EXPECT_GT(narrow, 2 * wide);
}

TEST(Pfs, LockHandoffPenalizesStripeFalseSharing) {
  // Two clients writing inside the same 4 MiB stripe pay a lock handoff
  // (revoke/regrant) when extent locking is on — the false-sharing cost of
  // stripe-misaligned file domains (paper refs [19][20]).
  auto timed_pair = [](bool locking) {
    PfsParams params = quiet_params();
    params.extent_locking = locking;
    Fixture f(params);
    Time done = 0;
    f.engine.spawn("c1", [&] {
      OpenOptions opts;
      opts.create = true;
      const auto h = f.pfs.open("/pfs/lock", 0, opts);
      EXPECT_TRUE(
          f.pfs.write_durable(h.value(), 0, DataView::synthetic(1, 0, MiB)));
    });
    f.engine.spawn("c2", [&] {
      OpenOptions opts;
      opts.create = true;
      const auto h = f.pfs.open("/pfs/lock", 1, opts);
      EXPECT_TRUE(f.pfs.write_durable(h.value(), 1 * MiB,
                                      DataView::synthetic(2, 0, MiB)));
      done = std::max(done, f.engine.now());
    });
    f.engine.run();
    return std::pair(done, f.pfs.stats().lock_handoffs);
  };
  const auto [locked_time, locked_handoffs] = timed_pair(true);
  const auto [lockless_time, lockless_handoffs] = timed_pair(false);
  EXPECT_GT(locked_handoffs, 0u);
  EXPECT_EQ(lockless_handoffs, 0u);
  EXPECT_GE(locked_time, lockless_time + milliseconds(2));
}

TEST(Pfs, SameClientRetainsStripeLockWithoutHandoff) {
  PfsParams params = quiet_params();
  Fixture f(params);
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/own", 0, opts);
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, MiB)));
    ASSERT_TRUE(f.pfs.write(h.value(), MiB, DataView::synthetic(1, 0, MiB)));
  });
  // The write-back ack lets the client issue the second write while the
  // media still holds its own lock -- it may wait, but never pays the
  // cross-client handoff penalty.
  EXPECT_EQ(f.pfs.stats().lock_handoffs, 0u);
}

TEST(Pfs, StatsAccumulate) {
  Fixture f;
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/stats", 0, opts);
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, 1000)));
    (void)f.pfs.read(h.value(), 0, 500);
    ASSERT_TRUE(f.pfs.close(h.value()));
  });
  EXPECT_EQ(f.pfs.stats().writes, 1u);
  EXPECT_EQ(f.pfs.stats().bytes_written, 1000);
  EXPECT_EQ(f.pfs.stats().reads, 1u);
  EXPECT_EQ(f.pfs.stats().bytes_read, 500);
  EXPECT_GE(f.pfs.stats().metadata_ops, 2u);  // open + close
  EXPECT_EQ(f.pfs.open_handles(), 0u);
}

TEST(Pfs, BadHandleRejected) {
  Fixture f;
  f.run([&] {
    EXPECT_EQ(f.pfs.write(999, 0, DataView::synthetic(1, 0, 8)).code(),
              Errc::invalid_argument);
    EXPECT_EQ(f.pfs.read(999, 0, 8).code(), Errc::invalid_argument);
    EXPECT_EQ(f.pfs.close(999).code(), Errc::invalid_argument);
    EXPECT_EQ(f.pfs.sync(999).code(), Errc::invalid_argument);
  });
}

TEST(Pfs, SlowServerSkewsCompletion) {
  // With one server at 25% speed, a striped write takes much longer than
  // with balanced servers — the slowest-server effect behind the paper's
  // global synchronisation cost.
  auto timed = [](std::vector<double> factors) {
    PfsParams params = quiet_params();
    params.speed_factors = std::move(factors);
    Fixture f(params);
    Time elapsed = 0;
    f.run([&] {
      OpenOptions opts;
      opts.create = true;
      const auto h = f.pfs.open("/pfs/slow", 0, opts);
      const Time t0 = f.engine.now();
      EXPECT_TRUE(f.pfs.write_durable(h.value(), 0,
                                      DataView::synthetic(1, 0, 16 * MiB)));
      elapsed = f.engine.now() - t0;
    });
    return elapsed;
  };
  const Time balanced = timed({1.0, 1.0, 1.0, 1.0});
  const Time skewed = timed({1.0, 0.25, 1.0, 1.0});
  EXPECT_GT(skewed, 2 * balanced);
}

}  // namespace
}  // namespace e10::pfs
