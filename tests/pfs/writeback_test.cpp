// Write-back vs durable write semantics of the PFS model.
#include <gtest/gtest.h>

#include "common/units.h"
#include "pfs/pfs.h"

namespace e10::pfs {
namespace {

using namespace e10::units;

struct Fixture {
  explicit Fixture(PfsParams params)
      : fabric(7, net::FabricParams{}),
        pfs(engine, fabric, {2, 3, 4, 5}, 6, params, /*seed=*/1) {}

  void run(std::function<void()> body) {
    engine.spawn("client", std::move(body));
    engine.run();
  }

  sim::Engine engine;
  net::Fabric fabric;
  Pfs pfs;
};

PfsParams quiet() {
  PfsParams p;
  p.target.jitter_sigma = 0.0;
  return p;
}

TEST(WriteBack, OrdinaryWriteAcksAtMemorySpeed) {
  Fixture f(quiet());
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/wb", 0, opts);
    const Time t0 = f.engine.now();
    // 64 MiB fits comfortably in the 1.5 GiB write-back window: the ack
    // returns at network+CPU speed, not media speed.
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, 64 * MiB)));
    const Time buffered = f.engine.now() - t0;
    EXPECT_LT(buffered, milliseconds(60));
  });
}

TEST(WriteBack, DurableWriteWaitsForMedia) {
  Fixture f(quiet());
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/d", 0, opts);
    const Time t0 = f.engine.now();
    ASSERT_TRUE(
        f.pfs.write_durable(h.value(), 0, DataView::synthetic(1, 0, 64 * MiB)));
    const Time durable = f.engine.now() - t0;
    // 64 MiB over 4 targets at 560 MiB/s each: >= ~28 ms of media time.
    EXPECT_GT(durable, milliseconds(25));
  });
}

TEST(WriteBack, WindowFillsAndThrottles) {
  PfsParams params = quiet();
  params.server_writeback_bytes = 8 * MiB;  // small window
  Fixture f(params);
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    opts.striping.stripe_count = 1;  // single target: easy arithmetic
    const auto h = f.pfs.open("/pfs/t", 0, opts);
    // First write fills the window cheaply...
    const Time t0 = f.engine.now();
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, 8 * MiB)));
    const Time first = f.engine.now() - t0;
    // ...sustained writes are throttled to media speed.
    const Time t1 = f.engine.now();
    for (int i = 1; i <= 8; ++i) {
      ASSERT_TRUE(f.pfs.write(h.value(), i * 8 * MiB,
                              DataView::synthetic(1, 0, 8 * MiB)));
    }
    const Time sustained = (f.engine.now() - t1) / 8;
    // First write pays network transfer (~6.5 ms for 8 MiB) but no media.
    EXPECT_LT(first, milliseconds(8));
    EXPECT_GT(sustained, milliseconds(10));  // ~14 ms media per 8 MiB
  });
}

TEST(WriteBack, ZeroWindowMakesOrdinaryWritesSynchronous) {
  PfsParams params = quiet();
  params.server_writeback_bytes = 0;
  Fixture f(params);
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/sync", 0, opts);
    const Time t0 = f.engine.now();
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(1, 0, 64 * MiB)));
    const Time elapsed = f.engine.now() - t0;
    EXPECT_GT(elapsed, milliseconds(25));  // media-bound, like durable
  });
}

TEST(WriteBack, DurableContentIdenticalToOrdinary) {
  Fixture f(quiet());
  f.run([&] {
    OpenOptions opts;
    opts.create = true;
    const auto h = f.pfs.open("/pfs/c", 0, opts);
    ASSERT_TRUE(f.pfs.write(h.value(), 0, DataView::synthetic(7, 0, 1024)));
    ASSERT_TRUE(
        f.pfs.write_durable(h.value(), 1024, DataView::synthetic(7, 1024, 1024)));
  });
  const ByteStore* store = f.pfs.peek("/pfs/c");
  EXPECT_EQ(store->byte_at(100), DataView::pattern_byte(7, 100));
  EXPECT_EQ(store->byte_at(1500), DataView::pattern_byte(7, 1500));
}

}  // namespace
}  // namespace e10::pfs
