#include "obs/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/units.h"

namespace e10::obs {
namespace {

using namespace e10::units;

TEST(Report, PhaseTableCoversEveryPhase) {
  sim::Engine engine;
  prof::Profiler profiler(engine, 2);
  profiler.record(0, prof::Phase::exchange, seconds(1));
  profiler.record(1, prof::Phase::exchange, seconds(3));
  const Json table = phase_table_json(profiler);
  EXPECT_EQ(table.size(), prof::kPhaseCount);
  const Json& row = table.at("exchange");
  EXPECT_DOUBLE_EQ(row.at("min_s").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(row.at("avg_s").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(row.at("max_s").as_number(), 3.0);
}

TEST(Report, RunReportStructure) {
  sim::Engine engine;
  prof::Profiler profiler(engine, 1);
  MetricsRegistry metrics;
  metrics.counter("cache.writes").add(7);

  RunReportInputs inputs;
  inputs.config.emplace_back("combo", "8_4m");
  inputs.config.emplace_back("hint.e10_cache", "enable");
  inputs.profiler = &profiler;
  inputs.metrics = &metrics;
  inputs.derived["perceived_bandwidth_gib"] = 1.5;

  const Json report = run_report_json(inputs);
  EXPECT_EQ(report.at("config").at("combo").as_string(), "8_4m");
  EXPECT_EQ(report.at("config").at("hint.e10_cache").as_string(), "enable");
  EXPECT_EQ(report.at("metrics").at("counters").at("cache.writes").as_int(),
            7);
  EXPECT_TRUE(report.at("phases").find("write_contig") != nullptr);
  EXPECT_DOUBLE_EQ(
      report.at("derived").at("perceived_bandwidth_gib").as_number(), 1.5);

  // The dump parses back (the CI smoke test relies on this).
  EXPECT_TRUE(Json::parse(report.dump(2)).is_ok());
}

TEST(Report, FlushOverlapRatio) {
  sim::Engine engine;
  prof::Profiler profiler(engine, 2);
  MetricsRegistry metrics;

  // No sync work at all: ratio is 0 by definition.
  EXPECT_DOUBLE_EQ(flush_overlap_ratio(metrics, profiler), 0.0);

  // 10 s of sync work; rank 0 visibly waited 2 s on its grequests, rank 1
  // 0.5 s => hidden = 10 - 2.5 = 7.5 => ratio 0.75. not_hidden_sync (the
  // collective-close time) must not enter the ratio.
  metrics.counter(names::kSyncBusyNs).add(seconds(10));
  profiler.record(0, prof::Phase::flush_wait, seconds(2));
  profiler.record(0, prof::Phase::not_hidden_sync, seconds(3));
  profiler.record(1, prof::Phase::flush_wait, milliseconds(500));
  profiler.record(1, prof::Phase::not_hidden_sync, seconds(3));
  EXPECT_DOUBLE_EQ(flush_overlap_ratio(metrics, profiler), 0.75);

  // Visible wait above the busy total clamps to 0, never negative.
  profiler.record(1, prof::Phase::flush_wait, seconds(20));
  EXPECT_DOUBLE_EQ(flush_overlap_ratio(metrics, profiler), 0.0);
}

TEST(Report, WriteJsonFileRoundTrips) {
  Json doc = Json::object();
  doc.set("answer", Json::integer(42));
  const std::string path = ::testing::TempDir() + "e10_report_test.json";
  ASSERT_TRUE(write_json_file(path, doc).is_ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Json::parse(buffer.str());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().at("answer").as_int(), 42);
  std::remove(path.c_str());

  EXPECT_FALSE(write_json_file("/nonexistent-dir/x.json", doc).is_ok());
}

}  // namespace
}  // namespace e10::obs
