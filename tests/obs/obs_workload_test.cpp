// End-to-end observability: run a real experiment on the small testbed and
// check that the trace, the metrics and the derived quantities line up with
// what the pipeline actually did.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/units.h"
#include "obs/json.h"
#include "workloads/experiment.h"
#include "workloads/workload.h"

namespace e10::workloads {
namespace {

using namespace e10::units;

ExperimentSpec small_spec(CacheCase cache_case, Time compute_delay) {
  ExperimentSpec spec;
  spec.testbed = small_testbed();
  spec.aggregators = 2;
  spec.cb_buffer_size = 256 * KiB;
  spec.cache_case = cache_case;
  spec.workflow.base_path = "/pfs/obs";
  spec.workflow.num_files = 3;
  spec.workflow.compute_delay = compute_delay;
  spec.workflow.include_last_phase = false;
  return spec;
}

WorkloadFactory tiny_ior() {
  return [](const TestbedParams&) {
    IorWorkload::Params params;
    params.block_bytes = 256 * KiB;
    params.segments = 2;
    return std::make_unique<IorWorkload>(params);
  };
}

TEST(ObsWorkload, LongComputeHidesTheFlush) {
  // The paper's point: with enough compute between files, the background
  // sync disappears behind it. The overlap ratio must see that.
  const ExperimentResult result =
      run_experiment(small_spec(CacheCase::enabled, seconds(10)), tiny_ior());
  EXPECT_GT(result.sync.requests, 0u);
  EXPECT_GT(result.sync.bytes_synced, 0);
  EXPECT_GT(result.sync.staging_chunks, 0u);
  EXPECT_GE(result.sync.queue_depth_high_water, 1u);
  EXPECT_GT(result.sync.busy_time, 0);
  EXPECT_GT(result.flush_overlap_ratio, 0.0);
  EXPECT_LE(result.flush_overlap_ratio, 1.0);
  // With a 10 s compute phase and ~1.5 MiB of data, nearly all of the sync
  // should be hidden.
  EXPECT_GT(result.flush_overlap_ratio, 0.5);
}

TEST(ObsWorkload, NoComputeExposesTheFlush) {
  const ExperimentResult hidden =
      run_experiment(small_spec(CacheCase::enabled, seconds(10)), tiny_ior());
  const ExperimentResult exposed =
      run_experiment(small_spec(CacheCase::enabled, 0), tiny_ior());
  EXPECT_LT(exposed.flush_overlap_ratio, hidden.flush_overlap_ratio);
}

TEST(ObsWorkload, CacheDisabledHasNoSyncWork) {
  const ExperimentResult result = run_experiment(
      small_spec(CacheCase::disabled, milliseconds(100)), tiny_ior());
  EXPECT_EQ(result.sync.requests, 0u);
  EXPECT_DOUBLE_EQ(result.flush_overlap_ratio, 0.0);
  // The report is emitted regardless of the cache case.
  EXPECT_TRUE(result.report.is_object());
}

TEST(ObsWorkload, RunReportMatchesTheRun) {
  const ExperimentResult result = run_experiment(
      small_spec(CacheCase::enabled, milliseconds(500)), tiny_ior());
  const obs::Json& report = result.report;
  EXPECT_EQ(report.at("config").at("combo").as_string(), result.combo);
  EXPECT_EQ(report.at("config").at("cache_case").as_string(),
            "cache_enabled");
  EXPECT_EQ(report.at("config").at("ranks").as_string(), "8");
  EXPECT_EQ(report.at("config").at("hint.e10_cache").as_string(), "enable");
  EXPECT_DOUBLE_EQ(
      report.at("derived").at("perceived_bandwidth_gib").as_number(),
      result.bandwidth_gib);
  EXPECT_DOUBLE_EQ(report.at("derived").at("flush_overlap_ratio").as_number(),
                   result.flush_overlap_ratio);
  // Metrics snapshot: the cache counted every collective write, and the
  // PFS device counters were exported under pfs.server.<i>.device.
  const obs::Json& counters = report.at("metrics").at("counters");
  EXPECT_GT(counters.at("cache.writes").as_int(), 0);
  EXPECT_GT(counters.at("cache.sync.bytes_synced").as_int(), 0);
  EXPECT_TRUE(counters.find("pfs.server.0.requests") != nullptr);
  EXPECT_TRUE(counters.find("pfs.server.0.device.bytes_written") != nullptr);
  // The phase table carries the breakdown the figures are built from.
  EXPECT_GE(report.at("phases").at("write_contig").at("max_s").as_number(),
            0.0);
}

TEST(ObsWorkload, TraceShowsThePipelinePerRank) {
  ExperimentSpec spec = small_spec(CacheCase::enabled, milliseconds(500));
  spec.trace = true;
  const ExperimentResult result = run_experiment(spec, tiny_ior());
  ASSERT_FALSE(result.trace_json.empty());

  const auto parsed = obs::Json::parse(result.trace_json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const obs::Json& events = parsed.value().at("traceEvents");

  std::set<std::string> span_names;
  std::set<std::int64_t> span_tracks;
  std::set<std::string> track_names;
  for (const obs::Json& e : events.elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "X") {
      span_names.insert(e.at("name").as_string());
      span_tracks.insert(e.at("tid").as_int());
    } else if (ph == "M" && e.at("name").as_string() == "thread_name") {
      track_names.insert(e.at("args").at("name").as_string());
    }
  }
  // The collective-write pipeline phases, on every rank's track.
  for (const char* phase : {"shuffle_all2all", "exchange", "write_contig",
                            "write_round", "compute", "flush_batch"}) {
    EXPECT_TRUE(span_names.count(phase) == 1) << phase;
  }
  EXPECT_GE(span_tracks.size(), 8u);  // 8 ranks + sync-thread tracks
  EXPECT_TRUE(track_names.count("rank 0") == 1);
  EXPECT_TRUE(track_names.count("rank 7") == 1);
  // Sync threads get their own labelled tracks.
  bool has_sync_track = false;
  for (const std::string& name : track_names) {
    if (name.find("sync r") == 0) has_sync_track = true;
  }
  EXPECT_TRUE(has_sync_track);
}

TEST(ObsWorkload, CriticalPathAttributesTheRun) {
  ExperimentSpec spec = small_spec(CacheCase::enabled, milliseconds(500));
  spec.critical_path = true;
  const ExperimentResult result = run_experiment(spec, tiny_ior());

  // The analyzer names a bottleneck and accounts for (nearly) all of the
  // end-to-end virtual time; the trace-vs-profiler self-check agrees
  // within the acceptance tolerance.
  EXPECT_FALSE(result.bottleneck.empty());
  EXPECT_GE(result.attributed_fraction, 0.95);
  EXPECT_LE(result.attributed_fraction, 1.0 + 1e-9);
  ASSERT_TRUE(result.critical_path.is_object());
  const obs::Json& cp = result.critical_path;
  EXPECT_LE(cp.at("phase_consistency_dev").as_number(), 0.05);
  EXPECT_FALSE(cp.at("truncated").as_bool());
  EXPECT_GT(cp.at("hops").as_int(), 0);
  EXPECT_GT(cp.at("total_s").as_number(), 0.0);
  EXPECT_TRUE(cp.find("categories") != nullptr);
  EXPECT_TRUE(cp.find("phase_tails") != nullptr);
  EXPECT_GE(cp.at("phase_tails").at("exchange").at("p99_s").as_number(),
            cp.at("phase_tails").at("exchange").at("p50_s").as_number());
  // The run report embeds the same section.
  EXPECT_TRUE(result.report.find("critical_path") != nullptr);
  // critical_path alone does not produce a trace file.
  EXPECT_TRUE(result.trace_json.empty());
  EXPECT_EQ(result.trace_open_spans, 0u);
}

TEST(ObsWorkload, CriticalPathAcrossCacheCases) {
  // Attribution holds on all three measurement cases, not just the one the
  // paper features.
  for (const CacheCase cache_case :
       {CacheCase::disabled, CacheCase::enabled, CacheCase::theoretical}) {
    ExperimentSpec spec = small_spec(cache_case, milliseconds(200));
    spec.critical_path = true;
    const ExperimentResult result = run_experiment(spec, tiny_ior());
    EXPECT_GE(result.attributed_fraction, 0.95)
        << to_string(cache_case);
    EXPECT_LE(
        result.critical_path.at("phase_consistency_dev").as_number(), 0.05)
        << to_string(cache_case);
  }
}

TEST(ObsWorkload, TracingDoesNotChangeTheRun) {
  // Byte-identical outputs and identical virtual timing with the tracer,
  // causal recorder and analyzer all attached.
  ExperimentSpec plain = small_spec(CacheCase::enabled, milliseconds(500));
  ExperimentSpec traced = plain;
  traced.trace = true;
  traced.critical_path = true;
  const ExperimentResult a = run_experiment(plain, tiny_ior());
  const ExperimentResult b = run_experiment(traced, tiny_ior());
  EXPECT_EQ(a.report.at("config").at("content_checksum").as_string(),
            b.report.at("config").at("content_checksum").as_string());
  EXPECT_DOUBLE_EQ(a.report.at("derived").at("io_time_s").as_number(),
                   b.report.at("derived").at("io_time_s").as_number());
  EXPECT_DOUBLE_EQ(a.bandwidth_gib, b.bandwidth_gib);
}

TEST(ObsWorkload, FaultedRunLeavesNoDanglingSpans) {
  // Error paths in the sync thread (retries, requeues, abandonment) must
  // close every span they opened; same for rank crashes mid-collective.
  ExperimentSpec spec = small_spec(CacheCase::enabled, milliseconds(200));
  spec.trace = true;
  spec.critical_path = true;
  spec.faults = fault::FaultPlan::parse("pfs_write=0.2/timed_out; seed=11")
                    .value();
  const ExperimentResult result = run_experiment(spec, tiny_ior());
  EXPECT_GT(result.sync.retries + result.sync.requeues +
                result.sync.abandoned,
            0u);
  EXPECT_EQ(result.trace_open_spans, 0u);
  // The trace is still schema-valid JSON.
  EXPECT_TRUE(obs::Json::parse(result.trace_json).is_ok());
}

TEST(ObsWorkload, OutageRunLeavesNoDanglingSpans) {
  ExperimentSpec spec = small_spec(CacheCase::enabled, milliseconds(100));
  spec.trace = true;
  spec.faults =
      fault::FaultPlan::parse("outage=0@1ms-50ms; seed=3").value();
  const ExperimentResult result = run_experiment(spec, tiny_ior());
  EXPECT_EQ(result.trace_open_spans, 0u);
}

TEST(ObsWorkload, TracingOffByDefault) {
  const ExperimentResult result = run_experiment(
      small_spec(CacheCase::enabled, milliseconds(100)), tiny_ior());
  EXPECT_TRUE(result.trace_json.empty());
}

}  // namespace
}  // namespace e10::workloads
