// Critical-path analyzer: backward walk over synthetic span/edge DAGs with
// known answers.
#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "obs/causal.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace e10::obs {
namespace {

using namespace e10::units;
using sim::EdgeKind;

Time category_ns(const CriticalPathReport& report, PathCategory category) {
  return report.category_ns[static_cast<std::size_t>(category)];
}

TEST(CriticalPath, EmptyRunIsEmptyReport) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);
  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  EXPECT_EQ(report.total_ns, 0);
  EXPECT_EQ(report.hops, 0);
  EXPECT_FALSE(report.truncated);
}

TEST(CriticalPath, MessageEdgeCrossesToTheSender) {
  // Sender: shuffle span [0, 2ms], emits a message at 2ms with 0.5ms of
  // NIC queueing. Receiver: compute [0, 1ms] off the path, then an
  // exchange span [1ms, 5ms] whose blocking recv was released at 3ms.
  // Path: recv lane (3, 5] = shuffle, edge (2, 3] = 0.5 nic + 0.5 shuffle,
  // sender lane (0, 2] = shuffle. Nothing idle, nothing unattributed.
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);

  sim::CausalToken token = 0;
  engine.spawn("sender", [&] {
    Span span(&tracer, tracer.rank_track(0), "shuffle_all2all");
    engine.delay(milliseconds(2));
    token = recorder.emit(EdgeKind::message, engine.current(), engine.now(),
                          microseconds(500));
  });
  engine.spawn("receiver", [&] {
    {
      Span span(&tracer, tracer.rank_track(1), "compute");
      engine.delay(milliseconds(1));
    }
    Span span(&tracer, tracer.rank_track(1), "exchange");
    engine.delay(milliseconds(2));  // released at t=3ms
    recorder.ack(token, engine.current(), engine.now());
    engine.delay(milliseconds(2));  // post-recv unpack until t=5ms
  });
  engine.run();

  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  EXPECT_EQ(report.total_ns, milliseconds(5));
  EXPECT_EQ(report.hops, 1);
  EXPECT_EQ(category_ns(report, PathCategory::shuffle),
            milliseconds(2) + microseconds(500) + milliseconds(2));
  EXPECT_EQ(category_ns(report, PathCategory::nic_contention),
            microseconds(500));
  // The receiver's compute span is NOT on the path (the walk jumped to the
  // sender before it).
  EXPECT_EQ(category_ns(report, PathCategory::compute), 0);
  EXPECT_DOUBLE_EQ(report.attributed_fraction, 1.0);
  EXPECT_EQ(report.bottleneck, PathCategory::shuffle);
  EXPECT_FALSE(report.truncated);
  EXPECT_FALSE(report.segments.empty());
}

TEST(CriticalPath, BridgeAttributesTheAsyncServiceInterval) {
  // One process: write_round span [0, 5ms]; an async write issued at 1ms
  // completed at 4ms and its join stalled. The service interval [1, 4]
  // lands in `write`; the walk resumes before the issue.
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);

  engine.spawn("aggregator", [&] {
    Span span(&tracer, tracer.rank_track(0), "write_round");
    engine.delay(milliseconds(4));
    recorder.bridge(EdgeKind::write_join, engine.current(), milliseconds(1),
                    engine.now());
    engine.delay(milliseconds(1));
  });
  engine.run();

  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  EXPECT_EQ(report.total_ns, milliseconds(5));
  EXPECT_EQ(report.hops, 1);
  // [1, 4] service -> write; [4, 5] + [0, 1] on the lane -> coordination
  // (write_round).
  EXPECT_EQ(category_ns(report, PathCategory::write), milliseconds(3));
  EXPECT_EQ(category_ns(report, PathCategory::coordination), milliseconds(2));
  EXPECT_DOUBLE_EQ(report.attributed_fraction, 1.0);
  EXPECT_EQ(report.bottleneck, PathCategory::write);
}

TEST(CriticalPath, LockWaitOverlayRelabelsWriteTime) {
  // A write span [0, 4ms] whose first 3ms were spent waiting for a stripe
  // lock: the overlay carves the wait out of `write` into `lock_wait`.
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);

  engine.spawn("writer", [&] {
    Span span(&tracer, tracer.rank_track(0), "write_contig");
    recorder.interval(EdgeKind::lock_wait, engine.current(), engine.now(),
                      engine.now() + milliseconds(3));
    engine.delay(milliseconds(4));
  });
  engine.run();

  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  EXPECT_EQ(report.total_ns, milliseconds(4));
  EXPECT_EQ(category_ns(report, PathCategory::lock_wait), milliseconds(3));
  EXPECT_EQ(category_ns(report, PathCategory::write), milliseconds(1));
  EXPECT_EQ(report.bottleneck, PathCategory::lock_wait);
}

TEST(CriticalPath, GapsOnTheLaneAreIdle) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);

  engine.spawn("p", [&] {
    {
      Span span(&tracer, tracer.rank_track(0), "write_contig");
      engine.delay(milliseconds(1));
    }
    engine.delay(milliseconds(2));  // no span: idle
    Span span(&tracer, tracer.rank_track(0), "write_contig");
    engine.delay(milliseconds(1));
  });
  engine.run();

  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  EXPECT_EQ(report.total_ns, milliseconds(4));
  EXPECT_EQ(category_ns(report, PathCategory::write), milliseconds(2));
  EXPECT_EQ(category_ns(report, PathCategory::idle), milliseconds(2));
  // Idle is named, so it still counts as attributed.
  EXPECT_DOUBLE_EQ(report.attributed_fraction, 1.0);
}

TEST(CriticalPath, InnermostSpanWinsOnNesting) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);

  engine.spawn("p", [&] {
    Span outer(&tracer, tracer.rank_track(0), "write_round");
    engine.delay(milliseconds(1));
    {
      Span inner(&tracer, tracer.rank_track(0), "write_contig");
      engine.delay(milliseconds(2));
    }
    engine.delay(milliseconds(1));
  });
  engine.run();

  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  EXPECT_EQ(category_ns(report, PathCategory::write), milliseconds(2));
  EXPECT_EQ(category_ns(report, PathCategory::coordination), milliseconds(2));
}

TEST(CriticalPath, RankSkewFromTrackCompletionTimes) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);

  engine.spawn("r0", [&] {
    Span span(&tracer, tracer.rank_track(0), "write_contig");
    engine.delay(milliseconds(2));
  });
  engine.spawn("r1", [&] {
    Span span(&tracer, tracer.rank_track(1), "write_contig");
    engine.delay(milliseconds(4));
  });
  engine.run();

  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  EXPECT_EQ(report.rank_end_min_ns, milliseconds(2));
  EXPECT_EQ(report.rank_end_max_ns, milliseconds(4));
  EXPECT_DOUBLE_EQ(report.rank_skew, 0.5);
}

TEST(CriticalPath, JsonAndTableCarryTheReport) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine);
  engine.spawn("p", [&] {
    Span span(&tracer, tracer.rank_track(0), "exchange");
    engine.delay(milliseconds(1));
  });
  engine.run();

  const CriticalPathReport report =
      analyze_critical_path(tracer, recorder, nullptr);
  const Json json = critical_path_json(report, nullptr);
  EXPECT_EQ(json.at("bottleneck").as_string(), "shuffle");
  EXPECT_DOUBLE_EQ(json.at("total_s").as_number(), 0.001);
  EXPECT_GT(json.at("categories").at("shuffle").at("fraction").as_number(),
            0.99);
  EXPECT_TRUE(json.find("phase_tails") == nullptr);  // no profiler given
  const std::string table = critical_path_table(report);
  EXPECT_NE(table.find("bottleneck=shuffle"), std::string::npos);
  EXPECT_NE(table.find("100.0% attributed"), std::string::npos);
}

}  // namespace
}  // namespace e10::obs
