#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace e10::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("x");
  c.increment();
  c.add(9);
  EXPECT_EQ(registry.counter_value("x"), 10);
  EXPECT_EQ(registry.counter_value("untouched"), 0);
  EXPECT_EQ(registry.find_counter("untouched"), nullptr);
  // Create-or-get: same name, same instrument.
  EXPECT_EQ(&registry.counter("x"), &c);
}

TEST(Metrics, GaugeTracksHighWater) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("depth");
  g.set(3);
  g.set(7);
  g.set(2);
  g.add(1);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(registry.gauge_high_water("depth"), 7);
}

TEST(Metrics, ExponentialBounds) {
  const auto bounds = exponential_bounds(4096, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], 4096);
  EXPECT_EQ(bounds[3], 32768);
  const auto decimal = exponential_bounds(1, 3, 10);
  EXPECT_EQ(decimal[2], 100);
}

TEST(Metrics, HistogramBucketing) {
  // Inclusive upper bounds {10, 100, 1000} + one overflow bucket.
  Histogram h({10, 100, 1000});
  EXPECT_EQ(h.bucket_index(0), 0u);
  EXPECT_EQ(h.bucket_index(10), 0u);    // bounds are inclusive
  EXPECT_EQ(h.bucket_index(11), 1u);
  EXPECT_EQ(h.bucket_index(1000), 2u);
  EXPECT_EQ(h.bucket_index(1001), 3u);  // overflow

  h.observe(5);
  h.observe(10);
  h.observe(50);
  h.observe(5000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5065);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 5000);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Metrics, EmptyHistogramMinMaxAreZero) {
  Histogram h({10});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Metrics, RegistryJsonSnapshot) {
  MetricsRegistry registry;
  registry.counter("a.count").add(5);
  registry.gauge("a.depth").set(2);
  registry.histogram("a.bytes", {100, 200}).observe(150);
  EXPECT_EQ(registry.instruments(), 3u);

  const Json snapshot = registry.as_json();
  EXPECT_EQ(snapshot.at("counters").at("a.count").as_int(), 5);
  EXPECT_EQ(snapshot.at("gauges").at("a.depth").at("value").as_int(), 2);
  const Json& hist = snapshot.at("histograms").at("a.bytes");
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_EQ(hist.at("sum").as_int(), 150);

  registry.clear();
  EXPECT_EQ(registry.instruments(), 0u);
}

}  // namespace
}  // namespace e10::obs
