// compare_runs: the perf-regression gate's diff logic over both document
// shapes.
#include "obs/compare.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/json.h"

namespace e10::obs {
namespace {

Json parse(const std::string& text) {
  auto result = Json::parse(text);
  EXPECT_TRUE(result.is_ok()) << result.status().message();
  return result.value();
}

/// Two-point run-report array with the first point's figures parameterized.
std::string report_doc(double io0, double exchange0, const char* checksum0) {
  char buf[768];
  std::snprintf(buf, sizeof(buf), R"([
    {"config": {"combo": "8_4m", "cache_case": "cache_enabled",
                "pipeline": "on", "content_checksum": "%s"},
     "phases": {"exchange": {"max_s": %f}, "write_contig": {"max_s": 2.0}},
     "derived": {"io_time_s": %f}},
    {"config": {"combo": "8_4m", "cache_case": "cache_disabled",
                "pipeline": "on", "content_checksum": "bbbb"},
     "phases": {"exchange": {"max_s": 0.5}},
     "derived": {"io_time_s": 4.0}}
  ])",
                checksum0, exchange0, io0);
  return buf;
}

Json baseline_doc() { return parse(report_doc(10.0, 1.0, "aaaa")); }

TEST(Compare, IdenticalReportsPass) {
  const Json doc = baseline_doc();
  const auto report = compare_runs(doc, doc, CompareOptions{});
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_EQ(report.value().points.size(), 2u);
  EXPECT_EQ(report.value().regressions, 0u);
  EXPECT_EQ(report.value().improvements, 0u);
  EXPECT_TRUE(report.value().ok(CompareOptions{}));
  const std::string table =
      compare_table(report.value(), CompareOptions{});
  EXPECT_NE(table.find("PASS"), std::string::npos);
  EXPECT_NE(table.find("8_4m/cache_enabled/pipeline=on"), std::string::npos);
}

TEST(Compare, RegressionBeyondThresholdFailsWithPhaseAttribution) {
  // +10% io time on the first point; the exchange phase grew by 1 s.
  const auto report =
      compare_runs(baseline_doc(), parse(report_doc(11.0, 2.0, "aaaa")),
                   CompareOptions{});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().regressions, 1u);
  EXPECT_FALSE(report.value().ok(CompareOptions{}));
  const PointDiff& diff = report.value().points[0];
  EXPECT_TRUE(diff.regression);
  EXPECT_NEAR(diff.ratio, 1.1, 1e-9);
  ASSERT_FALSE(diff.phase_deltas.empty());
  EXPECT_EQ(diff.phase_deltas[0].first, "exchange");
  EXPECT_NEAR(diff.phase_deltas[0].second, 1.0, 1e-9);
  const std::string table =
      compare_table(report.value(), CompareOptions{});
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("exchange"), std::string::npos);
  EXPECT_NE(table.find("FAIL"), std::string::npos);
}

TEST(Compare, ThresholdAbsorbsSmallDrift) {
  const Json candidate = parse(report_doc(10.1, 1.0, "aaaa"));  // +1%
  const auto report =
      compare_runs(baseline_doc(), candidate, CompareOptions{});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().regressions, 0u);

  CompareOptions tight;
  tight.threshold = 0.005;
  const auto strict = compare_runs(baseline_doc(), candidate, tight);
  ASSERT_TRUE(strict.is_ok());
  EXPECT_EQ(strict.value().regressions, 1u);
}

TEST(Compare, ImprovementIsNotAFailure) {
  const auto report =
      compare_runs(baseline_doc(), parse(report_doc(8.0, 1.0, "aaaa")),
                   CompareOptions{});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().regressions, 0u);
  EXPECT_EQ(report.value().improvements, 1u);
  EXPECT_TRUE(report.value().ok(CompareOptions{}));
}

TEST(Compare, ChecksumMismatchOnlyFailsWhenStrict) {
  const auto report =
      compare_runs(baseline_doc(), parse(report_doc(10.0, 1.0, "cccc")),
                   CompareOptions{});
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report.value().checksum_mismatch);
  EXPECT_TRUE(report.value().points[0].checksum_mismatch);
  EXPECT_TRUE(report.value().ok(CompareOptions{}));
  CompareOptions strict;
  strict.strict_checksums = true;
  EXPECT_FALSE(report.value().ok(strict));
}

TEST(Compare, MissingAndNewPointsAreListedNotFailed) {
  const Json candidate = parse(R"([
    {"config": {"combo": "8_4m", "cache_case": "cache_enabled",
                "pipeline": "on", "content_checksum": "aaaa"},
     "derived": {"io_time_s": 10.0}},
    {"config": {"combo": "64_16m", "cache_case": "cache_enabled",
                "pipeline": "on", "content_checksum": "dddd"},
     "derived": {"io_time_s": 3.0}}
  ])");
  const auto report =
      compare_runs(baseline_doc(), candidate, CompareOptions{});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().points.size(), 1u);
  ASSERT_EQ(report.value().missing_in_candidate.size(), 1u);
  EXPECT_EQ(report.value().missing_in_candidate[0],
            "8_4m/cache_disabled/pipeline=on");
  ASSERT_EQ(report.value().missing_in_baseline.size(), 1u);
  EXPECT_TRUE(report.value().ok(CompareOptions{}));
}

TEST(Compare, BenchResultsFilesCompareColumnWise) {
  const Json doc = parse(R"({
    "description": "x", "entries": [
      {"combo": "8_4m", "cache_case": "cache_enabled",
       "io_time_s_pipelined": 5.0, "io_time_s_synchronous": 6.0},
      {"combo": "8_4m", "cache_case": "cache_disabled",
       "io_time_s": 2.0}
    ]})");
  const Json slower = parse(R"({
    "description": "x", "entries": [
      {"combo": "8_4m", "cache_case": "cache_enabled",
       "io_time_s_pipelined": 5.5, "io_time_s_synchronous": 6.0},
      {"combo": "8_4m", "cache_case": "cache_disabled",
       "io_time_s": 2.0}
    ]})");
  const auto report = compare_runs(doc, slower, CompareOptions{});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().points.size(), 3u);
  EXPECT_EQ(report.value().regressions, 1u);
  bool found = false;
  for (const PointDiff& point : report.value().points) {
    if (point.key == "8_4m/cache_enabled/pipelined") {
      found = true;
      EXPECT_TRUE(point.regression);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Compare, MalformedDocumentsAreErrorsNotCrashes) {
  const Json good = baseline_doc();
  EXPECT_FALSE(compare_runs(parse(R"({"foo": 1})"), good, CompareOptions{})
                   .is_ok());
  EXPECT_FALSE(compare_runs(good, parse(R"([{"config": {}}])"),
                            CompareOptions{})
                   .is_ok());
  EXPECT_FALSE(
      compare_runs(good, parse(R"({"entries": [{"combo": "a"}]})"),
                   CompareOptions{})
          .is_ok());
  // 'entries' of the wrong kind and non-object entries used to throw out of
  // the Json accessors; they must surface as parse errors instead.
  EXPECT_FALSE(
      compare_runs(good, parse(R"({"entries": 42})"), CompareOptions{})
          .is_ok());
  EXPECT_FALSE(
      compare_runs(good, parse(R"({"entries": [42]})"), CompareOptions{})
          .is_ok());
  // Run-report entries that are not objects are rejected, not dereferenced.
  EXPECT_FALSE(compare_runs(good, parse(R"([42])"), CompareOptions{}).is_ok());
}

TEST(Compare, EmptyDocumentsCannotVacuouslyPass) {
  const Json good = baseline_doc();
  const auto empty_base = compare_runs(parse("[]"), good, CompareOptions{});
  ASSERT_FALSE(empty_base.is_ok());
  EXPECT_NE(empty_base.status().message().find("baseline"),
            std::string::npos);
  const auto empty_cand = compare_runs(
      good, parse(R"({"description": "x", "entries": []})"), CompareOptions{});
  ASSERT_FALSE(empty_cand.is_ok());
  EXPECT_NE(empty_cand.status().message().find("candidate"),
            std::string::npos);
}

TEST(Compare, EngineCounterDriftFailsExactlyEvenWithinThreshold) {
  // engine.* derived counters are deterministic scheduler counts; a drift
  // of even one event is a failure, no matter how small relative to the
  // threshold — and io_time staying identical must not mask it.
  const auto doc = [](double events) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), R"([
      {"config": {"combo": "8_4m", "cache_case": "cache_enabled"},
       "derived": {"io_time_s": 10.0, "engine.events": %f,
                   "engine.switches": 500.0}}
    ])",
                  events);
    return parse(buf);
  };
  const auto same = compare_runs(doc(1000.0), doc(1000.0), CompareOptions{});
  ASSERT_TRUE(same.is_ok());
  EXPECT_EQ(same.value().regressions, 0u);

  const auto drift = compare_runs(doc(1000.0), doc(1001.0), CompareOptions{});
  ASSERT_TRUE(drift.is_ok());
  EXPECT_EQ(drift.value().regressions, 1u);
  ASSERT_EQ(drift.value().points[0].counter_mismatches.size(), 1u);
  EXPECT_NE(drift.value().points[0].counter_mismatches[0].find(
                "engine.events"),
            std::string::npos);
  const std::string table = compare_table(drift.value(), CompareOptions{});
  EXPECT_NE(table.find("counter drift"), std::string::npos);
  EXPECT_NE(table.find("FAIL"), std::string::npos);
}

TEST(Compare, DisjointSweepsAreAnErrorNotAPass) {
  // Every baseline point missing from the candidate and vice versa: two
  // documents from different sweeps. A gate verdict over zero shared points
  // would be meaningless, so this errors rather than printing PASS.
  const Json other = parse(R"([
    {"config": {"combo": "64_16m", "cache_case": "cache_enabled"},
     "derived": {"io_time_s": 1.0}}
  ])");
  const auto report = compare_runs(baseline_doc(), other, CompareOptions{});
  ASSERT_FALSE(report.is_ok());
  EXPECT_NE(report.status().message().find("no overlapping points"),
            std::string::npos);
}

}  // namespace
}  // namespace e10::obs
