#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/units.h"
#include "obs/json.h"

namespace e10::obs {
namespace {

using namespace e10::units;

TEST(Trace, DisabledTracerRecordsNothing) {
  sim::Engine engine;
  Tracer tracer(engine);
  ASSERT_FALSE(tracer.enabled());
  {
    Span span(&tracer, tracer.rank_track(0), "write");
    span.arg("bytes", 42);
    EXPECT_FALSE(span.active());
  }
  tracer.counter("depth", 3);
  tracer.instant(0, "marker");
  EXPECT_EQ(tracer.events(), 0u);
}

TEST(Trace, NestedSpansOnDistinctTracks) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  engine.spawn("rank0", [&] {
    Span outer(&tracer, tracer.rank_track(0), "exchange");
    engine.delay(milliseconds(2));
    {
      Span inner(&tracer, tracer.rank_track(0), "write_contig");
      inner.arg("bytes", 4096);
      engine.delay(milliseconds(1));
    }
    engine.delay(milliseconds(2));
  });
  engine.spawn("rank1", [&] {
    Span span(&tracer, tracer.rank_track(1), "exchange");
    engine.delay(milliseconds(3));
  });
  engine.run();
  EXPECT_EQ(tracer.events(), 3u);
  EXPECT_EQ(tracer.tracks(), 2u);

  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const Json& events = parsed.value().at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // Metadata names both rank tracks; inner span nests inside outer on the
  // same track; rank1 is on a different track.
  int thread_names = 0;
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  const Json* other = nullptr;
  for (const Json& e : events.elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M" && e.at("name").as_string() == "thread_name") {
      ++thread_names;
    } else if (ph == "X") {
      const std::string& name = e.at("name").as_string();
      if (name == "exchange" && e.at("tid").as_int() == 0) outer = &e;
      if (name == "write_contig") inner = &e;
      if (name == "exchange" && e.at("tid").as_int() != 0) other = &e;
    }
  }
  EXPECT_GE(thread_names, 2);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(inner->at("tid").as_int(), outer->at("tid").as_int());
  EXPECT_NE(other->at("tid").as_int(), outer->at("tid").as_int());
  // Nesting in time: outer spans [0, 5ms], inner [2ms, 3ms] (microseconds
  // in the JSON).
  EXPECT_GE(inner->at("ts").as_number(), outer->at("ts").as_number());
  EXPECT_LE(inner->at("ts").as_number() + inner->at("dur").as_number(),
            outer->at("ts").as_number() + outer->at("dur").as_number());
  EXPECT_DOUBLE_EQ(outer->at("dur").as_number(), 5000.0);
  EXPECT_EQ(inner->at("args").at("bytes").as_int(), 4096);
}

TEST(Trace, CounterAndInstantEvents) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  const int track = tracer.track("sync", 1000);
  engine.spawn("p", [&] {
    tracer.counter("queue depth", 2);
    engine.delay(milliseconds(1));
    tracer.counter("queue depth", 0);
    tracer.instant(track, "drained");
  });
  engine.run();

  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  int counters = 0;
  int instants = 0;
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "C" && e.at("name").as_string() == "queue depth") {
      ++counters;
      EXPECT_TRUE(e.at("args").find("value") != nullptr);
    }
    if (ph == "i" && e.at("name").as_string() == "drained") ++instants;
  }
  EXPECT_EQ(counters, 2);
  EXPECT_EQ(instants, 1);
}

TEST(Trace, SpanEndStopsTheClock) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  engine.spawn("p", [&] {
    Span span(&tracer, tracer.rank_track(0), "early");
    engine.delay(milliseconds(1));
    span.end();
    EXPECT_FALSE(span.active());
    engine.delay(milliseconds(9));  // not part of the span
  });
  engine.run();
  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok());
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    if (e.at("ph").as_string() == "X") {
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 1000.0);
    }
  }
}

TEST(Trace, OpenSpanCounterTracksLifecycle) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  EXPECT_EQ(tracer.open_spans(), 0u);
  engine.spawn("p", [&] {
    Span outer(&tracer, tracer.rank_track(0), "a");
    EXPECT_EQ(tracer.open_spans(), 1u);
    {
      Span inner(&tracer, tracer.rank_track(0), "b");
      EXPECT_EQ(tracer.open_spans(), 2u);
    }
    EXPECT_EQ(tracer.open_spans(), 1u);
    // Moving a span transfers ownership without double-counting.
    Span moved = std::move(outer);
    EXPECT_EQ(tracer.open_spans(), 1u);
    moved.end();
    EXPECT_EQ(tracer.open_spans(), 0u);
  });
  engine.run();
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Trace, OpenSpanCounterSeesLeaks) {
  // A span destroyed without end() through an error path still closes (the
  // destructor ends it); only a heap-leaked span stays open.
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  auto* leaked = new Span();
  engine.spawn("p", [&] {
    *leaked = Span(&tracer, tracer.rank_track(0), "leaked");
    try {
      Span span(&tracer, tracer.rank_track(0), "unwound");
      throw std::runtime_error("fault");
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(tracer.open_spans(), 1u);  // only the leaked one
  });
  engine.run();
  EXPECT_EQ(tracer.open_spans(), 1u);
  delete leaked;  // Span dtor ends it
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Trace, FlowEventsArePairedAndOrdered) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  const int src = tracer.rank_track(0);
  const int dst = tracer.rank_track(1);
  tracer.flow(src, units::milliseconds(1), dst, units::milliseconds(2), 7,
              "message");
  // Destination timestamps are clamped to the source: Chrome refuses to
  // render arrows that point backwards in time.
  tracer.flow(src, units::milliseconds(5), dst, units::milliseconds(3), 8,
              "stale");

  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  std::map<std::int64_t, std::pair<const Json*, const Json*>> pairs;
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "s") pairs[e.at("id").as_int()].first = &e;
    if (ph == "f") pairs[e.at("id").as_int()].second = &e;
  }
  ASSERT_EQ(pairs.size(), 2u);
  for (const auto& [id, pair] : pairs) {
    ASSERT_NE(pair.first, nullptr) << "flow " << id << " missing start";
    ASSERT_NE(pair.second, nullptr) << "flow " << id << " missing finish";
    EXPECT_EQ(pair.first->at("cat").as_string(), "causal");
    EXPECT_EQ(pair.second->at("cat").as_string(), "causal");
    EXPECT_EQ(pair.second->at("bp").as_string(), "e");
    EXPECT_TRUE(pair.first->find("bp") == nullptr);
    EXPECT_LE(pair.first->at("ts").as_number(),
              pair.second->at("ts").as_number());
  }
}

TEST(Trace, ChromeSchemaIsSane) {
  // Every event type the tracer emits satisfies the Trace Event Format:
  // X spans carry non-negative ts/dur, every event names a known pid/tid
  // pair, and flow starts/finishes come in id-matched pairs.
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  engine.spawn("r0", [&] {
    Span span(&tracer, tracer.rank_track(0), "exchange");
    engine.delay(units::milliseconds(1));
    tracer.counter("depth", 1);
    tracer.instant(tracer.rank_track(0), "mark");
  });
  engine.spawn("r1", [&] {
    Span span(&tracer, tracer.rank_track(1), "write_contig");
    engine.delay(units::milliseconds(2));
  });
  engine.run();
  tracer.flow(tracer.rank_track(0), units::milliseconds(1),
              tracer.rank_track(1), units::milliseconds(2), 1, "message");

  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  std::set<std::int64_t> named_tids;
  std::map<std::int64_t, int> flow_balance;
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M" && e.at("name").as_string() == "thread_name") {
      named_tids.insert(e.at("tid").as_int());
    }
  }
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") continue;
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    if (ph == "X") {
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_TRUE(named_tids.count(e.at("tid").as_int()) == 1)
          << "span on unnamed track " << e.at("tid").as_int();
    }
    if (ph == "s") ++flow_balance[e.at("id").as_int()];
    if (ph == "f") --flow_balance[e.at("id").as_int()];
  }
  for (const auto& [id, balance] : flow_balance) {
    EXPECT_EQ(balance, 0) << "unpaired flow id " << id;
  }
}

TEST(Trace, ClearResetsEvents) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  tracer.counter("x", 1);
  EXPECT_EQ(tracer.events(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.events(), 0u);
}

}  // namespace
}  // namespace e10::obs
