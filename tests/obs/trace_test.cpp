#include "obs/trace.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "obs/json.h"

namespace e10::obs {
namespace {

using namespace e10::units;

TEST(Trace, DisabledTracerRecordsNothing) {
  sim::Engine engine;
  Tracer tracer(engine);
  ASSERT_FALSE(tracer.enabled());
  {
    Span span(&tracer, tracer.rank_track(0), "write");
    span.arg("bytes", 42);
    EXPECT_FALSE(span.active());
  }
  tracer.counter("depth", 3);
  tracer.instant(0, "marker");
  EXPECT_EQ(tracer.events(), 0u);
}

TEST(Trace, NestedSpansOnDistinctTracks) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  engine.spawn("rank0", [&] {
    Span outer(&tracer, tracer.rank_track(0), "exchange");
    engine.delay(milliseconds(2));
    {
      Span inner(&tracer, tracer.rank_track(0), "write_contig");
      inner.arg("bytes", 4096);
      engine.delay(milliseconds(1));
    }
    engine.delay(milliseconds(2));
  });
  engine.spawn("rank1", [&] {
    Span span(&tracer, tracer.rank_track(1), "exchange");
    engine.delay(milliseconds(3));
  });
  engine.run();
  EXPECT_EQ(tracer.events(), 3u);
  EXPECT_EQ(tracer.tracks(), 2u);

  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const Json& events = parsed.value().at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // Metadata names both rank tracks; inner span nests inside outer on the
  // same track; rank1 is on a different track.
  int thread_names = 0;
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  const Json* other = nullptr;
  for (const Json& e : events.elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M" && e.at("name").as_string() == "thread_name") {
      ++thread_names;
    } else if (ph == "X") {
      const std::string& name = e.at("name").as_string();
      if (name == "exchange" && e.at("tid").as_int() == 0) outer = &e;
      if (name == "write_contig") inner = &e;
      if (name == "exchange" && e.at("tid").as_int() != 0) other = &e;
    }
  }
  EXPECT_GE(thread_names, 2);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(inner->at("tid").as_int(), outer->at("tid").as_int());
  EXPECT_NE(other->at("tid").as_int(), outer->at("tid").as_int());
  // Nesting in time: outer spans [0, 5ms], inner [2ms, 3ms] (microseconds
  // in the JSON).
  EXPECT_GE(inner->at("ts").as_number(), outer->at("ts").as_number());
  EXPECT_LE(inner->at("ts").as_number() + inner->at("dur").as_number(),
            outer->at("ts").as_number() + outer->at("dur").as_number());
  EXPECT_DOUBLE_EQ(outer->at("dur").as_number(), 5000.0);
  EXPECT_EQ(inner->at("args").at("bytes").as_int(), 4096);
}

TEST(Trace, CounterAndInstantEvents) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  const int track = tracer.track("sync", 1000);
  engine.spawn("p", [&] {
    tracer.counter("queue depth", 2);
    engine.delay(milliseconds(1));
    tracer.counter("queue depth", 0);
    tracer.instant(track, "drained");
  });
  engine.run();

  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  int counters = 0;
  int instants = 0;
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "C" && e.at("name").as_string() == "queue depth") {
      ++counters;
      EXPECT_TRUE(e.at("args").find("value") != nullptr);
    }
    if (ph == "i" && e.at("name").as_string() == "drained") ++instants;
  }
  EXPECT_EQ(counters, 2);
  EXPECT_EQ(instants, 1);
}

TEST(Trace, SpanEndStopsTheClock) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  engine.spawn("p", [&] {
    Span span(&tracer, tracer.rank_track(0), "early");
    engine.delay(milliseconds(1));
    span.end();
    EXPECT_FALSE(span.active());
    engine.delay(milliseconds(9));  // not part of the span
  });
  engine.run();
  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok());
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    if (e.at("ph").as_string() == "X") {
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 1000.0);
    }
  }
}

TEST(Trace, ClearResetsEvents) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  tracer.counter("x", 1);
  EXPECT_EQ(tracer.events(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.events(), 0u);
}

}  // namespace
}  // namespace e10::obs
