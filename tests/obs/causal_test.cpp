// CausalRecorder: edge recording semantics and the flow arrows it mirrors
// into the tracer.
#include "obs/causal.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace e10::obs {
namespace {

using namespace e10::units;
using sim::EdgeKind;

TEST(Causal, AttachesAndDetaches) {
  sim::Engine engine;
  EXPECT_EQ(engine.causal_observer(), nullptr);
  {
    CausalRecorder recorder(engine);
    EXPECT_EQ(engine.causal_observer(), &recorder);
  }
  EXPECT_EQ(engine.causal_observer(), nullptr);
}

TEST(Causal, EmitReturnsMonotonicTokensAndSourceOfResolves) {
  sim::Engine engine;
  CausalRecorder recorder(engine);
  const sim::CausalToken t1 = recorder.emit(EdgeKind::message, 1, 100, 25);
  const sim::CausalToken t2 = recorder.emit(EdgeKind::collective, 2, 200);
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(t2, 2u);
  ASSERT_EQ(recorder.emissions().size(), 2u);

  recorder.ack(t1, 3, 150);
  ASSERT_EQ(recorder.acks().size(), 1u);
  const CausalRecorder::Emission& src = recorder.source_of(recorder.acks()[0]);
  EXPECT_EQ(src.kind, EdgeKind::message);
  EXPECT_EQ(src.pid, sim::ProcessId{1});
  EXPECT_EQ(src.at, Time{100});
  EXPECT_EQ(src.contended_ns, Time{25});
}

TEST(Causal, SelfSamePositionAcksAreDropped) {
  sim::Engine engine;
  CausalRecorder recorder(engine);
  const sim::CausalToken token = recorder.emit(EdgeKind::grequest, 1, 100);
  // A rank completing its own request wakes nobody: no edge.
  recorder.ack(token, 1, 100);
  EXPECT_TRUE(recorder.acks().empty());
  // Same pid at a later time is a real dependency (e.g. complete_at).
  recorder.ack(token, 1, 200);
  EXPECT_EQ(recorder.acks().size(), 1u);
  // Unknown and null tokens are ignored.
  recorder.ack(0, 2, 300);
  recorder.ack(99, 2, 300);
  EXPECT_EQ(recorder.acks().size(), 1u);
}

TEST(Causal, DegenerateBridgesAndIntervalsAreDropped) {
  sim::Engine engine;
  CausalRecorder recorder(engine);
  recorder.bridge(EdgeKind::write_join, 1, 100, 100);
  recorder.bridge(EdgeKind::batch_done, 1, 100, 50);
  EXPECT_TRUE(recorder.bridges().empty());
  recorder.bridge(EdgeKind::write_join, 1, 100, 200);
  ASSERT_EQ(recorder.bridges().size(), 1u);
  EXPECT_EQ(recorder.bridges()[0].issue, Time{100});
  EXPECT_EQ(recorder.bridges()[0].done, Time{200});

  recorder.interval(EdgeKind::lock_wait, 1, 100, 100);
  EXPECT_TRUE(recorder.overlays().empty());
  recorder.interval(EdgeKind::lock_wait, 1, 100, 150);
  EXPECT_EQ(recorder.overlays().size(), 1u);
}

TEST(Causal, CrossPidAcksEmitPairedFlowArrows) {
  sim::Engine engine;
  Tracer tracer(engine);
  tracer.set_enabled(true);
  CausalRecorder recorder(engine, &tracer);

  sim::CausalToken token = 0;
  engine.spawn("a", [&] {
    Span span(&tracer, tracer.rank_track(0), "shuffle_all2all");
    engine.delay(milliseconds(1));
    token = engine.causal_observer()->emit(EdgeKind::message,
                                           engine.current(), engine.now());
  });
  engine.spawn("b", [&] {
    Span span(&tracer, tracer.rank_track(1), "exchange");
    engine.delay(milliseconds(2));
    engine.causal_observer()->ack(token, engine.current(), engine.now());
  });
  engine.run();

  ASSERT_EQ(recorder.acks().size(), 1u);
  const auto parsed = Json::parse(tracer.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const Json* start = nullptr;
  const Json* finish = nullptr;
  for (const Json& e : parsed.value().at("traceEvents").elements()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "s") start = &e;
    if (ph == "f") finish = &e;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  EXPECT_EQ(start->at("cat").as_string(), "causal");
  EXPECT_EQ(start->at("id").as_int(), finish->at("id").as_int());
  EXPECT_EQ(finish->at("bp").as_string(), "e");
  EXPECT_EQ(start->at("name").as_string(), "message");
  EXPECT_NE(start->at("tid").as_int(), finish->at("tid").as_int());
  EXPECT_LE(start->at("ts").as_number(), finish->at("ts").as_number());
}

TEST(Causal, ProcessJoinRecordsFinishEdge) {
  // The engine itself emits a `process` edge when a join had to wait for
  // the joined process to finish.
  sim::Engine engine;
  CausalRecorder recorder(engine);
  auto worker = engine.spawn("worker", [&] { engine.delay(milliseconds(5)); });
  engine.spawn("joiner", [&] {
    engine.delay(milliseconds(1));
    worker.join();
  });
  engine.run();

  ASSERT_FALSE(recorder.emissions().empty());
  bool process_edge_acked = false;
  for (const CausalRecorder::Ack& ack : recorder.acks()) {
    if (recorder.source_of(ack).kind == EdgeKind::process) {
      process_edge_acked = true;
      EXPECT_EQ(ack.at, milliseconds(5));
    }
  }
  EXPECT_TRUE(process_edge_acked);
}

TEST(Causal, ClearResetsAllState) {
  sim::Engine engine;
  CausalRecorder recorder(engine);
  const sim::CausalToken token = recorder.emit(EdgeKind::message, 1, 100);
  recorder.ack(token, 2, 200);
  recorder.bridge(EdgeKind::write_join, 1, 0, 50);
  recorder.interval(EdgeKind::lock_wait, 1, 0, 50);
  recorder.clear();
  EXPECT_TRUE(recorder.emissions().empty());
  EXPECT_TRUE(recorder.acks().empty());
  EXPECT_TRUE(recorder.bridges().empty());
  EXPECT_TRUE(recorder.overlays().empty());
}

}  // namespace
}  // namespace e10::obs
