#include "obs/json.h"

#include <gtest/gtest.h>

namespace e10::obs {
namespace {

TEST(Json, BuildsAndAccesses) {
  Json doc = Json::object();
  doc.set("name", Json::str("e10"));
  doc.set("ranks", Json::integer(64));
  doc.set("ratio", Json::number(0.75));
  doc.set("ok", Json::boolean(true));
  Json list = Json::array();
  list.push(Json::integer(1));
  list.push(Json::integer(2));
  doc.set("list", std::move(list));

  EXPECT_EQ(doc.at("name").as_string(), "e10");
  EXPECT_EQ(doc.at("ranks").as_int(), 64);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 0.75);
  EXPECT_TRUE(doc.at("ok").as_bool());
  ASSERT_EQ(doc.at("list").size(), 2u);
  EXPECT_EQ(doc.at("list").at(1).as_int(), 2);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::logic_error);
  EXPECT_THROW(doc.at("name").as_int(), std::logic_error);
}

TEST(Json, SetReplacesInPlaceKeepingOrder) {
  Json doc = Json::object();
  doc.set("a", Json::integer(1));
  doc.set("b", Json::integer(2));
  doc.set("a", Json::integer(3));
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "a");
  EXPECT_EQ(doc.members()[0].second.as_int(), 3);
  EXPECT_EQ(doc.members()[1].first, "b");
}

TEST(Json, DumpParseRoundTrip) {
  Json doc = Json::object();
  doc.set("text", Json::str("line1\nline2 \"quoted\" \\slash\t"));
  doc.set("neg", Json::integer(-42));
  doc.set("pi", Json::number(3.25));
  doc.set("none", Json::null());
  Json inner = Json::array();
  inner.push(Json::boolean(false));
  inner.push(Json::str(""));
  doc.set("inner", std::move(inner));

  for (const int indent : {0, 2}) {
    const auto parsed = Json::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
    const Json& back = parsed.value();
    EXPECT_EQ(back.at("text").as_string(), "line1\nline2 \"quoted\" \\slash\t");
    EXPECT_EQ(back.at("neg").as_int(), -42);
    EXPECT_DOUBLE_EQ(back.at("pi").as_number(), 3.25);
    EXPECT_TRUE(back.at("none").is_null());
    EXPECT_FALSE(back.at("inner").at(0).as_bool());
    EXPECT_EQ(back.at("inner").at(1).as_string(), "");
  }
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").is_ok());
  EXPECT_FALSE(Json::parse("{").is_ok());
  EXPECT_FALSE(Json::parse("[1,]").is_ok());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").is_ok());
  EXPECT_FALSE(Json::parse("\"unterminated").is_ok());
  EXPECT_TRUE(Json::parse(" { \"a\" : [ 1 , 2.5 , null ] } ").is_ok());
}

TEST(Json, EscapesControlCharacters) {
  std::string out;
  json_escape(std::string("a\"b\\c\n\x01", 7), out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\u0001");
}

TEST(Json, EscapesEveryShortFormControl) {
  std::string out;
  json_escape("\r\t\b\f", out);
  EXPECT_EQ(out, "\\r\\t\\b\\f");
  // Boundary control bytes take the \u form; 0x20 and above pass through.
  out.clear();
  json_escape(std::string("\x1f\x20\x7f", 3), out);
  EXPECT_EQ(out, "\\u001f \x7f");
  // Multi-byte UTF-8 passes through untouched (bytes >= 0x80).
  out.clear();
  json_escape("caf\xc3\xa9", out);
  EXPECT_EQ(out, "caf\xc3\xa9");
}

TEST(Json, EscapedStringsRoundTripThroughDump) {
  // Span/track names with quotes, backslashes and newlines must come back
  // byte-identical after dump + parse — the trace writer shares
  // json_escape, so this covers the Chrome-trace string path too.
  const std::string nasty =
      std::string("path \"C:\\tmp\"\nline2\ttab\x01", 24);
  Json doc = Json::object();
  doc.set("name", Json::str(nasty));
  const auto back = Json::parse(doc.dump());
  ASSERT_TRUE(back.is_ok()) << back.status().message();
  EXPECT_EQ(back.value().at("name").as_string(), nasty);
}

}  // namespace
}  // namespace e10::obs
