// The concurrency checker against seeded fixtures (a planted race, a
// planted lock-order inversion), clean lock disciplines, the full MPI-IO
// stack in coherent cache mode, and its determinism guarantee.
#include <gtest/gtest.h>

#include <string>

#include "analysis/checker.h"
#include "common/units.h"
#include "mpiio/file.h"
#include "sim/concurrency.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "workloads/testbed.h"

namespace e10::analysis {
namespace {

using namespace e10::units;
using sim::Engine;
using sim::MonitorGuard;
using sim::SharedVar;
using sim::SimLock;
using sim::SimMutex;

// ---- Fixture 1: a seeded unsynchronized access ----------------------------

TEST(ConcurrencyChecker_, FlagsUnsynchronizedSharedWrite) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SharedVar counter(engine, "fixture.counter");
  engine.spawn("writer-a", [&] {
    E10_SHARED_WRITE(counter);
    engine.delay(milliseconds(1));
    E10_SHARED_WRITE(counter);
  });
  engine.spawn("writer-b", [&] {
    engine.delay(microseconds(500));
    E10_SHARED_WRITE(counter);  // no lock in common with writer-a
  });
  engine.run();

  const AnalysisSummary s = checker.summary();
  // Findings dedupe per (variable, site): writer-b's access flags the race,
  // and writer-a's later write from its own (distinct) site flags once too.
  ASSERT_EQ(s.races.size(), 2u);
  const RaceFinding& race = s.races[0];
  EXPECT_EQ(race.var, "fixture.counter");
  EXPECT_EQ(race.process, "writer-b");
  EXPECT_EQ(race.prior_process, "writer-a");
  EXPECT_TRUE(race.write);
  // Both access sites are named, and they are distinct lines of this file.
  EXPECT_NE(race.site.find("checker_test.cpp"), std::string::npos);
  EXPECT_NE(race.prior_site.find("checker_test.cpp"), std::string::npos);
  EXPECT_NE(race.site, race.prior_site);
  EXPECT_EQ(race.at, microseconds(500));
  EXPECT_TRUE(s.cycles.empty());
}

TEST(ConcurrencyChecker_, ReadOnlySharingIsNotARace) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SharedVar table(engine, "fixture.table");
  engine.spawn("init", [&] { E10_SHARED_WRITE(table); });
  for (int i = 0; i < 3; ++i) {
    engine.spawn("reader-" + std::to_string(i), [&] {
      engine.delay(milliseconds(1));
      E10_SHARED_READ(table);
    });
  }
  engine.run();
  EXPECT_TRUE(checker.summary().races.empty());
}

TEST(ConcurrencyChecker_, ConsistentLockingIsClean) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SimMutex mutex(engine, "fixture.mutex");
  SharedVar counter(engine, "fixture.counter");
  for (int i = 0; i < 4; ++i) {
    engine.spawn("worker-" + std::to_string(i), [&] {
      for (int round = 0; round < 3; ++round) {
        const SimLock lock(mutex);
        E10_SHARED_WRITE(counter);
        engine.delay(microseconds(100));
      }
    });
  }
  engine.run();
  const AnalysisSummary s = checker.summary();
  EXPECT_TRUE(s.races.empty());
  EXPECT_TRUE(s.cycles.empty());
  EXPECT_GE(s.lock_acquisitions, 12u);
}

TEST(ConcurrencyChecker_, MonitorCountsTowardLocksets) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  int guarded_object = 0;
  SharedVar var(engine, "fixture.monitored");
  for (int i = 0; i < 2; ++i) {
    engine.spawn("poster-" + std::to_string(i), [&, i] {
      engine.delay(microseconds(10 * (i + 1)));
      const MonitorGuard monitor(engine, &guarded_object, "fixture.monitor");
      E10_SHARED_WRITE(var);
    });
  }
  engine.run();
  EXPECT_TRUE(checker.summary().races.empty());
}

// ---- Fixture 2: a seeded AB/BA lock-order inversion -----------------------

TEST(ConcurrencyChecker_, FlagsLockOrderInversionOnCompletingRun) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SimMutex a(engine, "fixture.A");
  SimMutex b(engine, "fixture.B");
  engine.spawn("ab", [&] {
    const SimLock first(a);
    const SimLock second(b);
  });
  engine.spawn("ba", [&] {
    // Runs strictly after "ab" released both locks: the schedule completes,
    // the inversion is still a potential deadlock and must be reported.
    engine.delay(milliseconds(1));
    const SimLock first(b);
    const SimLock second(a);
  });
  engine.run();  // completes — no actual deadlock on this schedule

  const AnalysisSummary s = checker.summary();
  ASSERT_EQ(s.cycles.size(), 1u);
  const CycleFinding& cycle = s.cycles[0];
  ASSERT_EQ(cycle.locks.size(), 2u);
  EXPECT_EQ(cycle.locks[0], "fixture.A");
  EXPECT_EQ(cycle.locks[1], "fixture.B");
  ASSERT_EQ(cycle.edges.size(), 2u);
  EXPECT_NE(cycle.edges[0].find("fixture.A -> fixture.B by ab"),
            std::string::npos);
  EXPECT_NE(cycle.edges[1].find("fixture.B -> fixture.A by ba"),
            std::string::npos);
  EXPECT_TRUE(s.races.empty());
  EXPECT_EQ(s.max_lock_depth, 2u);
}

TEST(ConcurrencyChecker_, ConsistentNestingHasNoCycles) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SimMutex a(engine, "fixture.A");
  SimMutex b(engine, "fixture.B");
  for (int i = 0; i < 2; ++i) {
    engine.spawn("nested-" + std::to_string(i), [&] {
      const SimLock first(a);
      engine.delay(microseconds(50));
      const SimLock second(b);
    });
  }
  engine.run();
  const AnalysisSummary s = checker.summary();
  EXPECT_TRUE(s.cycles.empty());
  EXPECT_EQ(s.max_lock_depth, 2u);
}

TEST(ConcurrencyChecker_, MonitorsAreExcludedFromTheOrderGraph) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SimMutex a(engine, "fixture.A");
  int object = 0;
  // monitor -> A in one process, A -> monitor in the other: would be a
  // cycle if monitors ordered, but monitors cannot block.
  engine.spawn("m-then-a", [&] {
    const MonitorGuard monitor(engine, &object, "fixture.monitor");
    const SimLock lock(a);
  });
  engine.spawn("a-then-m", [&] {
    engine.delay(milliseconds(1));
    const SimLock lock(a);
    const MonitorGuard monitor(engine, &object, "fixture.monitor");
  });
  engine.run();
  EXPECT_TRUE(checker.summary().cycles.empty());
}

// ---- Enriched deadlock reports --------------------------------------------

TEST(ConcurrencyChecker_, DeadlockErrorNamesHeldAndWantedLocks) {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SimMutex a(engine, "fixture.A");
  SimMutex b(engine, "fixture.B");
  engine.spawn("ab", [&] {
    const SimLock first(a);
    engine.delay(milliseconds(1));
    const SimLock second(b);
  });
  engine.spawn("ba", [&] {
    const SimLock first(b);
    engine.delay(milliseconds(1));
    const SimLock second(a);
  });
  try {
    engine.run();
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("ab blocked on"), std::string::npos) << what;
    EXPECT_NE(what.find("at t=1.00 ms"), std::string::npos) << what;
    EXPECT_NE(what.find("holding {fixture.A}"), std::string::npos) << what;
    EXPECT_NE(what.find("acquiring mutex fixture.B"), std::string::npos)
        << what;
    EXPECT_NE(what.find("holding {fixture.B}"), std::string::npos) << what;
  }
  // The inversion is also in the order graph.
  EXPECT_EQ(checker.summary().cycles.size(), 1u);
}

// ---- Fixture 3: the real pipeline is clean --------------------------------

mpi::Info coherent_cached_info() {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");
  info.set("e10_cache", "coherent");
  info.set("e10_cache_path", "/scratch");
  info.set("e10_cache_flush_flag", "flush_immediate");
  info.set("e10_cache_discard_flag", "enable");
  info.set("ind_wr_buffer_size", "524288");
  return info;
}

void run_coherent_collective_write(workloads::Platform& p) {
  constexpr Offset kBlock = 32 * KiB;
  p.launch([&](mpi::Comm comm) {
    auto file = mpiio::File::open(p.ctx, comm, "/pfs/checked",
                                  adio::amode::create | adio::amode::rdwr,
                                  coherent_cached_info());
    ASSERT_TRUE(file.is_ok());
    std::vector<mpi::IoPiece> pieces;
    for (int b = 0; b < 4; ++b) {
      const Offset off = (b * comm.size() + comm.rank()) * kBlock;
      pieces.push_back(
          mpi::IoPiece{Extent{off, kBlock}, DataView::synthetic(7, off, kBlock)});
    }
    ASSERT_TRUE(adio::write_strided_coll(*file.value().raw(), pieces));
    ASSERT_TRUE(file.value().close());
  });
  p.run();
}

TEST(ConcurrencyChecker_, CoherentCollectiveWriteIsClean) {
  workloads::Platform p(workloads::small_testbed());
  ConcurrencyChecker checker(p.engine);
  run_coherent_collective_write(p);

  const AnalysisSummary s = checker.summary();
  EXPECT_EQ(s.races.size(), 0u) << checker.to_json().dump(2);
  EXPECT_EQ(s.cycles.size(), 0u) << checker.to_json().dump(2);
  // The run exercised the instrumented stack for real: extent locks,
  // monitors and registered shared state all reported.
  EXPECT_GT(s.shared_vars, 8u);
  EXPECT_GT(s.shared_accesses, 50u);
  EXPECT_GT(s.lock_acquisitions, 50u);
  EXPECT_GE(s.max_lock_depth, 1u);
}

// ---- Determinism ----------------------------------------------------------

std::string seeded_scenario_report() {
  Engine engine;
  ConcurrencyChecker checker(engine);
  SimMutex a(engine, "fixture.A");
  SimMutex b(engine, "fixture.B");
  SharedVar counter(engine, "fixture.counter");
  engine.spawn("ab", [&] {
    const SimLock first(a);
    const SimLock second(b);
    E10_SHARED_WRITE(counter);
  });
  engine.spawn("ba", [&] {
    engine.delay(milliseconds(1));
    const SimLock first(b);
    const SimLock second(a);
    E10_SHARED_WRITE(counter);
  });
  engine.spawn("rogue", [&] {
    engine.delay(milliseconds(2));
    E10_SHARED_WRITE(counter);  // races: holds neither A nor B
  });
  engine.run();
  return checker.to_json().dump(2);
}

TEST(ConcurrencyChecker_, SeededScenarioReportIsByteIdentical) {
  const std::string first = seeded_scenario_report();
  const std::string second = seeded_scenario_report();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The scenario has both planted findings.
  EXPECT_NE(first.find("\"races_found\": 1"), std::string::npos) << first;
  EXPECT_NE(first.find("\"cycles_found\": 1"), std::string::npos) << first;
}

std::string full_stack_report() {
  workloads::Platform p(workloads::small_testbed());
  ConcurrencyChecker checker(p.engine);
  run_coherent_collective_write(p);
  return checker.to_json().dump(2);
}

TEST(ConcurrencyChecker_, FullStackReportIsByteIdentical) {
  EXPECT_EQ(full_stack_report(), full_stack_report());
}

}  // namespace
}  // namespace e10::analysis
