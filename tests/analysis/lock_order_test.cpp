// Declared-vs-dynamic lock-order cross-check (analysis/lock_order.h): the
// manifest must be internally consistent, each declared rule must actually
// be witnessed by the real stack (no dead documentation), and a run whose
// observed acquisition order reverses a declared rule must be flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/lock_order.h"
#include "common/dataview.h"
#include "common/units.h"
#include "mpiio/file.h"
#include "sim/concurrency.h"
#include "workloads/testbed.h"

namespace e10::analysis {
namespace {

using namespace e10::units;

TEST(DeclaredLockOrder, ManifestIsAcyclicAndJustified) {
  const std::vector<DeclaredOrderRule>& rules = declared_lock_order();
  ASSERT_FALSE(rules.empty());
  for (const DeclaredOrderRule& rule : rules) {
    EXPECT_NE(rule.before, rule.after);
    EXPECT_NE(std::string(rule.rationale), "") << rule.before;
    // A reversed duplicate would declare both orders at once.
    const bool reversed =
        std::any_of(rules.begin(), rules.end(), [&](const DeclaredOrderRule& r) {
          return r.before == rule.after && r.after == rule.before;
        });
    EXPECT_FALSE(reversed) << rule.before << " <-> " << rule.after;
  }
}

TEST(DeclaredLockOrder, ClassCollapsesInstanceSuffix) {
  EXPECT_EQ(lock_order_class(sim::LockKind::extent,
                             "extent:/pfs/a[0,4096)"),
            "extent");
  EXPECT_EQ(lock_order_class(sim::LockKind::mutex,
                             "cache.sync.stats_mutex:/pfs/a"),
            "mutex:cache.sync.stats_mutex");
  EXPECT_EQ(lock_order_class(sim::LockKind::mutex, "fixture.A"),
            "mutex:fixture.A");
}

TEST(DeclaredLockOrder, ReversedObservationIsAViolation) {
  // Synthetic observation of stats-mutex-then-extent: the reverse of the
  // declared "extent < stats mutex" rule.
  std::vector<OrderEdge> edges;
  edges.push_back({"cache.sync.stats_mutex:/pfs/a", "extent:/pfs/a[0,4096)",
                   sim::LockKind::mutex, sim::LockKind::extent,
                   "stats -> extent by rank-0 at t=1.00 ms"});
  const std::vector<std::string> violations = check_declared_order(edges);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("contradicts declared order"),
            std::string::npos);
  EXPECT_NE(violations[0].find("extent"), std::string::npos);
}

TEST(DeclaredLockOrder, ConformingAndUnlistedEdgesAreClean) {
  std::vector<OrderEdge> edges;
  // The declared direction itself.
  edges.push_back({"extent:/pfs/a[0,4096)", "cache.sync.stats_mutex:/pfs/a",
                   sim::LockKind::extent, sim::LockKind::mutex, "ok"});
  // Same-class nesting (two extents) and an unlisted pair.
  edges.push_back({"extent:/pfs/a[0,4096)", "extent:/pfs/a[4096,8192)",
                   sim::LockKind::extent, sim::LockKind::extent, "nested"});
  edges.push_back({"fixture.A", "fixture.B", sim::LockKind::mutex,
                   sim::LockKind::mutex, "unrelated"});
  EXPECT_TRUE(check_declared_order(edges).empty());
}

mpi::Info coherent_cached_info() {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", "262144");
  info.set("e10_cache", "coherent");
  info.set("e10_cache_path", "/scratch");
  info.set("e10_cache_flush_flag", "flush_immediate");
  info.set("e10_cache_discard_flag", "enable");
  info.set("ind_wr_buffer_size", "524288");
  return info;
}

TEST(DeclaredLockOrder, CoherentWriteWitnessesEveryRuleAndConforms) {
  workloads::Platform p(workloads::small_testbed());
  ConcurrencyChecker checker(p.engine);
  constexpr Offset kBlock = 32 * KiB;
  p.launch([&](mpi::Comm comm) {
    auto file = mpiio::File::open(p.ctx, comm, "/pfs/ordered",
                                  adio::amode::create | adio::amode::rdwr,
                                  coherent_cached_info());
    ASSERT_TRUE(file.is_ok());
    std::vector<mpi::IoPiece> pieces;
    for (int b = 0; b < 4; ++b) {
      const Offset off = (b * comm.size() + comm.rank()) * kBlock;
      pieces.push_back(mpi::IoPiece{Extent{off, kBlock},
                                    DataView::synthetic(7, off, kBlock)});
    }
    ASSERT_TRUE(adio::write_strided_coll(*file.value().raw(), pieces));
    ASSERT_TRUE(file.value().close());
  });
  p.run();

  const std::vector<OrderEdge> edges = checker.order_edges();
  ASSERT_FALSE(edges.empty());
  // Nothing observed may reverse a declared rule...
  const std::vector<std::string> violations = check_declared_order(edges);
  EXPECT_TRUE(violations.empty()) << violations.front();
  // ...and every declared rule must be witnessed by this run — a rule no
  // schedule exercises is dead documentation, not a checked invariant.
  for (const DeclaredOrderRule& rule : declared_lock_order()) {
    const bool witnessed =
        std::any_of(edges.begin(), edges.end(), [&](const OrderEdge& e) {
          return lock_order_class(e.before_kind, e.before) == rule.before &&
                 lock_order_class(e.after_kind, e.after) == rule.after;
        });
    EXPECT_TRUE(witnessed) << rule.before << " < " << rule.after;
  }
}

TEST(OrderEdges, ExportMatchesSeededAcquisitions) {
  sim::Engine engine;
  ConcurrencyChecker checker(engine);
  sim::SimMutex a(engine, "fixture.A");
  sim::SimMutex b(engine, "fixture.B");
  engine.spawn("ab", [&] {
    const sim::SimLock first(a);
    const sim::SimLock second(b);
  });
  engine.run();
  const std::vector<OrderEdge> edges = checker.order_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].before, "fixture.A");
  EXPECT_EQ(edges[0].after, "fixture.B");
  EXPECT_EQ(edges[0].before_kind, sim::LockKind::mutex);
  EXPECT_NE(edges[0].example.find("by ab"), std::string::npos);
}

}  // namespace
}  // namespace e10::analysis
