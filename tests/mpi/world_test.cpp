#include <gtest/gtest.h>

#include <vector>

#include "mpi/world.h"

namespace e10::mpi {
namespace {

TEST(Topology, BlockPlacement) {
  const Topology t(4, 8);
  EXPECT_EQ(t.ranks(), 32u);
  EXPECT_EQ(t.node_of(0), 0u);
  EXPECT_EQ(t.node_of(7), 0u);
  EXPECT_EQ(t.node_of(8), 1u);
  EXPECT_EQ(t.node_of(31), 3u);
  EXPECT_THROW((void)t.node_of(32), std::logic_error);
  EXPECT_THROW((void)t.node_of(-1), std::logic_error);
}

TEST(Topology, RanksOnNode) {
  const Topology t(2, 3);
  EXPECT_EQ(t.ranks_on(1), (std::vector<int>{3, 4, 5}));
  EXPECT_THROW((void)t.ranks_on(2), std::logic_error);
}

TEST(Topology, ZeroSizesThrow) {
  EXPECT_THROW(Topology(0, 1), std::logic_error);
  EXPECT_THROW(Topology(1, 0), std::logic_error);
}

TEST(World, LaunchRunsEveryRank) {
  sim::Engine engine;
  net::Fabric fabric(4, net::FabricParams{});
  World world(engine, fabric, Topology(4, 4));
  std::vector<bool> ran(16, false);
  world.launch([&](Comm comm) {
    EXPECT_EQ(comm.size(), 16);
    EXPECT_EQ(comm.node(), comm.node_of(comm.rank()));
    ran[static_cast<std::size_t>(comm.rank())] = true;
  });
  engine.run();
  for (const bool r : ran) EXPECT_TRUE(r);
}

TEST(World, CommForRankOutOfRangeThrows) {
  sim::Engine engine;
  net::Fabric fabric(1, net::FabricParams{});
  World world(engine, fabric, Topology(1, 2));
  EXPECT_THROW(world.comm(2), std::logic_error);
  EXPECT_THROW(world.comm(-1), std::logic_error);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine engine;
    net::Fabric fabric(8, net::FabricParams{});
    World world(engine, fabric, Topology(8, 4));
    std::vector<Time> finish(32);
    world.launch([&](Comm comm) {
      for (int i = 0; i < 3; ++i) {
        comm.engine().delay(units::microseconds((comm.rank() * 13) % 17));
        comm.barrier();
        if (comm.rank() % 2 == 0 && comm.rank() + 1 < comm.size()) {
          comm.send(comm.rank() + 1, i, comm.rank(), 1024);
        } else if (comm.rank() % 2 == 1) {
          (void)comm.recv(comm.rank() - 1, i);
        }
      }
      finish[static_cast<std::size_t>(comm.rank())] = comm.engine().now();
    });
    engine.run();
    return finish;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace e10::mpi
