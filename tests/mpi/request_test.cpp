#include "mpi/request.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "mpi/info.h"

namespace e10::mpi {
namespace {

using namespace e10::units;

TEST(Request, InvalidRequestThrows) {
  Request r;
  EXPECT_FALSE(r.valid());
  EXPECT_THROW(r.wait(), std::logic_error);
  EXPECT_THROW((void)r.test(), std::logic_error);
  EXPECT_THROW((void)r.packet(), std::logic_error);
}

TEST(Request, GrequestCompleteWakesWaiter) {
  sim::Engine engine;
  Request grequest;
  Time woke = -1;
  engine.spawn("completer", [&] {
    grequest = Request::grequest(engine);
    engine.delay(seconds(1));
    grequest.complete();
  });
  engine.spawn("waiter", [&] {
    engine.delay(milliseconds(1));  // let the completer create it
    ASSERT_TRUE(grequest.valid());
    EXPECT_FALSE(grequest.test());
    grequest.wait();
    woke = engine.now();
  });
  engine.run();
  EXPECT_EQ(woke, seconds(1));
}

TEST(Request, GrequestCompleteAtFutureTime) {
  // The cache sync thread completes requests at the modeled I/O completion
  // time without blocking itself — this is the mechanism under MPI_Wait in
  // ADIOI_GEN_Flush.
  sim::Engine engine;
  Request grequest;
  Time woke = -1;
  engine.spawn("sync-thread", [&] {
    grequest = Request::grequest(engine);
    grequest.complete_at(seconds(7));  // future completion, no blocking
    EXPECT_EQ(engine.now(), 0);
  });
  engine.spawn("app", [&] {
    engine.delay(seconds(1));
    grequest.wait();
    woke = engine.now();
  });
  engine.run();
  EXPECT_EQ(woke, seconds(7));
}

TEST(Request, WaitAllAdvancesToMax) {
  sim::Engine engine;
  std::vector<Request> reqs;
  Time done = -1;
  engine.spawn("owner", [&] {
    for (int i = 1; i <= 3; ++i) {
      Request r = Request::grequest(engine);
      r.complete_at(seconds(i));
      reqs.push_back(r);
    }
    Request::wait_all(reqs);
    done = engine.now();
  });
  engine.run();
  EXPECT_EQ(done, seconds(3));
}

TEST(Request, WaitAllSkipsInvalidEntries) {
  sim::Engine engine;
  Time done = -1;
  engine.spawn("owner", [&] {
    std::vector<Request> reqs(3);  // all invalid
    Request r = Request::grequest(engine);
    r.complete_at(seconds(2));
    reqs.push_back(r);
    Request::wait_all(reqs);
    done = engine.now();
  });
  engine.run();
  EXPECT_EQ(done, seconds(2));
}

TEST(Info, SetGetMerge) {
  Info a;
  a.set("cb_nodes", "16");
  a.set("e10_cache", "enable");
  EXPECT_EQ(a.get_or("cb_nodes", ""), "16");
  EXPECT_FALSE(a.get("missing").has_value());
  EXPECT_EQ(a.get_or("missing", "dflt"), "dflt");
  EXPECT_TRUE(a.has("e10_cache"));

  Info b;
  b.set("cb_nodes", "64");
  b.set("cb_buffer_size", "16777216");
  a.merge(b);
  EXPECT_EQ(a.get_or("cb_nodes", ""), "64");
  EXPECT_EQ(a.size(), 3u);

  a.erase("e10_cache");
  EXPECT_FALSE(a.has("e10_cache"));
  EXPECT_EQ(a.keys().size(), 2u);
}

}  // namespace
}  // namespace e10::mpi
