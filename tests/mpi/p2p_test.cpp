#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "mpi/world.h"

namespace e10::mpi {
namespace {

using namespace e10::units;

struct Fixture {
  Fixture(std::size_t nodes, std::size_t ppn)
      : fabric(nodes, net::FabricParams{}),
        world(engine, fabric, Topology(nodes, ppn)) {}
  sim::Engine engine;
  net::Fabric fabric;
  World world;
};

TEST(P2P, SendRecvDeliversPayload) {
  Fixture f(2, 1);
  std::string got;
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/7, std::string("hello"), 5);
    } else {
      const Packet p = comm.recv(0, 7);
      got = std::any_cast<std::string>(p.payload);
      EXPECT_EQ(p.src, 0);
      EXPECT_EQ(p.tag, 7);
      EXPECT_EQ(p.bytes, 5);
    }
  });
  f.engine.run();
  EXPECT_EQ(got, "hello");
}

TEST(P2P, RecvBlocksUntilMessageArrives) {
  Fixture f(2, 1);
  Time recv_done = -1;
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      comm.engine().delay(seconds(1));
      comm.send(1, 0, 42, 4);
    } else {
      (void)comm.recv(0, 0);
      recv_done = comm.engine().now();
    }
  });
  f.engine.run();
  EXPECT_GT(recv_done, seconds(1));  // waited for the sender + transfer time
  EXPECT_LT(recv_done, seconds(1) + milliseconds(1));
}

TEST(P2P, TagMatchingIsSelective) {
  Fixture f(2, 1);
  std::vector<int> got;
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/1, 100, 4);
      comm.send(1, /*tag=*/2, 200, 4);
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      got.push_back(std::any_cast<int>(comm.recv(0, 2).payload));
      got.push_back(std::any_cast<int>(comm.recv(0, 1).payload));
    }
  });
  f.engine.run();
  EXPECT_EQ(got, (std::vector<int>{200, 100}));
}

TEST(P2P, FifoOrderPerSourceAndTag) {
  Fixture f(2, 1);
  std::vector<int> got;
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 4; ++i) comm.send(1, 5, i, 4);
    } else {
      for (int i = 0; i < 4; ++i) {
        got.push_back(std::any_cast<int>(comm.recv(0, 5).payload));
      }
    }
  });
  f.engine.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(P2P, AnySourceAndAnyTag) {
  Fixture f(3, 1);
  int sum = 0;
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 2) {
      sum += std::any_cast<int>(comm.recv(kAnySource, kAnyTag).payload);
      sum += std::any_cast<int>(comm.recv(kAnySource, kAnyTag).payload);
    } else {
      comm.engine().delay(microseconds(comm.rank() + 1));
      comm.send(2, comm.rank(), comm.rank() + 1, 4);
    }
  });
  f.engine.run();
  EXPECT_EQ(sum, 3);
}

TEST(P2P, IsendIrecvWaitall) {
  Fixture f(4, 1);
  std::vector<int> received(4, -1);
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      std::vector<Request> reqs;
      for (int src = 1; src < 4; ++src) reqs.push_back(comm.irecv(src, 0));
      Request::wait_all(reqs);
      for (int i = 0; i < 3; ++i) {
        const Packet& p = reqs[static_cast<std::size_t>(i)].packet();
        received[static_cast<std::size_t>(p.src)] = std::any_cast<int>(p.payload);
      }
    } else {
      Request r = comm.isend(0, 0, comm.rank() * 10, 4);
      r.wait();
    }
  });
  f.engine.run();
  EXPECT_EQ(received[1], 10);
  EXPECT_EQ(received[2], 20);
  EXPECT_EQ(received[3], 30);
}

TEST(P2P, LargeMessageTakesLongerThanSmall) {
  auto elapsed_for = [](Offset bytes) {
    Fixture f(2, 1);
    Time done = 0;
    f.world.launch([&, bytes](Comm comm) {
      if (comm.rank() == 0) {
        comm.send(1, 0, 0, bytes);
      } else {
        (void)comm.recv(0, 0);
        done = comm.engine().now();
      }
    });
    f.engine.run();
    return done;
  };
  const Time small = elapsed_for(1 * units::KiB);
  const Time large = elapsed_for(64 * units::MiB);
  EXPECT_GT(large, small * 100);
}

TEST(P2P, IntraNodeFasterThanInterNode) {
  auto elapsed = [](std::size_t nodes, std::size_t ppn) {
    Fixture f(nodes, ppn);
    Time done = 0;
    f.world.launch([&](Comm comm) {
      if (comm.rank() == 0) {
        comm.send(1, 0, 0, 4 * units::MiB);
      } else {
        (void)comm.recv(0, 0);
        done = comm.engine().now();
      }
    });
    f.engine.run();
    return done;
  };
  // Same two ranks; co-located vs on different nodes.
  EXPECT_LT(elapsed(1, 2), elapsed(2, 1));
}

TEST(P2P, EagerSendCompletesBeforeDelivery) {
  Fixture f(2, 1);
  Time send_done = -1;
  Time recv_done = -1;
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      Request r = comm.isend(1, 0, 1, 1 * units::KiB);  // below threshold
      r.wait();
      send_done = comm.engine().now();
    } else {
      comm.engine().delay(seconds(1));  // receiver is late
      (void)comm.recv(0, 0);
      recv_done = comm.engine().now();
    }
  });
  f.engine.run();
  EXPECT_LT(send_done, milliseconds(1));  // sender did not wait for receiver
  EXPECT_GE(recv_done, seconds(1));
}

TEST(P2P, RendezvousSendWaitsForReceiver) {
  Fixture f(2, 1);
  Time send_done = -1;
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      Request r = comm.isend(1, 0, 1, 4 * units::MiB);  // above threshold
      r.wait();
      send_done = comm.engine().now();
    } else {
      comm.engine().delay(seconds(1));  // receiver is late
      (void)comm.recv(0, 0);
    }
  });
  f.engine.run();
  EXPECT_GE(send_done, seconds(1));  // sender blocked until match
}

TEST(P2P, IncastContentionSerializesAtReceiverNic) {
  // 8 senders on 8 distinct nodes each push 8 MiB to rank 0: total delivery
  // time must be at least 8x a single transfer (receive NIC serializes).
  auto run = [](int senders) {
    sim::Engine engine;
    net::Fabric fabric(static_cast<std::size_t>(senders) + 1,
                       net::FabricParams{});
    World world(engine, fabric,
                Topology(static_cast<std::size_t>(senders) + 1, 1));
    Time done = 0;
    world.launch([&, senders](Comm comm) {
      if (comm.rank() == 0) {
        std::vector<Request> reqs;
        for (int s = 1; s <= senders; ++s) reqs.push_back(comm.irecv(s, 0));
        Request::wait_all(reqs);
        done = comm.engine().now();
      } else {
        comm.send(0, 0, 0, 8 * units::MiB);
      }
    });
    engine.run();
    return done;
  };
  // One transfer costs ~2x wire time (tx + rx serialization); with 8
  // concurrent senders the tx sides overlap but the single rx NIC drains
  // them serially: total ~ (8+1) x wire = 4.5x a single transfer.
  const Time one = run(1);
  const Time eight = run(8);
  EXPECT_GT(eight, 4 * one);
  EXPECT_LT(eight, 6 * one);
}

TEST(P2P, SendToOutOfRangeRankThrows) {
  Fixture f(2, 1);
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) comm.send(5, 0, 0, 1);
  });
  EXPECT_THROW(f.engine.run(), std::logic_error);
}

}  // namespace
}  // namespace e10::mpi
