#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/units.h"
#include "mpi/world.h"

namespace e10::mpi {
namespace {

using namespace e10::units;

struct Fixture {
  Fixture(std::size_t nodes, std::size_t ppn)
      : fabric(nodes, net::FabricParams{}),
        world(engine, fabric, Topology(nodes, ppn)) {}
  sim::Engine engine;
  net::Fabric fabric;
  World world;
};

TEST(Collectives, BarrierSynchronizesToSlowest) {
  Fixture f(4, 1);
  std::vector<Time> leave(4, -1);
  f.world.launch([&](Comm comm) {
    comm.engine().delay(seconds(comm.rank() + 1));
    comm.barrier();
    leave[static_cast<std::size_t>(comm.rank())] = comm.engine().now();
  });
  f.engine.run();
  for (const Time t : leave) {
    EXPECT_GE(t, seconds(4));  // slowest rank arrived at 4 s
    EXPECT_LT(t, seconds(4) + milliseconds(1));
  }
}

TEST(Collectives, AllreduceMaxAndSum) {
  Fixture f(8, 1);
  std::vector<Offset> maxes(8), sums(8);
  f.world.launch([&](Comm comm) {
    const Offset mine = comm.rank() * 10;
    maxes[static_cast<std::size_t>(comm.rank())] = comm.allreduce(
        mine, [](Offset a, Offset b) { return std::max(a, b); });
    sums[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce(mine, [](Offset a, Offset b) { return a + b; });
  });
  f.engine.run();
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(maxes[static_cast<std::size_t>(r)], 70);
    EXPECT_EQ(sums[static_cast<std::size_t>(r)], 280);
  }
}

TEST(Collectives, AllgatherOrderedByRank) {
  Fixture f(4, 2);
  std::vector<std::vector<int>> results(8);
  f.world.launch([&](Comm comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        comm.allgather(comm.rank() * comm.rank());
  });
  f.engine.run();
  for (const auto& v : results) {
    ASSERT_EQ(v.size(), 8u);
    for (int r = 0; r < 8; ++r) EXPECT_EQ(v[static_cast<std::size_t>(r)], r * r);
  }
}

TEST(Collectives, AlltoallTransposes) {
  Fixture f(4, 1);
  std::vector<std::vector<int>> results(4);
  f.world.launch([&](Comm comm) {
    // Rank r sends value 100*r + d to rank d.
    std::vector<int> send;
    for (int d = 0; d < 4; ++d) send.push_back(100 * comm.rank() + d);
    results[static_cast<std::size_t>(comm.rank())] = comm.alltoall(send);
  });
  f.engine.run();
  for (int r = 0; r < 4; ++r) {
    const auto& got = results[static_cast<std::size_t>(r)];
    ASSERT_EQ(got.size(), 4u);
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(got[static_cast<std::size_t>(s)], 100 * s + r);
    }
  }
}

TEST(Collectives, BcastDeliversRootValue) {
  Fixture f(4, 1);
  std::vector<std::string> results(4);
  f.world.launch([&](Comm comm) {
    const std::string mine =
        comm.rank() == 2 ? std::string("root-data") : std::string("junk");
    results[static_cast<std::size_t>(comm.rank())] =
        comm.bcast(mine, /*root=*/2, 9);
  });
  f.engine.run();
  for (const auto& s : results) EXPECT_EQ(s, "root-data");
}

TEST(Collectives, GatherOnlyRootReceives) {
  Fixture f(4, 1);
  std::vector<std::vector<int>> results(4);
  f.world.launch([&](Comm comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        comm.gather(comm.rank() + 1, /*root=*/0);
  });
  f.engine.run();
  EXPECT_EQ(results[0], (std::vector<int>{1, 2, 3, 4}));
  for (int r = 1; r < 4; ++r) {
    EXPECT_TRUE(results[static_cast<std::size_t>(r)].empty());
  }
}

TEST(Collectives, ReduceOnlyRootGetsValue) {
  Fixture f(4, 1);
  std::vector<int> results(4, -1);
  f.world.launch([&](Comm comm) {
    results[static_cast<std::size_t>(comm.rank())] = comm.reduce(
        comm.rank() + 1, [](int a, int b) { return a + b; }, /*root=*/3);
  });
  f.engine.run();
  EXPECT_EQ(results[3], 10);
  EXPECT_EQ(results[0], 0);  // non-roots get a default value
}

TEST(Collectives, LargerPayloadCostsMore) {
  auto barrier_like_cost = [](Offset bytes) {
    Fixture f(16, 1);
    Time done = 0;
    f.world.launch([&, bytes](Comm comm) {
      (void)comm.allreduce(Offset{1}, [](Offset a, Offset b) { return a + b; },
                           bytes);
      if (comm.rank() == 0) done = comm.engine().now();
    });
    f.engine.run();
    return done;
  };
  EXPECT_GT(barrier_like_cost(4 * MiB), barrier_like_cost(8));
}

TEST(Collectives, MismatchedCollectivesThrow) {
  Fixture f(2, 1);
  f.world.launch([&](Comm comm) {
    if (comm.rank() == 0) {
      comm.barrier();
    } else {
      (void)comm.allgather(1);
    }
  });
  EXPECT_THROW(f.engine.run(), std::logic_error);
}

TEST(Collectives, RepeatedBarriersStayMatched) {
  Fixture f(3, 1);
  std::vector<int> rounds(3, 0);
  f.world.launch([&](Comm comm) {
    for (int i = 0; i < 10; ++i) {
      comm.engine().delay(microseconds(comm.rank() * 7 + 1));
      comm.barrier();
      ++rounds[static_cast<std::size_t>(comm.rank())];
    }
  });
  f.engine.run();
  EXPECT_EQ(rounds, (std::vector<int>{10, 10, 10}));
}

TEST(CommSplit, GroupsByColor) {
  Fixture f(4, 2);  // 8 ranks
  std::vector<int> new_rank(8, -9);
  std::vector<int> new_size(8, -9);
  f.world.launch([&](Comm comm) {
    const int color = comm.rank() % 2;
    const Comm sub = comm.split(color, comm.rank());
    new_rank[static_cast<std::size_t>(comm.rank())] = sub.rank();
    new_size[static_cast<std::size_t>(comm.rank())] = sub.size();
    // Sub-communicator collectives only involve the group.
    const auto members = sub.allgather(comm.rank());
    for (const int m : members) EXPECT_EQ(m % 2, color);
  });
  f.engine.run();
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(new_size[static_cast<std::size_t>(r)], 4);
    EXPECT_EQ(new_rank[static_cast<std::size_t>(r)], r / 2);
  }
}

TEST(CommSplit, KeyControlsOrdering) {
  Fixture f(4, 1);
  std::vector<int> new_rank(4, -1);
  f.world.launch([&](Comm comm) {
    // Reverse ordering via key.
    const Comm sub = comm.split(0, comm.size() - comm.rank());
    new_rank[static_cast<std::size_t>(comm.rank())] = sub.rank();
  });
  f.engine.run();
  EXPECT_EQ(new_rank, (std::vector<int>{3, 2, 1, 0}));
}

TEST(CommSplit, NegativeColorExcluded) {
  Fixture f(4, 1);
  int excluded = 0;
  f.world.launch([&](Comm comm) {
    const Comm sub = comm.split(comm.rank() == 0 ? -1 : 0, 0);
    if (!sub.valid()) ++excluded;
  });
  f.engine.run();
  EXPECT_EQ(excluded, 1);
}

TEST(CommDup, IndependentMatchingContext) {
  Fixture f(2, 1);
  int got = 0;
  f.world.launch([&](Comm comm) {
    const Comm dup = comm.dup();
    if (comm.rank() == 0) {
      comm.send(1, 0, 111, 4);
      dup.send(1, 0, 222, 4);
    } else {
      // Receive on dup first: must get the dup message, not the world one.
      got = std::any_cast<int>(dup.recv(0, 0).payload);
      (void)comm.recv(0, 0);
    }
  });
  f.engine.run();
  EXPECT_EQ(got, 222);
}

}  // namespace
}  // namespace e10::mpi
