#include "mpi/datatype.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace e10::mpi {
namespace {

using namespace e10::units;

TEST(FlatType, Contiguous) {
  const FlatType t = FlatType::contiguous(100);
  EXPECT_EQ(t.size(), 100);
  EXPECT_EQ(t.extent(), 100);
  EXPECT_TRUE(t.is_contiguous());
  const auto extents = t.file_extents(/*disp=*/1000, 0, 250);
  ASSERT_EQ(extents.size(), 1u);  // instances tile contiguously and merge
  EXPECT_EQ(extents[0], (Extent{1000, 250}));
}

TEST(FlatType, VectorShape) {
  // 3 blocks of 10 bytes every 50 bytes.
  const FlatType t = FlatType::vector(3, 10, 50);
  EXPECT_EQ(t.size(), 30);
  EXPECT_EQ(t.extent(), 110);
  EXPECT_FALSE(t.is_contiguous());
  ASSERT_EQ(t.blocks().size(), 3u);
  EXPECT_EQ(t.blocks()[1], (Extent{50, 10}));
}

TEST(FlatType, FileExtentsWithinOneInstance) {
  const FlatType t = FlatType::vector(3, 10, 50);
  // Stream bytes [5, 25) -> tail of block 0, all of block 1, head of block 2.
  const auto extents = t.file_extents(0, 5, 20);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0], (Extent{5, 5}));
  EXPECT_EQ(extents[1], (Extent{50, 10}));
  EXPECT_EQ(extents[2], (Extent{100, 5}));
}

TEST(FlatType, FileExtentsAcrossInstances) {
  const FlatType t = FlatType::vector(2, 4, 8);  // size 8, extent 12
  // Stream bytes [6, 14): block 1 tail of instance 0 (file 8..10) then
  // instance 1 starts at file 12.
  const auto extents = t.file_extents(0, 6, 8);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0], (Extent{10, 2}));  // rest of instance 0 block 1
  EXPECT_EQ(extents[1], (Extent{12, 4}));  // instance 1 block 0
  EXPECT_EQ(extents[2], (Extent{20, 2}));  // instance 1 block 1 head
}

TEST(FlatType, DispShiftsEverything) {
  const FlatType t = FlatType::vector(2, 4, 8);
  const auto base = t.file_extents(0, 0, 8);
  const auto shifted = t.file_extents(1 * MiB, 0, 8);
  ASSERT_EQ(base.size(), shifted.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(shifted[i].offset - base[i].offset, 1 * MiB);
  }
}

TEST(FlatType, Subarray1D) {
  const FlatType t = FlatType::subarray({100}, {20}, {30}, 8);
  ASSERT_EQ(t.blocks().size(), 1u);
  EXPECT_EQ(t.blocks()[0], (Extent{240, 160}));
  EXPECT_EQ(t.extent(), 800);
}

TEST(FlatType, Subarray2D) {
  // 4x6 array of 1-byte elems; sub-box 2x3 at (1, 2).
  const FlatType t = FlatType::subarray({4, 6}, {2, 3}, {1, 2}, 1);
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[0], (Extent{8, 3}));   // row 1, cols 2..4
  EXPECT_EQ(t.blocks()[1], (Extent{14, 3}));  // row 2, cols 2..4
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.extent(), 24);
}

TEST(FlatType, Subarray3D) {
  // 2x2x4 array, sub-box 1x2x2 at (1, 0, 1), elem 2 bytes.
  const FlatType t = FlatType::subarray({2, 2, 4}, {1, 2, 2}, {1, 0, 1}, 2);
  ASSERT_EQ(t.blocks().size(), 2u);
  // plane 1 starts at byte 16; row 0 col 1 -> 16+2=18; row 1 col 1 -> 24+2=26
  EXPECT_EQ(t.blocks()[0], (Extent{18, 4}));
  EXPECT_EQ(t.blocks()[1], (Extent{26, 4}));
}

TEST(FlatType, SubarrayFullBoxIsContiguous) {
  const FlatType t = FlatType::subarray({8}, {8}, {0}, 4);
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.size(), 32);
}

TEST(FlatType, MapDataSlicesAlignWithExtents) {
  const FlatType t = FlatType::vector(2, 4, 8);
  const DataView data = DataView::synthetic(9, 0, 16);  // two instances
  const auto pieces = t.map_data(100, 0, data);
  ASSERT_EQ(pieces.size(), 4u);
  Offset stream = 0;
  for (const auto& piece : pieces) {
    EXPECT_EQ(piece.data.size(), piece.file.length);
    // Data provenance: piece bytes come from the right stream position.
    EXPECT_EQ(piece.data.byte_at(0), data.byte_at(stream));
    stream += piece.file.length;
  }
  EXPECT_EQ(pieces[0].file, (Extent{100, 4}));
  EXPECT_EQ(pieces[1].file, (Extent{104, 4}));   // adjacent but distinct block
  EXPECT_EQ(pieces[2].file, (Extent{112, 4}));
}

TEST(FlatType, InvalidShapesThrow) {
  EXPECT_THROW(FlatType::contiguous(0), std::logic_error);
  EXPECT_THROW(FlatType::vector(0, 4, 8), std::logic_error);
  EXPECT_THROW(FlatType::vector(2, 8, 4), std::logic_error);  // overlap
  EXPECT_THROW(FlatType::indexed({{0, 4}, {2, 4}}, 10), std::logic_error);
  EXPECT_THROW(FlatType::indexed({{0, 20}}, 10), std::logic_error);
  EXPECT_THROW(FlatType::subarray({4}, {5}, {0}, 1), std::logic_error);
  EXPECT_THROW(FlatType::subarray({4}, {2}, {3}, 1), std::logic_error);
  EXPECT_THROW(FlatType::subarray({4, 4}, {2}, {0}, 1), std::logic_error);
}

TEST(FlatType, IndexedMergesAdjacentStreamRuns) {
  const FlatType t = FlatType::indexed({{0, 4}, {4, 4}, {16, 4}}, 24);
  // First two blocks are adjacent in the file: file_extents merges them.
  const auto extents = t.file_extents(0, 0, 12);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0], (Extent{0, 8}));
  EXPECT_EQ(extents[1], (Extent{16, 4}));
}

}  // namespace
}  // namespace e10::mpi
