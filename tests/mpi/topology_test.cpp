// Node-leader and node-membership helpers behind the two-level aggregation
// protocol (docs/two_level.md): the block-placement arithmetic lives in
// Topology, and the Comm surface must agree with it.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/world.h"

namespace e10::mpi {
namespace {

TEST(Topology, NodeLeaderIsLowestRankOnNode) {
  const Topology t(4, 8);
  EXPECT_EQ(t.node_leader(0), 0);
  EXPECT_EQ(t.node_leader(7), 0);
  EXPECT_EQ(t.node_leader(8), 8);
  EXPECT_EQ(t.node_leader(15), 8);
  EXPECT_EQ(t.node_leader(31), 24);
  EXPECT_THROW((void)t.node_leader(32), std::logic_error);
}

TEST(Topology, NodeLeaderSingleRankPerNodeIsSelf) {
  const Topology t(4, 1);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(t.node_leader(r), r);
}

TEST(Topology, NodeRanksListsNodeInRankOrder) {
  const Topology t(3, 4);
  EXPECT_EQ(t.node_ranks(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.node_ranks(2), (std::vector<int>{8, 9, 10, 11}));
  EXPECT_THROW((void)t.node_ranks(3), std::logic_error);
  // Every node's first listed rank is its leader.
  for (std::size_t node = 0; node < t.nodes(); ++node) {
    const std::vector<int> ranks = t.node_ranks(node);
    EXPECT_EQ(ranks.front(), t.node_leader(ranks.front()));
    for (const int r : ranks) {
      EXPECT_EQ(t.node_of(r), node);
      EXPECT_EQ(t.node_leader(r), ranks.front());
    }
  }
}

TEST(Comm, NodeHelpersMatchTopology) {
  sim::Engine engine;
  net::Fabric fabric(3, net::FabricParams{});
  const Topology topology(3, 4);
  World world(engine, fabric, topology);
  world.launch([&](Comm comm) {
    EXPECT_EQ(comm.max_ranks_per_node(), 4u);
    EXPECT_EQ(comm.node_leader(comm.rank()), topology.node_leader(comm.rank()));
    EXPECT_EQ(comm.node_ranks(comm.node()), topology.node_ranks(comm.node()));
    // The leader is the lowest member; members agree on the leader.
    const std::vector<int> members = comm.node_ranks(comm.node());
    EXPECT_EQ(members.front(), comm.node_leader(comm.rank()));
  });
  engine.run();
}

}  // namespace
}  // namespace e10::mpi
