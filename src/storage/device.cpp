#include "storage/device.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/fault_injector.h"

namespace e10::storage {

DeviceParams pfs_target_params() {
  DeviceParams p;
  // One BeeGFS data server over an 8+2 RAID6 of SAS drives: RAID parity and
  // server software give a substantial per-request latency, but requests
  // pipeline; the media streams ~560 MiB/s so that the paper's 4 data
  // servers peak near the measured ~2 GiB/s aggregate.
  p.base_latency = units::milliseconds(2);
  p.seek_penalty = units::milliseconds(2);
  p.write_bytes_per_second = Offset{560} * units::MiB;
  p.read_bytes_per_second = Offset{620} * units::MiB;
  p.jitter_sigma = 0.28;  // HDD arrays under shared load vary a lot
  return p;
}

DeviceParams local_ssd_params() {
  DeviceParams p;
  p.base_latency = units::microseconds(90);
  p.seek_penalty = 0;  // flash: no positional cost
  p.write_bytes_per_second = Offset{340} * units::MiB;
  p.read_bytes_per_second = Offset{480} * units::MiB;
  p.jitter_sigma = 0.05;
  return p;
}

Device::Device(std::string name, const DeviceParams& params,
               std::uint64_t seed)
    : name_(std::move(name)), params_(params), jitter_(seed) {
  if (params_.write_bytes_per_second <= 0 ||
      params_.read_bytes_per_second <= 0) {
    throw std::logic_error("Device bandwidth must be positive");
  }
  if (params_.speed_factor <= 0) {
    throw std::logic_error("Device speed_factor must be positive");
  }
  if (params_.stream_cursors == 0) {
    throw std::logic_error("Device needs at least one stream cursor");
  }
}

Time Device::expected_service(IoKind kind, Offset size, bool sequential) const {
  const Offset bps = kind == IoKind::write ? params_.write_bytes_per_second
                                           : params_.read_bytes_per_second;
  const double stream_ns =
      static_cast<double>(size) * 1e9 / static_cast<double>(bps);
  double total = static_cast<double>(params_.base_latency) + stream_ns;
  if (!sequential) total += static_cast<double>(params_.seek_penalty);
  return static_cast<Time>(total / params_.speed_factor);
}

bool Device::extends_stream(Offset offset, Offset size) {
  const auto it = std::find(cursors_.begin(), cursors_.end(), offset);
  if (it != cursors_.end()) {
    cursors_.erase(it);
    cursors_.push_back(offset + size);  // most recently used at the back
    return true;
  }
  ++stream_misses_;
  cursors_.push_back(offset + size);
  if (cursors_.size() > params_.stream_cursors) cursors_.pop_front();
  return false;
}

Time Device::submit(Time now, IoKind kind, Offset offset, Offset size) {
  if (size < 0) throw std::logic_error("Device::submit negative size");
  const bool sequential = extends_stream(offset, size);
  const Offset bps = kind == IoKind::write ? params_.write_bytes_per_second
                                           : params_.read_bytes_per_second;
  double media_ns =
      static_cast<double>(size) * 1e9 / static_cast<double>(bps);
  if (!sequential) media_ns += static_cast<double>(params_.seek_penalty);
  if (params_.jitter_sigma > 0) {
    media_ns *= jitter_.lognormal(params_.jitter_sigma);
  }
  media_ns /= params_.speed_factor;
  if (fault_ != nullptr) {
    media_ns *= fault_->slowdown(fault_server_id_, now);
  }
  if (kind == IoKind::write) {
    bytes_written_ += size;
  } else {
    bytes_read_ += size;
  }
  const Time media_done = media_.reserve(now, static_cast<Time>(media_ns));
  // Per-request latency overlaps across outstanding requests (pipelining):
  // it delays this request's completion but not the next one's media slot.
  return media_done +
         static_cast<Time>(static_cast<double>(params_.base_latency) /
                           params_.speed_factor);
}

void Device::snapshot_metrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) const {
  const auto set = [&registry](const std::string& name, std::int64_t total) {
    obs::Counter& counter = registry.counter(name);
    counter.add(total - counter.value());
  };
  set(prefix + ".requests", static_cast<std::int64_t>(requests()));
  set(prefix + ".busy_ns", busy_time());
  set(prefix + ".bytes_written", bytes_written_);
  set(prefix + ".bytes_read", bytes_read_);
  set(prefix + ".stream_misses", static_cast<std::int64_t>(stream_misses_));
}

}  // namespace e10::storage
