// Storage device service-time models.
//
// A Device is pipelined: the media (spindles/flash) is a serial bandwidth
// resource, while per-request latency (controller, RAID parity, queueing
// software) overlaps across outstanding requests. A request's completion is
//
//   media_done = media_timeline.reserve(now, [seek +] size/bandwidth * jitter)
//   completion = media_done + base_latency
//
// Sequentiality is tracked per *stream*, not globally: the device keeps a
// bounded LRU set of stream cursors (modelling server write-back caches and
// NCQ, which keep concurrent per-file sequential streams sequential on the
// media); a request extends a cursor or pays the seek penalty.
//
// The lognormal jitter's heavy right tail produces the variable per-server
// response times that make the slowest aggregator dominate collective I/O
// (paper §I, point (a)).
//
// Two presets match the paper's testbed: an HDD-RAID parallel-file-system
// target and a node-local SATA SSD.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/resource.h"

namespace e10::fault {
class FaultInjector;
}

namespace e10::storage {

enum class IoKind { read, write };

struct DeviceParams {
  /// Fixed per-request latency; overlaps across requests (pipelined).
  Time base_latency = units::microseconds(100);
  /// Media-time cost when the request does not extend a tracked stream.
  Time seek_penalty = 0;
  /// Streaming bandwidth for writes, bytes per simulated second.
  Offset write_bytes_per_second = Offset{350} * units::MiB;
  /// Streaming bandwidth for reads.
  Offset read_bytes_per_second = Offset{480} * units::MiB;
  /// Lognormal sigma of the media-time multiplier (0 disables jitter).
  double jitter_sigma = 0.0;
  /// Persistent per-device speed factor (1.0 = nominal); models a slow
  /// server in a load-imbalanced storage system.
  double speed_factor = 1.0;
  /// How many concurrent sequential streams the device can track.
  std::size_t stream_cursors = 128;
};

/// DEEP-ER-like PFS data-server target: RAID6 of SAS drives behind one
/// BeeGFS storage server.
DeviceParams pfs_target_params();

/// DEEP-ER-like node-local SATA SSD scratch partition.
DeviceParams local_ssd_params();

class Device {
 public:
  Device(std::string name, const DeviceParams& params, std::uint64_t seed);

  /// Reserves media time for a request of `size` bytes at device offset
  /// `offset`, issued at time `now`. Returns the completion time.
  Time submit(Time now, IoKind kind, Offset offset, Offset size);

  /// Idle-device service duration (deterministic part, no jitter draw):
  /// base latency + media time [+ seek when !sequential].
  Time expected_service(IoKind kind, Offset size, bool sequential) const;

  const std::string& name() const { return name_; }
  const DeviceParams& params() const { return params_; }
  Time next_free() const { return media_.next_free(); }
  std::uint64_t requests() const { return media_.reservations(); }
  Time busy_time() const { return media_.busy_time(); }
  Offset bytes_written() const { return bytes_written_; }
  Offset bytes_read() const { return bytes_read_; }
  std::uint64_t stream_misses() const { return stream_misses_; }

  /// Publishes the device totals as counters named `<prefix>.requests`,
  /// `.busy_ns`, `.bytes_written`, `.bytes_read`, `.stream_misses`.
  /// Idempotent: counters are brought up to the current totals, so calling
  /// again (e.g. one report per figure run) does not double-count.
  void snapshot_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

  /// Attaches a fault injector whose degradation windows for `server_id`
  /// scale this device's media time (outage windows are handled upstream
  /// where the request can be rejected). Unarmed, the hook is one branch.
  void set_fault_context(fault::FaultInjector* fault, int server_id) {
    fault_ = fault;
    fault_server_id_ = server_id;
  }

 private:
  /// True (and cursor updated) if `offset` extends a tracked stream.
  bool extends_stream(Offset offset, Offset size);

  std::string name_;
  DeviceParams params_;
  Rng jitter_;
  sim::ResourceTimeline media_;
  std::deque<Offset> cursors_;  // LRU of stream end offsets
  Offset bytes_written_ = 0;
  Offset bytes_read_ = 0;
  std::uint64_t stream_misses_ = 0;
  fault::FaultInjector* fault_ = nullptr;
  int fault_server_id_ = -1;
};

}  // namespace e10::storage
