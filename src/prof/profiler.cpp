#include "prof/profiler.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace e10::prof {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::open: return "open";
    case Phase::offset_exchange: return "offset_exchange";
    case Phase::calc: return "calc";
    case Phase::shuffle_intra: return "shuffle_intra";
    case Phase::shuffle_all2all: return "shuffle_all2all";
    case Phase::shuffle_inter: return "shuffle_inter";
    case Phase::exchange: return "exchange";
    case Phase::write_contig: return "write_contig";
    case Phase::post_write: return "post_write";
    case Phase::flush_wait: return "flush_wait";
    case Phase::not_hidden_sync: return "not_hidden_sync";
    case Phase::read_contig: return "read_contig";
    case Phase::close: return "close";
    case Phase::count: break;
  }
  return "?";
}

Profiler::Profiler(sim::Engine& engine, int ranks) : engine_(engine) {
  if (ranks <= 0) throw std::logic_error("Profiler: ranks must be > 0");
  totals_.resize(static_cast<std::size_t>(ranks));
  reset();
}

void Profiler::record(int rank, Phase phase, Time duration) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= totals_.size()) {
    throw std::logic_error("Profiler::record: rank out of range");
  }
  if (duration < 0) throw std::logic_error("Profiler::record: negative time");
  totals_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(phase)] +=
      duration;
}

Time Profiler::rank_total(int rank, Phase phase) const {
  return totals_.at(static_cast<std::size_t>(rank))[static_cast<std::size_t>(
      phase)];
}

Time Profiler::max_over_ranks(Phase phase) const {
  Time best = 0;
  for (const auto& row : totals_) {
    best = std::max(best, row[static_cast<std::size_t>(phase)]);
  }
  return best;
}

Time Profiler::avg_over_ranks(Phase phase) const {
  Time sum = 0;
  for (const auto& row : totals_) sum += row[static_cast<std::size_t>(phase)];
  return sum / static_cast<Time>(totals_.size());
}

Time Profiler::min_over_ranks(Phase phase) const {
  Time best = totals_.front()[static_cast<std::size_t>(phase)];
  for (const auto& row : totals_) {
    best = std::min(best, row[static_cast<std::size_t>(phase)]);
  }
  return best;
}

Time Profiler::percentile_over_ranks(Phase phase, double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::logic_error("Profiler::percentile_over_ranks: q outside [0,1]");
  }
  std::vector<Time> values;
  values.reserve(totals_.size());
  for (const auto& row : totals_) {
    values.push_back(row[static_cast<std::size_t>(phase)]);
  }
  std::sort(values.begin(), values.end());
  // Nearest-rank: smallest value with at least ceil(q * n) values <= it.
  const auto n = static_cast<double>(values.size());
  std::size_t index = 0;
  if (q > 0.0) {
    index = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  }
  return values[std::min(index, values.size() - 1)];
}

Time Profiler::max_over(const std::vector<int>& ranks, Phase phase) const {
  Time best = 0;
  for (const int r : ranks) best = std::max(best, rank_total(r, phase));
  return best;
}

void Profiler::reset() {
  for (auto& row : totals_) row.fill(0);
}

std::string Profiler::summary() const {
  std::ostringstream os;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    os << phase_name(phase) << " max=" << format_time(max_over_ranks(phase))
       << " avg=" << format_time(avg_over_ranks(phase))
       << " min=" << format_time(min_over_ranks(phase))
       << " p50=" << format_time(percentile_over_ranks(phase, 0.50))
       << " p95=" << format_time(percentile_over_ranks(phase, 0.95))
       << " p99=" << format_time(percentile_over_ranks(phase, 0.99)) << "\n";
  }
  return os.str();
}

std::string Profiler::to_csv() const {
  std::ostringstream os;
  os << "phase,min_s,p50_s,p95_s,p99_s,avg_s,max_s\n";
  os.setf(std::ios::fixed);
  os.precision(9);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    os << phase_name(phase) << ','
       << units::to_seconds(min_over_ranks(phase)) << ','
       << units::to_seconds(percentile_over_ranks(phase, 0.50)) << ','
       << units::to_seconds(percentile_over_ranks(phase, 0.95)) << ','
       << units::to_seconds(percentile_over_ranks(phase, 0.99)) << ','
       << units::to_seconds(avg_over_ranks(phase)) << ','
       << units::to_seconds(max_over_ranks(phase)) << "\n";
  }
  return os.str();
}

}  // namespace e10::prof
