// MPE-like phase profiler.
//
// The paper extracts per-phase time contributions of the collective write
// path (Fig. 2) with MPE instrumentation and plots them in Figs. 5/6/8/10:
// shuffle_all2all (dissemination), exchange (waitall), write, post_write
// (error-code allreduce) and not_hidden_sync (cache flush time not hidden by
// compute). This profiler records named intervals per rank in virtual time
// and aggregates them the same way.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"

namespace e10::prof {

enum class Phase : std::size_t {
  open = 0,
  offset_exchange,    // initial access-pattern allgather
  calc,               // file-domain / request mapping computation
  shuffle_intra,      // two-level stage 1: intra-node gather to the leader
  shuffle_all2all,    // per-round dissemination MPI_Alltoall
  shuffle_inter,      // two-level stage 2: leaders-only data exchange
  exchange,           // isend/irecv/waitall of the data shuffle
  write_contig,       // ADIO_WriteContig (to PFS or to the cache)
  post_write,         // final error-code MPI_Allreduce
  flush_wait,         // waiting on sync grequests inside flush
  not_hidden_sync,    // sync time not hidden by compute (deferred close)
  read_contig,
  close,
  count
};

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::count);

const char* phase_name(Phase phase);

class Profiler {
 public:
  Profiler(sim::Engine& engine, int ranks);

  /// Adds `duration` to (rank, phase).
  void record(int rank, Phase phase, Time duration);

  /// RAII interval: measures from construction to destruction in virtual
  /// time and records it.
  class Scope {
   public:
    Scope(Profiler& profiler, int rank, Phase phase)
        : profiler_(&profiler),
          rank_(rank),
          phase_(phase),
          start_(profiler.engine_.now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      profiler_->record(rank_, phase_, profiler_->engine_.now() - start_);
    }

   private:
    Profiler* profiler_;
    int rank_;
    Phase phase_;
    Time start_;
  };

  Scope scope(int rank, Phase phase) { return Scope(*this, rank, phase); }

  /// Total time rank spent in phase.
  Time rank_total(int rank, Phase phase) const;

  /// Maximum over ranks of the per-rank totals — the "slowest path"
  /// contribution the stacked figures show.
  Time max_over_ranks(Phase phase) const;

  /// Mean over ranks.
  Time avg_over_ranks(Phase phase) const;

  /// Minimum over ranks.
  Time min_over_ranks(Phase phase) const;

  /// Nearest-rank percentile over the per-rank totals, q in [0, 1]. The
  /// spread between p50 and max is the straggler signature the summary's
  /// max/avg pair hides.
  Time percentile_over_ranks(Phase phase, double q) const;

  /// Max restricted to a rank subset (e.g. aggregators only).
  Time max_over(const std::vector<int>& ranks, Phase phase) const;

  int ranks() const { return static_cast<int>(totals_.size()); }

  void reset();

  /// One row per phase: "phase max avg min p50 p95 p99" (for reports and
  /// tests).
  std::string summary() const;

  /// Machine-readable table, one line per phase:
  /// "phase,min_s,p50_s,p95_s,p99_s,avg_s,max_s" (seconds) under a header
  /// row.
  std::string to_csv() const;

 private:
  friend class Scope;
  sim::Engine& engine_;
  std::vector<std::array<Time, kPhaseCount>> totals_;  // [rank][phase]
};

}  // namespace e10::prof
