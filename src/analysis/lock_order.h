// Declared lock acquisition order and its runtime cross-check.
//
// The static half of the lock-order story: E10_ACQUIRED_BEFORE/AFTER
// annotations (common/thread_safety.h) declare the order between mutexes
// of one class, and e10_lint's lock-order rule keeps the declarations
// acyclic. Orders the attribute syntax cannot express — between a lock
// *class* like "any extent lock" and a named mutex, across modules — are
// declared here instead, as a project-wide manifest over the checker's
// lock-class names.
//
// The dynamic half is the acquisition-order graph the ConcurrencyChecker
// records (checker.h). check_declared_order() joins the two: every
// observed edge whose class pair REVERSES a declared rule is a violation
// — the code acquired locks in the opposite order from what the
// annotations promise, which is exactly how undeclared deadlocks start.
// The fuzz runner applies the check on every scenario (oracle 3), and
// tests/analysis asserts the declared rules are actually witnessed by the
// real stack, so the manifest cannot rot into dead documentation.
#pragma once

#include <string>
#include <vector>

#include "analysis/checker.h"
#include "sim/concurrency.h"

namespace e10::analysis {

/// One declared order rule over lock classes: any lock of class `before`
/// is acquired before any lock of class `after` whenever one process
/// holds both.
struct DeclaredOrderRule {
  std::string before;
  std::string after;
  const char* rationale = "";
};

/// The project manifest (see the header comment for what belongs here
/// versus in E10_ACQUIRED_BEFORE annotations).
const std::vector<DeclaredOrderRule>& declared_lock_order();

/// Collapses a lock instance to its class: every extent lock is class
/// "extent"; a mutex "cache.sync.stats_mutex:/pfs/a" (instance suffix
/// after ':') is class "mutex:cache.sync.stats_mutex". Monitors cannot
/// appear in order edges but classify as "monitor:<name>" for
/// completeness.
std::string lock_order_class(sim::LockKind kind, const std::string& name);

/// Cross-checks observed edges against the manifest: returns one
/// human-readable violation per observed edge whose (before, after)
/// classes contradict a declared rule. Edges between unlisted class pairs
/// are fine (the manifest is deliberately partial), as are edges within
/// one class (extent-extent nesting is ordered by offset, checked
/// dynamically by the cycle detector).
std::vector<std::string> check_declared_order(
    const std::vector<OrderEdge>& edges);

}  // namespace e10::analysis
