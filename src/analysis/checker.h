// Simulator-native concurrency checker (docs/static_analysis.md).
//
// Attached to a sim::Engine, the checker consumes the events the
// synchronization primitives and the E10_SHARED_* instrumentation emit
// (sim/concurrency.h) and runs two analyses over the course of the run:
//
//  1. Eraser-style lockset race detection. Each registered shared variable
//     carries a candidate lockset C(v), refined to the intersection of the
//     locks held at every access once the variable leaves single-owner
//     (exclusive) state. A write to a multi-process variable whose C(v) is
//     empty means no lock consistently protects it — a data race in the
//     pthread implementation the simulator models, flagged with both access
//     sites, both process names and the virtual time. TSan-style tools
//     cannot see these: cooperative fibers share one OS thread.
//
//  2. Lock acquisition-order graph. Every blocking acquisition adds edges
//     held-lock -> acquired-lock; a cycle means two processes can acquire
//     the same locks in opposite orders — a *potential* deadlock reported
//     even when the schedule that actually deadlocks never ran. Monitor
//     locks (engine-atomic critical sections, see concurrency.h) are
//     excluded: they cannot block, so they cannot deadlock.
//
// Reports are deterministic: locks and variables are interned in
// first-sight order (the engine schedule is deterministic), names — never
// addresses — appear in output, and times are virtual. Two identical runs
// produce byte-identical to_json() output.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.h"
#include "sim/concurrency.h"
#include "sim/engine.h"

namespace e10::analysis {

/// One lockset violation: `site` raced with `prior_site`.
struct RaceFinding {
  std::string var;          // shared-variable name
  std::string site;         // file:line of the access that emptied C(v)
  std::string process;      // name of the accessing process
  bool write = false;       // the flagged access was a write
  std::string prior_site;   // the previous access to the variable
  std::string prior_process;
  Time at = 0;              // virtual time of the flagged access
};

/// One cycle in the lock acquisition-order graph.
struct CycleFinding {
  std::vector<std::string> locks;  // members, in first-acquisition order
  std::vector<std::string> edges;  // human-readable example edges
};

/// One observed acquisition-order edge: while holding `before`, some
/// process blocked acquiring `after`. Monitors never appear (they cannot
/// block). Exported for the declared-vs-dynamic lock-order cross-check
/// (analysis/lock_order.h).
struct OrderEdge {
  std::string before;
  std::string after;
  sim::LockKind before_kind = sim::LockKind::mutex;
  sim::LockKind after_kind = sim::LockKind::mutex;
  std::string example;  // "A -> B by <process> at t=..."
};

struct AnalysisSummary {
  std::vector<RaceFinding> races;
  std::vector<CycleFinding> cycles;
  std::size_t shared_vars = 0;
  std::size_t shared_accesses = 0;
  std::size_t locks_tracked = 0;       // distinct lock instances seen
  std::size_t lock_acquisitions = 0;
  std::size_t max_lock_depth = 0;      // blocking locks held at once
};

class ConcurrencyChecker final : public sim::ConcurrencyObserver {
 public:
  /// Attaches to the engine; detaches in the destructor.
  explicit ConcurrencyChecker(sim::Engine& engine);
  ~ConcurrencyChecker() override;
  ConcurrencyChecker(const ConcurrencyChecker&) = delete;
  ConcurrencyChecker& operator=(const ConcurrencyChecker&) = delete;

  /// Findings and counters accumulated so far (cycles are computed here).
  AnalysisSummary summary() const;

  /// Every observed acquisition-order edge, in deterministic (first-sight
  /// interning) order. The raw graph behind CycleFinding — consumed by the
  /// declared-order cross-check (analysis/lock_order.h) and the fuzz
  /// runner's concurrency oracle.
  std::vector<OrderEdge> order_edges() const;

  /// The run report's `analysis` section; see docs/static_analysis.md.
  obs::Json to_json() const;

  // ---- sim::ConcurrencyObserver ------------------------------------------
  void on_acquiring(sim::ProcessId pid, sim::LockId lock, sim::LockKind kind,
                    const std::string& name) override;
  void on_acquired(sim::ProcessId pid, sim::LockId lock, sim::LockKind kind,
                   const std::string& name) override;
  void on_released(sim::ProcessId pid, sim::LockId lock) override;
  void on_shared_access(sim::ProcessId pid, const void* key,
                        const std::string& name, bool is_write,
                        const char* site) override;
  void on_handoff(const void* key) override;
  std::string describe_process(sim::ProcessId pid) const override;

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};

  struct LockRec {
    std::string name;
    sim::LockKind kind = sim::LockKind::mutex;
  };

  struct ProcState {
    std::vector<std::size_t> held;  // acquisition-ordered stack of lock idx
    std::size_t waiting = kNone;    // lock idx currently being acquired
  };

  struct VarState {
    enum class S { virgin, exclusive, shared, shared_modified };
    std::string name;
    S state = S::virgin;
    sim::ProcessId owner = sim::kNoProcess;
    std::set<std::size_t> lockset;  // candidate lockset C(v)
    const char* last_site = "";
    std::string last_process;
  };

  struct Edge {
    std::string example;  // "A -> B by <process> at t=..."
  };

  std::size_t intern_lock(sim::LockId lock, sim::LockKind kind,
                          const std::string& name);
  ProcState& proc(sim::ProcessId pid) { return processes_[pid]; }
  void report_race(VarState& var, sim::ProcessId pid, bool is_write,
                   const char* site);

  sim::Engine& engine_;

  std::unordered_map<sim::LockId, std::size_t> lock_index_;
  std::vector<LockRec> locks_;
  std::unordered_map<sim::ProcessId, ProcState> processes_;
  std::unordered_map<const void*, std::size_t> var_index_;
  std::vector<VarState> vars_;
  /// Acquisition-order edges between blocking locks, keyed by dense
  /// indices (deterministic iteration).
  std::map<std::pair<std::size_t, std::size_t>, Edge> edges_;

  std::vector<RaceFinding> races_;
  std::set<std::pair<std::size_t, const char*>> reported_;  // (var, site)
  std::size_t shared_accesses_ = 0;
  std::size_t lock_acquisitions_ = 0;
  std::size_t max_lock_depth_ = 0;
};

}  // namespace e10::analysis
