#include "analysis/checker.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/units.h"

namespace e10::analysis {

ConcurrencyChecker::ConcurrencyChecker(sim::Engine& engine) : engine_(engine) {
  engine_.set_concurrency_observer(this);
}

ConcurrencyChecker::~ConcurrencyChecker() {
  if (engine_.concurrency_observer() == this) {
    engine_.set_concurrency_observer(nullptr);
  }
}

std::size_t ConcurrencyChecker::intern_lock(sim::LockId lock,
                                            sim::LockKind kind,
                                            const std::string& name) {
  auto [it, inserted] = lock_index_.try_emplace(lock, locks_.size());
  if (inserted) {
    locks_.push_back(LockRec{name, kind});
  } else {
    // Address reuse (a lock destroyed, another constructed at the same
    // address) keeps the dense id but must not keep a stale identity.
    LockRec& rec = locks_[it->second];
    rec.name = name;
    rec.kind = kind;
  }
  return it->second;
}

void ConcurrencyChecker::on_acquiring(sim::ProcessId pid, sim::LockId lock,
                                      sim::LockKind kind,
                                      const std::string& name) {
  const std::size_t idx = intern_lock(lock, kind, name);
  ProcState& ps = proc(pid);
  ps.waiting = idx;
  if (kind == sim::LockKind::monitor) return;
  // Order-graph edges: every blocking lock already held orders before the
  // one being acquired. Monitors never block, so they contribute no edges.
  for (const std::size_t held : ps.held) {
    if (held == idx) continue;  // re-entrant claim of the same lock
    if (locks_[held].kind == sim::LockKind::monitor) continue;
    auto [it, inserted] = edges_.try_emplace(std::make_pair(held, idx));
    if (inserted) {
      it->second.example = locks_[held].name + " -> " + locks_[idx].name +
                           " by " + engine_.name_of(pid) + " at t=" +
                           format_time(engine_.now());
    }
  }
}

void ConcurrencyChecker::on_acquired(sim::ProcessId pid, sim::LockId lock,
                                     sim::LockKind kind,
                                     const std::string& name) {
  const std::size_t idx = intern_lock(lock, kind, name);
  ProcState& ps = proc(pid);
  ps.waiting = kNone;
  ps.held.push_back(idx);
  ++lock_acquisitions_;
  std::size_t depth = 0;
  for (const std::size_t held : ps.held) {
    if (locks_[held].kind != sim::LockKind::monitor) ++depth;
  }
  max_lock_depth_ = std::max(max_lock_depth_, depth);
}

void ConcurrencyChecker::on_released(sim::ProcessId pid, sim::LockId lock) {
  const auto it = lock_index_.find(lock);
  if (it == lock_index_.end()) return;  // acquired before the checker attached
  ProcState& ps = proc(pid);
  // Release the most recent claim (locks are used in RAII/stack order, but
  // searching backwards also handles out-of-order unlocks).
  const auto pos = std::find(ps.held.rbegin(), ps.held.rend(), it->second);
  if (pos != ps.held.rend()) ps.held.erase(std::next(pos).base());
}

void ConcurrencyChecker::report_race(VarState& var, sim::ProcessId pid,
                                     bool is_write, const char* site) {
  const std::size_t var_idx =
      static_cast<std::size_t>(&var - vars_.data());
  if (!reported_.emplace(var_idx, site).second) return;  // one per site
  RaceFinding finding;
  finding.var = var.name;
  finding.site = site;
  finding.process = engine_.name_of(pid);
  finding.write = is_write;
  finding.prior_site = var.last_site;
  finding.prior_process = var.last_process;
  finding.at = engine_.now();
  races_.push_back(std::move(finding));
}

void ConcurrencyChecker::on_shared_access(sim::ProcessId pid, const void* key,
                                          const std::string& name,
                                          bool is_write, const char* site) {
  ++shared_accesses_;
  auto [it, inserted] = var_index_.try_emplace(key, vars_.size());
  if (inserted) {
    VarState fresh;
    fresh.name = name;
    vars_.push_back(std::move(fresh));
  }
  VarState& var = vars_[it->second];
  var.name = name;  // address reuse, as for locks
  ProcState& ps = proc(pid);

  // Eraser state machine: C(v) starts as all locks held at the first
  // second-owner access and shrinks to the intersection across accesses.
  // An empty C(v) on a shared-modified variable means no common lock.
  std::set<std::size_t> held(ps.held.begin(), ps.held.end());
  switch (var.state) {
    case VarState::S::virgin:
      var.state = VarState::S::exclusive;
      var.owner = pid;
      break;
    case VarState::S::exclusive:
      if (var.owner != pid) {
        var.lockset = std::move(held);
        var.state = is_write ? VarState::S::shared_modified
                             : VarState::S::shared;
        if (var.state == VarState::S::shared_modified && var.lockset.empty()) {
          report_race(var, pid, is_write, site);
        }
      }
      break;
    case VarState::S::shared:
    case VarState::S::shared_modified: {
      std::set<std::size_t> refined;
      std::set_intersection(var.lockset.begin(), var.lockset.end(),
                            held.begin(), held.end(),
                            std::inserter(refined, refined.begin()));
      var.lockset = std::move(refined);
      if (is_write) var.state = VarState::S::shared_modified;
      if (var.state == VarState::S::shared_modified && var.lockset.empty()) {
        report_race(var, pid, is_write, site);
      }
      break;
    }
  }
  var.last_site = site;
  var.last_process = engine_.name_of(pid);
}

void ConcurrencyChecker::on_handoff(const void* key) {
  const auto it = var_index_.find(key);
  if (it == var_index_.end()) return;
  // Explicit ownership transfer (e.g. destruction + re-registration):
  // restart the state machine, keeping the last access for reports.
  VarState& var = vars_[it->second];
  var.state = VarState::S::virgin;
  var.owner = sim::kNoProcess;
  var.lockset.clear();
}

std::string ConcurrencyChecker::describe_process(sim::ProcessId pid) const {
  const auto it = processes_.find(pid);
  if (it == processes_.end()) return "";
  const ProcState& ps = it->second;
  std::string out;
  if (!ps.held.empty()) {
    out += " holding {";
    for (std::size_t i = 0; i < ps.held.size(); ++i) {
      if (i > 0) out += ", ";
      out += locks_[ps.held[i]].name;
    }
    out += "}";
  }
  if (ps.waiting != kNone) {
    out += " acquiring " + std::string(sim::to_string(locks_[ps.waiting].kind)) +
           " " + locks_[ps.waiting].name;
  }
  return out;
}

std::vector<OrderEdge> ConcurrencyChecker::order_edges() const {
  std::vector<OrderEdge> out;
  out.reserve(edges_.size());
  for (const auto& [key, edge] : edges_) {
    const LockRec& before = locks_[key.first];
    const LockRec& after = locks_[key.second];
    out.push_back(
        {before.name, after.name, before.kind, after.kind, edge.example});
  }
  return out;
}

AnalysisSummary ConcurrencyChecker::summary() const {
  AnalysisSummary s;
  s.races = races_;
  s.shared_vars = vars_.size();
  s.shared_accesses = shared_accesses_;
  s.locks_tracked = locks_.size();
  s.lock_acquisitions = lock_acquisitions_;
  s.max_lock_depth = max_lock_depth_;

  // Cycle detection over the acquisition-order graph: a strongly connected
  // component with more than one lock (self-edges are filtered at insert)
  // means some pair of locks is acquired in both orders. Iterative Tarjan
  // in dense-id order keeps the output deterministic.
  const std::size_t n = locks_.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [key, edge] : edges_) adj[key.first].push_back(key.second);

  std::vector<std::size_t> index(n, kNone), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;
  std::vector<std::vector<std::size_t>> sccs;

  struct Frame {
    std::size_t v;
    std::size_t child = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kNone) continue;
    std::vector<Frame> frames{Frame{root}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child == 0) {
        index[f.v] = low[f.v] = next_index++;
        stack.push_back(f.v);
        on_stack[f.v] = true;
      }
      if (f.child < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.child++];
        if (index[w] == kNone) {
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<std::size_t> scc;
          std::size_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
          } while (w != f.v);
          if (scc.size() > 1) {
            std::sort(scc.begin(), scc.end());
            sccs.push_back(std::move(scc));
          }
        }
        const std::size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  // Tarjan emits SCCs in reverse topological order; re-sort by smallest
  // member so the report order matches first-acquisition order.
  std::sort(sccs.begin(), sccs.end());
  for (const auto& scc : sccs) {
    CycleFinding finding;
    for (const std::size_t v : scc) finding.locks.push_back(locks_[v].name);
    for (const auto& [key, edge] : edges_) {
      const bool internal =
          std::binary_search(scc.begin(), scc.end(), key.first) &&
          std::binary_search(scc.begin(), scc.end(), key.second);
      if (internal) finding.edges.push_back(edge.example);
    }
    s.cycles.push_back(std::move(finding));
  }
  return s;
}

obs::Json ConcurrencyChecker::to_json() const {
  const AnalysisSummary s = summary();
  const auto count = [](std::size_t v) {
    return obs::Json::integer(static_cast<std::int64_t>(v));
  };
  obs::Json out = obs::Json::object();
  out.set("enabled", obs::Json::boolean(true));
  out.set("shared_vars", count(s.shared_vars));
  out.set("shared_accesses", count(s.shared_accesses));
  out.set("locks_tracked", count(s.locks_tracked));
  out.set("lock_acquisitions", count(s.lock_acquisitions));
  out.set("max_lock_depth", count(s.max_lock_depth));
  out.set("races_found", count(s.races.size()));
  out.set("cycles_found", count(s.cycles.size()));

  obs::Json races = obs::Json::array();
  for (const RaceFinding& race : s.races) {
    obs::Json j = obs::Json::object();
    j.set("var", obs::Json::str(race.var));
    j.set("site", obs::Json::str(race.site));
    j.set("process", obs::Json::str(race.process));
    j.set("write", obs::Json::boolean(race.write));
    j.set("prior_site", obs::Json::str(race.prior_site));
    j.set("prior_process", obs::Json::str(race.prior_process));
    j.set("t", obs::Json::str(format_time(race.at)));
    races.push(std::move(j));
  }
  out.set("races", std::move(races));

  obs::Json cycles = obs::Json::array();
  for (const CycleFinding& cycle : s.cycles) {
    obs::Json j = obs::Json::object();
    obs::Json locks = obs::Json::array();
    for (const std::string& name : cycle.locks) {
      locks.push(obs::Json::str(name));
    }
    j.set("locks", std::move(locks));
    obs::Json edges = obs::Json::array();
    for (const std::string& e : cycle.edges) edges.push(obs::Json::str(e));
    j.set("edges", std::move(edges));
    cycles.push(std::move(j));
  }
  out.set("lock_order_cycles", std::move(cycles));
  return out;
}

}  // namespace e10::analysis
