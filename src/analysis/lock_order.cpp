#include "analysis/lock_order.h"

#include <map>
#include <utility>

namespace e10::analysis {

const std::vector<DeclaredOrderRule>& declared_lock_order() {
  // Keep rules justified by an actual holds-while-acquiring site; the
  // coverage test in tests/analysis fails if a rule stops being witnessed.
  static const std::vector<DeclaredOrderRule> rules = {
      {"extent", "mutex:cache.sync.stats_mutex",
       "a rank writes to the cache holding the written extent's lock "
       "(coherent mode) and then enqueues the sync request, whose queue-"
       "depth accounting takes the stats mutex (sync_thread.cpp)"},
  };
  return rules;
}

std::string lock_order_class(sim::LockKind kind, const std::string& name) {
  if (kind == sim::LockKind::extent) return "extent";
  const std::string prefix = std::string(sim::to_string(kind)) + ":";
  const std::size_t colon = name.find(':');
  return prefix + (colon == std::string::npos ? name : name.substr(0, colon));
}

std::vector<std::string> check_declared_order(
    const std::vector<OrderEdge>& edges) {
  std::map<std::pair<std::string, std::string>, const DeclaredOrderRule*>
      declared;
  for (const DeclaredOrderRule& rule : declared_lock_order()) {
    declared[{rule.before, rule.after}] = &rule;
  }
  std::vector<std::string> violations;
  for (const OrderEdge& edge : edges) {
    const std::string before = lock_order_class(edge.before_kind, edge.before);
    const std::string after = lock_order_class(edge.after_kind, edge.after);
    if (before == after) continue;
    auto it = declared.find({after, before});  // observed edge, reversed
    if (it == declared.end()) continue;
    violations.push_back("observed acquisition " + edge.before + " -> " +
                         edge.after + " contradicts declared order '" +
                         it->second->before + "' < '" + it->second->after +
                         "' (" + edge.example + ")");
  }
  return violations;
}

}  // namespace e10::analysis
