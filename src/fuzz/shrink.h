// Automatic shrinking of failing fuzz scenarios (delta debugging).
//
// Given a scenario the oracle rejected, `shrink()` greedily searches for a
// smaller scenario that still fails: it concretizes the access pattern,
// pins the crash point to its resolved virtual time (so the repro is
// self-contained), then repeatedly tries structural simplifications —
// drop pieces (halves first, then one by one), drop fault-plan clauses,
// drop the crash point, compact away rank slots that write nothing, trim
// call counts and file size, and neutralize hint knobs toward the plain
// configuration. A candidate is kept when it still produces at least one
// oracle violation; rounds repeat to a fixpoint or the evaluation budget.
//
// Everything is deterministic: the same failing scenario shrinks to the
// same minimal repro (the determinism tests assert this).
#pragma once

#include "fuzz/runner.h"
#include "fuzz/scenario.h"

namespace e10::fuzz {

struct ShrinkOptions {
  /// Candidate executions allowed before the search gives up and returns
  /// the best scenario found so far.
  int max_evals = 250;
};

struct ShrinkResult {
  /// Smallest still-failing scenario found.
  Scenario minimal;
  /// Full-oracle run of `minimal` (its violations are the repro's verdict).
  RunResult result;
  /// Candidate executions spent (diagnostics; bounded by max_evals + 1).
  int evaluations = 0;
  /// True when the budget ran out before reaching a fixpoint.
  bool exhausted = false;
};

/// Minimizes `failing` (which must violate the oracle under `run_options`).
/// If `failing` does not actually fail, it is returned unchanged.
ShrinkResult shrink(const Scenario& failing, const RunOptions& run_options = {},
                    const ShrinkOptions& options = {});

}  // namespace e10::fuzz
