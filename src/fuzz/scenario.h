// Fuzz scenarios: one randomly generated (but fully deterministic) test
// case for the collective-write stack, combining a workload shape, an
// MPI-IO hint combination, a fault plan over the full FaultOp grammar and
// an optional crash point (kill the whole job at a virtual time, then
// replay recovery).
//
// A Scenario is data. It can be generated from a seed, serialized to a
// self-contained text spec (the `--replay=` file format), parsed back, and
// mutated structurally by the shrinker (drop pieces, faults, ranks, hints)
// — which is why the access pattern can be held either procedurally (derive
// from the seed) or as an explicit piece list (concrete_pieces()). Piece
// data content is a pure function of (data seed, file offset), so removing
// one piece never changes the expected bytes of another.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace e10::fuzz {

/// One contiguous run a rank writes in one collective call. Pieces of a
/// scenario are pairwise disjoint in file space — across ranks *and* across
/// calls — so the expected file content is order-independent (cross-rank
/// overlap resolution under an asynchronous flush is timing-defined, which
/// a correctness oracle must not depend on).
struct PieceSpec {
  int call = 0;
  int rank = 0;
  Offset offset = 0;
  Offset length = 0;

  friend bool operator==(const PieceSpec&, const PieceSpec&) = default;
};

/// Intentional corruptions for the rig's known-bug self-test: the runner
/// applies the bug to the system under test while the reference model keeps
/// the correct data, so the oracle MUST flag the run. Proves the fuzzer
/// catches (and the shrinker minimizes) real data loss.
enum class BugKind {
  none,
  /// Silently skip the first piece (by (call, rank, offset)) when writing
  /// through the stack — models a lost write request.
  drop_extent,
};

const char* bug_kind_name(BugKind bug);

/// Bounds for Scenario::generate (the CLI's --max-ranks etc.).
struct ScenarioLimits {
  /// Raised from 4 once the engine's allocation-free scheduler made large
  /// worlds cheap (docs/performance.md): bigger rank counts exercise the
  /// round-robin aggregator placement and per-node cache sharing harder.
  std::size_t max_nodes = 8;
  /// High enough that multi-rank nodes (and with them the two-level
  /// exchange's intra-node gather paths) are routinely exercised.
  std::size_t max_ranks_per_node = 8;
  Offset max_file_bytes = 2 * units::MiB;
  int max_calls = 3;
};

struct Scenario {
  std::uint64_t seed = 1;

  // ---- Workload shape ----------------------------------------------------
  std::size_t nodes = 2;
  std::size_t ranks_per_node = 2;
  Offset file_bytes = units::MiB;
  int calls = 1;
  /// Explicit access pattern; empty means "derive from seed" (the
  /// generator's default). The shrinker concretizes before mutating.
  std::vector<PieceSpec> pieces;

  // ---- Hint combination --------------------------------------------------
  std::string cache = "enable";         // e10_cache: disable|enable|coherent
  std::string flush = "flush_onclose";  // e10_cache_flush_flag
  bool pipeline = true;                 // e10_pipeline_flag
  int sync_streams = 4;                 // e10_sync_streams
  bool coalesce = true;                 // e10_flush_coalesce_flag
  int aggregators = 0;                  // cb_nodes (0 = one per node)
  Offset cb_buffer = units::MiB;        // cb_buffer_size
  bool journal_hint = false;            // e10_cache_journal
  bool two_level = false;               // e10_two_level_flag

  // ---- Adversarial ingredients -------------------------------------------
  /// FaultPlan::parse spec (transients / outages / degrades / rank
  /// crashes); empty = no faults.
  std::string fault_spec;
  /// Crash point: kill the whole job (engine stop_at) at this fraction of
  /// the scenario's clean-run end time, then re-open and replay recovery.
  /// 0 = no crash. Resolved to a concrete time by the runner's probe run.
  double crash_frac = 0.0;
  /// Concrete crash time; wins over crash_frac when set (replay specs carry
  /// the resolved time so they are self-contained).
  std::optional<Time> crash_at;
  /// Known-bug self-test corruption (see BugKind).
  BugKind bug = BugKind::none;

  int ranks() const { return static_cast<int>(nodes * ranks_per_node); }
  bool wants_crash() const { return crash_at.has_value() || crash_frac > 0.0; }
  /// Seed for the synthetic payload pattern (content is position-keyed).
  std::uint64_t data_seed() const { return seed ^ 0xF00DULL; }

  /// The access pattern: `pieces` if explicit, otherwise derived from the
  /// seed (random-size blocks dealt round-robin over (call, rank) slots,
  /// with ~5% dropped as holes). Sorted by (call, rank, offset); pairwise
  /// disjoint in file space.
  std::vector<PieceSpec> concrete_pieces() const;

  /// Deterministic random scenario. Honors `limits`; `want_crash` forces a
  /// crash point (and journaling, so recovery has something to replay).
  static Scenario generate(std::uint64_t seed, const ScenarioLimits& limits,
                           bool want_crash);

  /// Self-contained replay spec (line-oriented `key=value`); parse() is the
  /// exact inverse. Explicit pieces serialize as `piece=` lines.
  std::string to_spec() const;
  static Result<Scenario> parse(std::string_view text);

  /// One-line human summary for logs.
  std::string summary() const;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

}  // namespace e10::fuzz
