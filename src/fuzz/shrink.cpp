#include "fuzz/shrink.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace e10::fuzz {

namespace {

/// Splits a FaultPlan spec into its ';'-separated clauses.
std::vector<std::string> split_clauses(const std::string& spec) {
  std::vector<std::string> clauses;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t sep = spec.find(';', start);
    const std::string clause =
        spec.substr(start, sep == std::string::npos ? sep : sep - start);
    if (!clause.empty()) clauses.push_back(clause);
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return clauses;
}

std::string join_clauses(const std::vector<std::string>& clauses) {
  std::string spec;
  for (const std::string& c : clauses) {
    spec += (spec.empty() ? "" : ";") + c;
  }
  return spec;
}

class Shrinker {
 public:
  Shrinker(const RunOptions& run_options, const ShrinkOptions& options)
      : run_options_(run_options), options_(options) {}

  /// True (and adopts `candidate` as the new best) when it still fails.
  bool accept(const Scenario& candidate) {
    if (evaluations_ >= options_.max_evals) {
      exhausted_ = true;
      return false;
    }
    ++evaluations_;
    // The search only needs *a* violation; the expensive cross-hints
    // re-run stays off until the final verdict unless it is the only
    // oracle that fired.
    if (!run_scenario(candidate, run_options_).ok()) {
      best_ = candidate;
      return true;
    }
    return false;
  }

  /// One round of every simplification pass; true if anything shrank.
  bool round() {
    bool changed = false;
    changed |= drop_crash();
    changed |= drop_fault_clauses();
    changed |= drop_pieces();
    changed |= compact_ranks();
    changed |= trim_structure();
    changed |= neutralize_hints();
    return changed;
  }

  Scenario best_;
  RunOptions run_options_;
  ShrinkOptions options_;
  int evaluations_ = 0;
  bool exhausted_ = false;

 private:
  bool drop_crash() {
    if (!best_.wants_crash()) return false;
    Scenario candidate = best_;
    candidate.crash_at.reset();
    candidate.crash_frac = 0.0;
    return accept(candidate);
  }

  bool drop_fault_clauses() {
    bool changed = false;
    // Whole plan first, then clause by clause (indices shift as clauses
    // disappear, so each removal restarts from the current best).
    if (!best_.fault_spec.empty()) {
      Scenario candidate = best_;
      candidate.fault_spec.clear();
      changed |= accept(candidate);
    }
    for (std::size_t i = 0; i < split_clauses(best_.fault_spec).size();) {
      auto clauses = split_clauses(best_.fault_spec);
      clauses.erase(clauses.begin() + static_cast<std::ptrdiff_t>(i));
      Scenario candidate = best_;
      candidate.fault_spec = join_clauses(clauses);
      if (accept(candidate)) {
        changed = true;  // retry same index: the next clause shifted down
      } else {
        ++i;
      }
    }
    return changed;
  }

  /// ddmin-lite over the piece list: halves first for big jumps, then a
  /// linear one-by-one sweep. Never proposes an empty list — an empty
  /// `pieces` means "derive from seed", which would *grow* the scenario.
  bool drop_pieces() {
    bool changed = false;
    for (std::size_t half = best_.pieces.size() / 2; half >= 1; half /= 2) {
      for (std::size_t begin = 0; begin + half <= best_.pieces.size() &&
                                  best_.pieces.size() > half;) {
        Scenario candidate = best_;
        candidate.pieces.erase(
            candidate.pieces.begin() + static_cast<std::ptrdiff_t>(begin),
            candidate.pieces.begin() + static_cast<std::ptrdiff_t>(begin + half));
        if (accept(candidate)) {
          changed = true;  // same begin now addresses the next chunk
        } else {
          begin += half;
        }
      }
      if (half == 1) break;
    }
    return changed;
  }

  /// Remaps the surviving pieces onto a dense rank grid: rank slots that
  /// write nothing are removed and the topology collapses to one rank per
  /// node. Cuts rank count (and simulation size) in one accepted step.
  bool compact_ranks() {
    std::set<int> used;
    for (const PieceSpec& p : best_.pieces) used.insert(p.rank);
    if (used.empty() ||
        used.size() == static_cast<std::size_t>(best_.ranks())) {
      return false;
    }
    Scenario candidate = best_;
    candidate.nodes = used.size();
    candidate.ranks_per_node = 1;
    std::vector<int> order(used.begin(), used.end());
    for (PieceSpec& p : candidate.pieces) {
      p.rank = static_cast<int>(
          std::lower_bound(order.begin(), order.end(), p.rank) -
          order.begin());
    }
    return accept(candidate);
  }

  bool trim_structure() {
    bool changed = false;
    int max_call = 0;
    Offset max_end = 0;
    for (const PieceSpec& p : best_.pieces) {
      max_call = std::max(max_call, p.call);
      max_end = std::max(max_end, p.offset + p.length);
    }
    if (best_.calls > max_call + 1) {
      Scenario candidate = best_;
      candidate.calls = max_call + 1;
      changed |= accept(candidate);
    }
    if (max_end > 0 && best_.file_bytes > max_end) {
      Scenario candidate = best_;
      candidate.file_bytes = max_end;
      changed |= accept(candidate);
    }
    return changed;
  }

  bool neutralize_hints() {
    bool changed = false;
    const auto try_mutation = [&](auto mutate) {
      Scenario candidate = best_;
      mutate(candidate);
      if (candidate == best_) return;
      changed |= accept(candidate);
    };
    try_mutation([](Scenario& s) { s.pipeline = false; });
    try_mutation([](Scenario& s) { s.coalesce = false; });
    try_mutation([](Scenario& s) { s.sync_streams = 1; });
    try_mutation([](Scenario& s) { s.aggregators = 0; });
    try_mutation([](Scenario& s) { s.flush = "flush_onclose"; });
    // Journaling stays on while a crash point remains: recovery needs it.
    try_mutation([](Scenario& s) {
      if (!s.wants_crash()) s.journal_hint = false;
    });
    try_mutation([](Scenario& s) {
      if (s.cache == "coherent") s.cache = "enable";
    });
    try_mutation([](Scenario& s) {
      if (!s.wants_crash()) s.cache = "disable";
    });
    return changed;
  }
};

}  // namespace

ShrinkResult shrink(const Scenario& failing, const RunOptions& run_options,
                    const ShrinkOptions& options) {
  // Search runs with the cheap oracle set; cross-hints only stays on when
  // the caller insisted (it doubles every candidate's cost).
  Shrinker shrinker(run_options, options);

  // Self-containment first: concretize the access pattern (so piece drops
  // are possible) and pin crash_frac to its resolved virtual time (so the
  // minimal repro does not depend on a probe run of the *original* shape).
  Scenario prepared = failing;
  prepared.pieces = failing.concrete_pieces();
  if (prepared.crash_frac > 0.0 && !prepared.crash_at.has_value()) {
    prepared.crash_at = std::max<Time>(
        1, static_cast<Time>(prepared.crash_frac *
                             static_cast<double>(probe_end_time(prepared))));
  }
  prepared.crash_frac = 0.0;
  shrinker.best_ = prepared;

  if (!shrinker.accept(prepared)) {
    // The prepared form passes (or the budget is zero): nothing to shrink.
    // Hand back the original unchanged with its full-oracle verdict.
    ShrinkResult result;
    result.minimal = failing;
    result.result = run_scenario(failing, run_options);
    result.evaluations = shrinker.evaluations_;
    result.exhausted = shrinker.exhausted_;
    return result;
  }

  while (shrinker.round() && !shrinker.exhausted_) {
  }

  ShrinkResult result;
  result.minimal = shrinker.best_;
  result.result = run_scenario(shrinker.best_, run_options);
  result.evaluations = shrinker.evaluations_;
  result.exhausted = shrinker.exhausted_;
  return result;
}

}  // namespace e10::fuzz
