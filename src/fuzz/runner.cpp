#include "fuzz/runner.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "adio/adio_file.h"
#include "analysis/checker.h"
#include "analysis/lock_order.h"
#include "cache/cache_file.h"
#include "cache/journal.h"
#include "common/rng.h"
#include "fault/fault_plan.h"
#include "mpi/topology.h"
#include "mpiio/file.h"
#include "workloads/testbed.h"

namespace e10::fuzz {

using namespace e10::units;

namespace {

constexpr const char* kGlobalPath = "/pfs/fuzz";
constexpr const char* kCacheDir = "/scratch";
/// Sampling strides for the byte oracles: dense enough that any lost or
/// corrupted extent of real size is hit, cheap enough for hundreds of runs.
constexpr Offset kChecksumStride = 31;
constexpr Offset kCompareStride = 37;
constexpr int kMaxDetails = 5;  // violations reported per oracle

workloads::TestbedParams testbed_for(const Scenario& s) {
  workloads::TestbedParams params = workloads::small_testbed();
  params.compute_nodes = s.nodes;
  params.ranks_per_node = s.ranks_per_node;
  params.seed = Rng::derive(s.seed, "fuzz.testbed");
  return params;
}

mpi::Info info_for(const Scenario& s) {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_buffer_size", std::to_string(s.cb_buffer));
  if (s.aggregators > 0) info.set("cb_nodes", std::to_string(s.aggregators));
  info.set("e10_pipeline_flag", s.pipeline ? "enable" : "disable");
  info.set("e10_two_level_flag", s.two_level ? "enable" : "disable");
  info.set("e10_cache", s.cache);
  if (s.cache != "disable") {
    info.set("e10_cache_path", kCacheDir);
    info.set("e10_cache_flush_flag", s.flush);
    info.set("e10_sync_streams", std::to_string(s.sync_streams));
    info.set("e10_flush_coalesce_flag", s.coalesce ? "enable" : "disable");
    info.set("e10_cache_journal", s.journal_hint ? "enable" : "disable");
  }
  return info;
}

/// The cache-file naming scheme of adio::open_coll (cache_file_name).
std::string cache_path_for_rank(int rank) {
  std::string base = kGlobalPath;
  std::replace(base.begin(), base.end(), '/', '_');
  return std::string(kCacheDir) + "/" + base + ".cache." + std::to_string(rank);
}

/// Reference model: every piece applied to a plain ByteStore.
ByteStore build_reference(const Scenario& s,
                          const std::vector<PieceSpec>& pieces) {
  ByteStore reference;
  for (const PieceSpec& p : pieces) {
    reference.write(p.offset,
                    DataView::synthetic(s.data_seed(), p.offset, p.length));
  }
  return reference;
}

/// Per-(call, rank) IoPiece lists for the system under test. The self-test
/// bug drops the first piece here — and only here; the reference keeps it.
std::vector<std::vector<std::vector<mpi::IoPiece>>> build_io(
    const Scenario& s, const std::vector<PieceSpec>& pieces) {
  std::vector<std::vector<std::vector<mpi::IoPiece>>> io(
      static_cast<std::size_t>(s.calls));
  for (auto& per_call : io) {
    per_call.resize(static_cast<std::size_t>(s.ranks()));
  }
  bool dropped = false;
  for (const PieceSpec& p : pieces) {
    if (s.bug == BugKind::drop_extent && !dropped) {
      dropped = true;  // pieces are sorted: this is the (call, rank, offset) min
      continue;
    }
    mpi::IoPiece piece;
    piece.file = Extent{p.offset, p.length};
    piece.data = DataView::synthetic(s.data_seed(), p.offset, p.length);
    io[static_cast<std::size_t>(p.call)][static_cast<std::size_t>(p.rank)]
        .push_back(std::move(piece));
  }
  return io;
}

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

/// Sampled FNV-1a content fingerprint of the global file.
std::uint64_t content_checksum(const ByteStore* file) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  if (file == nullptr) return h;
  const Offset end = file->extent_end();
  h = fnv_step(h, static_cast<std::uint64_t>(end));
  for (Offset pos = 0; pos < end; pos += kChecksumStride) {
    h = fnv_step(h, static_cast<std::uint64_t>(file->byte_at(pos)));
  }
  return h;
}

struct ByteDiff {
  Offset pos = 0;
  int actual = 0;
  int expected = 0;
};

std::string diff_text(const ByteDiff& d) {
  std::ostringstream os;
  os << "pos " << d.pos << ": file=" << d.actual << " ref=" << d.expected;
  return os.str();
}

/// One executed simulation, with everything the oracles need still alive.
struct Execution {
  std::unique_ptr<workloads::Platform> platform;
  std::unique_ptr<analysis::ConcurrencyChecker> checker;
  RunReport report;
  std::vector<OracleViolation> violations;

  void violate(const std::string& oracle, const std::string& detail) {
    violations.push_back(OracleViolation{oracle, detail});
  }
};

/// Builds the platform, runs the workload (with the crash point armed when
/// `crash_at` > 0), and runs the recovery pass after a fired crash. Fills
/// the report; byte oracles are applied by the caller.
Execution execute(const Scenario& s, Time crash_at, bool check_concurrency) {
  Execution ex;
  ex.platform = std::make_unique<workloads::Platform>(testbed_for(s));
  workloads::Platform& p = *ex.platform;
  if (check_concurrency) {
    ex.checker = std::make_unique<analysis::ConcurrencyChecker>(p.engine);
  }
  if (!s.fault_spec.empty()) {
    auto plan = fault::FaultPlan::parse(s.fault_spec);
    if (!plan.is_ok()) {
      ex.report.engine_error = true;
      ex.report.engine_error_text =
          "fault spec: " + plan.status().message();
      return ex;
    }
    p.faults.arm(std::move(plan).value());
  }

  const auto pieces = s.concrete_pieces();
  const auto io = build_io(s, pieces);
  const mpi::Info info = info_for(s);
  std::vector<Status> rank_status(static_cast<std::size_t>(s.ranks()),
                                  Status::ok());

  p.launch([&, io](mpi::Comm comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    auto note = [&](const Status& st) {
      if (rank_status[r].is_ok() && !st.is_ok()) rank_status[r] = st;
    };
    auto file = mpiio::File::open(p.ctx, comm, kGlobalPath,
                                  adio::amode::create | adio::amode::rdwr,
                                  info);
    if (!file.is_ok()) {
      note(file.status());
      return;  // open is collective: every rank fails together
    }
    // Keep the collective call sequence aligned across ranks even after an
    // error — a failed collective reports on every rank, and bailing out on
    // one rank only would wedge the others.
    for (int c = 0; c < s.calls; ++c) {
      note(adio::write_strided_coll(*file.value().raw(),
                                    io[static_cast<std::size_t>(c)][r]));
    }
    note(file.value().close());
  });

  if (crash_at > 0) {
    ex.report.crash_at = crash_at;
    p.engine.stop_at(crash_at);
  }
  try {
    p.engine.run();
  } catch (const std::exception& e) {
    ex.report.engine_error = true;
    ex.report.engine_error_text = e.what();
  }
  ex.report.stopped = p.engine.stopped();

  if (ex.report.stopped) {
    // Restart-and-recover pass: the job was killed; the fault scenario died
    // with it (a restarted job runs in a healthy environment), and a fresh
    // process replays every rank's surviving journal.
    p.faults.arm(fault::FaultPlan{});
    const mpi::Topology topo(s.nodes, s.ranks_per_node);
    p.engine.spawn("fuzz-recovery", [&] {
      pfs::OpenOptions opts;
      opts.mode = pfs::OpenMode::read_write;
      const auto handle = p.pfs.open(kGlobalPath, 0, opts);
      if (!handle.is_ok()) return;  // crashed before create: nothing durable
      for (int r = 0; r < s.ranks(); ++r) {
        lfs::LocalFs& node_fs = p.lfs.at(topo.node_of(r));
        const std::string cpath = cache_path_for_rank(r);
        if (!node_fs.exists(cache::CacheFile::journal_path(cpath))) continue;
        const auto rec = cache::CacheFile::recover(node_fs, p.pfs,
                                                   handle.value(), cpath);
        if (rec.is_ok()) {
          ex.report.recovered_extents += rec.value().replayed_extents;
          ex.report.recovered_bytes += rec.value().replayed_bytes;
        } else {
          ex.violate("recovery", "rank " + std::to_string(r) + ": " +
                                     rec.status().to_string());
        }
      }
      (void)p.pfs.close(handle.value());
    });
    try {
      p.engine.run();
    } catch (const std::exception& e) {
      ex.report.engine_error = true;
      ex.report.engine_error_text = std::string("recovery: ") + e.what();
    }
  }

  ex.report.end_time = p.engine.now();
  ex.report.rank_errors.reserve(rank_status.size());
  bool all_ok = !ex.report.engine_error && !ex.report.stopped;
  for (const Status& st : rank_status) {
    ex.report.rank_errors.push_back(static_cast<int>(st.code()));
    if (!st.is_ok()) all_ok = false;
  }
  ex.report.all_ok = all_ok;
  ex.report.checksum = content_checksum(p.pfs.peek(kGlobalPath));
  const ByteStore* file = p.pfs.peek(kGlobalPath);
  ex.report.extent_end = file != nullptr ? file->extent_end() : 0;
  if (ex.checker != nullptr) {
    const auto summary = ex.checker->summary();
    ex.report.races = summary.races.size();
    ex.report.cycles = summary.cycles.size();
    ex.report.shared_accesses = summary.shared_accesses;
  }
  ex.report.faults_injected = p.faults.stats().injected;
  ex.report.fault_crashes = p.faults.stats().crashes;
  ex.report.engine_stats = p.engine.stats();
  return ex;
}

}  // namespace

std::string RunReport::to_text() const {
  std::ostringstream os;
  os << "engine_error=" << engine_error;
  if (engine_error) os << " (" << engine_error_text << ")";
  os << " stopped=" << stopped << " crash_at=" << crash_at
     << " end_time=" << end_time << " all_ok=" << all_ok << " rank_errors=[";
  for (std::size_t i = 0; i < rank_errors.size(); ++i) {
    os << (i > 0 ? "," : "") << rank_errors[i];
  }
  os << "] checksum=" << checksum << " extent_end=" << extent_end
     << " races=" << races << " cycles=" << cycles
     << " shared_accesses=" << shared_accesses
     << " faults_injected=" << faults_injected
     << " fault_crashes=" << fault_crashes
     << " recovered_extents=" << recovered_extents
     << " recovered_bytes=" << recovered_bytes
     << " journal_extents_checked=" << journal_extents_checked
     << " engine_events=" << engine_stats.events
     << " engine_switches=" << engine_stats.switches
     << " engine_spawned=" << engine_stats.spawned
     << " engine_ready_hwm=" << engine_stats.max_ready_depth;
  return os.str();
}

std::string RunResult::violations_text() const {
  std::ostringstream os;
  for (const OracleViolation& v : violations) {
    os << v.oracle << ": " << v.detail << "\n";
  }
  return os.str();
}

Time probe_end_time(const Scenario& scenario) {
  Scenario probe = scenario;
  probe.crash_frac = 0.0;
  probe.crash_at.reset();
  Execution ex = execute(probe, /*crash_at=*/0, /*check_concurrency=*/false);
  return ex.report.end_time;
}

RunResult run_scenario(const Scenario& scenario, const RunOptions& options) {
  // Resolve the crash fraction against the clean-run end time so "kill at
  // 40% of the run" is meaningful regardless of workload size.
  Time crash_at = 0;
  if (scenario.crash_at.has_value()) {
    crash_at = *scenario.crash_at;
  } else if (scenario.crash_frac > 0.0) {
    crash_at = std::max<Time>(
        1, static_cast<Time>(scenario.crash_frac *
                             static_cast<double>(probe_end_time(scenario))));
  }

  Execution ex = execute(scenario, crash_at, options.check_concurrency);
  RunResult result;

  const auto pieces = scenario.concrete_pieces();
  const ByteStore reference = build_reference(scenario, pieces);
  workloads::Platform& p = *ex.platform;
  const ByteStore* file = p.pfs.peek(kGlobalPath);

  // ---- Oracle: the simulation itself must terminate cleanly -------------
  if (ex.report.engine_error) {
    ex.violate("engine", ex.report.engine_error_text);
  }

  // ---- Oracle 3: zero concurrency findings ------------------------------
  if (ex.checker != nullptr) {
    const auto summary = ex.checker->summary();
    for (std::size_t i = 0; i < summary.races.size() &&
                            i < static_cast<std::size_t>(kMaxDetails); ++i) {
      ex.violate("concurrency", "race on " + summary.races[i].var + " at " +
                                    summary.races[i].site);
    }
    for (const auto& cycle : summary.cycles) {
      std::string locks;
      for (const std::string& l : cycle.locks) {
        locks += (locks.empty() ? "" : " -> ") + l;
      }
      ex.violate("concurrency", "lock-order cycle: " + locks);
    }
    // Declared-vs-dynamic cross-check: the acquisition order this run
    // actually exercised must not reverse the statically declared order
    // (analysis/lock_order.h) — catches inversions even when no cycle
    // closed on this schedule.
    for (const std::string& violation :
         analysis::check_declared_order(ex.checker->order_edges())) {
      ex.violate("concurrency", violation);
    }
  }

  // ---- Oracles 1 and 4: byte-level checks vs the reference model --------
  auto check_extent = [&](const char* oracle, Offset begin, Offset length,
                          int& budget) {
    auto check_pos = [&](Offset pos) {
      if (budget <= 0) return;
      const int actual =
          file != nullptr ? static_cast<int>(file->byte_at(pos)) : 0;
      const int expected = static_cast<int>(reference.byte_at(pos));
      if (actual != expected) {
        --budget;
        ex.violate(oracle, diff_text(ByteDiff{pos, actual, expected}));
      }
    };
    check_pos(begin);
    if (length > 1) check_pos(begin + length - 1);
    for (Offset pos = begin + kCompareStride; pos + 1 < begin + length;
         pos += kCompareStride) {
      check_pos(pos);
    }
  };

  if (!ex.report.engine_error) {
    if (ex.report.all_ok) {
      // No rank surfaced an error: the file must be byte-exact.
      int budget = kMaxDetails;
      if (file == nullptr) {
        ex.violate("byte_equality", "global file missing");
      } else if (file->extent_end() != reference.extent_end()) {
        ex.violate("byte_equality",
                   "extent_end " + std::to_string(file->extent_end()) +
                       " != ref " + std::to_string(reference.extent_end()));
      }
      for (const PieceSpec& piece : pieces) {
        check_extent("byte_equality", piece.offset, piece.length, budget);
      }
    } else if (!ex.report.stopped) {
      // Errors were surfaced: abandoned extents may be missing, but
      // nothing may be *wrong* — every written byte matches the reference
      // or is still zero (no garbage, no misplaced data).
      int budget = kMaxDetails;
      const Offset end = file != nullptr ? file->extent_end() : 0;
      for (Offset pos = 0; pos < end && budget > 0; pos += kCompareStride) {
        const int actual = static_cast<int>(file->byte_at(pos));
        if (actual == 0) continue;  // unwritten (or legitimately zero)
        const int expected = static_cast<int>(reference.byte_at(pos));
        if (actual != expected) {
          --budget;
          ex.violate("no_garbage", diff_text(ByteDiff{pos, actual, expected}));
        }
      }
    }

    if (ex.report.stopped) {
      // Oracle 4: after the kill + replay, every extent the surviving
      // journals describe must be byte-identical in the global file. The
      // extent map is rebuilt with the live path's shadowing rules, so a
      // re-written range is checked against its freshest copy only.
      const mpi::Topology topo(scenario.nodes, scenario.ranks_per_node);
      int budget = kMaxDetails;
      for (int r = 0; r < scenario.ranks(); ++r) {
        const lfs::LocalFs& node_fs = p.lfs.at(topo.node_of(r));
        const ByteStore* journal = node_fs.peek(
            cache::CacheFile::journal_path(cache_path_for_rank(r)));
        if (journal == nullptr) continue;
        const auto records = cache::scan_write_records(
            journal->read(0, journal->extent_end()));
        cache::ExtentMap map;
        for (const cache::WriteRecord& rec : records) {
          cache::apply_extent(map, Extent{rec.global_offset, rec.length},
                              rec.cache_offset, rec.seq);
        }
        for (const auto& [global_offset, extent] : map) {
          ++ex.report.journal_extents_checked;
          check_extent("recovery", global_offset, extent.length, budget);
        }
      }
      // And the no-garbage invariant still holds for everything else.
      int garbage_budget = kMaxDetails;
      const Offset end = file != nullptr ? file->extent_end() : 0;
      for (Offset pos = 0; pos < end && garbage_budget > 0;
           pos += kCompareStride) {
        const int actual = static_cast<int>(file->byte_at(pos));
        if (actual == 0) continue;
        const int expected = static_cast<int>(reference.byte_at(pos));
        if (actual != expected) {
          --garbage_budget;
          ex.violate("no_garbage", diff_text(ByteDiff{pos, actual, expected}));
        }
      }
    }
  }

  // ---- Oracle 2: checksum equality across hint configurations -----------
  // Only meaningful for clean runs: faults and crashes make content differ
  // across configs legitimately (different extents get abandoned).
  if (options.cross_check_hints && ex.report.all_ok &&
      scenario.fault_spec.empty() && !scenario.wants_crash()) {
    Scenario baseline = scenario;
    baseline.cache = scenario.cache == "disable" ? "enable" : "disable";
    baseline.pipeline = true;
    baseline.sync_streams = 4;
    baseline.coalesce = true;
    // Flip the exchange topology too: the two-level gather must produce
    // byte-identical content to the flat shuffle.
    baseline.two_level = !scenario.two_level;
    Execution base =
        execute(baseline, /*crash_at=*/0, /*check_concurrency=*/false);
    if (base.report.engine_error) {
      ex.violate("cross_hints",
                 "baseline run failed: " + base.report.engine_error_text);
    } else if (!base.report.all_ok) {
      ex.violate("cross_hints", "baseline run surfaced errors");
    } else if (base.report.checksum != ex.report.checksum) {
      std::ostringstream os;
      os << "checksum " << ex.report.checksum << " (cache=" << scenario.cache
         << ", two_level=" << (scenario.two_level ? "on" : "off") << ") != "
         << base.report.checksum << " (cache=" << baseline.cache
         << ", two_level=" << (baseline.two_level ? "on" : "off") << ")";
      ex.violate("cross_hints", os.str());
    }
  }

  result.report = std::move(ex.report);
  result.violations = std::move(ex.violations);
  return result;
}

}  // namespace e10::fuzz
