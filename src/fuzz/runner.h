// Executes one fuzz Scenario against the full stack and checks the
// four-way oracle (docs/fuzzing.md):
//
//  1. Byte equality vs. the ByteStore POSIX reference model — whenever the
//     run surfaced no error on any rank, the global file must hold exactly
//     the reference bytes (sampled densely plus every piece boundary).
//     Errors that *were* surfaced relax this to the no-garbage invariant:
//     every global-file byte equals the reference byte or is still unwritten
//     — abandoned extents may lose data, but nothing may be corrupted.
//  2. Content-checksum equality across hint configurations: a clean
//     scenario re-run under baseline hints (cache path flipped) must
//     produce the identical content fingerprint.
//  3. Zero ConcurrencyChecker findings (lockset races, lock-order cycles).
//  4. Post-recovery byte-identity of journaled extents: after a crash-point
//     kill and CacheFile::recover() replay, every extent the journals know
//     about must match the reference model in the global file.
//
// Everything is deterministic: the same Scenario produces a byte-identical
// RunReport::to_text(), which the determinism tests and the shrinker's
// replay logic rely on.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "fuzz/scenario.h"
#include "sim/engine.h"

namespace e10::fuzz {

/// One oracle violation; `oracle` names which of the four checks failed
/// ("byte_equality", "no_garbage", "cross_hints", "concurrency",
/// "recovery", or "engine" for a crashed/deadlocked simulation).
struct OracleViolation {
  std::string oracle;
  std::string detail;
};

/// Deterministic record of one scenario execution.
struct RunReport {
  bool engine_error = false;     // run() threw (deadlock, logic error)
  std::string engine_error_text;
  bool stopped = false;          // the crash point fired
  Time crash_at = 0;             // resolved crash time (0 = none)
  Time end_time = 0;             // final virtual time
  std::vector<int> rank_errors;  // Errc per rank (0 = ok)
  bool all_ok = false;           // every rank finished without error
  std::uint64_t checksum = 0;    // sampled FNV-1a over the global file
  Offset extent_end = 0;
  std::size_t races = 0;
  std::size_t cycles = 0;
  std::size_t shared_accesses = 0;
  std::int64_t faults_injected = 0;
  std::int64_t fault_crashes = 0;
  // Crash-point recovery tallies (zero when no crash fired).
  std::uint64_t recovered_extents = 0;
  Offset recovered_bytes = 0;
  std::uint64_t journal_extents_checked = 0;
  /// Scheduler self-metrics for the whole run (main pass + any recovery
  /// pass). Part of to_text(), so the determinism oracle catches scheduler
  /// divergence — two runs agreeing on file bytes but not on event counts
  /// took different paths to the same answer.
  sim::EngineStats engine_stats;

  /// Canonical text form; byte-identical across identical runs.
  std::string to_text() const;
};

struct RunOptions {
  /// Oracle 2: re-run clean scenarios under baseline hints and compare
  /// content checksums. Doubles the cost of clean runs; the shrinker turns
  /// it off while searching and back on for the final verdict.
  bool cross_check_hints = true;
  /// Oracle 3: attach the ConcurrencyChecker to the main run.
  bool check_concurrency = true;
};

struct RunResult {
  RunReport report;
  std::vector<OracleViolation> violations;
  bool ok() const { return violations.empty(); }
  /// Violations joined as "oracle: detail" lines (empty when ok).
  std::string violations_text() const;
};

/// Runs the scenario (resolving crash_frac to a concrete crash time via a
/// probe run when needed) and applies every applicable oracle.
RunResult run_scenario(const Scenario& scenario, const RunOptions& options = {});

/// Clean-run end time of the scenario's workload — the basis for resolving
/// crash_frac into a virtual crash time (and oracle 2's baseline).
Time probe_end_time(const Scenario& scenario);

}  // namespace e10::fuzz
