#include "fuzz/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <tuple>

#include "common/extent.h"
#include "common/rng.h"
#include "fault/fault_plan.h"

namespace e10::fuzz {

using namespace e10::units;

namespace {

Status bad_spec(int line, std::string_view why) {
  return Status::error(Errc::invalid_argument,
                       "fuzz spec line " + std::to_string(line) + ": " +
                           std::string(why));
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const std::string text(s);
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const std::string text(s);
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

/// Random fault plan over the full grammar: transient rules on a random
/// subset of ops, occasional outage/degrade windows, occasional rank
/// crashes, and a derived injector seed. Probabilities are kept low enough
/// that most faulted runs still complete (retry/backoff absorbs them) —
/// the interesting bugs are silent, not loud.
std::string random_fault_spec(Rng& rng, int ranks) {
  std::ostringstream os;
  const char* sep = "";
  static constexpr const char* kOps[] = {"pfs_read",  "pfs_write",
                                         "pfs_metadata", "lfs_open",
                                         "lfs_read",  "lfs_write"};
  static constexpr const char* kErrcs[] = {"unavailable", "timed_out",
                                           "io_error", "busy"};
  for (const char* op : kOps) {
    if (!rng.bernoulli(0.25)) continue;
    const double pct = 0.5 + rng.uniform(0.0, 4.5);  // 0.5% .. 5%
    os << sep << op << "=" << pct << "%/"
       << kErrcs[rng.uniform_int(0, 3)];
    sep = ";";
  }
  if (rng.bernoulli(0.3)) {
    const Time start = milliseconds(rng.uniform_int(1, 40));
    const Time len = milliseconds(rng.uniform_int(5, 60));
    os << sep << "outage=" << rng.uniform_int(0, 1) << "@" << start << "-"
       << (start + len);
    sep = ";";
  }
  if (rng.bernoulli(0.3)) {
    const Time start = milliseconds(rng.uniform_int(1, 40));
    const Time len = milliseconds(rng.uniform_int(5, 60));
    os << sep << "degrade=" << rng.uniform_int(0, 1) << "@" << start << "-"
       << (start + len) << "x" << rng.uniform_int(2, 8);
    sep = ";";
  }
  if (rng.bernoulli(0.25)) {
    const int rank = static_cast<int>(rng.uniform_int(0, ranks - 1));
    os << sep << "crash=" << rank << "@";
    if (rng.bernoulli(0.5)) {
      os << "flush";
    } else {
      os << milliseconds(rng.uniform_int(1, 80));
    }
    sep = ";";
  }
  if (*sep == '\0') return {};  // nothing drawn: an unfaulted scenario
  os << sep << "seed=" << rng.uniform_int(1, 1 << 20);
  return os.str();
}

}  // namespace

const char* bug_kind_name(BugKind bug) {
  switch (bug) {
    case BugKind::none: return "none";
    case BugKind::drop_extent: return "drop_extent";
  }
  return "unknown";
}

std::vector<PieceSpec> Scenario::concrete_pieces() const {
  if (!pieces.empty()) return pieces;
  // Cut the file into random-size blocks, shuffle, deal round-robin over
  // (call, rank) slots, drop ~5% as holes — the property-test pattern,
  // extended over multiple collective calls. Disjointness across all slots
  // holds by construction (each file byte lands in exactly one block).
  Rng rng(Rng::derive(seed, "fuzz.pattern"));
  std::vector<Extent> blocks;
  Offset cursor = 0;
  while (cursor < file_bytes) {
    const Offset len =
        std::min<Offset>(file_bytes - cursor,
                         rng.uniform_int(1, 64) * KiB + rng.uniform_int(0, 4095));
    blocks.push_back(Extent{cursor, len});
    cursor += len;
  }
  std::shuffle(blocks.begin(), blocks.end(), rng.engine());
  const int slots = calls * ranks();
  std::vector<PieceSpec> out;
  out.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (rng.bernoulli(0.05)) continue;  // leave a hole
    const int slot = static_cast<int>(i % static_cast<std::size_t>(slots));
    PieceSpec piece;
    piece.call = slot / ranks();
    piece.rank = slot % ranks();
    piece.offset = blocks[i].offset;
    piece.length = blocks[i].length;
    out.push_back(piece);
  }
  std::sort(out.begin(), out.end(), [](const PieceSpec& a, const PieceSpec& b) {
    return std::tie(a.call, a.rank, a.offset) <
           std::tie(b.call, b.rank, b.offset);
  });
  return out;
}

Scenario Scenario::generate(std::uint64_t seed, const ScenarioLimits& limits,
                            bool want_crash) {
  Rng rng(Rng::derive(seed, "fuzz.scenario"));
  Scenario s;
  s.seed = seed;
  s.nodes = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(limits.max_nodes)));
  s.ranks_per_node = static_cast<std::size_t>(rng.uniform_int(
      1, static_cast<std::int64_t>(limits.max_ranks_per_node)));
  s.file_bytes = std::min<Offset>(
      limits.max_file_bytes,
      rng.uniform_int(128, 2048) * KiB + rng.uniform_int(0, 8191));
  s.calls = static_cast<int>(rng.uniform_int(1, limits.max_calls));

  // Hint combination. Weighted toward the cache being on — that is the
  // subsystem under adversarial test — but every combination is reachable.
  const std::int64_t cache_draw = rng.uniform_int(0, 9);
  s.cache = cache_draw < 2 ? "disable" : cache_draw < 8 ? "enable" : "coherent";
  s.flush = rng.bernoulli(0.5) ? "flush_immediate" : "flush_onclose";
  s.pipeline = rng.bernoulli(0.75);
  static constexpr int kStreams[] = {1, 2, 4};
  s.sync_streams = kStreams[rng.uniform_int(0, 2)];
  s.coalesce = rng.bernoulli(0.75);
  s.aggregators = static_cast<int>(rng.uniform_int(0, s.ranks()));
  s.cb_buffer = rng.uniform_int(1, 16) * 64 * KiB;
  s.journal_hint = rng.bernoulli(0.3);
  // The two-level exchange only differs from flat on multi-rank nodes; keep
  // the draw unconditional so single-rank layouts stay seed-compatible.
  s.two_level = rng.bernoulli(0.5) && s.ranks_per_node > 1;

  if (rng.bernoulli(0.5)) s.fault_spec = random_fault_spec(rng, s.ranks());

  if (want_crash) {
    // A job-kill crash point needs a cache and a journal for recovery to
    // have anything to replay; flush_onclose maximizes dirty data at risk.
    if (s.cache == "disable") s.cache = "enable";
    s.journal_hint = true;
    s.crash_frac = 0.1 + rng.uniform(0.0, 0.85);
  }
  return s;
}

std::string Scenario::to_spec() const {
  std::ostringstream os;
  os << "# e10 fuzz scenario v1\n";
  os << "seed=" << seed << "\n";
  os << "nodes=" << nodes << "\n";
  os << "ranks_per_node=" << ranks_per_node << "\n";
  os << "file_bytes=" << file_bytes << "\n";
  os << "calls=" << calls << "\n";
  os << "cache=" << cache << "\n";
  os << "flush=" << flush << "\n";
  os << "pipeline=" << (pipeline ? "on" : "off") << "\n";
  os << "sync_streams=" << sync_streams << "\n";
  os << "coalesce=" << (coalesce ? "on" : "off") << "\n";
  os << "aggregators=" << aggregators << "\n";
  os << "cb_buffer=" << cb_buffer << "\n";
  os << "journal=" << (journal_hint ? "on" : "off") << "\n";
  os << "two_level=" << (two_level ? "on" : "off") << "\n";
  if (!fault_spec.empty()) os << "faults=" << fault_spec << "\n";
  if (crash_frac > 0.0) {
    // Full round-trip precision: parse(to_spec()) must reproduce the exact
    // double, or replayed scenarios resolve a different crash time.
    os << "crash_frac=" << std::setprecision(17) << crash_frac
       << std::setprecision(6) << "\n";
  }
  if (crash_at.has_value()) os << "crash_at=" << *crash_at << "\n";
  if (bug != BugKind::none) os << "bug=" << bug_kind_name(bug) << "\n";
  for (const PieceSpec& p : pieces) {
    os << "piece=" << p.call << "," << p.rank << "," << p.offset << ","
       << p.length << "\n";
  }
  return os.str();
}

Result<Scenario> Scenario::parse(std::string_view text) {
  Scenario s;
  s.cb_buffer = 0;  // every field below is required except the optionals
  bool have_seed = false;
  int line_no = 0;
  std::string_view rest = text;
  while (!rest.empty()) {
    ++line_no;
    const auto nl = rest.find('\n');
    std::string_view line = rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) return bad_spec(line_no, "expected key=value");
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);

    auto as_int = [&]() { return parse_int(value); };
    if (key == "seed") {
      const auto v = as_int();
      if (!v || *v < 0) return bad_spec(line_no, "bad seed");
      s.seed = static_cast<std::uint64_t>(*v);
      have_seed = true;
    } else if (key == "nodes") {
      const auto v = as_int();
      if (!v || *v < 1) return bad_spec(line_no, "bad nodes");
      s.nodes = static_cast<std::size_t>(*v);
    } else if (key == "ranks_per_node") {
      const auto v = as_int();
      if (!v || *v < 1) return bad_spec(line_no, "bad ranks_per_node");
      s.ranks_per_node = static_cast<std::size_t>(*v);
    } else if (key == "file_bytes") {
      const auto v = as_int();
      if (!v || *v < 1) return bad_spec(line_no, "bad file_bytes");
      s.file_bytes = *v;
    } else if (key == "calls") {
      const auto v = as_int();
      if (!v || *v < 1) return bad_spec(line_no, "bad calls");
      s.calls = static_cast<int>(*v);
    } else if (key == "cache") {
      if (value != "disable" && value != "enable" && value != "coherent") {
        return bad_spec(line_no, "cache must be disable|enable|coherent");
      }
      s.cache = std::string(value);
    } else if (key == "flush") {
      if (value != "flush_immediate" && value != "flush_onclose") {
        return bad_spec(line_no, "flush must be flush_immediate|flush_onclose");
      }
      s.flush = std::string(value);
    } else if (key == "pipeline" || key == "coalesce" || key == "journal" ||
               key == "two_level") {
      if (value != "on" && value != "off") {
        return bad_spec(line_no, "expected on|off");
      }
      const bool on = value == "on";
      if (key == "pipeline") s.pipeline = on;
      if (key == "coalesce") s.coalesce = on;
      if (key == "journal") s.journal_hint = on;
      if (key == "two_level") s.two_level = on;
    } else if (key == "sync_streams") {
      const auto v = as_int();
      if (!v || *v < 1) return bad_spec(line_no, "bad sync_streams");
      s.sync_streams = static_cast<int>(*v);
    } else if (key == "aggregators") {
      const auto v = as_int();
      if (!v || *v < 0) return bad_spec(line_no, "bad aggregators");
      s.aggregators = static_cast<int>(*v);
    } else if (key == "cb_buffer") {
      const auto v = as_int();
      if (!v || *v < 1) return bad_spec(line_no, "bad cb_buffer");
      s.cb_buffer = *v;
    } else if (key == "faults") {
      // Validate eagerly: a replay file with a broken plan should fail at
      // parse time, not mid-run.
      if (const auto plan = fault::FaultPlan::parse(value); !plan.is_ok()) {
        return bad_spec(line_no, plan.status().message());
      }
      s.fault_spec = std::string(value);
    } else if (key == "crash_frac") {
      const auto v = parse_double(value);
      if (!v || *v <= 0.0 || *v > 1.0) {
        return bad_spec(line_no, "crash_frac must be in (0, 1]");
      }
      s.crash_frac = *v;
    } else if (key == "crash_at") {
      const auto v = as_int();
      if (!v || *v < 0) return bad_spec(line_no, "bad crash_at");
      s.crash_at = *v;
    } else if (key == "bug") {
      if (value == "none") {
        s.bug = BugKind::none;
      } else if (value == "drop_extent") {
        s.bug = BugKind::drop_extent;
      } else {
        return bad_spec(line_no, "unknown bug kind");
      }
    } else if (key == "piece") {
      PieceSpec piece;
      std::int64_t fields[4] = {};
      std::string_view v = value;
      for (int f = 0; f < 4; ++f) {
        const auto comma = v.find(',');
        const std::string_view part =
            f < 3 ? v.substr(0, comma) : v;
        if (f < 3 && comma == std::string_view::npos) {
          return bad_spec(line_no, "piece wants call,rank,offset,length");
        }
        const auto n = parse_int(part);
        if (!n || *n < 0) return bad_spec(line_no, "bad piece field");
        fields[f] = *n;
        if (f < 3) v = v.substr(comma + 1);
      }
      piece.call = static_cast<int>(fields[0]);
      piece.rank = static_cast<int>(fields[1]);
      piece.offset = fields[2];
      piece.length = fields[3];
      if (piece.length < 1) return bad_spec(line_no, "piece length must be > 0");
      s.pieces.push_back(piece);
    } else {
      return bad_spec(line_no, "unknown key '" + std::string(key) + "'");
    }
  }
  if (!have_seed) {
    return Status::error(Errc::invalid_argument, "fuzz spec: missing seed=");
  }
  if (s.cb_buffer == 0) {
    return Status::error(Errc::invalid_argument, "fuzz spec: missing cb_buffer=");
  }
  for (const PieceSpec& p : s.pieces) {
    if (p.call >= s.calls || p.rank >= s.ranks()) {
      return Status::error(Errc::invalid_argument,
                           "fuzz spec: piece outside calls x ranks grid");
    }
  }
  return s;
}

std::string Scenario::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " " << nodes << "x" << ranks_per_node << " ranks, "
     << file_bytes / 1024 << " KiB x" << calls << " calls, cache=" << cache
     << "/" << flush << " pipe=" << (pipeline ? "on" : "off") << " streams="
     << sync_streams << " coalesce=" << (coalesce ? "on" : "off") << " aggs="
     << aggregators;
  if (journal_hint) os << " journal";
  if (two_level) os << " two_level";
  if (!fault_spec.empty()) os << " faults[" << fault_spec << "]";
  if (crash_at.has_value()) {
    os << " crash@" << *crash_at << "ns";
  } else if (crash_frac > 0.0) {
    os << " crash@" << crash_frac << "*end";
  }
  if (bug != BugKind::none) os << " bug=" << bug_kind_name(bug);
  if (!pieces.empty()) os << " pieces=" << pieces.size();
  return os.str();
}

}  // namespace e10::fuzz
