#include "net/fabric.h"

#include <stdexcept>

namespace e10::net {

Fabric::Fabric(std::size_t nodes, const FabricParams& params)
    : params_(params), tx_(nodes), rx_(nodes), mem_(nodes) {
  if (nodes == 0) throw std::logic_error("Fabric with zero nodes");
  if (params.nic_bytes_per_second <= 0 || params.mem_bytes_per_second <= 0) {
    throw std::logic_error("Fabric bandwidth must be positive");
  }
}

Time Fabric::serialization_time(Offset size, Offset bytes_per_second) const {
  // ceil(size * 1e9 / bw) in integer arithmetic, avoiding overflow by
  // splitting into whole seconds and remainder.
  if (size <= 0) return 0;
  const Offset whole = size / bytes_per_second;
  const Offset rem = size % bytes_per_second;
  return units::seconds(whole) +
         static_cast<Time>((static_cast<double>(rem) * 1e9) /
                           static_cast<double>(bytes_per_second));
}

Time Fabric::delivery_estimate(std::size_t src_node, std::size_t dst_node,
                               Offset size, Time when) const {
  if (src_node >= tx_.size() || dst_node >= rx_.size()) {
    throw std::logic_error("Fabric::delivery_estimate: node out of range");
  }
  if (size < 0) {
    throw std::logic_error("Fabric::delivery_estimate: negative size");
  }
  if (src_node == dst_node) {
    return when + params_.intra_node_overhead +
           serialization_time(size, params_.mem_bytes_per_second);
  }
  return when + params_.per_message_overhead + params_.link_latency +
         serialization_time(size, params_.nic_bytes_per_second);
}

Fabric::TransferTimes Fabric::transfer_times(std::size_t src_node,
                                             std::size_t dst_node, Offset size,
                                             Time now) {
  if (src_node >= tx_.size() || dst_node >= rx_.size()) {
    throw std::logic_error("Fabric::transfer: node out of range");
  }
  if (size < 0) throw std::logic_error("Fabric::transfer: negative size");

  if (src_node == dst_node) {
    intra_node_bytes_ += size;
    const Time copy = serialization_time(size, params_.mem_bytes_per_second);
    const sim::Interval slot = mem_[src_node].reserve_interval(
        now, params_.intra_node_overhead + copy);
    return TransferTimes{slot.end, slot.end, slot.start - now};
  }

  inter_node_bytes_ += size;
  const Time wire = serialization_time(size, params_.nic_bytes_per_second);
  const sim::Interval tx_slot =
      tx_[src_node].reserve_interval(now, params_.per_message_overhead + wire);
  // The receive NIC drains the same number of bytes; under incast the
  // receiver side is the bottleneck and this timeline serializes the flows.
  const sim::Interval rx_slot =
      rx_[dst_node].reserve_interval(tx_slot.end + params_.link_latency, wire);
  const Time queued = (tx_slot.start - now) +
                      (rx_slot.start - (tx_slot.end + params_.link_latency));
  return TransferTimes{tx_slot.end, rx_slot.end, queued};
}

}  // namespace e10::net
