// Interconnect model (InfiniBand-QDR-like).
//
// A message from node A to node B is charged: per-message software overhead
// and serialization time on A's transmit NIC, link latency, and drain time on
// B's receive NIC. NIC timelines create the incast contention an aggregator
// sees when many processes shuffle data to it at once. Messages between
// ranks on the same node bypass the NICs and pay a memory-copy cost instead
// (the paper's point (e): shuffle pressure on memory bandwidth).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/resource.h"

namespace e10::net {

struct FabricParams {
  /// One-way wire latency between any two nodes.
  Time link_latency = units::microseconds(2);
  /// Per-message software/protocol overhead charged at the sender.
  Time per_message_overhead = units::microseconds(1);
  /// NIC serialization bandwidth, bytes per simulated second.
  Offset nic_bytes_per_second = Offset{3400} * units::MiB;  // ~QDR 4x
  /// Intra-node copy bandwidth (shared-memory transport).
  Offset mem_bytes_per_second = Offset{6} * units::GiB;
  /// Intra-node per-message overhead.
  Time intra_node_overhead = units::nanoseconds(400);
};

class Fabric {
 public:
  Fabric(std::size_t nodes, const FabricParams& params);

  struct TransferTimes {
    /// When the sender's NIC finished serializing (send buffer reusable).
    Time tx_done;
    /// When the message is fully delivered at the receiver.
    Time arrival;
    /// Queueing inside the latency: time spent waiting for a busy NIC /
    /// copy engine rather than moving bytes (incast contention signal).
    Time queued = 0;
  };

  /// Computes the timing of a `size`-byte message sent from `src_node` at
  /// time `now` to `dst_node`, reserving NIC capacity on both ends. Pure
  /// cost model: never blocks.
  TransferTimes transfer_times(std::size_t src_node, std::size_t dst_node,
                               Offset size, Time now);

  /// Arrival time only (convenience).
  Time transfer(std::size_t src_node, std::size_t dst_node, Offset size,
                Time now) {
    return transfer_times(src_node, dst_node, size, now).arrival;
  }

  /// Delivery time of a message WITHOUT reserving NIC capacity: pure
  /// latency + serialization cost. For small control messages (RPC
  /// requests, acknowledgements) whose bandwidth is negligible — and whose
  /// send time may lie in the issuing model's future, where a FIFO timeline
  /// reservation would wrongly stall later traffic.
  Time delivery_estimate(std::size_t src_node, std::size_t dst_node,
                         Offset size, Time when) const;

  std::size_t nodes() const { return tx_.size(); }
  const FabricParams& params() const { return params_; }

  /// Cumulative bytes moved across node boundaries (diagnostics).
  Offset inter_node_bytes() const { return inter_node_bytes_; }
  Offset intra_node_bytes() const { return intra_node_bytes_; }

 private:
  Time serialization_time(Offset size, Offset bytes_per_second) const;

  FabricParams params_;
  std::vector<sim::ResourceTimeline> tx_;
  std::vector<sim::ResourceTimeline> rx_;
  std::vector<sim::ResourceTimeline> mem_;  // intra-node copy engines
  Offset inter_node_bytes_ = 0;
  Offset intra_node_bytes_ = 0;
};

}  // namespace e10::net
