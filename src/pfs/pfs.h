// Striped parallel file system simulator (BeeGFS-like).
//
// The Pfs owns a namespace of striped files, one metadata server, and N data
// servers. Each data server has a CPU timeline (per-RPC overhead — this is
// what a storm of small requests overwhelms, the "small I/O problem" of
// paper §I) and a Device (HDD-RAID target with seek costs and service-time
// jitter). Clients are simulated processes; every call blocks the caller in
// virtual time until the modeled completion.
//
// Timing is modeled through resource timelines; file *content* is applied
// immediately at call time (single-active-thread invariant). Overlapping
// concurrent writes therefore resolve in call order — which is exactly the
// "undefined unless synchronized" territory of the MPI-IO consistency
// semantics this stack implements above it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/dataview.h"
#include "common/extent.h"
#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "pfs/stripe.h"
#include "sim/engine.h"
#include "storage/device.h"

namespace e10::fault {
class FaultInjector;
}

namespace e10::pfs {

struct PfsParams {
  std::size_t data_servers = 4;
  /// Per-target device model; speed imbalance can be set via speed_factors.
  storage::DeviceParams target = storage::pfs_target_params();
  /// Per-server persistent speed factors (size data_servers; default 1.0).
  std::vector<double> speed_factors;
  /// Server CPU cost per RPC (request parsing, buffer setup).
  Time server_rpc_overhead = units::microseconds(40);
  /// Metadata operation cost (open/create/stat/close/unlink).
  Time metadata_op_cost = units::microseconds(250);
  /// Defaults for files created without explicit striping hints; the paper
  /// fixes stripe size 4 MiB and stripe count 4.
  Offset default_stripe_unit = 4 * units::MiB;
  std::size_t default_stripe_count = 4;
  /// Whether writes take per-stripe extent locks (POSIX-compliant backends
  /// like Lustre/BeeGFS). Disabling models a PVFS-like lockless backend.
  bool extent_locking = true;
  /// Cost of moving a stripe lock between clients (revoke + regrant RPC).
  /// This is the false-sharing penalty that stripe-misaligned file domains
  /// pay (paper §I point (b), refs [19][20]).
  Time lock_handoff_penalty = units::milliseconds(2);
  /// Server-side write-back buffer per data server: ordinary writes are
  /// acknowledged as soon as the media backlog is below this (the servers
  /// have 32 GB of RAM); durable writes always wait for the media.
  Offset server_writeback_bytes = Offset{1536} * units::MiB;
};

struct StripeSettings {
  std::optional<Offset> stripe_unit;
  std::optional<std::size_t> stripe_count;
};

enum class OpenMode {
  read_only,
  write_only,
  read_write,
};

struct OpenOptions {
  OpenMode mode = OpenMode::read_write;
  bool create = false;
  bool exclusive = false;   // fail if the file exists (with create)
  bool truncate = false;
  StripeSettings striping;  // applied only on create
};

/// Opaque per-client file handle.
using FileHandle = std::uint64_t;

struct FileInfo {
  Offset size = 0;
  Offset stripe_unit = 0;
  std::size_t stripe_count = 0;
};

struct PfsStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  Offset bytes_written = 0;
  Offset bytes_read = 0;
  std::uint64_t metadata_ops = 0;
  std::uint64_t lock_waits = 0;  // chunk writes that waited on a stripe lock
  Time lock_wait_time = 0;       // total virtual time spent waiting on locks
  std::uint64_t lock_handoffs = 0;  // stripe locks revoked from another client
};

class Pfs {
 public:
  /// `server_nodes` are the fabric node ids of the data servers (in order);
  /// `metadata_node` is the fabric node id of the metadata/management server.
  Pfs(sim::Engine& engine, net::Fabric& fabric,
      std::vector<std::size_t> server_nodes, std::size_t metadata_node,
      const PfsParams& params, std::uint64_t seed);

  // All calls below must run inside a simulated process; they block the
  // caller in virtual time. `client_node` is bound at open().

  Result<FileHandle> open(const std::string& path, std::size_t client_node,
                          const OpenOptions& options);
  Status close(FileHandle handle);
  /// Ordinary write: acknowledged once the data is in server memory (the
  /// write-back window), like a buffered file-system write.
  Status write(FileHandle handle, Offset offset, const DataView& data);
  /// Durable write: acknowledged only when the data is on the media. The
  /// cache sync thread uses this — completing a sync grequest *promises*
  /// the extent is persistent in the global file (paper §III-A).
  Status write_durable(FileHandle handle, Offset offset, const DataView& data);
  /// Nonblocking ordinary write: validates, applies the content, reserves
  /// the fabric/server/device timelines and returns the acknowledgement
  /// time *without* advancing the caller's clock. Stripe-lock and device
  /// reservations are made at issue time, so later operations serialize
  /// after this write exactly as if it had blocked. write() is
  /// write_async() + advance_to().
  Result<Time> write_async(FileHandle handle, Offset offset,
                           const DataView& data);
  /// Nonblocking durable write: same issue-time semantics as write_async(),
  /// but the returned completion time is when the data is on the media (not
  /// just in server memory). The cache flush scheduler drives its N
  /// concurrent flush streams over this — a sync grequest may only complete
  /// once the caller's clock has passed the returned time.
  Result<Time> write_durable_async(FileHandle handle, Offset offset,
                                   const DataView& data);
  Result<DataView> read(FileHandle handle, Offset offset, Offset length);
  Result<FileInfo> stat(FileHandle handle);
  /// Flush is a metadata round-trip in this model (servers are synchronous).
  Status sync(FileHandle handle);
  Status unlink(const std::string& path);
  bool exists(const std::string& path) const;

  const PfsParams& params() const { return params_; }
  const PfsStats& stats() const { return stats_; }
  std::size_t open_handles() const { return handles_.size(); }

  /// Attaches a metrics sink (or detaches with nullptr). Per-server
  /// request/byte counters ("pfs.server.<i>.*") and the lock-contention
  /// counters are resolved once here so the per-chunk hot path only
  /// dereferences cached pointers.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Snapshots every data server's device totals into `registry`
  /// ("pfs.server.<i>.device.*"); idempotent, meant for report time.
  void export_device_metrics(obs::MetricsRegistry& registry) const;

  /// Attaches the fault injector (or detaches with nullptr): per-op
  /// transient failures, hard outage rejections at the chunk targets, and
  /// degradation windows on the server devices. Unarmed costs one branch
  /// per operation.
  void set_fault_injector(fault::FaultInjector* fault);

  // ---- Test/diagnostic access (no timing cost) ---------------------------

  /// Content of a file for verification; nullptr if absent.
  const ByteStore* peek(const std::string& path) const;
  Result<FileInfo> stat_path(const std::string& path) const;
  const storage::Device& server_device(std::size_t i) const;

 private:
  struct Inode {
    std::uint64_t id = 0;
    ByteStore data;
    Offset size = 0;
    StripeLayout layout{1, 1};
    // Per-stripe lock state (lock unit = stripe unit): when the lock frees
    // up and which client node last held it.
    struct StripeLock {
      Time free_at = 0;
      std::size_t holder = ~std::size_t{0};
    };
    std::unordered_map<Offset, StripeLock> stripe_locks;
    std::uint32_t open_count = 0;
  };

  struct OpenFile {
    std::shared_ptr<Inode> inode;
    std::size_t client_node = 0;
    OpenMode mode = OpenMode::read_write;
  };

  Time metadata_roundtrip(std::size_t client_node, Time now);
  Status write_impl(FileHandle handle, Offset offset, const DataView& data,
                    bool durable);
  Result<Time> write_async_impl(FileHandle handle, Offset offset,
                                const DataView& data, bool durable);
  /// Fault hooks for one data operation: the per-op transient draw, then a
  /// hard-outage scan over the chunk targets (a rejection costs one control
  /// round trip to the dead server). ok when no injector is armed.
  Status check_data_faults(const OpenFile& file, const Inode& inode,
                           const Extent& extent, bool write);
  OpenFile* lookup(FileHandle handle);
  std::size_t server_node(std::size_t target) const {
    return server_nodes_[target % server_nodes_.size()];
  }

  sim::Engine& engine_;
  net::Fabric& fabric_;
  std::vector<std::size_t> server_nodes_;
  std::size_t metadata_node_;
  PfsParams params_;
  std::vector<std::unique_ptr<storage::Device>> devices_;
  std::vector<sim::ResourceTimeline> server_cpu_;
  sim::ResourceTimeline metadata_cpu_;
  std::map<std::string, std::shared_ptr<Inode>> namespace_;
  std::unordered_map<FileHandle, OpenFile> handles_;
  FileHandle next_handle_ = 1;
  std::uint64_t next_inode_ = 1;
  PfsStats stats_;

  /// Cached instrument pointers (all null when no registry is attached).
  struct ServerCounters {
    obs::Counter* requests = nullptr;
    obs::Counter* bytes = nullptr;
  };
  std::vector<ServerCounters> server_counters_;
  obs::Counter* lock_waits_ = nullptr;
  obs::Counter* lock_wait_ns_ = nullptr;
  obs::Counter* lock_handoffs_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace e10::pfs
