#include "pfs/stripe.h"

#include <stdexcept>

namespace e10::pfs {

StripeLayout::StripeLayout(Offset stripe_unit, std::size_t stripe_count,
                           std::size_t first_target)
    : stripe_unit_(stripe_unit),
      stripe_count_(stripe_count),
      first_target_(first_target) {
  if (stripe_unit <= 0) throw std::logic_error("stripe_unit must be > 0");
  if (stripe_count == 0) throw std::logic_error("stripe_count must be > 0");
}

std::size_t StripeLayout::target_of(Offset offset) const {
  const Offset idx = stripe_index_of(offset);
  return (static_cast<std::size_t>(idx) + first_target_) % stripe_count_;
}

std::vector<StripeChunk> StripeLayout::chunks(const Extent& extent) const {
  std::vector<StripeChunk> out;
  if (extent.empty()) return out;
  Offset cursor = extent.offset;
  const Offset end = extent.end();
  while (cursor < end) {
    const Offset stripe_end = stripe_start(cursor) + stripe_unit_;
    const Offset piece_end = std::min(end, stripe_end);
    StripeChunk chunk;
    chunk.target = target_of(cursor);
    chunk.stripe_index = stripe_index_of(cursor);
    chunk.extent = Extent{cursor, piece_end - cursor};
    // Round-robin layout: the target object holds every stripe_count-th
    // stripe contiguously.
    chunk.target_offset =
        (chunk.stripe_index / static_cast<Offset>(stripe_count_)) *
            stripe_unit_ +
        (cursor - stripe_start(cursor));
    out.push_back(chunk);
    cursor = piece_end;
  }
  return out;
}

}  // namespace e10::pfs
