#include "pfs/pfs.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "fault/fault_injector.h"
#include "sim/causal.h"

namespace e10::pfs {

namespace {
// Size of control messages (RPC request/acknowledgement) on the wire.
constexpr Offset kRpcMessageBytes = 256;
}  // namespace

Pfs::Pfs(sim::Engine& engine, net::Fabric& fabric,
         std::vector<std::size_t> server_nodes, std::size_t metadata_node,
         const PfsParams& params, std::uint64_t seed)
    : engine_(engine),
      fabric_(fabric),
      server_nodes_(std::move(server_nodes)),
      metadata_node_(metadata_node),
      params_(params),
      server_cpu_(params.data_servers) {
  if (server_nodes_.size() < params_.data_servers) {
    throw std::logic_error("Pfs: fewer server nodes than data servers");
  }
  devices_.reserve(params_.data_servers);
  for (std::size_t i = 0; i < params_.data_servers; ++i) {
    storage::DeviceParams dp = params_.target;
    if (i < params_.speed_factors.size()) {
      dp.speed_factor = params_.speed_factors[i];
    }
    devices_.push_back(std::make_unique<storage::Device>(
        "pfs-target-" + std::to_string(i), dp,
        Rng::derive(seed, "pfs-target-" + std::to_string(i))));
  }
}

void Pfs::set_metrics(obs::MetricsRegistry* metrics) {
  server_counters_.clear();
  if (metrics == nullptr) {
    lock_waits_ = lock_wait_ns_ = lock_handoffs_ = nullptr;
    return;
  }
  server_counters_.reserve(params_.data_servers);
  for (std::size_t i = 0; i < params_.data_servers; ++i) {
    const std::string prefix = "pfs.server." + std::to_string(i);
    server_counters_.push_back(
        ServerCounters{&metrics->counter(prefix + ".requests"),
                       &metrics->counter(prefix + ".bytes")});
  }
  lock_waits_ = &metrics->counter(obs::names::kLockWaits);
  lock_wait_ns_ = &metrics->counter(obs::names::kLockWaitNs);
  lock_handoffs_ = &metrics->counter(obs::names::kLockHandoffs);
}

void Pfs::set_fault_injector(fault::FaultInjector* fault) {
  fault_ = fault;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    devices_[i]->set_fault_context(fault, static_cast<int>(i));
  }
}

Status Pfs::check_data_faults(const OpenFile& file, const Inode& inode,
                              const Extent& extent, bool write) {
  if (Status s = fault_->check(write ? fault::FaultOp::pfs_write
                                     : fault::FaultOp::pfs_read);
      !s) {
    return s;
  }
  const Time now = engine_.now();
  for (const StripeChunk& chunk : inode.layout.chunks(extent)) {
    if (!fault_->server_down(static_cast<int>(chunk.target), now)) continue;
    // The request still travels to the dead server's node and the error
    // comes back — one control-message round trip.
    const Time request = fabric_.delivery_estimate(
        file.client_node, server_node(chunk.target), kRpcMessageBytes, now);
    const Time bounced = fabric_.delivery_estimate(
        server_node(chunk.target), file.client_node, kRpcMessageBytes,
        request);
    engine_.advance_to(bounced);
    return Status::error(Errc::unavailable,
                         "pfs: data server " + std::to_string(chunk.target) +
                             " unavailable");
  }
  return Status::ok();
}

void Pfs::export_device_metrics(obs::MetricsRegistry& registry) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    devices_[i]->snapshot_metrics(
        registry, "pfs.server." + std::to_string(i) + ".device");
  }
}

Time Pfs::metadata_roundtrip(std::size_t client_node, Time now) {
  ++stats_.metadata_ops;
  // Control messages use the unreserved delivery estimate: their bandwidth
  // is negligible and reply times may lie in the future.
  const Time request = fabric_.delivery_estimate(client_node, metadata_node_,
                                                 kRpcMessageBytes, now);
  const Time served = metadata_cpu_.reserve(request, params_.metadata_op_cost);
  return fabric_.delivery_estimate(metadata_node_, client_node,
                                   kRpcMessageBytes, served);
}

Pfs::OpenFile* Pfs::lookup(FileHandle handle) {
  const auto it = handles_.find(handle);
  return it == handles_.end() ? nullptr : &it->second;
}

Result<FileHandle> Pfs::open(const std::string& path, std::size_t client_node,
                             const OpenOptions& options) {
  if (fault_ != nullptr) {
    if (Status s = fault_->check(fault::FaultOp::pfs_metadata); !s) return s;
  }
  const Time done = metadata_roundtrip(client_node, engine_.now());
  engine_.advance_to(done);

  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    if (!options.create) {
      return Status::error(Errc::no_such_file, "pfs: " + path);
    }
    auto inode = std::make_shared<Inode>();
    inode->id = next_inode_++;
    const Offset unit =
        options.striping.stripe_unit.value_or(params_.default_stripe_unit);
    const std::size_t count = std::min(
        options.striping.stripe_count.value_or(params_.default_stripe_count),
        params_.data_servers);
    if (unit <= 0 || count == 0) {
      return Status::error(Errc::invalid_argument, "pfs: bad striping");
    }
    // Rotate the first target by inode id to spread load across servers.
    inode->layout = StripeLayout(
        unit, count, static_cast<std::size_t>(inode->id) % params_.data_servers);
    it = namespace_.emplace(path, std::move(inode)).first;
  } else {
    if (options.create && options.exclusive) {
      return Status::error(Errc::file_exists, "pfs: " + path);
    }
    if (options.truncate) {
      it->second->data.clear();
      it->second->size = 0;
    }
  }

  OpenFile open_file;
  open_file.inode = it->second;
  open_file.client_node = client_node;
  open_file.mode = options.mode;
  ++open_file.inode->open_count;
  const FileHandle handle = next_handle_++;
  handles_.emplace(handle, std::move(open_file));
  return handle;
}

Status Pfs::close(FileHandle handle) {
  OpenFile* file = lookup(handle);
  if (file == nullptr) {
    return Status::error(Errc::invalid_argument, "pfs: bad handle");
  }
  if (fault_ != nullptr) {
    if (Status s = fault_->check(fault::FaultOp::pfs_metadata); !s) return s;
  }
  const Time done = metadata_roundtrip(file->client_node, engine_.now());
  engine_.advance_to(done);
  // POSIX-style deferred removal: an unlinked-while-open inode loses its
  // namespace entry at unlink() time and its data when the last OpenFile's
  // shared_ptr drops here.
  --file->inode->open_count;
  handles_.erase(handle);
  return Status::ok();
}

Status Pfs::write(FileHandle handle, Offset offset, const DataView& data) {
  return write_impl(handle, offset, data, /*durable=*/false);
}

Status Pfs::write_durable(FileHandle handle, Offset offset,
                          const DataView& data) {
  return write_impl(handle, offset, data, /*durable=*/true);
}

Result<Time> Pfs::write_async(FileHandle handle, Offset offset,
                              const DataView& data) {
  return write_async_impl(handle, offset, data, /*durable=*/false);
}

Result<Time> Pfs::write_durable_async(FileHandle handle, Offset offset,
                                      const DataView& data) {
  return write_async_impl(handle, offset, data, /*durable=*/true);
}

Status Pfs::write_impl(FileHandle handle, Offset offset, const DataView& data,
                       bool durable) {
  const auto completion = write_async_impl(handle, offset, data, durable);
  if (!completion.is_ok()) return completion.status();
  engine_.advance_to(completion.value());
  return Status::ok();
}

Result<Time> Pfs::write_async_impl(FileHandle handle, Offset offset,
                                   const DataView& data, bool durable) {
  OpenFile* file = lookup(handle);
  if (file == nullptr) {
    return Status::error(Errc::invalid_argument, "pfs: bad handle");
  }
  if (file->mode == OpenMode::read_only) {
    return Status::error(Errc::permission_denied, "pfs: read-only handle");
  }
  if (offset < 0) {
    return Status::error(Errc::invalid_argument, "pfs: negative offset");
  }
  if (data.empty()) return engine_.now();

  Inode& inode = *file->inode;
  if (fault_ != nullptr) {
    if (Status s = check_data_faults(*file, inode, Extent{offset, data.size()},
                                     /*write=*/true);
        !s) {
      return s;
    }
  }

  ++stats_.writes;
  stats_.bytes_written += data.size();

  const Time now = engine_.now();
  Time completion = now;
  for (const StripeChunk& chunk :
       inode.layout.chunks(Extent{offset, data.size()})) {
    // Request + payload travel to the owning data server.
    const std::size_t target = chunk.target;
    if (!server_counters_.empty()) {
      server_counters_[target].requests->increment();
      server_counters_[target].bytes->add(chunk.extent.length);
    }
    const Time arrival = fabric_.transfer(file->client_node,
                                          server_node(target),
                                          kRpcMessageBytes + chunk.extent.length,
                                          now);
    // Server CPU handles the RPC...
    const Time cpu_done =
        server_cpu_[target].reserve(arrival, params_.server_rpc_overhead);
    Time io_start = cpu_done;
    Inode::StripeLock* lock = nullptr;
    // ...takes the stripe lock (lock unit = stripe, per §II-B). The lock is
    // held until the device I/O completes; handing it to a different client
    // costs a revoke/regrant round trip — the false-sharing penalty of
    // stripe-misaligned file domains.
    if (params_.extent_locking) {
      lock = &inode.stripe_locks[chunk.stripe_index];
      // The grant is a lease: a client already holding the stripe lock
      // pipelines further writes under it (the device timeline serializes
      // the media), while a different client waits for the holder's I/O
      // and pays the revoke/regrant round trip.
      const bool held = lock->holder == file->client_node;
      Time granted = held ? cpu_done : std::max(lock->free_at, cpu_done);
      if (lock->holder != ~std::size_t{0} && !held) {
        granted += params_.lock_handoff_penalty;
        ++stats_.lock_handoffs;
        if (lock_handoffs_ != nullptr) lock_handoffs_->increment();
      }
      if (granted > cpu_done) {
        ++stats_.lock_waits;
        stats_.lock_wait_time += granted - cpu_done;
        if (lock_waits_ != nullptr) {
          lock_waits_->increment();
          lock_wait_ns_->add(granted - cpu_done);
        }
        // Overlay for the critical-path analyzer: this slice of the write's
        // service latency was stripe-lock wait, not media time.
        if (sim::CausalObserver* causal = engine_.causal_observer();
            causal != nullptr && engine_.in_process()) {
          causal->interval(sim::EdgeKind::lock_wait, engine_.current(),
                           cpu_done, granted);
        }
      }
      io_start = granted;
    }
    // ...and performs the device I/O.
    const Time io_done = devices_[target]->submit(
        io_start, storage::IoKind::write, chunk.target_offset,
        chunk.extent.length);
    if (lock != nullptr) {
      // Pipelined same-holder writes can complete out of order; the lock
      // frees for other clients only after the last of them.
      lock->free_at = std::max(lock->free_at, io_done);
      lock->holder = file->client_node;
    }
    // Durable writes are acknowledged when the media has the data; ordinary
    // writes as soon as the server's write-back backlog drops below the
    // window (the data sits safely in server RAM).
    Time ack_ready = io_done;
    if (!durable) {
      const Time window = static_cast<Time>(
          static_cast<double>(params_.server_writeback_bytes) * 1e9 /
          static_cast<double>(params_.target.write_bytes_per_second));
      ack_ready = std::max(cpu_done, io_done - window);
    }
    const Time acked = fabric_.delivery_estimate(
        server_node(target), file->client_node, kRpcMessageBytes, ack_ready);
    completion = std::max(completion, acked);
  }

  inode.data.write(offset, data);
  inode.size = std::max(inode.size, offset + data.size());
  return completion;
}

Result<DataView> Pfs::read(FileHandle handle, Offset offset, Offset length) {
  OpenFile* file = lookup(handle);
  if (file == nullptr) {
    return Status::error(Errc::invalid_argument, "pfs: bad handle");
  }
  if (file->mode == OpenMode::write_only) {
    return Status::error(Errc::permission_denied, "pfs: write-only handle");
  }
  if (offset < 0 || length < 0) {
    return Status::error(Errc::invalid_argument, "pfs: negative read range");
  }
  Inode& inode = *file->inode;
  const Offset clamped = std::max<Offset>(
      0, std::min(length, inode.size - offset));
  if (clamped == 0) return DataView();

  if (fault_ != nullptr) {
    if (Status s = check_data_faults(*file, inode, Extent{offset, clamped},
                                     /*write=*/false);
        !s) {
      return s;
    }
  }

  ++stats_.reads;
  stats_.bytes_read += clamped;

  const Time now = engine_.now();
  Time completion = now;
  for (const StripeChunk& chunk :
       inode.layout.chunks(Extent{offset, clamped})) {
    const std::size_t target = chunk.target;
    if (!server_counters_.empty()) {
      server_counters_[target].requests->increment();
      server_counters_[target].bytes->add(chunk.extent.length);
    }
    const Time request = fabric_.delivery_estimate(
        file->client_node, server_node(target), kRpcMessageBytes, now);
    const Time cpu_done =
        server_cpu_[target].reserve(request, params_.server_rpc_overhead);
    const Time io_done = devices_[target]->submit(
        cpu_done, storage::IoKind::read, chunk.target_offset,
        chunk.extent.length);
    // The data return starts at io_done, typically in this client's future:
    // use the unreserved estimate (a FIFO NIC reservation at a future time
    // would stall unrelated traffic).
    const Time delivered = fabric_.delivery_estimate(
        server_node(target), file->client_node,
        kRpcMessageBytes + chunk.extent.length, io_done);
    completion = std::max(completion, delivered);
  }
  engine_.advance_to(completion);
  return inode.data.read(offset, clamped);
}

Result<FileInfo> Pfs::stat(FileHandle handle) {
  OpenFile* file = lookup(handle);
  if (file == nullptr) {
    return Status::error(Errc::invalid_argument, "pfs: bad handle");
  }
  if (fault_ != nullptr) {
    if (Status s = fault_->check(fault::FaultOp::pfs_metadata); !s) return s;
  }
  const Time done = metadata_roundtrip(file->client_node, engine_.now());
  engine_.advance_to(done);
  const Inode& inode = *file->inode;
  return FileInfo{inode.size, inode.layout.stripe_unit(),
                  inode.layout.stripe_count()};
}

Status Pfs::sync(FileHandle handle) {
  OpenFile* file = lookup(handle);
  if (file == nullptr) {
    return Status::error(Errc::invalid_argument, "pfs: bad handle");
  }
  if (fault_ != nullptr) {
    if (Status s = fault_->check(fault::FaultOp::pfs_metadata); !s) return s;
  }
  const Time done = metadata_roundtrip(file->client_node, engine_.now());
  engine_.advance_to(done);
  return Status::ok();
}

Status Pfs::unlink(const std::string& path) {
  const auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::error(Errc::no_such_file, "pfs: " + path);
  }
  // Open handles keep the inode alive through their shared_ptr; the name
  // disappears immediately either way.
  namespace_.erase(it);
  return Status::ok();
}

bool Pfs::exists(const std::string& path) const {
  return namespace_.contains(path);
}

const ByteStore* Pfs::peek(const std::string& path) const {
  const auto it = namespace_.find(path);
  return it == namespace_.end() ? nullptr : &it->second->data;
}

Result<FileInfo> Pfs::stat_path(const std::string& path) const {
  const auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::error(Errc::no_such_file, "pfs: " + path);
  }
  const Inode& inode = *it->second;
  return FileInfo{inode.size, inode.layout.stripe_unit(),
                  inode.layout.stripe_count()};
}

const storage::Device& Pfs::server_device(std::size_t i) const {
  return *devices_.at(i);
}

}  // namespace e10::pfs
