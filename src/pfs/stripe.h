// File striping: mapping byte extents of a logical file onto storage
// targets, BeeGFS/Lustre style. `striping_unit` is the chunk size (and the
// lock granularity of the file, per paper §II-B); `striping_factor` is how
// many targets the file spans.
#pragma once

#include <cstdint>
#include <vector>

#include "common/extent.h"
#include "common/units.h"

namespace e10::pfs {

struct StripeChunk {
  /// Index of the target within the file's stripe set [0, stripe_count).
  std::size_t target = 0;
  /// Global stripe index: offset / stripe_unit (the lock unit).
  Offset stripe_index = 0;
  /// The piece of the file covered by this chunk.
  Extent extent;
  /// Byte offset inside the target's backing object (for sequential-access
  /// detection on the device).
  Offset target_offset = 0;
};

class StripeLayout {
 public:
  StripeLayout(Offset stripe_unit, std::size_t stripe_count,
               std::size_t first_target = 0);

  Offset stripe_unit() const { return stripe_unit_; }
  std::size_t stripe_count() const { return stripe_count_; }
  std::size_t first_target() const { return first_target_; }

  /// Target (within the stripe set) storing the stripe containing `offset`.
  std::size_t target_of(Offset offset) const;

  /// Global stripe index containing `offset`.
  Offset stripe_index_of(Offset offset) const {
    return offset / stripe_unit_;
  }

  /// Start offset of the stripe containing `offset`.
  Offset stripe_start(Offset offset) const {
    return stripe_index_of(offset) * stripe_unit_;
  }

  /// Rounds `offset` down/up to a stripe boundary.
  Offset align_down(Offset offset) const { return stripe_start(offset); }
  Offset align_up(Offset offset) const {
    return ((offset + stripe_unit_ - 1) / stripe_unit_) * stripe_unit_;
  }

  /// Splits `extent` into per-stripe chunks in file order.
  std::vector<StripeChunk> chunks(const Extent& extent) const;

 private:
  Offset stripe_unit_;
  std::size_t stripe_count_;
  std::size_t first_target_;
};

}  // namespace e10::pfs
