// Independent strided I/O with data sieving (ADIOI_GEN_WriteStrided /
// ADIOI_GEN_ReadStrided): instead of issuing one request per tiny extent,
// nearby extents are coalesced into a single covering request — for writes a
// read-modify-write of the covering range — trading extra bytes moved for
// far fewer RPCs. The sieve buffer size follows ROMIO's ind_wr_buffer_size.
#include <algorithm>

#include "adio/adio_file.h"

namespace e10::adio {

namespace {

/// Groups sorted extents into covering ranges: extents join a group while
/// the group's span stays within `buffer_bytes`. Returns indices [begin,
/// end) per group.
std::vector<std::pair<std::size_t, std::size_t>> sieve_groups(
    const std::vector<Extent>& sorted, Offset buffer_bytes) {
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i + 1;
    while (j < sorted.size() &&
           sorted[j].end() - sorted[i].offset <= buffer_bytes) {
      ++j;
    }
    groups.emplace_back(i, j);
    i = j;
  }
  return groups;
}

}  // namespace

Status write_strided(AdioFile& fd, const std::vector<mpi::IoPiece>& pieces_in) {
  std::vector<mpi::IoPiece> pieces = pieces_in;
  std::erase_if(pieces,
                [](const mpi::IoPiece& piece) { return piece.file.empty(); });
  std::sort(pieces.begin(), pieces.end(),
            [](const mpi::IoPiece& a, const mpi::IoPiece& b) {
              return a.file.offset < b.file.offset;
            });
  if (pieces.empty()) return Status::ok();

  std::vector<Extent> extents;
  extents.reserve(pieces.size());
  for (const mpi::IoPiece& piece : pieces) extents.push_back(piece.file);

  for (const auto& [begin, end] :
       sieve_groups(extents, fd.hints.ind_wr_buffer_size)) {
    const Offset lo = pieces[begin].file.offset;
    const Offset hi = pieces[end - 1].file.end();

    // Contiguous group (no holes): plain writes, no sieving needed.
    bool holes = false;
    Offset cursor = lo;
    for (std::size_t k = begin; k < end; ++k) {
      if (pieces[k].file.offset > cursor) holes = true;
      cursor = std::max(cursor, pieces[k].file.end());
    }

    if (!holes || end - begin == 1) {
      for (std::size_t k = begin; k < end; ++k) {
        if (const Status s =
                write_contig(fd, pieces[k].file.offset, pieces[k].data);
            !s.is_ok()) {
          return s;
        }
      }
      continue;
    }

    // Data sieving: read the covering range, patch in the new pieces, write
    // it back as one request.
    auto cover = read_contig(fd, lo, hi - lo);
    if (!cover.is_ok()) return cover.status();
    ByteStore patch;
    if (!cover.value().empty()) patch.write(lo, cover.value());
    for (std::size_t k = begin; k < end; ++k) {
      patch.write(pieces[k].file.offset, pieces[k].data);
    }
    if (const Status s = write_contig(fd, lo, patch.read(lo, hi - lo));
        !s.is_ok()) {
      return s;
    }
  }
  return Status::ok();
}

Result<std::vector<DataView>> read_strided(AdioFile& fd,
                                           const std::vector<Extent>& wanted) {
  std::vector<Extent> sorted = wanted;
  std::erase_if(sorted, [](const Extent& e) { return e.empty(); });
  std::sort(sorted.begin(), sorted.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });

  ByteStore assembled;
  for (const auto& [begin, end] :
       sieve_groups(sorted, fd.hints.ind_wr_buffer_size)) {
    const Offset lo = sorted[begin].offset;
    const Offset hi = sorted[end - 1].end();
    auto cover = read_contig(fd, lo, hi - lo);
    if (!cover.is_ok()) return cover.status();
    if (!cover.value().empty()) assembled.write(lo, cover.value());
  }

  std::vector<DataView> out;
  out.reserve(wanted.size());
  for (const Extent& want : wanted) {
    out.push_back(want.empty() ? DataView()
                               : assembled.read(want.offset, want.length));
  }
  return out;
}

}  // namespace e10::adio
