// Aggregator selection and file-domain partitioning.
//
// ROMIO picks `cb_nodes` aggregator processes spread across compute nodes
// (the default cb_config_list places one per node) and splits the accessed
// file region into contiguous "file domains", one per aggregator. The
// generic (UFS) driver splits evenly; file-system-aware drivers (the
// paper's BeeGFS driver, footnote 1; Lustre's) align domain boundaries to
// stripe boundaries so aggregators never false-share a stripe lock.
#pragma once

#include <optional>
#include <vector>

#include "common/extent.h"
#include "common/units.h"
#include "mpi/comm.h"

namespace e10::adio {

/// Chooses aggregator ranks: node-major round-robin — first the lowest rank
/// of each node, then second ranks, wrapping until `cb_nodes` are chosen.
/// cb_nodes <= 0 selects the ROMIO default of one aggregator per node.
/// `per_node_cap` (cb_config_list "*:k") bounds aggregators per node.
std::vector<int> select_aggregators(const mpi::Comm& comm, int cb_nodes,
                                    int per_node_cap = 1 << 30);

/// Splits `region` into `count` contiguous file domains. With `align_unit`
/// set, domain boundaries are rounded to multiples of it (stripe-aligned
/// partitioning); trailing domains may be empty when the region is small.
std::vector<Extent> partition_file_domains(const Extent& region,
                                           std::size_t count,
                                           std::optional<Offset> align_unit);

/// Node-aware variant for the two-level exchange (docs/two_level.md):
/// `aggregator_nodes[i]` is the compute node hosting aggregator i (ascending
/// rank order, so same-node aggregators are consecutive). Domains are
/// quantized to whole `cb_buffer_size` blocks — every round window except
/// the file tail is a full collective buffer — and the blocks are dealt to
/// node groups proportionally to their aggregator count before being split
/// within the group, so each node's aggregators serve one contiguous span
/// and per-node byte shares stay balanced when nodes host unequal
/// aggregator counts. With `align_unit` set the stripe-aligned flat split
/// wins (the BeeGFS driver's no-false-sharing guarantee dominates).
/// Contiguous cover of `region`, ascending, same shape as
/// partition_file_domains.
std::vector<Extent> partition_node_aware_domains(
    const Extent& region, const std::vector<std::size_t>& aggregator_nodes,
    Offset cb_buffer_size, std::optional<Offset> align_unit);

}  // namespace e10::adio
