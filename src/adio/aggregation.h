// Aggregator selection and file-domain partitioning.
//
// ROMIO picks `cb_nodes` aggregator processes spread across compute nodes
// (the default cb_config_list places one per node) and splits the accessed
// file region into contiguous "file domains", one per aggregator. The
// generic (UFS) driver splits evenly; file-system-aware drivers (the
// paper's BeeGFS driver, footnote 1; Lustre's) align domain boundaries to
// stripe boundaries so aggregators never false-share a stripe lock.
#pragma once

#include <optional>
#include <vector>

#include "common/extent.h"
#include "common/units.h"
#include "mpi/comm.h"

namespace e10::adio {

/// Chooses aggregator ranks: node-major round-robin — first the lowest rank
/// of each node, then second ranks, wrapping until `cb_nodes` are chosen.
/// cb_nodes <= 0 selects the ROMIO default of one aggregator per node.
/// `per_node_cap` (cb_config_list "*:k") bounds aggregators per node.
std::vector<int> select_aggregators(const mpi::Comm& comm, int cb_nodes,
                                    int per_node_cap = 1 << 30);

/// Splits `region` into `count` contiguous file domains. With `align_unit`
/// set, domain boundaries are rounded to multiples of it (stripe-aligned
/// partitioning); trailing domains may be empty when the region is small.
std::vector<Extent> partition_file_domains(const Extent& region,
                                           std::size_t count,
                                           std::optional<Offset> align_unit);

}  // namespace e10::adio
