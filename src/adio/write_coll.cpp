// Extended two-phase collective write (ADIOI_GEN_WriteStridedColl +
// ADIOI_Exch_and_write + ADIOI_W_Exchange_data), the paper's Fig. 2:
//
//   1. all ranks exchange access-pattern offsets        (MPI_Allgather)
//   2. file domains are computed from the global region (RoundPlanner)
//   3. per round: dissemination of send sizes           (MPI_Alltoall)
//                 data shuffle to aggregators           (isend/irecv/waitall)
//                 aggregators write the collective buffer (WritePipeline)
//   4. error codes are exchanged                        (MPI_Allreduce)
//
// Steps 1, 3a and 4 are the global synchronisation points whose cost the
// paper's breakdown figures measure. The aggregator write in step 3 is
// double-buffered (e10_pipeline_flag, docs/pipeline.md): round r's write
// stays in flight while round r+1's dissemination and shuffle proceed, and
// the aggregator joins it before reusing the collective buffer.
#include <algorithm>
#include <limits>
#include <map>
#include <optional>

#include "adio/adio_file.h"
#include "adio/pipeline.h"
#include "common/log.h"

namespace e10::adio {

namespace {

constexpr Offset kNoOffset = std::numeric_limits<Offset>::max();

/// Collective error agreement (same rule as ROMIO's error exchange).
Status agree_status(const mpi::Comm& comm, const Status& mine) {
  const int code = static_cast<int>(mine.code());
  const int worst =
      comm.allreduce(code, [](int a, int b) { return std::max(a, b); });
  if (worst == 0) return Status::ok();
  if (code == worst) return mine;
  return Status::error(static_cast<Errc>(worst), "error on a peer rank");
}

std::vector<mpi::IoPiece> sorted_by_offset(std::vector<mpi::IoPiece> pieces) {
  std::sort(pieces.begin(), pieces.end(),
            [](const mpi::IoPiece& a, const mpi::IoPiece& b) {
              return a.file.offset < b.file.offset;
            });
  return pieces;
}

}  // namespace

Status write_strided_coll(AdioFile& fd,
                          const std::vector<mpi::IoPiece>& mine_in) {
  IoContext& ctx = *fd.ctx;
  const mpi::Comm& comm = fd.comm;
  const int p = comm.size();
  const int me = comm.rank();

  const std::vector<mpi::IoPiece> mine = sorted_by_offset(mine_in);

  // --- Step 1: access-pattern exchange ------------------------------------
  Offset my_start = kNoOffset;
  Offset my_end = kNoOffset;  // exclusive
  if (!mine.empty()) {
    my_start = mine.front().file.offset;
    my_end = mine.back().file.end();
  }
  std::vector<std::pair<Offset, Offset>> all_offsets;
  {
    PhaseScope scope(ctx, me, prof::Phase::offset_exchange);
    all_offsets = comm.allgather(std::make_pair(my_start, my_end),
                                 Offset{2} * sizeof(Offset));
  }

  // Interleave check (ROMIO: collective buffering pays off only when rank
  // regions interleave; otherwise independent writes are better).
  bool interleaved = false;
  Offset prev_end = -1;
  for (const auto& [start, end] : all_offsets) {
    if (start == kNoOffset) continue;
    if (prev_end >= 0 && start < prev_end) interleaved = true;
    prev_end = std::max(prev_end, end);
  }

  if (fd.hints.romio_cb_write == Toggle::disable ||
      (fd.hints.romio_cb_write == Toggle::automatic && !interleaved)) {
    const Status independent = write_strided(fd, mine);
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, independent);
  }

  // --- Step 2: global region, file domains, round plan ---------------------
  Offset gmin = kNoOffset;
  Offset gmax = -1;
  for (const auto& [start, end] : all_offsets) {
    if (start == kNoOffset) continue;
    gmin = std::min(gmin, start);
    gmax = std::max(gmax, end);
  }
  if (gmin == kNoOffset) {
    // Nobody has data; stay collective and agree on success.
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, Status::ok());
  }

  Offset ntimes = 0;
  std::vector<std::map<std::size_t, std::vector<mpi::IoPiece>>> plan;
  {
    PhaseScope scope(ctx, me, prof::Phase::calc);

    // The BeeGFS/Lustre driver aligns file domains to stripe boundaries so
    // aggregators never false-share a stripe lock (paper footnote 1).
    std::optional<Offset> align;
    if (fd.driver == Driver::beegfs && fd.stripe_unit > 0) {
      align = fd.stripe_unit;
    }
    RoundPlanner planner(Extent{gmin, gmax - gmin}, fd.aggregators.size(),
                         fd.hints.cb_buffer_size, align);
    ntimes = planner.rounds();

    // --- Step 3 (local part): which (aggregator, round) each of my pieces
    // feeds. Pieces are sorted, so the planner's monotonic domain cursor
    // never needs to rewind.
    plan.resize(static_cast<std::size_t>(ntimes));
    for (const mpi::IoPiece& piece : mine) {
      planner.split(piece.file, [&](Offset round, std::size_t agg_index,
                                    const Extent& sub) {
        mpi::IoPiece part;
        part.file = sub;
        part.data = piece.data.slice(sub.offset - piece.file.offset,
                                     sub.length);
        plan[static_cast<std::size_t>(round)][agg_index].push_back(
            std::move(part));
      });
    }
  }

  // --- Step 3: rounds of dissemination + shuffle + write -------------------
  Status my_status = Status::ok();
  obs::Histogram* a2a_hist = nullptr;
  if (ctx.metrics != nullptr) {
    a2a_hist = &ctx.metrics->histogram(obs::names::kAlltoallSendBytes,
                                       obs::exponential_bounds(4096, 14));
  }
  WritePipeline pipeline(fd, fd.hints.e10_pipeline);
  for (Offset round = 0; round < ntimes; ++round) {
    const Time tr0 = ctx.engine.now();
    auto& round_plan = plan[static_cast<std::size_t>(round)];

    obs::Span round_span;
    if (ctx.tracer != nullptr && ctx.tracer->enabled()) {
      round_span =
          obs::Span(ctx.tracer, ctx.tracer->rank_track(me), "write_round");
      round_span.arg("round", static_cast<std::int64_t>(round));
      round_span.arg("pipelined",
                     static_cast<std::int64_t>(pipeline.enabled() ? 1 : 0));
    }

    std::vector<Offset> send_counts(static_cast<std::size_t>(p), 0);
    Offset round_send_bytes = 0;
    for (const auto& [agg_index, pieces] : round_plan) {
      Offset bytes = 0;
      for (const mpi::IoPiece& piece : pieces) bytes += piece.file.length;
      send_counts[static_cast<std::size_t>(fd.aggregators[agg_index])] = bytes;
      round_send_bytes += bytes;
      if (a2a_hist != nullptr) a2a_hist->observe(bytes);
    }
    round_span.arg("send_bytes", static_cast<std::int64_t>(round_send_bytes));

    std::vector<Offset> recv_counts;
    {
      PhaseScope scope(ctx, me, prof::Phase::shuffle_all2all);
      recv_counts = comm.alltoall(send_counts, sizeof(Offset));
    }

    // The shuffle lands in a collective buffer; with the pipeline enabled
    // the oldest in-flight round's write must be joined before its buffer
    // is reused for this round's receives.
    pipeline.acquire_buffer();

    std::vector<mpi::Request> requests;
    std::size_t nrecv = 0;
    if (fd.is_aggregator()) {
      for (int src = 0; src < p; ++src) {
        if (recv_counts[static_cast<std::size_t>(src)] > 0) {
          requests.push_back(comm.irecv(src, static_cast<int>(round)));
          ++nrecv;
        }
      }
    }
    for (auto& [agg_index, pieces] : round_plan) {
      Offset bytes = 0;
      for (const mpi::IoPiece& piece : pieces) bytes += piece.file.length;
      requests.push_back(comm.isend(fd.aggregators[agg_index],
                                    static_cast<int>(round),
                                    std::move(pieces), bytes));
    }
    {
      PhaseScope scope(ctx, me, prof::Phase::exchange);
      scope.span().arg("requests",
                       static_cast<std::int64_t>(requests.size()));
      mpi::Request::wait_all(requests);
    }

    const Time tr1 = ctx.engine.now();
    if (fd.is_aggregator() && nrecv > 0) {
      std::vector<mpi::IoPiece> received;
      for (std::size_t i = 0; i < nrecv; ++i) {
        auto pieces = std::any_cast<std::vector<mpi::IoPiece>>(
            requests[i].packet().payload);
        received.insert(received.end(),
                        std::make_move_iterator(pieces.begin()),
                        std::make_move_iterator(pieces.end()));
      }
      received = sorted_by_offset(std::move(received));
      const Status written = pipeline.issue_round(round, received);
      if (my_status.is_ok()) my_status = written;
    }
    log::debug("adio", "write_coll round ", round,
               ": a2a+exch=", units::to_milliseconds(tr1 - tr0),
               "ms write=", units::to_milliseconds(ctx.engine.now() - tr1),
               "ms");
  }

  // Join every in-flight write before agreeing on the outcome; the drain
  // stalls (if any) are charged to the write phase by the pipeline.
  pipeline.drain();

  // --- Step 4: error-code exchange -----------------------------------------
  {
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, my_status);
  }
}

}  // namespace e10::adio
