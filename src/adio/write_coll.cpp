// Extended two-phase collective write (ADIOI_GEN_WriteStridedColl +
// ADIOI_Exch_and_write + ADIOI_W_Exchange_data), the paper's Fig. 2:
//
//   1. all ranks exchange access-pattern offsets        (MPI_Allgather)
//   2. file domains are computed from the global region
//   3. per round: dissemination of send sizes           (MPI_Alltoall)
//                 data shuffle to aggregators           (isend/irecv/waitall)
//                 aggregators write the collective buffer (ADIO_WriteContig)
//   4. error codes are exchanged                        (MPI_Allreduce)
//
// Steps 1, 3a and 4 are the global synchronisation points whose cost the
// paper's breakdown figures measure.
#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <cstdio>
#include <cstdlib>

#include "adio/adio_file.h"
#include "adio/aggregation.h"

namespace e10::adio {

namespace {

constexpr Offset kNoOffset = std::numeric_limits<Offset>::max();

/// Collective error agreement (same rule as ROMIO's error exchange).
Status agree_status(const mpi::Comm& comm, const Status& mine) {
  const int code = static_cast<int>(mine.code());
  const int worst =
      comm.allreduce(code, [](int a, int b) { return std::max(a, b); });
  if (worst == 0) return Status::ok();
  if (code == worst) return mine;
  return Status::error(static_cast<Errc>(worst), "error on a peer rank");
}

std::vector<mpi::IoPiece> sorted_by_offset(std::vector<mpi::IoPiece> pieces) {
  std::sort(pieces.begin(), pieces.end(),
            [](const mpi::IoPiece& a, const mpi::IoPiece& b) {
              return a.file.offset < b.file.offset;
            });
  return pieces;
}

/// Writes `pieces` (sorted by offset) as maximal contiguous runs, one
/// ADIO_WriteContig per run — exactly what flushing the collective buffer
/// does in ROMIO (holes split the write).
Status write_runs(AdioFile& fd, const std::vector<mpi::IoPiece>& pieces) {
  std::size_t i = 0;
  while (i < pieces.size()) {
    std::size_t j = i + 1;
    Offset run_end = pieces[i].file.end();
    while (j < pieces.size() && pieces[j].file.offset == run_end) {
      run_end = pieces[j].file.end();
      ++j;
    }
    const Extent run{pieces[i].file.offset, run_end - pieces[i].file.offset};
    const std::vector<mpi::IoPiece> run_pieces(pieces.begin() + static_cast<std::ptrdiff_t>(i),
                                               pieces.begin() + static_cast<std::ptrdiff_t>(j));
    if (const Status s = write_contig_run(fd, run, run_pieces); !s.is_ok()) {
      return s;
    }
    i = j;
  }
  return Status::ok();
}

}  // namespace

Status write_strided_coll(AdioFile& fd,
                          const std::vector<mpi::IoPiece>& mine_in) {
  IoContext& ctx = *fd.ctx;
  const mpi::Comm& comm = fd.comm;
  const int p = comm.size();
  const int me = comm.rank();

  const std::vector<mpi::IoPiece> mine = sorted_by_offset(mine_in);

  // --- Step 1: access-pattern exchange ------------------------------------
  Offset my_start = kNoOffset;
  Offset my_end = kNoOffset;  // exclusive
  if (!mine.empty()) {
    my_start = mine.front().file.offset;
    my_end = mine.back().file.end();
  }
  std::vector<std::pair<Offset, Offset>> all_offsets;
  {
    PhaseScope scope(ctx, me, prof::Phase::offset_exchange);
    all_offsets = comm.allgather(std::make_pair(my_start, my_end),
                                 Offset{2} * sizeof(Offset));
  }

  // Interleave check (ROMIO: collective buffering pays off only when rank
  // regions interleave; otherwise independent writes are better).
  bool interleaved = false;
  Offset prev_end = -1;
  for (const auto& [start, end] : all_offsets) {
    if (start == kNoOffset) continue;
    if (prev_end >= 0 && start < prev_end) interleaved = true;
    prev_end = std::max(prev_end, end);
  }

  if (fd.hints.romio_cb_write == Toggle::disable ||
      (fd.hints.romio_cb_write == Toggle::automatic && !interleaved)) {
    const Status independent = write_strided(fd, mine);
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, independent);
  }

  // --- Step 2: global region and file domains -----------------------------
  Offset gmin = kNoOffset;
  Offset gmax = -1;
  for (const auto& [start, end] : all_offsets) {
    if (start == kNoOffset) continue;
    gmin = std::min(gmin, start);
    gmax = std::max(gmax, end);
  }
  if (gmin == kNoOffset) {
    // Nobody has data; stay collective and agree on success.
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, Status::ok());
  }

  std::vector<Extent> domains;
  Offset ntimes = 0;
  const Offset cb = fd.hints.cb_buffer_size;
  std::vector<std::map<std::size_t, std::vector<mpi::IoPiece>>> plan;
  {
    PhaseScope scope(ctx, me, prof::Phase::calc);

    // The BeeGFS/Lustre driver aligns file domains to stripe boundaries so
    // aggregators never false-share a stripe lock (paper footnote 1).
    std::optional<Offset> align;
    if (fd.driver == Driver::beegfs && fd.stripe_unit > 0) {
      align = fd.stripe_unit;
    }
    domains = partition_file_domains(Extent{gmin, gmax - gmin},
                                     fd.aggregators.size(), align);
    for (const Extent& d : domains) {
      ntimes = std::max(ntimes, (d.length + cb - 1) / cb);
    }

    // --- Step 3 (local part): which (aggregator, round) each of my pieces
    // feeds. Domains are contiguous in file order.
    plan.resize(static_cast<std::size_t>(ntimes));
    std::size_t a = 0;
    for (const mpi::IoPiece& piece : mine) {
      Offset cursor = piece.file.offset;
      while (cursor < piece.file.end()) {
        while (a + 1 < domains.size() &&
               (domains[a].empty() || cursor >= domains[a].end())) {
          ++a;
        }
        const Extent& dom = domains[a];
        const Offset round = (cursor - dom.offset) / cb;
        const Offset window_end =
            std::min(dom.offset + (round + 1) * cb, dom.end());
        const Offset take = std::min(piece.file.end(), window_end) - cursor;
        mpi::IoPiece sub;
        sub.file = Extent{cursor, take};
        sub.data = piece.data.slice(cursor - piece.file.offset, take);
        plan[static_cast<std::size_t>(round)][a].push_back(std::move(sub));
        cursor += take;
      }
      // Pieces are sorted, but the next piece may start before the current
      // domain index if domains are tiny; rewind is never needed because
      // offsets are nondecreasing across sorted pieces.
    }
  }

  // --- Step 3: rounds of dissemination + shuffle + write -------------------
  Status my_status = Status::ok();
  const bool trace = std::getenv("E10_TRACE_ROUNDS") != nullptr && me == 0;
  obs::Histogram* a2a_hist = nullptr;
  if (ctx.metrics != nullptr) {
    a2a_hist = &ctx.metrics->histogram(obs::names::kAlltoallSendBytes,
                                       obs::exponential_bounds(4096, 14));
  }
  for (Offset round = 0; round < ntimes; ++round) {
    const Time tr0 = ctx.engine.now();
    auto& round_plan = plan[static_cast<std::size_t>(round)];

    obs::Span round_span;
    if (ctx.tracer != nullptr && ctx.tracer->enabled()) {
      round_span =
          obs::Span(ctx.tracer, ctx.tracer->rank_track(me), "write_round");
      round_span.arg("round", static_cast<std::int64_t>(round));
    }

    std::vector<Offset> send_counts(static_cast<std::size_t>(p), 0);
    Offset round_send_bytes = 0;
    for (const auto& [agg_index, pieces] : round_plan) {
      Offset bytes = 0;
      for (const mpi::IoPiece& piece : pieces) bytes += piece.file.length;
      send_counts[static_cast<std::size_t>(fd.aggregators[agg_index])] = bytes;
      round_send_bytes += bytes;
      if (a2a_hist != nullptr) a2a_hist->observe(bytes);
    }
    round_span.arg("send_bytes", static_cast<std::int64_t>(round_send_bytes));

    std::vector<Offset> recv_counts;
    {
      PhaseScope scope(ctx, me, prof::Phase::shuffle_all2all);
      recv_counts = comm.alltoall(send_counts, sizeof(Offset));
    }

    std::vector<mpi::Request> requests;
    std::size_t nrecv = 0;
    if (fd.is_aggregator()) {
      for (int src = 0; src < p; ++src) {
        if (recv_counts[static_cast<std::size_t>(src)] > 0) {
          requests.push_back(comm.irecv(src, static_cast<int>(round)));
          ++nrecv;
        }
      }
    }
    for (auto& [agg_index, pieces] : round_plan) {
      Offset bytes = 0;
      for (const mpi::IoPiece& piece : pieces) bytes += piece.file.length;
      requests.push_back(comm.isend(fd.aggregators[agg_index],
                                    static_cast<int>(round),
                                    std::move(pieces), bytes));
    }
    {
      PhaseScope scope(ctx, me, prof::Phase::exchange);
      scope.span().arg("requests",
                       static_cast<std::int64_t>(requests.size()));
      mpi::Request::wait_all(requests);
    }

    const Time tr1 = ctx.engine.now();
    if (fd.is_aggregator() && nrecv > 0) {
      std::vector<mpi::IoPiece> received;
      for (std::size_t i = 0; i < nrecv; ++i) {
        auto pieces = std::any_cast<std::vector<mpi::IoPiece>>(
            requests[i].packet().payload);
        received.insert(received.end(),
                        std::make_move_iterator(pieces.begin()),
                        std::make_move_iterator(pieces.end()));
      }
      received = sorted_by_offset(std::move(received));
      const Status written = write_runs(fd, received);
      if (my_status.is_ok()) my_status = written;
    }
    if (trace && round < 12) {
      std::fprintf(stderr, "round %lld: a2a+exch=%.1fms write=%.1fms\n",
                   static_cast<long long>(round),
                   units::to_milliseconds(tr1 - tr0),
                   units::to_milliseconds(ctx.engine.now() - tr1));
    }
  }

  // --- Step 4: error-code exchange -----------------------------------------
  {
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, my_status);
  }
}

}  // namespace e10::adio
