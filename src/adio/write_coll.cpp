// Extended two-phase collective write (ADIOI_GEN_WriteStridedColl +
// ADIOI_Exch_and_write + ADIOI_W_Exchange_data), the paper's Fig. 2:
//
//   1. all ranks exchange access-pattern offsets        (MPI_Allgather)
//   2. file domains are computed from the global region (RoundPlanner)
//   3. per round: dissemination of send sizes           (MPI_Alltoall)
//                 data shuffle to aggregators           (isend/irecv/waitall)
//                 aggregators write the collective buffer (WritePipeline)
//   4. error codes are exchanged                        (MPI_Allreduce)
//
// Steps 1, 3a and 4 are the global synchronisation points whose cost the
// paper's breakdown figures measure. The aggregator write in step 3 is
// double-buffered (e10_pipeline_flag, docs/pipeline.md): round r's write
// stays in flight while round r+1's dissemination and shuffle proceed, and
// the aggregator joins it before reusing the collective buffer.
//
// With e10_two_level_flag active (docs/two_level.md) step 3 runs a
// two-stage exchange instead of the flat one: each node's contributions are
// first gathered to the node leader over the cheap intra-node transport
// (shuffle_intra), and only leaders send data to the aggregators
// (shuffle_inter) — p-to-A NIC flows collapse to L-to-A. Step 3a's
// dissemination disappears entirely: senders and receivers derive which
// (leader, aggregator) pairs talk from the step-1 allgather (each node's
// extent hull vs each aggregator's round window), and the exact segment
// count rides in-band in the pair's first message (the manifest), so the
// two-level rounds have no collective synchronisation at all. The flag
// off takes the flat path below, bit for bit.
#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "adio/adio_file.h"
#include "adio/pipeline.h"
#include "adio/round_plan.h"
#include "common/log.h"

namespace e10::adio {

namespace {

constexpr Offset kNoOffset = std::numeric_limits<Offset>::max();

/// Collective error agreement (same rule as ROMIO's error exchange).
Status agree_status(const mpi::Comm& comm, const Status& mine) {
  const int code = static_cast<int>(mine.code());
  const int worst =
      comm.allreduce(code, [](int a, int b) { return std::max(a, b); });
  if (worst == 0) return Status::ok();
  if (code == worst) return mine;
  return Status::error(static_cast<Errc>(worst), "error on a peer rank");
}

std::vector<mpi::IoPiece> sorted_by_offset(std::vector<mpi::IoPiece> pieces) {
  std::sort(pieces.begin(), pieces.end(),
            [](const mpi::IoPiece& a, const mpi::IoPiece& b) {
              return a.file.offset < b.file.offset;
            });
  return pieces;
}

/// Greedy packing for the two-level data stage: distributes `pieces` over
/// exactly `segments` buckets of at most `seg_bytes` each, cutting
/// individual pieces at segment boundaries. Callers guarantee the total
/// piece length fits (segments * seg_bytes).
std::vector<std::vector<mpi::IoPiece>> pack_segments(
    std::vector<mpi::IoPiece> pieces, std::size_t segments,
    Offset seg_bytes) {
  std::vector<std::vector<mpi::IoPiece>> out(segments);
  std::size_t seg = 0;
  Offset fill = 0;
  for (mpi::IoPiece& piece : pieces) {
    while (piece.file.length > 0) {
      if (fill == seg_bytes) {
        ++seg;
        fill = 0;
      }
      const Offset take = std::min(piece.file.length, seg_bytes - fill);
      mpi::IoPiece part;
      part.file = Extent{piece.file.offset, take};
      part.data = piece.data.slice(0, take);
      out[seg].push_back(std::move(part));
      piece.file.offset += take;
      piece.file.length -= take;
      piece.data = piece.data.slice(take, piece.file.length);
      fill += take;
    }
  }
  return out;
}

}  // namespace

Status write_strided_coll(AdioFile& fd,
                          const std::vector<mpi::IoPiece>& mine_in) {
  IoContext& ctx = *fd.ctx;
  const mpi::Comm& comm = fd.comm;
  const int p = comm.size();
  const int me = comm.rank();

  const std::vector<mpi::IoPiece> mine = sorted_by_offset(mine_in);

  // --- Step 1: access-pattern exchange ------------------------------------
  Offset my_start = kNoOffset;
  Offset my_end = kNoOffset;  // exclusive
  if (!mine.empty()) {
    my_start = mine.front().file.offset;
    my_end = mine.back().file.end();
  }
  std::vector<std::pair<Offset, Offset>> all_offsets;
  {
    PhaseScope scope(ctx, me, prof::Phase::offset_exchange);
    all_offsets = comm.allgather(std::make_pair(my_start, my_end),
                                 Offset{2} * sizeof(Offset));
  }

  // Interleave check (ROMIO: collective buffering pays off only when rank
  // regions interleave; otherwise independent writes are better).
  bool interleaved = false;
  Offset prev_end = -1;
  for (const auto& [start, end] : all_offsets) {
    if (start == kNoOffset) continue;
    if (prev_end >= 0 && start < prev_end) interleaved = true;
    prev_end = std::max(prev_end, end);
  }

  if (fd.hints.romio_cb_write == Toggle::disable ||
      (fd.hints.romio_cb_write == Toggle::automatic && !interleaved)) {
    const Status independent = write_strided(fd, mine);
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, independent);
  }

  // --- Step 2: global region, file domains, round plan ---------------------
  Offset gmin = kNoOffset;
  Offset gmax = -1;
  for (const auto& [start, end] : all_offsets) {
    if (start == kNoOffset) continue;
    gmin = std::min(gmin, start);
    gmax = std::max(gmax, end);
  }
  if (gmin == kNoOffset) {
    // Nobody has data; stay collective and agree on success.
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, Status::ok());
  }

  Offset ntimes = 0;
  std::vector<Extent> domains;
  std::vector<RoundPlan<mpi::IoPiece>> plan;
  {
    PhaseScope scope(ctx, me, prof::Phase::calc);

    // The BeeGFS/Lustre driver aligns file domains to stripe boundaries so
    // aggregators never false-share a stripe lock (paper footnote 1).
    std::optional<Offset> align;
    if (fd.driver == Driver::beegfs && fd.stripe_unit > 0) {
      align = fd.stripe_unit;
    }
    std::vector<std::size_t> aggregator_nodes;
    aggregator_nodes.reserve(fd.aggregators.size());
    for (int agg : fd.aggregators) aggregator_nodes.push_back(comm.node_of(agg));
    RoundPlanner planner(Extent{gmin, gmax - gmin}, aggregator_nodes,
                         fd.hints.cb_buffer_size, align, fd.two_level);
    ntimes = planner.rounds();
    domains = planner.domains();

    // --- Step 3 (local part): which (aggregator, round) each of my pieces
    // feeds. Pieces are sorted, so the planner's monotonic domain cursor
    // never needs to rewind.
    plan.resize(static_cast<std::size_t>(ntimes));
    for (const mpi::IoPiece& piece : mine) {
      planner.split(piece.file, [&](Offset round, std::size_t agg_index,
                                    const Extent& sub) {
        mpi::IoPiece part;
        part.file = sub;
        part.data = piece.data.slice(sub.offset - piece.file.offset,
                                     sub.length);
        plan_append(plan, round, agg_index, std::move(part));
      });
    }
  }

  // --- Step 3: rounds of dissemination + shuffle + write -------------------
  Status my_status = Status::ok();
  obs::Histogram* a2a_hist = nullptr;
  obs::Counter* tl_rounds = nullptr;
  obs::Counter* tl_intra_msgs = nullptr;
  obs::Counter* tl_intra_bytes = nullptr;
  obs::Counter* tl_inter_msgs = nullptr;
  obs::Counter* tl_inter_bytes = nullptr;
  if (ctx.metrics != nullptr) {
    a2a_hist = &ctx.metrics->histogram(obs::names::kAlltoallSendBytes,
                                       obs::exponential_bounds(4096, 14));
    if (fd.two_level) {
      tl_rounds = &ctx.metrics->counter(obs::names::kTwoLevelRounds);
      tl_intra_msgs = &ctx.metrics->counter(obs::names::kTwoLevelIntraMsgs);
      tl_intra_bytes = &ctx.metrics->counter(obs::names::kTwoLevelIntraBytes);
      tl_inter_msgs = &ctx.metrics->counter(obs::names::kTwoLevelInterMsgs);
      tl_inter_bytes = &ctx.metrics->counter(obs::names::kTwoLevelInterBytes);
    }
  }

  // Two-level topology, fixed for the operation (pure computation — no
  // virtual time passes here). Leaders appear in ascending world-rank
  // order; block placement keeps each node's ranks contiguous, so the
  // single pass below sees every node's leader first.
  const int my_leader = fd.two_level ? comm.node_leader(me) : me;
  std::vector<int> leader_ranks;     // all leaders, ascending world rank
  std::size_t my_leader_index = 0;   // my leader's position in leader_ranks
  std::vector<int> my_members;       // leader only: my node's ranks (incl. me)
  std::size_t my_agg_index = 0;      // aggregator only: index in fd.aggregators
  // Per leader index: the [min start, max end) hull of that node's rank
  // extents, (kNoOffset, kNoOffset) when the node has no data. Every rank
  // computes the same hulls from the step-1 allgather, so senders and
  // receivers can derive the per-round message pattern without any further
  // dissemination: leader l sends aggregator a a (possibly empty) bucket in
  // round r exactly when l's hull intersects a's round-r window.
  std::vector<std::pair<Offset, Offset>> node_hull;
  if (fd.two_level) {
    for (int r = 0; r < p; ++r) {
      if (comm.node_leader(r) == r) {
        if (r == my_leader) my_leader_index = leader_ranks.size();
        leader_ranks.push_back(r);
        node_hull.emplace_back(kNoOffset, kNoOffset);
      }
      auto& hull = node_hull.back();
      const auto& [start, end] = all_offsets[static_cast<std::size_t>(r)];
      if (start == kNoOffset) continue;
      if (hull.first == kNoOffset) {
        hull = {start, end};
      } else {
        hull.first = std::min(hull.first, start);
        hull.second = std::max(hull.second, end);
      }
    }
    if (me == my_leader) my_members = comm.node_ranks(comm.node());
    if (fd.is_aggregator()) {
      my_agg_index = static_cast<std::size_t>(
          std::find(fd.aggregators.begin(), fd.aggregators.end(), me) -
          fd.aggregators.begin());
    }
  }
  // Round-r window of aggregator a's file domain (empty when the domain is
  // exhausted), and whether leader l's hull touches it. A leader owes each
  // overlapping window exactly one manifest message — the first (possibly
  // empty) data segment plus the count of follow-on segments, all sized
  // at most Hints::kTwoLevelSegmentBytes so every message stays under the
  // fabric's eager threshold and streams while the previous round's write
  // drains. The hull only decides *which* pairs talk; the segment count
  // rides in the manifest, so holes inside a hull (common for strided
  // patterns, whose per-rank hulls span nearly the whole file) cost one
  // near-empty message instead of a hull's worth of empty segments.
  const auto window = [&](std::size_t agg, Offset round) -> Extent {
    const Extent& dom = domains[agg];
    const Offset start = dom.offset + round * fd.hints.cb_buffer_size;
    if (dom.empty() || start >= dom.end()) return Extent{0, 0};
    return Extent{start, std::min(fd.hints.cb_buffer_size, dom.end() - start)};
  };
  const auto overlaps = [](const std::pair<Offset, Offset>& hull,
                           const Extent& w) -> bool {
    if (hull.first == kNoOffset || w.empty()) return false;
    return std::max(hull.first, w.offset) < std::min(hull.second, w.end());
  };

  WritePipeline pipeline(fd, fd.hints.e10_pipeline);
  // Round-persistent exchange buffers: the counts vectors, the request
  // list, and the aggregator's receive staging survive across rounds so
  // the steady state allocates nothing. send_counts carries only this
  // round's nonzero (aggregator, bytes) pairs, and only aggregators ask
  // the alltoall to materialize recv_counts.
  std::vector<std::pair<int, Offset>> send_counts;
  std::vector<Offset> recv_counts;
  std::vector<mpi::Request> requests;
  std::vector<mpi::IoPiece> received;
  for (Offset round = 0; round < ntimes; ++round) {
    const Time tr0 = ctx.engine.now();
    auto& round_plan = plan[static_cast<std::size_t>(round)];

    obs::Span round_span;
    if (ctx.tracer != nullptr && ctx.tracer->enabled()) {
      round_span =
          obs::Span(ctx.tracer, ctx.tracer->rank_track(me), "write_round");
      round_span.arg("round", static_cast<std::int64_t>(round));
      round_span.arg("pipelined",
                     static_cast<std::int64_t>(pipeline.enabled() ? 1 : 0));
    }

    Offset round_send_bytes = 0;
    send_counts.clear();
    for (const auto& [agg_index, pieces] : round_plan) {
      Offset bytes = 0;
      for (const mpi::IoPiece& piece : pieces) bytes += piece.file.length;
      if (!fd.two_level) {
        send_counts.emplace_back(fd.aggregators[agg_index], bytes);
      }
      round_send_bytes += bytes;
      // The per-sender histogram: flat mode observes every rank's per-
      // aggregator flow; two-level mode observes the leaders' merged flows
      // below, after the intra-node gather.
      if (a2a_hist != nullptr && !fd.two_level) a2a_hist->observe(bytes);
    }
    round_span.arg("send_bytes", static_cast<std::int64_t>(round_send_bytes));

    if (!fd.two_level) {
      // ---- Flat exchange (classic ext2ph) --------------------------------
      {
        PhaseScope scope(ctx, me, prof::Phase::shuffle_all2all);
        comm.alltoall_counts(send_counts,
                             fd.is_aggregator() ? &recv_counts : nullptr);
      }

      // The shuffle lands in a collective buffer; with the pipeline enabled
      // the oldest in-flight round's write must be joined before its buffer
      // is reused for this round's receives.
      pipeline.acquire_buffer();

      requests.clear();
      std::size_t nrecv = 0;
      if (fd.is_aggregator()) {
        for (int src = 0; src < p; ++src) {
          if (recv_counts[static_cast<std::size_t>(src)] > 0) {
            requests.push_back(comm.irecv(src, static_cast<int>(round)));
            ++nrecv;
          }
        }
      }
      for (auto& [agg_index, pieces] : round_plan) {
        Offset bytes = 0;
        for (const mpi::IoPiece& piece : pieces) bytes += piece.file.length;
        requests.push_back(comm.isend(fd.aggregators[agg_index],
                                      static_cast<int>(round),
                                      std::move(pieces), bytes));
      }
      {
        PhaseScope scope(ctx, me, prof::Phase::exchange);
        scope.span().arg("requests",
                         static_cast<std::int64_t>(requests.size()));
        mpi::Request::wait_all(requests);
      }

      const Time tr1 = ctx.engine.now();
      if (fd.is_aggregator() && nrecv > 0) {
        received.clear();
        for (std::size_t i = 0; i < nrecv; ++i) {
          auto pieces = std::any_cast<std::vector<mpi::IoPiece>>(
              requests[i].packet().payload);
          received.insert(received.end(),
                          std::make_move_iterator(pieces.begin()),
                          std::make_move_iterator(pieces.end()));
        }
        received = sorted_by_offset(std::move(received));
        const Status written = pipeline.issue_round(round, received);
        if (my_status.is_ok()) my_status = written;
      }
      log::debug("adio", "write_coll round ", round,
                 ": a2a+exch=", units::to_milliseconds(tr1 - tr0),
                 "ms write=", units::to_milliseconds(ctx.engine.now() - tr1),
                 "ms");
      continue;
    }

    // ---- Two-level exchange (docs/two_level.md) --------------------------
    // Two tags per round keep the stages' matching separate; members race
    // ahead into round r+1's gather while round r's write is in flight,
    // exactly like the flat shuffle overlaps under the pipeline.
    const int tag_gather = 2 * static_cast<int>(round);
    const int tag_data = tag_gather + 1;
    if (tl_rounds != nullptr && me == leader_ranks.front()) {
      tl_rounds->increment();
    }

    // Stage 1: gather this node's buckets to the leader (shared memory).
    // Members always send — possibly an empty bucket — so the leader's
    // per-member receive matching stays deterministic.
    RoundPlan<mpi::IoPiece> merged;
    if (me != my_leader) {
      PhaseScope scope(ctx, me, prof::Phase::shuffle_intra);
      mpi::Request req = comm.isend(my_leader, tag_gather,
                                    std::move(round_plan), round_send_bytes);
      req.wait();
      if (tl_intra_msgs != nullptr) {
        tl_intra_msgs->increment();
        tl_intra_bytes->add(round_send_bytes);
      }
    } else {
      merged = std::move(round_plan);
      std::vector<mpi::Request> gathers;
      {
        PhaseScope scope(ctx, me, prof::Phase::shuffle_intra);
        scope.span().arg("members",
                         static_cast<std::int64_t>(my_members.size()));
        for (int r : my_members) {
          if (r != me) gathers.push_back(comm.irecv(r, tag_gather));
        }
        mpi::Request::wait_all(gathers);
      }
      // Merge member buckets in ascending rank order; the leader (lowest
      // rank on the node) contributed first via the move above.
      for (mpi::Request& req : gathers) {
        auto bucket =
            std::any_cast<RoundPlan<mpi::IoPiece>>(req.packet().payload);
        plan_merge(merged, std::move(bucket));
      }
    }

    // Same buffer discipline as the flat path: join the oldest in-flight
    // round's write before posting this round's data receives.
    pipeline.acquire_buffer();

    // Stage 2: leaders send merged data to the aggregators. Which pairs
    // talk is the hull-vs-window overlap both sides computed up front — no
    // per-round count dissemination and no leader barrier. Each talking
    // pair exchanges one manifest (follow-on segment count + the first
    // segment's pieces) and that many extra segments, every message eager-
    // sized, so the aggregator learns the exact count in-band: by the time
    // a manifest is decoded its extras have already buffered at the
    // receiver and the follow-on receives complete instantly. Manifest
    // receives are posted before any send; a leader-aggregator's
    // self-destined bucket short-circuits locally with no message.
    using Manifest = std::pair<std::size_t, std::vector<mpi::IoPiece>>;
    std::vector<mpi::Request> sends;
    std::vector<mpi::Request> manifests;
    std::vector<int> manifest_src;  // leader world rank per manifest
    std::vector<mpi::IoPiece> local;
    received.clear();
    {
      PhaseScope scope(ctx, me, prof::Phase::shuffle_inter);
      if (fd.is_aggregator()) {
        const Extent my_window = window(my_agg_index, round);
        for (std::size_t l = 0; l < leader_ranks.size(); ++l) {
          if (leader_ranks[l] == me) continue;
          if (!overlaps(node_hull[l], my_window)) continue;
          manifests.push_back(comm.irecv(leader_ranks[l], tag_data));
          manifest_src.push_back(leader_ranks[l]);
        }
      }
      if (me == my_leader) {
        // merged ascends by agg_index, so one forward cursor serves the
        // ascending aggregator scan.
        auto merged_it = merged.begin();
        for (std::size_t a = 0; a < fd.aggregators.size(); ++a) {
          if (!overlaps(node_hull[my_leader_index], window(a, round))) {
            continue;
          }
          while (merged_it != merged.end() && merged_it->agg_index < a) {
            ++merged_it;
          }
          std::vector<mpi::IoPiece> pieces;
          if (merged_it != merged.end() && merged_it->agg_index == a) {
            pieces = std::move(merged_it->items);
          }
          const int agg_rank = fd.aggregators[a];
          if (agg_rank == me) {
            local = std::move(pieces);
            continue;
          }
          Offset total = 0;
          for (const mpi::IoPiece& piece : pieces) total += piece.file.length;
          const auto nsegs = static_cast<std::size_t>(std::max<Offset>(
              1, (total + Hints::kTwoLevelSegmentBytes - 1) /
                     Hints::kTwoLevelSegmentBytes));
          auto segments = pack_segments(std::move(pieces), nsegs,
                                        Hints::kTwoLevelSegmentBytes);
          const bool same_node = comm.node_of(agg_rank) == comm.node();
          for (std::size_t s = 0; s < segments.size(); ++s) {
            Offset bytes = 0;
            for (const mpi::IoPiece& piece : segments[s]) {
              bytes += piece.file.length;
            }
            if (a2a_hist != nullptr) a2a_hist->observe(bytes);
            if (tl_inter_msgs != nullptr) {
              if (same_node) {
                tl_intra_msgs->increment();
                tl_intra_bytes->add(bytes);
              } else {
                tl_inter_msgs->increment();
                tl_inter_bytes->add(bytes);
              }
            }
            // Segment 0 doubles as the manifest carrying the extra count.
            sends.push_back(
                s == 0 ? comm.isend(agg_rank, tag_data,
                                    Manifest{nsegs - 1,
                                             std::move(segments[s])},
                                    bytes)
                       : comm.isend(agg_rank, tag_data,
                                    std::move(segments[s]), bytes));
          }
        }
      }
      received = std::move(local);
      for (std::size_t i = 0; i < manifests.size(); ++i) {
        manifests[i].wait();
        auto [extra, pieces] =
            std::any_cast<Manifest>(manifests[i].packet().payload);
        received.insert(received.end(),
                        std::make_move_iterator(pieces.begin()),
                        std::make_move_iterator(pieces.end()));
        std::vector<mpi::Request> extras;
        extras.reserve(extra);
        for (std::size_t e = 0; e < extra; ++e) {
          extras.push_back(comm.irecv(manifest_src[i], tag_data));
        }
        mpi::Request::wait_all(extras);
        for (mpi::Request& req : extras) {
          auto more =
              std::any_cast<std::vector<mpi::IoPiece>>(req.packet().payload);
          received.insert(received.end(),
                          std::make_move_iterator(more.begin()),
                          std::make_move_iterator(more.end()));
        }
      }
      scope.span().arg("requests", static_cast<std::int64_t>(
                                       sends.size() + manifests.size()));
      mpi::Request::wait_all(sends);
    }

    const Time tr1 = ctx.engine.now();
    if (fd.is_aggregator() && !received.empty()) {
      received = sorted_by_offset(std::move(received));
      const Status written = pipeline.issue_round(round, received);
      if (my_status.is_ok()) my_status = written;
    }
    log::debug("adio", "write_coll two-level round ", round,
               ": a2a+exch=", units::to_milliseconds(tr1 - tr0),
               "ms write=", units::to_milliseconds(ctx.engine.now() - tr1),
               "ms");
  }

  // Join every in-flight write before agreeing on the outcome; the drain
  // stalls (if any) are charged to the write phase by the pipeline.
  pipeline.drain();

  // --- Step 4: error-code exchange -----------------------------------------
  {
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    return agree_status(comm, my_status);
  }
}

}  // namespace e10::adio
