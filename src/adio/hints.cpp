#include "adio/hints.h"

#include <charconv>
#include <limits>

namespace e10::adio {

namespace {

Result<Toggle> parse_toggle(const std::string& key, const std::string& value) {
  if (value == "enable" || value == "true") return Toggle::enable;
  if (value == "disable" || value == "false") return Toggle::disable;
  if (value == "automatic") return Toggle::automatic;
  return Status::error(Errc::invalid_argument, key + ": bad value " + value);
}

Result<Offset> parse_bytes(const std::string& key, const std::string& value) {
  Offset out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size() || out <= 0) {
    return Status::error(Errc::invalid_argument,
                         key + ": not a positive byte count: " + value);
  }
  return out;
}

Result<int> parse_int(const std::string& key, const std::string& value) {
  int out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size() || out <= 0) {
    return Status::error(Errc::invalid_argument,
                         key + ": not a positive integer: " + value);
  }
  return out;
}

}  // namespace

std::string to_string(Toggle t) {
  switch (t) {
    case Toggle::enable: return "enable";
    case Toggle::automatic: return "automatic";
    case Toggle::disable: return "disable";
  }
  return "?";
}

std::string to_string(CacheMode m) {
  switch (m) {
    case CacheMode::disable: return "disable";
    case CacheMode::enable: return "enable";
    case CacheMode::coherent: return "coherent";
  }
  return "?";
}

std::string to_string(FlushFlag f) {
  switch (f) {
    case FlushFlag::flush_immediate: return "flush_immediate";
    case FlushFlag::flush_onclose: return "flush_onclose";
    case FlushFlag::none: return "none";
  }
  return "?";
}

Result<Hints> Hints::parse(const mpi::Info& info) {
  Hints hints;
  if (const auto v = info.get("romio_cb_write")) {
    auto t = parse_toggle("romio_cb_write", *v);
    if (!t.is_ok()) return t.status();
    hints.romio_cb_write = t.value();
  }
  if (const auto v = info.get("romio_cb_read")) {
    auto t = parse_toggle("romio_cb_read", *v);
    if (!t.is_ok()) return t.status();
    hints.romio_cb_read = t.value();
  }
  if (const auto v = info.get("cb_buffer_size")) {
    auto b = parse_bytes("cb_buffer_size", *v);
    if (!b.is_ok()) return b.status();
    hints.cb_buffer_size = b.value();
  }
  if (const auto v = info.get("cb_nodes")) {
    auto n = parse_int("cb_nodes", *v);
    if (!n.is_ok()) return n.status();
    hints.cb_nodes = n.value();
  }
  if (const auto v = info.get("cb_config_list")) {
    // Common subset: "*:k" or "*:*".
    const std::string& value = *v;
    if (value.starts_with("*:")) {
      const std::string count = value.substr(2);
      if (count == "*") {
        hints.cb_config_per_node = std::numeric_limits<int>::max();
      } else {
        auto n = parse_int("cb_config_list", count);
        if (!n.is_ok()) return n.status();
        hints.cb_config_per_node = n.value();
      }
    } else {
      return Status::error(Errc::not_supported,
                           "cb_config_list: only '*:k' forms are supported");
    }
  }
  if (const auto v = info.get("striping_unit")) {
    auto b = parse_bytes("striping_unit", *v);
    if (!b.is_ok()) return b.status();
    hints.striping_unit = b.value();
  }
  if (const auto v = info.get("striping_factor")) {
    auto n = parse_int("striping_factor", *v);
    if (!n.is_ok()) return n.status();
    hints.striping_factor = n.value();
  }
  if (const auto v = info.get("e10_cache")) {
    if (*v == "enable") {
      hints.e10_cache = CacheMode::enable;
    } else if (*v == "disable") {
      hints.e10_cache = CacheMode::disable;
    } else if (*v == "coherent") {
      hints.e10_cache = CacheMode::coherent;
    } else {
      return Status::error(Errc::invalid_argument,
                           "e10_cache: bad value " + *v);
    }
  }
  if (const auto v = info.get("e10_cache_path")) {
    if (v->empty()) {
      return Status::error(Errc::invalid_argument, "e10_cache_path: empty");
    }
    hints.e10_cache_path = *v;
  }
  if (const auto v = info.get("e10_cache_flush_flag")) {
    if (*v == "flush_immediate") {
      hints.e10_cache_flush_flag = FlushFlag::flush_immediate;
    } else if (*v == "flush_onclose") {
      hints.e10_cache_flush_flag = FlushFlag::flush_onclose;
    } else if (*v == "none") {
      hints.e10_cache_flush_flag = FlushFlag::none;
    } else {
      return Status::error(Errc::invalid_argument,
                           "e10_cache_flush_flag: bad value " + *v);
    }
  }
  if (const auto v = info.get("e10_cache_discard_flag")) {
    if (*v == "enable") {
      hints.e10_cache_discard = true;
    } else if (*v == "disable") {
      hints.e10_cache_discard = false;
    } else {
      return Status::error(Errc::invalid_argument,
                           "e10_cache_discard_flag: bad value " + *v);
    }
  }
  if (const auto v = info.get("e10_cache_read")) {
    if (*v == "enable") {
      hints.e10_cache_read = true;
    } else if (*v == "disable") {
      hints.e10_cache_read = false;
    } else {
      return Status::error(Errc::invalid_argument,
                           "e10_cache_read: bad value " + *v);
    }
  }
  if (const auto v = info.get("e10_cache_journal")) {
    if (*v == "enable") {
      hints.e10_cache_journal = true;
    } else if (*v == "disable") {
      hints.e10_cache_journal = false;
    } else {
      return Status::error(Errc::invalid_argument,
                           "e10_cache_journal: bad value " + *v);
    }
  }
  if (const auto v = info.get("e10_pipeline_flag")) {
    if (*v == "enable") {
      hints.e10_pipeline = true;
    } else if (*v == "disable") {
      hints.e10_pipeline = false;
    } else {
      return Status::error(Errc::invalid_argument,
                           "e10_pipeline_flag: bad value " + *v);
    }
  }
  if (const auto v = info.get("e10_sync_streams")) {
    auto n = parse_int("e10_sync_streams", *v);
    if (!n.is_ok()) return n.status();
    hints.e10_sync_streams = n.value();
  }
  if (const auto v = info.get("e10_flush_coalesce_flag")) {
    if (*v == "enable") {
      hints.e10_flush_coalesce = true;
    } else if (*v == "disable") {
      hints.e10_flush_coalesce = false;
    } else {
      return Status::error(Errc::invalid_argument,
                           "e10_flush_coalesce_flag: bad value " + *v);
    }
  }
  if (const auto v = info.get("e10_two_level_flag")) {
    auto t = parse_toggle("e10_two_level_flag", *v);
    if (!t.is_ok()) return t.status();
    hints.e10_two_level = t.value();
  }
  if (const auto v = info.get("ind_wr_buffer_size")) {
    auto b = parse_bytes("ind_wr_buffer_size", *v);
    if (!b.is_ok()) return b.status();
    hints.ind_wr_buffer_size = b.value();
  }
  return hints;
}

mpi::Info Hints::to_info() const {
  mpi::Info info;
  info.set("romio_cb_write", to_string(romio_cb_write));
  info.set("cb_config_list",
           cb_config_per_node == std::numeric_limits<int>::max()
               ? "*:*"
               : "*:" + std::to_string(cb_config_per_node));
  info.set("romio_cb_read", to_string(romio_cb_read));
  info.set("cb_buffer_size", std::to_string(cb_buffer_size));
  if (cb_nodes > 0) info.set("cb_nodes", std::to_string(cb_nodes));
  if (striping_unit) info.set("striping_unit", std::to_string(*striping_unit));
  if (striping_factor) {
    info.set("striping_factor", std::to_string(*striping_factor));
  }
  info.set("e10_cache", to_string(e10_cache));
  info.set("e10_cache_path", e10_cache_path);
  info.set("e10_cache_flush_flag", to_string(e10_cache_flush_flag));
  info.set("e10_cache_discard_flag",
           e10_cache_discard ? "enable" : "disable");
  info.set("ind_wr_buffer_size", std::to_string(ind_wr_buffer_size));
  info.set("e10_cache_read", e10_cache_read ? "enable" : "disable");
  info.set("e10_cache_journal", e10_cache_journal ? "enable" : "disable");
  info.set("e10_pipeline_flag", e10_pipeline ? "enable" : "disable");
  info.set("e10_sync_streams", std::to_string(e10_sync_streams));
  info.set("e10_flush_coalesce_flag",
           e10_flush_coalesce ? "enable" : "disable");
  info.set("e10_two_level_flag", to_string(e10_two_level));
  return info;
}

}  // namespace e10::adio
