#include <algorithm>
#include <stdexcept>

#include "adio/adio_file.h"
#include "adio/aggregation.h"
#include "common/log.h"
#include "fault/fault_injector.h"

namespace e10::adio {

namespace {

/// Collective error agreement: everyone learns the worst error code.
Status agree(const mpi::Comm& comm, const Status& mine) {
  const int code = static_cast<int>(mine.code());
  const int worst =
      comm.allreduce(code, [](int a, int b) { return std::max(a, b); });
  if (worst == 0) return Status::ok();
  if (static_cast<int>(mine.code()) == worst) return mine;
  return Status::error(static_cast<Errc>(worst), "error on a peer rank");
}

std::string cache_file_name(const Hints& hints, const std::string& path,
                            int rank) {
  std::string base = path;
  std::replace(base.begin(), base.end(), '/', '_');
  return hints.e10_cache_path + "/" + base + ".cache." + std::to_string(rank);
}

}  // namespace

bool AdioFile::is_aggregator() const { return aggregator_index() >= 0; }

int AdioFile::aggregator_index() const {
  const auto it =
      std::find(aggregators.begin(), aggregators.end(), comm.rank());
  if (it == aggregators.end()) return -1;
  return static_cast<int>(it - aggregators.begin());
}

std::pair<Driver, std::string> parse_driver_path(const std::string& path) {
  if (path.starts_with("ufs:")) return {Driver::ufs, path.substr(4)};
  if (path.starts_with("beegfs:")) return {Driver::beegfs, path.substr(7)};
  return {Driver::ufs, path};
}

Result<std::unique_ptr<AdioFile>> open_coll(IoContext& ctx, mpi::Comm comm,
                                            const std::string& path, int mode,
                                            const mpi::Info& info) {
  PhaseScope phase(ctx, comm.rank(), prof::Phase::open);
  auto fd = std::make_unique<AdioFile>();
  fd->ctx = &ctx;
  fd->comm = comm;
  fd->mode = mode;
  const auto [driver, bare] = parse_driver_path(path);
  fd->driver = driver;
  fd->path = bare;

  Status my_status = Status::ok();
  const auto hints = Hints::parse(info);
  if (!hints.is_ok()) {
    my_status = hints.status();
  } else {
    fd->hints = hints.value();
  }

  // Access-mode validation (MPI-2 rules, the subset that matters here).
  const int rw = mode & (amode::rdonly | amode::wronly | amode::rdwr);
  if (my_status.is_ok() &&
      (rw != amode::rdonly && rw != amode::wronly && rw != amode::rdwr)) {
    my_status = Status::error(Errc::invalid_argument,
                              "open: exactly one of rdonly/wronly/rdwr");
  }
  if (my_status.is_ok() && (mode & amode::rdonly) != 0 &&
      (mode & (amode::create | amode::excl)) != 0) {
    my_status = Status::error(Errc::invalid_argument,
                              "open: rdonly with create/excl");
  }

  // Open the global file. Rank 0 performs the create (and the EXCL check);
  // the others open the existing file after the broadcast — this is how
  // ROMIO keeps EXCL semantics collective.
  pfs::OpenOptions opts;
  opts.mode = (mode & amode::rdonly) != 0   ? pfs::OpenMode::read_only
              : (mode & amode::wronly) != 0 ? pfs::OpenMode::write_only
                                            : pfs::OpenMode::read_write;
  if (my_status.is_ok()) {
    opts.striping.stripe_unit = fd->hints.striping_unit;
    if (fd->hints.striping_factor) {
      opts.striping.stripe_count =
          static_cast<std::size_t>(*fd->hints.striping_factor);
    }
  }

  if (comm.rank() == 0 && my_status.is_ok()) {
    pfs::OpenOptions root = opts;
    root.create = (mode & amode::create) != 0;
    root.exclusive = (mode & amode::excl) != 0;
    const auto handle = ctx.pfs.open(fd->path, comm.node(), root);
    if (handle.is_ok()) {
      fd->handle = handle.value();
    } else {
      my_status = handle.status();
    }
  }
  const int root_err = comm.bcast(static_cast<int>(my_status.code()), 0);
  if (comm.rank() != 0) {
    if (root_err != 0) {
      my_status = Status::error(static_cast<Errc>(root_err),
                                "open failed on rank 0");
    } else if (my_status.is_ok()) {
      const auto handle = ctx.pfs.open(fd->path, comm.node(), opts);
      if (handle.is_ok()) {
        fd->handle = handle.value();
      } else {
        my_status = handle.status();
      }
    }
  }

  const Status agreed = agree(comm, my_status);
  if (!agreed.is_ok()) {
    if (fd->handle != 0) (void)ctx.pfs.close(fd->handle);
    return agreed;
  }

  const auto info_stat = ctx.pfs.stat(fd->handle);
  fd->stripe_unit = info_stat.is_ok() ? info_stat.value().stripe_unit : 0;

  fd->aggregators = select_aggregators(comm, fd->hints.cb_nodes,
                                       fd->hints.cb_config_per_node);

  // Two-level exchange resolution (docs/two_level.md): the hint decides,
  // with "automatic" keyed to the topology; the intra-node gather stage only
  // exists when some node hosts more than one rank.
  const std::size_t rpn = comm.max_ranks_per_node();
  const bool want_two_level =
      fd->hints.e10_two_level == Toggle::enable ||
      (fd->hints.e10_two_level == Toggle::automatic &&
       rpn >= Hints::kTwoLevelAutoRanksPerNode);
  fd->two_level = want_two_level && rpn > 1 && comm.size() > 1;

  // E10 cache layer (ADIOI_GEN_OpenColl extension): open the cache file on
  // this rank's node-local file system; revert to standard open on failure.
  if (fd->hints.e10_cache != CacheMode::disable &&
      (mode & amode::rdonly) == 0) {
    cache::CacheFileParams params;
    params.global_path = fd->path;
    params.cache_path = cache_file_name(fd->hints, fd->path, comm.rank());
    params.rank = comm.rank();
    params.metrics = ctx.metrics;
    params.tracer = ctx.tracer;
    params.coherent = fd->hints.e10_cache == CacheMode::coherent;
    params.discard = fd->hints.e10_cache_discard;
    params.staging_bytes = fd->hints.ind_wr_buffer_size;
    params.sync_streams = fd->hints.e10_sync_streams;
    params.flush_coalesce = fd->hints.e10_flush_coalesce;
    // Stripe-align flush dispatches to the global file's layout so no
    // flush write crosses a data server.
    params.stripe_unit = fd->stripe_unit;
    // Fault tolerance: the scenario injector supplies the crash schedule;
    // journaling is on when asked for by hint, or automatically whenever
    // the armed plan contains rank crashes (a crash without a journal
    // cannot be replayed).
    params.fault = ctx.fault;
    params.journal =
        fd->hints.e10_cache_journal ||
        (ctx.fault != nullptr && ctx.fault->armed() &&
         ctx.fault->plan().has_crashes());
    switch (fd->hints.e10_cache_flush_flag) {
      case FlushFlag::flush_immediate:
        params.flush = cache::FlushPolicy::immediate;
        break;
      case FlushFlag::flush_onclose:
        params.flush = cache::FlushPolicy::onclose;
        break;
      case FlushFlag::none:
        params.flush = cache::FlushPolicy::none;
        break;
    }
    auto cache_file =
        cache::CacheFile::open(ctx.engine, ctx.lfs.at(comm.node()), ctx.pfs,
                               fd->handle, params, &ctx.locks);
    if (cache_file.is_ok()) {
      fd->cache = std::move(cache_file).value();
    } else {
      log::warn("adio", "cache open failed, reverting to standard open: ",
                cache_file.status().to_string());
    }
  }

  comm.barrier();
  return fd;
}

Status close(AdioFile& fd) {
  PhaseScope phase(*fd.ctx, fd.rank(), prof::Phase::close);
  Status my_status = Status::ok();

  if (fd.cache != nullptr) {
    // ADIO_Close invokes ADIOI_GEN_Flush so all cached data reaches the
    // global file before the close returns (§III-A). The wait time here is
    // the "not hidden" portion of the synchronisation cost.
    {
      PhaseScope wait(*fd.ctx, fd.rank(), prof::Phase::flush_wait);
      my_status = fd.cache->flush();
    }
    const Status closed = fd.cache->close();
    if (my_status.is_ok()) my_status = closed;
    fd.cache.reset();
  }

  const Status pfs_closed = fd.ctx->pfs.close(fd.handle);
  if (my_status.is_ok()) my_status = pfs_closed;
  fd.handle = 0;

  Status agreed = agree(fd.comm, my_status);

  if ((fd.mode & amode::delete_on_close) != 0) {
    fd.comm.barrier();
    if (fd.comm.rank() == 0) {
      const Status unlinked = fd.ctx->pfs.unlink(fd.path);
      if (agreed.is_ok()) agreed = unlinked;
    }
  }
  fd.comm.barrier();
  return agreed;
}

Status flush(AdioFile& fd) {
  Status my_status = Status::ok();
  if (fd.cache != nullptr) {
    PhaseScope wait(*fd.ctx, fd.rank(), prof::Phase::flush_wait);
    my_status = fd.cache->flush();
  } else {
    my_status = fd.ctx->pfs.sync(fd.handle);
  }
  const Status agreed = agree(fd.comm, my_status);
  fd.comm.barrier();
  return agreed;
}

Status set_view(AdioFile& fd, Offset disp,
                std::optional<mpi::FlatType> type) {
  if (disp < 0) {
    return Status::error(Errc::invalid_argument, "set_view: negative disp");
  }
  fd.disp = disp;
  fd.filetype = std::move(type);
  fd.fp_ind = 0;
  fd.comm.barrier();  // collective
  return Status::ok();
}

}  // namespace e10::adio
