#include "adio/pipeline.h"

#include <exception>

#include "adio/aggregation.h"
#include "sim/causal.h"

namespace e10::adio {

RoundPlanner::RoundPlanner(const Extent& region, std::size_t aggregator_count,
                           Offset cb_buffer_size, std::optional<Offset> align)
    : cb_(cb_buffer_size) {
  if (region.length <= 0 || aggregator_count == 0 || cb_ <= 0) return;
  domains_ = partition_file_domains(region, aggregator_count, align);
  for (const Extent& d : domains_) {
    rounds_ = std::max(rounds_, (d.length + cb_ - 1) / cb_);
  }
}

RoundPlanner::RoundPlanner(const Extent& region,
                           const std::vector<std::size_t>& aggregator_nodes,
                           Offset cb_buffer_size, std::optional<Offset> align,
                           bool two_level)
    : cb_(cb_buffer_size) {
  if (region.length <= 0 || aggregator_nodes.empty() || cb_ <= 0) return;
  // Node-aware planning only changes anything when some node hosts more
  // than one aggregator (select_aggregators returns ascending ranks under
  // block placement, so same-node entries are adjacent). One aggregator per
  // node — every ranks_per_node == 1 layout — or the flag off must
  // reproduce the flat plan byte-for-byte.
  const bool grouped =
      std::adjacent_find(aggregator_nodes.begin(), aggregator_nodes.end()) !=
      aggregator_nodes.end();
  domains_ =
      two_level && grouped
          ? partition_node_aware_domains(region, aggregator_nodes, cb_, align)
          : partition_file_domains(region, aggregator_nodes.size(), align);
  for (const Extent& d : domains_) {
    rounds_ = std::max(rounds_, (d.length + cb_ - 1) / cb_);
  }
}

WritePipeline::WritePipeline(AdioFile& fd, bool enabled)
    : fd_(fd),
      enabled_(enabled),
      state_var_(fd.ctx->engine, "adio.pipeline:" + fd.path + ":r" +
                                     std::to_string(fd.rank())) {
  if (obs::MetricsRegistry* metrics = fd.ctx->metrics) {
    // Instrument resolution mutates the shared registry from every rank's
    // collective call; claim the registry monitor for the checker.
    const sim::MonitorGuard monitor(fd.ctx->engine, metrics,
                                    obs::names::kMetricsMonitor);
    sim::shared_access(fd.ctx->engine, metrics,
                       obs::names::kMetricsRegistryVar,
                       /*is_write=*/true, E10_SITE);
    writes_counter_ = &metrics->counter(obs::names::kPipelineWrites);
    stalls_counter_ = &metrics->counter(obs::names::kPipelineStalls);
    stall_ns_counter_ = &metrics->counter(obs::names::kPipelineStallNs);
    write_ns_counter_ = &metrics->counter(obs::names::kPipelineWriteNs);
    hidden_ns_counter_ = &metrics->counter(obs::names::kPipelineHiddenNs);
  }
}

// e10-lint-allow(unwind-blocking): drain() is gated on uncaught_exceptions
WritePipeline::~WritePipeline() {
  // Draining blocks, and a blocking call must not run while the fiber is
  // unwinding: a crash/cancellation would re-throw ProcessCancelled inside
  // this (noexcept) destructor and terminate the program. When an exception
  // is in flight the collective is being abandoned anyway — the in-flight
  // rounds' requests are dropped, not joined.
  if (std::uncaught_exceptions() == 0) drain();
}

void WritePipeline::acquire_buffer() {
  if (!enabled_ || in_flight_.empty()) return;
  E10_SHARED_READ(state_var_);
  while (in_flight_.size() >= kBuffers) join_oldest();
}

Status WritePipeline::issue_round(Offset round,
                                  const std::vector<mpi::IoPiece>& pieces) {
  if (pieces.empty()) return Status::ok();
  E10_SHARED_WRITE(state_var_);
  InFlightRound entry;
  entry.round = round;
  Status status = Status::ok();

  // Issue the round's content as maximal contiguous runs — holes split the
  // write, exactly what flushing the collective buffer does in ROMIO.
  std::size_t i = 0;
  while (i < pieces.size()) {
    std::size_t j = i + 1;
    Offset run_end = pieces[i].file.end();
    while (j < pieces.size() && pieces[j].file.offset == run_end) {
      run_end = pieces[j].file.end();
      ++j;
    }
    std::vector<DataView> parts;
    parts.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) parts.push_back(pieces[k].data);
    WriteHandle handle =
        iwrite_contig(fd_, pieces[i].file.offset, DataView::concat(parts));
    if (!handle.status.is_ok() && status.is_ok()) status = handle.status;
    if (writes_counter_ != nullptr) writes_counter_->increment();
    entry.handles.push_back(std::move(handle));
    i = j;
  }

  in_flight_.push_back(std::move(entry));
  if (!enabled_) {
    // Synchronous ext2ph: the round's write is joined before the next
    // round's dissemination starts.
    while (!in_flight_.empty()) join_oldest();
  }
  return status;
}

void WritePipeline::drain() {
  if (in_flight_.empty()) return;
  E10_SHARED_WRITE(state_var_);
  while (!in_flight_.empty()) join_oldest();
}

void WritePipeline::join_oldest() {
  InFlightRound entry = std::move(in_flight_.front());
  in_flight_.pop_front();
  // The stall (if any) is write time the pipeline failed to hide; it lands
  // in the same profiler phase the blocking write path charged.
  PhaseScope scope(*fd_.ctx, fd_.rank(), prof::Phase::write_contig);
  scope.span().arg("round", static_cast<std::int64_t>(entry.round));
  for (WriteHandle& handle : entry.handles) {
    const Time join_at = fd_.ctx->engine.now();
    if (handle.request.valid()) handle.request.wait();
    const sim::JoinOutcome outcome =
        overlap_.on_join(handle.issued, handle.done, join_at);
    // A stalled join means this rank was gated on the write's service time:
    // record the async interval for critical-path attribution.
    if (sim::CausalObserver* causal = fd_.ctx->engine.causal_observer();
        causal != nullptr && outcome.stall > 0) {
      causal->bridge(sim::EdgeKind::write_join, fd_.ctx->engine.current(),
                     handle.issued, handle.done);
    }
    if (write_ns_counter_ != nullptr) {
      write_ns_counter_->add(handle.done - handle.issued);
      hidden_ns_counter_->add(outcome.hidden);
      stall_ns_counter_->add(outcome.stall);
      if (outcome.stall > 0) stalls_counter_->increment();
    }
  }
  // The joined writes' completion synchronised with this rank: ownership of
  // the buffer (and the handle bookkeeping) is exclusively ours again.
  state_var_.handoff();
}

}  // namespace e10::adio
