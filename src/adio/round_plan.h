// Flat per-round exchange plans for the two-phase collective paths.
//
// The seed kept each round's outgoing work in a
// std::map<std::size_t /*agg*/, std::vector<T>> — one red-black tree per
// (rank, round), allocated, filled, iterated once and thrown away. The
// RoundPlanner's split() callback emits in file order, which is ascending
// (aggregator, round-within-aggregator): for any fixed round the buckets
// arrive in ascending aggregator order, already grouped. A plan is
// therefore a plain vector of buckets sorted by agg_index, built by
// appending — iteration order is identical to the map's (ascending
// agg_index), so message ordering and virtual time are unchanged, and the
// deterministic-iteration lint rule stays satisfied.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

#include "common/units.h"

namespace e10::adio {

/// One round's items destined for a single aggregator.
template <typename T>
struct AggBucket {
  std::size_t agg_index = 0;
  std::vector<T> items;
};

/// A round's buckets, ascending by agg_index (the map's iteration order).
template <typename T>
using RoundPlan = std::vector<AggBucket<T>>;

/// Appends an item to plan[round]'s bucket for agg_index, creating the
/// bucket if needed. Correct only for the RoundPlanner emission order
/// (ascending agg_index per round), which makes every bucket's items a
/// single append streak.
template <typename T>
void plan_append(std::vector<RoundPlan<T>>& plan, Offset round,
                 std::size_t agg_index, T item) {
  RoundPlan<T>& rp = plan[static_cast<std::size_t>(round)];
  if (rp.empty() || rp.back().agg_index != agg_index) {
    rp.push_back(AggBucket<T>{agg_index, {}});
  }
  rp.back().items.push_back(std::move(item));
}

/// Merges src's buckets into dst (both ascending by agg_index), appending
/// src's items after dst's per bucket — the same result order as the old
/// map-based merge, where each contributor's pieces landed behind the
/// previous contributor's.
template <typename T>
void plan_merge(RoundPlan<T>& dst, RoundPlan<T>&& src) {
  for (AggBucket<T>& bucket : src) {
    const auto it = std::lower_bound(
        dst.begin(), dst.end(), bucket.agg_index,
        [](const AggBucket<T>& b, std::size_t agg) {
          return b.agg_index < agg;
        });
    if (it != dst.end() && it->agg_index == bucket.agg_index) {
      it->items.insert(it->items.end(),
                       std::make_move_iterator(bucket.items.begin()),
                       std::make_move_iterator(bucket.items.end()));
    } else {
      dst.insert(it, std::move(bucket));
    }
  }
}

}  // namespace e10::adio
