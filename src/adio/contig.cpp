#include "adio/adio_file.h"
#include "common/log.h"

namespace e10::adio {

Status write_contig(AdioFile& fd, Offset offset, const DataView& data) {
  if (offset < 0) {
    return Status::error(Errc::invalid_argument, "write_contig: offset < 0");
  }
  if (data.empty()) return Status::ok();

  PhaseScope scope(*fd.ctx, fd.rank(), prof::Phase::write_contig);
  scope.span().arg("bytes", static_cast<std::int64_t>(data.size()));

  if (fd.cache != nullptr) {
    const Status cached =
        fd.cache->write(Extent{offset, data.size()}, data);
    if (cached.is_ok()) return Status::ok();
    // Cache cannot take the data (e.g. the scratch partition filled up):
    // fall back to a direct global-file write so no data is lost.
    log::warn("adio", "cache write failed (", cached.to_string(),
              "), writing through to the global file");
    if (fd.ctx->metrics != nullptr) {
      fd.ctx->metrics->counter(obs::names::kCacheFallbackWrites).increment();
    }
  }
  return fd.ctx->pfs.write(fd.handle, offset, data);
}

WriteHandle iwrite_contig(AdioFile& fd, Offset offset, const DataView& data) {
  WriteHandle handle;
  handle.issued = fd.ctx->engine.now();
  handle.done = handle.issued;
  handle.bytes = data.size();
  if (offset < 0) {
    handle.status =
        Status::error(Errc::invalid_argument, "iwrite_contig: offset < 0");
    return handle;
  }
  if (data.empty()) return handle;

  std::optional<Time> done;
  if (fd.cache != nullptr) {
    const auto cached = fd.cache->iwrite(Extent{offset, data.size()}, data);
    if (cached.is_ok()) {
      done = cached.value();
    } else {
      // Cache cannot take the data: write through to the global file so no
      // data is lost, same as the blocking path.
      log::warn("adio", "cache write failed (", cached.status().to_string(),
                "), writing through to the global file");
      if (fd.ctx->metrics != nullptr) {
        fd.ctx->metrics->counter(obs::names::kCacheFallbackWrites).increment();
      }
    }
  }
  if (!done) {
    const auto direct = fd.ctx->pfs.write_async(fd.handle, offset, data);
    if (!direct.is_ok()) {
      handle.status = direct.status();
      return handle;
    }
    done = direct.value();
  }
  handle.done = *done;
  handle.request = mpi::Request::grequest(fd.ctx->engine);
  handle.request.complete_at(handle.done);
  return handle;
}

Result<DataView> read_contig(AdioFile& fd, Offset offset, Offset length) {
  if (offset < 0 || length < 0) {
    return Status::error(Errc::invalid_argument, "read_contig: bad range");
  }
  if (length == 0) return DataView();

  PhaseScope scope(*fd.ctx, fd.rank(), prof::Phase::read_contig);
  scope.span().arg("bytes", static_cast<std::int64_t>(length));

  // EXTENSION (paper §VI future work, off by default): serve the read from
  // the local cache when the whole extent is cached here. The layout map in
  // CacheFile provides the metadata §III-B says generic cache reads need.
  if (fd.cache != nullptr && fd.hints.e10_cache_read) {
    if (auto hit = fd.cache->try_read(Extent{offset, length})) {
      if (fd.ctx->metrics != nullptr) {
        fd.ctx->metrics->counter(obs::names::kCacheReadHitBytes).add(length);
      }
      return std::move(*hit);
    }
    if (fd.ctx->metrics != nullptr) {
      fd.ctx->metrics->counter(obs::names::kCacheReadMisses).increment();
    }
  }

  // Otherwise reads are served by the global file; the cache is write-only
  // (§III-B). Coherent mode blocks while any overlapping extent is still in
  // transit from a cache to the global file.
  if (fd.hints.e10_cache == CacheMode::coherent) {
    fd.ctx->locks.wait_unlocked(fd.path, Extent{offset, length});
  }
  return fd.ctx->pfs.read(fd.handle, offset, length);
}

}  // namespace e10::adio
