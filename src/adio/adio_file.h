// ADIO file object and the driver-level operations on it, mirroring the
// ROMIO routines the paper modifies (Fig. 2 and §III-A):
//
//   open_coll          <-> ADIOI_GEN_OpenColl   (opens the cache file too)
//   write_contig       <-> ADIOI_GEN_WriteContig (writes to cache_fd when
//                                                 e10_cache is enabled)
//   write_strided_coll <-> ADIOI_GEN_WriteStridedColl + ADIOI_Exch_and_write
//   read_strided_coll  <-> ADIOI_GEN_ReadStridedColl
//   write_strided      <-> ADIOI_GEN_WriteStrided (data sieving)
//   flush              <-> ADIOI_GEN_Flush (waits on sync grequests)
//   close              <-> ADIO_Close (flush, close cache + global file)
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adio/hints.h"
#include "adio/io_context.h"
#include "cache/cache_file.h"
#include "common/dataview.h"
#include "common/status.h"
#include "mpi/comm.h"
#include "mpi/datatype.h"

namespace e10::adio {

/// Access mode flags (MPI_MODE_*).
namespace amode {
inline constexpr int rdonly = 0x01;
inline constexpr int wronly = 0x02;
inline constexpr int rdwr = 0x04;
inline constexpr int create = 0x08;
inline constexpr int excl = 0x10;
inline constexpr int delete_on_close = 0x20;
}  // namespace amode

/// ADIO driver, selected from the path prefix ("ufs:", "beegfs:"; no prefix
/// defaults to ufs). The beegfs driver aligns collective file domains to
/// stripe boundaries (paper §I footnote 1).
enum class Driver { ufs, beegfs };

struct AdioFile {
  IoContext* ctx = nullptr;
  mpi::Comm comm;
  std::string path;  // global path, driver prefix stripped
  Driver driver = Driver::ufs;
  int mode = 0;
  Hints hints;
  pfs::FileHandle handle = 0;

  // File view state (MPI_File_set_view; etype is always bytes here).
  Offset disp = 0;
  std::optional<mpi::FlatType> filetype;  // nullopt => contiguous bytes
  Offset fp_ind = 0;  // individual file pointer, in view-stream bytes

  bool atomic_mode = false;  // MPI_File_set_atomicity

  // E10 cache layer; null when disabled or when the cache open failed
  // (standard-open fallback per §III-A).
  std::unique_ptr<cache::CacheFile> cache;

  // Aggregators for this file, fixed at open (ROMIO computes them from
  // cb_nodes / cb_config_list at open time).
  std::vector<int> aggregators;

  // Two-level collective-write exchange (docs/two_level.md), resolved once
  // at open from e10_two_level_flag and the communicator topology: active
  // only when some node hosts more than one rank.
  bool two_level = false;

  Offset stripe_unit = 0;  // resolved at open from the PFS file

  bool is_aggregator() const;
  /// Index within aggregators[] or -1.
  int aggregator_index() const;

  int rank() const { return comm.rank(); }
};

/// Collective open (all ranks of `comm` call it). Parses hints, opens the
/// global file, selects aggregators, and — when e10_cache is enabled —
/// opens the per-rank cache file on the node-local file system, reverting
/// to standard open if that fails.
Result<std::unique_ptr<AdioFile>> open_coll(IoContext& ctx, mpi::Comm comm,
                                            const std::string& path, int mode,
                                            const mpi::Info& info);

/// Collective close: flush (per the cache flush policy), stop the sync
/// thread, close cache + global files, exchange error codes.
Status close(AdioFile& fd);

/// MPI_File_sync: collective flush of cached data to the global file.
Status flush(AdioFile& fd);

/// MPI_File_set_view (collective). Resets the individual file pointer.
Status set_view(AdioFile& fd, Offset disp, std::optional<mpi::FlatType> type);

/// Contiguous write at an absolute file offset. Routes to the cache file
/// when the cache layer is active, creating the background sync request;
/// falls back to a direct PFS write when the cache cannot take the data.
Status write_contig(AdioFile& fd, Offset offset, const DataView& data);

/// Contiguous read at an absolute offset. Reads are served by the global
/// file (reads from cache are unsupported, §III-B); in coherent mode the
/// call blocks while any overlapping extent is in transit.
Result<DataView> read_contig(AdioFile& fd, Offset offset, Offset length);

/// Handle for a nonblocking contiguous write (iwrite_contig). The status is
/// fully determined at issue time in this model — the cache/PFS layers
/// validate and reserve their resource timelines synchronously and return
/// the completion time — so `request` only carries *when* the write
/// finishes. Waiting on it advances the caller's clock to `done`; an
/// invalid request means the write completed (or failed) synchronously.
struct [[nodiscard]] WriteHandle {
  Status status = Status::ok();
  mpi::Request request;
  Time issued = 0;
  Time done = 0;
  Offset bytes = 0;
};

/// Nonblocking contiguous write at an absolute file offset: same routing as
/// write_contig (cache first, PFS write-through fallback), but the caller's
/// clock does not advance to the device completion — join through the
/// returned handle before reusing the source buffer. The written content is
/// applied at issue time (single-active-process invariant), so issue order
/// defines content order exactly as for blocking writes.
WriteHandle iwrite_contig(AdioFile& fd, Offset offset, const DataView& data);

/// Collective write of this rank's flattened access list (extended
/// two-phase). Empty lists are fine — the rank still participates in the
/// synchronisation steps.
Status write_strided_coll(AdioFile& fd, const std::vector<mpi::IoPiece>& mine);

/// Collective read: returns one DataView per requested extent.
Result<std::vector<DataView>> read_strided_coll(
    AdioFile& fd, const std::vector<Extent>& wanted);

/// Independent strided write with data sieving: extents whose gaps are
/// smaller than the sieve buffer are coalesced into one
/// read-modify-write.
Status write_strided(AdioFile& fd, const std::vector<mpi::IoPiece>& pieces);

/// Independent strided read.
Result<std::vector<DataView>> read_strided(AdioFile& fd,
                                           const std::vector<Extent>& wanted);

/// Splits "driver:path" into (driver, bare path).
std::pair<Driver, std::string> parse_driver_path(const std::string& path);

}  // namespace e10::adio
