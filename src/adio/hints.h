// MPI-IO hint parsing and validation.
//
// Covers the standard ROMIO collective-I/O hints (paper Table I), the file
// striping hints, and the proposed E10 cache hint extensions (paper
// Table II) that this library reproduces.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "mpi/info.h"

namespace e10::adio {

/// ROMIO tri-state for romio_cb_write / romio_cb_read.
enum class Toggle { enable, automatic, disable };

/// e10_cache (Table II): disable, enable, or enable with coherency locks.
enum class CacheMode { disable, enable, coherent };

/// e10_cache_flush_flag (Table II). `none` is a harness extension used to
/// measure the paper's "TBW Cache Enable" series (write to cache, never
/// flush); it is not part of the paper's hint table.
enum class FlushFlag { flush_immediate, flush_onclose, none };

struct Hints {
  // ---- Table I: collective I/O -------------------------------------------
  Toggle romio_cb_write = Toggle::automatic;
  Toggle romio_cb_read = Toggle::automatic;
  Offset cb_buffer_size = 16 * units::MiB;  // ROMIO default
  /// Number of aggregator processes; 0 means "one per compute node"
  /// (ROMIO's default cb_config_list behaviour).
  int cb_nodes = 0;
  /// cb_config_list, common subset: "*:k" caps aggregators per node at k
  /// ("*:*" = unlimited). ROMIO's default is "*:1".
  int cb_config_per_node = 1;

  // ---- File striping (affects collective I/O performance, §II-B) --------
  std::optional<Offset> striping_unit;
  std::optional<int> striping_factor;

  // ---- Table II: E10 cache extensions ------------------------------------
  CacheMode e10_cache = CacheMode::disable;
  std::string e10_cache_path = "/scratch";
  FlushFlag e10_cache_flush_flag = FlushFlag::flush_immediate;
  /// enable: cache file removed after the global file is closed;
  /// disable: retained until the user removes it.
  bool e10_cache_discard = true;
  /// Synchronisation (staging) buffer size for the cache flush; pre-existing
  /// ROMIO hint that also sets independent-write granularity.
  Offset ind_wr_buffer_size = 512 * units::KiB;
  /// EXTENSION beyond the paper's Table II (its §VI future work): serve
  /// reads from the local cache when the extent is fully cached. Off by
  /// default — the paper's semantics (§III-B) do not support cache reads.
  bool e10_cache_read = false;
  /// EXTENSION: record-journal the cache for crash recovery (sidecar
  /// WriteRecord/CommitRecord files next to the cache file). Off by
  /// default — the appends cost local-device time; fault scenarios with
  /// rank crashes enable it automatically.
  bool e10_cache_journal = false;
  /// EXTENSION (e10_pipeline_flag): double-buffer the collective write's
  /// round loop so round r's aggregator write stays in flight while round
  /// r+1's dissemination and shuffle proceed (docs/pipeline.md). "disable"
  /// restores the classic synchronous ext2ph round loop for ablations.
  bool e10_pipeline = true;
  /// EXTENSION (e10_sync_streams): concurrent in-flight flush streams the
  /// sync thread keeps outstanding against the PFS while draining the cache
  /// (docs/flush_scheduler.md). 1 restores the serial read-back→write drain.
  int e10_sync_streams = 4;
  /// EXTENSION (e10_flush_coalesce_flag): coalesce adjacent queued sync
  /// requests into shared stripe-aligned flush dispatches. "disable" flushes
  /// each request separately for ablations.
  bool e10_flush_coalesce = true;
  /// EXTENSION (e10_two_level_flag): two-level collective-write aggregation
  /// (docs/two_level.md). Each round gathers a node's contributions to the
  /// node leader over the intra-node (shared-memory) transport first, then
  /// runs a leaders-only inter-node dissemination and data exchange.
  /// "automatic" enables it when at least kTwoLevelAutoRanksPerNode ranks
  /// share a node — the sweep's break-even point — so flat placements keep
  /// the flat exchange. Default disable (bit-for-bit flat behaviour).
  Toggle e10_two_level = Toggle::disable;

  /// Ranks-per-node threshold at which e10_two_level_flag=automatic turns
  /// the two-level exchange on (results/BENCH_two_level.json: wins are
  /// consistent from 8 ranks per node up).
  static constexpr std::size_t kTwoLevelAutoRanksPerNode = 8;

  /// Segment size for the two-level data stage. Leaders split each merged
  /// per-aggregator bucket into segments of at most this size — matching
  /// the fabric's eager threshold — so the transfers stream to the
  /// aggregator while the previous round's write is still draining instead
  /// of rendezvous-stalling behind the collective-buffer hand-off. Both
  /// ends derive *which* pairs talk from the node hull / round window
  /// overlap; the first segment (the manifest) carries the follow-on
  /// segment count in-band, keeping the matching deterministic without a
  /// count exchange.
  static constexpr Offset kTwoLevelSegmentBytes = Offset{256} * units::KiB;

  /// Parses an Info object. Unknown keys are ignored (MPI semantics);
  /// malformed values of known keys are reported.
  static Result<Hints> parse(const mpi::Info& info);

  /// Hint echo, as MPI_File_get_info would return.
  mpi::Info to_info() const;
};

std::string to_string(Toggle t);
std::string to_string(CacheMode m);
std::string to_string(FlushFlag f);

}  // namespace e10::adio
