// Staged round pipeline for the extended two-phase collective write.
//
// RoundPlanner owns the planning half of ext2ph — file domains, round
// count, and the (round, aggregator) window each byte of an access list
// feeds — shared by the collective write and read paths (it used to be
// duplicated in both).
//
// WritePipeline owns the execution half on the aggregator side: the
// collective buffer is double-buffered, so round r's write to the cache (or
// the PFS) stays in flight while round r+1's dissemination and data shuffle
// proceed. The aggregator joins the oldest in-flight round's write handle
// before reusing its buffer (acquire_buffer), and drains everything before
// the collective error exchange. With the pipeline disabled every round's
// write is joined at issue time, which is exactly the classic synchronous
// ext2ph round loop. See docs/pipeline.md for the stage diagram.
#pragma once

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "adio/adio_file.h"
#include "common/thread_safety.h"
#include "sim/async.h"
#include "sim/concurrency.h"

namespace e10::adio {

/// File-domain and round planning for one collective operation.
class RoundPlanner {
 public:
  /// `region` is the global access region [gmin, gmax); domains are
  /// stripe-aligned when `align` is set (BeeGFS driver). An empty region
  /// yields zero rounds and no domains.
  RoundPlanner(const Extent& region, std::size_t aggregator_count,
               Offset cb_buffer_size, std::optional<Offset> align);

  /// Topology-aware overload for the two-level exchange (docs/two_level.md).
  /// `aggregator_nodes[i]` is the node hosting aggregator i. With
  /// `two_level` set and more than one distinct node, domains come from
  /// partition_node_aware_domains (cb-block-quantized, node-grouped);
  /// otherwise the plan is byte-identical to the flat constructor — the
  /// disabled path reproduces flat behaviour bit-for-bit.
  RoundPlanner(const Extent& region,
               const std::vector<std::size_t>& aggregator_nodes,
               Offset cb_buffer_size, std::optional<Offset> align,
               bool two_level);

  const std::vector<Extent>& domains() const { return domains_; }
  /// Number of exchange-and-write rounds (ROMIO's ntimes): the maximum
  /// over domains of ceil(domain length / collective buffer size).
  Offset rounds() const { return rounds_; }
  Offset cb_buffer_size() const { return cb_; }

  /// Splits `extent` into the (round, aggregator, sub-extent) windows that
  /// serve it, invoking emit(Offset round, std::size_t aggregator_index,
  /// const Extent& sub) in file order. Callers must feed extents in
  /// nondecreasing offset order across calls — the planner advances a
  /// monotonic domain cursor, never rewinding (sorted access lists
  /// guarantee this, as in ROMIO). Zero-length extents emit nothing.
  template <typename Emit>
  void split(const Extent& extent, Emit&& emit) {
    Offset cursor = extent.offset;
    while (cursor < extent.end()) {
      while (domain_ + 1 < domains_.size() &&
             (domains_[domain_].empty() ||
              cursor >= domains_[domain_].end())) {
        ++domain_;
      }
      const Extent& dom = domains_[domain_];
      const Offset round = (cursor - dom.offset) / cb_;
      const Offset window_end =
          std::min(dom.offset + (round + 1) * cb_, dom.end());
      const Offset take = std::min(extent.end(), window_end) - cursor;
      emit(round, domain_, Extent{cursor, take});
      cursor += take;
    }
  }

  /// Resets the domain cursor so another sorted pass can be planned.
  void rewind() { domain_ = 0; }

 private:
  std::vector<Extent> domains_;
  Offset cb_ = 0;
  Offset rounds_ = 0;
  std::size_t domain_ = 0;  // monotonic cursor into domains_
};

/// Double-buffered aggregator write stage. All methods must run inside the
/// owning rank's simulated process; the pipeline state itself is owned by
/// that one rank (registered with the concurrency checker — the in-flight
/// write is the device's business, the handle bookkeeping is ours).
class WritePipeline {
 public:
  /// Number of collective buffers. One round's write can be in flight per
  /// buffer beyond the one being filled, so at most kBuffers writes are
  /// outstanding and a buffer is reclaimed two rounds after it was issued.
  static constexpr std::size_t kBuffers = 2;

  WritePipeline(AdioFile& fd, bool enabled);
  WritePipeline(const WritePipeline&) = delete;
  WritePipeline& operator=(const WritePipeline&) = delete;
  ~WritePipeline();

  bool enabled() const { return enabled_; }

  /// Joins in-flight writes until a collective buffer is free for the next
  /// round's shuffle. Call before posting the round's receives.
  void acquire_buffer();

  /// Writes one round's collected pieces (sorted by file offset) as
  /// maximal contiguous runs — one iwrite_contig per run, holes split the
  /// write, exactly what flushing the collective buffer does in ROMIO.
  /// Returns the issue status (statuses are fully determined at issue time
  /// in this model). With the pipeline disabled the writes are joined
  /// before returning.
  Status issue_round(Offset round, const std::vector<mpi::IoPiece>& pieces);

  /// Joins every in-flight write. Idempotent; also run by the destructor.
  void drain();

  /// Join-point accounting across the pipeline's lifetime.
  const sim::OverlapAccumulator& overlap() const { return overlap_; }

 private:
  struct InFlightRound {
    Offset round = 0;
    std::vector<WriteHandle> handles;
  };

  /// Joins the oldest in-flight round and updates the overlap accounting.
  void join_oldest();

  AdioFile& fd_;
  bool enabled_ = false;
  std::deque<InFlightRound> in_flight_ E10_TRACKED_BY(state_var_);
  sim::OverlapAccumulator overlap_ E10_TRACKED_BY(state_var_);
  /// Pipeline bookkeeping is single-owner state of the issuing rank; the
  /// checker verifies nothing else ever touches it.
  sim::SharedVar state_var_;
  // Resolved once; null when no registry is attached.
  obs::Counter* writes_counter_ = nullptr;
  obs::Counter* stalls_counter_ = nullptr;
  obs::Counter* stall_ns_counter_ = nullptr;
  obs::Counter* write_ns_counter_ = nullptr;
  obs::Counter* hidden_ns_counter_ = nullptr;
};

}  // namespace e10::adio
