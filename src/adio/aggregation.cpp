#include "adio/aggregation.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace e10::adio {

std::vector<int> select_aggregators(const mpi::Comm& comm, int cb_nodes,
                                    int per_node_cap) {
  const int size = comm.size();
  if (per_node_cap <= 0) {
    throw std::logic_error("select_aggregators: per_node_cap must be > 0");
  }
  // Group ranks by node, in rank order.
  std::map<std::size_t, std::vector<int>> by_node;
  for (int r = 0; r < size; ++r) {
    by_node[comm.node_of(r)].push_back(r);
  }
  const int nodes = static_cast<int>(by_node.size());
  // The cap limits both the per-node layers and the total pool.
  std::size_t max_layers = static_cast<std::size_t>(per_node_cap);
  int pool = 0;
  for (const auto& [node, ranks] : by_node) {
    pool += static_cast<int>(std::min(ranks.size(), max_layers));
  }
  int want = cb_nodes > 0 ? std::min({cb_nodes, size, pool})
                          : std::min(nodes, pool);

  std::vector<int> aggregators;
  aggregators.reserve(static_cast<std::size_t>(want));
  // Node-major round-robin: lowest rank of each node first.
  for (std::size_t layer = 0;
       layer < max_layers && static_cast<int>(aggregators.size()) < want;
       ++layer) {
    for (const auto& [node, ranks] : by_node) {
      if (static_cast<int>(aggregators.size()) >= want) break;
      if (layer < ranks.size()) aggregators.push_back(ranks[layer]);
    }
  }
  std::sort(aggregators.begin(), aggregators.end());
  return aggregators;
}

std::vector<Extent> partition_file_domains(const Extent& region,
                                           std::size_t count,
                                           std::optional<Offset> align_unit) {
  if (count == 0) {
    throw std::logic_error("partition_file_domains: zero aggregators");
  }
  std::vector<Extent> domains(count, Extent{region.offset, 0});
  if (region.empty()) return domains;

  if (!align_unit) {
    // Even split (ADIOI_GEN): remainder spread over the first domains.
    const Offset base = region.length / static_cast<Offset>(count);
    Offset rem = region.length % static_cast<Offset>(count);
    Offset cursor = region.offset;
    for (std::size_t i = 0; i < count; ++i) {
      const Offset len = base + (rem > 0 ? 1 : 0);
      if (rem > 0) --rem;
      domains[i] = Extent{cursor, len};
      cursor += len;
    }
    return domains;
  }

  // Stripe-aligned split: boundaries land on multiples of align_unit, so no
  // two aggregators ever touch the same stripe.
  const Offset unit = *align_unit;
  if (unit <= 0) {
    throw std::logic_error("partition_file_domains: bad align unit");
  }
  const Offset first_boundary = (region.offset / unit) * unit;
  const Offset stripes =
      (region.end() - first_boundary + unit - 1) / unit;  // stripes covered
  const Offset per = stripes / static_cast<Offset>(count);
  Offset extra = stripes % static_cast<Offset>(count);
  Offset cursor = region.offset;
  Offset boundary = first_boundary;
  for (std::size_t i = 0; i < count; ++i) {
    const Offset nstripes = per + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    boundary += nstripes * unit;
    const Offset domain_end = std::clamp(boundary, cursor, region.end());
    domains[i] = Extent{cursor, domain_end - cursor};
    cursor = domain_end;
  }
  return domains;
}

std::vector<Extent> partition_node_aware_domains(
    const Extent& region, const std::vector<std::size_t>& aggregator_nodes,
    Offset cb_buffer_size, std::optional<Offset> align_unit) {
  const std::size_t count = aggregator_nodes.size();
  if (count == 0) {
    throw std::logic_error("partition_node_aware_domains: zero aggregators");
  }
  if (align_unit) {
    // Stripe alignment dominates: false sharing on a stripe lock costs more
    // than an unbalanced intra-node gather saves.
    return partition_file_domains(region, count, align_unit);
  }
  if (cb_buffer_size <= 0) {
    throw std::logic_error("partition_node_aware_domains: bad cb_buffer_size");
  }
  std::vector<Extent> domains(count, Extent{region.offset, 0});
  if (region.empty()) return domains;

  // Group consecutive aggregators that share a node (select_aggregators
  // returns ascending ranks, so one node's aggregators are consecutive).
  struct Group {
    std::size_t first = 0;  // index of first aggregator in the group
    std::size_t size = 0;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < count; ++i) {
    if (groups.empty() || aggregator_nodes[i] != aggregator_nodes[groups.back().first]) {
      groups.push_back(Group{i, 1});
    } else {
      ++groups.back().size;
    }
  }

  // Deal whole cb-sized blocks: first to groups proportionally to their
  // aggregator count (remainder to the earliest groups), then evenly within
  // each group. Quantizing to cb blocks keeps every round window except the
  // file tail a full collective buffer.
  const Offset blocks =
      (region.length + cb_buffer_size - 1) / cb_buffer_size;
  std::vector<Offset> per_agg_blocks(count, 0);
  Offset spare = blocks;
  for (const Group& group : groups) {
    // Proportional share: floor(blocks * size / count); floors' remainder is
    // dealt to the earliest aggregators below.
    const Offset share = blocks * static_cast<Offset>(group.size) /
                         static_cast<Offset>(count);
    Offset base = share / static_cast<Offset>(group.size);
    Offset rem = share % static_cast<Offset>(group.size);
    for (std::size_t i = 0; i < group.size; ++i) {
      per_agg_blocks[group.first + i] = base + (rem > 0 ? 1 : 0);
      if (rem > 0) --rem;
    }
    spare -= share;
  }
  for (std::size_t i = 0; spare > 0 && i < count; ++i, --spare) {
    ++per_agg_blocks[i];
  }

  // Lay the block counts out contiguously; the final partial block is
  // clipped to the region end, so the cover is exact.
  Offset cursor = region.offset;
  for (std::size_t i = 0; i < count; ++i) {
    const Offset want = per_agg_blocks[i] * cb_buffer_size;
    const Offset len = std::min(want, region.end() - cursor);
    domains[i] = Extent{cursor, len};
    cursor += len;
  }
  return domains;
}

}  // namespace e10::adio
