// Shared services the ADIO layer runs against: the simulation engine, the
// global parallel file system, the per-node local file systems (cache tier)
// and the coherency lock table. A Platform (workloads/testbed.h) wires one
// up for the DEEP-ER-like cluster.
#pragma once

#include "cache/lock_table.h"
#include "lfs/local_fs.h"
#include "pfs/pfs.h"
#include "prof/profiler.h"
#include "sim/engine.h"

namespace e10::adio {

struct IoContext {
  IoContext(sim::Engine& engine_in, pfs::Pfs& pfs_in, lfs::LocalFsSet& lfs_in,
            cache::LockTable& locks_in)
      : engine(engine_in), pfs(pfs_in), lfs(lfs_in), locks(locks_in) {}

  sim::Engine& engine;
  pfs::Pfs& pfs;
  lfs::LocalFsSet& lfs;
  cache::LockTable& locks;
  /// Optional MPE-style instrumentation of the collective write path.
  prof::Profiler* profiler = nullptr;
};

}  // namespace e10::adio
