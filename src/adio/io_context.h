// Shared services the ADIO layer runs against: the simulation engine, the
// global parallel file system, the per-node local file systems (cache tier)
// and the coherency lock table. A Platform (workloads/testbed.h) wires one
// up for the DEEP-ER-like cluster.
#pragma once

#include <optional>

#include "cache/lock_table.h"
#include "lfs/local_fs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "prof/profiler.h"
#include "sim/engine.h"

namespace e10::fault {
class FaultInjector;
}

namespace e10::adio {

struct IoContext {
  IoContext(sim::Engine& engine_in, pfs::Pfs& pfs_in, lfs::LocalFsSet& lfs_in,
            cache::LockTable& locks_in)
      : engine(engine_in), pfs(pfs_in), lfs(lfs_in), locks(locks_in) {}

  sim::Engine& engine;
  pfs::Pfs& pfs;
  lfs::LocalFsSet& lfs;
  cache::LockTable& locks;
  /// Optional MPE-style instrumentation of the collective write path.
  prof::Profiler* profiler = nullptr;
  /// Optional metrics sink (counters/gauges/histograms); nullptr = off.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional span tracer; nullptr or disabled = off.
  obs::Tracer* tracer = nullptr;
  /// Optional fault injector (rank-crash queries on the cache path);
  /// nullptr or unarmed = off.
  fault::FaultInjector* fault = nullptr;
};

/// RAII for one pipeline phase on one rank: records the interval in the
/// profiler (when attached) and emits a trace span on the rank's track
/// (when tracing). Either sink may be absent; both off costs two branches.
class PhaseScope {
 public:
  PhaseScope(IoContext& ctx, int rank, prof::Phase phase) {
    if (ctx.profiler != nullptr) scope_.emplace(*ctx.profiler, rank, phase);
    if (ctx.tracer != nullptr && ctx.tracer->enabled()) {
      span_ = obs::Span(ctx.tracer, ctx.tracer->rank_track(rank),
                        prof::phase_name(phase));
    }
  }

  /// The underlying span, for attaching args (inactive when not tracing).
  obs::Span& span() { return span_; }

 private:
  std::optional<prof::Profiler::Scope> scope_;
  obs::Span span_;
};

}  // namespace e10::adio
