// Two-phase collective read (ADIOI_GEN_ReadStridedColl): aggregators read
// their file-domain windows from the global file and scatter the pieces to
// the requesting ranks. Reads never touch the cache tier (§III-B); coherent
// mode blocks on in-transit extents inside read_contig.
#include <algorithm>
#include <limits>
#include <optional>

#include "adio/adio_file.h"
#include "adio/pipeline.h"
#include "adio/round_plan.h"

namespace e10::adio {

namespace {

constexpr Offset kNoOffset = std::numeric_limits<Offset>::max();

Status agree_status(const mpi::Comm& comm, const Status& mine) {
  const int code = static_cast<int>(mine.code());
  const int worst =
      comm.allreduce(code, [](int a, int b) { return std::max(a, b); });
  if (worst == 0) return Status::ok();
  if (code == worst) return mine;
  return Status::error(static_cast<Errc>(worst), "error on a peer rank");
}

/// A rank's request for part of an aggregator's round window.
struct ReadChunk {
  int requester = 0;
  Extent extent;
};

}  // namespace

Result<std::vector<DataView>> read_strided_coll(
    AdioFile& fd, const std::vector<Extent>& wanted) {
  IoContext& ctx = *fd.ctx;
  const mpi::Comm& comm = fd.comm;
  const int p = comm.size();
  const int me = comm.rank();

  std::vector<Extent> sorted = wanted;
  std::erase_if(sorted, [](const Extent& e) { return e.empty(); });
  std::sort(sorted.begin(), sorted.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });

  Offset my_start = kNoOffset, my_end = kNoOffset;
  if (!sorted.empty()) {
    my_start = sorted.front().offset;
    my_end = sorted.back().end();
  }
  std::vector<std::pair<Offset, Offset>> all_offsets;
  {
    PhaseScope scope(ctx, me, prof::Phase::offset_exchange);
    all_offsets = comm.allgather(std::make_pair(my_start, my_end),
                                 Offset{2} * sizeof(Offset));
  }

  bool interleaved = false;
  Offset prev_end = -1;
  Offset gmin = kNoOffset, gmax = -1;
  for (const auto& [start, end] : all_offsets) {
    if (start == kNoOffset) continue;
    if (prev_end >= 0 && start < prev_end) interleaved = true;
    prev_end = std::max(prev_end, end);
    gmin = std::min(gmin, start);
    gmax = std::max(gmax, end);
  }

  if (fd.hints.romio_cb_read == Toggle::disable ||
      (fd.hints.romio_cb_read == Toggle::automatic && !interleaved) ||
      gmin == kNoOffset) {
    auto result = read_strided(fd, wanted);
    const Status agreed = agree_status(comm, result.status());
    if (!agreed.is_ok()) return agreed;
    return result;
  }

  std::optional<Offset> align;
  if (fd.driver == Driver::beegfs && fd.stripe_unit > 0) {
    align = fd.stripe_unit;
  }
  // The read path stays single-level even under e10_two_level_flag: reads
  // already fan out aggregator → rank (one message per reader), so an
  // intra-node gather stage has no p-to-A flow to collapse. The flat
  // constructor keeps the read plan independent of the hint.
  RoundPlanner planner(Extent{gmin, gmax - gmin}, fd.aggregators.size(),
                       fd.hints.cb_buffer_size, align);
  const Offset ntimes = planner.rounds();

  // Which (aggregator, round) serves each part of my request list. Sorted
  // requests keep the planner's domain cursor monotonic.
  std::vector<RoundPlan<Extent>> plan(static_cast<std::size_t>(ntimes));
  for (const Extent& want : sorted) {
    planner.split(want, [&](Offset round, std::size_t agg_index,
                            const Extent& sub) {
      plan_append(plan, round, agg_index, sub);
    });
  }

  Status my_status = Status::ok();
  ByteStore assembled;  // pieces land here, keyed by file offset

  // Round-persistent exchange buffers (entries touched by a round are
  // cleared sparsely afterwards, so the steady state allocates nothing).
  std::vector<std::vector<Extent>> requests_by_rank(
      static_cast<std::size_t>(p));
  std::vector<mpi::Request> recv_requests;
  std::vector<mpi::Request> send_requests;

  for (Offset round = 0; round < ntimes; ++round) {
    auto& round_plan = plan[static_cast<std::size_t>(round)];

    // Dissemination: every rank tells every aggregator which extents it
    // wants this round (the read-side analogue of the alltoall).
    for (const auto& [agg_index, extents] : round_plan) {
      requests_by_rank[static_cast<std::size_t>(
          fd.aggregators[agg_index])] = extents;
    }
    std::vector<std::vector<Extent>> incoming;
    {
      PhaseScope scope(ctx, me, prof::Phase::shuffle_all2all);
      incoming = comm.alltoall(requests_by_rank, 2 * sizeof(Offset) * 4);
    }
    for (const auto& [agg_index, extents] : round_plan) {
      requests_by_rank[static_cast<std::size_t>(fd.aggregators[agg_index])]
          .clear();
    }

    // Post receives for the data I asked for.
    recv_requests.clear();
    for (const auto& [agg_index, extents] : round_plan) {
      recv_requests.push_back(
          comm.irecv(fd.aggregators[agg_index], static_cast<int>(round)));
    }

    // Aggregator: read the covering window once, slice per requester.
    send_requests.clear();
    if (fd.is_aggregator()) {
      std::vector<ReadChunk> chunks;
      Offset lo = kNoOffset, hi = -1;
      for (int src = 0; src < p; ++src) {
        for (const Extent& e : incoming[static_cast<std::size_t>(src)]) {
          chunks.push_back(ReadChunk{src, e});
          lo = std::min(lo, e.offset);
          hi = std::max(hi, e.end());
        }
      }
      if (!chunks.empty()) {
        auto window = read_contig(fd, lo, hi - lo);
        if (!window.is_ok()) {
          if (my_status.is_ok()) my_status = window.status();
        } else {
          // Group the chunks per requester and answer each with one
          // message. Chunks were collected in ascending source order, so
          // a flat append-grouped list matches the old map's iteration.
          std::vector<std::pair<int, std::vector<mpi::IoPiece>>> replies;
          for (const ReadChunk& chunk : chunks) {
            mpi::IoPiece piece;
            piece.file = chunk.extent;
            const Offset rel = chunk.extent.offset - lo;
            const Offset avail = window.value().size();
            const Offset take =
                std::clamp<Offset>(avail - rel, 0, chunk.extent.length);
            // Reads near EOF may come back short; pad with zeros so the
            // requester always gets what it asked for.
            std::vector<DataView> parts;
            if (take > 0) parts.push_back(window.value().slice(rel, take));
            if (take < chunk.extent.length) {
              parts.push_back(DataView::real(std::vector<std::byte>(
                  static_cast<std::size_t>(chunk.extent.length - take),
                  std::byte{0})));
            }
            piece.data = DataView::concat(parts);
            if (replies.empty() || replies.back().first != chunk.requester) {
              replies.emplace_back(chunk.requester,
                                   std::vector<mpi::IoPiece>{});
            }
            replies.back().second.push_back(std::move(piece));
          }
          for (auto& [dst, pieces] : replies) {
            Offset bytes = 0;
            for (const mpi::IoPiece& piece : pieces) {
              bytes += piece.file.length;
            }
            send_requests.push_back(comm.isend(dst, static_cast<int>(round),
                                               std::move(pieces), bytes));
          }
        }
      }
    }

    {
      PhaseScope scope(ctx, me, prof::Phase::exchange);
      mpi::Request::wait_all(recv_requests);
      mpi::Request::wait_all(send_requests);
    }

    for (const mpi::Request& request : recv_requests) {
      const auto pieces = std::any_cast<std::vector<mpi::IoPiece>>(
          request.packet().payload);
      for (const mpi::IoPiece& piece : pieces) {
        assembled.write(piece.file.offset, piece.data);
      }
    }
  }

  {
    PhaseScope scope(ctx, me, prof::Phase::post_write);
    const Status agreed = agree_status(comm, my_status);
    if (!agreed.is_ok()) return agreed;
  }

  std::vector<DataView> out;
  out.reserve(wanted.size());
  for (const Extent& want : wanted) {
    out.push_back(want.empty() ? DataView()
                               : assembled.read(want.offset, want.length));
  }
  return out;
}

}  // namespace e10::adio
