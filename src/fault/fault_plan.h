// Declarative fault scenarios over virtual time.
//
// The paper's durability argument (§III) only shows its value when things go
// wrong: a PFS data server drops off during a flush, a write times out, a
// compute node dies with dirty extents still in its NVM cache. A FaultPlan
// describes such a scenario — per-operation transient error probabilities,
// server outage/degradation windows, rank crash points — as data, parsed
// from a `--faults=` spec string, and the FaultInjector executes it against
// the simulator's virtual clock. Plans are deterministic: the same spec and
// seed inject the same faults at the same virtual times.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace e10::fault {

/// Operations a plan can target. The enum doubles as the index into the
/// per-op rule table and as the RNG stream tag, so every op draws from its
/// own derived stream and adding a rule never perturbs another op's draws.
enum class FaultOp : int {
  pfs_read = 0,
  pfs_write,
  pfs_metadata,
  lfs_open,
  lfs_read,
  lfs_write,
};
inline constexpr int kFaultOpCount = 6;

constexpr const char* fault_op_name(FaultOp op) {
  switch (op) {
    case FaultOp::pfs_read: return "pfs_read";
    case FaultOp::pfs_write: return "pfs_write";
    case FaultOp::pfs_metadata: return "pfs_metadata";
    case FaultOp::lfs_open: return "lfs_open";
    case FaultOp::lfs_read: return "lfs_read";
    case FaultOp::lfs_write: return "lfs_write";
  }
  return "unknown";
}

/// Each operation of the targeted kind fails with `errc` with probability
/// `probability`, independently per call.
struct TransientRule {
  double probability = 0.0;
  Errc errc = Errc::unavailable;
};

/// One PFS data server misbehaving during [start, end): slowdown == 0 means
/// a hard outage (requests rejected with `unavailable`); slowdown > 1 means
/// degraded service (media time multiplied by the factor).
struct OutageWindow {
  int server = 0;
  Time start = 0;
  Time end = 0;
  double slowdown = 0.0;

  bool covers(Time t) const { return t >= start && t < end; }
  bool hard() const { return slowdown == 0.0; }
};

/// Kill one rank's cache state at virtual time `at`, or (during_flush) when
/// that rank next enters a cache flush. One-shot: each spec fires once.
struct CrashSpec {
  int rank = 0;
  Time at = 0;
  bool during_flush = false;
};

struct FaultPlan {
  std::array<TransientRule, kFaultOpCount> transient{};
  std::vector<OutageWindow> outages;
  std::vector<CrashSpec> crashes;
  /// Virtual time an injected transient failure costs the caller — a failed
  /// request still travels to the device and back before it is rejected.
  Time error_latency = units::milliseconds(1);
  std::uint64_t seed = 1;

  bool empty() const;
  bool has_crashes() const { return !crashes.empty(); }

  /// Parses a `--faults=` scenario spec: semicolon-separated clauses.
  ///
  ///   <op>=PROB[/errc]          transient rule; op is a fault_op_name,
  ///                             PROB is "0.01" or "1%", errc defaults to
  ///                             unavailable
  ///   outage=SERVER@START-END   hard server outage over [START, END)
  ///   degrade=SERVER@START-ENDxFACTOR
  ///                             server slowdown by FACTOR over the window
  ///   crash=RANK@TIME           rank crash at virtual TIME
  ///   crash=RANK@flush          rank crash when it next enters a flush
  ///   latency=TIME              per-injection error latency
  ///   seed=N                    injector RNG seed
  ///
  /// Times take ns/us/ms/s suffixes ("2s", "150ms"); a bare number is ns.
  /// Example: "pfs_write=1%;outage=1@2s-4s;crash=0@flush;seed=7".
  static Result<FaultPlan> parse(std::string_view spec);

  /// One-line human summary for logs and the run report, e.g.
  /// "pfs_write=1% (unavailable); outage server 1 [2s, 4s); crash rank 0
  /// at flush; seed=7".
  std::string summary() const;
};

}  // namespace e10::fault
