// Executes a FaultPlan against the virtual clock.
//
// One injector is shared by every layer that can fail — Pfs (per-op
// transients, server outages), storage::Device (degradation windows),
// lfs::LocalFs (local NVM faults) and CacheFile (rank crashes). Each layer
// holds a FaultInjector* and asks it before doing work:
//
//   if (fault_ != nullptr) {
//     if (Status s = fault_->check(fault::FaultOp::pfs_write); !s) return s;
//   }
//
// When no plan is armed, check() is an inline armed_ test — one branch —
// so fault hooks cost nothing on a clean run (the acceptance bar: bench
// timing with faults disabled matches the seed). Injection draws come from
// per-op RNG streams derived from the plan seed, so two runs of the same
// scenario inject identical faults and the schedule stays deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace e10::fault {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Engine& engine) : engine_(engine) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs (and arms, when non-empty) a scenario. Resets RNG streams,
  /// crash bookkeeping and stats; call before the simulation starts.
  void arm(FaultPlan plan);

  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Wires metric counters and the "faults" trace track. Instruments are
  /// only created once a scenario (or forced failure) arms the injector, so
  /// clean runs keep their metrics snapshot unchanged.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  /// Hot-path hook: returns ok, or the injected failure after charging the
  /// plan's error latency. Call sites guard on a possibly-null injector and
  /// this inlines to a single branch when nothing is armed.
  Status check(FaultOp op) {
    if (!armed_) return Status::ok();
    return draw(op);
  }

  /// Deterministic "next n ops of this kind fail" — the generalized form of
  /// the old LocalFs::inject_open_failures test hook. Forced failures fire
  /// before probabilistic rules and carry no error latency (preserving the
  /// legacy fail-immediately semantics existing tests rely on). `after`
  /// lets the first ops pass, placing the failure mid-sequence (e.g. a
  /// timeout in the middle of a multi-dispatch flush).
  void force_failures(FaultOp op, int count, Errc errc = Errc::io_error,
                      int after = 0);
  int forced_remaining(FaultOp op) const {
    return forced_[static_cast<std::size_t>(op)];
  }

  /// True while a hard outage window covers `now` for this server; counts
  /// the rejection. The caller reports Errc::unavailable upstream.
  bool server_down(int server, Time now);

  /// Combined degradation factor (>= 1.0) for this server at `now`;
  /// overlapping windows multiply. Devices scale media time by it.
  double slowdown(int server, Time now) const;

  /// One-shot crash query: true when an unfired CrashSpec for `rank` is due
  /// — its virtual time has passed, or it is a during-flush spec and
  /// `in_flush` is set. Firing marks the spec spent and counts the crash;
  /// the caller then runs CacheFile::simulate_crash().
  bool crash_due(int rank, Time now, bool in_flush);

  struct Stats {
    std::int64_t injected = 0;
    std::int64_t outage_rejections = 0;
    std::int64_t crashes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status draw(FaultOp op);
  Status inject(FaultOp op, Errc errc, bool charge_latency);
  void ensure_instruments();
  void mark(const std::string& label);

  sim::Engine& engine_;
  FaultPlan plan_;
  bool armed_ = false;
  std::vector<Rng> rngs_;                    // one stream per FaultOp
  std::array<int, kFaultOpCount> forced_{};  // pending forced failures
  std::array<Errc, kFaultOpCount> forced_errc_{};
  std::array<int, kFaultOpCount> forced_after_{};  // ops to pass first
  std::vector<bool> crash_fired_;            // parallel to plan_.crashes
  Stats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* injected_total_ = nullptr;
  obs::Counter* outage_rejections_ = nullptr;
  obs::Counter* crash_counter_ = nullptr;
  std::array<obs::Counter*, kFaultOpCount> injected_by_op_{};
  int fault_track_ = -1;
};

}  // namespace e10::fault
