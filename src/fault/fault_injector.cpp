#include "fault/fault_injector.h"

#include "common/log.h"

namespace e10::fault {

void FaultInjector::arm(FaultPlan plan) {
  plan_ = std::move(plan);
  rngs_.clear();
  rngs_.reserve(kFaultOpCount);
  for (int i = 0; i < kFaultOpCount; ++i) {
    rngs_.emplace_back(
        Rng::derive(plan_.seed, fault_op_name(static_cast<FaultOp>(i))));
  }
  crash_fired_.assign(plan_.crashes.size(), false);
  stats_ = Stats{};
  armed_ = !plan_.empty();
  if (armed_) {
    log::info("fault", "armed: ", plan_.summary());
    ensure_instruments();
  }
}

void FaultInjector::set_observability(obs::MetricsRegistry* metrics,
                                      obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  injected_total_ = nullptr;
  outage_rejections_ = nullptr;
  crash_counter_ = nullptr;
  injected_by_op_.fill(nullptr);
  fault_track_ = -1;
  if (armed_) ensure_instruments();
}

void FaultInjector::ensure_instruments() {
  if (metrics_ != nullptr && injected_total_ == nullptr) {
    injected_total_ = &metrics_->counter(obs::names::kFaultInjected);
    outage_rejections_ = &metrics_->counter(obs::names::kFaultOutageRejections);
    crash_counter_ = &metrics_->counter(obs::names::kFaultCrashes);
    for (std::size_t i = 0; i < kFaultOpCount; ++i) {
      injected_by_op_[i] = &metrics_->counter(
          std::string("fault.") + fault_op_name(static_cast<FaultOp>(i)) +
          ".injected");
    }
  }
  if (tracer_ != nullptr && fault_track_ < 0) {
    fault_track_ = tracer_->track("faults");
  }
}

void FaultInjector::mark(const std::string& label) {
  if (tracer_ != nullptr && tracer_->enabled() && fault_track_ >= 0) {
    tracer_->instant(fault_track_, label);
  }
}

void FaultInjector::force_failures(FaultOp op, int count, Errc errc,
                                   int after) {
  const std::size_t i = static_cast<std::size_t>(op);
  forced_[i] = count;
  forced_errc_[i] = errc;
  forced_after_[i] = after;
  if (count > 0 && !armed_) {
    // Forced failures arm the injector even without a plan; the RNG streams
    // still need to exist for any probabilistic rules armed later.
    if (rngs_.empty()) {
      for (int j = 0; j < kFaultOpCount; ++j) {
        rngs_.emplace_back(
            Rng::derive(plan_.seed, fault_op_name(static_cast<FaultOp>(j))));
      }
    }
    armed_ = true;
    ensure_instruments();
  }
}

Status FaultInjector::draw(FaultOp op) {
  const std::size_t i = static_cast<std::size_t>(op);
  if (forced_[i] > 0) {
    if (forced_after_[i] > 0) {
      --forced_after_[i];
    } else {
      --forced_[i];
      return inject(op, forced_errc_[i], /*charge_latency=*/false);
    }
  }
  const TransientRule& rule = plan_.transient[i];
  if (rule.probability > 0.0 && rngs_[i].bernoulli(rule.probability)) {
    return inject(op, rule.errc, /*charge_latency=*/true);
  }
  return Status::ok();
}

Status FaultInjector::inject(FaultOp op, Errc errc, bool charge_latency) {
  if (charge_latency && plan_.error_latency > 0 && engine_.in_process()) {
    engine_.delay(plan_.error_latency);
  }
  ++stats_.injected;
  if (injected_total_ != nullptr) injected_total_->increment();
  const std::size_t i = static_cast<std::size_t>(op);
  if (injected_by_op_[i] != nullptr) injected_by_op_[i]->increment();
  mark(std::string(fault_op_name(op)) + " " + errc_name(errc));
  log::debug("fault", "injected ", errc_name(errc), " on ",
             fault_op_name(op));
  return Status::error(errc, std::string("fault: injected ") +
                                 errc_name(errc) + " on " +
                                 fault_op_name(op));
}

bool FaultInjector::server_down(int server, Time now) {
  if (!armed_) return false;
  for (const OutageWindow& w : plan_.outages) {
    if (w.server == server && w.hard() && w.covers(now)) {
      ++stats_.outage_rejections;
      if (outage_rejections_ != nullptr) outage_rejections_->increment();
      mark("outage reject server " + std::to_string(server));
      return true;
    }
  }
  return false;
}

double FaultInjector::slowdown(int server, Time now) const {
  if (!armed_) return 1.0;
  double factor = 1.0;
  for (const OutageWindow& w : plan_.outages) {
    if (w.server == server && !w.hard() && w.covers(now)) {
      factor *= w.slowdown;
    }
  }
  return factor;
}

bool FaultInjector::crash_due(int rank, Time now, bool in_flush) {
  if (!armed_) return false;
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashSpec& c = plan_.crashes[i];
    if (crash_fired_[i] || c.rank != rank) continue;
    bool due = c.during_flush ? in_flush : now >= c.at;
    if (!due) continue;
    crash_fired_[i] = true;
    ++stats_.crashes;
    if (crash_counter_ != nullptr) crash_counter_->increment();
    mark("crash rank " + std::to_string(rank));
    log::warn("fault", "rank ", rank, " crash fired",
              c.during_flush ? " (during flush)" : "");
    return true;
  }
  return false;
}

}  // namespace e10::fault
