#include "fault/fault_plan.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/units.h"

namespace e10::fault {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Status bad(std::string_view clause, std::string_view why) {
  return Status::error(Errc::invalid_argument,
                       "fault plan: bad clause '" + std::string(clause) +
                           "': " + std::string(why));
}

std::optional<double> parse_double(std::string_view s) {
  std::string text(trim(s));
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  std::string text(trim(s));
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

/// "2s", "150ms", "10us", "500ns" or a bare nanosecond count.
std::optional<Time> parse_time(std::string_view s) {
  s = trim(s);
  double unit = 1.0;
  if (s.ends_with("ns")) {
    s.remove_suffix(2);
  } else if (s.ends_with("us")) {
    unit = 1e3;
    s.remove_suffix(2);
  } else if (s.ends_with("ms")) {
    unit = 1e6;
    s.remove_suffix(2);
  } else if (s.ends_with("s")) {
    unit = 1e9;
    s.remove_suffix(1);
  }
  auto v = parse_double(s);
  if (!v || *v < 0) return std::nullopt;
  return static_cast<Time>(*v * unit);
}

/// "0.01" or "1%".
std::optional<double> parse_probability(std::string_view s) {
  s = trim(s);
  double scale = 1.0;
  if (s.ends_with('%')) {
    scale = 0.01;
    s.remove_suffix(1);
  }
  auto v = parse_double(s);
  if (!v) return std::nullopt;
  double p = *v * scale;
  if (p < 0.0 || p > 1.0) return std::nullopt;
  return p;
}

std::optional<Errc> parse_errc(std::string_view s) {
  s = trim(s);
  for (Errc e : {Errc::unavailable, Errc::timed_out, Errc::io_error,
                 Errc::busy, Errc::no_space}) {
    if (s == errc_name(e)) return e;
  }
  return std::nullopt;
}

std::optional<FaultOp> parse_op(std::string_view s) {
  for (int i = 0; i < kFaultOpCount; ++i) {
    auto op = static_cast<FaultOp>(i);
    if (s == fault_op_name(op)) return op;
  }
  return std::nullopt;
}

/// "SERVER@START-END" with an optional "xFACTOR" tail (degrade windows).
Status parse_window(std::string_view clause, std::string_view value,
                    bool degrade, FaultPlan& plan) {
  auto at = value.find('@');
  if (at == std::string_view::npos) return bad(clause, "expected SERVER@START-END");
  auto server = parse_int(value.substr(0, at));
  if (!server || *server < 0) return bad(clause, "bad server index");
  std::string_view window = value.substr(at + 1);

  double factor = 0.0;
  if (degrade) {
    auto x = window.rfind('x');
    if (x == std::string_view::npos) return bad(clause, "expected xFACTOR");
    auto f = parse_double(window.substr(x + 1));
    if (!f || *f <= 1.0) return bad(clause, "slowdown factor must be > 1");
    factor = *f;
    window = window.substr(0, x);
  }

  auto dash = window.find('-');
  if (dash == std::string_view::npos) return bad(clause, "expected START-END");
  auto start = parse_time(window.substr(0, dash));
  auto end = parse_time(window.substr(dash + 1));
  if (!start || !end || *end <= *start) return bad(clause, "bad time window");

  plan.outages.push_back(OutageWindow{static_cast<int>(*server), *start, *end,
                                      factor});
  return Status::ok();
}

Status parse_crash(std::string_view clause, std::string_view value,
                   FaultPlan& plan) {
  auto at = value.find('@');
  if (at == std::string_view::npos) return bad(clause, "expected RANK@TIME|flush");
  auto rank = parse_int(value.substr(0, at));
  if (!rank || *rank < 0) return bad(clause, "bad rank");
  std::string_view when = trim(value.substr(at + 1));
  CrashSpec spec{static_cast<int>(*rank), 0, false};
  if (when == "flush") {
    spec.during_flush = true;
  } else {
    auto t = parse_time(when);
    if (!t) return bad(clause, "bad crash time");
    spec.at = *t;
  }
  plan.crashes.push_back(spec);
  return Status::ok();
}

}  // namespace

bool FaultPlan::empty() const {
  for (const TransientRule& rule : transient) {
    if (rule.probability > 0.0) return false;
  }
  return outages.empty() && crashes.empty();
}

Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    auto semi = rest.find(';');
    std::string_view clause = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;

    auto eq = clause.find('=');
    if (eq == std::string_view::npos) return bad(clause, "expected key=value");
    std::string_view key = trim(clause.substr(0, eq));
    std::string_view value = trim(clause.substr(eq + 1));

    if (key == "outage") {
      if (Status s = parse_window(clause, value, /*degrade=*/false, plan); !s)
        return s;
    } else if (key == "degrade") {
      if (Status s = parse_window(clause, value, /*degrade=*/true, plan); !s)
        return s;
    } else if (key == "crash") {
      if (Status s = parse_crash(clause, value, plan); !s) return s;
    } else if (key == "seed") {
      auto v = parse_int(value);
      if (!v || *v < 0) return bad(clause, "bad seed");
      plan.seed = static_cast<std::uint64_t>(*v);
    } else if (key == "latency") {
      auto t = parse_time(value);
      if (!t) return bad(clause, "bad latency");
      plan.error_latency = *t;
    } else if (auto op = parse_op(key)) {
      std::string_view prob = value;
      Errc errc = Errc::unavailable;
      if (auto slash = value.find('/'); slash != std::string_view::npos) {
        prob = value.substr(0, slash);
        auto e = parse_errc(value.substr(slash + 1));
        if (!e) return bad(clause, "unknown error code");
        errc = *e;
      }
      auto p = parse_probability(prob);
      if (!p) return bad(clause, "probability must be in [0, 1] or N%");
      plan.transient[static_cast<std::size_t>(*op)] = TransientRule{*p, errc};
    } else {
      return bad(clause, "unknown key");
    }
  }
  return plan;
}

std::string FaultPlan::summary() const {
  if (empty()) return "no faults";
  std::ostringstream os;
  const char* sep = "";
  for (std::size_t i = 0; i < kFaultOpCount; ++i) {
    const TransientRule& rule = transient[i];
    if (rule.probability <= 0.0) continue;
    os << sep << fault_op_name(static_cast<FaultOp>(i)) << "="
       << rule.probability * 100.0 << "% (" << errc_name(rule.errc) << ")";
    sep = "; ";
  }
  for (const OutageWindow& w : outages) {
    os << sep << (w.hard() ? "outage" : "degrade") << " server " << w.server
       << " [" << format_time(w.start) << ", " << format_time(w.end) << ")";
    if (!w.hard()) os << " x" << w.slowdown;
    sep = "; ";
  }
  for (const CrashSpec& c : crashes) {
    os << sep << "crash rank " << c.rank << " at ";
    if (c.during_flush) {
      os << "flush";
    } else {
      os << format_time(c.at);
    }
    sep = "; ";
  }
  os << sep << "seed=" << seed;
  return os.str();
}

}  // namespace e10::fault
