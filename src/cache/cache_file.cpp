#include "cache/cache_file.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/log.h"
#include "fault/fault_injector.h"
#include "sim/concurrency.h"

namespace e10::cache {
namespace {

/// Device-class failures count towards quarantine; a full scratch partition
/// (no_space) or a bad argument is deterministic, not a sign of a dying
/// device.
bool is_device_error(Errc code) {
  return code == Errc::io_error || code == Errc::unavailable ||
         code == Errc::timed_out;
}

}  // namespace

Result<std::unique_ptr<CacheFile>> CacheFile::open(
    sim::Engine& engine, lfs::LocalFs& local_fs, pfs::Pfs& pfs,
    pfs::FileHandle global_handle, const CacheFileParams& params,
    LockTable* locks) {
  if (params.coherent && params.flush == FlushPolicy::none) {
    return Status::error(Errc::invalid_argument,
                         "coherent cache requires a flush policy");
  }
  if (params.coherent && locks == nullptr) {
    return Status::error(Errc::invalid_argument,
                         "coherent cache requires a lock table");
  }
  if (params.quarantine_after < 1) {
    return Status::error(Errc::invalid_argument,
                         "cache: quarantine_after must be >= 1");
  }
  if (params.sync_streams < 1) {
    return Status::error(Errc::invalid_argument,
                         "cache: sync_streams must be >= 1");
  }
  if (params.stripe_unit < 0) {
    return Status::error(Errc::invalid_argument,
                         "cache: negative stripe unit");
  }
  const auto handle =
      local_fs.open(params.cache_path, /*create=*/true, /*truncate=*/true);
  if (!handle.is_ok()) return handle.status();

  std::unique_ptr<CacheFile> cache(new CacheFile(
      engine, local_fs, pfs, global_handle, params, locks, handle.value()));

  if (params.journal) {
    const auto journal = local_fs.open(journal_path(params.cache_path),
                                       /*create=*/true, /*truncate=*/true);
    const auto commits = local_fs.open(commits_path(params.cache_path),
                                       /*create=*/true, /*truncate=*/true);
    if (journal.is_ok() && commits.is_ok()) {
      cache->journaling_ = true;
      cache->journal_handle_ = journal.value();
      cache->commits_handle_ = commits.value();
      cache->sync_->enable_commit_journal(commits.value());
    } else {
      // A cache without its journal is still a working cache — it just
      // cannot replay after a crash. Degrading beats failing the open.
      log::warn("cache", "journal sidecars unavailable for ",
                params.cache_path, ", continuing without crash recovery");
      if (journal.is_ok()) (void)local_fs.close(journal.value());
      if (commits.is_ok()) (void)local_fs.close(commits.value());
    }
  }
  cache->sync_->start();
  return cache;
}

CacheFile::CacheFile(sim::Engine& engine, lfs::LocalFs& local_fs,
                     pfs::Pfs& pfs, pfs::FileHandle global_handle,
                     const CacheFileParams& params, LockTable* locks,
                     lfs::FileHandle cache_handle)
    : engine_(engine),
      local_fs_(local_fs),
      params_(params),
      locks_(locks),
      cache_handle_(cache_handle),
      extent_map_var_(engine, "cache.extent_map:" + params.cache_path) {
  sync_ = std::make_unique<SyncThread>(
      engine, local_fs, cache_handle, pfs, global_handle, params.global_path,
      params.staging_bytes, locks);
  sync_->set_observability(params.metrics, params.tracer, params.rank);
  sync_->set_retry_policy(params.retry);
  FlushSchedulerParams flush;
  flush.streams = params.sync_streams;
  flush.coalesce = params.flush_coalesce;
  flush.stripe_unit = params.stripe_unit;
  sync_->set_flush_params(flush);
  if (params.metrics != nullptr) {
    // Instrument resolution mutates the shared registry from every rank's
    // open path; claim the registry monitor for the checker.
    const sim::MonitorGuard monitor(engine, params.metrics,
                                    obs::names::kMetricsMonitor);
    sim::shared_access(engine, params.metrics, obs::names::kMetricsRegistryVar,
                       /*is_write=*/true, E10_SITE);
    writes_counter_ = &params.metrics->counter(obs::names::kCacheWrites);
    bytes_counter_ = &params.metrics->counter(obs::names::kCacheBytes);
    write_hist_ = &params.metrics->histogram(
        obs::names::kCacheWriteBytesHist, obs::exponential_bounds(4096, 14));
  }
}

CacheFile::~CacheFile() {
  // close() must have run inside a simulated process; the destructor only
  // verifies nothing leaked. A still-running sync thread at destruction
  // would deadlock the engine, which surfaces the bug loudly in tests.
}

Status CacheFile::ensure_allocated(Offset needed_end) {
  if (needed_end <= allocated_) return Status::ok();
  // Round the reservation up to the allocation chunk (ADIOI_Cache_alloc).
  const Offset target =
      ((needed_end + params_.alloc_chunk - 1) / params_.alloc_chunk) *
      params_.alloc_chunk;
  const Status s = local_fs_.fallocate(cache_handle_, target);
  if (!s.is_ok()) return s;
  allocated_ = target;
  return Status::ok();
}

void CacheFile::note_device_error(Errc code) {
  if (!is_device_error(code)) return;
  ++consecutive_device_errors_;
  if (degraded_ || consecutive_device_errors_ < params_.quarantine_after) {
    return;
  }
  degraded_ = true;
  log::error("cache", "local device quarantined after ",
             consecutive_device_errors_, " consecutive errors (rank ",
             params_.rank, "); writes fall back to the global file");
  if (params_.metrics != nullptr) {
    const sim::MonitorGuard monitor(engine_, params_.metrics,
                                    obs::names::kMetricsMonitor);
    sim::shared_access(engine_, params_.metrics,
                       obs::names::kMetricsRegistryVar,
                       /*is_write=*/true, E10_SITE);
    params_.metrics->counter(obs::names::kCacheDegraded).increment();
  }
  if (params_.tracer != nullptr && params_.tracer->enabled()) {
    const int track = params_.tracer->track(
        "cache r" + std::to_string(params_.rank) + " " + params_.global_path,
        2000 + params_.rank);
    params_.tracer->instant(track, "cache degraded");
  }
}

bool CacheFile::crash_now(bool in_flush) {
  if (params_.fault == nullptr) return false;
  return params_.fault->crash_due(params_.rank, engine_.now(), in_flush);
}

Status CacheFile::write(const Extent& global, const DataView& data) {
  if (closed_) {
    return Status::error(Errc::invalid_argument, "cache file closed");
  }
  if (crash_now(/*in_flush=*/false)) {
    simulate_crash();
    return Status::error(Errc::unavailable,
                         "cache: simulated crash of rank " +
                             std::to_string(params_.rank));
  }
  if (degraded_) {
    // Quarantined device: fail fast so the caller writes through to the
    // global file instead of queueing more work onto failing media.
    return Status::error(Errc::unavailable,
                         "cache: local device quarantined (rank " +
                             std::to_string(params_.rank) + ")");
  }
  if (global.length != data.size()) {
    return Status::error(Errc::invalid_argument,
                         "cache write: extent/data size mismatch");
  }
  if (data.empty()) return Status::ok();

  if (const Status s = ensure_allocated(append_cursor_ + data.size());
      !s.is_ok()) {
    return s;  // caller falls back to a direct global-file write
  }
  if (params_.coherent) {
    locks_->lock(params_.global_path, global);
  }
  const Offset cache_offset = append_cursor_;
  const Status written = local_fs_.write(cache_handle_, cache_offset, data);
  if (!written.is_ok()) {
    note_device_error(written.code());
    if (params_.coherent) locks_->unlock(params_.global_path, global);
    return written;
  }
  // Journal before the extent becomes visible: an extent the journal does
  // not cover cannot be replayed after a crash, so a failed append fails
  // the cache write and the caller writes through to the global file.
  std::uint64_t seq = 0;
  if (journaling_) {
    const WriteRecord record{next_seq_, global.offset, global.length,
                             cache_offset};
    const Status appended = local_fs_.write(journal_handle_, journal_cursor_,
                                            encode_write_record(record));
    if (!appended.is_ok()) {
      note_device_error(appended.code());
      if (params_.coherent) locks_->unlock(params_.global_path, global);
      return appended;
    }
    seq = next_seq_++;
    journal_cursor_ += kWriteRecordBytes;
  }
  consecutive_device_errors_ = 0;
  append_cursor_ += data.size();
  ++stats_.writes;
  stats_.bytes_cached += data.size();
  if (writes_counter_ != nullptr) {
    writes_counter_->increment();
    bytes_counter_->add(data.size());
    write_hist_->observe(data.size());
  }

  // Update the layout map; this write shadows any older overlapping entry.
  E10_SHARED_WRITE(extent_map_var_);
  apply_extent(extent_map_, global, cache_offset, seq);

  if (params_.flush == FlushPolicy::none) {
    // Theoretical-bandwidth mode: data stays in the cache.
    if (params_.coherent) locks_->unlock(params_.global_path, global);
    return Status::ok();
  }

  SyncRequest request;
  request.global = global;
  request.cache_offset = cache_offset;
  request.seq = seq;
  request.grequest = mpi::Request::grequest(engine_);
  request.release_lock = params_.coherent;
  outstanding_.push_back(request.grequest);
  if (params_.flush == FlushPolicy::immediate) {
    sync_->enqueue(std::move(request));
  } else {
    deferred_.push_back(std::move(request));
  }
  return Status::ok();
}

Result<Time> CacheFile::iwrite(const Extent& global, const DataView& data) {
  if (closed_) {
    return Status::error(Errc::invalid_argument, "cache file closed");
  }
  if (crash_now(/*in_flush=*/false)) {
    simulate_crash();
    return Status::error(Errc::unavailable,
                         "cache: simulated crash of rank " +
                             std::to_string(params_.rank));
  }
  if (degraded_) {
    return Status::error(Errc::unavailable,
                         "cache: local device quarantined (rank " +
                             std::to_string(params_.rank) + ")");
  }
  if (global.length != data.size()) {
    return Status::error(Errc::invalid_argument,
                         "cache write: extent/data size mismatch");
  }
  if (data.empty()) return engine_.now();

  if (const Status s = ensure_allocated(append_cursor_ + data.size());
      !s.is_ok()) {
    return s;  // caller falls back to a direct global-file write
  }
  if (params_.coherent) {
    locks_->lock(params_.global_path, global);
  }
  const Offset cache_offset = append_cursor_;
  const auto written = local_fs_.write_async(cache_handle_, cache_offset, data);
  if (!written.is_ok()) {
    note_device_error(written.status().code());
    if (params_.coherent) locks_->unlock(params_.global_path, global);
    return written.status();
  }
  Time completion = written.value();
  // Journal before the extent becomes visible (same rule as write()); the
  // sidecar append shares the device's FIFO timeline, so the completion
  // time covers both the data and its journal record.
  std::uint64_t seq = 0;
  if (journaling_) {
    const WriteRecord record{next_seq_, global.offset, global.length,
                             cache_offset};
    const auto appended = local_fs_.write_async(
        journal_handle_, journal_cursor_, encode_write_record(record));
    if (!appended.is_ok()) {
      note_device_error(appended.status().code());
      if (params_.coherent) locks_->unlock(params_.global_path, global);
      return appended.status();
    }
    completion = std::max(completion, appended.value());
    seq = next_seq_++;
    journal_cursor_ += kWriteRecordBytes;
  }
  consecutive_device_errors_ = 0;
  append_cursor_ += data.size();
  ++stats_.writes;
  stats_.bytes_cached += data.size();
  if (writes_counter_ != nullptr) {
    writes_counter_->increment();
    bytes_counter_->add(data.size());
    write_hist_->observe(data.size());
  }

  E10_SHARED_WRITE(extent_map_var_);
  apply_extent(extent_map_, global, cache_offset, seq);

  if (params_.flush == FlushPolicy::none) {
    if (params_.coherent) locks_->unlock(params_.global_path, global);
    return completion;
  }

  SyncRequest request;
  request.global = global;
  request.cache_offset = cache_offset;
  request.seq = seq;
  request.grequest = mpi::Request::grequest(engine_);
  request.release_lock = params_.coherent;
  outstanding_.push_back(request.grequest);
  if (params_.flush == FlushPolicy::immediate) {
    sync_->enqueue(std::move(request));
  } else {
    deferred_.push_back(std::move(request));
  }
  return completion;
}

std::optional<DataView> CacheFile::try_read(const Extent& global) {
  if (closed_ || degraded_ || global.empty()) return std::nullopt;
  // Collect the cache locations covering [global.offset, global.end());
  // bail out on the first gap.
  E10_SHARED_READ(extent_map_var_);
  std::vector<std::pair<Offset, Offset>> runs;  // (cache offset, length)
  Offset cursor = global.offset;
  auto it = extent_map_.lower_bound(cursor);
  if (it != extent_map_.begin()) {
    auto prev = std::prev(it);
    if (prev->offset + prev->extent.length > cursor) it = prev;
  }
  while (cursor < global.end()) {
    if (it == extent_map_.end() || it->offset > cursor) {
      ++stats_.read_misses;
      return std::nullopt;  // gap: extent not fully cached
    }
    const Offset skip = cursor - it->offset;
    const Offset take =
        std::min(global.end(), it->offset + it->extent.length) - cursor;
    runs.emplace_back(it->extent.cache_offset + skip, take);
    cursor += take;
    ++it;
  }
  std::vector<DataView> parts;
  parts.reserve(runs.size());
  for (const auto& [cache_off, len] : runs) {
    auto piece = local_fs_.read(cache_handle_, cache_off, len);
    if (!piece.is_ok() || piece.value().size() != len) {
      ++stats_.read_misses;
      return std::nullopt;
    }
    parts.push_back(std::move(piece).value());
  }
  ++stats_.read_hits;
  stats_.bytes_read_from_cache += global.length;
  return DataView::concat(parts);
}

Status CacheFile::flush() {
  if (closed_) return Status::ok();
  if (crash_now(/*in_flush=*/true)) {
    simulate_crash();
    return Status::error(Errc::unavailable,
                         "cache: rank " + std::to_string(params_.rank) +
                             " crashed during flush");
  }
  for (SyncRequest& request : deferred_) {
    sync_->enqueue(std::move(request));
  }
  deferred_.clear();
  mpi::Request::wait_all(outstanding_);
  outstanding_.clear();
  // Abandoned extents completed their grequests (so the wait above cannot
  // hang) but never became durable; surface each batch exactly once. The
  // worker may still be running, so go through the locked accessor.
  const std::uint64_t abandoned = sync_->abandoned_count();
  if (abandoned > reported_abandoned_) {
    const std::uint64_t lost = abandoned - reported_abandoned_;
    reported_abandoned_ = abandoned;
    return Status::error(Errc::io_error,
                         "cache: " + std::to_string(lost) +
                             " extent(s) could not be made durable");
  }
  return Status::ok();
}

Status CacheFile::close() {
  if (closed_) return Status::ok();
  Status first = flush();
  if (closed_) return first;  // the flush hit a crash spec; already torn down
  // A flush error (abandoned extents) must not leak the sync thread or the
  // handles — teardown always runs, the first error is reported.
  sync_->shutdown_and_join();
  const auto keep_first = [&first](const Status& s) {
    if (first.is_ok() && !s.is_ok()) first = s;
  };
  keep_first(local_fs_.close(cache_handle_));
  if (journaling_) {
    keep_first(local_fs_.close(journal_handle_));
    keep_first(local_fs_.close(commits_handle_));
  }
  closed_ = true;
  if (params_.discard) {
    keep_first(local_fs_.unlink(params_.cache_path));
    if (journaling_) {
      keep_first(local_fs_.unlink(journal_path(params_.cache_path)));
      keep_first(local_fs_.unlink(commits_path(params_.cache_path)));
    }
  }
  return first;
}

void CacheFile::simulate_crash() {
  if (closed_) return;
  log::error("cache", "simulating crash of rank ", params_.rank, " (",
             params_.cache_path, " survives on the local device)");
  // The worker stops doing I/O and only completes/releases what is queued;
  // never-dispatched deferred requests are completed here for the same
  // reason — nothing may block on a dead rank.
  sync_->cancel_drain_and_join();
  for (SyncRequest& request : deferred_) {
    if (request.release_lock && locks_ != nullptr) {
      locks_->unlock(params_.global_path, request.global);
    }
    if (request.grequest.valid()) request.grequest.complete();
  }
  deferred_.clear();
  mpi::Request::wait_all(outstanding_);
  outstanding_.clear();
  // Handles die with the process; the files themselves survive on the
  // non-volatile device — that is the paper's whole durability argument.
  (void)local_fs_.close(cache_handle_);
  if (journaling_) {
    (void)local_fs_.close(journal_handle_);
    (void)local_fs_.close(commits_handle_);
  }
  E10_SHARED_WRITE(extent_map_var_);
  extent_map_.clear();
  closed_ = true;
  crashed_ = true;
  if (params_.tracer != nullptr && params_.tracer->enabled()) {
    const int track = params_.tracer->track(
        "cache r" + std::to_string(params_.rank) + " " + params_.global_path,
        2000 + params_.rank);
    params_.tracer->instant(track, "rank crash");
  }
}

Result<RecoveryReport> CacheFile::recover(lfs::LocalFs& local_fs,
                                          pfs::Pfs& pfs,
                                          pfs::FileHandle global_handle,
                                          const std::string& cache_path,
                                          obs::MetricsRegistry* metrics) {
  RecoveryReport report;
  const std::string journal = journal_path(cache_path);
  const std::string commits = commits_path(cache_path);
  if (!local_fs.exists(journal)) {
    // Nothing journaled, nothing to replay (also the clean-shutdown case
    // where close() already unlinked the sidecars).
    return report;
  }

  // Scan the write journal. A crash can truncate the tail mid-record;
  // scan_write_records keeps everything before the damage.
  auto journal_handle = local_fs.open(journal, /*create=*/false);
  if (!journal_handle.is_ok()) return journal_handle.status();
  std::vector<WriteRecord> records;
  {
    const auto size = local_fs.file_size(journal_handle.value());
    if (!size.is_ok()) {
      (void)local_fs.close(journal_handle.value());
      return size.status();
    }
    auto bytes = local_fs.read(journal_handle.value(), 0, size.value());
    (void)local_fs.close(journal_handle.value());
    if (!bytes.is_ok()) return bytes.status();
    records = scan_write_records(bytes.value());
    // A crash can interrupt an append mid-record: a torn or truncated tail
    // is expected damage, not a recovery failure. Everything before it is
    // intact (records are fixed-size and appended in order) — warn and
    // replay what survived.
    const Offset parsed =
        static_cast<Offset>(records.size()) * kWriteRecordBytes;
    if (parsed < size.value()) {
      log::warn("cache", "recover: ignoring ", size.value() - parsed,
                " trailing byte(s) of torn journal record in ", journal,
                " (crash mid-append); replaying the ", records.size(),
                " intact record(s)");
    }
  }
  report.journal_records = records.size();
  if (records.empty()) return report;

  // Committed seqs reached the global file before the crash; replaying
  // them would be harmless (idempotent) but pointless.
  std::set<std::uint64_t> committed;
  if (local_fs.exists(commits)) {
    auto commits_handle = local_fs.open(commits, /*create=*/false);
    if (commits_handle.is_ok()) {
      const auto size = local_fs.file_size(commits_handle.value());
      if (size.is_ok()) {
        auto bytes = local_fs.read(commits_handle.value(), 0, size.value());
        if (bytes.is_ok()) {
          const std::vector<std::uint64_t> seqs =
              scan_commit_records(bytes.value());
          // Same tolerance as the write journal: a torn trailing commit
          // record only means one extra (idempotent) replay.
          const Offset parsed =
              static_cast<Offset>(seqs.size()) * kCommitRecordBytes;
          if (parsed < size.value()) {
            log::warn("cache", "recover: ignoring ", size.value() - parsed,
                      " trailing byte(s) of torn commit record in ", commits);
          }
          for (std::uint64_t seq : seqs) committed.insert(seq);
        }
      }
      (void)local_fs.close(commits_handle.value());
    }
  }
  report.committed = committed.size();

  // Rebuild the extent map with the live path's shadowing rules, then push
  // every surviving fragment of an uncommitted write back to the PFS.
  ExtentMap map;
  for (const WriteRecord& record : records) {
    apply_extent(map, Extent{record.global_offset, record.length},
                 record.cache_offset, record.seq);
  }
  auto cache_handle = local_fs.open(cache_path, /*create=*/false);
  if (!cache_handle.is_ok()) return cache_handle.status();
  Status failed = Status::ok();
  for (const auto& [global_offset, extent] : map) {
    if (committed.contains(extent.seq)) continue;
    auto data =
        local_fs.read(cache_handle.value(), extent.cache_offset, extent.length);
    if (!data.is_ok()) {
      failed = data.status();
      break;
    }
    if (data.value().size() != extent.length) {
      failed = Status::error(Errc::io_error,
                             "recover: cache file shorter than journal");
      break;
    }
    const Status synced =
        pfs.write_durable(global_handle, global_offset, data.value());
    if (!synced.is_ok()) {
      failed = synced;
      break;
    }
    ++report.replayed_extents;
    report.replayed_bytes += extent.length;
  }
  (void)local_fs.close(cache_handle.value());
  if (!failed.is_ok()) return failed;
  log::info("cache", "recovered ", cache_path, ": replayed ",
            report.replayed_extents, " extent(s), ", report.replayed_bytes,
            " bytes (", report.committed, " of ", report.journal_records,
            " records were already durable)");
  if (metrics != nullptr) {
    metrics->counter(obs::names::kCacheRecoveredExtents)
        .add(static_cast<std::int64_t>(report.replayed_extents));
    metrics->counter(obs::names::kCacheRecoveredBytes)
        .add(report.replayed_bytes);
  }
  return report;
}

}  // namespace e10::cache
