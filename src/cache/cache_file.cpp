#include "cache/cache_file.h"

#include <algorithm>
#include <stdexcept>

namespace e10::cache {

Result<std::unique_ptr<CacheFile>> CacheFile::open(
    sim::Engine& engine, lfs::LocalFs& local_fs, pfs::Pfs& pfs,
    pfs::FileHandle global_handle, const CacheFileParams& params,
    LockTable* locks) {
  if (params.coherent && params.flush == FlushPolicy::none) {
    return Status::error(Errc::invalid_argument,
                         "coherent cache requires a flush policy");
  }
  if (params.coherent && locks == nullptr) {
    return Status::error(Errc::invalid_argument,
                         "coherent cache requires a lock table");
  }
  const auto handle =
      local_fs.open(params.cache_path, /*create=*/true, /*truncate=*/true);
  if (!handle.is_ok()) return handle.status();

  std::unique_ptr<CacheFile> cache(new CacheFile(
      engine, local_fs, pfs, global_handle, params, locks, handle.value()));
  cache->sync_->start();
  return cache;
}

CacheFile::CacheFile(sim::Engine& engine, lfs::LocalFs& local_fs,
                     pfs::Pfs& pfs, pfs::FileHandle global_handle,
                     const CacheFileParams& params, LockTable* locks,
                     lfs::FileHandle cache_handle)
    : engine_(engine),
      local_fs_(local_fs),
      params_(params),
      locks_(locks),
      cache_handle_(cache_handle) {
  sync_ = std::make_unique<SyncThread>(
      engine, local_fs, cache_handle, pfs, global_handle, params.global_path,
      params.staging_bytes, locks);
  sync_->set_observability(params.metrics, params.tracer, params.rank);
  if (params.metrics != nullptr) {
    writes_counter_ = &params.metrics->counter(obs::names::kCacheWrites);
    bytes_counter_ = &params.metrics->counter(obs::names::kCacheBytes);
    write_hist_ = &params.metrics->histogram(
        obs::names::kCacheWriteBytesHist, obs::exponential_bounds(4096, 14));
  }
}

CacheFile::~CacheFile() {
  // close() must have run inside a simulated process; the destructor only
  // verifies nothing leaked. A still-running sync thread at destruction
  // would deadlock the engine, which surfaces the bug loudly in tests.
}

Status CacheFile::ensure_allocated(Offset needed_end) {
  if (needed_end <= allocated_) return Status::ok();
  // Round the reservation up to the allocation chunk (ADIOI_Cache_alloc).
  const Offset target =
      ((needed_end + params_.alloc_chunk - 1) / params_.alloc_chunk) *
      params_.alloc_chunk;
  const Status s = local_fs_.fallocate(cache_handle_, target);
  if (!s.is_ok()) return s;
  allocated_ = target;
  return Status::ok();
}

Status CacheFile::write(const Extent& global, const DataView& data) {
  if (closed_) {
    return Status::error(Errc::invalid_argument, "cache file closed");
  }
  if (global.length != data.size()) {
    return Status::error(Errc::invalid_argument,
                         "cache write: extent/data size mismatch");
  }
  if (data.empty()) return Status::ok();

  if (const Status s = ensure_allocated(append_cursor_ + data.size());
      !s.is_ok()) {
    return s;  // caller falls back to a direct global-file write
  }
  if (params_.coherent) {
    locks_->lock(params_.global_path, global);
  }
  const Offset cache_offset = append_cursor_;
  const Status written = local_fs_.write(cache_handle_, cache_offset, data);
  if (!written.is_ok()) {
    if (params_.coherent) locks_->unlock(params_.global_path, global);
    return written;
  }
  append_cursor_ += data.size();
  ++stats_.writes;
  stats_.bytes_cached += data.size();
  if (writes_counter_ != nullptr) {
    writes_counter_->increment();
    bytes_counter_->add(data.size());
    write_hist_->observe(data.size());
  }

  // Update the layout map; this write shadows any older overlapping entry.
  {
    auto it = extent_map_.lower_bound(global.offset);
    if (it != extent_map_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.second > global.offset) it = prev;
    }
    while (it != extent_map_.end() && it->first < global.end()) {
      const Offset start = it->first;
      const auto [cache_off, len] = it->second;
      it = extent_map_.erase(it);
      if (start < global.offset) {
        extent_map_.emplace(start,
                            std::make_pair(cache_off, global.offset - start));
      }
      if (start + len > global.end()) {
        extent_map_.emplace(
            global.end(),
            std::make_pair(cache_off + (global.end() - start),
                           start + len - global.end()));
      }
    }
    extent_map_.emplace(global.offset,
                        std::make_pair(cache_offset, global.length));
  }

  if (params_.flush == FlushPolicy::none) {
    // Theoretical-bandwidth mode: data stays in the cache.
    if (params_.coherent) locks_->unlock(params_.global_path, global);
    return Status::ok();
  }

  SyncRequest request;
  request.global = global;
  request.cache_offset = cache_offset;
  request.grequest = mpi::Request::grequest(engine_);
  request.release_lock = params_.coherent;
  outstanding_.push_back(request.grequest);
  if (params_.flush == FlushPolicy::immediate) {
    sync_->enqueue(std::move(request));
  } else {
    deferred_.push_back(std::move(request));
  }
  return Status::ok();
}

std::optional<DataView> CacheFile::try_read(const Extent& global) {
  if (closed_ || global.empty()) return std::nullopt;
  // Collect the cache locations covering [global.offset, global.end());
  // bail out on the first gap.
  std::vector<std::pair<Offset, Offset>> runs;  // (cache offset, length)
  Offset cursor = global.offset;
  auto it = extent_map_.lower_bound(cursor);
  if (it != extent_map_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.second > cursor) it = prev;
  }
  while (cursor < global.end()) {
    if (it == extent_map_.end() || it->first > cursor) {
      ++stats_.read_misses;
      return std::nullopt;  // gap: extent not fully cached
    }
    const Offset skip = cursor - it->first;
    const Offset take =
        std::min(global.end(), it->first + it->second.second) - cursor;
    runs.emplace_back(it->second.first + skip, take);
    cursor += take;
    ++it;
  }
  std::vector<DataView> parts;
  parts.reserve(runs.size());
  for (const auto& [cache_off, len] : runs) {
    auto piece = local_fs_.read(cache_handle_, cache_off, len);
    if (!piece.is_ok() || piece.value().size() != len) {
      ++stats_.read_misses;
      return std::nullopt;
    }
    parts.push_back(std::move(piece).value());
  }
  ++stats_.read_hits;
  stats_.bytes_read_from_cache += global.length;
  return DataView::concat(parts);
}

Status CacheFile::flush() {
  if (closed_) return Status::ok();
  for (SyncRequest& request : deferred_) {
    sync_->enqueue(std::move(request));
  }
  deferred_.clear();
  mpi::Request::wait_all(outstanding_);
  outstanding_.clear();
  return Status::ok();
}

Status CacheFile::close() {
  if (closed_) return Status::ok();
  if (const Status s = flush(); !s.is_ok()) return s;
  sync_->shutdown_and_join();
  const Status closed = local_fs_.close(cache_handle_);
  if (!closed.is_ok()) return closed;
  if (params_.discard) {
    if (const Status s = local_fs_.unlink(params_.cache_path); !s.is_ok()) {
      return s;
    }
  }
  closed_ = true;
  return Status::ok();
}

}  // namespace e10::cache
