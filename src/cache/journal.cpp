#include "cache/journal.h"

#include <stdexcept>
#include <string>

namespace e10::cache {
namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xff));
  }
}

std::uint64_t get_u64(const DataView& bytes, Offset at) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes.byte_at(at + i)) << (8 * i);
  }
  return value;
}

}  // namespace

DataView encode_write_record(const WriteRecord& record) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(kWriteRecordBytes));
  put_u64(out, kWriteRecordMagic);
  put_u64(out, record.seq);
  put_u64(out, static_cast<std::uint64_t>(record.global_offset));
  put_u64(out, static_cast<std::uint64_t>(record.length));
  put_u64(out, static_cast<std::uint64_t>(record.cache_offset));
  return DataView::real(std::move(out));
}

DataView encode_commit_record(std::uint64_t seq) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(kCommitRecordBytes));
  put_u64(out, kCommitRecordMagic);
  put_u64(out, seq);
  return DataView::real(std::move(out));
}

std::vector<WriteRecord> scan_write_records(const DataView& bytes) {
  std::vector<WriteRecord> records;
  for (Offset at = 0; at + kWriteRecordBytes <= bytes.size();
       at += kWriteRecordBytes) {
    if (get_u64(bytes, at) != kWriteRecordMagic) break;
    WriteRecord record;
    record.seq = get_u64(bytes, at + 8);
    record.global_offset = static_cast<Offset>(get_u64(bytes, at + 16));
    record.length = static_cast<Offset>(get_u64(bytes, at + 24));
    record.cache_offset = static_cast<Offset>(get_u64(bytes, at + 32));
    records.push_back(record);
  }
  return records;
}

std::vector<std::uint64_t> scan_commit_records(const DataView& bytes) {
  std::vector<std::uint64_t> seqs;
  for (Offset at = 0; at + kCommitRecordBytes <= bytes.size();
       at += kCommitRecordBytes) {
    if (get_u64(bytes, at) != kCommitRecordMagic) break;
    seqs.push_back(get_u64(bytes, at + 8));
  }
  return seqs;
}

const CacheExtent& ExtentMap::at(Offset offset) const {
  const const_iterator it = lower_bound(offset);
  if (it == entries_.end() || it->offset != offset) {
    throw std::out_of_range("ExtentMap::at: no extent starts at offset " +
                            std::to_string(offset));
  }
  return it->extent;
}

void apply_extent(ExtentMap& map, const Extent& global, Offset cache_offset,
                  std::uint64_t seq) {
  std::vector<ExtentMap::Entry>& entries = map.entries_;
  auto first = std::lower_bound(
      entries.begin(), entries.end(), global.offset,
      [](const ExtentMap::Entry& e, Offset o) { return e.offset < o; });
  if (first != entries.begin()) {
    const auto prev = std::prev(first);
    if (prev->offset + prev->extent.length > global.offset) first = prev;
  }

  // Entries are non-overlapping, so only the first overlapped entry can
  // stick out on the left and only the last one on the right; everything
  // between is fully shadowed. Collect the surviving fragments, then
  // replace the whole overlapped run [first, last) in one splice.
  ExtentMap::Entry replacement[3];
  std::size_t n = 0;
  auto last = first;
  while (last != entries.end() && last->offset < global.end()) {
    const Offset start = last->offset;
    const CacheExtent& old = last->extent;
    if (start < global.offset) {
      replacement[n++] = ExtentMap::Entry{
          start,
          CacheExtent{old.cache_offset, global.offset - start, old.seq}};
    }
    ++last;
  }
  replacement[n++] = ExtentMap::Entry{
      global.offset, CacheExtent{cache_offset, global.length, seq}};
  if (last != first) {
    const ExtentMap::Entry& back = *std::prev(last);
    if (back.offset + back.extent.length > global.end()) {
      replacement[n++] = ExtentMap::Entry{
          global.end(),
          CacheExtent{back.extent.cache_offset + (global.end() - back.offset),
                      back.offset + back.extent.length - global.end(),
                      back.extent.seq}};
    }
  }

  const auto overlapped = static_cast<std::size_t>(last - first);
  if (overlapped >= n) {
    std::copy(replacement, replacement + n, first);
    entries.erase(first + static_cast<std::ptrdiff_t>(n), last);
  } else {
    std::copy(replacement, replacement + overlapped, first);
    entries.insert(last, replacement + overlapped, replacement + n);
  }
}

}  // namespace e10::cache
