#include "cache/journal.h"

namespace e10::cache {
namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xff));
  }
}

std::uint64_t get_u64(const DataView& bytes, Offset at) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes.byte_at(at + i)) << (8 * i);
  }
  return value;
}

}  // namespace

DataView encode_write_record(const WriteRecord& record) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(kWriteRecordBytes));
  put_u64(out, kWriteRecordMagic);
  put_u64(out, record.seq);
  put_u64(out, static_cast<std::uint64_t>(record.global_offset));
  put_u64(out, static_cast<std::uint64_t>(record.length));
  put_u64(out, static_cast<std::uint64_t>(record.cache_offset));
  return DataView::real(std::move(out));
}

DataView encode_commit_record(std::uint64_t seq) {
  std::vector<std::byte> out;
  out.reserve(static_cast<std::size_t>(kCommitRecordBytes));
  put_u64(out, kCommitRecordMagic);
  put_u64(out, seq);
  return DataView::real(std::move(out));
}

std::vector<WriteRecord> scan_write_records(const DataView& bytes) {
  std::vector<WriteRecord> records;
  for (Offset at = 0; at + kWriteRecordBytes <= bytes.size();
       at += kWriteRecordBytes) {
    if (get_u64(bytes, at) != kWriteRecordMagic) break;
    WriteRecord record;
    record.seq = get_u64(bytes, at + 8);
    record.global_offset = static_cast<Offset>(get_u64(bytes, at + 16));
    record.length = static_cast<Offset>(get_u64(bytes, at + 24));
    record.cache_offset = static_cast<Offset>(get_u64(bytes, at + 32));
    records.push_back(record);
  }
  return records;
}

std::vector<std::uint64_t> scan_commit_records(const DataView& bytes) {
  std::vector<std::uint64_t> seqs;
  for (Offset at = 0; at + kCommitRecordBytes <= bytes.size();
       at += kCommitRecordBytes) {
    if (get_u64(bytes, at) != kCommitRecordMagic) break;
    seqs.push_back(get_u64(bytes, at + 8));
  }
  return seqs;
}

void apply_extent(ExtentMap& map, const Extent& global, Offset cache_offset,
                  std::uint64_t seq) {
  auto it = map.lower_bound(global.offset);
  if (it != map.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > global.offset) it = prev;
  }
  while (it != map.end() && it->first < global.end()) {
    const Offset start = it->first;
    const CacheExtent old = it->second;
    it = map.erase(it);
    if (start < global.offset) {
      map.emplace(start,
                  CacheExtent{old.cache_offset, global.offset - start,
                              old.seq});
    }
    if (start + old.length > global.end()) {
      map.emplace(global.end(),
                  CacheExtent{old.cache_offset + (global.end() - start),
                              start + old.length - global.end(), old.seq});
    }
  }
  map.emplace(global.offset, CacheExtent{cache_offset, global.length, seq});
}

}  // namespace e10::cache
