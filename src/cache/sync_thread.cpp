#include "cache/sync_thread.h"

#include <algorithm>
#include <stdexcept>

#include "cache/journal.h"
#include "common/log.h"

namespace e10::cache {

SyncThread::SyncThread(sim::Engine& engine, lfs::LocalFs& local_fs,
                       lfs::FileHandle cache_handle, pfs::Pfs& pfs,
                       pfs::FileHandle global_handle, std::string global_path,
                       Offset staging_bytes, LockTable* locks)
    : engine_(engine),
      local_fs_(local_fs),
      cache_handle_(cache_handle),
      pfs_(pfs),
      global_handle_(global_handle),
      global_path_(std::move(global_path)),
      staging_bytes_(staging_bytes),
      locks_(locks),
      inbox_(engine),
      stats_mutex_(engine, "cache.sync.stats_mutex:" + global_path_),
      stats_var_(engine, "cache.sync.stats:" + global_path_),
      inbox_var_(engine, "cache.sync.inbox:" + global_path_),
      inbox_monitor_name_("cache.sync.inbox.monitor:" + global_path_) {
  if (staging_bytes_ <= 0) {
    throw std::logic_error("SyncThread: staging buffer must be > 0");
  }
}

void SyncThread::set_observability(obs::MetricsRegistry* metrics,
                                   obs::Tracer* tracer, int rank) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: set_observability after start");
  }
  metrics_ = metrics;
  tracer_ = tracer;
  rank_ = rank;
}

void SyncThread::set_retry_policy(const RetryPolicy& policy) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: set_retry_policy after start");
  }
  if (policy.max_attempts < 1 || policy.max_requeues < 0 ||
      policy.backoff_base < 0 || policy.backoff_cap < policy.backoff_base ||
      policy.jitter < 0.0) {
    throw std::logic_error("SyncThread: bad retry policy");
  }
  retry_ = policy;
}

void SyncThread::set_flush_params(const FlushSchedulerParams& params) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: set_flush_params after start");
  }
  if (params.streams < 1 || params.stripe_unit < 0) {
    throw std::logic_error("SyncThread: bad flush-scheduler params");
  }
  flush_params_ = params;
}

void SyncThread::enable_commit_journal(lfs::FileHandle commits_handle) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: enable_commit_journal after start");
  }
  commit_journal_ = true;
  commits_handle_ = commits_handle;
}

void SyncThread::start() {
  if (handle_.valid()) throw std::logic_error("SyncThread already started");
  backoff_rng_ = std::make_unique<Rng>(Rng::derive(
      Rng::derive(static_cast<std::uint64_t>(rank_), global_path_),
      "sync-backoff"));
  FlushSchedulerParams params = flush_params_;
  params.staging_bytes = staging_bytes_;
  scheduler_ = std::make_unique<FlushScheduler>(engine_, local_fs_,
                                                cache_handle_, pfs_,
                                                global_handle_, global_path_,
                                                params);
  handle_ = engine_.spawn("sync:" + global_path_, [this] { run(); });
}

void SyncThread::note_queue_depth(std::size_t depth) {
  {
    const sim::SimLock lock(stats_mutex_);
    E10_SHARED_WRITE(stats_var_);
    stats_.queue_depth_high_water =
        std::max(stats_.queue_depth_high_water,
                 static_cast<std::uint64_t>(depth));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->counter("sync queue depth (rank " + std::to_string(rank_) + ")",
                     static_cast<std::int64_t>(depth));
  }
}

void SyncThread::enqueue(SyncRequest request) {
  if (!handle_.valid()) throw std::logic_error("SyncThread not started");
  // The enqueue is the causal source of the drain that services it.
  if (sim::CausalObserver* causal = engine_.causal_observer();
      causal != nullptr && engine_.in_process()) {
    request.cause = causal->emit(sim::EdgeKind::sync_queue, engine_.current(),
                                 engine_.now());
  }
  std::size_t depth = 0;
  {
    const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
    E10_SHARED_WRITE(inbox_var_);
    inbox_.send(std::move(request));
    depth = inbox_.size();
  }
  note_queue_depth(depth);
}

SyncStats SyncThread::stats_snapshot() {
  const sim::SimLock lock(stats_mutex_);
  E10_SHARED_READ(stats_var_);
  return stats_;
}

std::uint64_t SyncThread::abandoned_count() {
  const sim::SimLock lock(stats_mutex_);
  E10_SHARED_READ(stats_var_);
  return stats_.abandoned;
}

void SyncThread::fold_stats_and_join() {
  {
    const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
    E10_SHARED_WRITE(inbox_var_);
    SyncRequest sentinel;
    sentinel.shutdown = true;
    inbox_.send(std::move(sentinel));
  }
  handle_.join();
  handle_ = sim::ProcessHandle();
  if (metrics_ != nullptr) {
    const SyncStats totals = stats_snapshot();
    // Fold this thread's totals into the shared registry; gauges keep the
    // max across threads via their high-water mark. The registry itself is
    // engine-atomic shared state: claim its monitor for the checker.
    const sim::MonitorGuard monitor(engine_, metrics_,
                                    obs::names::kMetricsMonitor);
    sim::shared_access(engine_, metrics_, obs::names::kMetricsRegistryVar,
                       /*is_write=*/true, E10_SITE);
    namespace names = obs::names;
    metrics_->counter(names::kSyncRequests)
        .add(static_cast<std::int64_t>(totals.requests));
    metrics_->counter(names::kSyncBytes).add(totals.bytes_synced);
    metrics_->counter(names::kSyncChunks)
        .add(static_cast<std::int64_t>(totals.staging_chunks));
    metrics_->counter(names::kSyncRetries)
        .add(static_cast<std::int64_t>(totals.retries));
    metrics_->counter(names::kSyncRequeues)
        .add(static_cast<std::int64_t>(totals.requeues));
    metrics_->counter(names::kSyncAbandoned)
        .add(static_cast<std::int64_t>(totals.abandoned));
    metrics_->counter(names::kSyncBusyNs).add(totals.busy_time);
    metrics_->gauge(names::kSyncQueueDepth)
        .set(static_cast<std::int64_t>(totals.queue_depth_high_water));
    // Flush-scheduler totals: coalescing shape and the stream window's
    // write/hidden/stall split (docs/flush_scheduler.md).
    const FlushSchedulerStats& sched = scheduler_->stats();
    const sim::OverlapAccumulator& window = scheduler_->overlap();
    metrics_->counter(names::kSyncBatches)
        .add(static_cast<std::int64_t>(sched.batches));
    metrics_->counter(names::kSyncBatchMembers)
        .add(static_cast<std::int64_t>(sched.members));
    metrics_->counter(names::kSyncDispatches)
        .add(static_cast<std::int64_t>(sched.dispatches));
    metrics_->counter(names::kSyncStreamWriteNs).add(window.service_time());
    metrics_->counter(names::kSyncStreamHiddenNs).add(window.hidden_time());
    metrics_->counter(names::kSyncStreamStalls)
        .add(static_cast<std::int64_t>(window.stalls()));
    metrics_->counter(names::kSyncStreamStallNs).add(window.stall_time());
    metrics_->gauge(names::kSyncStreamInflight)
        .set(static_cast<std::int64_t>(sched.inflight_high_water));
  }
}

void SyncThread::shutdown_and_join() {
  if (!handle_.valid()) return;
  fold_stats_and_join();
}

void SyncThread::cancel_drain_and_join() {
  if (!handle_.valid()) return;
  cancelled_ = true;
  fold_stats_and_join();
}

SyncThread::Gather SyncThread::gather_batch(std::vector<SyncRequest>& batch,
                                            bool may_block) {
  SyncRequest first;
  if (pending_.has_value()) {
    first = std::move(*pending_);
    pending_.reset();
  } else if (shutdown_seen_ || !may_block) {
    // After the sentinel only requeued work can still be queued; with
    // deferred completions outstanding the caller must not block either —
    // either way, drain what is there without waiting.
    std::optional<SyncRequest> next;
    {
      const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
      E10_SHARED_WRITE(inbox_var_);
      next = inbox_.try_recv();
    }
    if (!next.has_value()) {
      return shutdown_seen_ ? Gather::kShutdown : Gather::kEmpty;
    }
    if (next->shutdown) return Gather::kShutdown;
    first = std::move(*next);
  } else {
    const Time before = engine_.now();
    first = [this] {
      // The monitor is claimed across the (possibly blocking) recv — the
      // classic condition-wait-inside-monitor shape; see concurrency.h.
      const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
      E10_SHARED_WRITE(inbox_var_);
      return inbox_.recv();
    }();
    // The idle inbox wait ended because this request was enqueued.
    if (sim::CausalObserver* causal = engine_.causal_observer();
        causal != nullptr && first.cause != 0 && engine_.now() > before) {
      causal->ack(first.cause, engine_.current(), engine_.now());
    }
    if (first.shutdown) return Gather::kShutdown;
  }
  batch.push_back(std::move(first));

  // The cancelled drain does no I/O, so there is nothing to coalesce.
  if (!scheduler_->params().coalesce || cancelled_) return Gather::kBatch;

  // Request aggregation: pull everything already queued into the batch, as
  // long as its remaining extent does not overlap the batch's coverage. An
  // overlapping request must dispatch *after* this batch (later writes
  // shadow earlier ones in queue order), so it parks in pending_ and seeds
  // the next batch.
  ExtentList coverage;
  coverage.add(batch.front().remaining());
  while (batch.size() < scheduler_->params().max_batch) {
    std::optional<SyncRequest> next;
    {
      const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
      E10_SHARED_WRITE(inbox_var_);
      next = inbox_.try_recv();
    }
    if (!next.has_value()) break;
    if (next->shutdown) {
      shutdown_seen_ = true;
      break;
    }
    if (!coverage.clipped_to(next->remaining()).empty()) {
      pending_ = std::move(next);
      break;
    }
    coverage.add(next->remaining());
    coverage.coalesce();
    batch.push_back(std::move(*next));
  }
  return Gather::kBatch;
}

void SyncThread::reap_deferred() {
  while (!deferred_.empty() &&
         deferred_.front().done_time <= engine_.now()) {
    for (SyncRequest& member : deferred_.front().members) {
      finish_member(member, /*durable=*/true);
    }
    deferred_.pop_front();
  }
}

void SyncThread::finalize_deferred() {
  if (deferred_.empty()) return;
  const Time before = engine_.now();
  Time last = 0;
  for (const DeferredBatch& batch : deferred_) {
    last = std::max(last, batch.done_time);
  }
  if (last > before) {
    engine_.advance_to(last);
    // Waiting the batches out gated this lane: record each one actually
    // waited on as an async service bridge (issue -> media-durable).
    if (sim::CausalObserver* causal = engine_.causal_observer();
        causal != nullptr) {
      for (const DeferredBatch& batch : deferred_) {
        if (batch.done_time > before) {
          causal->bridge(sim::EdgeKind::batch_done, engine_.current(),
                         batch.issued, batch.done_time);
        }
      }
    }
  }
  reap_deferred();
}

void SyncThread::finish_member(SyncRequest& member, bool durable) {
  if (durable && commit_journal_ && member.seq != 0) {
    const Status committed = local_fs_.write(
        commits_handle_, commits_cursor_, encode_commit_record(member.seq));
    if (committed.is_ok()) {
      commits_cursor_ += kCommitRecordBytes;
    } else {
      // A missed commit only means recovery replays an already-durable
      // extent — safe (replay is idempotent), so log and move on.
      log::warn("sync", "commit record failed: ", committed.to_string());
    }
  }
  if (member.release_lock && locks_ != nullptr) {
    locks_->unlock(global_path_, member.global);
  }
  if (member.grequest.valid()) member.grequest.complete();
}

void SyncThread::run() {
  // Each sync thread gets its own trace track, sorted below the rank rows.
  if (tracer_ != nullptr && tracer_->enabled() && track_ < 0) {
    track_ = tracer_->track(
        "sync r" + std::to_string(rank_) + " " + global_path_, 1000 + rank_);
  }
  for (;;) {
    // Completions the clock has already passed are free; collect them
    // before the next batch so waiters never lag further than one drain.
    reap_deferred();
    std::vector<SyncRequest> batch;
    Gather got = gather_batch(batch, /*may_block=*/deferred_.empty());
    if (got == Gather::kEmpty) {
      // Nothing queued but batches still awaiting their media time: wait
      // those writes out now — the stall overlaps what would otherwise be
      // idle blocking on the inbox — then block for real.
      finalize_deferred();
      got = gather_batch(batch, /*may_block=*/true);
    }
    if (got == Gather::kShutdown) break;
    note_queue_depth(inbox_.size());

    if (cancelled_) {
      // Crash drain: no more I/O — just release waiters. The extents stay
      // un-synced in the (persistent) cache file for recover() to replay.
      for (SyncRequest& member : batch) {
        if (member.release_lock && locks_ != nullptr) {
          locks_->unlock(global_path_, member.global);
        }
        if (member.grequest.valid()) member.grequest.complete();
      }
      continue;  // gather_batch ends the loop once the queue is empty
    }

    {
      const sim::SimLock lock(stats_mutex_);
      E10_SHARED_WRITE(stats_var_);
      for (const SyncRequest& member : batch) {
        if (member.requeues == 0) ++stats_.requests;
      }
    }
    const Time busy_start = engine_.now();
    obs::Span span(tracer_, track_, "flush_batch");
    span.arg("offset", batch.front().global.offset);
    span.arg("members", static_cast<Offset>(batch.size()));

    const BatchOutcome outcome =
        scheduler_->drain(batch, retry_, *backoff_rng_);
    span.arg("dispatches", static_cast<Offset>(outcome.dispatches));
    span.arg("bytes", outcome.bytes_written);
    if (outcome.retries > 0) span.arg("retries", outcome.retries);
    {
      const sim::SimLock lock(stats_mutex_);
      E10_SHARED_WRITE(stats_var_);
      stats_.bytes_synced += outcome.bytes_written;
      stats_.staging_chunks += outcome.dispatches;
      stats_.retries += static_cast<std::uint64_t>(outcome.retries);
      stats_.busy_time += engine_.now() - busy_start;
    }

    if (outcome.status.is_ok()) {
      // Fully drained: every member's bytes are issued durably (resume
      // offsets at full length); completion waits for the media time so
      // the durability promise holds, without stalling the drain here.
      deferred_.push_back(
          DeferredBatch{std::move(batch), outcome.done_time, busy_start});
      continue;
    }
    // Failure: the drain joined everything. Earlier batches complete first
    // so commit records and lock releases keep queue order.
    finalize_deferred();
    bool requeued = false;
    for (SyncRequest& member : batch) {
      if (member.synced >= member.global.length) {
        finish_member(member, /*durable=*/true);
        continue;
      }
      const bool retryable = is_retryable(outcome.status.code());
      if (retryable && member.requeues < retry_.max_requeues) {
        // Out of in-place attempts: go to the back of the queue and let
        // other requests (possibly targeting healthy servers) proceed.
        // Progress is kept — the requeued request resumes past the bytes
        // that are already durable, even when a later batch coalesces it.
        {
          const sim::SimLock lock(stats_mutex_);
          E10_SHARED_WRITE(stats_var_);
          ++stats_.requeues;
        }
        log::warn("sync", "extent @", member.global.offset,
                  " requeued after ", outcome.retries + 1, " attempts (",
                  outcome.status.to_string(), ")");
        SyncRequest retry = std::move(member);
        ++retry.requeues;
        {
          const sim::MonitorGuard monitor(engine_, &inbox_,
                                          inbox_monitor_name_);
          E10_SHARED_WRITE(inbox_var_);
          inbox_.send(std::move(retry));
        }
        requeued = true;
        continue;
      }
      // Abandoned: the extent could not be made durable. Complete the
      // grequest anyway — a hung flush would deadlock the rank — and let
      // CacheFile::flush() surface the failure via the abandoned count.
      {
        const sim::SimLock lock(stats_mutex_);
        E10_SHARED_WRITE(stats_var_);
        ++stats_.abandoned;
      }
      log::error("sync", "extent @", member.global.offset, " abandoned (",
                 outcome.status.to_string(), ")");
      span.arg("abandoned", outcome.status.to_string());
      finish_member(member, /*durable=*/false);
    }
    if (requeued) note_queue_depth(inbox_.size());
    // After the sentinel, gather_batch keeps draining pending_/requeued
    // work without blocking and ends the loop once nothing is left.
  }
  // Exit: wait out and complete everything still deferred, and join any
  // writes a later drain never recycled so the overlap window accounts for
  // every issued byte.
  finalize_deferred();
  scheduler_->join_all();
}

}  // namespace e10::cache
