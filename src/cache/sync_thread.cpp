#include "cache/sync_thread.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"

namespace e10::cache {

SyncThread::SyncThread(sim::Engine& engine, lfs::LocalFs& local_fs,
                       lfs::FileHandle cache_handle, pfs::Pfs& pfs,
                       pfs::FileHandle global_handle, std::string global_path,
                       Offset staging_bytes, LockTable* locks)
    : engine_(engine),
      local_fs_(local_fs),
      cache_handle_(cache_handle),
      pfs_(pfs),
      global_handle_(global_handle),
      global_path_(std::move(global_path)),
      staging_bytes_(staging_bytes),
      locks_(locks),
      inbox_(engine) {
  if (staging_bytes_ <= 0) {
    throw std::logic_error("SyncThread: staging buffer must be > 0");
  }
}

void SyncThread::set_observability(obs::MetricsRegistry* metrics,
                                   obs::Tracer* tracer, int rank) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: set_observability after start");
  }
  metrics_ = metrics;
  tracer_ = tracer;
  rank_ = rank;
}

void SyncThread::start() {
  if (handle_.valid()) throw std::logic_error("SyncThread already started");
  handle_ = engine_.spawn("sync:" + global_path_, [this] { run(); });
}

void SyncThread::note_queue_depth(std::size_t depth) {
  stats_.queue_depth_high_water =
      std::max(stats_.queue_depth_high_water,
               static_cast<std::uint64_t>(depth));
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->counter("sync queue depth (rank " + std::to_string(rank_) + ")",
                     static_cast<std::int64_t>(depth));
  }
}

void SyncThread::enqueue(SyncRequest request) {
  if (!handle_.valid()) throw std::logic_error("SyncThread not started");
  inbox_.send(std::move(request));
  note_queue_depth(inbox_.size());
}

void SyncThread::shutdown_and_join() {
  if (!handle_.valid()) return;
  SyncRequest sentinel;
  sentinel.shutdown = true;
  inbox_.send(std::move(sentinel));
  handle_.join();
  handle_ = sim::ProcessHandle();
  if (metrics_ != nullptr) {
    // Fold this thread's totals into the shared registry; gauges keep the
    // max across threads via their high-water mark.
    namespace names = obs::names;
    metrics_->counter(names::kSyncRequests)
        .add(static_cast<std::int64_t>(stats_.requests));
    metrics_->counter(names::kSyncBytes).add(stats_.bytes_synced);
    metrics_->counter(names::kSyncChunks)
        .add(static_cast<std::int64_t>(stats_.staging_chunks));
    metrics_->counter(names::kSyncBusyNs).add(stats_.busy_time);
    metrics_->gauge(names::kSyncQueueDepth)
        .set(static_cast<std::int64_t>(stats_.queue_depth_high_water));
  }
}

void SyncThread::run() {
  // Each sync thread gets its own trace track, sorted below the rank rows.
  if (tracer_ != nullptr && tracer_->enabled() && track_ < 0) {
    track_ = tracer_->track(
        "sync r" + std::to_string(rank_) + " " + global_path_, 1000 + rank_);
  }
  for (;;) {
    SyncRequest request = inbox_.recv();
    if (request.shutdown) break;
    note_queue_depth(inbox_.size());
    ++stats_.requests;
    const Time busy_start = engine_.now();
    obs::Span span(tracer_, track_, "sync_extent");
    span.arg("offset", request.global.offset);
    span.arg("bytes", request.global.length);
    // Stage the extent through the ind_wr_buffer_size buffer: read back
    // from the cache file, write to the global file, chunk by chunk.
    Offset done = 0;
    while (done < request.global.length) {
      const Offset chunk =
          std::min(staging_bytes_, request.global.length - done);
      auto data = local_fs_.read(cache_handle_, request.cache_offset + done,
                                 chunk);
      if (!data.is_ok()) {
        log::error("sync", "cache read failed: ", data.status().to_string());
        break;
      }
      // Durable: completing the grequest promises persistence (§III-A).
      const Status written = pfs_.write_durable(
          global_handle_, request.global.offset + done, data.value());
      if (!written.is_ok()) {
        log::error("sync", "global write failed: ", written.to_string());
        break;
      }
      done += chunk;
      ++stats_.staging_chunks;
    }
    stats_.bytes_synced += done;
    stats_.busy_time += engine_.now() - busy_start;
    if (request.release_lock && locks_ != nullptr) {
      locks_->unlock(global_path_, request.global);
    }
    if (request.grequest.valid()) request.grequest.complete();
  }
}

}  // namespace e10::cache
