#include "cache/sync_thread.h"

#include <algorithm>
#include <stdexcept>

#include "cache/journal.h"
#include "common/log.h"

namespace e10::cache {

SyncThread::SyncThread(sim::Engine& engine, lfs::LocalFs& local_fs,
                       lfs::FileHandle cache_handle, pfs::Pfs& pfs,
                       pfs::FileHandle global_handle, std::string global_path,
                       Offset staging_bytes, LockTable* locks)
    : engine_(engine),
      local_fs_(local_fs),
      cache_handle_(cache_handle),
      pfs_(pfs),
      global_handle_(global_handle),
      global_path_(std::move(global_path)),
      staging_bytes_(staging_bytes),
      locks_(locks),
      inbox_(engine),
      stats_mutex_(engine, "cache.sync.stats_mutex:" + global_path_),
      stats_var_(engine, "cache.sync.stats:" + global_path_),
      inbox_var_(engine, "cache.sync.inbox:" + global_path_),
      inbox_monitor_name_("cache.sync.inbox.monitor:" + global_path_) {
  if (staging_bytes_ <= 0) {
    throw std::logic_error("SyncThread: staging buffer must be > 0");
  }
}

void SyncThread::set_observability(obs::MetricsRegistry* metrics,
                                   obs::Tracer* tracer, int rank) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: set_observability after start");
  }
  metrics_ = metrics;
  tracer_ = tracer;
  rank_ = rank;
}

void SyncThread::set_retry_policy(const RetryPolicy& policy) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: set_retry_policy after start");
  }
  if (policy.max_attempts < 1 || policy.max_requeues < 0 ||
      policy.backoff_base < 0 || policy.backoff_cap < policy.backoff_base ||
      policy.jitter < 0.0) {
    throw std::logic_error("SyncThread: bad retry policy");
  }
  retry_ = policy;
}

void SyncThread::enable_commit_journal(lfs::FileHandle commits_handle) {
  if (handle_.valid()) {
    throw std::logic_error("SyncThread: enable_commit_journal after start");
  }
  commit_journal_ = true;
  commits_handle_ = commits_handle;
}

void SyncThread::start() {
  if (handle_.valid()) throw std::logic_error("SyncThread already started");
  backoff_rng_ = std::make_unique<Rng>(Rng::derive(
      Rng::derive(static_cast<std::uint64_t>(rank_), global_path_),
      "sync-backoff"));
  handle_ = engine_.spawn("sync:" + global_path_, [this] { run(); });
}

void SyncThread::note_queue_depth(std::size_t depth) {
  {
    const sim::SimLock lock(stats_mutex_);
    E10_SHARED_WRITE(stats_var_);
    stats_.queue_depth_high_water =
        std::max(stats_.queue_depth_high_water,
                 static_cast<std::uint64_t>(depth));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->counter("sync queue depth (rank " + std::to_string(rank_) + ")",
                     static_cast<std::int64_t>(depth));
  }
}

void SyncThread::enqueue(SyncRequest request) {
  if (!handle_.valid()) throw std::logic_error("SyncThread not started");
  std::size_t depth = 0;
  {
    const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
    E10_SHARED_WRITE(inbox_var_);
    inbox_.send(std::move(request));
    depth = inbox_.size();
  }
  note_queue_depth(depth);
}

SyncStats SyncThread::stats_snapshot() {
  const sim::SimLock lock(stats_mutex_);
  E10_SHARED_READ(stats_var_);
  return stats_;
}

std::uint64_t SyncThread::abandoned_count() {
  const sim::SimLock lock(stats_mutex_);
  E10_SHARED_READ(stats_var_);
  return stats_.abandoned;
}

void SyncThread::fold_stats_and_join() {
  {
    const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
    E10_SHARED_WRITE(inbox_var_);
    SyncRequest sentinel;
    sentinel.shutdown = true;
    inbox_.send(std::move(sentinel));
  }
  handle_.join();
  handle_ = sim::ProcessHandle();
  if (metrics_ != nullptr) {
    const SyncStats totals = stats_snapshot();
    // Fold this thread's totals into the shared registry; gauges keep the
    // max across threads via their high-water mark. The registry itself is
    // engine-atomic shared state: claim its monitor for the checker.
    const sim::MonitorGuard monitor(engine_, metrics_,
                                    obs::names::kMetricsMonitor);
    sim::shared_access(engine_, metrics_, obs::names::kMetricsRegistryVar,
                       /*is_write=*/true, E10_SITE);
    namespace names = obs::names;
    metrics_->counter(names::kSyncRequests)
        .add(static_cast<std::int64_t>(totals.requests));
    metrics_->counter(names::kSyncBytes).add(totals.bytes_synced);
    metrics_->counter(names::kSyncChunks)
        .add(static_cast<std::int64_t>(totals.staging_chunks));
    metrics_->counter(names::kSyncRetries)
        .add(static_cast<std::int64_t>(totals.retries));
    metrics_->counter(names::kSyncRequeues)
        .add(static_cast<std::int64_t>(totals.requeues));
    metrics_->counter(names::kSyncAbandoned)
        .add(static_cast<std::int64_t>(totals.abandoned));
    metrics_->counter(names::kSyncBusyNs).add(totals.busy_time);
    metrics_->gauge(names::kSyncQueueDepth)
        .set(static_cast<std::int64_t>(totals.queue_depth_high_water));
  }
}

void SyncThread::shutdown_and_join() {
  if (!handle_.valid()) return;
  fold_stats_and_join();
}

void SyncThread::cancel_drain_and_join() {
  if (!handle_.valid()) return;
  cancelled_ = true;
  fold_stats_and_join();
}

Time SyncThread::backoff_delay(int attempt) {
  Time delay = retry_.backoff_base;
  for (int i = 1; i < attempt && delay < retry_.backoff_cap; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, retry_.backoff_cap);
  if (retry_.jitter > 0.0 && delay > 0) {
    delay += static_cast<Time>(static_cast<double>(delay) *
                               backoff_rng_->uniform(0.0, retry_.jitter));
  }
  return delay;
}

Status SyncThread::sync_extent(const SyncRequest& request, Offset& done,
                               int& attempts) {
  // Stage the extent through the ind_wr_buffer_size buffer: read back from
  // the cache file, write to the global file, chunk by chunk. A retryable
  // failure backs off and resumes from `done` — already-durable chunks are
  // never re-sent.
  while (done < request.global.length) {
    const Offset chunk =
        std::min(staging_bytes_, request.global.length - done);
    Status failure = Status::ok();
    auto data = local_fs_.read(cache_handle_, request.cache_offset + done,
                               chunk);
    if (!data.is_ok()) {
      failure = data.status();
    } else {
      // Durable: completing the grequest promises persistence (§III-A).
      failure = pfs_.write_durable(global_handle_,
                                   request.global.offset + done, data.value());
    }
    if (failure.is_ok()) {
      done += chunk;
      const sim::SimLock lock(stats_mutex_);
      E10_SHARED_WRITE(stats_var_);
      ++stats_.staging_chunks;
      continue;
    }
    if (!is_retryable(failure.code()) || attempts >= retry_.max_attempts) {
      return failure;
    }
    ++attempts;
    {
      const sim::SimLock lock(stats_mutex_);
      E10_SHARED_WRITE(stats_var_);
      ++stats_.retries;
    }
    const Time wait = backoff_delay(attempts);
    log::warn("sync", "extent @", request.global.offset, " attempt ",
              attempts, " failed (", failure.to_string(), "), backing off ",
              format_time(wait));
    engine_.delay(wait);
  }
  return Status::ok();
}

void SyncThread::run() {
  // Each sync thread gets its own trace track, sorted below the rank rows.
  if (tracer_ != nullptr && tracer_->enabled() && track_ < 0) {
    track_ = tracer_->track(
        "sync r" + std::to_string(rank_) + " " + global_path_, 1000 + rank_);
  }
  for (;;) {
    SyncRequest request = [this] {
      // The monitor is claimed across the (possibly blocking) recv — the
      // classic condition-wait-inside-monitor shape; see concurrency.h.
      const sim::MonitorGuard monitor(engine_, &inbox_, inbox_monitor_name_);
      E10_SHARED_WRITE(inbox_var_);
      return inbox_.recv();
    }();
    if (request.shutdown) break;
    note_queue_depth(inbox_.size());

    if (cancelled_) {
      // Crash drain: no more I/O — just release waiters. The extent stays
      // un-synced in the (persistent) cache file for recover() to replay.
      if (request.release_lock && locks_ != nullptr) {
        locks_->unlock(global_path_, request.global);
      }
      if (request.grequest.valid()) request.grequest.complete();
      continue;
    }

    if (request.requeues == 0) {
      const sim::SimLock lock(stats_mutex_);
      E10_SHARED_WRITE(stats_var_);
      ++stats_.requests;
    }
    const Time busy_start = engine_.now();
    obs::Span span(tracer_, track_, "sync_extent");
    span.arg("offset", request.global.offset);
    span.arg("bytes", request.global.length);

    Offset done = request.synced;
    int attempts = 0;
    const Status result = sync_extent(request, done, attempts);
    if (attempts > 0) span.arg("retries", attempts);
    {
      const sim::SimLock lock(stats_mutex_);
      E10_SHARED_WRITE(stats_var_);
      stats_.bytes_synced += done - request.synced;
      stats_.busy_time += engine_.now() - busy_start;
    }

    if (!result.is_ok()) {
      const bool retryable = is_retryable(result.code());
      if (retryable && request.requeues < retry_.max_requeues) {
        // Out of in-place attempts: go to the back of the queue and let
        // other requests (possibly targeting healthy servers) proceed.
        // Progress is kept — the requeued request resumes past the chunks
        // that are already durable.
        {
          const sim::SimLock lock(stats_mutex_);
          E10_SHARED_WRITE(stats_var_);
          ++stats_.requeues;
        }
        log::warn("sync", "extent @", request.global.offset,
                  " requeued after ", attempts + 1, " attempts (",
                  result.to_string(), ")");
        SyncRequest retry = std::move(request);
        retry.synced = done;
        ++retry.requeues;
        {
          const sim::MonitorGuard monitor(engine_, &inbox_,
                                          inbox_monitor_name_);
          E10_SHARED_WRITE(inbox_var_);
          inbox_.send(std::move(retry));
        }
        note_queue_depth(inbox_.size());
        continue;
      }
      // Abandoned: the extent could not be made durable. Complete the
      // grequest anyway — a hung flush would deadlock the rank — and let
      // CacheFile::flush() surface the failure via the abandoned count.
      {
        const sim::SimLock lock(stats_mutex_);
        E10_SHARED_WRITE(stats_var_);
        ++stats_.abandoned;
      }
      log::error("sync", "extent @", request.global.offset, " abandoned (",
                 result.to_string(), ")");
      span.arg("abandoned", result.to_string());
    } else if (commit_journal_ && request.seq != 0) {
      const Status committed = local_fs_.write(
          commits_handle_, commits_cursor_, encode_commit_record(request.seq));
      if (committed.is_ok()) {
        commits_cursor_ += kCommitRecordBytes;
      } else {
        // A missed commit only means recovery replays an already-durable
        // extent — safe (replay is idempotent), so log and move on.
        log::warn("sync", "commit record failed: ", committed.to_string());
      }
    }

    if (request.release_lock && locks_ != nullptr) {
      locks_->unlock(global_path_, request.global);
    }
    if (request.grequest.valid()) request.grequest.complete();
  }
}

}  // namespace e10::cache
