#include "cache/flush_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"

namespace e10::cache {

namespace {

/// A member's remaining work, flattened for planning.
struct Segment {
  std::size_t member = 0;
  Extent global;
  Offset cache_offset = 0;
};

}  // namespace

std::vector<Dispatch> plan_dispatches(const std::vector<SyncRequest>& members,
                                      Offset staging_bytes,
                                      Offset stripe_unit) {
  std::vector<Segment> segments;
  segments.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Extent rem = members[i].remaining();
    if (rem.empty()) continue;
    segments.push_back(
        Segment{i, rem, members[i].cache_offset + members[i].synced});
  }
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) {
              return a.global.offset < b.global.offset;
            });

  std::vector<Dispatch> plan;
  Dispatch cur;
  bool open = false;
  const auto close = [&] {
    if (open) plan.push_back(std::move(cur));
    cur = Dispatch{};
    open = false;
  };
  for (const Segment& seg : segments) {
    Offset pos = seg.global.offset;
    while (pos < seg.global.end()) {
      // A gap between coalesced runs ends the dispatch: dispatches are
      // contiguous in the global file.
      if (open && cur.global.end() != pos) close();
      if (!open) {
        cur.global = Extent{pos, 0};
        open = true;
      }
      // One dispatch is one staging-buffer fill, and (with alignment on)
      // never crosses a stripe boundary — so no flush write spans two data
      // servers.
      Offset limit = cur.global.offset + staging_bytes;
      if (stripe_unit > 0) {
        const Offset next_stripe =
            (cur.global.offset / stripe_unit + 1) * stripe_unit;
        limit = std::min(limit, next_stripe);
      }
      const Offset take = std::min(seg.global.end(), limit) - pos;
      cur.pieces.push_back(DispatchPiece{
          seg.member, seg.cache_offset + (pos - seg.global.offset),
          Extent{pos, take}});
      cur.global.length += take;
      pos += take;
      if (cur.global.end() >= limit) close();
    }
  }
  close();
  return plan;
}

FlushScheduler::FlushScheduler(sim::Engine& engine, lfs::LocalFs& local_fs,
                               lfs::FileHandle cache_handle, pfs::Pfs& pfs,
                               pfs::FileHandle global_handle,
                               const std::string& global_path,
                               const FlushSchedulerParams& params)
    : engine_(engine),
      local_fs_(local_fs),
      cache_handle_(cache_handle),
      pfs_(pfs),
      global_handle_(global_handle),
      params_(params),
      state_var_(engine, "cache.sync.flush_sched:" + global_path) {
  if (params_.streams < 1) {
    throw std::logic_error("FlushScheduler: streams must be >= 1");
  }
  if (params_.staging_bytes <= 0) {
    throw std::logic_error("FlushScheduler: staging buffer must be > 0");
  }
  if (params_.stripe_unit < 0) {
    throw std::logic_error("FlushScheduler: negative stripe unit");
  }
  if (params_.max_batch < 1) params_.max_batch = 1;
  in_flight_.reserve(static_cast<std::size_t>(params_.streams));
}

void FlushScheduler::join_oldest() {
  E10_SHARED_WRITE(state_var_);
  const InFlight oldest = in_flight_.front();
  in_flight_.erase(in_flight_.begin());
  // Split the service interval at the pre-join clock: what already elapsed
  // was hidden behind other streams' work, the rest is a stall.
  overlap_.on_join(oldest.issued, oldest.done, engine_.now());
  // A stalling join gates this lane on the write's media time: record the
  // async service interval for critical-path attribution.
  if (sim::CausalObserver* causal = engine_.causal_observer();
      causal != nullptr && oldest.done > engine_.now()) {
    causal->bridge(sim::EdgeKind::batch_done, engine_.current(),
                   oldest.issued, oldest.done);
  }
  engine_.advance_to(oldest.done);
}

void FlushScheduler::join_all() {
  while (!in_flight_.empty()) join_oldest();
}

void FlushScheduler::acquire_buffer() {
  while (in_flight_.size() >= static_cast<std::size_t>(params_.streams)) {
    join_oldest();
  }
}

Time FlushScheduler::backoff_delay(const RetryPolicy& retry, Rng& rng,
                                   int attempt) {
  Time delay = retry.backoff_base;
  for (int i = 1; i < attempt && delay < retry.backoff_cap; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, retry.backoff_cap);
  if (retry.jitter > 0.0 && delay > 0) {
    delay += static_cast<Time>(static_cast<double>(delay) *
                               rng.uniform(0.0, retry.jitter));
  }
  return delay;
}

BatchOutcome FlushScheduler::drain(std::vector<SyncRequest>& members,
                                   const RetryPolicy& retry,
                                   Rng& backoff_rng) {
  BatchOutcome outcome;
  E10_SHARED_WRITE(state_var_);
  ++stats_.batches;
  stats_.members += members.size();
  const std::vector<Dispatch> plan =
      plan_dispatches(members, params_.staging_bytes, params_.stripe_unit);

  // Bytes issued durably per member, folded into the `synced` resume
  // offsets on every exit path. Tracking extents (rather than bumping a
  // front pointer at issue time) keeps the accounting correct for any
  // dispatch order: the front only advances over bytes actually issued.
  std::vector<ExtentList> issued_bytes(members.size());
  const auto account_synced = [&] {
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (issued_bytes[m].size() == 0) continue;
      issued_bytes[m].coalesce();
      SyncRequest& member = members[m];
      for (std::size_t e = 0; e < issued_bytes[m].size(); ++e) {
        const Extent& ext = issued_bytes[m][e];
        const Offset front = member.global.offset + member.synced;
        if (ext.offset <= front && ext.end() > front) {
          member.synced = ext.end() - member.global.offset;
        }
      }
    }
  };

  int attempts = 0;
  for (const Dispatch& dispatch : plan) {
    for (;;) {
      // A staging buffer must be free before the read-back can fill it:
      // with every stream busy, join the oldest in-flight write first.
      // (streams=1 therefore issues in the serial read→write→read order.)
      acquire_buffer();
      Status failure = Status::ok();
      std::vector<DataView> parts;
      parts.reserve(dispatch.pieces.size());
      for (const DispatchPiece& piece : dispatch.pieces) {
        auto data = local_fs_.read(cache_handle_, piece.cache_offset,
                                   piece.global.length);
        if (!data.is_ok()) {
          failure = data.status();
          break;
        }
        parts.push_back(std::move(data).value());
      }
      if (failure.is_ok()) {
        // Durable issue: content and failure are determined at issue time;
        // the returned completion time is when the media has the bytes.
        auto issued = pfs_.write_durable_async(
            global_handle_, dispatch.global.offset, DataView::concat(parts));
        if (issued.is_ok()) {
          in_flight_.push_back(InFlight{engine_.now(), issued.value()});
          outcome.done_time = std::max(outcome.done_time, issued.value());
          stats_.inflight_high_water = std::max(
              stats_.inflight_high_water,
              static_cast<std::uint64_t>(in_flight_.size()));
          ++stats_.dispatches;
          ++outcome.dispatches;
          outcome.bytes_written += dispatch.global.length;
          // The write will reach the media: record the bytes so the
          // members' resume offsets advance and a later requeue never
          // re-sends them.
          for (const DispatchPiece& piece : dispatch.pieces) {
            issued_bytes[piece.member].add(piece.global);
          }
          break;
        }
        failure = issued.status();
      }
      if (!is_retryable(failure.code()) || attempts >= retry.max_attempts) {
        // Out of in-place attempts: join what is in flight (those bytes
        // are durable and accounted) and hand the remains to the caller's
        // requeue/abandon ladder.
        join_all();
        account_synced();
        outcome.status = failure;
        outcome.retries = attempts;
        outcome.done_time = engine_.now();
        return outcome;
      }
      ++attempts;
      const Time wait = backoff_delay(retry, backoff_rng, attempts);
      log::warn("sync", "dispatch @", dispatch.global.offset, " attempt ",
                attempts, " failed (", failure.to_string(), "), backing off ",
                format_time(wait));
      engine_.delay(wait);
      // Loop re-stages the dispatch from the cache, as the serial drain
      // re-read a failed staging chunk.
    }
  }
  // Every dispatch issued: the content is determined and the writes will
  // reach the media by `done_time`, so the resume offsets may advance now.
  // The last writes stay in flight — joining them here would stall the
  // thread for a full queue latency per batch; later drains join them as
  // buffers recycle, and the sync thread waits for `done_time` only right
  // before it promises durability to the members' waiters.
  account_synced();
  if (outcome.done_time == 0) outcome.done_time = engine_.now();
  outcome.retries = attempts;
  return outcome;
}

}  // namespace e10::cache
