// Extent locks for cache coherency.
//
// Reproduces ROMIO's internal ADIOI_WRITE_LOCK / ADIOI_UNLOCK used by the
// paper's `e10_cache = coherent` mode (§III-B): a written extent stays
// locked from the cache write until the sync thread has made it persistent
// in the global file, so readers can never observe in-transit data.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/extent.h"
#include "sim/engine.h"

namespace e10::cache {

class LockTable {
 public:
  explicit LockTable(sim::Engine& engine) : engine_(engine) {}
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Acquires an exclusive lock on `extent` of `path`; blocks while any
  /// overlapping extent is held.
  void lock(const std::string& path, const Extent& extent);

  /// Releases a previously acquired extent (must match exactly).
  void unlock(const std::string& path, const Extent& extent);

  /// Blocks until no held lock overlaps `extent` (reader-side check).
  void wait_unlocked(const std::string& path, const Extent& extent);

  /// True if any held lock overlaps (non-blocking query).
  bool is_locked(const std::string& path, const Extent& extent) const;

  std::size_t held_count(const std::string& path) const;

 private:
  struct FileLocks {
    std::vector<Extent> held;
    std::deque<sim::ProcessId> waiters;
  };

  bool overlaps_held(const FileLocks& locks, const Extent& extent) const;
  void wake_all(FileLocks& locks);

  sim::Engine& engine_;
  std::map<std::string, FileLocks> files_;
};

}  // namespace e10::cache
