// Extent locks for cache coherency.
//
// Reproduces ROMIO's internal ADIOI_WRITE_LOCK / ADIOI_UNLOCK used by the
// paper's `e10_cache = coherent` mode (§III-B): a written extent stays
// locked from the cache write until the sync thread has made it persistent
// in the global file, so readers can never observe in-transit data.
//
// Concurrency discipline: the table itself is a monitor — every method is
// an engine-atomic critical section (it only yields at the predicate
// re-check points of lock()/wait_unlocked(), exactly like a condition-
// variable wait inside a monitor). The methods claim a synthetic monitor
// lock through the engine's ConcurrencyObserver, standing in for the
// pthread mutex ROMIO wraps around its lock lists, and each held extent is
// reported as a lock of kind `extent` so it shows up in locksets and
// deadlock reports.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/extent.h"
#include "sim/causal.h"
#include "sim/concurrency.h"
#include "sim/engine.h"

namespace e10::cache {

class LockTable {
 public:
  explicit LockTable(sim::Engine& engine)
      : engine_(engine), tables_var_(engine, "cache.lock_table.files") {}
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Acquires an exclusive lock on `extent` of `path`; blocks while any
  /// overlapping extent is held.
  void lock(const std::string& path, const Extent& extent);

  /// Releases a previously acquired extent (must match exactly).
  void unlock(const std::string& path, const Extent& extent);

  /// Blocks until no held lock overlaps `extent` (reader-side check).
  void wait_unlocked(const std::string& path, const Extent& extent);

  /// True if any held lock overlaps (non-blocking query).
  bool is_locked(const std::string& path, const Extent& extent) const;

  std::size_t held_count(const std::string& path) const;

  /// Deterministic identity of the (path, extent) lock, for checker
  /// reports and tests.
  static sim::LockId extent_lock_id(const std::string& path,
                                    const Extent& extent);

 private:
  struct FileLocks {
    std::vector<Extent> held;
    std::deque<sim::ProcessId> waiters;
    /// Causal emission of the latest release that woke waiters (0 = none).
    sim::CausalToken last_release = 0;
  };

  bool overlaps_held(const FileLocks& locks, const Extent& extent) const;
  void wake_all(FileLocks& locks);

  sim::Engine& engine_;
  /// Registered shared state: the per-file lock lists, accessed by every
  /// rank and sync-thread process under the table monitor.
  sim::SharedVar tables_var_;
  std::map<std::string, FileLocks> files_;
};

}  // namespace e10::cache
