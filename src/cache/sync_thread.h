// Background cache synchronisation (ADIOI_Sync_thread_start, paper §III-A).
//
// One SyncThread runs per open cached file per rank, as a dedicated
// simulated process (the paper uses a POSIX thread). It consumes sync
// requests from a queue; for each, it reads the cached extent back from the
// local NVM file through a staging buffer of `ind_wr_buffer_size` bytes and
// writes it to the global parallel file system, then completes the
// associated generalized MPI request (MPI_Grequest_complete) — which is what
// ADIOI_GEN_Flush later waits on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/lock_table.h"
#include "common/extent.h"
#include "common/status.h"
#include "common/units.h"
#include "lfs/local_fs.h"
#include "mpi/request.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "sim/engine.h"
#include "sim/mailbox.h"

namespace e10::cache {

struct SyncRequest {
  /// Extent of the *global* file this data belongs to.
  Extent global;
  /// Where the bytes sit in the local cache file.
  Offset cache_offset = 0;
  /// Completed (MPI_Grequest_complete) when the extent is persistent in the
  /// global file.
  mpi::Request grequest;
  /// Coherent mode: release this extent's lock once persistent.
  bool release_lock = false;
  /// Shutdown sentinel (internal).
  bool shutdown = false;
};

struct SyncStats {
  std::uint64_t requests = 0;
  Offset bytes_synced = 0;
  std::uint64_t staging_chunks = 0;
  /// Deepest the inbox ever got (requests waiting behind the one in
  /// service) — a sustained high value means the device or the PFS cannot
  /// keep up with the write burst.
  std::uint64_t queue_depth_high_water = 0;
  /// Virtual time spent servicing requests (staging reads + global writes).
  /// The run report divides the portion the application did not wait for by
  /// this to get the flush-overlap ratio.
  Time busy_time = 0;
};

class SyncThread {
 public:
  SyncThread(sim::Engine& engine, lfs::LocalFs& local_fs,
             lfs::FileHandle cache_handle, pfs::Pfs& pfs,
             pfs::FileHandle global_handle, std::string global_path,
             Offset staging_bytes, LockTable* locks);

  SyncThread(const SyncThread&) = delete;
  SyncThread& operator=(const SyncThread&) = delete;

  /// Attaches metrics/tracing sinks (either may be null). Call before
  /// start(); `rank` labels this thread's trace track. At shutdown the
  /// accumulated SyncStats are folded into the registry under the
  /// cache.sync.* names.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                         int rank);

  /// Spawns the worker process (call once, from a simulated process).
  void start();

  /// Queues a sync request; never blocks the caller.
  void enqueue(SyncRequest request);

  /// Sends the shutdown sentinel and joins the worker: all previously
  /// enqueued requests are drained first.
  void shutdown_and_join();

  const SyncStats& stats() const { return stats_; }
  bool started() const { return handle_.valid(); }

 private:
  void run();

  sim::Engine& engine_;
  lfs::LocalFs& local_fs_;
  lfs::FileHandle cache_handle_;
  pfs::Pfs& pfs_;
  pfs::FileHandle global_handle_;
  std::string global_path_;
  Offset staging_bytes_;
  LockTable* locks_;
  void note_queue_depth(std::size_t depth);

  sim::Mailbox<SyncRequest> inbox_;
  sim::ProcessHandle handle_;
  SyncStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int rank_ = 0;
  int track_ = -1;  // trace track id, registered lazily by run()
};

}  // namespace e10::cache
