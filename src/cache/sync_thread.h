// Background cache synchronisation (ADIOI_Sync_thread_start, paper §III-A).
//
// One SyncThread runs per open cached file per rank, as a dedicated
// simulated process (the paper uses a POSIX thread). It consumes sync
// requests from a queue and drains them through the FlushScheduler
// (flush_scheduler.h): adjacent requests coalesce into batches, each batch
// is split into stripe-aligned staging dispatches, and up to
// `e10_sync_streams` durable writes stay in flight concurrently. When a
// request's extent is persistent in the global file its generalized MPI
// request completes (MPI_Grequest_complete) — which is what
// ADIOI_GEN_Flush later waits on. Completion is deferred, not rushed: a
// drained batch waits for its writes' media time off the critical path
// (free once the clock passes it; overlapping the idle inbox wait when the
// queue empties) instead of stalling the drain loop on a join-all tail
// after every batch.
//
// Transient failures (an unreachable data server, an injected timeout) are
// retried in place with capped exponential backoff and deterministic jitter
// over virtual time; a request that exhausts its attempts goes to the back
// of the queue (resuming past the bytes already durable), and one that
// exhausts its requeues is abandoned — its grequest still completes (so
// flush/close never hang) and the abandonment is reported through SyncStats
// for CacheFile::flush() to surface.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/flush_scheduler.h"
#include "cache/lock_table.h"
#include "cache/sync_thread_types.h"
#include "common/extent.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_safety.h"
#include "common/units.h"
#include "lfs/local_fs.h"
#include "mpi/request.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "sim/concurrency.h"
#include "sim/engine.h"
#include "sim/mailbox.h"
#include "sim/sync.h"

namespace e10::cache {

class SyncThread {
 public:
  SyncThread(sim::Engine& engine, lfs::LocalFs& local_fs,
             lfs::FileHandle cache_handle, pfs::Pfs& pfs,
             pfs::FileHandle global_handle, std::string global_path,
             Offset staging_bytes, LockTable* locks);

  SyncThread(const SyncThread&) = delete;
  SyncThread& operator=(const SyncThread&) = delete;

  /// Attaches metrics/tracing sinks (either may be null). Call before
  /// start(); `rank` labels this thread's trace track. At shutdown the
  /// accumulated SyncStats are folded into the registry under the
  /// cache.sync.* names.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                         int rank);

  /// Overrides the retry policy (call before start()). The jitter stream is
  /// seeded from (rank, global path) so it is reproducible per thread.
  void set_retry_policy(const RetryPolicy& policy);

  /// Overrides the flush-scheduler knobs (call before start()): stream
  /// count, coalescing, stripe alignment. The staging size always follows
  /// the constructor's `staging_bytes` (ind_wr_buffer_size).
  void set_flush_params(const FlushSchedulerParams& params);

  /// Commits durable extents to the journal sidecar: after a request's
  /// extent is fully durable, a CommitRecord for its seq is appended
  /// through `commits_handle`. Call before start().
  void enable_commit_journal(lfs::FileHandle commits_handle);

  /// Spawns the worker process (call once, from a simulated process).
  void start();

  /// Queues a sync request; never blocks the caller (the queue-depth
  /// accounting takes the stats mutex briefly, so the caller must not
  /// hold it).
  void enqueue(SyncRequest request) E10_EXCLUDES(stats_mutex_);

  /// Sends the shutdown sentinel and joins the worker: all previously
  /// enqueued requests are drained first.
  void shutdown_and_join();

  /// Crash path: the worker stops doing I/O and only completes/releases the
  /// remaining requests (a dead rank's waiters must not hang), then joins.
  /// Queued extents stay un-synced — exactly what recover() replays.
  void cancel_drain_and_join();

  /// Point-in-time copy of the counters, safe to call from the owning rank
  /// while the worker runs (takes the stats mutex).
  SyncStats stats_snapshot() E10_EXCLUDES(stats_mutex_);

  /// Requests given up on since start; the flush path polls this while the
  /// worker is live, so it locks and is checker-instrumented.
  std::uint64_t abandoned_count() E10_EXCLUDES(stats_mutex_);

  /// Borrowed view of the counters. Only safe once the worker has joined
  /// (shutdown_and_join / cancel_drain_and_join); live readers must use
  /// stats_snapshot(). Excluded from the static analysis for that reason.
  const SyncStats& stats() const E10_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  /// Scheduler totals; same joined-only caveat as stats().
  const FlushSchedulerStats& scheduler_stats() const {
    return scheduler_->stats();
  }
  bool started() const { return handle_.valid(); }

 private:
  /// What one gather attempt produced.
  enum class Gather {
    kBatch,     ///< `batch` holds at least one request
    kEmpty,     ///< nothing queued right now (only when `may_block` is off)
    kShutdown,  ///< the shutdown sentinel; the worker should exit
  };
  /// A drained batch whose writes are still in flight: its members'
  /// completion (commit records, lock releases, grequests) waits until the
  /// clock passes `done_time` — the media-durable time of its last write.
  struct DeferredBatch {
    std::vector<SyncRequest> members;
    Time done_time = 0;
    /// When the batch's drain started (the causal bridge's issue time).
    Time issued = 0;
  };

  void run();
  /// Gathers one batch for the scheduler: the first request (blocking only
  /// when `may_block`) plus, with coalescing on, everything already queued
  /// whose remaining extent does not overlap the batch's coverage.
  Gather gather_batch(std::vector<SyncRequest>& batch, bool may_block);
  /// Completes one finished member: journal commit, lock release,
  /// grequest completion.
  void finish_member(SyncRequest& member, bool durable);
  /// Completes deferred batches the clock has already passed — free, no
  /// waiting. FIFO so commit records keep queue order.
  void reap_deferred();
  /// Waits out every deferred batch's `done_time` and completes them all.
  /// Called when the queue idles, before a failure's requeue/abandon
  /// handling (completion order), and at shutdown.
  void finalize_deferred();
  void fold_stats_and_join();

  sim::Engine& engine_;
  lfs::LocalFs& local_fs_;
  lfs::FileHandle cache_handle_;
  pfs::Pfs& pfs_;
  pfs::FileHandle global_handle_;
  std::string global_path_;
  Offset staging_bytes_;
  LockTable* locks_;
  void note_queue_depth(std::size_t depth) E10_EXCLUDES(stats_mutex_);

  sim::Mailbox<SyncRequest> inbox_;
  sim::ProcessHandle handle_;
  /// The counters are written by the worker process and read by the owning
  /// rank mid-run (queue depth from enqueue(), abandoned from flush()) —
  /// in the paper's pthread implementation that is a data race, surfaced
  /// by the lockset checker and fixed by guarding them with a mutex.
  /// Acquisition order: always AFTER any held extent lock (a coherent-mode
  /// rank enqueues while its written extent is locked) — declared in
  /// analysis::declared_lock_order() and cross-checked against the runtime
  /// order graph, since the clang attributes cannot name extent locks.
  sim::SimMutex stats_mutex_;
  SyncStats stats_ E10_GUARDED_BY(stats_mutex_);
  /// Checker registrations: the stats block and the request queue. The
  /// queue is accessed under a per-inbox monitor (Mailbox is engine-atomic
  /// and safe by construction; the monitor states that discipline).
  sim::SharedVar stats_var_;
  sim::SharedVar inbox_var_;
  std::string inbox_monitor_name_;
  RetryPolicy retry_;
  FlushSchedulerParams flush_params_;
  std::unique_ptr<FlushScheduler> scheduler_;  // created at start()
  std::unique_ptr<Rng> backoff_rng_;           // created at start()
  /// A drained request that overlapped the gathering batch's coverage: it
  /// must dispatch after that batch (queue order resolves shadowing), so
  /// it waits here and seeds the next batch.
  std::optional<SyncRequest> pending_;
  /// Successfully drained batches awaiting their writes' media time.
  std::deque<DeferredBatch> deferred_;
  bool shutdown_seen_ = false;  // sentinel drained while gathering
  bool cancelled_ = false;      // set by cancel_drain_and_join()
  bool commit_journal_ = false;
  lfs::FileHandle commits_handle_ = 0;
  Offset commits_cursor_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int rank_ = 0;
  int track_ = -1;  // trace track id, registered lazily by run()
};

}  // namespace e10::cache
