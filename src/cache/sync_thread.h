// Background cache synchronisation (ADIOI_Sync_thread_start, paper §III-A).
//
// One SyncThread runs per open cached file per rank, as a dedicated
// simulated process (the paper uses a POSIX thread). It consumes sync
// requests from a queue; for each, it reads the cached extent back from the
// local NVM file through a staging buffer of `ind_wr_buffer_size` bytes and
// writes it to the global parallel file system, then completes the
// associated generalized MPI request (MPI_Grequest_complete) — which is what
// ADIOI_GEN_Flush later waits on.
//
// Transient failures (an unreachable data server, an injected timeout) are
// retried in place with capped exponential backoff and deterministic jitter
// over virtual time; a request that exhausts its attempts goes to the back
// of the queue, and one that exhausts its requeues is abandoned — its
// grequest still completes (so flush/close never hang) and the abandonment
// is reported through SyncStats for CacheFile::flush() to surface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/lock_table.h"
#include "common/extent.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_safety.h"
#include "common/units.h"
#include "lfs/local_fs.h"
#include "mpi/request.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "sim/concurrency.h"
#include "sim/engine.h"
#include "sim/mailbox.h"
#include "sim/sync.h"

namespace e10::cache {

struct SyncRequest {
  /// Extent of the *global* file this data belongs to.
  Extent global;
  /// Where the bytes sit in the local cache file.
  Offset cache_offset = 0;
  /// Journal sequence number of the write that produced the extent (0 when
  /// journaling is off); committed to the sidecar once durable.
  std::uint64_t seq = 0;
  /// Completed (MPI_Grequest_complete) when the extent is persistent in the
  /// global file — or when the request is abandoned/cancelled, so waiters
  /// never hang (the failure is reported out of band).
  mpi::Request grequest;
  /// Coherent mode: release this extent's lock once persistent.
  bool release_lock = false;
  /// Shutdown sentinel (internal).
  bool shutdown = false;
  /// Times this request went back to the queue after exhausting its
  /// in-place retry attempts (internal).
  int requeues = 0;
  /// Bytes at the front of the extent already durable from earlier
  /// dispatches (internal); a requeued request resumes here instead of
  /// re-sending what already reached the media.
  Offset synced = 0;
};

/// Retry/backoff knobs for the sync thread's write_durable loop. The
/// backoff for attempt k is min(cap, base * 2^(k-1)) stretched by up to
/// `jitter` drawn from a seeded stream — deterministic for a fixed seed,
/// but decorrelated across ranks so retry storms do not synchronise.
struct RetryPolicy {
  int max_attempts = 6;  // in-place attempts per dispatch (>= 1)
  int max_requeues = 8;  // re-dispatches before the request is abandoned
  Time backoff_base = units::milliseconds(1);
  Time backoff_cap = units::milliseconds(250);
  double jitter = 0.25;  // max relative stretch of each backoff
};

struct SyncStats {
  std::uint64_t requests = 0;
  Offset bytes_synced = 0;
  std::uint64_t staging_chunks = 0;
  /// In-place retries after a retryable staging-read/global-write failure.
  std::uint64_t retries = 0;
  /// Requests sent to the back of the queue after exhausting attempts.
  std::uint64_t requeues = 0;
  /// Requests given up on entirely: grequest completed, extent NOT durable.
  std::uint64_t abandoned = 0;
  /// Deepest the inbox ever got (requests waiting behind the one in
  /// service) — a sustained high value means the device or the PFS cannot
  /// keep up with the write burst.
  std::uint64_t queue_depth_high_water = 0;
  /// Virtual time spent servicing requests (staging reads + global writes,
  /// including backoff waits).
  Time busy_time = 0;
};

class SyncThread {
 public:
  SyncThread(sim::Engine& engine, lfs::LocalFs& local_fs,
             lfs::FileHandle cache_handle, pfs::Pfs& pfs,
             pfs::FileHandle global_handle, std::string global_path,
             Offset staging_bytes, LockTable* locks);

  SyncThread(const SyncThread&) = delete;
  SyncThread& operator=(const SyncThread&) = delete;

  /// Attaches metrics/tracing sinks (either may be null). Call before
  /// start(); `rank` labels this thread's trace track. At shutdown the
  /// accumulated SyncStats are folded into the registry under the
  /// cache.sync.* names.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                         int rank);

  /// Overrides the retry policy (call before start()). The jitter stream is
  /// seeded from (rank, global path) so it is reproducible per thread.
  void set_retry_policy(const RetryPolicy& policy);

  /// Commits durable extents to the journal sidecar: after a request's
  /// extent is fully durable, a CommitRecord for its seq is appended
  /// through `commits_handle`. Call before start().
  void enable_commit_journal(lfs::FileHandle commits_handle);

  /// Spawns the worker process (call once, from a simulated process).
  void start();

  /// Queues a sync request; never blocks the caller.
  void enqueue(SyncRequest request);

  /// Sends the shutdown sentinel and joins the worker: all previously
  /// enqueued requests are drained first.
  void shutdown_and_join();

  /// Crash path: the worker stops doing I/O and only completes/releases the
  /// remaining requests (a dead rank's waiters must not hang), then joins.
  /// Queued extents stay un-synced — exactly what recover() replays.
  void cancel_drain_and_join();

  /// Point-in-time copy of the counters, safe to call from the owning rank
  /// while the worker runs (takes the stats mutex).
  SyncStats stats_snapshot();

  /// Requests given up on since start; the flush path polls this while the
  /// worker is live, so it locks and is checker-instrumented.
  std::uint64_t abandoned_count();

  /// Borrowed view of the counters. Only safe once the worker has joined
  /// (shutdown_and_join / cancel_drain_and_join); live readers must use
  /// stats_snapshot(). Excluded from the static analysis for that reason.
  const SyncStats& stats() const E10_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  bool started() const { return handle_.valid(); }

 private:
  void run();
  /// One dispatch of `request`: staging loop with in-place retries.
  /// `done` advances past durable bytes; ok when the extent is durable.
  Status sync_extent(const SyncRequest& request, Offset& done, int& attempts);
  Time backoff_delay(int attempt);
  void fold_stats_and_join();

  sim::Engine& engine_;
  lfs::LocalFs& local_fs_;
  lfs::FileHandle cache_handle_;
  pfs::Pfs& pfs_;
  pfs::FileHandle global_handle_;
  std::string global_path_;
  Offset staging_bytes_;
  LockTable* locks_;
  void note_queue_depth(std::size_t depth);

  sim::Mailbox<SyncRequest> inbox_;
  sim::ProcessHandle handle_;
  /// The counters are written by the worker process and read by the owning
  /// rank mid-run (queue depth from enqueue(), abandoned from flush()) —
  /// in the paper's pthread implementation that is a data race, surfaced
  /// by the lockset checker and fixed by guarding them with a mutex.
  sim::SimMutex stats_mutex_;
  SyncStats stats_ E10_GUARDED_BY(stats_mutex_);
  /// Checker registrations: the stats block and the request queue. The
  /// queue is accessed under a per-inbox monitor (Mailbox is engine-atomic
  /// and safe by construction; the monitor states that discipline).
  sim::SharedVar stats_var_;
  sim::SharedVar inbox_var_;
  std::string inbox_monitor_name_;
  RetryPolicy retry_;
  std::unique_ptr<Rng> backoff_rng_;  // created at start()
  bool cancelled_ = false;            // set by cancel_drain_and_join()
  bool commit_journal_ = false;
  lfs::FileHandle commits_handle_ = 0;
  Offset commits_cursor_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int rank_ = 0;
  int track_ = -1;  // trace track id, registered lazily by run()
};

}  // namespace e10::cache
