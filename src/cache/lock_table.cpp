#include "cache/lock_table.h"

#include <algorithm>
#include <stdexcept>

namespace e10::cache {

namespace {

/// Static name for the table monitor (one per LockTable instance; identity
/// comes from the table's address).
const std::string kMonitorName = "cache.lock_table.monitor";  // NOLINT

/// 64-bit FNV-1a, the deterministic extent-lock identity. Pointer ids
/// would vary across runs and break byte-identical analysis reports.
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t hash = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string extent_lock_name(const std::string& path, const Extent& extent) {
  return path + "[" + std::to_string(extent.offset) + ",+" +
         std::to_string(extent.length) + ")";
}

}  // namespace

sim::LockId LockTable::extent_lock_id(const std::string& path,
                                      const Extent& extent) {
  std::uint64_t hash = fnv1a(path.data(), path.size());
  hash = fnv1a(&extent.offset, sizeof(extent.offset), hash);
  hash = fnv1a(&extent.length, sizeof(extent.length), hash);
  return hash;
}

bool LockTable::overlaps_held(const FileLocks& locks,
                              const Extent& extent) const {
  return std::any_of(locks.held.begin(), locks.held.end(),
                     [&](const Extent& h) { return h.overlaps(extent); });
}

void LockTable::wake_all(FileLocks& locks) {
  // Woken processes re-check their predicate and may block again; FIFO
  // wake order keeps the schedule deterministic.
  while (!locks.waiters.empty()) {
    const sim::ProcessId pid = locks.waiters.front();
    locks.waiters.pop_front();
    engine_.make_ready(pid, engine_.now());
  }
}

void LockTable::lock(const std::string& path, const Extent& extent) {
  if (extent.empty()) return;
  const sim::MonitorGuard monitor(engine_, this, kMonitorName);
  sim::ConcurrencyObserver* observer =
      engine_.in_process() ? engine_.concurrency_observer() : nullptr;
  if (observer != nullptr) {
    observer->on_acquiring(engine_.current(), extent_lock_id(path, extent),
                           sim::LockKind::extent,
                           extent_lock_name(path, extent));
  }
  E10_SHARED_WRITE(tables_var_);
  FileLocks& locks = files_[path];
  const Time before = engine_.now();
  while (overlaps_held(locks, extent)) {
    locks.waiters.push_back(engine_.current());
    engine_.block("LockTable::lock");
  }
  // Blocked: the release that finally let us through gated this lane.
  if (sim::CausalObserver* causal = engine_.causal_observer();
      causal != nullptr && locks.last_release != 0 && engine_.now() > before) {
    causal->ack(locks.last_release, engine_.current(), engine_.now());
  }
  locks.held.push_back(extent);
  if (observer != nullptr) {
    observer->on_acquired(engine_.current(), extent_lock_id(path, extent),
                          sim::LockKind::extent,
                          extent_lock_name(path, extent));
  }
}

void LockTable::unlock(const std::string& path, const Extent& extent) {
  if (extent.empty()) return;
  const sim::MonitorGuard monitor(engine_, this, kMonitorName);
  E10_SHARED_WRITE(tables_var_);
  const auto file_it = files_.find(path);
  if (file_it == files_.end()) {
    throw std::logic_error("LockTable::unlock: no locks for " + path);
  }
  FileLocks& locks = file_it->second;
  const auto it = std::find(locks.held.begin(), locks.held.end(), extent);
  if (it == locks.held.end()) {
    throw std::logic_error("LockTable::unlock: extent not held");
  }
  locks.held.erase(it);
  if (sim::ConcurrencyObserver* observer = engine_.concurrency_observer();
      observer != nullptr && engine_.in_process()) {
    observer->on_released(engine_.current(), extent_lock_id(path, extent));
  }
  if (sim::CausalObserver* causal = engine_.causal_observer();
      causal != nullptr && engine_.in_process() && !locks.waiters.empty()) {
    locks.last_release = causal->emit(sim::EdgeKind::lock_wait,
                                      engine_.current(), engine_.now());
  }
  wake_all(locks);
}

void LockTable::wait_unlocked(const std::string& path, const Extent& extent) {
  if (extent.empty()) return;
  const sim::MonitorGuard monitor(engine_, this, kMonitorName);
  E10_SHARED_READ(tables_var_);
  const auto file_it = files_.find(path);
  if (file_it == files_.end()) return;
  FileLocks& locks = file_it->second;
  const Time before = engine_.now();
  while (overlaps_held(locks, extent)) {
    locks.waiters.push_back(engine_.current());
    engine_.block("LockTable::wait_unlocked");
  }
  if (sim::CausalObserver* causal = engine_.causal_observer();
      causal != nullptr && locks.last_release != 0 && engine_.now() > before) {
    causal->ack(locks.last_release, engine_.current(), engine_.now());
  }
}

bool LockTable::is_locked(const std::string& path, const Extent& extent) const {
  const sim::MonitorGuard monitor(engine_, this, kMonitorName);
  E10_SHARED_READ(tables_var_);
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  return overlaps_held(it->second, extent);
}

std::size_t LockTable::held_count(const std::string& path) const {
  const sim::MonitorGuard monitor(engine_, this, kMonitorName);
  E10_SHARED_READ(tables_var_);
  const auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.held.size();
}

}  // namespace e10::cache
