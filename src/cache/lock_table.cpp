#include "cache/lock_table.h"

#include <algorithm>
#include <stdexcept>

namespace e10::cache {

bool LockTable::overlaps_held(const FileLocks& locks,
                              const Extent& extent) const {
  return std::any_of(locks.held.begin(), locks.held.end(),
                     [&](const Extent& h) { return h.overlaps(extent); });
}

void LockTable::wake_all(FileLocks& locks) {
  // Woken processes re-check their predicate and may block again; FIFO
  // wake order keeps the schedule deterministic.
  while (!locks.waiters.empty()) {
    const sim::ProcessId pid = locks.waiters.front();
    locks.waiters.pop_front();
    engine_.make_ready(pid, engine_.now());
  }
}

void LockTable::lock(const std::string& path, const Extent& extent) {
  if (extent.empty()) return;
  FileLocks& locks = files_[path];
  while (overlaps_held(locks, extent)) {
    locks.waiters.push_back(engine_.current());
    engine_.block("LockTable::lock");
  }
  locks.held.push_back(extent);
}

void LockTable::unlock(const std::string& path, const Extent& extent) {
  if (extent.empty()) return;
  const auto file_it = files_.find(path);
  if (file_it == files_.end()) {
    throw std::logic_error("LockTable::unlock: no locks for " + path);
  }
  FileLocks& locks = file_it->second;
  const auto it = std::find(locks.held.begin(), locks.held.end(), extent);
  if (it == locks.held.end()) {
    throw std::logic_error("LockTable::unlock: extent not held");
  }
  locks.held.erase(it);
  wake_all(locks);
}

void LockTable::wait_unlocked(const std::string& path, const Extent& extent) {
  if (extent.empty()) return;
  const auto file_it = files_.find(path);
  if (file_it == files_.end()) return;
  FileLocks& locks = file_it->second;
  while (overlaps_held(locks, extent)) {
    locks.waiters.push_back(engine_.current());
    engine_.block("LockTable::wait_unlocked");
  }
}

bool LockTable::is_locked(const std::string& path, const Extent& extent) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  return overlaps_held(it->second, extent);
}

std::size_t LockTable::held_count(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.held.size();
}

}  // namespace e10::cache
