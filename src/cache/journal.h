// Record journal for crash-recovery replay of the persistent cache.
//
// The paper's durability argument (§III) rests on the cache living on
// *non-volatile* memory: a node crash loses no data, because the cached
// extents survive on the local device and can be replayed to the global
// file. Replay needs the layout metadata — which global extent each cached
// run belongs to and whether it already reached the PFS — so CacheFile
// appends one fixed-size WriteRecord per cache write to a sidecar journal
// (`<cache_path>.journal`) and the SyncThread appends one CommitRecord per
// durable extent to a second sidecar (`<cache_path>.commits`). Two files,
// one appender each: the writer and the background sync thread never share
// an append cursor. After a crash, CacheFile::recover() scans both, rebuilds
// the extent map (same shadowing rules as the live map) and re-syncs every
// extent whose sequence number was never committed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/dataview.h"
#include "common/extent.h"
#include "common/units.h"

namespace e10::cache {

inline constexpr std::uint64_t kWriteRecordMagic = 0xe10cac4e00000001ULL;
inline constexpr std::uint64_t kCommitRecordMagic = 0xe10cac4e00000002ULL;

/// magic | seq | global_offset | length | cache_offset, little-endian u64s.
inline constexpr Offset kWriteRecordBytes = 40;
/// magic | seq.
inline constexpr Offset kCommitRecordBytes = 16;

struct WriteRecord {
  std::uint64_t seq = 0;
  Offset global_offset = 0;
  Offset length = 0;
  Offset cache_offset = 0;
};

DataView encode_write_record(const WriteRecord& record);
DataView encode_commit_record(std::uint64_t seq);

/// Decodes consecutive records from raw journal bytes. Parsing stops at the
/// first record with a wrong magic or at a trailing partial record (a crash
/// can interrupt an append mid-record; everything before it is still good).
std::vector<WriteRecord> scan_write_records(const DataView& bytes);
std::vector<std::uint64_t> scan_commit_records(const DataView& bytes);

/// One cached extent: where the bytes sit in the cache file and the journal
/// sequence number of the write that produced them.
struct CacheExtent {
  Offset cache_offset = 0;
  Offset length = 0;
  std::uint64_t seq = 0;
};

/// Global-file offset -> cached extent. Later writes of the same range
/// shadow earlier ones (the map keeps the freshest copy, like the
/// log-structured cache itself). Stored as a flat vector of entries sorted
/// by offset, non-overlapping by construction: lookups binary-search and
/// read sequentially instead of chasing red-black tree nodes, and
/// apply_extent replaces the overlapped run with one splice instead of a
/// per-fragment erase/emplace churn. Iteration order (ascending offset)
/// matches the std::map it replaces.
class ExtentMap {
 public:
  struct Entry {
    Offset offset = 0;
    CacheExtent extent;
  };
  using const_iterator = std::vector<Entry>::const_iterator;

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// First entry with offset >= `offset` (std::map::lower_bound shape).
  [[nodiscard]] const_iterator lower_bound(Offset offset) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), offset,
        [](const Entry& entry, Offset o) { return entry.offset < o; });
  }

  /// The extent starting exactly at `offset`; throws std::out_of_range
  /// when no entry starts there (std::map::at shape).
  [[nodiscard]] const CacheExtent& at(Offset offset) const;

 private:
  friend void apply_extent(ExtentMap& map, const Extent& global,
                           Offset cache_offset, std::uint64_t seq);
  std::vector<Entry> entries_;
};

/// Applies one write to the map, splitting and shadowing older overlapping
/// entries. Shared between the live write path and crash-recovery replay so
/// both resolve overlaps identically.
void apply_extent(ExtentMap& map, const Extent& global, Offset cache_offset,
                  std::uint64_t seq);

}  // namespace e10::cache
