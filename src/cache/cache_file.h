// Persistent local cache file for collective write data (paper §III).
//
// A CacheFile is the per-rank cache of one open MPI file: writes destined
// for the global file are appended (log-structured, so the SSD always
// streams sequentially) to a file on the node-local NVM device, space is
// reserved with fallocate (ADIOI_Cache_alloc), and a SyncRequest carrying a
// generalized MPI request is created for every written extent
// (ADIOI_GEN_WriteContig). Depending on the flush policy, requests are
// dispatched to the background SyncThread immediately or at flush/close
// time (ADIOI_GEN_Flush / ADIO_Close).
//
// Robustness (the paper's durability argument, §III): with journaling
// enabled each write also appends a WriteRecord to a sidecar journal, so
// that after a simulated rank crash CacheFile::recover() can replay every
// extent that never reached the global file. A failing local device is
// quarantined after a run of consecutive device errors — the cache degrades
// to fast-fail and callers write through to the PFS — and a FaultPlan crash
// takes effect through the write/flush hooks.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/journal.h"
#include "cache/lock_table.h"
#include "cache/sync_thread.h"
#include "common/status.h"
#include "lfs/local_fs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "sim/engine.h"

namespace e10::fault {
class FaultInjector;
}

namespace e10::cache {

enum class FlushPolicy {
  immediate,  // dispatch at write time (e10_cache_flush_flag=flush_immediate)
  onclose,    // dispatch at flush/close  (flush_onclose)
  none,       // never sync (harness-only: measures theoretical bandwidth)
};

struct CacheFileParams {
  std::string global_path;  // the global file this cache shadows
  std::string cache_path;   // pathname of the cache file on the local FS
  FlushPolicy flush = FlushPolicy::immediate;
  bool coherent = false;  // hold extent locks until data is persistent
  bool discard = true;    // remove the cache file on close
  Offset staging_bytes = 512 * units::KiB;  // ind_wr_buffer_size
  /// fallocate granularity: space is reserved in chunks this big so that
  /// most writes pay no allocation cost.
  Offset alloc_chunk = 64 * units::MiB;
  /// Concurrent in-flight flush streams per sync thread (e10_sync_streams):
  /// how many durable PFS writes the drain keeps outstanding. 1 restores
  /// the serial read-back→write loop.
  int sync_streams = 4;
  /// Coalesce adjacent queued sync requests into shared stripe-aligned
  /// dispatches (e10_flush_coalesce_flag); see docs/flush_scheduler.md.
  bool flush_coalesce = true;
  /// PFS stripe unit of the global file: flush dispatches are split on its
  /// boundaries so no flush write crosses a data server (0 = no alignment).
  Offset stripe_unit = 0;
  /// Record journal for crash recovery: append one WriteRecord per cache
  /// write to `<cache_path>.journal` and one CommitRecord per durable
  /// extent to `<cache_path>.commits`. Off by default — the sidecar
  /// appends cost local-device time.
  bool journal = false;
  /// Sync-thread retry/backoff knobs for transient global-write failures.
  RetryPolicy retry;
  /// Consecutive local-device errors (io_error/unavailable/timed_out; a
  /// deterministic no_space does not count) before the device is
  /// quarantined and the cache degrades to fast-fail.
  int quarantine_after = 3;
  /// Scenario injector (optional): supplies the rank-crash schedule checked
  /// on the write and flush paths.
  fault::FaultInjector* fault = nullptr;
  /// Observability (all optional): counters/histograms land in `metrics`,
  /// the sync thread traces onto its own `tracer` track, `rank` labels both.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  int rank = 0;
};

struct CacheFileStats {
  Offset bytes_cached = 0;
  std::uint64_t writes = 0;
  std::uint64_t fallback_writes = 0;  // writes that bypassed the cache
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  Offset bytes_read_from_cache = 0;
};

/// What CacheFile::recover() found and replayed after a crash.
struct RecoveryReport {
  std::uint64_t journal_records = 0;  // WriteRecords scanned
  std::uint64_t committed = 0;        // seqs the sync thread made durable
  std::uint64_t replayed_extents = 0;
  Offset replayed_bytes = 0;
};

class CacheFile {
 public:
  /// Opens (creates) the cache file and starts the sync thread. Fails if
  /// the local file system cannot host it — the caller then reverts to
  /// standard (uncached) operation, as the paper's OpenColl does.
  static Result<std::unique_ptr<CacheFile>> open(sim::Engine& engine,
                                                 lfs::LocalFs& local_fs,
                                                 pfs::Pfs& pfs,
                                                 pfs::FileHandle global_handle,
                                                 const CacheFileParams& params,
                                                 LockTable* locks);

  ~CacheFile();
  CacheFile(const CacheFile&) = delete;
  CacheFile& operator=(const CacheFile&) = delete;

  /// Writes `data` for global-file extent `global` into the cache and
  /// creates the sync request. In coherent mode the extent is locked until
  /// the sync thread makes it persistent. Fails fast once the local device
  /// is quarantined — the caller falls back to a direct global write.
  Status write(const Extent& global, const DataView& data);

  /// Nonblocking variant of write(): identical validation, bookkeeping and
  /// sync-request creation, but the local-device time is not charged to the
  /// caller — the returned completion time says when the cache (and, with
  /// journaling, the journal sidecar) has the data and the source buffer
  /// may be reused. The sync thread's staging reads serialize after the
  /// in-flight write on the device's FIFO timeline, so dispatching the sync
  /// request at issue time is safe. Callers join via a generalized request
  /// completed at the returned time (adio::iwrite_contig).
  Result<Time> iwrite(const Extent& global, const DataView& data);

  /// Serves a read from the cache if (and only if) the extent is fully
  /// covered by data this cache holds; returns nullopt otherwise. Charges
  /// local-device read time. This implements the paper's §VI future work
  /// ("support cache reading operations"): the per-extent map the cache
  /// already keeps is exactly the layout metadata §III-B says reads need.
  /// Callers must understand the staleness caveat: the cache knows nothing
  /// about writes other ranks made to the same extent afterwards.
  std::optional<DataView> try_read(const Extent& global);

  /// ADIOI_GEN_Flush: dispatches deferred requests (onclose policy) and
  /// waits for every outstanding sync request to complete. Reports
  /// Errc::io_error if any extent was abandoned (not made durable) since
  /// the previous flush — waiters never hang on a lost extent, they get
  /// told about it here instead.
  Status flush();

  /// Flush, stop the sync thread, close and (per discard flag) remove the
  /// cache file and its journal sidecars. Idempotent, and tears everything
  /// down even when the flush reports an error — a failed flush must never
  /// leak the sync thread. Returns the first error encountered.
  Status close();

  /// Simulated rank crash: the sync thread stops doing I/O and only
  /// releases/completes the remaining requests (nothing may hang on a dead
  /// rank), handles are dropped, and the cache file plus journal sidecars
  /// survive on the non-volatile device for recover() to replay.
  void simulate_crash();

  /// Post-crash replay (run from a fresh simulated process): scans the
  /// journal sidecars of `cache_path`, rebuilds the extent map, and writes
  /// every extent whose sequence number was never committed back to the
  /// global file. Idempotent — re-syncing an already-durable extent writes
  /// the same bytes. A missing journal yields an empty report.
  static Result<RecoveryReport> recover(lfs::LocalFs& local_fs, pfs::Pfs& pfs,
                                        pfs::FileHandle global_handle,
                                        const std::string& cache_path,
                                        obs::MetricsRegistry* metrics = nullptr);

  /// Journal sidecar paths for a given cache file.
  static std::string journal_path(const std::string& cache_path) {
    return cache_path + ".journal";
  }
  static std::string commits_path(const std::string& cache_path) {
    return cache_path + ".commits";
  }

  const CacheFileStats& stats() const { return stats_; }
  const SyncStats& sync_stats() const { return sync_->stats(); }
  std::size_t outstanding_requests() const { return outstanding_.size(); }
  const CacheFileParams& params() const { return params_; }
  bool closed() const { return closed_; }
  bool crashed() const { return crashed_; }
  bool degraded() const { return degraded_; }
  bool journaling() const { return journaling_; }

 private:
  CacheFile(sim::Engine& engine, lfs::LocalFs& local_fs, pfs::Pfs& pfs,
            pfs::FileHandle global_handle, const CacheFileParams& params,
            LockTable* locks, lfs::FileHandle cache_handle);

  Status ensure_allocated(Offset needed_end);
  /// Quarantine bookkeeping for a failed local-device operation.
  void note_device_error(Errc code);
  bool crash_now(bool in_flush);

  sim::Engine& engine_;
  lfs::LocalFs& local_fs_;
  CacheFileParams params_;
  LockTable* locks_;
  lfs::FileHandle cache_handle_;
  std::unique_ptr<SyncThread> sync_;
  Offset append_cursor_ = 0;
  Offset allocated_ = 0;
  // Layout map: global-file offset -> location in the cache file. Later
  // writes of the same extent shadow earlier ones (the map keeps the
  // freshest copy, like the log-structured cache itself). Registered with
  // the concurrency checker: only the owning rank may touch it (the sync
  // thread reads raw cache offsets from its requests, never the map).
  sim::SharedVar extent_map_var_;
  ExtentMap extent_map_;
  std::vector<SyncRequest> deferred_;      // onclose policy, not yet sent
  std::vector<mpi::Request> outstanding_;  // dispatched, possibly incomplete
  CacheFileStats stats_;
  // Journal state (journaling_ only set when both sidecars opened).
  bool journaling_ = false;
  lfs::FileHandle journal_handle_ = 0;
  lfs::FileHandle commits_handle_ = 0;
  Offset journal_cursor_ = 0;
  std::uint64_t next_seq_ = 1;  // seq 0 is reserved for "not journaled"
  // Quarantine state.
  int consecutive_device_errors_ = 0;
  bool degraded_ = false;
  std::uint64_t reported_abandoned_ = 0;  // abandoned count already surfaced
  // Resolved once; registry references stay valid for its lifetime.
  obs::Counter* writes_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Histogram* write_hist_ = nullptr;
  bool closed_ = false;
  bool crashed_ = false;
};

}  // namespace e10::cache
