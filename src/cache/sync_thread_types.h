// Shared vocabulary of the background cache synchronisation: the sync
// request a cache write produces, the retry/backoff policy of the drain,
// and the per-thread counters. Split out of sync_thread.h so the flush
// scheduler (flush_scheduler.h) and the sync thread can both speak it
// without a circular include.
#pragma once

#include <cstdint>

#include "common/extent.h"
#include "common/units.h"
#include "mpi/request.h"
#include "sim/causal.h"

namespace e10::cache {

struct SyncRequest {
  /// Extent of the *global* file this data belongs to.
  Extent global;
  /// Where the bytes sit in the local cache file.
  Offset cache_offset = 0;
  /// Journal sequence number of the write that produced the extent (0 when
  /// journaling is off); committed to the sidecar once durable.
  std::uint64_t seq = 0;
  /// Completed (MPI_Grequest_complete) when the extent is persistent in the
  /// global file — or when the request is abandoned/cancelled, so waiters
  /// never hang (the failure is reported out of band).
  mpi::Request grequest;
  /// Coherent mode: release this extent's lock once persistent.
  bool release_lock = false;
  /// Shutdown sentinel (internal).
  bool shutdown = false;
  /// Causal emission of the enqueue (internal; 0 = none): lets the sync
  /// thread acknowledge which request ended its idle inbox wait.
  sim::CausalToken cause = 0;
  /// Times this request went back to the queue after exhausting its
  /// in-place retry attempts (internal).
  int requeues = 0;
  /// Bytes at the front of the extent already durable from earlier
  /// dispatches (internal); a requeued request resumes here instead of
  /// re-sending what already reached the media — including when the flush
  /// scheduler later coalesces it into a batch, which plans only the
  /// remaining extent [global.offset + synced, global.end()).
  Offset synced = 0;

  /// The part of the extent not yet durable.
  Extent remaining() const {
    return Extent{global.offset + synced, global.length - synced};
  }
};

/// Retry/backoff knobs for the sync thread's drain loop. The backoff for
/// attempt k is min(cap, base * 2^(k-1)) stretched by up to `jitter` drawn
/// from a seeded stream — deterministic for a fixed seed, but decorrelated
/// across ranks so retry storms do not synchronise.
struct RetryPolicy {
  int max_attempts = 6;  // in-place attempts per dispatch (>= 1)
  int max_requeues = 8;  // re-dispatches before the request is abandoned
  Time backoff_base = units::milliseconds(1);
  Time backoff_cap = units::milliseconds(250);
  double jitter = 0.25;  // max relative stretch of each backoff
};

struct SyncStats {
  std::uint64_t requests = 0;
  Offset bytes_synced = 0;
  std::uint64_t staging_chunks = 0;
  /// In-place retries after a retryable staging-read/global-write failure.
  std::uint64_t retries = 0;
  /// Requests sent to the back of the queue after exhausting attempts.
  std::uint64_t requeues = 0;
  /// Requests given up on entirely: grequest completed, extent NOT durable.
  std::uint64_t abandoned = 0;
  /// Deepest the inbox ever got (requests waiting behind the one in
  /// service) — a sustained high value means the device or the PFS cannot
  /// keep up with the write burst.
  std::uint64_t queue_depth_high_water = 0;
  /// Virtual time spent servicing requests (staging reads + global writes,
  /// including backoff waits).
  Time busy_time = 0;
};

}  // namespace e10::cache
