// Flush scheduler: coalesced, stripe-aligned, multi-stream draining of the
// NVM cache to the parallel file system (docs/flush_scheduler.md).
//
// The paper's win lives or dies on how fast the sync thread can drain the
// cache — its "theoretical" case assumes the flush is fully hidden. The
// scheduler sits between the sync thread's inbox and the durable PFS write
// and turns the serial read-back→write loop into a bandwidth-shaped drain:
//
//   1. COALESCE: queued SyncRequests whose remaining global extents are
//      adjacent are merged into one batch, so many small ext2ph rounds
//      become few large staged writes (request aggregation à la Kang et
//      al.; access coalescing à la Thakur et al.). Requests that *overlap*
//      earlier batch coverage end the batch instead — batches dispatch in
//      queue order, so a later write still shadows an earlier one exactly
//      as the serial loop did.
//   2. STRIPE-ALIGN: each dispatch (one staging-buffer fill, one durable
//      write) is split on PFS stripe boundaries, so no flush write crosses
//      a data server.
//   3. STREAM: up to `streams` dispatches stay in flight concurrently over
//      Pfs::write_durable_async; the completion loop joins the oldest
//      stream before its staging buffer is refilled, overlapping the
//      staging reads (local device) with the durable writes (PFS devices)
//      and the data servers with each other.
//
// Fault-tolerance semantics are unchanged: retryable staging-read/global-
// write failures back off and retry in place (the shared attempt budget of
// one dispatch), every byte already issued durably is recorded in the
// member's `synced` resume offset so a requeued request never re-sends it,
// and the sync thread keeps the requeue/abandon ladder, journal commit
// order and crash-replay behaviour on top of the returned outcome.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/sync_thread_types.h"
#include "common/extent.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_safety.h"
#include "common/units.h"
#include "lfs/local_fs.h"
#include "pfs/pfs.h"
#include "sim/async.h"
#include "sim/concurrency.h"
#include "sim/engine.h"

namespace e10::cache {

struct FlushSchedulerParams {
  /// Concurrent in-flight durable writes per sync thread (>= 1). One
  /// staging buffer exists per stream; a buffer is refilled only after the
  /// write it fed has been joined. 1 issues in the serial drain's order.
  int streams = 4;
  /// Merge adjacent queued requests into shared dispatches. Off, every
  /// request drains on its own (the pre-scheduler behaviour).
  bool coalesce = true;
  /// PFS stripe unit: dispatches are split on multiples of it so no flush
  /// write crosses a data server. 0 disables alignment splitting.
  Offset stripe_unit = 0;
  /// Staging-buffer size (ind_wr_buffer_size): the capacity of one
  /// dispatch.
  Offset staging_bytes = 512 * units::KiB;
  /// Upper bound on requests gathered into one batch (plan-cost bound).
  std::size_t max_batch = 256;
};

/// One contiguous slice of a dispatch, attributed to the batch member whose
/// cached bytes it carries.
struct DispatchPiece {
  std::size_t member = 0;   // index into the batch
  Offset cache_offset = 0;  // where the slice sits in the cache file
  Extent global;            // the slice of the global file
};

/// One staging-buffer fill = one durable PFS write: contiguous in the
/// global file, within one stripe (when alignment is on), at most
/// `staging_bytes` long.
struct Dispatch {
  Extent global;
  std::vector<DispatchPiece> pieces;
};

/// Pure planning step, exposed for tests: the members' *remaining* extents
/// ([offset + synced, end), resuming past already-durable bytes) are
/// coalesced into contiguous runs and split at staging-capacity and stripe
/// boundaries. Members must be mutually non-overlapping (the batch gatherer
/// guarantees this); dispatches come out in global-file order.
std::vector<Dispatch> plan_dispatches(const std::vector<SyncRequest>& members,
                                      Offset staging_bytes,
                                      Offset stripe_unit);

/// What one batch drain did; the sync thread folds this into SyncStats and
/// drives the requeue/abandon ladder from `status`.
struct BatchOutcome {
  /// ok when every member is fully durable; otherwise the failure that
  /// exhausted the in-place attempt budget (members' `synced` offsets are
  /// advanced past everything already durable).
  Status status = Status::ok();
  int retries = 0;                  // in-place retries consumed
  std::uint64_t dispatches = 0;     // staged chunks written (or retried)
  Offset bytes_written = 0;         // bytes issued durably this drain
  /// When every byte issued this drain is on the media. On success the
  /// drain returns at issue-completion with writes still in flight; the
  /// caller must not promise durability (grequests, commit records) until
  /// the clock is past this time. On failure everything is already joined
  /// and this is the return-time clock.
  Time done_time = 0;
};

/// Scheduler totals across a sync thread's lifetime, folded into the
/// metrics registry at shutdown (cache.sync.coalesce.* / .streams.*).
struct FlushSchedulerStats {
  std::uint64_t batches = 0;
  std::uint64_t members = 0;     // requests that entered batches
  std::uint64_t dispatches = 0;  // stripe-aligned writes issued
  std::uint64_t inflight_high_water = 0;
};

class FlushScheduler {
 public:
  FlushScheduler(sim::Engine& engine, lfs::LocalFs& local_fs,
                 lfs::FileHandle cache_handle, pfs::Pfs& pfs,
                 pfs::FileHandle global_handle, const std::string& global_path,
                 const FlushSchedulerParams& params);

  FlushScheduler(const FlushScheduler&) = delete;
  FlushScheduler& operator=(const FlushScheduler&) = delete;

  /// Drains one batch: plans the dispatches, stages each through a free
  /// stream buffer (joining the oldest in-flight write when all buffers
  /// are busy), and issues it durably. On success up to `streams` writes
  /// are still in flight at return — the caller defers the members'
  /// completion until the clock passes `BatchOutcome::done_time` instead
  /// of stalling here on a join-all tail after every batch; in-flight
  /// writes carry over and are joined by later drains as buffers recycle.
  /// Retryable failures back off with the policy (delays drawn from
  /// `backoff_rng`) and retry in place; on exhaustion everything in
  /// flight is joined and the remaining work is left to the caller's
  /// requeue ladder. Must run on the sync thread's simulated process.
  BatchOutcome drain(std::vector<SyncRequest>& members,
                     const RetryPolicy& retry, Rng& backoff_rng);

  /// Joins every in-flight write (the caller's clock ends past the last
  /// completion). Call before shutdown so the overlap window accounts for
  /// every issued write.
  void join_all();

  const FlushSchedulerParams& params() const { return params_; }
  const FlushSchedulerStats& stats() const { return stats_; }
  /// Join-point accounting of the stream window (write/hidden/stall time).
  const sim::OverlapAccumulator& overlap() const { return overlap_; }

 private:
  struct InFlight {
    Time issued = 0;
    Time done = 0;
  };

  /// Joins the oldest in-flight write (advances the clock past its
  /// completion) and records the overlap split.
  void join_oldest();
  /// Joins until fewer than `streams` writes are in flight (a staging
  /// buffer is free for the next read-back).
  void acquire_buffer();
  Time backoff_delay(const RetryPolicy& retry, Rng& rng, int attempt);

  sim::Engine& engine_;
  lfs::LocalFs& local_fs_;
  lfs::FileHandle cache_handle_;
  pfs::Pfs& pfs_;
  pfs::FileHandle global_handle_;
  FlushSchedulerParams params_;
  /// FIFO, bounded by params_.streams.
  std::vector<InFlight> in_flight_ E10_TRACKED_BY(state_var_);
  sim::OverlapAccumulator overlap_ E10_TRACKED_BY(state_var_);
  FlushSchedulerStats stats_ E10_TRACKED_BY(state_var_);
  /// Scheduler bookkeeping is single-owner state of the sync thread; the
  /// registration lets the checker verify nothing else ever touches it.
  sim::SharedVar state_var_;
};

}  // namespace e10::cache
