#include "mpiwrap/mpiwrap.h"

#include "adio/adio_file.h"
#include "common/log.h"

namespace e10::mpiwrap {

namespace {
/// Mirror a WrapStats bump into the shared registry (wrapper operations are
/// rare — one per open/close — so the name lookup is fine here).
void bump(adio::IoContext* ctx, const char* name) {
  if (ctx->metrics != nullptr) {
    ctx->metrics->counter(std::string("mpiwrap.") + name).increment();
  }
}
}  // namespace

Result<Mpiwrap> Mpiwrap::create(adio::IoContext& ctx,
                                const std::string& config_text) {
  auto config = Config::parse(config_text);
  if (!config.is_ok()) return config.status();
  return Mpiwrap(ctx, std::move(config).value());
}

const ConfigSection* Mpiwrap::section_for(const std::string& path) const {
  const auto [driver, bare] = adio::parse_driver_path(path);
  return config_.match("file:" + bare);
}

Result<mpiio::File> Mpiwrap::open(mpi::Comm comm, const std::string& path,
                                  int mode, const mpi::Info& user_info) {
  ++stats_.opens;
  bump(ctx_, "opens");
  const ConfigSection* section = section_for(path);

  // The paper's workflow trick: the previous file of this family is really
  // closed *now*, just before the new open — by this time the background
  // sync has (hopefully) finished during the compute phase.
  if (section != nullptr) {
    const auto it = deferred_.find(section->name());
    if (it != deferred_.end()) {
      ++stats_.delayed_real_closes;
      bump(ctx_, "delayed_real_closes");
      Deferred pending = std::move(it->second);
      deferred_.erase(it);
      deferred_pattern_of_path_.erase(pending.path);
      if (const Status closed = pending.file.close(); !closed.is_ok()) {
        return closed;
      }
    }
  }

  mpi::Info info;
  if (section != nullptr) {
    for (const auto& [key, value] : section->entries()) {
      if (key == "deferred_close") continue;  // wrapper-level, not a hint
      info.set(key, value);
      ++stats_.hint_injections;
      bump(ctx_, "hint_injections");
    }
  }
  info.merge(user_info);  // user-provided hints win

  auto file = mpiio::File::open(*ctx_, comm, path, mode, info);
  if (!file.is_ok()) return file.status();

  if (section != nullptr) {
    const auto deferred = section->get_bool("deferred_close", false);
    if (deferred.is_ok() && deferred.value()) {
      deferred_pattern_of_path_[path] = section->name();
    }
  }
  return file;
}

Status Mpiwrap::close(mpiio::File file) {
  if (!file.valid()) {
    return Status::error(Errc::invalid_argument, "close of invalid file");
  }
  const std::string path = file.raw()->path;
  // Look up by the bare path the file was opened with.
  for (const auto& [opened_path, pattern] : deferred_pattern_of_path_) {
    const auto [driver, bare] = adio::parse_driver_path(opened_path);
    if (bare != path) continue;
    // Defer: pretend success, keep the handle for the next open.
    auto [it, inserted] =
        deferred_.try_emplace(pattern, Deferred{std::move(file), opened_path});
    if (!inserted) {
      // An older sibling is still pending (shouldn't happen with the
      // paper's one-file-at-a-time workflow): close it for real first.
      ++stats_.delayed_real_closes;
      bump(ctx_, "delayed_real_closes");
      Deferred old = std::move(it->second);
      deferred_pattern_of_path_.erase(old.path);
      it->second = Deferred{std::move(file), opened_path};
      ++stats_.deferred_closes;
      bump(ctx_, "deferred_closes");
      return old.file.close();
    }
    ++stats_.deferred_closes;
    bump(ctx_, "deferred_closes");
    return Status::ok();
  }
  ++stats_.immediate_closes;
  bump(ctx_, "immediate_closes");
  return file.close();
}

Status Mpiwrap::finalize() {
  Status status = Status::ok();
  for (auto& [pattern, pending] : deferred_) {
    ++stats_.finalize_closes;
    bump(ctx_, "finalize_closes");
    const Status closed = pending.file.close();
    if (status.is_ok()) status = closed;
  }
  deferred_.clear();
  deferred_pattern_of_path_.clear();
  return status;
}

}  // namespace e10::mpiwrap
