// MPIWRAP: the paper's PMPI wrapper library (§III-C).
//
// Legacy applications cannot restructure their I/O phases to overlap cache
// synchronisation with compute. MPIWRAP reproduces the modified workflow of
// Fig. 3 behind their backs: MPI-IO hints are defined per file pattern in a
// configuration file and injected at MPI_File_open; for patterns marked
// `deferred_close`, MPI_File_close returns success immediately while the
// real close (which waits for cache synchronisation) happens right before
// the next open of a file with the same pattern — or at MPI_Finalize.
//
// One Mpiwrap instance lives per rank (the real library is linked or
// LD_PRELOADed into each MPI process).
//
// Configuration format (common/config.h INI):
//
//   [file:/pfs/ckpt*]
//   e10_cache = enable
//   e10_cache_flush_flag = flush_immediate
//   deferred_close = true
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "adio/io_context.h"
#include "common/config.h"
#include "common/status.h"
#include "mpi/comm.h"
#include "mpiio/file.h"

namespace e10::mpiwrap {

struct WrapStats {
  std::uint64_t opens = 0;
  std::uint64_t hint_injections = 0;
  std::uint64_t deferred_closes = 0;
  std::uint64_t immediate_closes = 0;
  std::uint64_t delayed_real_closes = 0;  // performed at next open
  std::uint64_t finalize_closes = 0;
};

class Mpiwrap {
 public:
  /// Parses the configuration text; fails on syntax errors.
  static Result<Mpiwrap> create(adio::IoContext& ctx,
                                const std::string& config_text);

  /// Overloaded MPI_File_open: injects hints from the matching config
  /// section (user hints win on conflicts) and first really-closes any
  /// outstanding deferred file of the same pattern.
  Result<mpiio::File> open(mpi::Comm comm, const std::string& path, int mode,
                           const mpi::Info& user_info = {});

  /// Overloaded MPI_File_close: defers when the file's pattern asks for it,
  /// otherwise closes immediately.
  Status close(mpiio::File file);

  /// Overloaded MPI_Finalize: really closes every outstanding file.
  Status finalize();

  /// Number of files whose close is still pending.
  std::size_t outstanding() const { return deferred_.size(); }

  const WrapStats& stats() const { return stats_; }

  /// The config section matching `path` (tests / diagnostics).
  const ConfigSection* section_for(const std::string& path) const;

 private:
  Mpiwrap(adio::IoContext& ctx, Config config)
      : ctx_(&ctx), config_(std::move(config)) {}

  struct Deferred {
    mpiio::File file;
    std::string path;
  };

  adio::IoContext* ctx_;
  Config config_;
  // Keyed by config pattern: one outstanding deferred file per pattern
  // ("file family" in the paper's terms).
  std::map<std::string, Deferred> deferred_;
  std::map<std::string, std::string> deferred_pattern_of_path_;
  WrapStats stats_;
};

}  // namespace e10::mpiwrap
