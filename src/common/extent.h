// Byte extents and extent-list algebra.
//
// Extents are the working currency of the whole stack: file views flatten to
// extent lists, file domains are extents, the cache tracks dirty extents, and
// the lock manager locks extents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace e10 {

/// A half-open byte range [offset, offset + length).
struct Extent {
  Offset offset = 0;
  Offset length = 0;

  Offset end() const { return offset + length; }
  bool empty() const { return length <= 0; }
  bool contains(Offset pos) const { return pos >= offset && pos < end(); }
  bool overlaps(const Extent& other) const {
    return offset < other.end() && other.offset < end();
  }

  friend bool operator==(const Extent&, const Extent&) = default;
};

/// Intersection of two extents (empty extent if disjoint).
Extent intersect(const Extent& a, const Extent& b);

std::string to_string(const Extent& e);

/// An ordered list of extents. Invariants after normalize(): sorted by
/// offset, non-empty, non-overlapping, non-adjacent (fully coalesced).
class ExtentList {
 public:
  ExtentList() = default;
  explicit ExtentList(std::vector<Extent> extents);

  void add(Extent e);
  void clear() { extents_.clear(); }

  /// Sorts, drops empties, and merges overlapping/adjacent extents.
  void normalize();

  /// The merge step by its access-coalescing name (Thakur et al.): the
  /// flush scheduler's batch planner coalesces the remaining extents of
  /// queued sync requests through this before splitting dispatches on
  /// stripe boundaries. Identical to normalize().
  void coalesce() { normalize(); }

  bool empty() const { return extents_.empty(); }
  std::size_t size() const { return extents_.size(); }
  const Extent& operator[](std::size_t i) const { return extents_[i]; }
  const std::vector<Extent>& items() const { return extents_; }

  auto begin() const { return extents_.begin(); }
  auto end() const { return extents_.end(); }

  /// Total bytes covered. Only meaningful after normalize() if inputs
  /// overlapped.
  Offset total_bytes() const;

  /// Smallest extent covering everything (empty list -> empty extent).
  Extent bounding() const;

  /// All parts of this list that fall inside `window`, clipped to it.
  ExtentList clipped_to(const Extent& window) const;

  /// Set-subtraction: parts of this list not covered by `other`.
  /// Both lists must be normalized.
  ExtentList subtract(const ExtentList& other) const;

  /// True if `other`'s coverage is fully contained in this list's coverage.
  /// Both lists must be normalized.
  bool covers(const ExtentList& other) const;

  friend bool operator==(const ExtentList&, const ExtentList&) = default;

 private:
  std::vector<Extent> extents_;
};

}  // namespace e10
