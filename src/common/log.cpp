#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace e10::log {

namespace {

Level parse_env() {
  const char* env = std::getenv("E10_LOG");
  if (env == nullptr) return Level::warn;
  const std::string s(env);
  if (s == "error") return Level::error;
  if (s == "warn") return Level::warn;
  if (s == "info") return Level::info;
  if (s == "debug") return Level::debug;
  if (s == "trace") return Level::trace;
  return Level::warn;
}

std::atomic<Level>& level_storage() {
  static std::atomic<Level> storage{parse_env()};
  return storage;
}

constexpr const char* level_name(Level l) {
  switch (l) {
    case Level::error: return "error";
    case Level::warn: return "warn";
    case Level::info: return "info";
    case Level::debug: return "debug";
    case Level::trace: return "trace";
  }
  return "?";
}

}  // namespace

Level level() { return level_storage().load(std::memory_order_relaxed); }

void set_level(Level l) {
  level_storage().store(l, std::memory_order_relaxed);
}

bool enabled(Level l) { return static_cast<int>(l) <= static_cast<int>(level()); }

void write(Level l, std::string_view component, std::string_view message) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> guard(mu);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(l),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace e10::log
