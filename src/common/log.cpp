#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace e10::log {

namespace {

std::atomic<ContextHook> g_context_hook{nullptr};

/// E10_LOG_COMPONENTS, parsed once. Empty = everything allowed.
const std::vector<std::string>& component_allowlist() {
  static const std::vector<std::string> list = [] {
    std::vector<std::string> out;
    const char* env = std::getenv("E10_LOG_COMPONENTS");
    if (env == nullptr) return out;
    std::string token;
    for (const char* c = env;; ++c) {
      if (*c == ',' || *c == '\0') {
        if (!token.empty()) out.push_back(token);
        token.clear();
        if (*c == '\0') break;
      } else if (*c != ' ') {
        token += *c;
      }
    }
    return out;
  }();
  return list;
}

Level parse_env() {
  const char* env = std::getenv("E10_LOG");
  if (env == nullptr) return Level::warn;
  const std::string s(env);
  if (s == "error") return Level::error;
  if (s == "warn") return Level::warn;
  if (s == "info") return Level::info;
  if (s == "debug") return Level::debug;
  if (s == "trace") return Level::trace;
  return Level::warn;
}

std::atomic<Level>& level_storage() {
  static std::atomic<Level> storage{parse_env()};
  return storage;
}

constexpr const char* level_name(Level l) {
  switch (l) {
    case Level::error: return "error";
    case Level::warn: return "warn";
    case Level::info: return "info";
    case Level::debug: return "debug";
    case Level::trace: return "trace";
  }
  return "?";
}

}  // namespace

Level level() { return level_storage().load(std::memory_order_relaxed); }

void set_level(Level l) {
  level_storage().store(l, std::memory_order_relaxed);
}

bool enabled(Level l) { return static_cast<int>(l) <= static_cast<int>(level()); }

bool enabled(Level l, std::string_view component) {
  if (!enabled(l)) return false;
  if (static_cast<int>(l) <= static_cast<int>(Level::warn)) return true;
  const std::vector<std::string>& allow = component_allowlist();
  if (allow.empty()) return true;
  for (const std::string& name : allow) {
    if (name == component) return true;
  }
  return false;
}

void set_context_hook(ContextHook hook) {
  g_context_hook.store(hook, std::memory_order_relaxed);
}

void write(Level l, std::string_view component, std::string_view message) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> guard(mu);
  std::string prefix;
  if (const ContextHook hook =
          g_context_hook.load(std::memory_order_relaxed);
      hook != nullptr) {
    std::int64_t now_ns = 0;
    std::string process;
    if (hook(now_ns, process)) {
      char stamp[48];
      std::snprintf(stamp, sizeof(stamp), "[%.6fs ",
                    static_cast<double>(now_ns) * 1e-9);
      prefix = stamp + process + "] ";
    }
  }
  std::fprintf(stderr, "%s[%s] %.*s: %.*s\n", prefix.c_str(), level_name(l),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace e10::log
