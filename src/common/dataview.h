// Payload representation for simulated I/O.
//
// A DataView is a contiguous run of bytes travelling through the stack
// (user buffer -> shuffle message -> collective buffer -> cache -> PFS).
// Internally it is a rope of segments, each either *real* (a slice of a
// shared byte buffer; used by tests and examples, which verify byte-exact
// file content) or *synthetic* (a deterministic pseudo-random pattern
// identified by (seed, origin); used by the benchmarks, which run at the
// paper's 32 GiB scale without allocating payload memory). The rope makes
// concatenation O(segments) — aggregators coalesce many shuffle pieces into
// one contiguous collective-buffer write without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"

namespace e10 {

class DataView {
 public:
  /// Empty view.
  DataView() = default;

  /// A real view owning (sharing) the given bytes.
  static DataView real(std::vector<std::byte> bytes);

  /// A real view sharing `buffer[offset, offset+length)`.
  static DataView real_slice(
      std::shared_ptr<const std::vector<std::byte>> buffer, Offset offset,
      Offset length);

  /// A synthetic view: byte i has value pattern_byte(seed, origin + i).
  static DataView synthetic(std::uint64_t seed, Offset origin, Offset length);

  /// Concatenation of `views` in order; shares all underlying storage.
  static DataView concat(const std::vector<DataView>& views);

  Offset size() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// True if every byte is backed by real storage.
  bool is_real() const;

  /// Number of rope segments (diagnostics/tests).
  std::size_t segment_count() const { return segments_.size(); }

  /// Value of byte `i` (0 <= i < size()), regardless of representation.
  std::byte byte_at(Offset i) const;

  /// Sub-view [offset, offset+length) of this view.
  DataView slice(Offset offset, Offset length) const;

  /// Materializes the view into a fresh byte vector (synthetic segments are
  /// expanded from their pattern).
  std::vector<std::byte> materialize() const;

  /// Pointer to the bytes when the view is one real segment; nullptr
  /// otherwise.
  const std::byte* data() const;

  /// For single-synthetic-segment views: the pattern identity.
  std::uint64_t seed() const;
  Offset origin() const;

  /// The deterministic pattern used by synthetic segments; exposed so tests
  /// can compute expected bytes.
  static std::byte pattern_byte(std::uint64_t seed, Offset position);

 private:
  struct Segment {
    std::shared_ptr<const std::vector<std::byte>> buffer;  // null => synthetic
    Offset offset = 0;         // into buffer (real segments)
    std::uint64_t seed = 0;    // synthetic segments
    Offset origin = 0;
    Offset length = 0;

    std::byte at(Offset i) const;
  };

  std::vector<Segment> segments_;
  Offset length_ = 0;
};

/// A sparse byte store: the in-memory model of one file's content, shared by
/// the PFS and local-FS simulators and by the reference model in tests.
///
/// Log-structured flat storage: a write appends to a plain vector in O(1).
/// Appends that extend the file in offset order (the cache data file, the
/// journals, most server-side streams) keep the vector sorted and
/// non-overlapping; an out-of-order or overlapping write just marks the
/// store dirty, and the first subsequent read runs one O(k log k) sweep
/// that sorts the log and resolves shadowing (later writes win) into
/// non-overlapping segments. This replaced a std::map keyed by offset: the
/// interleaved aggregator flush pattern made per-write tree surgery — and,
/// worse, positional inserts in a naive sorted vector — the top cost of
/// the whole write benchmark, while the log append is free and the sweep
/// runs once per write burst.
class ByteStore {
 public:
  /// Writes `view` at `offset`, replacing anything underneath.
  void write(Offset offset, const DataView& view);

  /// Reads [offset, offset+length). Unwritten gaps read as zero bytes.
  DataView read(Offset offset, Offset length) const;

  /// Value of the byte at `pos` (0 for unwritten positions).
  std::byte byte_at(Offset pos) const;

  /// Highest written offset + 1 (the file size if never truncated larger).
  Offset extent_end() const { return max_end_; }

  /// Total number of distinct stored segments (for tests).
  std::size_t segment_count() const {
    consolidate();
    return segments_.size();
  }

  void clear() {
    segments_.clear();
    dirty_ = false;
    max_end_ = 0;
    next_seq_ = 0;
  }

 private:
  struct Stored {
    Offset offset = 0;
    DataView view;
    std::uint64_t seq = 0;  // insertion order; higher shadows lower
  };

  /// Sorts the write log and resolves shadowing into non-overlapping
  /// segments (ascending offset). No-op when the store is clean.
  void consolidate() const;

  mutable std::vector<Stored> segments_;
  mutable bool dirty_ = false;
  Offset max_end_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace e10
