// Error handling used on every I/O path.
//
// Recoverable conditions (file not found, cache device full, unsupported
// hint value) are reported through Status / Result<T>; broken invariants
// inside the simulator throw (and abort the test), following the C++ Core
// Guidelines split between expected failures and programming errors.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace e10 {

enum class Errc {
  ok = 0,
  no_such_file,
  file_exists,
  invalid_argument,
  io_error,
  no_space,
  not_supported,
  permission_denied,
  busy,
  /// Transient conditions (an unreachable data server, an operation that
  /// timed out). Distinguished from io_error so retry loops — the cache
  /// sync thread above all — know the operation is worth repeating.
  unavailable,
  timed_out,
};

/// Human-readable name of an error code ("no_such_file", ...).
constexpr const char* errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::no_such_file: return "no_such_file";
    case Errc::file_exists: return "file_exists";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::io_error: return "io_error";
    case Errc::no_space: return "no_space";
    case Errc::not_supported: return "not_supported";
    case Errc::permission_denied: return "permission_denied";
    case Errc::busy: return "busy";
    case Errc::unavailable: return "unavailable";
    case Errc::timed_out: return "timed_out";
  }
  return "unknown";
}

/// True for error codes that describe a transient condition: retrying the
/// same operation later may succeed. Hard errors (bad arguments, a full
/// device, corrupt media) stay false — retrying those only wastes time.
constexpr bool is_retryable(Errc e) {
  return e == Errc::unavailable || e == Errc::timed_out || e == Errc::busy;
}

/// Lightweight error-or-ok result for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Errc code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status error(Errc code, std::string message) {
    return Status(code, std::move(message));
  }

  bool is_ok() const { return code_ == Errc::ok; }
  explicit operator bool() const { return is_ok(); }
  Errc code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(errc_name(code_)) + ": " + message_;
  }

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

/// Value-or-Status result. Accessing value() on an error throws, which turns
/// an unchecked error into a loud test failure instead of silent corruption.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).is_ok()) {
      throw std::logic_error("Result constructed from ok Status without value");
    }
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }
  Errc code() const { return status().code(); }

 private:
  void require_ok() const {
    if (!is_ok()) {
      throw std::runtime_error("Result::value on error: " +
                               std::get<Status>(data_).to_string());
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace e10
