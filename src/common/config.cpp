#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace e10 {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

void ConfigSection::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ConfigSection::has(const std::string& key) const {
  return entries_.contains(key);
}

std::optional<std::string> ConfigSection::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string ConfigSection::get_or(const std::string& key,
                                  std::string fallback) const {
  return get(key).value_or(std::move(fallback));
}

Result<bool> ConfigSection::get_bool(const std::string& key,
                                     bool fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  const std::string v = lower(trim(*raw));
  if (v == "true" || v == "1" || v == "enable" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "disable" || v == "no" || v == "off") {
    return false;
  }
  return Status::error(Errc::invalid_argument,
                       "not a boolean: " + key + "=" + *raw);
}

Result<Offset> ConfigSection::get_size(const std::string& key,
                                       Offset fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  return Config::parse_size(*raw);
}

Result<Offset> Config::parse_size(const std::string& text) {
  const std::string v = lower(trim(text));
  if (v.empty()) {
    return Status::error(Errc::invalid_argument, "empty size value");
  }
  Offset multiplier = 1;
  std::string digits = v;
  const char suffix = v.back();
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k' ? units::KiB
               : suffix == 'm' ? units::MiB
                               : units::GiB;
    digits = v.substr(0, v.size() - 1);
  }
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](unsigned char c) { return std::isdigit(c); })) {
    return Status::error(Errc::invalid_argument, "not a size: " + text);
  }
  return static_cast<Offset>(std::stoll(digits)) * multiplier;
}

Result<Config> Config::parse(const std::string& text) {
  Config config;
  ConfigSection* current = &config.global_;
  std::istringstream stream(text);
  std::string line;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#' || stripped[0] == ';') continue;
    if (stripped.front() == '[') {
      if (stripped.back() != ']') {
        return Status::error(Errc::invalid_argument,
                             "line " + std::to_string(lineno) +
                                 ": unterminated section header");
      }
      config.sections_.emplace_back(
          trim(stripped.substr(1, stripped.size() - 2)));
      current = &config.sections_.back();
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      return Status::error(Errc::invalid_argument,
                           "line " + std::to_string(lineno) +
                               ": expected key = value");
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty()) {
      return Status::error(Errc::invalid_argument,
                           "line " + std::to_string(lineno) + ": empty key");
    }
    current->set(key, value);
  }
  return config;
}

const ConfigSection* Config::find(const std::string& name) const {
  for (const ConfigSection& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

const ConfigSection* Config::match(const std::string& candidate) const {
  for (const ConfigSection& s : sections_) {
    if (glob_match(s.name(), candidate)) return &s;
  }
  return nullptr;
}

bool Config::glob_match(const std::string& pattern, const std::string& text) {
  // Iterative glob with '*' only; backtracks to the last star on mismatch.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace e10
