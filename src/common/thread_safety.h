// Clang thread-safety-analysis annotation macros (-Wthread-safety).
//
// The simulator's blocking primitives (sim::SimMutex and the extent-lock
// LockTable) mirror the pthread locks the paper's ROMIO implementation
// uses. Annotating guarded state with these macros lets clang statically
// prove the locking discipline at compile time — the static half of the
// concurrency story, complementing the runtime lockset checker in
// src/analysis (docs/static_analysis.md).
//
// The macros expand to nothing on compilers without the attributes (gcc),
// so they are free to use anywhere; CI builds with clang and
// -Wthread-safety -Werror to enforce them.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define E10_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef E10_THREAD_ANNOTATION
#define E10_THREAD_ANNOTATION(x)  // not supported by this compiler
#endif

/// Marks a class as a lockable capability (e.g. sim::SimMutex).
#define E10_CAPABILITY(name) E10_THREAD_ANNOTATION(capability(name))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (e.g. sim::SimLock).
#define E10_SCOPED_CAPABILITY E10_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a member is protected by the given capability.
#define E10_GUARDED_BY(x) E10_THREAD_ANNOTATION(guarded_by(x))

/// Declares that a pointer's pointee is protected by the capability.
#define E10_PT_GUARDED_BY(x) E10_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define E10_REQUIRES(...) \
  E10_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on return, not on entry).
#define E10_ACQUIRE(...) \
  E10_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define E10_RELEASE(...) \
  E10_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define E10_EXCLUDES(...) E10_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Opts a function out of the analysis (primitive implementations).
#define E10_NO_THREAD_SAFETY_ANALYSIS \
  E10_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Declares that this capability member is always acquired before `x`
/// when a process holds both. e10_lint's lock-order rule checks the
/// declared relation for cycles; the declared order is also cross-checked
/// against the runtime acquisition-order graph
/// (analysis::declared_lock_order, docs/static_analysis.md).
#define E10_ACQUIRED_BEFORE(...) \
  E10_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Converse of E10_ACQUIRED_BEFORE: acquired only while `x` is held.
#define E10_ACQUIRED_AFTER(...) \
  E10_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Declares that a member's accesses are recorded against the named
/// sim::SharedVar member, i.e. the runtime lockset checker — not a mutex —
/// enforces its discipline (single-owner, handoff, or monitor-protected).
/// Clang's analysis has no concept of engine-atomic monitors, so this
/// expands to nothing everywhere; e10_lint verifies the argument names a
/// real member, and the named SharedVar makes the claim checkable at run
/// time (src/analysis/checker.h).
#define E10_TRACKED_BY(x)  // documentation + e10_lint; runtime-enforced
