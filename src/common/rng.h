// Seeded random-number generation for the simulator's jitter models.
//
// Every component that needs randomness owns its own Rng, derived from the
// experiment seed and a component tag, so adding a component never perturbs
// another component's stream.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace e10 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives a child seed from a parent seed and a component tag.
  static std::uint64_t derive(std::uint64_t seed, std::string_view tag) {
    std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
    for (char c : tag) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  /// Uniform in [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Lognormal multiplier with median 1.0 and shape sigma; used for service
  /// time jitter (the heavy right tail is what makes the slowest writer
  /// dominate collective I/O, per the paper's point (a)).
  double lognormal(double sigma) {
    return std::lognormal_distribution<double>(0.0, sigma)(engine_);
  }

  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace e10
