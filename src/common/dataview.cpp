#include "common/dataview.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace e10 {

std::byte DataView::Segment::at(Offset i) const {
  if (buffer != nullptr) {
    return (*buffer)[static_cast<std::size_t>(offset + i)];
  }
  return DataView::pattern_byte(seed, origin + i);
}

DataView DataView::real(std::vector<std::byte> bytes) {
  auto shared =
      std::make_shared<const std::vector<std::byte>>(std::move(bytes));
  const Offset len = static_cast<Offset>(shared->size());
  return real_slice(std::move(shared), 0, len);
}

DataView DataView::real_slice(
    std::shared_ptr<const std::vector<std::byte>> buffer, Offset offset,
    Offset length) {
  if (offset < 0 || length < 0 ||
      offset + length > static_cast<Offset>(buffer->size())) {
    throw std::out_of_range("DataView::real_slice out of range");
  }
  DataView v;
  if (length > 0) {
    Segment seg;
    seg.buffer = std::move(buffer);
    seg.offset = offset;
    seg.length = length;
    v.segments_.push_back(std::move(seg));
  }
  v.length_ = length;
  return v;
}

DataView DataView::synthetic(std::uint64_t seed, Offset origin,
                             Offset length) {
  if (length < 0) {
    throw std::out_of_range("DataView::synthetic negative length");
  }
  DataView v;
  if (length > 0) {
    Segment seg;
    seg.seed = seed;
    seg.origin = origin;
    seg.length = length;
    v.segments_.push_back(std::move(seg));
  }
  v.length_ = length;
  return v;
}

DataView DataView::concat(const std::vector<DataView>& views) {
  DataView out;
  for (const DataView& v : views) {
    for (const Segment& seg : v.segments_) {
      // Merge adjacent synthetic continuations (common when a strided
      // pattern is reassembled in file order).
      if (!out.segments_.empty()) {
        Segment& last = out.segments_.back();
        if (last.buffer == nullptr && seg.buffer == nullptr &&
            last.seed == seg.seed && last.origin + last.length == seg.origin) {
          last.length += seg.length;
          continue;
        }
        if (last.buffer != nullptr && last.buffer == seg.buffer &&
            last.offset + last.length == seg.offset) {
          last.length += seg.length;
          continue;
        }
      }
      out.segments_.push_back(seg);
    }
    out.length_ += v.length_;
  }
  return out;
}

std::byte DataView::pattern_byte(std::uint64_t seed, Offset position) {
  // SplitMix64 finalizer over (seed, position): cheap, stateless, and has
  // no measurable bias for the byte-compare checks the tests perform.
  std::uint64_t x =
      seed ^ (static_cast<std::uint64_t>(position) * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::byte>(x & 0xFF);
}

bool DataView::is_real() const {
  return std::all_of(segments_.begin(), segments_.end(),
                     [](const Segment& s) { return s.buffer != nullptr; });
}

std::byte DataView::byte_at(Offset i) const {
  if (i < 0 || i >= length_) throw std::out_of_range("DataView::byte_at");
  for (const Segment& seg : segments_) {
    if (i < seg.length) return seg.at(i);
    i -= seg.length;
  }
  throw std::logic_error("DataView: inconsistent rope");
}

DataView DataView::slice(Offset offset, Offset length) const {
  if (offset < 0 || length < 0 || offset + length > length_) {
    throw std::out_of_range("DataView::slice out of range");
  }
  DataView out;
  out.length_ = length;
  Offset skip = offset;
  Offset remaining = length;
  for (const Segment& seg : segments_) {
    if (remaining == 0) break;
    if (skip >= seg.length) {
      skip -= seg.length;
      continue;
    }
    const Offset take = std::min(remaining, seg.length - skip);
    Segment piece = seg;
    if (piece.buffer != nullptr) {
      piece.offset += skip;
    } else {
      piece.origin += skip;
    }
    piece.length = take;
    out.segments_.push_back(std::move(piece));
    remaining -= take;
    skip = 0;
  }
  return out;
}

std::vector<std::byte> DataView::materialize() const {
  std::vector<std::byte> out(static_cast<std::size_t>(length_));
  Offset pos = 0;
  for (const Segment& seg : segments_) {
    if (seg.buffer != nullptr) {
      std::memcpy(out.data() + pos, seg.buffer->data() + seg.offset,
                  static_cast<std::size_t>(seg.length));
    } else {
      for (Offset i = 0; i < seg.length; ++i) {
        out[static_cast<std::size_t>(pos + i)] =
            pattern_byte(seg.seed, seg.origin + i);
      }
    }
    pos += seg.length;
  }
  return out;
}

const std::byte* DataView::data() const {
  if (segments_.size() != 1 || segments_[0].buffer == nullptr) return nullptr;
  return segments_[0].buffer->data() + segments_[0].offset;
}

std::uint64_t DataView::seed() const {
  if (segments_.size() != 1 || segments_[0].buffer != nullptr) {
    throw std::logic_error("DataView::seed: not a single synthetic segment");
  }
  return segments_[0].seed;
}

Offset DataView::origin() const {
  if (segments_.size() != 1 || segments_[0].buffer != nullptr) {
    throw std::logic_error("DataView::origin: not a single synthetic segment");
  }
  return segments_[0].origin;
}

void ByteStore::write(Offset offset, const DataView& view) {
  if (view.empty()) return;
  // In-order appends (offset at or past everything written so far) keep
  // the log sorted and non-overlapping; anything else defers shadowing
  // resolution to the next read.
  if (!segments_.empty() && offset < max_end_) dirty_ = true;
  segments_.push_back(Stored{offset, view, next_seq_++});
  max_end_ = std::max(max_end_, offset + view.size());
}

void ByteStore::consolidate() const {
  if (!dirty_) return;
  std::sort(segments_.begin(), segments_.end(),
            [](const Stored& a, const Stored& b) {
              return a.offset != b.offset ? a.offset < b.offset
                                          : a.seq < b.seq;
            });

  // Sweep left to right. `active` is a max-heap (by seq) of the writes
  // covering the cursor; the top is the visible one — the latest write
  // wins, exactly the shadowing rule the eager map applied per write. A
  // visible run is emitted only when the visible write changes, so a
  // write that stays on top across a shadowed neighbour's start comes out
  // as one segment, just as it would have under eager shadowing.
  const auto by_seq = [](const Stored* a, const Stored* b) {
    return a->seq < b->seq;
  };
  const auto end_of = [](const Stored* s) {
    return s->offset + s->view.size();
  };
  std::vector<Stored> out;
  out.reserve(segments_.size());
  std::vector<const Stored*> active;
  const Stored* visible = nullptr;
  Offset vis_start = 0;
  Offset cursor = 0;
  const auto emit = [&](Offset upto) {
    if (visible != nullptr && upto > vis_start) {
      out.push_back(Stored{vis_start,
                           visible->view.slice(vis_start - visible->offset,
                                               upto - vis_start),
                           visible->seq});
    }
  };
  std::size_t i = 0;
  const std::size_t n = segments_.size();
  while (i < n || !active.empty()) {
    while (!active.empty() && end_of(active.front()) <= cursor) {
      std::pop_heap(active.begin(), active.end(), by_seq);
      active.pop_back();
    }
    if (active.empty()) {
      if (i >= n) break;
      emit(cursor);
      visible = nullptr;
      cursor = std::max(cursor, segments_[i].offset);  // skip unwritten gap
    }
    while (i < n && segments_[i].offset <= cursor) {
      active.push_back(&segments_[i]);
      std::push_heap(active.begin(), active.end(), by_seq);
      ++i;
    }
    while (!active.empty() && end_of(active.front()) <= cursor) {
      std::pop_heap(active.begin(), active.end(), by_seq);
      active.pop_back();
    }
    if (active.empty()) continue;
    const Stored* top = active.front();
    if (top != visible) {
      emit(cursor);
      visible = top;
      vis_start = cursor;
    }
    Offset next = end_of(top);
    if (i < n) next = std::min(next, segments_[i].offset);
    cursor = next;
  }
  emit(cursor);
  segments_ = std::move(out);
  dirty_ = false;
}

DataView ByteStore::read(Offset offset, Offset length) const {
  if (length <= 0) return DataView();
  consolidate();
  std::vector<DataView> parts;
  Offset cursor = offset;
  const Offset end = offset + length;
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), offset,
      [](const Stored& s, Offset o) { return s.offset < o; });
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->offset + prev->view.size() > offset) it = prev;
  }
  for (; it != segments_.end() && it->offset < end; ++it) {
    const Offset start = it->offset;
    const Offset seg_end = start + it->view.size();
    if (seg_end <= cursor) continue;
    if (start > cursor) {
      // Unwritten gap reads as zeros.
      parts.push_back(DataView::real(std::vector<std::byte>(
          static_cast<std::size_t>(start - cursor), std::byte{0})));
      cursor = start;
    }
    const Offset lo = std::max(start, cursor);
    const Offset hi = std::min(seg_end, end);
    parts.push_back(it->view.slice(lo - start, hi - lo));
    cursor = hi;
  }
  if (cursor < end) {
    parts.push_back(DataView::real(std::vector<std::byte>(
        static_cast<std::size_t>(end - cursor), std::byte{0})));
  }
  if (parts.size() == 1) return parts[0];
  return DataView::concat(parts);
}

std::byte ByteStore::byte_at(Offset pos) const {
  consolidate();
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), pos,
      [](Offset o, const Stored& s) { return o < s.offset; });
  if (it == segments_.begin()) return std::byte{0};
  --it;
  if (pos < it->offset + it->view.size()) {
    return it->view.byte_at(pos - it->offset);
  }
  return std::byte{0};
}


}  // namespace e10
