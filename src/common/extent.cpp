#include "common/extent.h"

#include <algorithm>
#include <sstream>

namespace e10 {

Extent intersect(const Extent& a, const Extent& b) {
  const Offset lo = std::max(a.offset, b.offset);
  const Offset hi = std::min(a.end(), b.end());
  if (hi <= lo) return Extent{lo, 0};
  return Extent{lo, hi - lo};
}

std::string to_string(const Extent& e) {
  std::ostringstream os;
  os << "[" << e.offset << ", " << e.end() << ")";
  return os.str();
}

ExtentList::ExtentList(std::vector<Extent> extents)
    : extents_(std::move(extents)) {}

void ExtentList::add(Extent e) {
  if (!e.empty()) extents_.push_back(e);
}

void ExtentList::normalize() {
  std::erase_if(extents_, [](const Extent& e) { return e.empty(); });
  std::sort(extents_.begin(), extents_.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });
  std::vector<Extent> merged;
  merged.reserve(extents_.size());
  for (const Extent& e : extents_) {
    if (!merged.empty() && e.offset <= merged.back().end()) {
      merged.back().length =
          std::max(merged.back().end(), e.end()) - merged.back().offset;
    } else {
      merged.push_back(e);
    }
  }
  extents_ = std::move(merged);
}

Offset ExtentList::total_bytes() const {
  Offset total = 0;
  for (const Extent& e : extents_) total += e.length;
  return total;
}

Extent ExtentList::bounding() const {
  if (extents_.empty()) return Extent{};
  Offset lo = extents_.front().offset;
  Offset hi = extents_.front().end();
  for (const Extent& e : extents_) {
    lo = std::min(lo, e.offset);
    hi = std::max(hi, e.end());
  }
  return Extent{lo, hi - lo};
}

ExtentList ExtentList::clipped_to(const Extent& window) const {
  ExtentList out;
  for (const Extent& e : extents_) {
    const Extent clipped = intersect(e, window);
    if (!clipped.empty()) out.add(clipped);
  }
  return out;
}

ExtentList ExtentList::subtract(const ExtentList& other) const {
  ExtentList out;
  std::size_t j = 0;
  for (const Extent& e : extents_) {
    Offset cursor = e.offset;
    while (j < other.extents_.size() && other.extents_[j].end() <= cursor) ++j;
    std::size_t k = j;
    while (k < other.extents_.size() && other.extents_[k].offset < e.end()) {
      const Extent& cut = other.extents_[k];
      if (cut.offset > cursor) out.add(Extent{cursor, cut.offset - cursor});
      cursor = std::max(cursor, cut.end());
      ++k;
    }
    if (cursor < e.end()) out.add(Extent{cursor, e.end() - cursor});
  }
  return out;
}

bool ExtentList::covers(const ExtentList& other) const {
  return other.subtract(*this).empty();
}

}  // namespace e10
