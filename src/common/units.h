// Time and byte units used throughout the simulator.
//
// Virtual time is an integral count of nanoseconds. Using integers (rather
// than floating point) keeps the discrete-event schedule exactly reproducible:
// two runs with the same seed produce the same event order bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

namespace e10 {

/// Virtual time in nanoseconds.
using Time = std::int64_t;

/// File offsets and sizes in bytes. Signed, like off_t, so that arithmetic
/// on differences cannot silently wrap.
using Offset = std::int64_t;

namespace units {

constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t n) { return n * 1'000; }
constexpr Time milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr Time seconds(std::int64_t n) { return n * 1'000'000'000; }

/// Converts a floating-point second count to integral virtual time.
constexpr Time seconds_f(double s) {
  return static_cast<Time>(s * 1e9);
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) * 1e-6;
}

constexpr Offset KiB = 1024;
constexpr Offset MiB = 1024 * KiB;
constexpr Offset GiB = 1024 * MiB;

constexpr Offset kibibytes(std::int64_t n) { return n * KiB; }
constexpr Offset mebibytes(std::int64_t n) { return n * MiB; }
constexpr Offset gibibytes(std::int64_t n) { return n * GiB; }

}  // namespace units

/// Formats a byte count with a binary-prefix unit, e.g. "4.0 MiB".
std::string format_bytes(Offset bytes);

/// Formats virtual time with an adaptive unit, e.g. "301.2 us".
std::string format_time(Time t);

/// Formats a bandwidth (bytes over virtual duration) as "X.XX GiB/s".
std::string format_bandwidth(Offset bytes, Time elapsed);

/// Bandwidth in GiB/s as a double (0 if elapsed == 0).
double bandwidth_gib(Offset bytes, Time elapsed);

}  // namespace e10
