// INI-style configuration parsing.
//
// Used by the MPIWRAP wrapper library (per-file-pattern hint sections, as in
// the paper's §III-C) and by the benchmark harness. Format:
//
//   # comment
//   [file:/pfs/ckpt*]
//   e10_cache = enable
//   cb_buffer_size = 16m
//
// Section names are free-form; keys and values are trimmed strings.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace e10 {

class ConfigSection {
 public:
  ConfigSection() = default;
  explicit ConfigSection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void set(std::string key, std::string value);
  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;

  /// Parses "true/false/1/0/enable/disable/yes/no".
  Result<bool> get_bool(const std::string& key, bool fallback) const;

  /// Parses integers with optional binary suffix: "4k", "16m", "2g".
  Result<Offset> get_size(const std::string& key, Offset fallback) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::string name_;
  std::map<std::string, std::string> entries_;
};

class Config {
 public:
  /// Parses config text; returns a Status describing the first syntax error.
  static Result<Config> parse(const std::string& text);

  /// Key/value pairs appearing before any [section] header.
  const ConfigSection& global() const { return global_; }

  const std::vector<ConfigSection>& sections() const { return sections_; }

  /// First section whose name matches exactly.
  const ConfigSection* find(const std::string& name) const;

  /// First section whose name glob-matches `candidate` ('*' wildcards only,
  /// the pattern style MPIWRAP uses for file base names).
  const ConfigSection* match(const std::string& candidate) const;

  /// True if `pattern` (with '*' wildcards) matches `text`.
  static bool glob_match(const std::string& pattern, const std::string& text);

  /// Parses "4k" / "16m" / "2g" / plain integers into a byte count.
  static Result<Offset> parse_size(const std::string& text);

 private:
  ConfigSection global_;
  std::vector<ConfigSection> sections_;
};

}  // namespace e10
