// Minimal leveled logging. Level is read once from the E10_LOG environment
// variable (error|warn|info|debug|trace); default is warn so tests and
// benches stay quiet. E10_LOG_COMPONENTS (comma-separated component names)
// restricts info/debug/trace output to the listed components; error/warn
// always pass. When a simulation is active, lines are prefixed with the
// virtual timestamp and the simulated process (rank, sync thread) that
// emitted them.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace e10::log {

enum class Level { error = 0, warn = 1, info = 2, debug = 3, trace = 4 };

/// The process-wide log level (initialized from E10_LOG on first use).
Level level();

/// Overrides the level (tests).
void set_level(Level l);

bool enabled(Level l);

/// Level check plus the E10_LOG_COMPONENTS allowlist. error/warn lines
/// always pass the allowlist (you don't want a filter hiding failures).
bool enabled(Level l, std::string_view component);

/// Context provider, installed by the simulation engine: fills the virtual
/// timestamp (ns) and the emitting simulated process's name, or returns
/// false when no simulated process is active (the prefix is then omitted).
using ContextHook = bool (*)(std::int64_t& now_ns, std::string& name);
void set_context_hook(ContextHook hook);

/// Writes one line to stderr: "[level] component: message", prefixed with
/// "[<virtual time>s <process>] " when a context hook reports one.
void write(Level l, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void error(std::string_view component, Args&&... args) {
  if (enabled(Level::error, component))
    write(Level::error, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(std::string_view component, Args&&... args) {
  if (enabled(Level::warn, component))
    write(Level::warn, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(std::string_view component, Args&&... args) {
  if (enabled(Level::info, component))
    write(Level::info, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void debug(std::string_view component, Args&&... args) {
  if (enabled(Level::debug, component))
    write(Level::debug, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void trace(std::string_view component, Args&&... args) {
  if (enabled(Level::trace, component))
    write(Level::trace, component, detail::concat(std::forward<Args>(args)...));
}

}  // namespace e10::log
