// Minimal leveled logging. Level is read once from the E10_LOG environment
// variable (error|warn|info|debug|trace); default is warn so tests and
// benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace e10::log {

enum class Level { error = 0, warn = 1, info = 2, debug = 3, trace = 4 };

/// The process-wide log level (initialized from E10_LOG on first use).
Level level();

/// Overrides the level (tests).
void set_level(Level l);

bool enabled(Level l);

/// Writes one line to stderr: "[level] component: message".
void write(Level l, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void error(std::string_view component, Args&&... args) {
  if (enabled(Level::error))
    write(Level::error, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(std::string_view component, Args&&... args) {
  if (enabled(Level::warn))
    write(Level::warn, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void info(std::string_view component, Args&&... args) {
  if (enabled(Level::info))
    write(Level::info, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void debug(std::string_view component, Args&&... args) {
  if (enabled(Level::debug))
    write(Level::debug, component, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void trace(std::string_view component, Args&&... args) {
  if (enabled(Level::trace))
    write(Level::trace, component, detail::concat(std::forward<Args>(args)...));
}

}  // namespace e10::log
