#include "common/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace e10 {

namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.2f %s", value, unit);
  return std::string(buf.data());
}

}  // namespace

std::string format_bytes(Offset bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= units::GiB) return format_scaled(b / static_cast<double>(units::GiB), "GiB");
  if (bytes >= units::MiB) return format_scaled(b / static_cast<double>(units::MiB), "MiB");
  if (bytes >= units::KiB) return format_scaled(b / static_cast<double>(units::KiB), "KiB");
  return format_scaled(b, "B");
}

std::string format_time(Time t) {
  const double ns = static_cast<double>(t);
  if (t >= units::seconds(1)) return format_scaled(ns * 1e-9, "s");
  if (t >= units::milliseconds(1)) return format_scaled(ns * 1e-6, "ms");
  if (t >= units::microseconds(1)) return format_scaled(ns * 1e-3, "us");
  return format_scaled(ns, "ns");
}

double bandwidth_gib(Offset bytes, Time elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(units::GiB) /
         units::to_seconds(elapsed);
}

std::string format_bandwidth(Offset bytes, Time elapsed) {
  return format_scaled(bandwidth_gib(bytes, elapsed), "GiB/s");
}

}  // namespace e10
