#include "lfs/local_fs.h"

#include <algorithm>

#include "fault/fault_injector.h"

namespace e10::lfs {

LocalFs::LocalFs(sim::Engine& engine, std::size_t node,
                 const LfsParams& params, std::uint64_t seed)
    : engine_(engine),
      node_(node),
      params_(params),
      device_("ssd-node-" + std::to_string(node), params.device,
              Rng::derive(seed, "ssd-node-" + std::to_string(node))) {}

LocalFs::~LocalFs() = default;

void LocalFs::inject_open_failures(int n) {
  if (own_fault_ == nullptr) {
    own_fault_ = std::make_unique<fault::FaultInjector>(engine_);
  }
  own_fault_->force_failures(fault::FaultOp::lfs_open, n);
}

Status LocalFs::check_fault(fault::FaultOp op) {
  if (own_fault_ != nullptr) {
    if (Status s = own_fault_->check(op); !s) {
      return Status::error(s.code(), s.message() + " (node " +
                                         std::to_string(node_) + ")");
    }
  }
  if (fault_ != nullptr) {
    if (Status s = fault_->check(op); !s) {
      return Status::error(s.code(), s.message() + " (node " +
                                         std::to_string(node_) + ")");
    }
  }
  return Status::ok();
}

Result<FileHandle> LocalFs::open(const std::string& path, bool create,
                                 bool truncate) {
  engine_.delay(params_.syscall_overhead);
  if (has_faults()) {
    if (Status s = check_fault(fault::FaultOp::lfs_open); !s) return s;
  }
  auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    if (!create) return Status::error(Errc::no_such_file, "lfs: " + path);
    it = namespace_.emplace(path, std::make_shared<Inode>()).first;
  } else if (truncate) {
    Inode& inode = *it->second;
    used_ -= inode.allocated;
    inode.data.clear();
    inode.size = 0;
    inode.allocated = 0;
  }
  ++it->second->open_count;
  const FileHandle handle = next_handle_++;
  handles_.emplace(handle, it->second);
  return handle;
}

Status LocalFs::close(FileHandle handle) {
  const auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return Status::error(Errc::invalid_argument, "lfs: bad handle");
  }
  engine_.delay(params_.syscall_overhead);
  --it->second->open_count;
  handles_.erase(it);
  return Status::ok();
}

Status LocalFs::charge(Inode& inode, Offset new_allocated) {
  if (new_allocated <= inode.allocated) return Status::ok();
  const Offset delta = new_allocated - inode.allocated;
  if (used_ + delta > params_.capacity) {
    return Status::error(Errc::no_space,
                         "lfs: scratch partition full on node " +
                             std::to_string(node_));
  }
  used_ += delta;
  inode.allocated = new_allocated;
  return Status::ok();
}

Status LocalFs::fallocate(FileHandle handle, Offset length) {
  const auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return Status::error(Errc::invalid_argument, "lfs: bad handle");
  }
  if (length < 0) {
    return Status::error(Errc::invalid_argument, "lfs: negative fallocate");
  }
  Inode& inode = *it->second;
  // Extent reservation hits the same device/driver path as a data write, so
  // it shares the write fault class (a dying disk fails both the same way).
  if (has_faults()) {
    if (Status s = check_fault(fault::FaultOp::lfs_write); !s) return s;
  }
  ++stats_.fallocates;
  if (const Status s = charge(inode, length); !s.is_ok()) return s;
  if (params_.supports_fallocate) {
    // Extent reservation is a metadata operation.
    engine_.delay(params_.syscall_overhead);
    return Status::ok();
  }
  // Fallback: physically write zeros at device speed (paper §III-A, fn. 2).
  const Offset to_fill = std::max<Offset>(0, length - inode.size);
  if (to_fill > 0) {
    const Time done = device_.submit(engine_.now(), storage::IoKind::write,
                                     inode.size, to_fill);
    engine_.advance_to(done);
  }
  return Status::ok();
}

Status LocalFs::write(FileHandle handle, Offset offset, const DataView& data) {
  const auto done = write_async(handle, offset, data);
  if (!done.is_ok()) return done.status();
  engine_.advance_to(done.value());
  return Status::ok();
}

Result<Time> LocalFs::write_async(FileHandle handle, Offset offset,
                                  const DataView& data) {
  const auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return Status::error(Errc::invalid_argument, "lfs: bad handle");
  }
  if (offset < 0) {
    return Status::error(Errc::invalid_argument, "lfs: negative offset");
  }
  if (data.empty()) return engine_.now();
  if (has_faults()) {
    if (Status s = check_fault(fault::FaultOp::lfs_write); !s) return s;
  }
  Inode& inode = *it->second;
  if (const Status s = charge(inode, offset + data.size()); !s.is_ok()) {
    return s;
  }
  ++stats_.writes;
  stats_.bytes_written += data.size();
  const Time done =
      device_.submit(engine_.now() + params_.syscall_overhead,
                     storage::IoKind::write, offset, data.size());
  inode.data.write(offset, data);
  inode.size = std::max(inode.size, offset + data.size());
  return done;
}

Result<DataView> LocalFs::read(FileHandle handle, Offset offset,
                               Offset length) {
  const auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return Status::error(Errc::invalid_argument, "lfs: bad handle");
  }
  if (offset < 0 || length < 0) {
    return Status::error(Errc::invalid_argument, "lfs: negative read range");
  }
  Inode& inode = *it->second;
  const Offset clamped =
      std::max<Offset>(0, std::min(length, inode.size - offset));
  if (clamped == 0) return DataView();
  if (has_faults()) {
    if (Status s = check_fault(fault::FaultOp::lfs_read); !s) return s;
  }
  ++stats_.reads;
  stats_.bytes_read += clamped;
  const Time done =
      device_.submit(engine_.now() + params_.syscall_overhead,
                     storage::IoKind::read, offset, clamped);
  engine_.advance_to(done);
  return inode.data.read(offset, clamped);
}

Result<Offset> LocalFs::file_size(FileHandle handle) const {
  const auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return Status::error(Errc::invalid_argument, "lfs: bad handle");
  }
  return it->second->size;
}

Status LocalFs::unlink(const std::string& path) {
  const auto it = namespace_.find(path);
  if (it == namespace_.end()) {
    return Status::error(Errc::no_such_file, "lfs: " + path);
  }
  engine_.delay(params_.syscall_overhead);
  used_ -= it->second->allocated;
  // Reset the charge so writes through still-open handles account from zero.
  it->second->allocated = 0;
  namespace_.erase(it);
  return Status::ok();
}

bool LocalFs::exists(const std::string& path) const {
  return namespace_.contains(path);
}

const ByteStore* LocalFs::peek(const std::string& path) const {
  const auto it = namespace_.find(path);
  return it == namespace_.end() ? nullptr : &it->second->data;
}

LocalFsSet::LocalFsSet(sim::Engine& engine, std::size_t nodes,
                       const LfsParams& params, std::uint64_t seed) {
  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.push_back(std::make_unique<LocalFs>(engine, i, params, seed));
  }
}

}  // namespace e10::lfs
