// Node-local file system on a non-volatile memory device.
//
// Models the per-node ext4 '/scratch' partition of the DEEP-ER testbed
// (30 GiB on an 80 GB SATA SSD) that the E10 cache layer writes to. There is
// one LocalFs per compute node; access is local (no fabric cost), paying a
// small syscall overhead plus device service time.
//
// fallocate() mirrors the paper's ADIOI_Cache_alloc(): with device support
// it reserves space in O(metadata); without, the implementation reverts to
// physically writing zeros at device speed (paper §III-A footnote 2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/dataview.h"
#include "common/status.h"
#include "common/units.h"
#include "fault/fault_plan.h"
#include "sim/engine.h"
#include "storage/device.h"

namespace e10::fault {
class FaultInjector;
}

namespace e10::lfs {

struct LfsParams {
  storage::DeviceParams device = storage::local_ssd_params();
  /// Scratch partition capacity; writes beyond it fail with no_space.
  Offset capacity = 30 * units::GiB;
  /// Whether the file system supports fallocate(2).
  bool supports_fallocate = true;
  /// Local syscall/VFS overhead per operation.
  Time syscall_overhead = units::microseconds(4);
};

using FileHandle = std::uint64_t;

struct LfsStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  Offset bytes_written = 0;
  Offset bytes_read = 0;
  std::uint64_t fallocates = 0;
};

/// One node's local file system. All calls must run inside a simulated
/// process and block the caller in virtual time.
class LocalFs {
 public:
  LocalFs(sim::Engine& engine, std::size_t node, const LfsParams& params,
          std::uint64_t seed);
  ~LocalFs();  // out-of-line: own_fault_'s type is incomplete here

  Result<FileHandle> open(const std::string& path, bool create,
                          bool truncate = false);
  Status close(FileHandle handle);
  /// Reserves space so subsequent writes cannot fail with no_space.
  Status fallocate(FileHandle handle, Offset length);
  Status write(FileHandle handle, Offset offset, const DataView& data);
  /// Nonblocking write: validates, applies the content, reserves the device
  /// timeline and returns the completion time *without* advancing the
  /// caller's clock. The device timeline is FIFO, so an operation issued
  /// later still serializes after this write on the media. write() is
  /// write_async() + advance_to().
  Result<Time> write_async(FileHandle handle, Offset offset,
                           const DataView& data);
  Result<DataView> read(FileHandle handle, Offset offset, Offset length);
  Result<Offset> file_size(FileHandle handle) const;
  Status unlink(const std::string& path);
  bool exists(const std::string& path) const;

  Offset used_bytes() const { return used_; }
  Offset capacity() const { return params_.capacity; }
  std::size_t node() const { return node_; }
  const LfsStats& stats() const { return stats_; }
  const storage::Device& device() const { return device_; }

  /// Test access to file content (no timing cost); nullptr if absent.
  const ByteStore* peek(const std::string& path) const;

  /// Attaches the platform-wide fault injector (or detaches with nullptr)
  /// driving scenario-planned lfs_open / lfs_read / lfs_write transients.
  void set_fault_injector(fault::FaultInjector* fault) { fault_ = fault; }

  /// Failure injection: the next `n` open() calls fail with io_error —
  /// exercises the "revert to standard open" fallback of the cache layer
  /// (paper §III-A). Thin wrapper over a node-private FaultInjector so the
  /// forced failures stay scoped to this node even when a shared scenario
  /// injector is attached.
  void inject_open_failures(int n);

 private:
  struct Inode {
    ByteStore data;
    Offset size = 0;       // written extent end
    Offset allocated = 0;  // capacity charged to this file
    std::uint32_t open_count = 0;
  };

  /// Grows the file's allocation charge; fails if the partition is full.
  Status charge(Inode& inode, Offset new_allocated);

  /// Draws from the node-private injector (forced test failures) then the
  /// shared scenario injector. The call sites guard on has_faults() so a
  /// fault-free run pays two null checks per operation.
  Status check_fault(fault::FaultOp op);
  bool has_faults() const { return own_fault_ != nullptr || fault_ != nullptr; }

  sim::Engine& engine_;
  std::size_t node_;
  LfsParams params_;
  storage::Device device_;
  std::map<std::string, std::shared_ptr<Inode>> namespace_;
  std::unordered_map<FileHandle, std::shared_ptr<Inode>> handles_;
  FileHandle next_handle_ = 1;
  Offset used_ = 0;
  fault::FaultInjector* fault_ = nullptr;          // shared scenario injector
  std::unique_ptr<fault::FaultInjector> own_fault_;  // node-private, lazy
  LfsStats stats_;
};

/// The cluster's set of per-node local file systems.
class LocalFsSet {
 public:
  LocalFsSet(sim::Engine& engine, std::size_t nodes, const LfsParams& params,
             std::uint64_t seed);

  LocalFs& at(std::size_t node) { return *nodes_.at(node); }
  const LocalFs& at(std::size_t node) const { return *nodes_.at(node); }
  std::size_t size() const { return nodes_.size(); }

 private:
  std::vector<std::unique_ptr<LocalFs>> nodes_;
};

}  // namespace e10::lfs
