#include "mpi/world.h"

#include <string>

namespace e10::mpi {

World::World(sim::Engine& engine, net::Fabric& fabric, Topology topology,
             MpiParams params)
    : engine_(engine), topology_(topology) {
  std::vector<std::size_t> rank_nodes;
  rank_nodes.reserve(topology_.ranks());
  for (std::size_t r = 0; r < topology_.ranks(); ++r) {
    rank_nodes.push_back(topology_.node_of(static_cast<int>(r)));
  }
  world_state_ = std::make_shared<CommState>(
      engine, fabric, std::move(rank_nodes), params, "world");
}

void World::launch(std::function<void(Comm)> rank_main) {
  // One process table chunk span for the whole world up front; at
  // bench scale (512-8192 ranks) the spawn loop then never grows it.
  engine_.reserve_processes(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    const Comm comm = this->comm(r);
    engine_.spawn("rank-" + std::to_string(r),
                  [rank_main, comm] { rank_main(comm); });
  }
}

Comm World::comm(int rank) const {
  if (rank < 0 || rank >= size()) {
    throw std::logic_error("World::comm: rank out of range");
  }
  return Comm(world_state_, rank);
}

}  // namespace e10::mpi
